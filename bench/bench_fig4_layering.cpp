// Reproduces Figure 4: the dependency-based allocation phase of the
// layering algorithm (modified maximum-independent-set walk). We build a
// DAG in the figure's spirit — indeterminate operations interleaved with
// determinate ones — and print each selection step: the chosen
// indeterminate operation (no indeterminate ancestor left in the graph) and
// the descendants evicted to later layers, then the final layer partition.
#include <iostream>

#include "core/layering.hpp"
#include "graph/traversal.hpp"
#include "schedule/validate.hpp"

using namespace cohls;

namespace {

model::Assay figure4_assay() {
  model::Assay assay("figure 4 example");
  const auto add = [&assay](const std::string& name, bool indeterminate,
                            std::vector<OperationId> parents) {
    model::OperationSpec spec;
    spec.name = name;
    spec.duration = 10_min;
    spec.indeterminate = indeterminate;
    spec.parents = std::move(parents);
    return assay.add_operation(spec);
  };
  // A small two-generation web: o_a and o_b are indeterminate roots of
  // their cones; o_e is indeterminate but descends from o_a, so it cannot
  // share a layer with it.
  const auto o0 = add("o0", false, {});
  const auto oa = add("o_a (ind)", true, {o0});
  const auto o2 = add("o2", false, {o0});
  const auto ob = add("o_b (ind)", true, {o2});
  const auto o4 = add("o4", false, {oa});
  const auto oe = add("o_e (ind)", true, {o4});
  const auto o6 = add("o6", false, {ob, oe});
  (void)o6;
  return assay;
}

}  // namespace

int main() {
  std::cout << "=== Figure 4: dependency-based allocation walk ===\n\n";
  const model::Assay assay = figure4_assay();
  const graph::Digraph& g = assay.dependency_graph();

  std::cout << "operations (ind = indeterminate):\n";
  for (const auto& op : assay.operations()) {
    std::cout << "  " << op.id() << ": " << op.name() << "  parents:";
    for (const auto p : op.parents()) {
      std::cout << ' ' << p;
    }
    std::cout << '\n';
  }

  // Narrate the MIS walk manually, mirroring Algorithm 1 L12-L24.
  std::cout << "\nwalk (layer 1):\n";
  std::vector<char> active(static_cast<std::size_t>(assay.operation_count()), 1);
  while (true) {
    OperationId pick;
    for (const auto& op : assay.operations()) {
      if (!active[op.id().index()] || !op.indeterminate()) {
        continue;
      }
      const auto anc = graph::ancestor_mask(g, op.id().index());
      bool blocked = false;
      for (const auto& other : assay.operations()) {
        if (other.indeterminate() && active[other.id().index()] &&
            anc[other.id().index()]) {
          blocked = true;
          break;
        }
      }
      if (!blocked) {
        pick = op.id();
        break;
      }
    }
    if (!pick.valid()) {
      break;
    }
    std::cout << "  choose " << assay.operation(pick).name()
              << " (no indeterminate ancestor remains); evict descendants:";
    active[pick.index()] = 0;
    const auto desc = graph::descendant_mask(g, pick.index());
    for (std::size_t n = 0; n < desc.size(); ++n) {
      if (desc[n] && active[n]) {
        std::cout << ' ' << assay.operation(OperationId{static_cast<std::int32_t>(n)}).name();
        active[n] = 0;
      }
    }
    std::cout << '\n';
  }

  core::LayeringOptions options;
  options.indeterminate_threshold = 10;
  const core::LayerPlan plan = core::layer_assay(assay, options);
  std::cout << "\nresulting plan (" << plan.layer_count() << " layers):\n";
  for (int li = 0; li < plan.layer_count(); ++li) {
    std::cout << "  layer " << li + 1 << ":";
    for (const auto op : plan.layer(li)) {
      std::cout << "  " << assay.operation(op).name();
    }
    std::cout << '\n';
  }
  const auto violations = core::validate_layering(plan, assay, 10);
  std::cout << "\nplan valid: " << (violations.empty() ? "yes" : "NO") << '\n';
  return violations.empty() ? 0 : 1;
}
