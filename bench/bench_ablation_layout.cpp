// Ablation E: rank-based vs layout-based transportation refinement.
// The paper refines transport times by ranking paths and mapping ranks onto
// a user-given arithmetic progression (Sec. 4.1); this repo additionally
// implements the physical story behind that rule — place the devices on a
// grid (usage-weighted annealing) and charge Manhattan channel lengths.
// This bench compares both refinements on the hybrid cases and prints the
// final placement of the layout run.
#include <iostream>

#include "assays/benchmarks.hpp"
#include "core/progressive_resynthesis.hpp"
#include "layout/placement.hpp"
#include "schedule/validate.hpp"
#include "util/table.hpp"

using namespace cohls;

int main() {
  std::cout << "=== Ablation E: transport refinement — progression vs layout ===\n\n";

  TextTable table({"Case", "Refinement", "Exe.Time", "#D.", "#P.", "Valid"});
  const model::Assay cases[] = {
      assays::gene_expression_assay(),
      assays::rt_qpcr_assay(),
  };
  int case_number = 1;
  core::SynthesisReport last_layout_report;
  const model::Assay* last_assay = nullptr;
  for (const model::Assay& assay : cases) {
    ++case_number;
    for (const auto refinement :
         {core::TransportRefinement::Progression, core::TransportRefinement::Layout}) {
      core::SynthesisOptions options;
      options.max_devices = 25;
      options.layering.indeterminate_threshold = 10;
      options.transport_refinement = refinement;
      options.resynthesis_improvement_threshold = -1.0;
      options.max_resynthesis_iterations = 2;
      const auto report = core::synthesize(assay, options);
      const bool valid =
          schedule::validate_result(report.result, assay, report.transport).empty();
      table.add_row({std::to_string(case_number),
                     refinement == core::TransportRefinement::Layout ? "layout"
                                                                     : "progression",
                     report.result.total_time(assay).to_string(),
                     std::to_string(report.result.used_device_count()),
                     std::to_string(report.result.path_count(assay)),
                     valid ? "yes" : "NO"});
      if (refinement == core::TransportRefinement::Layout) {
        last_layout_report = report;
        last_assay = &assay;
      }
    }
  }
  table.print(std::cout);

  if (last_assay != nullptr) {
    const auto placement =
        layout::place_devices(last_layout_report.result, *last_assay);
    std::cout << "\nfinal device placement of case " << case_number
              << " (usage-weighted annealed grid):\n"
              << placement.to_ascii();
    std::cout << "wirelength: "
              << placement.wirelength(
                     layout::path_usage(last_layout_report.result, *last_assay))
              << " cell-transfers\n";
  }
  std::cout << "\n(expected: both refinements beat the flat first pass; the layout"
               " variant grounds the progression's 'frequent paths are shorter'"
               " assumption in an actual placement)\n";
  return 0;
}
