// Ablation B: objective weights C_t / C_a / C_pr / C_p ("adjustable weight
// coefficients that can be defined by users"). Three profiles — time-
// dominant, resource-dominant, and path-dominant — show how the synthesis
// trades makespan against device count and channel count.
#include <iostream>

#include "assays/benchmarks.hpp"
#include "core/progressive_resynthesis.hpp"
#include "schedule/validate.hpp"
#include "util/table.hpp"

using namespace cohls;

int main() {
  std::cout << "=== Ablation B: objective weight profiles ===\n\n";

  struct Profile {
    const char* name;
    double time, area, processing, paths;
  };
  const Profile profiles[] = {
      {"time-dominant", 10.0, 0.5, 0.5, 0.5},
      {"balanced (default)", 1.0, 3.0, 3.0, 15.0},
      {"resource-dominant", 0.2, 10.0, 10.0, 2.0},
      {"path-dominant", 0.2, 0.5, 0.5, 50.0},
  };

  TextTable table({"Case", "Profile", "Exe.Time", "#D.", "#P.", "Valid"});
  const model::Assay cases[] = {
      assays::kinase_activity_assay(),
      assays::gene_expression_assay(),
  };
  int case_number = 0;
  for (const model::Assay& assay : cases) {
    ++case_number;
    for (const Profile& profile : profiles) {
      core::SynthesisOptions options;
      options.max_devices = 25;
      options.costs.set_weights(profile.time, profile.area, profile.processing,
                                profile.paths);
      const auto report = core::synthesize(assay, options);
      const bool valid =
          schedule::validate_result(report.result, assay, report.transport).empty();
      table.add_row({std::to_string(case_number), profile.name,
                     report.result.total_time(assay).to_string(),
                     std::to_string(report.result.used_device_count()),
                     std::to_string(report.result.path_count(assay)),
                     valid ? "yes" : "NO"});
    }
  }
  table.print(std::cout);
  std::cout << "\n(expected: time-dominant spends devices to parallelize;"
               " resource-dominant serializes onto few devices;"
               " path-dominant co-locates producer/consumer chains)\n";
  return 0;
}
