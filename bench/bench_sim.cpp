// Simulation-runtime benchmark: the event-wheel fleet driver (compile-once
// schedule, calendar-queue replay, trace-free summaries, break truncation)
// against a loop of the original three-pass simulate_run — per run a full
// window materialization, O(windows x faults) break scans, and a complete
// RunTrace. Both sides replay the same Table-2 schedules under the same
// hazard-sampled fault plans with the same counter-derived per-run seeds,
// so their reductions must agree EXACTLY (integer outcome counts and sums);
// a mismatch makes the binary exit non-zero. The full run times the fleet
// with every hardware worker (the reference is inherently serial) and gates
// the case-2 speedup at >= 10x when the pool has at least 4 workers: the
// hazard sampler and window-realization pass are shared by both sides and
// irreducible under the bit-identical-reduction requirement, which caps the
// single-worker ratio near 4-6x, so on narrower machines the ratio is
// reported and recorded but not enforced.
//
// Schedules come from the heuristic synthesizer (MILP disabled): this
// benchmark measures the replay engine, not the layer solver, and the
// heuristic keeps regeneration fast and deterministic.
//
// Alongside the timed sweep, every case runs an (untimed) mission sweep: a
// smaller fleet under a harsher hazard whose broken runs re-enter the
// re-entrant multi-fault recovery loop (core::run_mission), so the JSON
// also records mission-survival reliability (survival rate, mean rounds,
// credit carried, rounds histogram).
//
// Output: a human-readable table, and BENCH_sim.json with one record per
// Table-2 case holding runs/sec, events/sec, the speedup, the reliability
// reduction, the mission-survival reduction and the wheel statistics.
// Smoke mode writes the same document (timing fields included but
// meaningless at one worker) so CI can assert its fields.
//
// Usage: bench_sim [--smoke] [--out <path>]
//   --smoke    quick differential run for CI: 256-run fleet of case 2,
//              reference parity + jobs 1 vs 8 reduction identity (mission
//              fields included), no timing gate
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "assays/benchmarks.hpp"
#include "core/progressive_resynthesis.hpp"
#include "core/recovery.hpp"
#include "sim/fleet.hpp"
#include "sim/hazard.hpp"
#include "sim/runtime.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace cohls;

namespace {

using Clock = std::chrono::steady_clock;

/// Must match the fleet driver's attempt-seed stream (fleet.cpp) so the
/// reference loop replays the exact same runs.
constexpr std::uint64_t kAttemptStreamTag = 0x415454454D505453ULL;  // "ATTEMPTS"
constexpr Minutes kNoHorizon{std::numeric_limits<std::int64_t>::max()};

constexpr std::uint64_t kFleetSeed = 1;
constexpr const char* kHazardSpec = "exp:2000";
constexpr int kFullRuns = 1000;
constexpr int kSmokeRuns = 256;
constexpr double kCase2SpeedupGate = 10.0;
/// The mission sweep breaks runs on purpose: a harsher hazard over a
/// smaller fleet, so the replay→recover→re-certify loop gets real work
/// without dominating the benchmark wall time.
constexpr const char* kMissionHazardSpec = "exp:400";
constexpr int kMissionFullRuns = 256;
constexpr int kMissionSmokeRuns = 64;
constexpr int kMissionRounds = 3;

struct Case {
  std::string name;
  model::Assay assay;
};

/// The reference-side reduction: the integer accumulators run_fleet's
/// reduce() computes, re-derived from full simulate_run_reference traces.
struct ReferenceReduction {
  int completed = 0;
  int device_failed = 0;
  int attempts_exhausted = 0;
  std::int64_t completion_sum = 0;
  std::int64_t break_sum = 0;
};

ReferenceReduction reference_loop(const schedule::SynthesisResult& result,
                                  const model::Assay& assay,
                                  const sim::HazardModel& hazard, int runs) {
  ReferenceReduction out;
  sim::RuntimeOptions options;
  for (int r = 0; r < runs; ++r) {
    options.seed = derive_stream_seed(kFleetSeed, kAttemptStreamTag,
                                      static_cast<std::uint64_t>(r));
    options.faults.events.clear();
    hazard.sample_into(options.faults, result.devices, kFleetSeed,
                       static_cast<std::uint64_t>(r), kNoHorizon);
    const sim::RunTrace trace = sim::simulate_run_reference(result, assay, options);
    switch (trace.outcome) {
      case sim::RunOutcome::Completed:
        ++out.completed;
        out.completion_sum += trace.completed_at.count();
        break;
      case sim::RunOutcome::DeviceFailed:
        ++out.device_failed;
        out.break_sum += trace.failure->at.count();
        break;
      case sim::RunOutcome::AttemptsExhausted:
        ++out.attempts_exhausted;
        out.break_sum += trace.failure->at.count();
        break;
    }
  }
  return out;
}

/// Exact agreement between the reference loop and the fleet reduction: the
/// outcome counts are integers and the means divide identical integer sums
/// by identical counts, so == (not NEAR) is the correct comparison.
bool reductions_match(const ReferenceReduction& ref, const sim::FleetSummary& fleet) {
  const int broken = ref.device_failed + ref.attempts_exhausted;
  const double ref_mttf =
      broken > 0 ? static_cast<double>(ref.break_sum) / broken : 0.0;
  const double ref_mean =
      ref.completed > 0 ? static_cast<double>(ref.completion_sum) / ref.completed
                        : 0.0;
  return ref.completed == fleet.completed &&
         ref.device_failed == fleet.device_failed &&
         ref.attempts_exhausted == fleet.attempts_exhausted &&
         ref_mttf == fleet.mttf_minutes &&
         ref_mean == fleet.mean_completion_minutes;
}

bool summaries_identical(const sim::FleetSummary& a, const sim::FleetSummary& b) {
  return a.runs == b.runs && a.completed == b.completed &&
         a.device_failed == b.device_failed &&
         a.attempts_exhausted == b.attempts_exhausted &&
         a.mttf_minutes == b.mttf_minutes &&
         a.mean_completion_minutes == b.mean_completion_minutes &&
         a.histogram_min == b.histogram_min && a.histogram_max == b.histogram_max &&
         a.completion_histogram == b.completion_histogram && a.events == b.events &&
         a.wheel.posted == b.wheel.posted && a.wheel.popped == b.wheel.popped &&
         a.wheel.cascaded == b.wheel.cascaded &&
         a.wheel.overflowed == b.wheel.overflowed &&
         a.wheel.peak_pending == b.wheel.peak_pending &&
         a.missions == b.missions && a.missions_recovered == b.missions_recovered &&
         a.missions_degraded == b.missions_degraded &&
         a.mission_rounds == b.mission_rounds &&
         a.mission_survival_rate == b.mission_survival_rate &&
         a.mean_mission_rounds == b.mean_mission_rounds &&
         a.mission_credit == b.mission_credit &&
         a.mission_rounds_histogram == b.mission_rounds_histogram;
}

double elapsed_ms(Clock::time_point begin) {
  return std::chrono::duration<double, std::milli>(Clock::now() - begin).count();
}

struct CaseRecord {
  std::string name;
  int ops = 0;
  int layers = 0;
  int runs = 0;
  double reference_ms = 0.0;
  double fleet_ms = 0.0;
  double speedup = 0.0;
  double runs_per_sec = 0.0;
  double events_per_sec = 0.0;
  bool match = false;
  sim::FleetSummary summary;
  int mission_runs = 0;
  sim::FleetSummary mission;  ///< the untimed mission-survival sweep
};

std::string json_record(const CaseRecord& record) {
  std::ostringstream out;
  out << "{\"case\": \"" << record.name << "\", \"ops\": " << record.ops
      << ", \"layers\": " << record.layers << ", \"runs\": " << record.runs
      << ", \"reference_ms\": " << record.reference_ms
      << ", \"fleet_ms\": " << record.fleet_ms << ", \"speedup\": " << record.speedup
      << ", \"runs_per_sec\": " << record.runs_per_sec
      << ", \"events_per_sec\": " << record.events_per_sec
      << ", \"reduction_matches\": " << (record.match ? "true" : "false")
      << ", \"completed\": " << record.summary.completed
      << ", \"device_failed\": " << record.summary.device_failed
      << ", \"attempts_exhausted\": " << record.summary.attempts_exhausted
      << ", \"mttf_minutes\": " << record.summary.mttf_minutes
      << ", \"mean_completion_minutes\": " << record.summary.mean_completion_minutes
      << ", \"events\": " << record.summary.events << ", \"wheel\": {\"posted\": "
      << record.summary.wheel.posted << ", \"popped\": " << record.summary.wheel.popped
      << ", \"cascaded\": " << record.summary.wheel.cascaded
      << ", \"overflowed\": " << record.summary.wheel.overflowed
      << ", \"peak_pending\": " << record.summary.wheel.peak_pending << "}"
      << ", \"mission_runs\": " << record.mission_runs
      << ", \"missions\": " << record.mission.missions
      << ", \"missions_recovered\": " << record.mission.missions_recovered
      << ", \"missions_degraded\": " << record.mission.missions_degraded
      << ", \"mission_rounds\": " << record.mission.mission_rounds
      << ", \"mission_survival_rate\": " << record.mission.mission_survival_rate
      << ", \"mean_mission_rounds\": " << record.mission.mean_mission_rounds
      << ", \"mission_credit_minutes\": " << record.mission.mission_credit.count()
      << ", \"mission_rounds_histogram\": [";
  for (std::size_t i = 0; i < record.mission.mission_rounds_histogram.size(); ++i) {
    out << (i ? ", " : "") << record.mission.mission_rounds_histogram[i];
  }
  out << "]}";
  return out.str();
}

/// The mission sweep's fleet options: every broken run re-enters the
/// re-entrant recovery loop with hazard re-anchoring on the same (seed,
/// run) counter streams, mirroring the engine's --fleet-recover wiring.
sim::FleetOptions mission_fleet_options(const model::Assay& assay,
                                        const core::SynthesisReport& report,
                                        const sim::HazardModel& hazard,
                                        const core::SynthesisOptions& synth,
                                        int runs, int jobs) {
  sim::FleetOptions options;
  options.runs = runs;
  options.seed = kFleetSeed;
  options.hazard = hazard;
  options.jobs = jobs;
  options.mission = [&assay, &report, &hazard, synth](
                        const sim::RunTrace&, const sim::RuntimeOptions& runtime,
                        std::uint64_t run) {
    core::MissionOptions mission;
    mission.synthesis = synth;
    mission.max_rounds = kMissionRounds;
    mission.hazard = &hazard;
    mission.hazard_seed = kFleetSeed;
    mission.hazard_run = run;
    const core::MissionOutcome out =
        core::run_mission(assay, report.result, runtime, mission);
    sim::MissionReport digest;
    digest.recovered = out.recovered;
    digest.rounds = out.rounds;
    digest.degraded = out.degraded;
    digest.credit = out.credit_carried;
    digest.completed_at = out.completed_at;
    return digest;
  };
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_sim.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_sim [--smoke] [--out <path>]\n";
      return 2;
    }
  }

  // The replay engine is the subject: synthesize with the fast heuristic.
  core::SynthesisOptions synth;
  synth.engine.enable_ilp = false;

  std::vector<Case> cases;
  if (!smoke) {
    cases.push_back({"case1-kinase2", assays::kinase_activity_assay(2)});
  }
  cases.push_back({"case2-gene10", assays::gene_expression_assay(10)});
  if (!smoke) {
    cases.push_back({"case3-rtqpcr20", assays::rt_qpcr_assay(20)});
  }
  const int runs = smoke ? kSmokeRuns : kFullRuns;
  // Full mode times the fleet at machine width; smoke keeps jobs=1 so the
  // 1-vs-8 identity check below compares genuinely different schedules of
  // the same work.
  const int workers = smoke ? 1
                            : static_cast<int>(std::max(
                                  1u, std::thread::hardware_concurrency()));

  bool all_match = true;
  double case2_speedup = 0.0;
  std::vector<CaseRecord> records;
  TextTable table({"case", "ops", "layers", "runs", "reference ms", "fleet ms",
                   "speedup", "runs/s", "events/s", "match"});
  for (const Case& item : cases) {
    const core::SynthesisReport report = core::synthesize(item.assay, synth);
    const sim::HazardModel hazard =
        sim::parse_hazard_spec(kHazardSpec, item.assay.registry());

    sim::FleetOptions fleet;
    fleet.runs = runs;
    fleet.seed = kFleetSeed;
    fleet.hazard = hazard;
    fleet.jobs = workers;

    const Clock::time_point fleet_begin = Clock::now();
    const sim::FleetSummary summary = sim::run_fleet(report.result, item.assay, fleet);
    const double fleet_ms = elapsed_ms(fleet_begin);

    const Clock::time_point ref_begin = Clock::now();
    const ReferenceReduction reference =
        reference_loop(report.result, item.assay, hazard, runs);
    const double reference_ms = elapsed_ms(ref_begin);

    CaseRecord record;
    record.name = item.name;
    record.ops = static_cast<int>(item.assay.operations().size());
    record.layers = static_cast<int>(report.result.layers.size());
    record.runs = runs;
    record.reference_ms = reference_ms;
    record.fleet_ms = fleet_ms;
    record.speedup = fleet_ms > 0.0 ? reference_ms / fleet_ms : 0.0;
    record.runs_per_sec = fleet_ms > 0.0 ? runs / (fleet_ms / 1000.0) : 0.0;
    record.events_per_sec =
        fleet_ms > 0.0 ? static_cast<double>(summary.events) / (fleet_ms / 1000.0)
                       : 0.0;
    record.match = reductions_match(reference, summary);
    record.summary = summary;

    // The untimed mission-survival sweep: harsher hazard, smaller fleet,
    // every broken run driven through core::run_mission.
    const sim::HazardModel mission_hazard =
        sim::parse_hazard_spec(kMissionHazardSpec, item.assay.registry());
    record.mission_runs = smoke ? kMissionSmokeRuns : kMissionFullRuns;
    const sim::FleetOptions mission_fleet = mission_fleet_options(
        item.assay, report, mission_hazard, synth, record.mission_runs, workers);
    record.mission = sim::run_fleet(report.result, item.assay, mission_fleet);
    all_match = all_match && record.match;
    if (item.name == "case2-gene10") {
      case2_speedup = record.speedup;
    }

    std::ostringstream speedup_text, runs_text, events_text, ref_text, fleet_text;
    speedup_text.precision(3);
    speedup_text << record.speedup;
    runs_text.precision(4);
    runs_text << record.runs_per_sec;
    events_text.precision(4);
    events_text << record.events_per_sec;
    ref_text.precision(4);
    ref_text << std::fixed << reference_ms;
    fleet_text.precision(4);
    fleet_text << std::fixed << fleet_ms;
    table.add_row({record.name, std::to_string(record.ops),
                   std::to_string(record.layers), std::to_string(runs),
                   ref_text.str(), fleet_text.str(), speedup_text.str(),
                   runs_text.str(), events_text.str(),
                   record.match ? "yes" : "NO"});
    records.push_back(std::move(record));

    // Worker-count identity: the reduction is bit-identical at any jobs,
    // for both the timed sweep and the mission-survival sweep.
    if (smoke) {
      sim::FleetOptions parallel = fleet;
      parallel.jobs = 8;
      const sim::FleetSummary wide =
          sim::run_fleet(report.result, item.assay, parallel);
      if (!summaries_identical(summary, wide)) {
        std::cerr << "FAIL: jobs 1 vs 8 reductions diverge on " << item.name << "\n";
        return 1;
      }
      sim::FleetOptions mission_parallel = mission_fleet;
      mission_parallel.jobs = 8;
      const sim::FleetSummary mission_wide =
          sim::run_fleet(report.result, item.assay, mission_parallel);
      if (!summaries_identical(records.back().mission, mission_wide)) {
        std::cerr << "FAIL: jobs 1 vs 8 mission reductions diverge on "
                  << item.name << "\n";
        return 1;
      }
      std::cout << "jobs 1 vs 8 reduction identity (fleet + mission): ok\n";
    }
  }
  table.print(std::cout);

  if (!all_match) {
    std::cerr << "FAIL: event-wheel fleet reduction diverges from the"
                 " simulate_run_reference loop\n";
    return 1;
  }
  std::cout << "reduction parity vs simulate_run_reference: ok\n";

  // The 10x criterion presumes a multi-worker fleet against the serial
  // reference; under 4 workers (including smoke's jobs=1) the shared
  // sampling/realization cost caps the ratio below the gate no matter how
  // fast the wheel is, so the measured value is recorded but not enforced.
  const bool gate_enforced = !smoke && workers >= 4;
  const char* gate_reason =
      smoke ? "smoke mode times a single worker: the ratio is not meaningful"
      : gate_enforced
          ? "fleet pool has >= 4 workers"
          : "fewer than 4 workers: the shared hazard-sampling and "
            "window-realization cost bounds the single-worker ratio below "
            "the gate";
  if (gate_enforced && case2_speedup < kCase2SpeedupGate) {
    std::cerr << "FAIL: case-2 fleet speedup " << case2_speedup << " < "
              << kCase2SpeedupGate << "x gate (" << workers << " workers)\n";
    return 1;
  }
  std::cout << "case-2 speedup " << case2_speedup << "x on " << workers
            << " worker(s); " << kCase2SpeedupGate << "x gate "
            << (gate_enforced ? "enforced: ok" : "not enforced") << "\n";
  std::ostringstream json;
  json << "{\n  \"benchmark\": \"bench_sim\",\n  \"hazard\": \"" << kHazardSpec
       << "\",\n  \"mission_hazard\": \"" << kMissionHazardSpec
       << "\",\n  \"fleet_seed\": " << kFleetSeed
       << ",\n  \"runs_per_fleet\": " << runs
       << ",\n  \"mission_runs_per_fleet\": "
       << (smoke ? kMissionSmokeRuns : kMissionFullRuns)
       << ",\n  \"workers\": " << workers
       << ",\n  \"smoke\": " << (smoke ? "true" : "false")
       << ",\n  \"case2_speedup_vs_reference\": " << case2_speedup
       << ",\n  \"gate\": {\"threshold\": " << kCase2SpeedupGate
       << ", \"measured\": " << case2_speedup
       << ", \"enforced\": " << (gate_enforced ? "true" : "false")
       << ", \"reason\": \"" << gate_reason << "\"}"
       << ",\n  \"reductions_match\": " << (all_match ? "true" : "false")
       << ",\n  \"cases\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    json << "    " << json_record(records[i]) << (i + 1 < records.size() ? ",\n" : "\n");
  }
  json << "  ]\n}\n";
  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << json.str();
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
