// Reproduces Figure 6: the device-inheritance risk that motivates
// progressive re-synthesis. An early layer holds o2 (needs only a sieve
// valve, any container); a later layer holds o1 (needs a ring with sieve
// valve and pump). Without posterior knowledge the first pass builds a
// cheap chamber for o2 *and* a ring for o1 (Fig. 6(b)); the re-synthesis
// iteration lets the early layer bind o2 to the ring the later layer
// integrates anyway (Fig. 6(a)), saving a device.
#include <iostream>

#include "core/progressive_resynthesis.hpp"
#include "schedule/validate.hpp"

using namespace cohls;

int main() {
  std::cout << "=== Figure 6: unnecessary device integration avoided by"
               " re-synthesis ===\n\n";

  model::Assay assay("figure 6 example");

  // Layer 1: o2 plus an indeterminate op that forces the layer boundary.
  model::OperationSpec o2;
  o2.name = "o2 (sieve valve, any container)";
  o2.accessories = {model::BuiltinAccessory::kSieveValve};
  o2.duration = 10_min;
  const auto o2_id = assay.add_operation(o2);
  (void)o2_id;

  model::OperationSpec gate;
  gate.name = "cell capture (ind)";
  gate.container = model::ContainerKind::Chamber;
  gate.capacity = model::Capacity::Small;
  gate.accessories = {model::BuiltinAccessory::kCellTrap};
  gate.duration = 8_min;
  gate.indeterminate = true;
  const auto gate_id = assay.add_operation(gate);

  // Layer 2: o1 = ring + {sieve valve, pump}, downstream of the capture.
  model::OperationSpec o1;
  o1.name = "o1 (ring, sieve valve + pump)";
  o1.container = model::ContainerKind::Ring;
  o1.capacity = model::Capacity::Small;
  o1.accessories = {model::BuiltinAccessory::kSieveValve,
                    model::BuiltinAccessory::kPump};
  o1.duration = 15_min;
  o1.parents = {gate_id};
  (void)assay.add_operation(o1);

  core::SynthesisOptions options;
  options.max_devices = 6;
  options.layering.indeterminate_threshold = 1;
  options.resynthesis_improvement_threshold = -1.0;  // always run iterations
  options.max_resynthesis_iterations = 2;

  const core::SynthesisReport report = core::synthesize(assay, options);

  std::cout << "iterations:\n";
  for (std::size_t k = 0; k < report.iterations.size(); ++k) {
    const auto& it = report.iterations[k];
    std::cout << "  " << (k == 0 ? "initial (no posterior knowledge)"
                                 : "re-synthesis " + std::to_string(k))
              << ": devices=" << it.device_count
              << ", objective=" << it.objective.weighted_total << '\n';
  }

  std::cout << "\nfinal binding:\n";
  for (const auto& [op, device] : report.result.binding()) {
    const auto& config = report.result.devices.device(device).config;
    std::cout << "  " << assay.operation(op).name() << " -> device#" << device << " ("
              << model::to_string(config.container) << '/'
              << model::to_string(config.capacity) << ' '
              << model::to_string(config.accessories, assay.registry()) << ")\n";
  }

  // The report keeps the best iteration; compare it with the initial pass.
  const bool saved = report.result.used_device_count() <
                     report.iterations.front().device_count;
  std::cout << "\nre-synthesis avoided a device integration: "
            << (saved ? "yes (Fig. 6(a) reached)" : "no") << '\n';
  const auto violations =
      schedule::validate_result(report.result, assay, report.transport);
  std::cout << "schedule valid: " << (violations.empty() ? "yes" : "NO") << '\n';
  return violations.empty() ? 0 : 1;
}
