// Ablation A: the layer threshold `t` (maximum indeterminate operations per
// layer). Small t means more layers (more cyberphysical checkpoints, less
// parallel capture); large t means fewer layers but more devices reserved
// in parallel at each layer's end. Sweeps t over the hybrid cases.
#include <algorithm>
#include <iostream>

#include "assays/benchmarks.hpp"
#include "core/progressive_resynthesis.hpp"
#include "schedule/validate.hpp"
#include "util/table.hpp"

using namespace cohls;

int main() {
  std::cout << "=== Ablation A: layer threshold t ===\n\n";

  TextTable table({"Case", "t", "Layers", "Exe.Time", "#D.", "#P.", "MaxStorage",
                   "Valid"});
  const model::Assay cases[] = {
      assays::gene_expression_assay(),
      assays::rt_qpcr_assay(),
  };
  int case_number = 1;
  for (const model::Assay& assay : cases) {
    ++case_number;
    for (const int t : {2, 5, 10, 20}) {
      core::SynthesisOptions options;
      options.max_devices = 25;
      options.layering.indeterminate_threshold = t;
      const auto report = core::synthesize(assay, options);
      const bool valid =
          schedule::validate_result(report.result, assay, report.transport).empty();
      const auto storage = core::boundary_storage(report.plan, assay);
      const int max_storage =
          storage.empty() ? 0 : *std::max_element(storage.begin(), storage.end());
      table.add_row({std::to_string(case_number), std::to_string(t),
                     std::to_string(report.result.layers.size()),
                     report.result.total_time(assay).to_string(),
                     std::to_string(report.result.used_device_count()),
                     std::to_string(report.result.path_count(assay)),
                     std::to_string(max_storage), valid ? "yes" : "NO"});
    }
  }
  table.print(std::cout);
  std::cout << "\n(expected: layer count falls as t grows; each layer boundary is"
               " one cyberphysical decision point)\n";
  return 0;
}
