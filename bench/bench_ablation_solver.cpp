// Ablation D: exact MILP vs. list-scheduling heuristic on small layers.
// The paper solves every layer with Gurobi; our reproduction solves small
// layers exactly with the in-tree branch-and-bound and uses the heuristic
// beyond. This bench measures the optimality gap the heuristic leaves on
// random single-layer assays small enough for the exact engine.
#include <iomanip>
#include <iostream>
#include <sstream>

#include "assays/random_assay.hpp"
#include "core/progressive_resynthesis.hpp"
#include "schedule/validate.hpp"
#include "util/table.hpp"

using namespace cohls;

int main() {
  std::cout << "=== Ablation D: exact MILP vs heuristic (layer-level optimality"
               " gap) ===\n\n";

  assays::RandomAssayOptions gen;
  gen.operations = 5;
  gen.indeterminate_probability = 0.0;  // single determinate layer
  gen.max_parents = 2;

  TextTable table({"Seed", "Heuristic obj", "With MILP obj", "Gap", "Valid"});
  double total_gap = 0.0;
  int counted = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const model::Assay assay = assays::random_assay(seed * 101, gen);

    core::SynthesisOptions heuristic_only;
    heuristic_only.max_devices = 5;
    heuristic_only.engine.enable_ilp = false;
    heuristic_only.max_resynthesis_iterations = 0;

    core::SynthesisOptions with_ilp = heuristic_only;
    with_ilp.engine.enable_ilp = true;
    with_ilp.engine.ilp_max_ops = 6;
    with_ilp.engine.ilp_max_devices = 6;
    with_ilp.engine.ilp_new_slots = 3;
    with_ilp.engine.milp.time_limit_seconds = 20.0;

    const auto h = core::synthesize(assay, heuristic_only);
    const auto e = core::synthesize(assay, with_ilp);
    const double ho = h.iterations.front().objective.weighted_total;
    const double eo = e.iterations.front().objective.weighted_total;
    const double gap = eo > 0.0 ? (ho - eo) / eo * 100.0 : 0.0;
    total_gap += gap;
    ++counted;
    const bool valid =
        schedule::validate_result(e.result, assay, e.transport).empty() &&
        schedule::validate_result(h.result, assay, h.transport).empty();
    std::ostringstream gap_text;
    gap_text << std::fixed << std::setprecision(2) << gap << '%';
    std::ostringstream ho_text, eo_text;
    ho_text << std::fixed << std::setprecision(1) << ho;
    eo_text << std::fixed << std::setprecision(1) << eo;
    table.add_row({std::to_string(seed), ho_text.str(), eo_text.str(), gap_text.str(),
                   valid ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << std::fixed << std::setprecision(2);
  std::cout << "\nmean gap: " << total_gap / counted
            << "% (>= 0 means the exact engine never loses; the gap is why the"
               " synthesizer runs the MILP wherever it is tractable)\n";
  return 0;
}
