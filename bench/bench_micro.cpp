// Micro-benchmarks (google-benchmark) for the substrate algorithms: the
// bounded simplex, branch-and-bound, max-flow, layering, and a full
// synthesis pass. These track the cost of the pieces the paper's runtime
// column depends on.
#include <benchmark/benchmark.h>

#include "assays/benchmarks.hpp"
#include "assays/random_assay.hpp"
#include "core/layering.hpp"
#include "core/progressive_resynthesis.hpp"
#include "graph/max_flow.hpp"
#include "lp/simplex.hpp"
#include "milp/branch_and_bound.hpp"
#include "util/rng.hpp"

namespace {

using namespace cohls;

void BM_SimplexDense(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng{7};
  lp::LpModel model;
  for (int j = 0; j < n; ++j) {
    model.add_variable(0.0, 10.0, static_cast<double>(rng.uniform_int(-5, 5)));
  }
  for (int i = 0; i < n; ++i) {
    std::vector<lp::Term> terms;
    for (int j = 0; j < n; ++j) {
      const auto c = rng.uniform_int(-2, 2);
      if (c != 0) {
        terms.emplace_back(j, static_cast<double>(c));
      }
    }
    model.add_constraint(std::move(terms), lp::RowSense::LessEqual,
                         static_cast<double>(rng.uniform_int(5, 30)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp::solve_lp(model));
  }
}
BENCHMARK(BM_SimplexDense)->Arg(10)->Arg(30)->Arg(60);

void BM_MilpKnapsack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng{11};
  milp::MilpModel model;
  std::vector<lp::Term> row;
  for (int i = 0; i < n; ++i) {
    const auto b = model.add_binary(-static_cast<double>(rng.uniform_int(1, 9)));
    row.emplace_back(b, static_cast<double>(rng.uniform_int(1, 5)));
  }
  model.add_constraint(std::move(row), lp::RowSense::LessEqual, 1.5 * n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(milp::solve_milp(model));
  }
}
BENCHMARK(BM_MilpKnapsack)->Arg(8)->Arg(12);

void BM_MaxFlow(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng{13};
  for (auto _ : state) {
    state.PauseTiming();
    graph::FlowNetwork net{n};
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i != j && rng.bernoulli(0.15)) {
          net.add_arc(i, j, rng.uniform_int(1, 20));
        }
      }
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(net.min_cut(0, n - 1));
  }
}
BENCHMARK(BM_MaxFlow)->Arg(20)->Arg(60);

void BM_Layering(benchmark::State& state) {
  const model::Assay assay = assays::rt_qpcr_assay(static_cast<int>(state.range(0)));
  core::LayeringOptions options;
  options.indeterminate_threshold = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::layer_assay(assay, options));
  }
}
BENCHMARK(BM_Layering)->Arg(10)->Arg(20)->Arg(40);

void BM_FullSynthesisCase1(benchmark::State& state) {
  const model::Assay assay = assays::kinase_activity_assay();
  core::SynthesisOptions options;
  options.max_devices = 25;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::synthesize(assay, options));
  }
}
BENCHMARK(BM_FullSynthesisCase1);

void BM_FullSynthesisCase2(benchmark::State& state) {
  const model::Assay assay = assays::gene_expression_assay();
  core::SynthesisOptions options;
  options.max_devices = 25;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::synthesize(assay, options));
  }
}
BENCHMARK(BM_FullSynthesisCase2);

}  // namespace
