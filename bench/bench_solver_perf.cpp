// Solver micro-benchmark: cold dense-tableau branch and bound (the seed
// configuration) vs the warm-started revised simplex (presolve at the root,
// dual re-solves from the parent basis at every child node). Instances are
// the actual per-layer MILPs that arise while synthesizing the Table-2
// bioassays — captured through the LayerSolveCache hook — plus random mixed
// integer programs. Every instance is solved with both configurations and
// the final objectives are required to match; a mismatch makes the binary
// exit non-zero, so the CI smoke run doubles as a differential test.
//
// Output: a human-readable table, and (full mode) BENCH_solver.json with
// one record per (solver, instance) holding nodes, pivots and wall ms.
//
// Usage: bench_solver_perf [--smoke] [--out <path>]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "assays/benchmarks.hpp"
#include "core/ilp_layer_model.hpp"
#include "core/progressive_resynthesis.hpp"
#include "core/solve_hooks.hpp"
#include "lp/simplex.hpp"
#include "milp/branch_and_bound.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace cohls;

namespace {

using Clock = std::chrono::steady_clock;

// --- instance capture --------------------------------------------------------

/// A LayerSolveCache that never hits: it rebuilds the layer MILP exactly as
/// synthesize_layer would (same inputs, same gate) and keeps a copy of the
/// model, letting synthesis proceed untouched.
class ModelRecorder final : public core::LayerSolveCache {
 public:
  explicit ModelRecorder(std::size_t cap) : cap_(cap) {}

  std::optional<core::LayerOutcome> lookup(const core::LayerSolveContext& ctx) override {
    if (models_.size() >= cap_ || !applicable(ctx)) {
      return std::nullopt;
    }
    core::IlpLayerInputs inputs;
    inputs.layer = ctx.request.layer;
    inputs.ops = ctx.request.ops;
    for (const DeviceId id : ctx.request.usable_devices) {
      inputs.fixed_devices.emplace_back(id, ctx.inventory.device(id).config);
    }
    inputs.hints = ctx.request.hints;
    // Indeterminate operations must run on pairwise-distinct devices, so a
    // layer with k of them needs at least k visible devices to be feasible.
    // Offer enough new slots to cover that (the raised-threshold engine
    // configuration this benchmark informs does the same).
    int indeterminate = 0;
    for (const OperationId id : ctx.request.ops) {
      if (ctx.assay.operation(id).indeterminate()) {
        ++indeterminate;
      }
    }
    const int base_slots = ctx.request.allow_new_devices
                               ? std::min(ctx.engine.ilp_new_slots,
                                          ctx.inventory.max_devices() - ctx.inventory.size())
                               : 0;
    inputs.new_slots = std::max(base_slots, indeterminate);
    if (static_cast<int>(inputs.fixed_devices.size() + inputs.hints.size()) +
            inputs.new_slots >
        kCaptureMaxDevices) {
      return std::nullopt;
    }
    inputs.prior_binding = ctx.request.prior_binding;
    inputs.existing_paths = ctx.request.existing_paths;
    try {
      const core::IlpLayerModel ilp(ctx.assay, std::move(inputs), ctx.transport,
                                    ctx.costs);
      models_.push_back(ilp.model());
    } catch (const std::exception&) {
      // A model we cannot build is simply not benchmarked.
    }
    return std::nullopt;
  }

  void store(const core::LayerSolveContext&, const core::LayerOutcome&) override {}

  [[nodiscard]] const std::vector<milp::MilpModel>& models() const { return models_; }

 private:
  /// Mirrors the synthesize_layer gate but with a wider box (ops <= 12,
  /// devices <= 10): the point of the benchmark is to measure what the
  /// solvers sustain on layer models at and beyond the current EngineOptions
  /// thresholds, so the thresholds themselves can be set from data.
  static constexpr int kCaptureMaxOps = 12;
  static constexpr int kCaptureMaxDevices = 10;

  static bool applicable(const core::LayerSolveContext& ctx) {
    if (static_cast<int>(ctx.request.ops.size()) > kCaptureMaxOps) {
      return false;
    }
    return !ctx.request.binds && !ctx.request.new_config;
  }

  std::size_t cap_;
  std::vector<milp::MilpModel> models_;
};

std::vector<milp::MilpModel> capture_layer_models(const model::Assay& assay,
                                                  std::size_t cap) {
  core::SynthesisOptions options;
  options.max_devices = 25;
  options.layering.indeterminate_threshold = 10;
  ModelRecorder recorder(cap);
  options.layer_cache = &recorder;
  (void)core::synthesize(assay, options);
  return recorder.models();
}

milp::MilpModel make_random_milp(std::uint64_t seed) {
  Rng rng{seed};
  milp::MilpModel model;
  const int n = static_cast<int>(rng.uniform_int(6, 14));
  for (int j = 0; j < n; ++j) {
    const auto shape = rng.uniform_int(0, 2);
    if (shape == 0) {
      model.add_binary(static_cast<double>(rng.uniform_int(-6, 6)));
    } else if (shape == 1) {
      const int lb = static_cast<int>(rng.uniform_int(-3, 0));
      model.add_variable(milp::VarKind::Continuous, lb, lb + rng.uniform_int(2, 8),
                         static_cast<double>(rng.uniform_int(-4, 4)));
    } else {
      const int lb = static_cast<int>(rng.uniform_int(-2, 0));
      model.add_variable(milp::VarKind::Integer, lb, lb + rng.uniform_int(1, 6),
                         static_cast<double>(rng.uniform_int(-5, 5)));
    }
  }
  const int m = static_cast<int>(rng.uniform_int(4, 10));
  for (int i = 0; i < m; ++i) {
    std::vector<lp::Term> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.uniform_int(0, 2) != 0) {
        continue;  // ~2/3 sparsity
      }
      const auto coef = rng.uniform_int(-3, 3);
      if (coef != 0) {
        terms.emplace_back(j, static_cast<double>(coef));
      }
    }
    const auto sense = rng.uniform_int(0, 3) == 0 ? lp::RowSense::GreaterEqual
                                                  : lp::RowSense::LessEqual;
    model.add_constraint(std::move(terms), sense,
                         static_cast<double>(rng.uniform_int(2, 12)));
  }
  return model;
}

// --- measurement -------------------------------------------------------------

struct Measurement {
  milp::MilpStatus status = milp::MilpStatus::NoSolution;
  double objective = 0.0;
  bool has_objective = false;
  long nodes = 0;
  long pivots = 0;
  long warm_solves = 0;
  double wall_ms = 0.0;
};

milp::MilpOptions solver_config(bool warm_revised, long node_cap) {
  milp::MilpOptions options;
  // Random instances (node_cap == 0) run to completion. The Table-2 layer
  // models are too hard for either configuration to close, so both get the
  // SAME node budget: the searches traverse identical trees (verified by
  // matching incumbents and bounds at every cap), making wall-per-node a
  // clean comparison of the two solvers' node re-solve cost.
  options.max_nodes = node_cap > 0 ? node_cap : 2000000;
  options.time_limit_seconds = 600.0;
  if (warm_revised) {
    options.simplex.algorithm = lp::SimplexAlgorithm::Revised;
    options.presolve = true;
  } else {
    // The seed configuration: dense tableau, every node solved from
    // scratch, no root presolve.
    options.simplex.algorithm = lp::SimplexAlgorithm::Dense;
    options.presolve = false;
  }
  return options;
}

Measurement measure(const milp::MilpModel& model, bool warm_revised, int repetitions,
                    long node_cap) {
  const milp::MilpOptions options = solver_config(warm_revised, node_cap);
  Measurement out;
  out.wall_ms = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < repetitions; ++rep) {
    const auto begin = Clock::now();
    const milp::MilpSolution solution = milp::solve_milp(model, options);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - begin).count();
    out.wall_ms = std::min(out.wall_ms, ms);  // min over reps: least-noise estimate
    out.status = solution.status;
    out.has_objective = solution.status == milp::MilpStatus::Optimal ||
                        solution.status == milp::MilpStatus::Feasible;
    out.objective = out.has_objective ? solution.objective : 0.0;
    out.nodes = solution.nodes;
    out.pivots = solution.lp_pivots;
    out.warm_solves = solution.lp_warm_solves;
  }
  return out;
}

struct InstanceRow {
  std::string name;
  int vars = 0;
  int rows = 0;
  Measurement dense;
  Measurement revised;
  bool objectives_match = false;
  double node_speedup = 0.0;  ///< dense ms/node over revised ms/node
};

InstanceRow run_instance(const std::string& name, const milp::MilpModel& model,
                         int repetitions, long node_cap) {
  InstanceRow row;
  row.name = name;
  row.vars = model.variable_count();
  row.rows = model.constraint_count();
  row.dense = measure(model, /*warm_revised=*/false, repetitions, node_cap);
  row.revised = measure(model, /*warm_revised=*/true, repetitions, node_cap);
  row.objectives_match =
      row.dense.status == row.revised.status &&
      (!row.dense.has_objective ||
       std::abs(row.dense.objective - row.revised.objective) <= 1e-6);
  const double dense_per_node =
      row.dense.wall_ms / static_cast<double>(std::max<long>(row.dense.nodes, 1));
  const double revised_per_node =
      row.revised.wall_ms / static_cast<double>(std::max<long>(row.revised.nodes, 1));
  row.node_speedup = revised_per_node > 0.0 ? dense_per_node / revised_per_node : 0.0;
  return row;
}

double median(std::vector<double> xs) {
  if (xs.empty()) {
    return 0.0;
  }
  std::sort(xs.begin(), xs.end());
  const std::size_t mid = xs.size() / 2;
  return xs.size() % 2 == 1 ? xs[mid] : 0.5 * (xs[mid - 1] + xs[mid]);
}

std::string json_record(const std::string& solver, const InstanceRow& row,
                        const Measurement& m) {
  std::ostringstream os;
  os << "    {\"solver\": \"" << solver << "\", \"instance\": \"" << row.name
     << "\", \"vars\": " << row.vars << ", \"rows\": " << row.rows
     << ", \"status\": \"" << milp::to_string(m.status) << "\", \"nodes\": " << m.nodes
     << ", \"pivots\": " << m.pivots << ", \"warm_solves\": " << m.warm_solves
     << ", \"wall_ms\": " << m.wall_ms << "}";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_solver.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_solver_perf [--smoke] [--out <path>]\n";
      return 2;
    }
  }

  const int repetitions = smoke ? 1 : 3;
  const std::size_t cap_per_case = smoke ? 1 : 3;
  const int random_count = smoke ? 6 : 30;
  // Equal node budget for the (open) Table-2 layer models; see solver_config.
  const long layer_node_cap = smoke ? 25 : 120;

  std::cout << "=== Solver performance: dense cold vs revised warm-started B&B ===\n";
  std::cout << "(instances: Table-2 per-layer MILPs + random MIPs; "
            << (smoke ? "smoke" : "full") << " mode)\n\n";

  struct CaseSpec {
    const char* tag;
    model::Assay assay;
  };
  std::vector<CaseSpec> cases;
  cases.push_back({"case1", assays::kinase_activity_assay()});
  if (!smoke) {
    cases.push_back({"case2", assays::gene_expression_assay()});
    cases.push_back({"case3", assays::rt_qpcr_assay()});
  } else {
    cases.push_back({"case2", assays::gene_expression_assay()});
  }

  std::vector<InstanceRow> rows;
  std::vector<double> table2_speedups;  // case 2/3 only: the acceptance metric
  for (const CaseSpec& spec : cases) {
    const auto models = capture_layer_models(spec.assay, cap_per_case);
    std::cout << spec.tag << ": captured " << models.size() << " layer MILPs\n";
    int index = 0;
    for (const milp::MilpModel& model : models) {
      std::ostringstream name;
      name << spec.tag << "-layer-" << index++;
      rows.push_back(run_instance(name.str(), model, 1, layer_node_cap));
      if (spec.tag != std::string("case1")) {
        table2_speedups.push_back(rows.back().node_speedup);
      }
    }
  }
  for (int i = 0; i < random_count; ++i) {
    std::ostringstream name;
    name << "rand-" << i;
    rows.push_back(run_instance(name.str(),
                                make_random_milp(static_cast<std::uint64_t>(i) *
                                                     6364136223846793005ULL +
                                                 1442695040888963407ULL),
                                repetitions, /*node_cap=*/0));
  }

  TextTable table({"Instance", "Size", "Status", "Nodes d/r", "Pivots d/r", "ms d/r",
                   "ms/node d/r", "Speedup", "Obj match"});
  bool all_match = true;
  for (const InstanceRow& row : rows) {
    all_match = all_match && row.objectives_match;
    std::ostringstream size, nodes, pivots, ms, per_node, speedup;
    size << row.vars << "x" << row.rows;
    nodes << row.dense.nodes << "/" << row.revised.nodes;
    pivots << row.dense.pivots << "/" << row.revised.pivots;
    ms.precision(3);
    ms << std::fixed << row.dense.wall_ms << "/" << row.revised.wall_ms;
    per_node.precision(4);
    per_node << std::fixed
             << row.dense.wall_ms / std::max<double>(1.0, static_cast<double>(row.dense.nodes))
             << "/"
             << row.revised.wall_ms /
                    std::max<double>(1.0, static_cast<double>(row.revised.nodes));
    speedup.precision(2);
    speedup << std::fixed << row.node_speedup << "x";
    table.add_row({row.name, size.str(), milp::to_string(row.revised.status), nodes.str(),
                   pivots.str(), ms.str(), per_node.str(), speedup.str(),
                   row.objectives_match ? "yes" : "NO"});
  }
  table.print(std::cout);

  std::vector<double> all_speedups;
  for (const InstanceRow& row : rows) {
    all_speedups.push_back(row.node_speedup);
  }
  const double table2_median = median(table2_speedups);
  const double overall_median = median(all_speedups);
  std::cout << "\nmedian node re-solve speedup (Table-2 case 2/3 layer models): "
            << table2_median << "x\n";
  std::cout << "median node re-solve speedup (all instances): " << overall_median
            << "x\n";
  std::cout << "objectives: " << (all_match ? "all configurations agree" : "MISMATCH")
            << "\n";

  if (!smoke) {
    std::ofstream out(out_path);
    out << "{\n  \"benchmark\": \"bench_solver_perf\",\n";
    out << "  \"solvers\": {\"dense-cold\": \"seed dense tableau, cold per node, no presolve\", "
           "\"revised-warm\": \"sparse revised simplex, root presolve, warm dual re-solves\"},\n";
    out << "  \"median_node_speedup_table2_case23\": " << table2_median << ",\n";
    out << "  \"median_node_speedup_all\": " << overall_median << ",\n";
    out << "  \"objectives_match\": " << (all_match ? "true" : "false") << ",\n";
    out << "  \"records\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      out << json_record("dense-cold", rows[i], rows[i].dense) << ",\n";
      out << json_record("revised-warm", rows[i], rows[i].revised)
          << (i + 1 < rows.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    std::cout << "wrote " << out_path << "\n";
  }

  return all_match ? 0 : 1;
}
