// Solver micro-benchmark: cold dense-tableau branch and bound (the seed
// configuration) vs the warm-started revised simplex (presolve at the root,
// dual re-solves from the parent basis at every child node). Instances are
// the actual per-layer MILPs that arise while synthesizing the Table-2
// bioassays — captured through the LayerSolveCache hook — plus random mixed
// integer programs. Every instance is solved with both configurations and
// the final objectives are required to match whenever both searches close
// (truncated searches hold exploration-order-dependent incumbents but must
// never report NoSolution); a mismatch makes the binary exit non-zero, so
// the CI smoke run doubles as a differential test.
//
// Output: a human-readable table, and (full mode) BENCH_solver.json with
// one record per (solver, instance) holding nodes, pivots and wall ms.
//
// Full mode additionally runs a parallel-scaling sweep with 1/2/4/8 workers
// at EQUAL node budgets (MilpOptions::threads): the big case-2/3 layer
// MILPs (open at the budget — wall-per-node scaling data, truncated
// incumbents reported informationally), the same assays re-layered at a low
// indeterminate threshold so every team CLOSES the search (objective
// identity asserted — it is only a theorem for closed searches), and harder
// random MIPs (also closed + asserted). Speedups, steal counts and worker
// idle time go into the JSON. The wall-clock speedup assertion only arms on
// hosts with >= 4 hardware threads — on fewer cores the workers time-slice
// one CPU and no parallel solver can beat sequential wall clock.
//
// Every captured layer model carries its combinatorial bound provider
// (core::IlpLayerModel::bound_provider) and both solver configurations
// attach it, together with the root dive and pseudocost branching — the
// production search configuration. With the configuration-cost floor cuts
// the big case-2/3 layer-0 MILPs now CLOSE to proven optimality (550/548),
// which the full run and the --closure mode assert, along with "no worker
// count reports NoSolution" and "status identical across worker counts".
//
// Usage: bench_solver_perf [--smoke] [--scaling] [--closure] [--out <path>]
//   --smoke    quick differential run (CI), no JSON
//   --scaling  quick scaling-only run (CI Release smoke), no JSON
//   --closure  case2/case3 layer-0 closure gate (CI Release), no JSON
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "assays/benchmarks.hpp"
#include "core/ilp_layer_model.hpp"
#include "core/progressive_resynthesis.hpp"
#include "core/solve_hooks.hpp"
#include "lp/simplex.hpp"
#include "milp/bounds.hpp"
#include "milp/branch_and_bound.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace cohls;

namespace {

using Clock = std::chrono::steady_clock;

// --- instance capture --------------------------------------------------------

/// A captured per-layer MILP plus the combinatorial node-bound provider the
/// production search attaches to it.
struct CapturedLayer {
  milp::MilpModel model;
  std::shared_ptr<const milp::NodeBoundProvider> bounds;
};

/// A LayerSolveCache that never hits: it rebuilds the layer MILP exactly as
/// synthesize_layer would (same inputs, same gate) and keeps a copy of the
/// model and its bound provider, letting synthesis proceed untouched.
class ModelRecorder final : public core::LayerSolveCache {
 public:
  explicit ModelRecorder(std::size_t cap) : cap_(cap) {}

  std::optional<core::LayerOutcome> lookup(const core::LayerSolveContext& ctx) override {
    if (models_.size() >= cap_ || !applicable(ctx)) {
      return std::nullopt;
    }
    core::IlpLayerInputs inputs;
    inputs.layer = ctx.request.layer;
    inputs.ops = ctx.request.ops;
    for (const DeviceId id : ctx.request.usable_devices) {
      inputs.fixed_devices.emplace_back(id, ctx.inventory.device(id).config);
    }
    inputs.hints = ctx.request.hints;
    // Indeterminate operations must run on pairwise-distinct devices, so a
    // layer with k of them needs at least k visible devices to be feasible.
    // Offer enough new slots to cover that (the raised-threshold engine
    // configuration this benchmark informs does the same).
    int indeterminate = 0;
    for (const OperationId id : ctx.request.ops) {
      if (ctx.assay.operation(id).indeterminate()) {
        ++indeterminate;
      }
    }
    const int base_slots = ctx.request.allow_new_devices
                               ? std::min(ctx.engine.ilp_new_slots,
                                          ctx.inventory.max_devices() - ctx.inventory.size())
                               : 0;
    inputs.new_slots = std::max(base_slots, indeterminate);
    if (static_cast<int>(inputs.fixed_devices.size() + inputs.hints.size()) +
            inputs.new_slots >
        kCaptureMaxDevices) {
      return std::nullopt;
    }
    inputs.prior_binding = ctx.request.prior_binding;
    inputs.existing_paths = ctx.request.existing_paths;
    try {
      const core::IlpLayerModel ilp(ctx.assay, std::move(inputs), ctx.transport,
                                    ctx.costs);
      models_.push_back({ilp.model(), ilp.bound_provider()});
    } catch (const std::exception&) {
      // A model we cannot build is simply not benchmarked.
    }
    return std::nullopt;
  }

  void store(const core::LayerSolveContext&, const core::LayerOutcome&) override {}

  [[nodiscard]] const std::vector<CapturedLayer>& models() const { return models_; }

 private:
  /// Mirrors the synthesize_layer gate but with a wider box (ops <= 12,
  /// devices <= 10): the point of the benchmark is to measure what the
  /// solvers sustain on layer models at and beyond the current EngineOptions
  /// thresholds, so the thresholds themselves can be set from data.
  static constexpr int kCaptureMaxOps = 12;
  static constexpr int kCaptureMaxDevices = 10;

  static bool applicable(const core::LayerSolveContext& ctx) {
    if (static_cast<int>(ctx.request.ops.size()) > kCaptureMaxOps) {
      return false;
    }
    return !ctx.request.binds && !ctx.request.new_config;
  }

  std::size_t cap_;
  std::vector<CapturedLayer> models_;
};

std::vector<CapturedLayer> capture_layer_models(const model::Assay& assay,
                                                std::size_t cap,
                                                int indeterminate_threshold = 10) {
  core::SynthesisOptions options;
  options.max_devices = 25;
  options.layering.indeterminate_threshold = indeterminate_threshold;
  ModelRecorder recorder(cap);
  options.layer_cache = &recorder;
  (void)core::synthesize(assay, options);
  return recorder.models();
}

milp::MilpModel make_random_milp(std::uint64_t seed) {
  Rng rng{seed};
  milp::MilpModel model;
  const int n = static_cast<int>(rng.uniform_int(6, 14));
  for (int j = 0; j < n; ++j) {
    const auto shape = rng.uniform_int(0, 2);
    if (shape == 0) {
      model.add_binary(static_cast<double>(rng.uniform_int(-6, 6)));
    } else if (shape == 1) {
      const int lb = static_cast<int>(rng.uniform_int(-3, 0));
      model.add_variable(milp::VarKind::Continuous, lb, lb + rng.uniform_int(2, 8),
                         static_cast<double>(rng.uniform_int(-4, 4)));
    } else {
      const int lb = static_cast<int>(rng.uniform_int(-2, 0));
      model.add_variable(milp::VarKind::Integer, lb, lb + rng.uniform_int(1, 6),
                         static_cast<double>(rng.uniform_int(-5, 5)));
    }
  }
  const int m = static_cast<int>(rng.uniform_int(4, 10));
  for (int i = 0; i < m; ++i) {
    std::vector<lp::Term> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.uniform_int(0, 2) != 0) {
        continue;  // ~2/3 sparsity
      }
      const auto coef = rng.uniform_int(-3, 3);
      if (coef != 0) {
        terms.emplace_back(j, static_cast<double>(coef));
      }
    }
    const auto sense = rng.uniform_int(0, 3) == 0 ? lp::RowSense::GreaterEqual
                                                  : lp::RowSense::LessEqual;
    model.add_constraint(std::move(terms), sense,
                         static_cast<double>(rng.uniform_int(2, 12)));
  }
  return model;
}

// --- measurement -------------------------------------------------------------

struct Measurement {
  milp::MilpStatus status = milp::MilpStatus::NoSolution;
  double objective = 0.0;
  bool has_objective = false;
  bool closed = false;      ///< the search proved optimality or infeasibility
  double best_bound = 0.0;  ///< proven lower bound at exit
  double gap = 0.0;         ///< objective - best_bound when an incumbent exists
  long nodes = 0;
  long pivots = 0;
  long warm_solves = 0;
  long bound_prunes = 0;
  long cutoff_prunes = 0;
  long dive_lp_solves = 0;
  bool dive_found_incumbent = false;
  double wall_ms = 0.0;
};

milp::MilpOptions solver_config(bool warm_revised, long node_cap,
                                std::shared_ptr<const milp::NodeBoundProvider> bounds) {
  milp::MilpOptions options;
  // Random instances (node_cap == 0) run to completion; layer models get the
  // SAME node budget in both configurations and the SAME bound provider, so
  // the searches traverse identical trees and wall-per-node is a clean
  // comparison of the two solvers' node re-solve cost.
  options.max_nodes = node_cap > 0 ? node_cap : 2000000;
  options.time_limit_seconds = 600.0;
  options.bounds = std::move(bounds);
  if (warm_revised) {
    options.simplex.algorithm = lp::SimplexAlgorithm::Revised;
    options.presolve = true;
  } else {
    // The seed configuration: dense tableau, every node solved from
    // scratch, no root presolve.
    options.simplex.algorithm = lp::SimplexAlgorithm::Dense;
    options.presolve = false;
  }
  return options;
}

void fill_common(Measurement& out, const milp::MilpSolution& solution) {
  out.status = solution.status;
  out.has_objective = solution.status == milp::MilpStatus::Optimal ||
                      solution.status == milp::MilpStatus::Feasible;
  out.objective = out.has_objective ? solution.objective : 0.0;
  out.closed = solution.status == milp::MilpStatus::Optimal ||
               solution.status == milp::MilpStatus::Infeasible;
  out.best_bound = solution.best_bound;
  out.gap = out.has_objective ? solution.objective - solution.best_bound : 0.0;
  out.nodes = solution.nodes;
  out.pivots = solution.lp_pivots;
  out.warm_solves = solution.lp_warm_solves;
  out.bound_prunes = solution.bound_prunes;
  out.cutoff_prunes = solution.cutoff_prunes;
  out.dive_lp_solves = solution.dive_lp_solves;
  out.dive_found_incumbent = solution.dive_found_incumbent;
}

Measurement measure(const CapturedLayer& instance, bool warm_revised, int repetitions,
                    long node_cap) {
  const milp::MilpOptions options =
      solver_config(warm_revised, node_cap, instance.bounds);
  Measurement out;
  out.wall_ms = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < repetitions; ++rep) {
    const auto begin = Clock::now();
    const milp::MilpSolution solution = milp::solve_milp(instance.model, options);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - begin).count();
    out.wall_ms = std::min(out.wall_ms, ms);  // min over reps: least-noise estimate
    fill_common(out, solution);
  }
  return out;
}

struct InstanceRow {
  std::string name;
  int vars = 0;
  int rows = 0;
  Measurement dense;
  Measurement revised;
  bool objectives_match = false;
  double node_speedup = 0.0;  ///< dense ms/node over revised ms/node
};

InstanceRow run_instance(const std::string& name, const CapturedLayer& instance,
                         int repetitions, long node_cap) {
  InstanceRow row;
  row.name = name;
  row.vars = instance.model.variable_count();
  row.rows = instance.model.constraint_count();
  row.dense = measure(instance, /*warm_revised=*/false, repetitions, node_cap);
  row.revised = measure(instance, /*warm_revised=*/true, repetitions, node_cap);
  // Objective identity is a theorem only when BOTH searches close: root
  // presolve changes the LP fractional points, hence the dive and the
  // pseudocost history, hence the tree — two truncated searches legitimately
  // hold different incumbents. A truncated production (revised) run must
  // still hold SOME incumbent — its root dive guarantees one on feasible
  // instances — while the dense seed configuration has no dive (the dive
  // re-solves on the revised workspace) and may legitimately hold nothing
  // at a small node cap.
  const bool both_closed = row.dense.closed && row.revised.closed;
  if (both_closed) {
    row.objectives_match =
        row.dense.status == row.revised.status &&
        (!row.dense.has_objective ||
         std::abs(row.dense.objective - row.revised.objective) <= 1e-6);
  } else {
    row.objectives_match = row.revised.status != milp::MilpStatus::NoSolution;
  }
  const double dense_per_node =
      row.dense.wall_ms / static_cast<double>(std::max<long>(row.dense.nodes, 1));
  const double revised_per_node =
      row.revised.wall_ms / static_cast<double>(std::max<long>(row.revised.nodes, 1));
  row.node_speedup = revised_per_node > 0.0 ? dense_per_node / revised_per_node : 0.0;
  return row;
}

// --- parallel scaling --------------------------------------------------------

/// One (instance, worker-count) cell of the scaling sweep.
struct ScalingPoint {
  int threads = 1;
  milp::MilpStatus status = milp::MilpStatus::NoSolution;
  double objective = 0.0;
  bool has_objective = false;
  bool closed = false;
  double best_bound = 0.0;
  double gap = 0.0;
  long nodes = 0;
  long steals = 0;
  long incumbent_updates = 0;
  long bound_prunes = 0;
  long cutoff_prunes = 0;
  long dive_lp_solves = 0;
  bool dive_found_incumbent = false;
  double idle_seconds = 0.0;
  double wall_ms = 0.0;
  double speedup = 0.0;  ///< 1-worker wall over this wall
};

struct ScalingRow {
  std::string name;
  int vars = 0;
  int rows = 0;
  long node_cap = 0;
  std::vector<ScalingPoint> points;
  /// The 1-worker search CLOSED (proved optimality or infeasibility). Only
  /// then is objective identity across teams a theorem; a search truncated
  /// at the node budget holds whatever incumbent its exploration order
  /// happened to reach, which legitimately differs across worker counts
  /// (and across reruns of the same worker count).
  bool closed = false;
  bool objectives_match = true;  ///< closed rows: every team proved the same result
  bool must_close = false;  ///< caller expects this instance to close (gates the run)
  /// Every worker count reported the same status as the 1-worker baseline
  /// (in particular: nobody degraded to NoSolution).
  bool status_consistent = true;
  bool any_nosolution = false;
};

ScalingRow run_scaling(const std::string& name, const CapturedLayer& instance,
                       const std::vector<int>& worker_counts, long node_cap,
                       int repetitions) {
  ScalingRow row;
  row.name = name;
  row.vars = instance.model.variable_count();
  row.rows = instance.model.constraint_count();
  row.node_cap = node_cap;
  for (const int threads : worker_counts) {
    milp::MilpOptions options =
        solver_config(/*warm_revised=*/true, node_cap, instance.bounds);
    options.threads = threads;
    ScalingPoint point;
    point.threads = threads;
    point.wall_ms = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < repetitions; ++rep) {
      const auto begin = Clock::now();
      const milp::MilpSolution solution = milp::solve_milp(instance.model, options);
      const double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - begin).count();
      point.wall_ms = std::min(point.wall_ms, ms);
      point.status = solution.status;
      point.has_objective = solution.status == milp::MilpStatus::Optimal ||
                            solution.status == milp::MilpStatus::Feasible;
      point.objective = point.has_objective ? solution.objective : 0.0;
      point.closed = solution.status == milp::MilpStatus::Optimal ||
                     solution.status == milp::MilpStatus::Infeasible;
      point.best_bound = solution.best_bound;
      point.gap = point.has_objective ? solution.objective - solution.best_bound : 0.0;
      point.nodes = solution.nodes;
      point.steals = solution.steals;
      point.incumbent_updates = solution.incumbent_updates;
      point.bound_prunes = solution.bound_prunes;
      point.cutoff_prunes = solution.cutoff_prunes;
      point.dive_lp_solves = solution.dive_lp_solves;
      point.dive_found_incumbent = solution.dive_found_incumbent;
      point.idle_seconds = solution.worker_idle_seconds;
    }
    row.points.push_back(point);
  }
  const ScalingPoint& base = row.points.front();
  row.closed = base.status == milp::MilpStatus::Optimal ||
               base.status == milp::MilpStatus::Infeasible;
  for (ScalingPoint& point : row.points) {
    point.speedup = point.wall_ms > 0.0 ? base.wall_ms / point.wall_ms : 0.0;
    row.status_consistent = row.status_consistent && point.status == base.status;
    row.any_nosolution =
        row.any_nosolution || point.status == milp::MilpStatus::NoSolution;
    if (row.closed) {
      row.objectives_match =
          row.objectives_match && point.status == base.status &&
          (!base.has_objective ||
           std::abs(point.objective - base.objective) <= 1e-6);
    }
  }
  return row;
}

double median(std::vector<double> xs) {
  if (xs.empty()) {
    return 0.0;
  }
  std::sort(xs.begin(), xs.end());
  const std::size_t mid = xs.size() / 2;
  return xs.size() % 2 == 1 ? xs[mid] : 0.5 * (xs[mid - 1] + xs[mid]);
}

std::string json_record(const std::string& solver, const InstanceRow& row,
                        const Measurement& m) {
  std::ostringstream os;
  os << "    {\"solver\": \"" << solver << "\", \"instance\": \"" << row.name
     << "\", \"vars\": " << row.vars << ", \"rows\": " << row.rows
     << ", \"status\": \"" << milp::to_string(m.status) << "\", \"nodes\": " << m.nodes
     << ", \"pivots\": " << m.pivots << ", \"warm_solves\": " << m.warm_solves
     << ", \"closed\": " << (m.closed ? "true" : "false")
     << ", \"objective\": " << (m.has_objective ? std::to_string(m.objective) : "null")
     << ", \"best_bound\": " << m.best_bound << ", \"proven_gap\": " << m.gap
     << ", \"bound_prunes\": " << m.bound_prunes
     << ", \"cutoff_prunes\": " << m.cutoff_prunes
     << ", \"dive_lp_solves\": " << m.dive_lp_solves
     << ", \"dive_found_incumbent\": " << (m.dive_found_incumbent ? "true" : "false")
     << ", \"wall_ms\": " << m.wall_ms << "}";
  return os.str();
}

/// The acceptance gate of the bound-driven-search PR: the big Table-2
/// layer-0 MILPs close to proven optimality at (or below) the known
/// incumbents, at every worker count.
struct ClosureGate {
  const char* instance;
  double known_incumbent;
  bool seen = false;
  bool ok = false;
};

void check_closure(std::vector<ClosureGate>& gates, const ScalingRow& row) {
  for (ClosureGate& gate : gates) {
    if (row.name != gate.instance) {
      continue;
    }
    gate.seen = true;
    gate.ok = row.closed && row.status_consistent && !row.any_nosolution;
    for (const ScalingPoint& point : row.points) {
      gate.ok = gate.ok && point.status == milp::MilpStatus::Optimal &&
                point.objective <= gate.known_incumbent + 1e-6;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool scaling_only = false;
  bool closure_only = false;
  std::string out_path = "BENCH_solver.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--scaling") {
      scaling_only = true;
    } else if (arg == "--closure") {
      closure_only = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_solver_perf [--smoke] [--scaling] [--closure] "
                   "[--out <path>]\n";
      return 2;
    }
  }

  if (closure_only) {
    // CI Release closure gate: the big Table-2 layer-0 MILPs (the full
    // 10-indeterminate-op layers) must close to proven optimality at or
    // below the known incumbents, with identical status at every worker
    // count and no NoSolution anywhere.
    std::vector<ClosureGate> gates{{"case2-layer-0", 550.0},
                                   {"case3-layer-0", 548.0}};
    struct ClosureSpec {
      const char* tag;
      model::Assay assay;
    };
    std::vector<ClosureSpec> specs;
    specs.push_back({"case2", assays::gene_expression_assay()});
    specs.push_back({"case3", assays::rt_qpcr_assay()});
    bool ok = true;
    for (const ClosureSpec& spec : specs) {
      const auto models = capture_layer_models(spec.assay, 1);
      int index = 0;
      for (const CapturedLayer& captured : models) {
        std::ostringstream name;
        name << spec.tag << "-layer-" << index++;
        ScalingRow row = run_scaling(name.str(), captured, {1, 2, 4},
                                     /*node_cap=*/5000, /*repetitions=*/1);
        row.must_close = true;
        check_closure(gates, row);
        for (const ScalingPoint& point : row.points) {
          std::cout << row.name << " threads=" << point.threads << ": "
                    << milp::to_string(point.status) << " obj=" << point.objective
                    << " bound=" << point.best_bound << " nodes=" << point.nodes
                    << " bound_prunes=" << point.bound_prunes
                    << " dive=" << (point.dive_found_incumbent ? 1 : 0) << ", "
                    << point.wall_ms << " ms\n";
        }
      }
    }
    for (const ClosureGate& gate : gates) {
      if (!gate.seen || !gate.ok) {
        std::cout << "CLOSURE GATE FAILED: " << gate.instance
                  << (gate.seen ? " did not close optimally at <= " : " not captured")
                  << (gate.seen ? std::to_string(gate.known_incumbent) : std::string())
                  << "\n";
        ok = false;
      }
    }
    std::cout << (ok ? "closure gate passed: case2/case3 layer-0 proven optimal "
                       "at every worker count\n"
                     : "closure gate FAILED\n");
    return ok ? 0 : 1;
  }

  if (scaling_only) {
    // CI Release smoke of the parallel solver: case-2 layer MILPs captured
    // at a LOW layering threshold so they are small enough for every team
    // to solve to optimality — only a closed search makes objective
    // identity across worker counts a theorem. Wall-clock speedup is
    // informational (CI runner core counts vary).
    const auto models =
        capture_layer_models(assays::gene_expression_assay(), 2,
                             /*indeterminate_threshold=*/5);
    std::cout << "=== Parallel scaling smoke: " << models.size()
              << " small case-2 layer MILPs, workers {1,2,4} ===\n";
    bool ok = true;
    int index = 0;
    for (const CapturedLayer& captured : models) {
      std::ostringstream name;
      name << "case2-t5-layer-" << index++;
      const ScalingRow row = run_scaling(name.str(), captured, {1, 2, 4},
                                         /*node_cap=*/20000, /*repetitions=*/1);
      for (const ScalingPoint& point : row.points) {
        std::cout << row.name << " threads=" << point.threads << ": "
                  << milp::to_string(point.status) << " obj=" << point.objective
                  << ", " << point.wall_ms << " ms, " << point.nodes
                  << " nodes, " << point.steals << " steals, speedup "
                  << point.speedup << "x\n";
      }
      if (!row.closed) {
        std::cout << row.name << ": search did not close at 20000 nodes\n";
      }
      ok = ok && row.closed && row.objectives_match;
    }
    std::cout << (ok ? "all searches closed; objectives agree across worker counts\n"
                     : "OBJECTIVE MISMATCH (or unclosed search) across worker counts\n");
    return ok ? 0 : 1;
  }

  const int repetitions = smoke ? 1 : 3;
  const std::size_t cap_per_case = smoke ? 1 : 3;
  const int random_count = smoke ? 6 : 30;
  // Equal node budget for the Table-2 layer differential rows. The budget
  // stays modest because the dense seed pays ~0.5 s per node on the big
  // layer-0 models; closure of those models is asserted in the scaling
  // sweep below (production configuration, generous cap), not here.
  const long layer_node_cap = smoke ? 25 : 120;

  std::cout << "=== Solver performance: dense cold vs revised warm-started B&B ===\n";
  std::cout << "(instances: Table-2 per-layer MILPs + random MIPs; "
            << (smoke ? "smoke" : "full") << " mode)\n\n";

  struct CaseSpec {
    const char* tag;
    model::Assay assay;
  };
  std::vector<CaseSpec> cases;
  cases.push_back({"case1", assays::kinase_activity_assay()});
  if (!smoke) {
    cases.push_back({"case2", assays::gene_expression_assay()});
    cases.push_back({"case3", assays::rt_qpcr_assay()});
  } else {
    cases.push_back({"case2", assays::gene_expression_assay()});
  }

  std::vector<InstanceRow> rows;
  std::vector<double> table2_speedups;  // case 2/3 only: the acceptance metric
  // Case-2/3 layer models are kept for the parallel-scaling sweep below.
  std::vector<std::pair<std::string, CapturedLayer>> table2_models;
  for (const CaseSpec& spec : cases) {
    const auto models = capture_layer_models(spec.assay, cap_per_case);
    std::cout << spec.tag << ": captured " << models.size() << " layer MILPs\n";
    int index = 0;
    for (const CapturedLayer& captured : models) {
      std::ostringstream name;
      name << spec.tag << "-layer-" << index++;
      rows.push_back(run_instance(name.str(), captured, 1, layer_node_cap));
      if (spec.tag != std::string("case1")) {
        table2_speedups.push_back(rows.back().node_speedup);
        table2_models.emplace_back(name.str(), captured);
      }
    }
  }
  for (int i = 0; i < random_count; ++i) {
    std::ostringstream name;
    name << "rand-" << i;
    rows.push_back(run_instance(name.str(),
                                CapturedLayer{make_random_milp(
                                                  static_cast<std::uint64_t>(i) *
                                                      6364136223846793005ULL +
                                                  1442695040888963407ULL),
                                              nullptr},
                                repetitions, /*node_cap=*/0));
  }

  TextTable table({"Instance", "Size", "Status", "Nodes d/r", "Pivots d/r", "ms d/r",
                   "ms/node d/r", "Speedup", "Obj match"});
  bool all_match = true;
  for (const InstanceRow& row : rows) {
    all_match = all_match && row.objectives_match;
    std::ostringstream size, nodes, pivots, ms, per_node, speedup;
    size << row.vars << "x" << row.rows;
    nodes << row.dense.nodes << "/" << row.revised.nodes;
    pivots << row.dense.pivots << "/" << row.revised.pivots;
    ms.precision(3);
    ms << std::fixed << row.dense.wall_ms << "/" << row.revised.wall_ms;
    per_node.precision(4);
    per_node << std::fixed
             << row.dense.wall_ms / std::max<double>(1.0, static_cast<double>(row.dense.nodes))
             << "/"
             << row.revised.wall_ms /
                    std::max<double>(1.0, static_cast<double>(row.revised.nodes));
    speedup.precision(2);
    speedup << std::fixed << row.node_speedup << "x";
    table.add_row({row.name, size.str(), milp::to_string(row.revised.status), nodes.str(),
                   pivots.str(), ms.str(), per_node.str(), speedup.str(),
                   row.objectives_match ? "yes" : "NO"});
  }
  table.print(std::cout);

  std::vector<double> all_speedups;
  for (const InstanceRow& row : rows) {
    all_speedups.push_back(row.node_speedup);
  }
  const double table2_median = median(table2_speedups);
  const double overall_median = median(all_speedups);
  std::cout << "\nmedian node re-solve speedup (Table-2 case 2/3 layer models): "
            << table2_median << "x\n";
  std::cout << "median node re-solve speedup (all instances): " << overall_median
            << "x\n";
  std::cout << "objectives: " << (all_match ? "all configurations agree" : "MISMATCH")
            << "\n";

  // Satellite of the revised-simplex PR: the tiny-instance regression is
  // fixed by the tiny-model cold-solve fallback, so the all-instances median must not
  // dip below parity again.
  const bool overall_ok = smoke || overall_median >= 1.0;
  if (!overall_ok) {
    std::cout << "REGRESSION: all-instances median node speedup " << overall_median
              << " < 1.0\n";
  }

  // --- parallel scaling sweep (full mode) ----------------------------------
  std::vector<ScalingRow> scaling_rows;
  std::vector<double> scaling_speedups_4w;  // case-2/3 layer models
  bool scaling_objectives_ok = true;
  bool scaling_status_ok = true;     ///< same status at every worker count
  bool scaling_no_nosolution = true; ///< no worker count degraded to NoSolution
  const unsigned hardware_threads = std::max(1u, std::thread::hardware_concurrency());
  std::vector<ClosureGate> closure_gates{{"case2-layer-0", 550.0},
                                         {"case3-layer-0", 548.0}};
  if (!smoke) {
    std::cout << "\n=== Parallel scaling: revised warm B&B, workers {1,2,4,8}, "
                 "equal node budgets ===\n";
    // With the combinatorial bounds + cost-floor cuts the big Table-2 layer
    // models now CLOSE well inside the budget, so their rows assert full
    // objective identity across worker counts — and the layer-0 rows feed
    // the closure gate (proven optimality at or below the known 550/548
    // incumbents at EVERY worker count, never NoSolution). The low-threshold
    // re-layered assays and the random instances stay as smaller closed
    // cross-checks.
    for (const auto& [name, captured] : table2_models) {
      scaling_rows.push_back(
          run_scaling(name, captured, {1, 2, 4, 8}, /*node_cap=*/5000, 1));
      if (name == "case2-layer-0" || name == "case3-layer-0") {
        scaling_rows.back().must_close = true;
      }
      check_closure(closure_gates, scaling_rows.back());
    }
    struct ClosedSpec {
      const char* tag;
      model::Assay assay;
    };
    std::vector<ClosedSpec> closed_specs;
    closed_specs.push_back({"case2-t5", assays::gene_expression_assay()});
    closed_specs.push_back({"case3-t5", assays::rt_qpcr_assay()});
    for (const ClosedSpec& spec : closed_specs) {
      const auto models =
          capture_layer_models(spec.assay, 2, /*indeterminate_threshold=*/5);
      int index = 0;
      for (const CapturedLayer& captured : models) {
        std::ostringstream name;
        name << spec.tag << "-layer-" << index++;
        scaling_rows.push_back(
            run_scaling(name.str(), captured, {1, 2, 4, 8}, /*node_cap=*/20000, 1));
        scaling_rows.back().must_close = true;
      }
    }
    for (int i = 0; i < 4; ++i) {
      std::ostringstream name;
      name << "rand-scale-" << i;
      scaling_rows.push_back(run_scaling(
          name.str(),
          CapturedLayer{make_random_milp(static_cast<std::uint64_t>(i) *
                                             2862933555777941757ULL +
                                         3037000493ULL),
                        nullptr},
          {1, 2, 4, 8}, /*node_cap=*/2000, 1));
      scaling_rows.back().must_close = true;
    }
    TextTable scaling_table(
        {"Instance", "Size", "Threads", "Status", "Objective", "ms", "Speedup",
         "Nodes", "Steals", "Idle s", "Obj match"});
    int speedup_sample_rows = 0;
    for (const ScalingRow& row : scaling_rows) {
      scaling_objectives_ok = scaling_objectives_ok &&
                              (!row.closed || row.objectives_match) &&
                              (!row.must_close || row.closed);
      scaling_status_ok = scaling_status_ok && row.status_consistent;
      scaling_no_nosolution = scaling_no_nosolution && !row.any_nosolution;
      if (row.must_close && !row.closed) {
        std::cout << row.name << ": search did not close at its node cap\n";
      }
      if (!row.status_consistent) {
        std::cout << row.name << ": STATUS differs across worker counts\n";
      }
      if (row.any_nosolution) {
        std::cout << row.name << ": a worker count reported NoSolution\n";
      }
      const bool layer_instance = row.name.rfind("rand", 0) != 0;
      // Only layer rows whose sequential solve is substantial feed the
      // speedup median: below ~50 ms team startup and steal traffic drown
      // the signal and no scaling claim is meaningful either way.
      const bool speedup_sample =
          layer_instance && row.points.front().wall_ms >= 50.0;
      speedup_sample_rows += speedup_sample ? 1 : 0;
      for (const ScalingPoint& point : row.points) {
        if (speedup_sample && point.threads == 4) {
          scaling_speedups_4w.push_back(point.speedup);
        }
        std::ostringstream size, threads, objective, ms, speedup, idle;
        size << row.vars << "x" << row.rows;
        threads << point.threads;
        objective.precision(4);
        objective << std::fixed << point.objective;
        ms.precision(3);
        ms << std::fixed << point.wall_ms;
        speedup.precision(2);
        speedup << std::fixed << point.speedup << "x";
        idle.precision(3);
        idle << std::fixed << point.idle_seconds;
        scaling_table.add_row(
            {row.name, size.str(), threads.str(), milp::to_string(point.status),
             point.has_objective ? objective.str() : "-", ms.str(),
             speedup.str(), std::to_string(point.nodes),
             std::to_string(point.steals), idle.str(),
             row.closed ? (row.objectives_match ? "yes" : "NO") : "open"});
      }
    }
    scaling_table.print(std::cout);
    std::cout << "hardware threads: " << hardware_threads << "\n";
    std::cout << "median 4-worker speedup (case-2/3 layer models, "
              << speedup_sample_rows << " instances >= 50 ms sequential): "
              << median(scaling_speedups_4w) << "x\n";
  }
  // Wall-clock scaling is only meaningful with real cores to scale onto: on
  // a 1-2 core host the workers time-slice the same CPU and the sweep
  // degenerates to sequential-plus-overhead, so the >= 2x gate arms only on
  // hosts with at least 4 hardware threads.
  bool scaling_speedup_ok = true;
  if (!smoke && hardware_threads >= 4) {
    scaling_speedup_ok = median(scaling_speedups_4w) >= 2.0;
    if (!scaling_speedup_ok) {
      std::cout << "REGRESSION: median 4-worker speedup "
                << median(scaling_speedups_4w) << " < 2.0\n";
    }
  } else if (!smoke) {
    std::cout << "(speedup gate skipped: " << hardware_threads
              << " hardware thread(s); need >= 4)\n";
  }
  if (!scaling_objectives_ok) {
    std::cout << "OBJECTIVE MISMATCH across worker counts\n";
  }
  bool closure_ok = smoke;
  if (!smoke) {
    closure_ok = true;
    for (const ClosureGate& gate : closure_gates) {
      if (gate.seen && gate.ok) {
        std::cout << gate.instance << ": closed to proven optimality at <= "
                  << gate.known_incumbent << " at every worker count\n";
      } else {
        std::cout << "CLOSURE GATE FAILED: " << gate.instance
                  << (gate.seen ? " did not close optimally" : " was not captured")
                  << "\n";
        closure_ok = false;
      }
    }
  }

  if (!smoke) {
    std::ofstream out(out_path);
    out << "{\n  \"benchmark\": \"bench_solver_perf\",\n";
    out << "  \"solvers\": {\"dense-cold\": \"seed dense tableau, cold per node, no presolve\", "
           "\"revised-warm\": \"sparse revised simplex, root presolve, warm dual re-solves\"},\n";
    out << "  \"median_node_speedup_table2_case23\": " << table2_median << ",\n";
    out << "  \"median_node_speedup_all\": " << overall_median << ",\n";
    out << "  \"objectives_match\": " << (all_match ? "true" : "false") << ",\n";
    out << "  \"hardware_threads\": " << hardware_threads << ",\n";
    out << "  \"median_parallel_speedup_4workers_case23\": "
        << median(scaling_speedups_4w) << ",\n";
    out << "  \"scaling_objectives_match\": "
        << (scaling_objectives_ok ? "true" : "false") << ",\n";
    out << "  \"scaling_status_consistent\": "
        << (scaling_status_ok ? "true" : "false") << ",\n";
    out << "  \"scaling_no_nosolution\": "
        << (scaling_no_nosolution ? "true" : "false") << ",\n";
    out << "  \"closure\": [";
    for (std::size_t g = 0; g < closure_gates.size(); ++g) {
      const ClosureGate& gate = closure_gates[g];
      out << (g > 0 ? ", " : "") << "{\"instance\": \"" << gate.instance
          << "\", \"known_incumbent\": " << gate.known_incumbent
          << ", \"closed\": " << (gate.seen && gate.ok ? "true" : "false") << "}";
    }
    out << "],\n";
    out << "  \"scaling\": [\n";
    for (std::size_t i = 0; i < scaling_rows.size(); ++i) {
      const ScalingRow& row = scaling_rows[i];
      out << "    {\"instance\": \"" << row.name << "\", \"vars\": " << row.vars
          << ", \"rows\": " << row.rows << ", \"node_cap\": " << row.node_cap
          << ", \"closed\": " << (row.closed ? "true" : "false")
          << ", \"objectives_match\": "
          << (row.closed ? (row.objectives_match ? "true" : "false") : "null")
          << ", \"status_consistent\": "
          << (row.status_consistent ? "true" : "false")
          << ", \"points\": [";
      for (std::size_t p = 0; p < row.points.size(); ++p) {
        const ScalingPoint& point = row.points[p];
        out << (p > 0 ? ", " : "") << "{\"threads\": " << point.threads
            << ", \"status\": \"" << milp::to_string(point.status) << "\""
            << ", \"objective\": "
            << (point.has_objective ? std::to_string(point.objective) : "null")
            << ", \"closed\": " << (point.closed ? "true" : "false")
            << ", \"best_bound\": " << point.best_bound
            << ", \"proven_gap\": " << point.gap
            << ", \"wall_ms\": " << point.wall_ms
            << ", \"speedup\": " << point.speedup << ", \"nodes\": " << point.nodes
            << ", \"steals\": " << point.steals
            << ", \"incumbent_updates\": " << point.incumbent_updates
            << ", \"bound_prunes\": " << point.bound_prunes
            << ", \"cutoff_prunes\": " << point.cutoff_prunes
            << ", \"dive_lp_solves\": " << point.dive_lp_solves
            << ", \"dive_found_incumbent\": "
            << (point.dive_found_incumbent ? "true" : "false")
            << ", \"idle_seconds\": " << point.idle_seconds << "}";
      }
      out << "]}" << (i + 1 < scaling_rows.size() ? ",\n" : "\n");
    }
    out << "  ],\n";
    out << "  \"records\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      out << json_record("dense-cold", rows[i], rows[i].dense) << ",\n";
      out << json_record("revised-warm", rows[i], rows[i].revised)
          << (i + 1 < rows.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    std::cout << "wrote " << out_path << "\n";
  }

  return all_match && overall_ok && scaling_objectives_ok && scaling_speedup_ok &&
                 scaling_status_ok && scaling_no_nosolution && closure_ok
             ? 0
             : 1;
}
