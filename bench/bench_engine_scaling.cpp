// Scaling of the batch-synthesis engine: the paper's three benchmark
// assays (plus a second gene-expression variant, for a 4-assay manifest)
// synthesized at --jobs 1 vs --jobs 4, and a replicated case-3 (RT-qPCR)
// re-synthesis demonstrating the layer-solution cache. Prints measured
// wall times, the speedup, and the engine's metrics JSON.
//
// Speedup depends on the host: on a single hardware thread the --jobs 4 run
// degenerates to sequential execution and the honest speedup is ~1x. The
// hardware concurrency is printed alongside so results are interpretable.
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "assays/benchmarks.hpp"
#include "engine/batch.hpp"
#include "io/assay_text.hpp"
#include "util/table.hpp"

namespace {

using namespace cohls;

std::vector<engine::BatchJob> four_assay_manifest() {
  std::vector<engine::BatchJob> jobs;
  const auto add = [&jobs](const std::string& name, const model::Assay& assay) {
    engine::BatchJob job;
    job.name = name;
    job.text = io::to_text(assay);
    jobs.push_back(job);
  };
  add("case1-kinase", assays::kinase_activity_assay());
  add("case2-gene-expr", assays::gene_expression_assay());
  add("case3-rt-qpcr", assays::rt_qpcr_assay());
  add("case2-gene-expr-14", assays::gene_expression_assay(14));
  return jobs;
}

double run_with_jobs(int jobs_n, const std::vector<engine::BatchJob>& jobs) {
  engine::BatchOptions options;
  options.jobs = jobs_n;
  engine::BatchEngine batch(options);
  const auto begin = std::chrono::steady_clock::now();
  const std::vector<engine::BatchResult> rows = batch.run(jobs);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  for (const engine::BatchResult& row : rows) {
    if (row.status != engine::JobStatus::Ok) {
      std::cerr << row.name << ": " << engine::to_string(row.status) << ": "
                << row.detail << "\n";
    }
  }
  return seconds;
}

}  // namespace

int main() {
  std::cout << "engine scaling (hardware concurrency: "
            << std::thread::hardware_concurrency() << ")\n\n";

  const std::vector<engine::BatchJob> jobs = four_assay_manifest();

  TextTable table({"jobs", "wall s", "speedup"});
  const double base = run_with_jobs(1, jobs);
  for (const int n : {1, 2, 4}) {
    const double seconds = run_with_jobs(n, jobs);
    std::ostringstream wall, speedup;
    wall.precision(3);
    wall << std::fixed << seconds;
    speedup.precision(2);
    speedup << std::fixed << (seconds > 0.0 ? base / seconds : 0.0) << "x";
    table.add_row({std::to_string(n), wall.str(), speedup.str()});
  }
  table.print(std::cout);

  // Cache demonstration: replicated case-3 re-synthesis. The per-cell
  // pipelines of the RT-qPCR assay produce isomorphic layer contexts within
  // one run, and re-submitting the assay replays every layer from the
  // cache. A non-zero hit rate here is an acceptance criterion.
  engine::BatchEngine cached{engine::BatchOptions{}};
  engine::BatchJob case3;
  case3.name = "case3-rt-qpcr";
  case3.text = io::to_text(assays::rt_qpcr_assay());
  for (int round = 0; round < 2; ++round) {
    const auto rows = cached.run({case3});
    if (rows.front().status != engine::JobStatus::Ok) {
      std::cerr << "case3 round " << round << " failed: " << rows.front().detail
                << "\n";
      return 1;
    }
  }
  std::cout << "\nreplicated case-3 re-synthesis (2 rounds, shared cache):\n"
            << cached.report() << "\nmetrics json:\n"
            << cached.metrics_json() << "\n";
  return 0;
}
