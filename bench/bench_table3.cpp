// Reproduces Table 3: improvement from progressive re-synthesis on the two
// hybrid-scheduled cases (2 and 3). The paper reports the assay execution
// time and device count of the initial pass and of the first two
// re-synthesis iterations: a large first improvement (~16-17%) from
// transport refinement + posterior device knowledge, a small second one,
// with the device count flat.
#include <iomanip>
#include <iostream>
#include <sstream>

#include "assays/benchmarks.hpp"
#include "core/progressive_resynthesis.hpp"
#include "util/table.hpp"

using namespace cohls;

namespace {

std::string percent(double previous, double current) {
  if (previous <= 0.0) {
    return "-";
  }
  std::ostringstream out;
  out << std::fixed << std::setprecision(2) << (previous - current) / previous * 100.0
      << '%';
  return out.str();
}

}  // namespace

int main() {
  std::cout << "=== Table 3: Improvement from Progressive Re-Synthesis ===\n\n";

  core::SynthesisOptions options;
  options.max_devices = 25;
  options.layering.indeterminate_threshold = 10;
  // Force at least two re-synthesis iterations to fill the table, matching
  // the paper's reporting (it shows both iterations even when the second
  // improvement is below the 10% continuation bar).
  options.resynthesis_improvement_threshold = -1.0;
  options.max_resynthesis_iterations = 2;

  const model::Assay cases[] = {
      assays::gene_expression_assay(),
      assays::rt_qpcr_assay(),
  };

  TextTable table({"Case", "Metric", "Initial", "1st Ite.", "Improve", "2nd Ite.",
                   "Improve"});
  int case_number = 1;
  for (const model::Assay& assay : cases) {
    ++case_number;  // paper numbering: cases 2 and 3
    const core::SynthesisReport report = core::synthesize(assay, options);
    COHLS_ASSERT(report.iterations.size() >= 3, "expected initial + 2 iterations");
    const auto& it0 = report.iterations[0];
    const auto& it1 = report.iterations[1];
    const auto& it2 = report.iterations[2];
    table.add_row({std::to_string(case_number), "Exe.Time",
                   it0.execution_time.to_string(), it1.execution_time.to_string(),
                   percent(static_cast<double>(it0.execution_time.fixed().count()),
                           static_cast<double>(it1.execution_time.fixed().count())),
                   it2.execution_time.to_string(),
                   percent(static_cast<double>(it1.execution_time.fixed().count()),
                           static_cast<double>(it2.execution_time.fixed().count()))});
    table.add_row({std::to_string(case_number), "#D.", std::to_string(it0.device_count),
                   std::to_string(it1.device_count),
                   percent(it0.device_count, it1.device_count),
                   std::to_string(it2.device_count),
                   percent(it1.device_count, it2.device_count)});
  }
  table.print(std::cout);

  std::cout << "\npaper reference:\n";
  std::cout << "  case 2: Exe.Time 295m -> 247m (16.27%) -> 244m (1.21%); #D. 21 flat\n";
  std::cout << "  case 3: Exe.Time 641m -> 530m (17.32%) -> 492m (7.17%); #D. 24 flat\n";
  return 0;
}
