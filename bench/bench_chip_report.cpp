// Chip-budget report: translates the Table 2 solutions into fabricated-chip
// terms (flow valves, transportation channels, control ports with and
// without a multiplexer). The component-oriented method's fewer devices and
// paths show up directly as a smaller valve/port budget — the physical
// reality behind the paper's processing-cost objective.
#include <iostream>

#include "assays/benchmarks.hpp"
#include "baseline/conventional.hpp"
#include "chip/resources.hpp"
#include "core/progressive_resynthesis.hpp"
#include "util/table.hpp"

using namespace cohls;

int main() {
  std::cout << "=== Chip budget of the Table 2 solutions ===\n\n";

  core::SynthesisOptions options;
  options.max_devices = 25;
  options.layering.indeterminate_threshold = 10;

  TextTable table({"Case", "Method", "Valves", "Channels", "Ports(direct)",
                   "Ports(muxed)"});
  const model::Assay cases[] = {
      assays::kinase_activity_assay(),
      assays::gene_expression_assay(),
      assays::rt_qpcr_assay(),
  };
  int case_number = 0;
  for (const model::Assay& assay : cases) {
    ++case_number;
    for (const bool conventional : {true, false}) {
      const core::SynthesisReport report =
          conventional ? baseline::synthesize_conventional(assay, options)
                       : core::synthesize(assay, options);
      const chip::ChipResources budget =
          chip::estimate_resources(report.result, assay);
      table.add_row({std::to_string(case_number), conventional ? "Conv." : "Our",
                     std::to_string(budget.flow_valves),
                     std::to_string(budget.channels),
                     std::to_string(budget.control_ports_direct),
                     std::to_string(budget.control_ports_multiplexed)});
    }
  }
  table.print(std::cout);
  std::cout << "\n(expected: fewer devices/paths shrink the valve and channel budget"
               " — decisively on case 1; on capture-heavy assays the integrated"
               " multi-accessory rings trade extra valves per device for fewer"
               " channels, the same trade-off the paper's processing-cost weights"
               " arbitrate)\n";
  return 0;
}
