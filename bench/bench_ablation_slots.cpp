// Ablation F: fixed-time-slot scheduling. The paper's introduction argues
// that "the fixed-time-slot scheduling methods are insufficient to solve
// the new design challenges"; this bench quantifies the slot tax by sweeping
// the slot length of the conventional baseline (0 = continuous starts) on
// the three benchmark assays.
#include <iostream>

#include "assays/benchmarks.hpp"
#include "baseline/conventional.hpp"
#include "schedule/validate.hpp"
#include "util/table.hpp"

using namespace cohls;

int main() {
  std::cout << "=== Ablation F: the fixed-time-slot tax (conventional baseline) ===\n\n";

  core::SynthesisOptions options;
  options.max_devices = 25;
  options.layering.indeterminate_threshold = 10;

  TextTable table({"Case", "Slot", "Exe.Time", "#D.", "#P.", "Valid"});
  const model::Assay cases[] = {
      assays::kinase_activity_assay(),
      assays::gene_expression_assay(),
      assays::rt_qpcr_assay(),
  };
  int case_number = 0;
  for (const model::Assay& assay : cases) {
    ++case_number;
    for (const std::int64_t slot : {0, 5, 10, 20}) {
      const auto report =
          baseline::synthesize_conventional(assay, options, Minutes{slot});
      const bool valid =
          schedule::validate_result(report.result, assay, report.transport).empty();
      table.add_row({std::to_string(case_number),
                     slot == 0 ? "continuous" : std::to_string(slot) + "m",
                     report.result.total_time(assay).to_string(),
                     std::to_string(report.result.used_device_count()),
                     std::to_string(report.result.path_count(assay)),
                     valid ? "yes" : "NO"});
    }
  }
  table.print(std::cout);
  std::cout << "\n(expected: coarser slots only ever delay starts, so execution time"
               " grows monotonically with the slot length)\n";
  return 0;
}
