// Reproduces Table 2: synthesis results for the three bioassays, comparing
// the modified conventional method (component-requirement classes, exact
// type matching) with the component-oriented method, under the paper's
// setup: |D| = 25, layer threshold t = 10. Columns match the paper:
// execution time (with symbolic I_k overruns), #devices, #paths, runtime.
//
// Expected shape (paper values in EXPERIMENTS.md): our method matches or
// beats the conventional one in execution time with no more devices and
// fewer transportation paths on every case.
#include <chrono>
#include <iostream>
#include <string>

#include "assays/benchmarks.hpp"
#include "baseline/conventional.hpp"
#include "core/progressive_resynthesis.hpp"
#include "schedule/validate.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

using namespace cohls;

namespace {

struct RowData {
  std::string time;
  int devices;
  int paths;
  std::string runtime;
  bool valid;
};

RowData run(const model::Assay& assay, const core::SynthesisOptions& options,
            bool conventional) {
  const auto start = std::chrono::steady_clock::now();
  const core::SynthesisReport report =
      conventional ? baseline::synthesize_conventional(assay, options)
                   : core::synthesize(assay, options);
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  RowData row;
  row.time = report.result.total_time(assay).to_string();
  row.devices = report.result.used_device_count();
  row.paths = report.result.path_count(assay);
  row.runtime = format_wallclock(elapsed.count());
  row.valid = schedule::validate_result(report.result, assay, report.transport).empty();
  return row;
}

}  // namespace

int main() {
  std::cout << "=== Table 2: Synthesis Results for Bioassays ===\n";
  std::cout << "(|D| = 25, layer threshold t = 10; Conv. = modified conventional"
               " method, Our = component-oriented method)\n\n";

  core::SynthesisOptions options;
  options.max_devices = 25;
  options.layering.indeterminate_threshold = 10;

  const model::Assay cases[] = {
      assays::kinase_activity_assay(),
      assays::gene_expression_assay(),
      assays::rt_qpcr_assay(),
  };

  TextTable table({"Case", "Testcase", "#Op", "#Ind.Op", "Method", "Exe.Time", "#D.",
                   "#P.", "Runtime", "Valid"});
  int case_number = 0;
  for (const model::Assay& assay : cases) {
    ++case_number;
    for (const bool conventional : {true, false}) {
      const RowData row = run(assay, options, conventional);
      table.add_row({std::to_string(case_number), assay.name(),
                     std::to_string(assay.operation_count()),
                     std::to_string(assay.indeterminate_count()),
                     conventional ? "Conv." : "Our", row.time,
                     std::to_string(row.devices), std::to_string(row.paths), row.runtime,
                     row.valid ? "yes" : "NO"});
    }
  }
  table.print(std::cout);

  std::cout << "\npaper reference (same layout):\n";
  std::cout << "  case 1 [10]: Conv. 225m 3 3 | Our 220m 2 2\n";
  std::cout << "  case 2 [7] : Conv. 277m+I1 24 82 | Our 244m+I1 21 33\n";
  std::cout << "  case 3 [17]: Conv. 603m+I1+I2 24 95 | Our 492m+I1+I2 24 85\n";
  return 0;
}
