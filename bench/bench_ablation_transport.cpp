// Ablation C: transportation estimation (Sec. 4.1). Compares (i) a flat
// constant with no refinement, (ii) the paper's arithmetic-progression
// refinement, and (iii) a degenerate progression (min == max) that refines
// only same-device transfers to zero. The refinement is where most of
// Table 3's first-iteration improvement comes from.
#include <iostream>

#include "assays/benchmarks.hpp"
#include "core/progressive_resynthesis.hpp"
#include "schedule/validate.hpp"
#include "util/table.hpp"

using namespace cohls;

int main() {
  std::cout << "=== Ablation C: transportation estimation ===\n\n";

  const model::Assay assay = assays::gene_expression_assay();

  struct Variant {
    const char* name;
    Minutes initial;
    schedule::TransportProgression progression;
    int iterations;
  };
  const Variant variants[] = {
      {"no refinement (flat 3m)", 3_min, {3_min, 3_min, 1}, 0},
      {"degenerate progression (3m..3m)", 3_min, {3_min, 3_min, 1}, 2},
      {"paper progression (1m..4m, 4 terms)", 3_min, {1_min, 4_min, 4}, 2},
      {"wide progression (1m..8m, 8 terms)", 3_min, {1_min, 8_min, 8}, 2},
  };

  TextTable table({"Variant", "Exe.Time", "#D.", "#P.", "Valid"});
  for (const Variant& variant : variants) {
    core::SynthesisOptions options;
    options.max_devices = 25;
    options.initial_transport = variant.initial;
    options.progression = variant.progression;
    options.max_resynthesis_iterations = variant.iterations;
    options.resynthesis_improvement_threshold = -1.0;
    const auto report = core::synthesize(assay, options);
    const bool valid =
        schedule::validate_result(report.result, assay, report.transport).empty();
    table.add_row({variant.name, report.result.total_time(assay).to_string(),
                   std::to_string(report.result.used_device_count()),
                   std::to_string(report.result.path_count(assay)),
                   valid ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\n(expected: refinement with a real progression beats the flat"
               " estimate; zeroing same-device transfers alone already helps)\n";
  return 0;
}
