// Reproduces Figure 5: the resource-based eviction cost. The figure's
// three scenarios have storage usage 1, 2, 1 and drag along 0, 0, 3
// ancestor operations respectively; the min-cut tie-break picks the cut
// with fewer sink-side vertices (c2 over c1 in Fig. 5(d)). This bench
// rebuilds the scenarios and prints the computed eviction costs.
#include <iostream>

#include "core/layering.hpp"

using namespace cohls;

namespace {

OperationId add(model::Assay& assay, const std::string& name, bool indeterminate,
                std::vector<OperationId> parents) {
  model::OperationSpec spec;
  spec.name = name;
  spec.duration = 10_min;
  spec.indeterminate = indeterminate;
  spec.parents = std::move(parents);
  return assay.add_operation(spec);
}

void report(const char* scenario, const model::Assay& assay,
            const std::vector<OperationId>& layer, OperationId victim,
            std::int64_t expect_storage, std::size_t expect_moved_ancestors) {
  const core::EvictionCost cost = core::eviction_cost(assay, layer, victim);
  const std::size_t moved_ancestors = cost.moved.size() - 1;  // minus the victim
  std::cout << scenario << ": storage=" << cost.storage
            << " (expected " << expect_storage << "), ancestors moved="
            << moved_ancestors << " (expected " << expect_moved_ancestors << ")  ["
            << (cost.storage == expect_storage &&
                        moved_ancestors == expect_moved_ancestors
                    ? "match"
                    : "MISMATCH")
            << "]\n";
  std::cout << "  moved set:";
  for (const auto op : cost.moved) {
    std::cout << ' ' << assay.operation(op).name();
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "=== Figure 5: min-cut eviction costs ===\n\n";

  // Scenario (a): a single ancestor chain into o1 -> storage 1, 0 moved.
  {
    model::Assay assay("fig5a");
    const auto a = add(assay, "a", false, {});
    const auto o1 = add(assay, "o1 (ind)", true, {a});
    report("(a) chain", assay, {a, o1}, o1, 1, 0);
  }

  // Scenario (b): two independent ancestor chains into o2 -> storage 2,
  // 0 moved (cutting both incoming edges beats moving either chain).
  {
    model::Assay assay("fig5b");
    const auto b = add(assay, "b", false, {});
    const auto c = add(assay, "c", false, {});
    const auto o2 = add(assay, "o2 (ind)", true, {b, c});
    report("(b) two chains", assay, {b, c, o2}, o2, 2, 0);
  }

  // Scenario (c): a diamond fed by one external input -> the cheapest cut
  // severs the single source edge and drags all 3 ancestors along:
  // storage 1, 3 moved.
  {
    model::Assay assay("fig5c");
    const auto d = add(assay, "d", false, {});
    const auto e = add(assay, "e", false, {d});
    const auto f = add(assay, "f", false, {d});
    const auto o3 = add(assay, "o3 (ind)", true, {e, f});
    report("(c) diamond", assay, {d, e, f, o3}, o3, 1, 3);
  }

  // Fig. 5(d): among equal-value cuts, prefer the one with fewer vertices
  // on the sink side (c2 over c1). A chain a->b->o: cutting b->o (moves
  // nothing) ties with cutting a->b (moves b) and with the source edge
  // (moves a and b); the sink-closest cut must win.
  {
    model::Assay assay("fig5d");
    const auto a = add(assay, "a", false, {});
    const auto b = add(assay, "b", false, {a});
    const auto o = add(assay, "o (ind)", true, {b});
    std::cout << "\n(d) tie-break among equal cuts:\n";
    report("    chain of ties", assay, {a, b, o}, o, 1, 0);
  }
  return 0;
}
