// Quickstart: describe a small bioassay with component-oriented operation
// definitions, synthesize a schedule + binding, and print the result.
//
//   $ ./quickstart
//
// Walks through the full public API: building an Assay, running
// cohls::core::synthesize, and reading the layered schedule back.
#include <iostream>

#include "core/progressive_resynthesis.hpp"
#include "schedule/validate.hpp"

using namespace cohls;

int main() {
  // --- 1. Describe the assay ------------------------------------------------
  // A toy protocol: mix two reagents in a rotary mixer, heat the product,
  // then detect it optically. The detection step does not care whether it
  // runs in a ring or a chamber — it only needs an optical system.
  model::Assay assay("quickstart assay");

  model::OperationSpec mix;
  mix.name = "mix reagents";
  mix.container = model::ContainerKind::Ring;  // circulation mixing
  mix.capacity = model::Capacity::Small;
  mix.accessories = {model::BuiltinAccessory::kPump};
  mix.duration = 12_min;
  const auto mixed = assay.add_operation(mix);

  model::OperationSpec heat;
  heat.name = "heat product";
  heat.accessories = {model::BuiltinAccessory::kHeatingPad};
  heat.duration = 20_min;
  heat.parents = {mixed};
  const auto heated = assay.add_operation(heat);

  model::OperationSpec detect;
  detect.name = "detect";
  detect.accessories = {model::BuiltinAccessory::kOpticalSystem};
  detect.duration = 8_min;
  detect.parents = {heated};
  (void)assay.add_operation(detect);

  // --- 2. Synthesize ---------------------------------------------------------
  core::SynthesisOptions options;
  options.max_devices = 5;
  const core::SynthesisReport report = core::synthesize(assay, options);

  // --- 3. Inspect the result ---------------------------------------------------
  std::cout << "assay: " << assay.name() << "\n";
  std::cout << "total execution time: " << report.result.total_time(assay) << "\n";
  std::cout << "devices used: " << report.result.used_device_count() << "\n";
  std::cout << "transport paths: " << report.result.path_count(assay) << "\n\n";

  for (const auto& layer : report.result.layers) {
    std::cout << "layer " << layer.layer.value() + 1 << " (makespan "
              << layer.makespan() << "):\n";
    for (const auto& item : layer.items) {
      const auto& op = assay.operation(item.op);
      const auto& device = report.result.devices.device(item.device);
      std::cout << "  [" << item.start << " .. " << item.end() << "] " << op.name()
                << "  on device#" << item.device << " ("
                << model::to_string(device.config.container) << '/'
                << model::to_string(device.config.capacity) << ' '
                << model::to_string(device.config.accessories, assay.registry())
                << ")\n";
    }
  }

  // --- 4. The result is validated against the paper's constraints -------------
  const auto violations =
      schedule::validate_result(report.result, assay, report.transport);
  std::cout << "\nschedule valid: " << (violations.empty() ? "yes" : "NO") << "\n";
  for (const auto& v : violations) {
    std::cout << "  violation: " << v << "\n";
  }
  return violations.empty() ? 0 : 1;
}
