// Domain example 1: the kinase-activity radioassay of [10] (the paper's
// case 1, Fig. 2). Demonstrates the motivating scenario of the paper's
// introduction: mixing executed *without* a classical mixer (flow-reversal
// through a sieve-valve bead column), and container-agnostic wash / detect
// steps that the component-oriented binding can place on whatever device
// fits. Compares the component-oriented result with the modified
// conventional (exact type-match) method.
#include <iostream>

#include "assays/benchmarks.hpp"
#include "baseline/conventional.hpp"
#include "core/progressive_resynthesis.hpp"
#include "schedule/validate.hpp"

using namespace cohls;

namespace {

void describe(const char* label, const core::SynthesisReport& report,
              const model::Assay& assay) {
  std::cout << label << ":\n";
  std::cout << "  execution time : " << report.result.total_time(assay) << "\n";
  std::cout << "  devices        : " << report.result.used_device_count() << "\n";
  std::cout << "  paths          : " << report.result.path_count(assay) << "\n";
  std::cout << "  layers         : " << report.result.layers.size() << "\n";
  const auto violations =
      schedule::validate_result(report.result, assay, report.transport);
  std::cout << "  valid          : " << (violations.empty() ? "yes" : "NO") << "\n";
}

}  // namespace

int main() {
  const model::Assay assay = assays::kinase_activity_assay(/*lanes=*/2);
  std::cout << "assay: " << assay.name() << " (" << assay.operation_count()
            << " operations, " << assay.indeterminate_count() << " indeterminate)\n\n";

  core::SynthesisOptions options;
  options.max_devices = 25;

  const auto ours = core::synthesize(assay, options);
  const auto conventional = baseline::synthesize_conventional(assay, options);

  describe("component-oriented (ours)", ours, assay);
  std::cout << '\n';
  describe("modified conventional", conventional, assay);

  // The paper's headline for this case: the component-oriented method needs
  // fewer devices and fewer transportation paths at no time penalty,
  // because container-agnostic operations (wash, elution, neutralization,
  // imaging) re-use devices built for the picky ones.
  std::cout << "\nbinding of the component-oriented solution:\n";
  for (const auto& [op, device] : ours.result.binding()) {
    std::cout << "  " << assay.operation(op).name() << " -> device#" << device << "\n";
  }
  return 0;
}
