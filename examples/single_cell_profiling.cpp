// Domain example 2: single-cell gene expression profiling (the paper's
// case 2, Fig. 1). The assay starts with indeterminate single-cell capture
// operations — a fluorescence check decides at run time whether exactly one
// cell was caught — so the synthesizer produces a *hybrid* schedule: fixed
// sub-schedules per layer, with cyberphysical decisions at layer
// boundaries. This example prints the layer structure and shows how the
// progressive re-synthesis refines the result.
#include <iostream>

#include "assays/benchmarks.hpp"
#include "core/progressive_resynthesis.hpp"
#include "schedule/validate.hpp"

using namespace cohls;

int main() {
  const model::Assay assay = assays::gene_expression_assay(/*cells=*/10);
  std::cout << "assay: " << assay.name() << " (" << assay.operation_count()
            << " operations, " << assay.indeterminate_count() << " indeterminate)\n\n";

  core::SynthesisOptions options;
  options.max_devices = 25;
  options.layering.indeterminate_threshold = 10;

  const core::SynthesisReport report = core::synthesize(assay, options);

  std::cout << "hybrid schedule: " << report.result.layers.size() << " layers\n";
  for (const auto& layer : report.result.layers) {
    int indeterminate = 0;
    for (const auto& item : layer.items) {
      if (assay.operation(item.op).indeterminate()) {
        ++indeterminate;
      }
    }
    std::cout << "  layer " << layer.layer.value() + 1 << ": " << layer.items.size()
              << " ops, makespan " << layer.makespan()
              << (indeterminate > 0
                      ? " + I" + std::to_string(layer.layer.value() + 1) + " (" +
                            std::to_string(indeterminate) + " indeterminate ops)"
                      : "")
              << "\n";
  }

  std::cout << "\nprogressive re-synthesis trace (Table 3 shape):\n";
  for (std::size_t k = 0; k < report.iterations.size(); ++k) {
    const auto& it = report.iterations[k];
    std::cout << "  " << (k == 0 ? "initial" : "iter " + std::to_string(k)) << ": time "
              << it.execution_time << ", devices " << it.device_count << ", paths "
              << it.path_count << ", weighted objective "
              << it.objective.weighted_total << "\n";
  }

  std::cout << "\ntotal execution time: " << report.result.total_time(assay)
            << "  (fixed part + one unknown per capture layer)\n";

  const auto violations =
      schedule::validate_result(report.result, assay, report.transport);
  std::cout << "schedule valid: " << (violations.empty() ? "yes" : "NO") << "\n";
  return violations.empty() ? 0 : 1;
}
