// Domain example 4: executing a hybrid schedule. The synthesizer plans
// fixed sub-schedules whose indeterminate tails are resolved at run time by
// a cyberphysical controller (e.g. counting captured cells in a fluorescence
// image and re-running the capture). This example uses cohls::sim to replay
// the layered schedule with sampled capture-retry counts (53% single-cell
// success per attempt, following [11]), demonstrating that the
// pre-generated schedule needs no re-synthesis at run time — only the layer
// boundaries move.
#include <iostream>

#include "assays/benchmarks.hpp"
#include "core/progressive_resynthesis.hpp"
#include "sim/runtime.hpp"

using namespace cohls;

int main() {
  const model::Assay assay = assays::gene_expression_assay(/*cells=*/4);
  core::SynthesisOptions options;
  options.max_devices = 12;
  options.layering.indeterminate_threshold = 4;
  const auto report = core::synthesize(assay, options);

  std::cout << "simulated run of '" << assay.name() << "'\n";
  std::cout << "planned time: " << report.result.total_time(assay) << "\n\n";

  sim::RuntimeOptions runtime;
  runtime.seed = 2026;
  runtime.attempt_success_probability = 0.53;  // [11]
  const sim::RunTrace trace = sim::simulate_run(report.result, assay, runtime);

  for (const sim::LayerTrace& layer : trace.layers) {
    std::cout << "layer " << layer.layer.value() + 1 << " starts at t=" << layer.start
              << "\n";
    for (const sim::OperationTrace& op : layer.operations) {
      if (op.attempts > 1) {
        std::cout << "  [cyberphysical] " << assay.operation(op.op).name() << ": "
                  << op.attempts << " attempts, actual duration " << op.actual
                  << " (planned minimum " << assay.operation(op.op).duration()
                  << ")\n";
      }
    }
    std::cout << "  layer completes at t=" << layer.end << "\n";
  }

  std::cout << "\nassay completed at t=" << trace.completed_at << "\n";
  std::cout << "planned fixed part: " << trace.planned_fixed << "; overrun: "
            << trace.overrun()
            << " — exactly the indeterminate slack the hybrid schedule leaves"
               " to run-time decisions\n";

  // The overrun is a random variable; average it over many runs to see the
  // expected cost of indeterminacy.
  Minutes total{0};
  constexpr int kRuns = 200;
  for (int r = 0; r < kRuns; ++r) {
    sim::RuntimeOptions opts = runtime;
    opts.seed = static_cast<std::uint64_t>(r) + 1;
    total += sim::simulate_run(report.result, assay, opts).overrun();
  }
  std::cout << "mean overrun over " << kRuns << " runs: "
            << Minutes{total.count() / kRuns} << "\n";
  return 0;
}
