// Domain example 3: extending the component vocabulary. The paper's
// central claim for the general-device concept is that it "can easily be
// extended and thus adapted to continuous biological innovations". This
// example registers a new accessory kind — a droplet sorter — and shows
// that synthesis, binding and cost accounting pick it up without any
// changes to the library.
#include <iostream>

#include "core/progressive_resynthesis.hpp"
#include "schedule/validate.hpp"

using namespace cohls;

int main() {
  // Register the new accessory before describing operations that use it.
  model::AccessoryRegistry registry;
  const model::AccessoryId droplet_sorter =
      registry.register_accessory("droplet sorter", /*processing_cost=*/3.5);

  model::Assay assay("droplet sorting assay", registry);

  model::OperationSpec emulsify;
  emulsify.name = "emulsify sample";
  emulsify.container = model::ContainerKind::Ring;
  emulsify.capacity = model::Capacity::Medium;
  emulsify.accessories = {model::BuiltinAccessory::kPump};
  emulsify.duration = 10_min;
  const auto emulsion = assay.add_operation(emulsify);

  model::OperationSpec sort;
  sort.name = "sort droplets";
  sort.accessories = {droplet_sorter, model::BuiltinAccessory::kOpticalSystem};
  sort.duration = 25_min;
  sort.indeterminate = true;  // sorting ends when enough droplets are kept
  sort.parents = {emulsion};
  const auto sorted = assay.add_operation(sort);

  model::OperationSpec incubate;
  incubate.name = "incubate sorted droplets";
  incubate.accessories = {model::BuiltinAccessory::kHeatingPad};
  incubate.duration = 30_min;
  incubate.parents = {sorted};
  const auto grown = assay.add_operation(incubate);

  // Analysis only needs optics — the binding rule lets it re-use the
  // sorter's device, whose accessory set is a superset.
  model::OperationSpec analyze;
  analyze.name = "analyze droplets";
  analyze.accessories = {model::BuiltinAccessory::kOpticalSystem};
  analyze.duration = 12_min;
  analyze.parents = {grown};
  (void)assay.add_operation(analyze);

  core::SynthesisOptions options;
  options.max_devices = 6;
  const auto report = core::synthesize(assay, options);

  std::cout << "assay: " << assay.name() << "\n";
  std::cout << "registered accessory kinds: " << assay.registry().count() << " (built-in 5 + "
            << assay.registry().name(droplet_sorter) << ")\n\n";

  for (const auto& layer : report.result.layers) {
    for (const auto& item : layer.items) {
      const auto& config = report.result.devices.device(item.device).config;
      std::cout << "layer " << layer.layer.value() + 1 << "  [" << item.start << " .. "
                << item.end() << "]  " << assay.operation(item.op).name()
                << "  on device#" << item.device << ' '
                << model::to_string(config.accessories, assay.registry()) << "\n";
    }
  }
  std::cout << "\ntotal time: " << report.result.total_time(assay) << "\n";

  const auto violations =
      schedule::validate_result(report.result, assay, report.transport);
  std::cout << "schedule valid: " << (violations.empty() ? "yes" : "NO") << "\n";
  return violations.empty() ? 0 : 1;
}
