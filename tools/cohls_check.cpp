// cohls_check — the repository's own source checker. Runs the COHLS-S1xx
// concurrency/determinism rules (analysis::check_source) over C++ sources
// and reports through the shared diag emitters.
//
//   cohls_check [options] [paths...]
//
//   paths                  files or directories to check, relative to --root
//                          (default: src)
//   --root DIR             repository root the paths resolve against
//                          (default: current directory)
//   --diag-format=FMT      "text" (default, clang-style) or "json" (one
//                          document, findings grouped per file)
//   --Werror               findings are errors (exit 1 even for warnings)
//   --allow-wall-clock F   add a path fragment to the S103 timing allowlist
//                          (repeatable)
//   --list-rules           print the rule codes and exit
//
// Exit status: 0 clean, 1 findings, 2 usage/IO errors.
//
// The rule catalog, the suppression syntax (`// cohls-check: allow(S104):
// reason`), and the rationale for each rule live in the README and in
// src/analysis/source_check.hpp.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/source_check.hpp"
#include "diag/diagnostic.hpp"

namespace fs = std::filesystem;

namespace {

int usage(std::ostream& out, int status) {
  out << "usage: cohls_check [--root DIR] [--diag-format=text|json] [--Werror]\n"
         "                   [--allow-wall-clock FRAGMENT]... [--list-rules]\n"
         "                   [paths...]   (default path: src)\n";
  return status;
}

bool checkable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<std::string> paths;
  cohls::analysis::SourceCheckOptions options;
  cohls::diag::Format format = cohls::diag::Format::Text;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    }
    if (arg == "--list-rules") {
      for (const std::string& code : cohls::analysis::source_check_codes()) {
        std::cout << code << "\n";
      }
      return 0;
    }
    if (arg == "--Werror") {
      options.warnings_as_errors = true;
      continue;
    }
    if (arg == "--root") {
      if (++i >= argc) {
        return usage(std::cerr, 2);
      }
      root = argv[i];
      continue;
    }
    if (arg == "--allow-wall-clock") {
      if (++i >= argc) {
        return usage(std::cerr, 2);
      }
      options.wall_clock_allowlist.emplace_back(argv[i]);
      continue;
    }
    if (arg.rfind("--diag-format=", 0) == 0) {
      const auto parsed = cohls::diag::parse_format(arg.substr(14));
      if (!parsed) {
        std::cerr << "cohls_check: unknown format '" << arg.substr(14) << "'\n";
        return 2;
      }
      format = *parsed;
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "cohls_check: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    paths.emplace_back("src");
  }

  // Collect every checkable file under the requested paths, sorted so the
  // report (and the JSON document) is byte-stable across filesystems.
  std::vector<std::string> files;
  for (const std::string& requested : paths) {
    const fs::path resolved = root / requested;
    std::error_code ec;
    if (fs::is_directory(resolved, ec)) {
      for (fs::recursive_directory_iterator it(resolved, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file() && checkable(it->path())) {
          files.push_back(fs::relative(it->path(), root).generic_string());
        }
      }
    } else if (fs::is_regular_file(resolved, ec) && checkable(resolved)) {
      files.push_back(fs::path(requested).generic_string());
    } else {
      std::cerr << "cohls_check: no such file or directory: "
                << resolved.string() << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  int total_findings = 0;
  int files_with_findings = 0;
  std::string json_files;
  for (const std::string& relative : files) {
    std::ifstream in(root / relative, std::ios::binary);
    if (!in) {
      std::cerr << "cohls_check: cannot read " << relative << "\n";
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const std::vector<cohls::diag::Diagnostic> findings =
        cohls::analysis::check_source(relative, text.str(), options);
    if (findings.empty()) {
      continue;
    }
    total_findings += static_cast<int>(findings.size());
    ++files_with_findings;
    if (format == cohls::diag::Format::Text) {
      std::cout << cohls::diag::render_text(findings, relative);
    } else {
      if (!json_files.empty()) {
        json_files += ",";
      }
      json_files += cohls::diag::render_json(findings, relative);
    }
  }

  if (format == cohls::diag::Format::Json) {
    std::cout << "{\"tool\": \"cohls_check\", \"checked\": " << files.size()
              << ", \"findings\": " << total_findings << ", \"files\": ["
              << json_files << "]}\n";
  } else if (total_findings > 0) {
    std::cout << "cohls_check: " << total_findings << " finding"
              << (total_findings == 1 ? "" : "s") << " in "
              << files_with_findings << " of " << files.size() << " files\n";
  }
  return total_findings > 0 ? 1 : 0;
}
