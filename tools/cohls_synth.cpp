// cohls_synth — command-line front end of the synthesis flow.
//
//   cohls_synth <assay-file> [options]
//
//   --max-devices N        |D|, the device budget (default 25)
//   --threshold N          layer threshold t (default 10)
//   --transport N          initial transport constant, minutes (default 5)
//   --conventional         use the modified conventional baseline
//   --layout               refine transport from a placed layout
//   --no-resynthesis       stop after the initial pass
//   --gantt / --csv / --dot / --placement
//                          extra output sections
//   --simulate SEED        simulate one cyberphysical run
//   --inject-faults FILE   replay the schedule against a fault plan (see
//                          src/sim/faults.hpp for the plan format) and, if
//                          the run breaks, drive the re-entrant recovery
//                          mission (replay → recover → re-certify per fault)
//                          on the surviving devices
//   --recover-rounds N     faults the recovery mission may survive before
//                          freezing with COHLS-E305 (default 3)
//   --recover-budget S     per-round recovery wall budget in seconds; a
//                          round that blows it degrades to the heuristic-
//                          only continuation instead of failing (default 0
//                          = unbudgeted)
//   --deadline S           abort the synthesis after S seconds
//   --milp-threads N       workers inside each layer MILP solve (default 0 =
//                          auto: one per hardware thread; 1 = sequential,
//                          reproducing the library's bit-deterministic path)
//   --lint                 run the static linter first; lint errors abort
//                          before any solver runs (exit 7)
//   --lint-only            lint and exit (0 clean, 7 findings); never solves
//   --Werror               lint warnings are treated as errors
//   --diag-format=FMT      diagnostics as clang-style "text" (default) or
//                          as a "json" document
//
// The assay file uses the format of src/io/assay_text.hpp; see
// examples/protocols/*.assay for samples.
//
// Exit codes distinguish failure classes for scripting:
//   0 success        1 cannot open/write a file   2 usage error
//   3 parse error    4 result failed certification   5 infeasible
//   6 cancelled (deadline exceeded)   7 lint failure
//   8 run failed (simulated run broke and was not recovered)
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/linter.hpp"
#include "baseline/conventional.hpp"
#include "core/progressive_resynthesis.hpp"
#include "core/recovery.hpp"
#include "engine/batch.hpp"
#include "io/assay_text.hpp"
#include "io/export.hpp"
#include "io/result_text.hpp"
#include "layout/placement.hpp"
#include "schedule/validate.hpp"
#include "sim/runtime.hpp"
#include "util/cancellation.hpp"

namespace {

using namespace cohls;

struct CliOptions {
  std::string assay_path;
  core::SynthesisOptions synthesis;
  bool conventional = false;
  bool gantt = false;
  bool csv = false;
  bool dot = false;
  bool placement = false;
  bool simulate = false;
  std::uint64_t simulate_seed = 1;
  std::string fault_plan_path;
  int recover_rounds = 3;
  double recover_budget_seconds = 0.0;
  std::string save_result_path;
  double deadline_seconds = 0.0;
  /// MilpOptions::threads for the layer solves; 0 = auto (whole machine —
  /// cohls_synth runs one job, so its budget share is every hardware thread).
  int milp_threads = 0;
  bool lint = false;
  bool lint_only = false;
  bool warnings_as_errors = false;
  diag::Format diag_format = diag::Format::Text;
};

enum ExitCode : int {
  kExitOk = 0,
  kExitIo = 1,
  kExitUsage = 2,
  kExitParse = 3,
  kExitInvalid = 4,
  kExitInfeasible = 5,
  kExitCancelled = 6,
  kExitLint = 7,
  kExitRunFailed = 8,
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <assay-file> [--max-devices N] [--threshold N] [--transport N]"
               " [--conventional] [--layout] [--no-resynthesis]"
               " [--gantt] [--csv] [--dot] [--placement] [--simulate SEED]"
               " [--inject-faults FILE] [--recover-rounds N] [--recover-budget S]"
               " [--save-result FILE] [--deadline S]"
               " [--milp-threads N]"
               " [--lint] [--lint-only] [--Werror] [--diag-format=text|json]\n";
  std::exit(kExitUsage);
}

long numeric_arg(int argc, char** argv, int& i) {
  if (i + 1 >= argc) {
    usage(argv[0]);
  }
  return std::stol(argv[++i]);
}

CliOptions parse_cli(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--max-devices") {
      cli.synthesis.max_devices = static_cast<int>(numeric_arg(argc, argv, i));
    } else if (arg == "--threshold") {
      cli.synthesis.layering.indeterminate_threshold =
          static_cast<int>(numeric_arg(argc, argv, i));
    } else if (arg == "--transport") {
      cli.synthesis.initial_transport = Minutes{numeric_arg(argc, argv, i)};
    } else if (arg == "--conventional") {
      cli.conventional = true;
    } else if (arg == "--layout") {
      cli.synthesis.transport_refinement = core::TransportRefinement::Layout;
    } else if (arg == "--no-resynthesis") {
      cli.synthesis.max_resynthesis_iterations = 0;
    } else if (arg == "--gantt") {
      cli.gantt = true;
    } else if (arg == "--csv") {
      cli.csv = true;
    } else if (arg == "--dot") {
      cli.dot = true;
    } else if (arg == "--placement") {
      cli.placement = true;
    } else if (arg == "--simulate") {
      cli.simulate = true;
      cli.simulate_seed = static_cast<std::uint64_t>(numeric_arg(argc, argv, i));
    } else if (arg == "--inject-faults") {
      if (i + 1 >= argc) {
        usage(argv[0]);
      }
      cli.fault_plan_path = argv[++i];
    } else if (arg == "--recover-rounds") {
      cli.recover_rounds = static_cast<int>(numeric_arg(argc, argv, i));
    } else if (arg == "--recover-budget") {
      if (i + 1 >= argc) {
        usage(argv[0]);
      }
      cli.recover_budget_seconds = std::stod(argv[++i]);
    } else if (arg == "--save-result") {
      if (i + 1 >= argc) {
        usage(argv[0]);
      }
      cli.save_result_path = argv[++i];
    } else if (arg == "--deadline") {
      if (i + 1 >= argc) {
        usage(argv[0]);
      }
      cli.deadline_seconds = std::stod(argv[++i]);
    } else if (arg == "--milp-threads") {
      cli.milp_threads = static_cast<int>(numeric_arg(argc, argv, i));
    } else if (arg == "--lint") {
      cli.lint = true;
    } else if (arg == "--lint-only") {
      cli.lint_only = true;
    } else if (arg == "--Werror") {
      cli.warnings_as_errors = true;
    } else if (arg == "--diag-format" || arg.rfind("--diag-format=", 0) == 0) {
      std::string value;
      if (const auto eq = arg.find('='); eq != std::string::npos) {
        value = arg.substr(eq + 1);
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        usage(argv[0]);
      }
      const auto format = diag::parse_format(value);
      if (!format.has_value()) {
        std::cerr << "unknown diagnostics format: " << value << "\n";
        usage(argv[0]);
      }
      cli.diag_format = *format;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown option: " << arg << "\n";
      usage(argv[0]);
    } else if (cli.assay_path.empty()) {
      cli.assay_path = arg;
    } else {
      usage(argv[0]);
    }
  }
  if (cli.assay_path.empty()) {
    usage(argv[0]);
  }
  return cli;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = parse_cli(argc, argv);

  std::ifstream file(cli.assay_path);
  if (!file) {
    std::cerr << "cannot open " << cli.assay_path << "\n";
    return kExitIo;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();

  try {
    const io::AssaySource source = io::parse_assay_source(buffer.str());
    if (cli.lint || cli.lint_only) {
      const analysis::AnalysisOptions lint_options{
          cli.synthesis.max_devices,
          cli.synthesis.layering.indeterminate_threshold};
      const analysis::LintReport lint = analysis::lint_assay(source, lint_options);
      if (!lint.diagnostics.empty() || cli.diag_format == diag::Format::Json) {
        std::cout << diag::render(lint.diagnostics, cli.diag_format,
                                  cli.assay_path);
      }
      if (!lint.clean(cli.warnings_as_errors)) {
        return kExitLint;
      }
      if (cli.lint_only) {
        if (cli.diag_format == diag::Format::Text) {
          std::cout << "lint: clean\n";
        }
        return kExitOk;
      }
    }

    const model::Assay assay = source.build();
    std::cout << "assay: " << assay.name() << " (" << assay.operation_count()
              << " operations, " << assay.indeterminate_count() << " indeterminate)\n";

    CancellationSource deadline_source;
    core::SynthesisOptions synthesis = cli.synthesis;
    if (cli.deadline_seconds > 0.0) {
      synthesis.cancel = deadline_source.token_with_deadline(cli.deadline_seconds);
    }
    // A single-job run's share of the machine is every hardware thread.
    synthesis.engine.milp.threads =
        engine::arbitrated_milp_threads(cli.milp_threads, /*jobs=*/1);

    const core::SynthesisReport report =
        cli.conventional ? baseline::synthesize_conventional(assay, synthesis)
                         : core::synthesize(assay, synthesis);

    std::cout << "method: " << (cli.conventional ? "modified conventional"
                                                 : "component-oriented")
              << "\n";
    std::cout << "execution time: " << report.result.total_time(assay) << "\n";
    std::cout << "devices: " << report.result.used_device_count() << " of "
              << cli.synthesis.max_devices << " allowed\n";
    std::cout << "paths: " << report.result.path_count(assay) << "\n";
    std::cout << "layers: " << report.result.layers.size() << "\n";
    std::cout << "re-synthesis iterations: " << report.iterations.size() - 1 << "\n";

    const auto certification =
        schedule::certify_result(report.result, assay, report.transport);
    std::cout << "valid: " << (certification.empty() ? "yes" : "NO") << "\n";
    if (!certification.empty()) {
      std::cout << diag::render(certification, cli.diag_format, "");
    }

    if (cli.gantt) {
      std::cout << "\n" << io::to_gantt(report.result, assay);
    }
    if (cli.csv) {
      std::cout << "\n" << io::to_csv(report.result, assay);
    }
    if (cli.dot) {
      std::cout << "\n" << io::to_dot(report.result, assay);
    }
    if (cli.placement) {
      const auto placement = layout::place_devices(report.result, assay);
      std::cout << "\nplacement (" << placement.grid_width() << "x"
                << placement.grid_width() << " grid):\n"
                << placement.to_ascii();
    }
    if (!cli.save_result_path.empty()) {
      std::ofstream out(cli.save_result_path);
      if (!out) {
        std::cerr << "cannot write " << cli.save_result_path << "\n";
        return kExitIo;
      }
      out << io::to_text(report.result, assay);
      std::cout << "result saved to " << cli.save_result_path << "\n";
    }
    if (cli.simulate || !cli.fault_plan_path.empty()) {
      sim::RuntimeOptions options;
      options.seed = cli.simulate_seed;
      if (!cli.fault_plan_path.empty()) {
        std::ifstream plan_file(cli.fault_plan_path);
        if (!plan_file) {
          std::cerr << "cannot open " << cli.fault_plan_path << "\n";
          return kExitIo;
        }
        std::ostringstream plan_buffer;
        plan_buffer << plan_file.rdbuf();
        options.faults = sim::parse_fault_plan(plan_buffer.str());
      }
      const sim::RunTrace trace = sim::simulate_run(report.result, assay, options);
      std::cout << "\nsimulated run (seed " << cli.simulate_seed
                << "): " << sim::to_string(trace.outcome) << "\n";
      if (trace.ok()) {
        std::cout << "completed at " << trace.completed_at << " (planned fixed "
                  << trace.planned_fixed << ", overrun " << trace.overrun()
                  << ")\n";
      } else {
        std::cout << "run broke at minute " << trace.failure->at.count()
                  << " in layer " << trace.failure->layer << ": "
                  << trace.failure->detail << "\n";
        std::cout << "completed operations: " << trace.completed.size()
                  << ", in flight: " << trace.in_flight.size()
                  << ", lost: " << trace.lost.size() << "\n";
        for (const sim::InFlightOperation& running : trace.in_flight) {
          std::cout << "  in flight: operation " << running.op << " on device "
                    << running.device << " (" << running.elapsed
                    << " elapsed, " << running.remaining << " remaining)\n";
        }
        if (cli.fault_plan_path.empty()) {
          // Plain --simulate has no recovery stage: a broken run is a
          // nonzero exit, never a fabricated success.
          return kExitRunFailed;
        }
        // Re-entrant recovery mission: iterate replay → recover →
        // re-certify, surviving up to --recover-rounds faults with credit
        // for work already done carried across rounds.
        core::MissionOptions mission;
        mission.synthesis = synthesis;
        mission.max_rounds = std::max(1, cli.recover_rounds);
        mission.round_budget_seconds = cli.recover_budget_seconds;
        const core::MissionOutcome outcome =
            core::run_mission(assay, report.result, options, mission);
        for (std::size_t round = 0; round < outcome.round_log.size(); ++round) {
          const core::MissionRound& entry = outcome.round_log[round];
          std::cout << "recovery round " << (round + 1) << ": break at minute "
                    << entry.break_at.count() << " ("
                    << sim::to_string(entry.outcome);
          if (entry.failed_device.valid()) {
            std::cout << ", device " << entry.failed_device;
          }
          std::cout << "), " << entry.pinned_ops << " pinned in flight, credit "
                    << entry.credit << (entry.degraded ? ", DEGRADED" : "")
                    << (entry.recovered ? "" : ", FAILED") << "\n";
        }
        if (!outcome.recovered) {
          std::cout << "recovery: FAILED after " << outcome.rounds
                    << " certified round(s)\n";
          std::cout << diag::render(outcome.diagnostics, cli.diag_format, "");
          return kExitRunFailed;
        }
        std::cout << "recovery: recovered after " << outcome.rounds
                  << " fault(s); mission completed at minute "
                  << outcome.completed_at.count() << " with "
                  << outcome.credit_carried << " credit carried"
                  << (outcome.degraded ? " (degraded continuation)" : "")
                  << "\n";
      }
    }
    return certification.empty() ? kExitOk : kExitInvalid;
  } catch (const io::ParseError& e) {
    if (cli.lint || cli.lint_only) {
      // Surface lexical failures through the diagnostics pipeline so JSON
      // consumers always get a document.
      diag::Diagnostic d;
      d.code = diag::codes::kParseError;
      d.message = e.what();
      d.span = diag::Span{e.line(), 0};
      std::cout << diag::render({d}, cli.diag_format, cli.assay_path);
      return kExitLint;
    }
    std::cerr << "parse error: " << e.what() << "\n";
    return kExitParse;
  } catch (const sim::FaultPlanError& e) {
    std::cerr << "fault plan error at " << cli.fault_plan_path << ":" << e.line()
              << ": " << e.what() << "\n";
    return kExitParse;
  } catch (const CancelledError& e) {
    std::cerr << "cancelled: " << e.what() << "\n";
    return kExitCancelled;
  } catch (const InfeasibleError& e) {
    std::cerr << "infeasible: " << e.what() << "\n";
    return kExitInfeasible;
  }
}
