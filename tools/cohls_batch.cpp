// cohls_batch — batch synthesis over a manifest of assay files.
//
//   cohls_batch <manifest> [options]
//
//   --jobs N               worker threads (default 1)
//   --milp-threads N       workers inside each layer MILP solve; 0 = auto,
//                          sharing the machine with --jobs so that
//                          jobs x milp-threads never oversubscribes
//                          (default 1 = sequential, bit-deterministic)
//   --max-devices N        |D|, the device budget per assay (default 25)
//   --threshold N          layer threshold t (default 10)
//   --transport N          initial transport constant, minutes (default 5)
//   --conventional         use the modified conventional baseline
//   --deadline S           per-job wall-clock budget in seconds (default none)
//   --cache-capacity N     layer-solution cache entries (default 4096; 0 off)
//   --cache-shards N       lock shards inside the layer cache (default 16;
//                          contention knob only — results and stats are
//                          identical for any value)
//   --no-cache             disable the layer-solution cache
//   --stable-json          zero the wall_seconds timing fields in JSON
//                          output (--results-json and --diag-format=json),
//                          making the documents byte-identical across
//                          repeat runs, shard layouts and --jobs values
//   --verify-cache         check every cache hit against a fresh solve
//   --repeat N             run the whole manifest N times (cache warm-up demo)
//   --retries N            transient-failure re-runs per job (default 1)
//   --stall S              watchdog: downgrade a synthesis stalled past S
//                          seconds to the heuristic (flagged "degraded")
//   --inject-faults FILE   replay every certified schedule against this
//                          fault plan; broken runs go through degraded-mode
//                          recovery and report run-failed when unrecoverable
//   --simulate-seed N      seed of the fault-injection replay (default 1)
//   --fleet N              Monte-Carlo fleet: replay every certified
//                          schedule N times with per-run derived seeds and
//                          reduce into MTTF, recovery success rate, and a
//                          completion-time histogram (reported in the
//                          results JSON under "fleet")
//   --hazard SPEC          sample per-device failure times into every fleet
//                          run; SPEC is ';'-separated clauses of
//                          "[target=]exp:scale" or
//                          "[target=]weibull:scale,shape" where target is an
//                          accessory name or "default" (e.g.
//                          "exp:5000; heating-pad=weibull:2000,1.5")
//   --fleet-seed N         fleet master seed (default 1); run r derives its
//                          streams from (seed, r), so summaries are
//                          bit-identical for any --jobs value
//   --fleet-recover        probe degraded-mode recovery on every broken
//                          fleet run (reports the recovery success rate)
//   --recover-rounds N     drive broken fault-injection replays (and, with
//                          --fleet-recover, broken fleet runs) through the
//                          re-entrant mission loop for up to N recovery
//                          rounds before freezing with COHLS-E305
//                          (default 1 = single-fault recovery)
//   --recover-budget S     per-round recovery wall budget in seconds; a
//                          round that blows it degrades to a heuristic-only
//                          continuation (flagged "degraded") instead of
//                          failing the job (default 0 = no budget)
//   --save-results DIR     write each result as DIR/<name>.result
//   --results-json FILE    write the per-job results document (same content
//                          as --diag-format=json) to FILE
//   --metrics-json FILE    dump the metrics registry as JSON ("-" = stdout)
//   --no-lint              skip the pre-solve static linter (on by default;
//                          jobs with lint errors report lint_failed and
//                          never reach the solver)
//   --lint-only            lint every assay and stop; no solver runs
//   --Werror               lint warnings also fail a job
//   --diag-format=FMT      "text" (default; table + per-job detail lines) or
//                          "json" (one document per round, with per-job
//                          diagnostics arrays, instead of the table)
//
// The manifest lists one assay file per line ('#' comments allowed);
// relative paths resolve against the manifest's directory. Exit status is 0
// when every job succeeded, 1 when any failed, 2 on usage errors, 130 on
// SIGINT.
//
// All file outputs (--save-results, --results-json, --metrics-json) are
// written atomically: content goes to a temp file that is renamed into
// place, so a crash or interrupt never leaves a half-written artifact. On
// SIGINT the engine stops, the completed rows are flushed as a parsable
// results document (interrupted jobs report "cancelled"), and the exit
// status is 130.
//
// Results are bit-identical for any --jobs value at the default
// --milp-threads 1: the engine replaces wall-clock MILP budgets with node
// budgets, and the shared layer cache only returns solutions the solver
// would have produced itself. With --milp-threads != 1 the parallel exact
// search still returns the same objectives, but incumbent ties can resolve
// differently, so results are objective-identical rather than
// bit-identical.
#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "diag/diagnostic.hpp"
#include "engine/batch.hpp"
#include "util/table.hpp"

namespace {

using namespace cohls;

struct CliOptions {
  std::string manifest_path;
  core::SynthesisOptions synthesis;
  engine::BatchOptions batch;
  bool conventional = false;
  double deadline_seconds = 0.0;
  int repeat = 1;
  std::string save_results_dir;
  std::string results_json_path;
  std::string metrics_json_path;
  std::string fault_plan_path;
  std::uint64_t simulate_seed = 1;
  int fleet_runs = 0;
  std::string hazard_spec;
  std::uint64_t fleet_seed = 1;
  bool fleet_recover = false;
  int recover_rounds = 1;
  double recover_budget_seconds = 0.0;
  diag::Format diag_format = diag::Format::Text;
  bool stable_json = false;
};

/// Set by the SIGINT handler; everything non-signal-safe (engine.stop(),
/// flushing results) happens on ordinary threads that poll this flag.
volatile std::sig_atomic_t g_interrupted = 0;

void handle_sigint(int) { g_interrupted = 1; }

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <manifest> [--jobs N] [--milp-threads N] [--max-devices N]"
               " [--threshold N]"
               " [--transport N] [--conventional] [--deadline S]"
               " [--cache-capacity N] [--cache-shards N] [--no-cache]"
               " [--verify-cache] [--stable-json]"
               " [--repeat N] [--retries N] [--stall S] [--inject-faults FILE]"
               " [--simulate-seed N] [--fleet N] [--hazard SPEC]"
               " [--fleet-seed N] [--fleet-recover]"
               " [--recover-rounds N] [--recover-budget S]"
               " [--save-results DIR] [--results-json FILE]"
               " [--metrics-json FILE] [--no-lint] [--lint-only] [--Werror]"
               " [--diag-format=text|json]\n";
  std::exit(2);
}

long numeric_arg(int argc, char** argv, int& i) {
  if (i + 1 >= argc) {
    usage(argv[0]);
  }
  return std::stol(argv[++i]);
}

std::string string_arg(int argc, char** argv, int& i) {
  if (i + 1 >= argc) {
    usage(argv[0]);
  }
  return argv[++i];
}

CliOptions parse_cli(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs") {
      cli.batch.jobs = static_cast<int>(numeric_arg(argc, argv, i));
    } else if (arg == "--milp-threads") {
      cli.batch.milp_threads = static_cast<int>(numeric_arg(argc, argv, i));
    } else if (arg == "--max-devices") {
      cli.synthesis.max_devices = static_cast<int>(numeric_arg(argc, argv, i));
    } else if (arg == "--threshold") {
      cli.synthesis.layering.indeterminate_threshold =
          static_cast<int>(numeric_arg(argc, argv, i));
    } else if (arg == "--transport") {
      cli.synthesis.initial_transport = Minutes{numeric_arg(argc, argv, i)};
    } else if (arg == "--conventional") {
      cli.conventional = true;
    } else if (arg == "--deadline") {
      cli.deadline_seconds = std::stod(string_arg(argc, argv, i));
    } else if (arg == "--cache-capacity") {
      cli.batch.cache_capacity =
          static_cast<std::size_t>(numeric_arg(argc, argv, i));
    } else if (arg == "--cache-shards") {
      cli.batch.cache_shards = static_cast<int>(numeric_arg(argc, argv, i));
    } else if (arg == "--stable-json") {
      cli.stable_json = true;
    } else if (arg == "--no-cache") {
      cli.batch.cache_capacity = 0;
    } else if (arg == "--verify-cache") {
      cli.batch.verify_cache_hits = true;
    } else if (arg == "--repeat") {
      cli.repeat = static_cast<int>(numeric_arg(argc, argv, i));
    } else if (arg == "--retries") {
      cli.batch.max_retries = static_cast<int>(numeric_arg(argc, argv, i));
    } else if (arg == "--stall") {
      cli.batch.stall_seconds = std::stod(string_arg(argc, argv, i));
    } else if (arg == "--inject-faults") {
      cli.fault_plan_path = string_arg(argc, argv, i);
    } else if (arg == "--simulate-seed") {
      cli.simulate_seed = static_cast<std::uint64_t>(numeric_arg(argc, argv, i));
    } else if (arg == "--fleet") {
      cli.fleet_runs = static_cast<int>(numeric_arg(argc, argv, i));
    } else if (arg == "--hazard") {
      cli.hazard_spec = string_arg(argc, argv, i);
    } else if (arg == "--fleet-seed") {
      cli.fleet_seed = static_cast<std::uint64_t>(numeric_arg(argc, argv, i));
    } else if (arg == "--fleet-recover") {
      cli.fleet_recover = true;
    } else if (arg == "--recover-rounds") {
      cli.recover_rounds = static_cast<int>(numeric_arg(argc, argv, i));
    } else if (arg == "--recover-budget") {
      cli.recover_budget_seconds = std::stod(string_arg(argc, argv, i));
    } else if (arg == "--save-results") {
      cli.save_results_dir = string_arg(argc, argv, i);
    } else if (arg == "--results-json") {
      cli.results_json_path = string_arg(argc, argv, i);
    } else if (arg == "--metrics-json") {
      cli.metrics_json_path = string_arg(argc, argv, i);
    } else if (arg == "--no-lint") {
      cli.batch.lint = false;
    } else if (arg == "--lint-only") {
      cli.batch.lint_only = true;
    } else if (arg == "--Werror") {
      cli.batch.warnings_as_errors = true;
    } else if (arg == "--diag-format" || arg.rfind("--diag-format=", 0) == 0) {
      std::string value;
      if (const auto eq = arg.find('='); eq != std::string::npos) {
        value = arg.substr(eq + 1);
      } else {
        value = string_arg(argc, argv, i);
      }
      const auto format = diag::parse_format(value);
      if (!format.has_value()) {
        std::cerr << "unknown diagnostics format: " << value << "\n";
        usage(argv[0]);
      }
      cli.diag_format = *format;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown option: " << arg << "\n";
      usage(argv[0]);
    } else if (cli.manifest_path.empty()) {
      cli.manifest_path = arg;
    } else {
      usage(argv[0]);
    }
  }
  if (cli.manifest_path.empty() || cli.repeat < 1) {
    usage(argv[0]);
  }
  return cli;
}

std::string format_seconds(double seconds) {
  std::ostringstream out;
  out.precision(3);
  out << std::fixed << seconds;
  return out.str();
}

/// "examples/protocols/rt_qpcr.assay" -> "rt_qpcr"
std::string result_file_stem(const std::string& name) {
  return std::filesystem::path(name).stem().string();
}

/// Crash-safe file write: content lands in a sibling temp file that is
/// renamed into place. Readers never observe a half-written artifact.
bool write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return false;
    }
    out << content;
    out.flush();
    if (!out) {
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = parse_cli(argc, argv);

  std::ifstream file(cli.manifest_path);
  if (!file) {
    std::cerr << "cannot open " << cli.manifest_path << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string base_dir =
      std::filesystem::path(cli.manifest_path).parent_path().string();

  std::optional<std::string> fault_plan;
  if (!cli.fault_plan_path.empty()) {
    std::ifstream plan_file(cli.fault_plan_path);
    if (!plan_file) {
      std::cerr << "cannot open " << cli.fault_plan_path << "\n";
      return 1;
    }
    std::ostringstream plan_buffer;
    plan_buffer << plan_file.rdbuf();
    fault_plan = plan_buffer.str();
  }

  std::vector<engine::BatchJob> jobs =
      engine::jobs_from_manifest(buffer.str(), base_dir, cli.synthesis);
  for (engine::BatchJob& job : jobs) {
    job.conventional = cli.conventional;
    job.deadline_seconds = cli.deadline_seconds;
    job.fault_plan = fault_plan;
    job.simulate_seed = cli.simulate_seed;
    job.fleet_runs = cli.fleet_runs;
    job.hazard_spec = cli.hazard_spec;
    job.fleet_seed = cli.fleet_seed;
    job.fleet_recover = cli.fleet_recover;
    job.recover_rounds = cli.recover_rounds;
    job.recover_budget_seconds = cli.recover_budget_seconds;
  }
  if (jobs.empty()) {
    std::cerr << "manifest is empty: " << cli.manifest_path << "\n";
    return 1;
  }

  engine::BatchEngine batch(cli.batch);

  // SIGINT: the handler only flips a flag; this watcher does the actual
  // (non-signal-safe) engine stop. In-flight jobs come back "cancelled",
  // the rows already computed are flushed below, and we exit 130.
  std::signal(SIGINT, handle_sigint);
  std::atomic<bool> watcher_done{false};
  std::thread watcher([&batch, &watcher_done] {
    while (!watcher_done.load(std::memory_order_relaxed)) {
      if (g_interrupted != 0) {
        batch.stop();
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });
  const auto stop_watcher = [&watcher_done, &watcher] {
    watcher_done.store(true, std::memory_order_relaxed);
    watcher.join();
  };

  bool all_ok = true;
  for (int round = 0; round < cli.repeat && g_interrupted == 0; ++round) {
    const std::vector<engine::BatchResult> rows = batch.run(jobs);

    for (const engine::BatchResult& row : rows) {
      all_ok = all_ok && row.status == engine::JobStatus::Ok;
    }
    if (cli.repeat > 1) {
      std::cout << "round " << round + 1 << " of " << cli.repeat << "\n";
    }
    if (cli.diag_format == diag::Format::Json) {
      std::cout << engine::results_json(rows, cli.stable_json) << "\n";
    } else {
      TextTable table({"assay", "status", "time", "devices", "paths", "layers",
                       "iters", "objective", "wall s"});
      for (const engine::BatchResult& row : rows) {
        std::ostringstream objective;
        objective.precision(1);
        objective << std::fixed << row.summary.objective;
        table.add_row({row.name, engine::to_string(row.status),
                       row.summary.execution_time,
                       std::to_string(row.summary.devices),
                       std::to_string(row.summary.paths),
                       std::to_string(row.summary.layers),
                       std::to_string(row.summary.resynthesis_iterations),
                       objective.str(), format_seconds(row.wall_seconds)});
        if (row.status != engine::JobStatus::Ok) {
          std::cerr << row.name << ": " << engine::to_string(row.status) << ": "
                    << row.detail << "\n";
        }
        if (row.degraded) {
          std::cerr << row.name
                    << ": degraded: stalled synthesis fell back to the"
                       " list-scheduling heuristic\n";
        }
        if (row.fleet.has_value()) {
          std::ostringstream fleet_line;
          fleet_line.precision(3);
          fleet_line << row.name << ": fleet " << row.fleet->runs << " runs, "
                     << row.fleet->completed << " completed, "
                     << row.fleet->device_failed << " device-failed, "
                     << row.fleet->attempts_exhausted << " exhausted";
          if (row.fleet->device_failed + row.fleet->attempts_exhausted > 0) {
            fleet_line << ", MTTF " << row.fleet->mttf_minutes << "m";
          }
          if (row.fleet->recovery_attempts > 0) {
            fleet_line << ", recovery rate "
                       << row.fleet->recovery_success_rate;
          }
          if (row.fleet->completed > 0) {
            fleet_line << ", mean completion "
                       << row.fleet->mean_completion_minutes << "m";
          }
          std::cout << fleet_line.str() << "\n";
        }
        if (row.recovery_attempted) {
          std::cerr << row.name << ": fault replay " << row.run_outcome
                    << ", recovery "
                    << (row.recovered ? "produced a certified continuation"
                                      : "failed")
                    << "\n";
        }
        if (!row.diagnostics.empty()) {
          std::cerr << diag::render_text(row.diagnostics, row.name);
        }
      }
      table.print(std::cout);
      std::cout << "\n";
    }

    if (!cli.results_json_path.empty()) {
      // Rewritten every round (and after an interrupt): always a complete,
      // parsable document — interrupted jobs appear as "cancelled".
      if (!write_file_atomic(cli.results_json_path,
                             engine::results_json(rows, cli.stable_json) +
                                 "\n")) {
        std::cerr << "cannot write " << cli.results_json_path << "\n";
        stop_watcher();
        return 1;
      }
    }

    if (!cli.save_results_dir.empty() && round == 0) {
      std::filesystem::create_directories(cli.save_results_dir);
      for (const engine::BatchResult& row : rows) {
        if (row.result_text.empty()) {
          continue;
        }
        const std::string path =
            cli.save_results_dir + "/" + result_file_stem(row.name) + ".result";
        if (!write_file_atomic(path, row.result_text)) {
          std::cerr << "cannot write " << path << "\n";
          stop_watcher();
          return 1;
        }
      }
    }
  }
  stop_watcher();

  std::cout << batch.report();
  if (!cli.metrics_json_path.empty()) {
    if (cli.metrics_json_path == "-") {
      std::cout << batch.metrics_json() << "\n";
    } else if (!write_file_atomic(cli.metrics_json_path,
                                  batch.metrics_json() + "\n")) {
      std::cerr << "cannot write " << cli.metrics_json_path << "\n";
      return 1;
    }
  }
  if (g_interrupted != 0) {
    std::cerr << "interrupted: partial results flushed\n";
    return 130;
  }
  return all_ok ? 0 : 1;
}
