#include "model/device.hpp"

#include <gtest/gtest.h>

namespace cohls::model {
namespace {

TEST(DeviceConfig, ValidityFollowsCapacityRules) {
  EXPECT_TRUE((DeviceConfig{ContainerKind::Ring, Capacity::Large, {}}.valid()));
  EXPECT_FALSE((DeviceConfig{ContainerKind::Ring, Capacity::Tiny, {}}.valid()));
  EXPECT_TRUE((DeviceConfig{ContainerKind::Chamber, Capacity::Tiny, {}}.valid()));
  EXPECT_FALSE((DeviceConfig{ContainerKind::Chamber, Capacity::Large, {}}.valid()));
}

TEST(DeviceConfig, CostHelpers) {
  const CostModel costs;
  const AccessoryRegistry registry;
  const DeviceConfig config{ContainerKind::Ring, Capacity::Small,
                            {BuiltinAccessory::kPump}};
  EXPECT_DOUBLE_EQ(device_area(config, costs), costs.area(ContainerKind::Ring, Capacity::Small));
  EXPECT_DOUBLE_EQ(device_processing(config, costs, registry),
                   costs.container_processing(ContainerKind::Ring, Capacity::Small) +
                       registry.processing_cost(BuiltinAccessory::kPump));
}

TEST(DeviceInventory, InstantiateAssignsSequentialIds) {
  DeviceInventory inventory(3);
  const DeviceConfig config{ContainerKind::Chamber, Capacity::Tiny, {}};
  EXPECT_EQ(inventory.instantiate(config, LayerId{0}), DeviceId{0});
  EXPECT_EQ(inventory.instantiate(config, LayerId{1}), DeviceId{1});
  EXPECT_EQ(inventory.size(), 2);
  EXPECT_FALSE(inventory.full());
}

TEST(DeviceInventory, EnforcesMaxDevices) {
  DeviceInventory inventory(1);
  const DeviceConfig config{ContainerKind::Chamber, Capacity::Tiny, {}};
  (void)inventory.instantiate(config, LayerId{0});
  EXPECT_TRUE(inventory.full());
  EXPECT_THROW(inventory.instantiate(config, LayerId{0}), InfeasibleError);
}

TEST(DeviceInventory, RejectsInvalidConfig) {
  DeviceInventory inventory(2);
  EXPECT_THROW(
      inventory.instantiate(DeviceConfig{ContainerKind::Ring, Capacity::Tiny, {}}, LayerId{0}),
      PreconditionError);
}

TEST(DeviceInventory, RejectsNonPositiveCapacity) {
  EXPECT_THROW(DeviceInventory{0}, PreconditionError);
}

TEST(DeviceInventory, TracksCreatorLayer) {
  DeviceInventory inventory(4);
  const DeviceConfig config{ContainerKind::Chamber, Capacity::Tiny, {}};
  (void)inventory.instantiate(config, LayerId{0});
  const DeviceId d1 = inventory.instantiate(config, LayerId{1});
  const DeviceId d2 = inventory.instantiate(config, LayerId{1});
  const auto layer1 = inventory.created_in_layer(LayerId{1});
  ASSERT_EQ(layer1.size(), 2u);
  EXPECT_EQ(layer1[0], d1);
  EXPECT_EQ(layer1[1], d2);
  EXPECT_EQ(inventory.created_in_layer(LayerId{2}).size(), 0u);
}

TEST(DeviceInventory, TotalsSumOverDevices) {
  const CostModel costs;
  const AccessoryRegistry registry;
  DeviceInventory inventory(4);
  const DeviceConfig a{ContainerKind::Chamber, Capacity::Tiny, {}};
  const DeviceConfig b{ContainerKind::Ring, Capacity::Small, {BuiltinAccessory::kPump}};
  (void)inventory.instantiate(a, LayerId{0});
  (void)inventory.instantiate(b, LayerId{0});
  EXPECT_DOUBLE_EQ(inventory.total_area(costs), device_area(a, costs) + device_area(b, costs));
  EXPECT_DOUBLE_EQ(inventory.total_processing(costs, registry),
                   device_processing(a, costs, registry) + device_processing(b, costs, registry));
}

TEST(DeviceInventory, UnknownDeviceThrows) {
  DeviceInventory inventory(2);
  EXPECT_THROW((void)inventory.device(DeviceId{0}), PreconditionError);
}

}  // namespace
}  // namespace cohls::model
