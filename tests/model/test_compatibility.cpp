#include "model/compatibility.hpp"

#include <gtest/gtest.h>

namespace cohls::model {
namespace {

Operation make_op(std::optional<ContainerKind> container, std::optional<Capacity> capacity,
                  AccessorySet accessories) {
  OperationSpec spec;
  spec.name = "op";
  spec.duration = 10_min;
  spec.container = container;
  spec.capacity = capacity;
  spec.accessories = accessories;
  return Operation(OperationId{0}, spec);
}

TEST(Compatibility, ContainerMustMatchWhenSpecified) {
  const auto op = make_op(ContainerKind::Ring, std::nullopt, {});
  EXPECT_TRUE(is_compatible(op, {ContainerKind::Ring, Capacity::Small, {}}));
  EXPECT_FALSE(is_compatible(op, {ContainerKind::Chamber, Capacity::Small, {}}));
}

TEST(Compatibility, UnspecifiedContainerBindsToEither) {
  const auto op = make_op(std::nullopt, std::nullopt, {});
  EXPECT_TRUE(is_compatible(op, {ContainerKind::Ring, Capacity::Medium, {}}));
  EXPECT_TRUE(is_compatible(op, {ContainerKind::Chamber, Capacity::Tiny, {}}));
}

TEST(Compatibility, CapacityMustMatchWhenSpecified) {
  const auto op = make_op(std::nullopt, Capacity::Medium, {});
  EXPECT_TRUE(is_compatible(op, {ContainerKind::Chamber, Capacity::Medium, {}}));
  EXPECT_FALSE(is_compatible(op, {ContainerKind::Chamber, Capacity::Small, {}}));
}

TEST(Compatibility, AccessoriesAreASubsetRequirement) {
  const auto op = make_op(std::nullopt, std::nullopt, {BuiltinAccessory::kSieveValve});
  EXPECT_TRUE(is_compatible(
      op, {ContainerKind::Chamber, Capacity::Tiny,
           {BuiltinAccessory::kSieveValve, BuiltinAccessory::kPump}}));
  EXPECT_FALSE(is_compatible(op, {ContainerKind::Chamber, Capacity::Tiny,
                                  {BuiltinAccessory::kPump}}));
}

TEST(Compatibility, InvalidConfigNeverBinds) {
  const auto op = make_op(std::nullopt, std::nullopt, {});
  EXPECT_FALSE(is_compatible(op, {ContainerKind::Ring, Capacity::Tiny, {}}));
}

TEST(Compatibility, SubsumptionMatchesPaperExample) {
  // Sec. 3.2: C_{o1} = {ring}, A_{o1} = {sieve valve, pump};
  //           C_{o2} = {},     A_{o2} = {sieve valve}.
  const auto o1 = make_op(ContainerKind::Ring, std::nullopt,
                          {BuiltinAccessory::kSieveValve, BuiltinAccessory::kPump});
  const auto o2 = make_op(std::nullopt, std::nullopt, {BuiltinAccessory::kSieveValve});
  EXPECT_TRUE(requirements_subsume(o1, o2));   // o2 runs on o1's device
  EXPECT_FALSE(requirements_subsume(o2, o1));  // but not vice versa
}

TEST(Compatibility, SubsumptionIsReflexive) {
  const auto op = make_op(ContainerKind::Chamber, Capacity::Small,
                          {BuiltinAccessory::kHeatingPad});
  EXPECT_TRUE(requirements_subsume(op, op));
}

TEST(Compatibility, AdmissibleConfigsRespectEveryRequirement) {
  const auto op = make_op(ContainerKind::Ring, std::nullopt, {BuiltinAccessory::kPump});
  const auto configs = admissible_configs(op);
  ASSERT_EQ(configs.size(), 3u);  // ring: small, medium, large
  for (const auto& config : configs) {
    EXPECT_TRUE(is_compatible(op, config));
    EXPECT_EQ(config.container, ContainerKind::Ring);
  }
}

TEST(Compatibility, AdmissibleConfigsUnconstrainedOp) {
  const auto op = make_op(std::nullopt, std::nullopt, {});
  // 3 ring capacities + 3 chamber capacities.
  EXPECT_EQ(admissible_configs(op).size(), 6u);
}

TEST(Compatibility, MinimalConfigIsCheapestAdmissible) {
  const CostModel costs;
  const AccessoryRegistry registry;
  const auto op = make_op(std::nullopt, std::nullopt, {BuiltinAccessory::kHeatingPad});
  const DeviceConfig config = minimal_config(op, costs, registry);
  // Chamber/tiny is the cheapest container under the default cost model.
  EXPECT_EQ(config.container, ContainerKind::Chamber);
  EXPECT_EQ(config.capacity, Capacity::Tiny);
  EXPECT_TRUE(config.accessories.contains(BuiltinAccessory::kHeatingPad));
}

TEST(Compatibility, MinimalConfigHonorsCapacity) {
  const CostModel costs;
  const AccessoryRegistry registry;
  const auto op = make_op(std::nullopt, Capacity::Large, {});
  const DeviceConfig config = minimal_config(op, costs, registry);
  EXPECT_EQ(config.container, ContainerKind::Ring);  // only rings go large
  EXPECT_EQ(config.capacity, Capacity::Large);
}

TEST(Compatibility, SignatureDistinguishesRequirementClasses) {
  const auto a = make_op(ContainerKind::Ring, std::nullopt, {BuiltinAccessory::kPump});
  const auto b = make_op(std::nullopt, std::nullopt, {BuiltinAccessory::kPump});
  const auto c = make_op(ContainerKind::Ring, std::nullopt, {BuiltinAccessory::kPump});
  EXPECT_EQ(signature_of(a), signature_of(c));
  EXPECT_NE(signature_of(a), signature_of(b));
}

}  // namespace
}  // namespace cohls::model
