#include "model/assay.hpp"

#include <gtest/gtest.h>

namespace cohls::model {
namespace {

OperationSpec op(const std::string& name, std::vector<OperationId> parents = {},
                 bool indeterminate = false) {
  OperationSpec spec;
  spec.name = name;
  spec.duration = 10_min;
  spec.indeterminate = indeterminate;
  spec.parents = std::move(parents);
  return spec;
}

TEST(Assay, AddOperationsBuildsGraph) {
  Assay assay("test");
  const auto a = assay.add_operation(op("a"));
  const auto b = assay.add_operation(op("b", {a}));
  const auto c = assay.add_operation(op("c", {a, b}));
  EXPECT_EQ(assay.operation_count(), 3);
  EXPECT_EQ(assay.operation(b).parents(), std::vector<OperationId>{a});
  EXPECT_EQ(assay.children(a), (std::vector<OperationId>{b, c}));
  EXPECT_EQ(assay.children(c).size(), 0u);
  EXPECT_EQ(assay.dependency_graph().edge_count(), 3u);
}

TEST(Assay, ParentsMustExistFirst) {
  Assay assay("test");
  EXPECT_THROW(assay.add_operation(op("x", {OperationId{0}})), PreconditionError);
  const auto a = assay.add_operation(op("a"));
  (void)a;
  EXPECT_THROW(assay.add_operation(op("y", {OperationId{5}})), PreconditionError);
}

TEST(Assay, SelfParentImpossible) {
  Assay assay("test");
  // The would-be operation's own id equals operation_count(); using it as a
  // parent is rejected, so cycles cannot be constructed.
  EXPECT_THROW(assay.add_operation(op("a", {OperationId{0}})), PreconditionError);
}

TEST(Assay, IndeterminateQueries) {
  Assay assay("test");
  (void)assay.add_operation(op("a"));
  const auto b = assay.add_operation(op("b", {}, true));
  const auto c = assay.add_operation(op("c", {}, true));
  EXPECT_EQ(assay.indeterminate_count(), 2);
  EXPECT_EQ(assay.indeterminate_operations(), (std::vector<OperationId>{b, c}));
}

TEST(Assay, RejectsUnregisteredAccessory) {
  Assay assay("test");
  OperationSpec spec = op("a");
  spec.accessories.insert(BuiltinAccessory::kCount);  // one past the built-ins
  EXPECT_THROW(assay.add_operation(spec), PreconditionError);
}

TEST(Assay, CustomRegistryAllowsExtendedAccessories) {
  AccessoryRegistry registry;
  const AccessoryId extra = registry.register_accessory("magnet", 2.0);
  Assay assay("test", registry);
  OperationSpec spec = op("a");
  spec.accessories.insert(extra);
  EXPECT_NO_THROW(assay.add_operation(spec));
}

TEST(Assay, UnknownOperationThrows) {
  Assay assay("test");
  EXPECT_THROW((void)assay.operation(OperationId{0}), PreconditionError);
  EXPECT_THROW((void)assay.children(OperationId{3}), PreconditionError);
}

TEST(Assay, RejectsEmptyName) {
  EXPECT_THROW(Assay{""}, PreconditionError);
}

TEST(Assay, GraphIsAlwaysAcyclicByConstruction) {
  Assay assay("test");
  const auto a = assay.add_operation(op("a"));
  const auto b = assay.add_operation(op("b", {a}));
  (void)assay.add_operation(op("c", {b}));
  // Topological order exists for any constructible assay.
  const auto& g = assay.dependency_graph();
  std::size_t edges = 0;
  for (graph::NodeIndex n = 0; n < g.node_count(); ++n) {
    for (const auto s : g.successors(n)) {
      EXPECT_GT(s, n) << "edges must go from lower to higher ids";
      ++edges;
    }
  }
  EXPECT_EQ(edges, g.edge_count());
}

}  // namespace
}  // namespace cohls::model
