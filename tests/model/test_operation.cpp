#include "model/operation.hpp"

#include <gtest/gtest.h>

namespace cohls::model {
namespace {

OperationSpec valid_spec() {
  OperationSpec spec;
  spec.name = "mix";
  spec.duration = 10_min;
  return spec;
}

TEST(Operation, StoresSpec) {
  OperationSpec spec = valid_spec();
  spec.container = ContainerKind::Ring;
  spec.capacity = Capacity::Medium;
  spec.accessories = {BuiltinAccessory::kPump};
  spec.indeterminate = true;
  spec.parents = {OperationId{0}};
  const Operation op(OperationId{3}, spec);
  EXPECT_EQ(op.id(), OperationId{3});
  EXPECT_EQ(op.name(), "mix");
  EXPECT_EQ(op.container(), ContainerKind::Ring);
  EXPECT_EQ(op.capacity(), Capacity::Medium);
  EXPECT_TRUE(op.accessories().contains(BuiltinAccessory::kPump));
  EXPECT_TRUE(op.indeterminate());
  EXPECT_EQ(op.duration(), 10_min);
  ASSERT_EQ(op.parents().size(), 1u);
}

TEST(Operation, UnspecifiedContainerAndCapacityStayUnset) {
  const Operation op(OperationId{0}, valid_spec());
  EXPECT_FALSE(op.container().has_value());
  EXPECT_FALSE(op.capacity().has_value());
  EXPECT_TRUE(op.accessories().empty());
  EXPECT_FALSE(op.indeterminate());
}

TEST(Operation, RejectsEmptyName) {
  OperationSpec spec = valid_spec();
  spec.name.clear();
  EXPECT_THROW(Operation(OperationId{0}, spec), PreconditionError);
}

TEST(Operation, RejectsNonPositiveDuration) {
  OperationSpec spec = valid_spec();
  spec.duration = Minutes{0};
  EXPECT_THROW(Operation(OperationId{0}, spec), PreconditionError);
  spec.duration = Minutes{-5};
  EXPECT_THROW(Operation(OperationId{0}, spec), PreconditionError);
}

TEST(Operation, RejectsInvalidId) {
  EXPECT_THROW(Operation(OperationId{}, valid_spec()), PreconditionError);
}

TEST(Operation, RejectsContradictoryContainerCapacity) {
  OperationSpec spec = valid_spec();
  spec.container = ContainerKind::Chamber;
  spec.capacity = Capacity::Large;  // chambers cannot be large
  EXPECT_THROW(Operation(OperationId{0}, spec), PreconditionError);
  spec.container = ContainerKind::Ring;
  spec.capacity = Capacity::Tiny;  // rings cannot be tiny
  EXPECT_THROW(Operation(OperationId{0}, spec), PreconditionError);
}

}  // namespace
}  // namespace cohls::model
