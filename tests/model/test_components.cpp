#include "model/components.hpp"

#include <gtest/gtest.h>

namespace cohls::model {
namespace {

TEST(Capacity, RingAllowsAllButTiny) {
  EXPECT_FALSE(capacity_allowed(ContainerKind::Ring, Capacity::Tiny));
  EXPECT_TRUE(capacity_allowed(ContainerKind::Ring, Capacity::Small));
  EXPECT_TRUE(capacity_allowed(ContainerKind::Ring, Capacity::Medium));
  EXPECT_TRUE(capacity_allowed(ContainerKind::Ring, Capacity::Large));
}

TEST(Capacity, ChamberAllowsAllButLarge) {
  EXPECT_TRUE(capacity_allowed(ContainerKind::Chamber, Capacity::Tiny));
  EXPECT_TRUE(capacity_allowed(ContainerKind::Chamber, Capacity::Small));
  EXPECT_TRUE(capacity_allowed(ContainerKind::Chamber, Capacity::Medium));
  EXPECT_FALSE(capacity_allowed(ContainerKind::Chamber, Capacity::Large));
}

TEST(Components, Names) {
  EXPECT_EQ(to_string(ContainerKind::Ring), "ring");
  EXPECT_EQ(to_string(ContainerKind::Chamber), "chamber");
  EXPECT_EQ(to_string(Capacity::Tiny), "tiny");
  EXPECT_EQ(to_string(Capacity::Large), "large");
}

TEST(AccessoryRegistry, BuiltinsPreRegistered) {
  const AccessoryRegistry registry;
  EXPECT_EQ(registry.count(), BuiltinAccessory::kCount);
  EXPECT_EQ(registry.name(BuiltinAccessory::kPump), "pump");
  EXPECT_EQ(registry.name(BuiltinAccessory::kHeatingPad), "heating pad");
  EXPECT_EQ(registry.name(BuiltinAccessory::kOpticalSystem), "optical system");
  EXPECT_EQ(registry.name(BuiltinAccessory::kSieveValve), "sieve valve");
  EXPECT_EQ(registry.name(BuiltinAccessory::kCellTrap), "cell trap");
}

TEST(AccessoryRegistry, RegisterExtendsTheVocabulary) {
  AccessoryRegistry registry;
  const AccessoryId sorter = registry.register_accessory("droplet sorter", 3.5);
  EXPECT_EQ(sorter, BuiltinAccessory::kCount);
  EXPECT_EQ(registry.name(sorter), "droplet sorter");
  EXPECT_DOUBLE_EQ(registry.processing_cost(sorter), 3.5);
  EXPECT_EQ(registry.find("droplet sorter"), sorter);
}

TEST(AccessoryRegistry, FindUnknownReturnsNegative) {
  const AccessoryRegistry registry;
  EXPECT_LT(registry.find("tractor beam"), 0);
}

TEST(AccessoryRegistry, RejectsDuplicatesAndBadInput) {
  AccessoryRegistry registry;
  EXPECT_THROW(registry.register_accessory("pump", 1.0), PreconditionError);
  EXPECT_THROW(registry.register_accessory("", 1.0), PreconditionError);
  EXPECT_THROW(registry.register_accessory("x", -1.0), PreconditionError);
}

TEST(AccessoryRegistry, UnknownIdThrows) {
  const AccessoryRegistry registry;
  EXPECT_THROW((void)registry.name(99), PreconditionError);
  EXPECT_THROW((void)registry.processing_cost(-1), PreconditionError);
}

TEST(AccessorySet, InsertEraseContains) {
  AccessorySet set;
  EXPECT_TRUE(set.empty());
  set.insert(BuiltinAccessory::kPump);
  set.insert(BuiltinAccessory::kSieveValve);
  EXPECT_TRUE(set.contains(BuiltinAccessory::kPump));
  EXPECT_FALSE(set.contains(BuiltinAccessory::kCellTrap));
  EXPECT_EQ(set.count(), 2);
  set.erase(BuiltinAccessory::kPump);
  EXPECT_FALSE(set.contains(BuiltinAccessory::kPump));
}

TEST(AccessorySet, SubsetTestIsTheBindingRule) {
  const AccessorySet need{BuiltinAccessory::kSieveValve};
  const AccessorySet rich{BuiltinAccessory::kSieveValve, BuiltinAccessory::kPump};
  EXPECT_TRUE(need.is_subset_of(rich));
  EXPECT_FALSE(rich.is_subset_of(need));
  EXPECT_TRUE(AccessorySet{}.is_subset_of(need));
  EXPECT_TRUE(need.is_subset_of(need));
}

TEST(AccessorySet, UnionAndList) {
  const AccessorySet a{BuiltinAccessory::kPump};
  const AccessorySet b{BuiltinAccessory::kCellTrap};
  const AccessorySet u = a.united_with(b);
  EXPECT_EQ(u.count(), 2);
  const auto list = u.to_list();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0], BuiltinAccessory::kPump);
  EXPECT_EQ(list[1], BuiltinAccessory::kCellTrap);
}

TEST(AccessorySet, ToStringUsesRegistryNames) {
  const AccessoryRegistry registry;
  const AccessorySet set{BuiltinAccessory::kPump, BuiltinAccessory::kSieveValve};
  EXPECT_EQ(to_string(set, registry), "{pump, sieve valve}");
  EXPECT_EQ(to_string(AccessorySet{}, registry), "{}");
}

TEST(AccessorySet, RejectsOutOfRangeIds) {
  AccessorySet set;
  EXPECT_THROW(set.insert(-1), PreconditionError);
  EXPECT_THROW(set.insert(AccessoryRegistry::kMaxAccessories), PreconditionError);
}

}  // namespace
}  // namespace cohls::model
