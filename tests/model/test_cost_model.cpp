#include "model/cost_model.hpp"

#include <gtest/gtest.h>

namespace cohls::model {
namespace {

TEST(CostModel, RingsCostMoreThanChambers) {
  const CostModel costs;
  for (const Capacity cap : {Capacity::Small, Capacity::Medium}) {
    EXPECT_GT(costs.area(ContainerKind::Ring, cap), costs.area(ContainerKind::Chamber, cap));
    EXPECT_GT(costs.container_processing(ContainerKind::Ring, cap),
              costs.container_processing(ContainerKind::Chamber, cap));
  }
}

TEST(CostModel, AreaGrowsWithCapacity) {
  const CostModel costs;
  EXPECT_LT(costs.area(ContainerKind::Ring, Capacity::Small),
            costs.area(ContainerKind::Ring, Capacity::Large));
  EXPECT_LT(costs.area(ContainerKind::Chamber, Capacity::Tiny),
            costs.area(ContainerKind::Chamber, Capacity::Medium));
}

TEST(CostModel, SettersOverride) {
  CostModel costs;
  costs.set_area(ContainerKind::Ring, Capacity::Small, 42.0);
  EXPECT_DOUBLE_EQ(costs.area(ContainerKind::Ring, Capacity::Small), 42.0);
  costs.set_container_processing(ContainerKind::Chamber, Capacity::Tiny, 7.5);
  EXPECT_DOUBLE_EQ(costs.container_processing(ContainerKind::Chamber, Capacity::Tiny), 7.5);
}

TEST(CostModel, SettersRejectNegative) {
  CostModel costs;
  EXPECT_THROW(costs.set_area(ContainerKind::Ring, Capacity::Small, -1.0),
               PreconditionError);
  EXPECT_THROW(costs.set_container_processing(ContainerKind::Ring, Capacity::Small, -1.0),
               PreconditionError);
  EXPECT_THROW(costs.set_weights(-1, 0, 0, 0), PreconditionError);
}

TEST(CostModel, AccessorySetProcessingSumsRegistryCosts) {
  const CostModel costs;
  const AccessoryRegistry registry;
  const AccessorySet set{BuiltinAccessory::kPump, BuiltinAccessory::kCellTrap};
  EXPECT_DOUBLE_EQ(costs.accessory_set_processing(registry, set),
                   registry.processing_cost(BuiltinAccessory::kPump) +
                       registry.processing_cost(BuiltinAccessory::kCellTrap));
  EXPECT_DOUBLE_EQ(costs.accessory_set_processing(registry, AccessorySet{}), 0.0);
}

TEST(CostModel, WeightsRoundTrip) {
  CostModel costs;
  costs.set_weights(1.5, 2.5, 3.5, 4.5);
  EXPECT_DOUBLE_EQ(costs.weight_time(), 1.5);
  EXPECT_DOUBLE_EQ(costs.weight_area(), 2.5);
  EXPECT_DOUBLE_EQ(costs.weight_processing(), 3.5);
  EXPECT_DOUBLE_EQ(costs.weight_paths(), 4.5);
}

}  // namespace
}  // namespace cohls::model
