#include "sim/fleet.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <limits>

#include "assays/benchmarks.hpp"
#include "core/progressive_resynthesis.hpp"
#include "core/recovery.hpp"
#include "util/rng.hpp"

namespace cohls {
namespace {

struct Fixture {
  model::Assay assay;
  core::SynthesisReport report;
};

const Fixture& fixture() {
  static const Fixture shared = [] {
    core::SynthesisOptions options;
    options.max_devices = 12;
    options.layering.indeterminate_threshold = 3;
    model::Assay assay = assays::gene_expression_assay(3);
    core::SynthesisReport report = core::synthesize(assay, options);
    return Fixture{std::move(assay), std::move(report)};
  }();
  return shared;
}

void expect_summary_identical(const sim::FleetSummary& a, const sim::FleetSummary& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.device_failed, b.device_failed);
  EXPECT_EQ(a.attempts_exhausted, b.attempts_exhausted);
  EXPECT_EQ(a.recovery_attempts, b.recovery_attempts);
  EXPECT_EQ(a.recovered, b.recovered);
  // Bit-identical reductions: exact double equality is the contract.
  EXPECT_EQ(a.recovery_success_rate, b.recovery_success_rate);
  EXPECT_EQ(a.mttf_minutes, b.mttf_minutes);
  EXPECT_EQ(a.mean_completion_minutes, b.mean_completion_minutes);
  EXPECT_EQ(a.histogram_min, b.histogram_min);
  EXPECT_EQ(a.histogram_max, b.histogram_max);
  EXPECT_EQ(a.completion_histogram, b.completion_histogram);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.wheel.posted, b.wheel.posted);
  EXPECT_EQ(a.wheel.popped, b.wheel.popped);
  EXPECT_EQ(a.wheel.cascaded, b.wheel.cascaded);
  EXPECT_EQ(a.wheel.overflowed, b.wheel.overflowed);
  EXPECT_EQ(a.missions, b.missions);
  EXPECT_EQ(a.missions_recovered, b.missions_recovered);
  EXPECT_EQ(a.missions_degraded, b.missions_degraded);
  EXPECT_EQ(a.mission_rounds, b.mission_rounds);
  EXPECT_EQ(a.mission_survival_rate, b.mission_survival_rate);
  EXPECT_EQ(a.mean_mission_rounds, b.mean_mission_rounds);
  EXPECT_EQ(a.mission_credit, b.mission_credit);
  EXPECT_EQ(a.mission_rounds_histogram, b.mission_rounds_histogram);
}

/// The multi-fault mission probe the batch engine wires up: every broken
/// fleet run re-enters core::run_mission with the fleet's own hazard
/// streams, so continuation replays admit exactly the failures the root
/// sampling clipped.
sim::FleetOptions mission_fleet_options(const Fixture& f, int runs,
                                        std::uint64_t seed,
                                        const sim::HazardModel& hazard) {
  core::SynthesisOptions synth_options;
  synth_options.max_devices = 12;
  synth_options.layering.indeterminate_threshold = 3;
  // Heuristic-only continuations: still certified, but cheap enough that a
  // 64-run sweep with up to 3 recovery rounds per broken run stays fast
  // under TSan. Determinism is unaffected.
  synth_options.engine.enable_ilp = false;

  sim::FleetOptions options;
  options.runs = runs;
  options.seed = seed;
  options.hazard = hazard;
  options.mission = [&f, &hazard, synth_options, seed](
                        const sim::RunTrace&, const sim::RuntimeOptions& runtime,
                        std::uint64_t run) {
    core::MissionOptions mission;
    mission.synthesis = synth_options;
    mission.max_rounds = 3;
    mission.hazard = &hazard;
    mission.hazard_seed = seed;
    mission.hazard_run = run;
    const core::MissionOutcome out =
        core::run_mission(f.assay, f.report.result, runtime, mission);
    sim::MissionReport report;
    report.recovered = out.recovered;
    report.rounds = out.rounds;
    report.degraded = out.degraded;
    report.credit = out.credit_carried;
    report.completed_at = out.completed_at;
    return report;
  };
  return options;
}

TEST(Fleet, HappyPathFleetCompletesEveryRun) {
  const Fixture& f = fixture();
  sim::FleetOptions options;
  options.runs = 64;
  options.seed = 11;
  const sim::FleetSummary summary = sim::run_fleet(f.report.result, f.assay, options);
  EXPECT_EQ(summary.runs, 64);
  EXPECT_EQ(summary.completed, 64);
  EXPECT_EQ(summary.device_failed, 0);
  EXPECT_EQ(summary.attempts_exhausted, 0);
  EXPECT_EQ(summary.mttf_minutes, 0.0);
  EXPECT_GT(summary.mean_completion_minutes, 0.0);
  // Summary replays post only break-capable events (failures, exhaustions);
  // a fault-free fleet therefore consumes none at all.
  EXPECT_EQ(summary.events, 0u);
  ASSERT_FALSE(summary.completion_histogram.empty());
  int binned = 0;
  for (const int count : summary.completion_histogram) {
    binned += count;
  }
  EXPECT_EQ(binned, 64);
  EXPECT_GE(summary.histogram_max, summary.histogram_min);
}

TEST(Fleet, ReductionMatchesAManualReferenceLoop) {
  const Fixture& f = fixture();
  const sim::HazardModel hazard =
      sim::parse_hazard_spec("exp:400", f.assay.registry());

  sim::FleetOptions options;
  options.runs = 48;
  options.seed = 7;
  options.hazard = hazard;
  const sim::FleetSummary summary = sim::run_fleet(f.report.result, f.assay, options);

  // Re-derive the reduction with the three-pass reference simulator and the
  // same per-run streams.
  int completed = 0;
  int broken = 0;
  std::int64_t completion_sum = 0;
  std::int64_t break_sum = 0;
  for (int r = 0; r < options.runs; ++r) {
    sim::RuntimeOptions runtime = options.runtime;
    runtime.seed = derive_stream_seed(options.seed, 0x415454454D505453ULL,
                                      static_cast<std::uint64_t>(r));
    hazard.sample_into(runtime.faults, f.report.result.devices, options.seed,
                       static_cast<std::uint64_t>(r),
                       Minutes{std::numeric_limits<std::int64_t>::max()});
    const sim::RunTrace trace =
        sim::simulate_run_reference(f.report.result, f.assay, runtime);
    if (trace.ok()) {
      ++completed;
      completion_sum += trace.completed_at.count();
    } else {
      ++broken;
      break_sum += trace.completed_at.count();
    }
  }
  EXPECT_GT(broken, 0) << "hazard scale chosen to break some of 48 runs";
  EXPECT_EQ(summary.completed, completed);
  EXPECT_EQ(summary.device_failed + summary.attempts_exhausted, broken);
  EXPECT_EQ(summary.mttf_minutes,
            broken > 0 ? static_cast<double>(break_sum) / broken : 0.0);
  EXPECT_EQ(summary.mean_completion_minutes,
            completed > 0 ? static_cast<double>(completion_sum) / completed : 0.0);
}

TEST(Fleet, ReductionIsBitIdenticalAcrossWorkerCounts) {
  const Fixture& f = fixture();
  sim::FleetOptions options;
  options.runs = 64;
  options.seed = 21;
  options.hazard = sim::parse_hazard_spec("exp:500", f.assay.registry());

  options.jobs = 1;
  const sim::FleetSummary serial = sim::run_fleet(f.report.result, f.assay, options);
  options.jobs = 4;
  const sim::FleetSummary parallel = sim::run_fleet(f.report.result, f.assay, options);
  options.jobs = 8;
  const sim::FleetSummary wide = sim::run_fleet(f.report.result, f.assay, options);

  EXPECT_GT(serial.device_failed, 0);
  expect_summary_identical(serial, parallel);
  expect_summary_identical(serial, wide);
  // peak_pending is a per-wheel maximum, so it too must agree across
  // partitions (every run resets the wheel; the max is over runs).
  EXPECT_EQ(serial.wheel.peak_pending, parallel.wheel.peak_pending);
  EXPECT_EQ(serial.wheel.peak_pending, wide.wheel.peak_pending);
}

TEST(Fleet, RecoveryProbeSeesEveryBrokenRun) {
  const Fixture& f = fixture();
  sim::FleetOptions options;
  options.runs = 32;
  options.seed = 3;
  options.hazard = sim::parse_hazard_spec("exp:300", f.assay.registry());

  std::atomic<int> probed{0};
  options.recover = [&probed](const sim::RunTrace& trace) {
    ++probed;
    return trace.outcome == sim::RunOutcome::DeviceFailed;
  };
  const sim::FleetSummary summary = sim::run_fleet(f.report.result, f.assay, options);
  const int broken = summary.device_failed + summary.attempts_exhausted;
  EXPECT_GT(broken, 0);
  EXPECT_EQ(summary.recovery_attempts, broken);
  EXPECT_EQ(probed.load(), broken);
  EXPECT_EQ(summary.recovered, summary.device_failed);
  EXPECT_EQ(summary.recovery_success_rate,
            static_cast<double>(summary.recovered) / summary.recovery_attempts);
}

TEST(Fleet, ResynthesisRecoveryUnderHazards) {
  // End-to-end: broken fleet runs feed the real recovery re-synthesizer.
  const Fixture& f = fixture();
  core::SynthesisOptions synth_options;
  synth_options.max_devices = 12;
  synth_options.layering.indeterminate_threshold = 3;

  sim::FleetOptions options;
  options.runs = 12;
  options.seed = 5;
  options.jobs = 2;
  options.hazard = sim::parse_hazard_spec("exp:250", f.assay.registry());
  options.recover = [&](const sim::RunTrace& trace) {
    return core::recover(f.assay, f.report.result, trace, synth_options).recovered;
  };
  const sim::FleetSummary summary = sim::run_fleet(f.report.result, f.assay, options);
  EXPECT_GT(summary.recovery_attempts, 0);
  EXPECT_GE(summary.recovery_attempts, summary.recovered);
}

TEST(Fleet, MultiFaultMissionSweepSurvivesMultipleRounds) {
  // Every broken run re-enters the full replay→recover→re-certify mission
  // loop; re-anchored hazard streams admit the continuation-era failures the
  // root sampling clipped, so some missions must survive >= 2 faults.
  const Fixture& f = fixture();
  const sim::HazardModel hazard =
      sim::parse_hazard_spec("exp:250", f.assay.registry());
  sim::FleetOptions options = mission_fleet_options(f, 64, 29, hazard);
  options.jobs = 4;
  const sim::FleetSummary summary = sim::run_fleet(f.report.result, f.assay, options);

  const int broken = summary.device_failed + summary.attempts_exhausted;
  EXPECT_GT(broken, 0);
  EXPECT_EQ(summary.missions, broken);
  EXPECT_EQ(summary.recovery_attempts, broken);
  EXPECT_EQ(summary.recovered, summary.missions_recovered);
  EXPECT_GT(summary.mission_survival_rate, 0.0);
  EXPECT_EQ(summary.mission_survival_rate,
            static_cast<double>(summary.missions_recovered) / summary.missions);

  std::int64_t histogram_rounds = 0;
  std::int64_t multi_round = 0;
  for (std::size_t k = 0; k < summary.mission_rounds_histogram.size(); ++k) {
    histogram_rounds +=
        static_cast<std::int64_t>(k) * summary.mission_rounds_histogram[k];
    if (k >= 2) {
      multi_round += summary.mission_rounds_histogram[k];
    }
  }
  EXPECT_EQ(histogram_rounds, summary.mission_rounds);
  EXPECT_GT(multi_round, 0) << "no mission needed more than one recovery round";
}

TEST(Fleet, MissionReductionIsBitIdenticalAcrossWorkerCounts) {
  const Fixture& f = fixture();
  const sim::HazardModel hazard =
      sim::parse_hazard_spec("exp:300", f.assay.registry());

  sim::FleetOptions options = mission_fleet_options(f, 64, 33, hazard);
  options.jobs = 1;
  const sim::FleetSummary serial = sim::run_fleet(f.report.result, f.assay, options);
  options.jobs = 4;
  const sim::FleetSummary parallel = sim::run_fleet(f.report.result, f.assay, options);
  options.jobs = 8;
  const sim::FleetSummary wide = sim::run_fleet(f.report.result, f.assay, options);

  EXPECT_GT(serial.missions, 0);
  expect_summary_identical(serial, parallel);
  expect_summary_identical(serial, wide);
}

TEST(Fleet, SixtyFourRunParallelSweepIsRaceFree) {
  // The TSan CI step drives this test: 64 runs across 8 workers with
  // hazards and a trace-materializing recovery probe.
  const Fixture& f = fixture();
  sim::FleetOptions options;
  options.runs = 64;
  options.seed = 17;
  options.jobs = 8;
  options.hazard = sim::parse_hazard_spec("exp:350", f.assay.registry());
  std::atomic<int> probed{0};
  options.recover = [&probed](const sim::RunTrace& trace) {
    ++probed;
    return !trace.layers.empty();
  };
  const sim::FleetSummary summary = sim::run_fleet(f.report.result, f.assay, options);
  EXPECT_EQ(summary.runs, 64);
  EXPECT_EQ(summary.completed + summary.device_failed + summary.attempts_exhausted, 64);
  EXPECT_EQ(probed.load(), summary.recovery_attempts);
}

}  // namespace
}  // namespace cohls
