#include "sim/fleet.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <limits>

#include "assays/benchmarks.hpp"
#include "core/progressive_resynthesis.hpp"
#include "core/recovery.hpp"
#include "util/rng.hpp"

namespace cohls {
namespace {

struct Fixture {
  model::Assay assay;
  core::SynthesisReport report;
};

const Fixture& fixture() {
  static const Fixture shared = [] {
    core::SynthesisOptions options;
    options.max_devices = 12;
    options.layering.indeterminate_threshold = 3;
    model::Assay assay = assays::gene_expression_assay(3);
    core::SynthesisReport report = core::synthesize(assay, options);
    return Fixture{std::move(assay), std::move(report)};
  }();
  return shared;
}

void expect_summary_identical(const sim::FleetSummary& a, const sim::FleetSummary& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.device_failed, b.device_failed);
  EXPECT_EQ(a.attempts_exhausted, b.attempts_exhausted);
  EXPECT_EQ(a.recovery_attempts, b.recovery_attempts);
  EXPECT_EQ(a.recovered, b.recovered);
  // Bit-identical reductions: exact double equality is the contract.
  EXPECT_EQ(a.recovery_success_rate, b.recovery_success_rate);
  EXPECT_EQ(a.mttf_minutes, b.mttf_minutes);
  EXPECT_EQ(a.mean_completion_minutes, b.mean_completion_minutes);
  EXPECT_EQ(a.histogram_min, b.histogram_min);
  EXPECT_EQ(a.histogram_max, b.histogram_max);
  EXPECT_EQ(a.completion_histogram, b.completion_histogram);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.wheel.posted, b.wheel.posted);
  EXPECT_EQ(a.wheel.popped, b.wheel.popped);
  EXPECT_EQ(a.wheel.cascaded, b.wheel.cascaded);
  EXPECT_EQ(a.wheel.overflowed, b.wheel.overflowed);
}

TEST(Fleet, HappyPathFleetCompletesEveryRun) {
  const Fixture& f = fixture();
  sim::FleetOptions options;
  options.runs = 64;
  options.seed = 11;
  const sim::FleetSummary summary = sim::run_fleet(f.report.result, f.assay, options);
  EXPECT_EQ(summary.runs, 64);
  EXPECT_EQ(summary.completed, 64);
  EXPECT_EQ(summary.device_failed, 0);
  EXPECT_EQ(summary.attempts_exhausted, 0);
  EXPECT_EQ(summary.mttf_minutes, 0.0);
  EXPECT_GT(summary.mean_completion_minutes, 0.0);
  // Summary replays post only break-capable events (failures, exhaustions);
  // a fault-free fleet therefore consumes none at all.
  EXPECT_EQ(summary.events, 0u);
  ASSERT_FALSE(summary.completion_histogram.empty());
  int binned = 0;
  for (const int count : summary.completion_histogram) {
    binned += count;
  }
  EXPECT_EQ(binned, 64);
  EXPECT_GE(summary.histogram_max, summary.histogram_min);
}

TEST(Fleet, ReductionMatchesAManualReferenceLoop) {
  const Fixture& f = fixture();
  const sim::HazardModel hazard =
      sim::parse_hazard_spec("exp:400", f.assay.registry());

  sim::FleetOptions options;
  options.runs = 48;
  options.seed = 7;
  options.hazard = hazard;
  const sim::FleetSummary summary = sim::run_fleet(f.report.result, f.assay, options);

  // Re-derive the reduction with the three-pass reference simulator and the
  // same per-run streams.
  int completed = 0;
  int broken = 0;
  std::int64_t completion_sum = 0;
  std::int64_t break_sum = 0;
  for (int r = 0; r < options.runs; ++r) {
    sim::RuntimeOptions runtime = options.runtime;
    runtime.seed = derive_stream_seed(options.seed, 0x415454454D505453ULL,
                                      static_cast<std::uint64_t>(r));
    hazard.sample_into(runtime.faults, f.report.result.devices, options.seed,
                       static_cast<std::uint64_t>(r),
                       Minutes{std::numeric_limits<std::int64_t>::max()});
    const sim::RunTrace trace =
        sim::simulate_run_reference(f.report.result, f.assay, runtime);
    if (trace.ok()) {
      ++completed;
      completion_sum += trace.completed_at.count();
    } else {
      ++broken;
      break_sum += trace.completed_at.count();
    }
  }
  EXPECT_GT(broken, 0) << "hazard scale chosen to break some of 48 runs";
  EXPECT_EQ(summary.completed, completed);
  EXPECT_EQ(summary.device_failed + summary.attempts_exhausted, broken);
  EXPECT_EQ(summary.mttf_minutes,
            broken > 0 ? static_cast<double>(break_sum) / broken : 0.0);
  EXPECT_EQ(summary.mean_completion_minutes,
            completed > 0 ? static_cast<double>(completion_sum) / completed : 0.0);
}

TEST(Fleet, ReductionIsBitIdenticalAcrossWorkerCounts) {
  const Fixture& f = fixture();
  sim::FleetOptions options;
  options.runs = 64;
  options.seed = 21;
  options.hazard = sim::parse_hazard_spec("exp:500", f.assay.registry());

  options.jobs = 1;
  const sim::FleetSummary serial = sim::run_fleet(f.report.result, f.assay, options);
  options.jobs = 4;
  const sim::FleetSummary parallel = sim::run_fleet(f.report.result, f.assay, options);
  options.jobs = 8;
  const sim::FleetSummary wide = sim::run_fleet(f.report.result, f.assay, options);

  EXPECT_GT(serial.device_failed, 0);
  expect_summary_identical(serial, parallel);
  expect_summary_identical(serial, wide);
  // peak_pending is a per-wheel maximum, so it too must agree across
  // partitions (every run resets the wheel; the max is over runs).
  EXPECT_EQ(serial.wheel.peak_pending, parallel.wheel.peak_pending);
  EXPECT_EQ(serial.wheel.peak_pending, wide.wheel.peak_pending);
}

TEST(Fleet, RecoveryProbeSeesEveryBrokenRun) {
  const Fixture& f = fixture();
  sim::FleetOptions options;
  options.runs = 32;
  options.seed = 3;
  options.hazard = sim::parse_hazard_spec("exp:300", f.assay.registry());

  std::atomic<int> probed{0};
  options.recover = [&probed](const sim::RunTrace& trace) {
    ++probed;
    return trace.outcome == sim::RunOutcome::DeviceFailed;
  };
  const sim::FleetSummary summary = sim::run_fleet(f.report.result, f.assay, options);
  const int broken = summary.device_failed + summary.attempts_exhausted;
  EXPECT_GT(broken, 0);
  EXPECT_EQ(summary.recovery_attempts, broken);
  EXPECT_EQ(probed.load(), broken);
  EXPECT_EQ(summary.recovered, summary.device_failed);
  EXPECT_EQ(summary.recovery_success_rate,
            static_cast<double>(summary.recovered) / summary.recovery_attempts);
}

TEST(Fleet, ResynthesisRecoveryUnderHazards) {
  // End-to-end: broken fleet runs feed the real recovery re-synthesizer.
  const Fixture& f = fixture();
  core::SynthesisOptions synth_options;
  synth_options.max_devices = 12;
  synth_options.layering.indeterminate_threshold = 3;

  sim::FleetOptions options;
  options.runs = 12;
  options.seed = 5;
  options.jobs = 2;
  options.hazard = sim::parse_hazard_spec("exp:250", f.assay.registry());
  options.recover = [&](const sim::RunTrace& trace) {
    return core::recover(f.assay, f.report.result, trace, synth_options).recovered;
  };
  const sim::FleetSummary summary = sim::run_fleet(f.report.result, f.assay, options);
  EXPECT_GT(summary.recovery_attempts, 0);
  EXPECT_GE(summary.recovery_attempts, summary.recovered);
}

TEST(Fleet, SixtyFourRunParallelSweepIsRaceFree) {
  // The TSan CI step drives this test: 64 runs across 8 workers with
  // hazards and a trace-materializing recovery probe.
  const Fixture& f = fixture();
  sim::FleetOptions options;
  options.runs = 64;
  options.seed = 17;
  options.jobs = 8;
  options.hazard = sim::parse_hazard_spec("exp:350", f.assay.registry());
  std::atomic<int> probed{0};
  options.recover = [&probed](const sim::RunTrace& trace) {
    ++probed;
    return !trace.layers.empty();
  };
  const sim::FleetSummary summary = sim::run_fleet(f.report.result, f.assay, options);
  EXPECT_EQ(summary.runs, 64);
  EXPECT_EQ(summary.completed + summary.device_failed + summary.attempts_exhausted, 64);
  EXPECT_EQ(probed.load(), summary.recovery_attempts);
}

}  // namespace
}  // namespace cohls
