#include "sim/runtime.hpp"

#include <gtest/gtest.h>

#include "assays/benchmarks.hpp"
#include "core/progressive_resynthesis.hpp"

namespace cohls::sim {
namespace {

struct Fixture {
  model::Assay assay = assays::gene_expression_assay(3);
  core::SynthesisReport report;

  Fixture() {
    core::SynthesisOptions options;
    options.max_devices = 12;
    options.layering.indeterminate_threshold = 3;
    report = core::synthesize(assay, options);
  }
};

TEST(Runtime, CertainSuccessMatchesThePlanExactly) {
  const Fixture f;
  RuntimeOptions options;
  options.attempt_success_probability = 1.0;
  const RunTrace trace = simulate_run(f.report.result, f.assay, options);
  EXPECT_EQ(trace.completed_at, trace.planned_fixed);
  EXPECT_EQ(trace.overrun(), 0_min);
}

TEST(Runtime, OverrunIsNeverNegative) {
  const Fixture f;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RuntimeOptions options;
    options.seed = seed;
    const RunTrace trace = simulate_run(f.report.result, f.assay, options);
    EXPECT_GE(trace.completed_at, trace.planned_fixed) << "seed " << seed;
  }
}

TEST(Runtime, DeterministicPerSeed) {
  const Fixture f;
  RuntimeOptions options;
  options.seed = 7;
  const RunTrace a = simulate_run(f.report.result, f.assay, options);
  const RunTrace b = simulate_run(f.report.result, f.assay, options);
  EXPECT_EQ(a.completed_at, b.completed_at);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (std::size_t i = 0; i < a.layers.size(); ++i) {
    EXPECT_EQ(a.layers[i].end, b.layers[i].end);
  }
}

TEST(Runtime, OnlyIndeterminateOpsRetry) {
  const Fixture f;
  RuntimeOptions options;
  options.attempt_success_probability = 0.2;  // lots of retries
  options.seed = 3;
  const RunTrace trace = simulate_run(f.report.result, f.assay, options);
  for (const LayerTrace& layer : trace.layers) {
    for (const OperationTrace& op : layer.operations) {
      if (f.assay.operation(op.op).indeterminate()) {
        EXPECT_GE(op.attempts, 1);
        EXPECT_EQ(op.actual, op.attempts * f.assay.operation(op.op).duration());
      } else {
        EXPECT_EQ(op.attempts, 1);
        EXPECT_EQ(op.actual, f.assay.operation(op.op).duration());
      }
    }
  }
}

TEST(Runtime, LayersExecuteBackToBack) {
  const Fixture f;
  const RunTrace trace = simulate_run(f.report.result, f.assay);
  Minutes expected_start{0};
  for (const LayerTrace& layer : trace.layers) {
    EXPECT_EQ(layer.start, expected_start);
    EXPECT_GE(layer.end, layer.start);
    expected_start = layer.end;
  }
  EXPECT_EQ(trace.completed_at, expected_start);
}

TEST(Runtime, ExhaustedAttemptsBreakTheRunInsteadOfFakingSuccess) {
  const Fixture f;
  RuntimeOptions options;
  options.attempt_success_probability = 1e-9;  // effectively never succeeds
  options.max_attempts = 3;
  const RunTrace trace = simulate_run(f.report.result, f.assay, options);
  // The cap bounds the retries, and hitting it is a reported failure —
  // never a fabricated completion.
  EXPECT_FALSE(trace.ok());
  EXPECT_EQ(trace.outcome, RunOutcome::AttemptsExhausted);
  ASSERT_TRUE(trace.failure.has_value());
  EXPECT_TRUE(f.assay.operation(trace.failure->op).indeterminate());
  EXPECT_FALSE(trace.failure->detail.empty());
  for (const LayerTrace& layer : trace.layers) {
    for (const OperationTrace& op : layer.operations) {
      EXPECT_LE(op.attempts, 3);
    }
  }
  // The exhausted operation's work is void, not completed.
  for (const OperationId op : trace.completed) {
    EXPECT_NE(op, trace.failure->op);
  }
}

TEST(Runtime, RejectsBadOptions) {
  const Fixture f;
  RuntimeOptions options;
  options.attempt_success_probability = 0.0;
  EXPECT_THROW((void)simulate_run(f.report.result, f.assay, options), PreconditionError);
  options.attempt_success_probability = 0.5;
  options.max_attempts = 0;
  EXPECT_THROW((void)simulate_run(f.report.result, f.assay, options), PreconditionError);
}

}  // namespace
}  // namespace cohls::sim
