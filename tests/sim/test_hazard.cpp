#include "sim/hazard.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "model/components.hpp"
#include "model/device.hpp"
#include "util/rng.hpp"

namespace cohls::sim {
namespace {

model::DeviceInventory small_inventory() {
  model::DeviceInventory devices{4};
  model::DeviceConfig pump_device;
  pump_device.container = model::ContainerKind::Ring;
  pump_device.capacity = model::Capacity::Medium;
  pump_device.accessories.insert(model::BuiltinAccessory::kPump);
  model::DeviceConfig heater_device;
  heater_device.container = model::ContainerKind::Chamber;
  heater_device.capacity = model::Capacity::Small;
  heater_device.accessories.insert(model::BuiltinAccessory::kHeatingPad);
  model::DeviceConfig bare_device;
  bare_device.container = model::ContainerKind::Chamber;
  bare_device.capacity = model::Capacity::Tiny;
  devices.instantiate(pump_device, LayerId{0});
  devices.instantiate(heater_device, LayerId{0});
  devices.instantiate(bare_device, LayerId{0});
  return devices;
}

TEST(Hazard, ParsesDefaultAndAccessoryClauses) {
  const model::AccessoryRegistry registry;
  const HazardModel model = parse_hazard_spec(
      "exp:5000; heating-pad=weibull:2000,1.5; default=exp:9000", registry);
  ASSERT_EQ(model.rules().size(), 3u);
  EXPECT_EQ(model.rules()[0].accessory, -1);
  EXPECT_EQ(model.rules()[0].dist.family, HazardFamily::Exponential);
  EXPECT_DOUBLE_EQ(model.rules()[0].dist.scale, 5000.0);
  EXPECT_EQ(model.rules()[1].accessory, model::BuiltinAccessory::kHeatingPad);
  EXPECT_EQ(model.rules()[1].dist.family, HazardFamily::Weibull);
  EXPECT_DOUBLE_EQ(model.rules()[1].dist.shape, 1.5);
  EXPECT_EQ(model.rules()[2].accessory, -1);
}

TEST(Hazard, RejectsMalformedSpecs) {
  const model::AccessoryRegistry registry;
  EXPECT_THROW(parse_hazard_spec("exp", registry), HazardSpecError);
  EXPECT_THROW(parse_hazard_spec("exp:0", registry), HazardSpecError);
  EXPECT_THROW(parse_hazard_spec("exp:-3", registry), HazardSpecError);
  EXPECT_THROW(parse_hazard_spec("weibull:100", registry), HazardSpecError);
  EXPECT_THROW(parse_hazard_spec("gamma:1,2", registry), HazardSpecError);
  EXPECT_THROW(parse_hazard_spec("warp-drive=exp:10", registry), HazardSpecError);
  EXPECT_THROW(parse_hazard_spec("exp:10x", registry), HazardSpecError);
}

TEST(Hazard, EmptySpecYieldsEmptyModel) {
  const model::AccessoryRegistry registry;
  EXPECT_TRUE(parse_hazard_spec("", registry).empty());
  EXPECT_TRUE(parse_hazard_spec(" ; ", registry).empty());
}

TEST(Hazard, SamplingIsOrderIndependentPerRunAndDevice) {
  const model::AccessoryRegistry registry;
  const HazardModel model = parse_hazard_spec("exp:200", registry);
  const model::DeviceInventory devices = small_inventory();
  const Minutes horizon{1'000'000};

  // Expanding run 7 alone must equal run 7 inside a 0..9 sweep.
  FaultPlan alone;
  model.sample_into(alone, devices, 99, 7, horizon);
  FaultPlan swept;
  for (std::uint64_t run = 0; run < 10; ++run) {
    FaultPlan plan;
    model.sample_into(plan, devices, 99, run, horizon);
    if (run == 7) {
      swept = plan;
    }
  }
  ASSERT_EQ(alone.events.size(), swept.events.size());
  for (std::size_t i = 0; i < alone.events.size(); ++i) {
    EXPECT_EQ(alone.events[i], swept.events[i]);
  }

  // Different runs draw different plans (overwhelmingly likely with a
  // 200-minute mean and three devices).
  FaultPlan other;
  model.sample_into(other, devices, 99, 8, horizon);
  EXPECT_NE(to_text(alone), to_text(other));
}

TEST(Hazard, AccessoryRulesOnlyHitCarryingDevices) {
  const model::AccessoryRegistry registry;
  // Pumps die instantly; nothing else is modelled.
  HazardModel model = parse_hazard_spec("pump=weibull:0.001,1", registry);
  const model::DeviceInventory devices = small_inventory();
  FaultPlan plan;
  model.sample_into(plan, devices, 1, 0, Minutes{1'000'000});
  ASSERT_EQ(plan.events.size(), 1u);
  EXPECT_EQ(plan.events[0].device, devices.devices()[0].id);
  EXPECT_EQ(plan.events[0].kind, FaultKind::DeviceFailure);
}

TEST(Hazard, HorizonClipsSampledFailures) {
  const model::AccessoryRegistry registry;
  const HazardModel model = parse_hazard_spec("exp:1000000", registry);
  const model::DeviceInventory devices = small_inventory();
  FaultPlan plan;
  model.sample_into(plan, devices, 3, 0, Minutes{1});
  // Mean of a million minutes: essentially nothing lands before minute 1.
  EXPECT_TRUE(plan.events.empty());
}

TEST(Hazard, ExtendedHorizonAdmitsExactlyTheClippedEvents) {
  // The mission loop's re-anchoring contract: each recovery round re-samples
  // the same (seed, run) counter streams with a horizon pushed out to the
  // continuation's worst-case end. The longer draw must reproduce every
  // short-horizon event bit-identically and admit exactly the events the
  // shorter horizon clipped — nothing else may move.
  const model::AccessoryRegistry registry;
  const HazardModel model = parse_hazard_spec("exp:200", registry);
  const model::DeviceInventory devices = small_inventory();
  const Minutes short_h{120};
  const Minutes long_h{1'000'000};

  std::size_t admitted = 0;
  for (std::uint64_t run = 0; run < 16; ++run) {
    FaultPlan clipped;
    FaultPlan extended;
    model.sample_into(clipped, devices, 42, run, short_h);
    model.sample_into(extended, devices, 42, run, long_h);

    std::vector<FaultEvent> expected;
    for (const FaultEvent& event : extended.events) {
      if (event.at < short_h) {
        expected.push_back(event);
      } else {
        ++admitted;
      }
    }
    ASSERT_EQ(clipped.events.size(), expected.size()) << "run " << run;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(clipped.events[i], expected[i]) << "run " << run;
    }
  }
  // With a 200-minute mean over three devices, the extension must actually
  // admit some previously clipped failures across 16 runs.
  EXPECT_GT(admitted, 0u);
}

TEST(Hazard, ExponentialSampleMatchesInverseCdf) {
  HazardDistribution dist;
  dist.family = HazardFamily::Exponential;
  dist.scale = 100.0;
  EXPECT_EQ(dist.sample(0.0), Minutes{0});
  // -100 ln(1 - 0.5) = 69.3... -> ceil 70.
  EXPECT_EQ(dist.sample(0.5), Minutes{70});

  HazardDistribution weibull;
  weibull.family = HazardFamily::Weibull;
  weibull.scale = 100.0;
  weibull.shape = 2.0;
  // 100 * sqrt(-ln(0.5)) = 83.2... -> ceil 84.
  EXPECT_EQ(weibull.sample(0.5), Minutes{84});
  EXPECT_THROW(static_cast<void>(weibull.sample(1.0)), PreconditionError);
}

TEST(Hazard, StreamSeedsDisperse) {
  // Counter-derived stream seeds must differ across any coordinate.
  const std::uint64_t base = derive_stream_seed(1, 2, 3);
  EXPECT_NE(base, derive_stream_seed(2, 2, 3));
  EXPECT_NE(base, derive_stream_seed(1, 3, 3));
  EXPECT_NE(base, derive_stream_seed(1, 2, 4));
  EXPECT_EQ(base, derive_stream_seed(1, 2, 3));
}

}  // namespace
}  // namespace cohls::sim
