#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include "assays/benchmarks.hpp"
#include "core/progressive_resynthesis.hpp"
#include "sim/runtime.hpp"

namespace cohls::sim {
namespace {

struct Fixture {
  model::Assay assay = assays::gene_expression_assay(3);
  core::SynthesisReport report;

  Fixture() {
    core::SynthesisOptions options;
    options.max_devices = 12;
    options.layering.indeterminate_threshold = 3;
    report = core::synthesize(assay, options);
  }
};

TEST(FaultPlan, ParsesEveryDirective) {
  const FaultPlan plan = parse_fault_plan(
      "# a comment\n"
      "\n"
      "device-fail 2 at 30\n"
      "degrade 1 by 1.5 from 10\n"
      "degrade 1 by 2\n"
      "exhaust 7\n"
      "transport-delay 3 from 45\n");
  ASSERT_EQ(plan.events.size(), 5u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::DeviceFailure);
  EXPECT_EQ(plan.events[0].device, DeviceId{2});
  EXPECT_EQ(plan.events[0].at, 30_min);
  EXPECT_EQ(plan.events[1].kind, FaultKind::Degradation);
  EXPECT_DOUBLE_EQ(plan.events[1].factor, 1.5);
  EXPECT_EQ(plan.events[1].at, 10_min);
  EXPECT_EQ(plan.events[2].at, 0_min);
  EXPECT_EQ(plan.events[3].kind, FaultKind::AttemptExhaustion);
  EXPECT_EQ(plan.events[3].op, OperationId{7});
  EXPECT_EQ(plan.events[4].kind, FaultKind::TransportDelay);
  EXPECT_EQ(plan.events[4].delay, 3_min);
}

TEST(FaultPlan, TextRoundTrips) {
  const FaultPlan plan = parse_fault_plan(
      "device-fail 2 at 30\n"
      "degrade 1 by 1.5 from 10\n"
      "exhaust 7\n"
      "transport-delay 3 from 45\n");
  const FaultPlan again = parse_fault_plan(to_text(plan));
  EXPECT_EQ(plan.events, again.events);
}

TEST(FaultPlan, RejectsMalformedDirectivesWithLineNumbers) {
  const auto line_of = [](const std::string& text) {
    try {
      (void)parse_fault_plan(text);
    } catch (const FaultPlanError& e) {
      return e.line();
    }
    return -1;
  };
  EXPECT_EQ(line_of("frobnicate 1\n"), 1);
  EXPECT_EQ(line_of("# fine\ndevice-fail 1\n"), 2);
  EXPECT_EQ(line_of("device-fail -1 at 5\n"), 1);
  EXPECT_EQ(line_of("degrade 0 by 0.5\n"), 1);       // factor < 1
  EXPECT_EQ(line_of("device-fail 0 at -3\n"), 1);    // negative time
  EXPECT_EQ(line_of("exhaust many\n"), 1);           // not a number
  EXPECT_EQ(line_of("device-fail 0 at 5 extra\n"), 1);
}

TEST(FaultPlan, HelpersAggregateActiveEvents) {
  const FaultPlan plan = parse_fault_plan(
      "degrade 1 by 1.5\n"
      "degrade 1 by 2 from 50\n"
      "transport-delay 3\n"
      "transport-delay 4 from 100\n");
  EXPECT_DOUBLE_EQ(plan.degradation_factor(DeviceId{1}, 0_min), 1.5);
  EXPECT_DOUBLE_EQ(plan.degradation_factor(DeviceId{1}, 60_min), 3.0);
  EXPECT_DOUBLE_EQ(plan.degradation_factor(DeviceId{0}, 60_min), 1.0);
  EXPECT_EQ(plan.transport_delay(0_min), 3_min);
  EXPECT_EQ(plan.transport_delay(100_min), 7_min);
  EXPECT_FALSE(plan.exhausts(OperationId{0}));
}

TEST(FaultInjection, DeviceFailureBreaksTheRunAndClassifiesOperations) {
  const Fixture f;
  // Fail the first device that has work scheduled on it, mid-run.
  const DeviceId victim = f.report.result.layers.front().items.front().device;
  RuntimeOptions options;
  options.attempt_success_probability = 1.0;
  options.faults.events.push_back(
      FaultEvent{FaultKind::DeviceFailure, victim, OperationId{}, 1_min});
  const RunTrace trace = simulate_run(f.report.result, f.assay, options);

  EXPECT_FALSE(trace.ok());
  EXPECT_EQ(trace.outcome, RunOutcome::DeviceFailed);
  ASSERT_TRUE(trace.failure.has_value());
  EXPECT_EQ(trace.failure->device, victim);
  EXPECT_EQ(trace.failure->at, 1_min);

  // Classification is a partition: no operation is both completed and lost
  // or in flight, in-flight operations sit on surviving devices, and
  // everything stranded on the victim is lost.
  for (const InFlightOperation& running : trace.in_flight) {
    EXPECT_NE(running.device, victim);
    EXPECT_GT(running.remaining, 0_min);
    EXPECT_GE(running.elapsed, 0_min);
    for (const OperationId done : trace.completed) {
      EXPECT_NE(done, running.op);
    }
  }
  for (const OperationId gone : trace.lost) {
    for (const OperationId done : trace.completed) {
      EXPECT_NE(done, gone);
    }
  }
}

TEST(FaultInjection, DegradationInflatesDurations) {
  const Fixture f;
  RuntimeOptions healthy;
  healthy.attempt_success_probability = 1.0;
  const RunTrace base = simulate_run(f.report.result, f.assay, healthy);

  RuntimeOptions slowed = healthy;
  for (const model::Device& device : f.report.result.devices.devices()) {
    slowed.faults.events.push_back(
        FaultEvent{FaultKind::Degradation, device.id, OperationId{}, 0_min, 2.0});
  }
  const RunTrace degraded = simulate_run(f.report.result, f.assay, slowed);
  ASSERT_TRUE(degraded.ok());
  // Every realized duration doubles (planned start offsets within a layer
  // do not scale, so the total stretches but is not exactly 2x).
  EXPECT_GT(degraded.completed_at, base.completed_at);
  ASSERT_EQ(degraded.layers.size(), base.layers.size());
  for (std::size_t li = 0; li < degraded.layers.size(); ++li) {
    ASSERT_EQ(degraded.layers[li].operations.size(),
              base.layers[li].operations.size());
    for (std::size_t k = 0; k < degraded.layers[li].operations.size(); ++k) {
      EXPECT_EQ(degraded.layers[li].operations[k].actual,
                2 * base.layers[li].operations[k].actual);
    }
  }
}

TEST(FaultInjection, ScriptedExhaustionBreaksAtTheIndeterminateOp) {
  const Fixture f;
  const std::vector<OperationId> indeterminate = f.assay.indeterminate_operations();
  ASSERT_FALSE(indeterminate.empty());
  RuntimeOptions options;
  options.attempt_success_probability = 1.0;  // only the script can fail
  options.max_attempts = 4;
  FaultEvent exhaust;
  exhaust.kind = FaultKind::AttemptExhaustion;
  exhaust.op = indeterminate.front();
  options.faults.events.push_back(exhaust);

  const RunTrace trace = simulate_run(f.report.result, f.assay, options);
  EXPECT_EQ(trace.outcome, RunOutcome::AttemptsExhausted);
  ASSERT_TRUE(trace.failure.has_value());
  EXPECT_EQ(trace.failure->op, indeterminate.front());
  // The scripted exhaustion consumed the whole attempt budget.
  bool found = false;
  for (const LayerTrace& layer : trace.layers) {
    for (const OperationTrace& op : layer.operations) {
      if (op.op == indeterminate.front()) {
        EXPECT_EQ(op.attempts, 4);
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(FaultInjection, TransportDelayStretchesOnlyTransferringLayers) {
  const Fixture f;
  RuntimeOptions healthy;
  healthy.attempt_success_probability = 1.0;
  const RunTrace base = simulate_run(f.report.result, f.assay, healthy);

  RuntimeOptions congested = healthy;
  congested.faults.events.push_back(
      FaultEvent{FaultKind::TransportDelay, DeviceId{}, OperationId{}, 0_min, 1.0,
                 5_min});
  const RunTrace delayed = simulate_run(f.report.result, f.assay, congested);
  ASSERT_TRUE(delayed.ok());
  EXPECT_GE(delayed.completed_at, base.completed_at);
}

TEST(FaultInjection, IdenticalSeedsAndPlansAreBitIdentical) {
  const Fixture f;
  RuntimeOptions options;
  options.seed = 11;
  const DeviceId victim = f.report.result.layers.front().items.front().device;
  options.faults.events.push_back(
      FaultEvent{FaultKind::DeviceFailure, victim, OperationId{}, 20_min});

  const RunTrace a = simulate_run(f.report.result, f.assay, options);
  const RunTrace b = simulate_run(f.report.result, f.assay, options);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.completed_at, b.completed_at);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.lost, b.lost);
  ASSERT_EQ(a.in_flight.size(), b.in_flight.size());
  for (std::size_t i = 0; i < a.in_flight.size(); ++i) {
    EXPECT_EQ(a.in_flight[i].op, b.in_flight[i].op);
    EXPECT_EQ(a.in_flight[i].device, b.in_flight[i].device);
    EXPECT_EQ(a.in_flight[i].elapsed, b.in_flight[i].elapsed);
    EXPECT_EQ(a.in_flight[i].remaining, b.in_flight[i].remaining);
  }
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (std::size_t i = 0; i < a.layers.size(); ++i) {
    EXPECT_EQ(a.layers[i].end, b.layers[i].end);
    EXPECT_EQ(a.layers[i].operations.size(), b.layers[i].operations.size());
  }
}

TEST(FaultInjection, FailureOfAnIdleDeviceIsHarmless) {
  const Fixture f;
  RuntimeOptions options;
  options.attempt_success_probability = 1.0;
  // A device id beyond the inventory never has work bound to it.
  options.faults.events.push_back(
      FaultEvent{FaultKind::DeviceFailure, DeviceId{999}, OperationId{}, 0_min});
  const RunTrace trace = simulate_run(f.report.result, f.assay, options);
  EXPECT_TRUE(trace.ok());
  EXPECT_FALSE(trace.failure.has_value());
}

}  // namespace
}  // namespace cohls::sim
