// Differential parity: the event-wheel replay (simulate_run) must produce
// bit-identical RunTraces to the original three-pass implementation
// (simulate_run_reference) across the PR-5 randomized fault-sweep corpus —
// every protocol x device x layer boundary x seed — plus exhaustion,
// degradation, transport and hazard-sampled plans. Any divergence in any
// field, down to the failure detail string, is a bug in the wheel replay.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "assays/benchmarks.hpp"
#include "core/progressive_resynthesis.hpp"
#include "sim/faults.hpp"
#include "sim/hazard.hpp"
#include "sim/runtime.hpp"

namespace cohls {
namespace {

struct Protocol {
  std::string name;
  model::Assay assay;
};

std::vector<Protocol> protocols() {
  std::vector<Protocol> list;
  list.push_back({"kinase-activity", assays::kinase_activity_assay(2)});
  list.push_back({"gene-expression", assays::gene_expression_assay(3)});
  list.push_back({"rt-qpcr", assays::rt_qpcr_assay(3)});
  return list;
}

core::SynthesisOptions sweep_options() {
  core::SynthesisOptions options;
  options.max_devices = 12;
  options.layering.indeterminate_threshold = 3;
  return options;
}

void expect_identical(const sim::RunTrace& wheel, const sim::RunTrace& reference,
                      const std::string& context) {
  ASSERT_EQ(wheel.outcome, reference.outcome) << context;
  ASSERT_EQ(wheel.completed_at, reference.completed_at) << context;
  ASSERT_EQ(wheel.planned_fixed, reference.planned_fixed) << context;

  ASSERT_EQ(wheel.layers.size(), reference.layers.size()) << context;
  for (std::size_t li = 0; li < wheel.layers.size(); ++li) {
    const sim::LayerTrace& a = wheel.layers[li];
    const sim::LayerTrace& b = reference.layers[li];
    ASSERT_EQ(a.layer, b.layer) << context << " layer " << li;
    ASSERT_EQ(a.start, b.start) << context << " layer " << li;
    ASSERT_EQ(a.end, b.end) << context << " layer " << li;
    ASSERT_EQ(a.operations.size(), b.operations.size()) << context << " layer " << li;
    for (std::size_t oi = 0; oi < a.operations.size(); ++oi) {
      const sim::OperationTrace& x = a.operations[oi];
      const sim::OperationTrace& y = b.operations[oi];
      ASSERT_EQ(x.op, y.op) << context;
      ASSERT_EQ(x.device, y.device) << context;
      ASSERT_EQ(x.start, y.start) << context;
      ASSERT_EQ(x.actual, y.actual) << context;
      ASSERT_EQ(x.attempts, y.attempts) << context;
    }
  }

  ASSERT_EQ(wheel.completed, reference.completed) << context;
  ASSERT_EQ(wheel.lost, reference.lost) << context;
  ASSERT_EQ(wheel.in_flight.size(), reference.in_flight.size()) << context;
  for (std::size_t i = 0; i < wheel.in_flight.size(); ++i) {
    const sim::InFlightOperation& x = wheel.in_flight[i];
    const sim::InFlightOperation& y = reference.in_flight[i];
    ASSERT_EQ(x.op, y.op) << context;
    ASSERT_EQ(x.device, y.device) << context;
    ASSERT_EQ(x.started, y.started) << context;
    ASSERT_EQ(x.elapsed, y.elapsed) << context;
    ASSERT_EQ(x.remaining, y.remaining) << context;
  }

  ASSERT_EQ(wheel.failure.has_value(), reference.failure.has_value()) << context;
  if (wheel.failure.has_value()) {
    const sim::RunFailure& a = *wheel.failure;
    const sim::RunFailure& b = *reference.failure;
    ASSERT_EQ(a.outcome, b.outcome) << context;
    ASSERT_EQ(a.layer, b.layer) << context;
    ASSERT_EQ(a.device, b.device) << context;
    ASSERT_EQ(a.op, b.op) << context;
    ASSERT_EQ(a.at, b.at) << context;
    ASSERT_EQ(a.detail, b.detail) << context;
  }
}

void expect_parity(const schedule::SynthesisResult& result, const model::Assay& assay,
                   const sim::RuntimeOptions& options, const std::string& context) {
  const sim::RunTrace wheel = sim::simulate_run(result, assay, options);
  const sim::RunTrace reference = sim::simulate_run_reference(result, assay, options);
  expect_identical(wheel, reference, context);
}

TEST(RuntimeParity, FaultSweepCorpusIsBitIdentical) {
  const core::SynthesisOptions options = sweep_options();
  int broken = 0;
  for (const Protocol& protocol : protocols()) {
    const core::SynthesisReport report = core::synthesize(protocol.assay, options);
    ASSERT_FALSE(report.result.layers.empty()) << protocol.name;

    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      sim::RuntimeOptions healthy;
      healthy.seed = seed;
      const sim::RunTrace base =
          sim::simulate_run_reference(report.result, protocol.assay, healthy);
      ASSERT_TRUE(base.ok());
      expect_parity(report.result, protocol.assay, healthy,
                    protocol.name + " healthy seed " + std::to_string(seed));

      std::set<Minutes> boundaries;
      for (const sim::LayerTrace& layer : base.layers) {
        boundaries.insert(layer.start);
      }
      for (const model::Device& device : report.result.devices.devices()) {
        for (const Minutes when : boundaries) {
          sim::RuntimeOptions runtime;
          runtime.seed = seed;
          runtime.faults.events.push_back(sim::FaultEvent{
              sim::FaultKind::DeviceFailure, device.id, OperationId{}, when});
          std::ostringstream context;
          context << protocol.name << " device " << device.id.value() << " at "
                  << when.count() << " seed " << seed;
          const sim::RunTrace reference =
              sim::simulate_run_reference(report.result, protocol.assay, runtime);
          const sim::RunTrace wheel =
              sim::simulate_run(report.result, protocol.assay, runtime);
          expect_identical(wheel, reference, context.str());
          if (!reference.ok()) {
            ++broken;
          }
        }
      }
    }
  }
  EXPECT_GT(broken, 10);  // the corpus must actually exercise break paths
}

TEST(RuntimeParity, ExhaustionAtEveryIndeterminateOp) {
  const core::SynthesisOptions options = sweep_options();
  const Protocol protocol{"gene-expression", assays::gene_expression_assay(3)};
  const core::SynthesisReport report = core::synthesize(protocol.assay, options);

  for (const OperationId op : protocol.assay.indeterminate_operations()) {
    sim::RuntimeOptions runtime;
    runtime.attempt_success_probability = 1.0;  // only the script fails
    sim::FaultEvent exhaust;
    exhaust.kind = sim::FaultKind::AttemptExhaustion;
    exhaust.op = op;
    runtime.faults.events.push_back(exhaust);
    expect_parity(report.result, protocol.assay, runtime,
                  "exhaust op " + std::to_string(op.value()));
  }
}

TEST(RuntimeParity, DegradationTransportAndCombinedPlans) {
  const core::SynthesisOptions options = sweep_options();
  const Protocol protocol{"rt-qpcr", assays::rt_qpcr_assay(3)};
  const core::SynthesisReport report = core::synthesize(protocol.assay, options);
  const std::vector<model::Device>& devices = report.result.devices.devices();
  ASSERT_FALSE(devices.empty());

  for (const std::uint64_t seed : {7u, 8u, 9u}) {
    sim::RuntimeOptions runtime;
    runtime.seed = seed;
    sim::FaultEvent degrade;
    degrade.kind = sim::FaultKind::Degradation;
    degrade.device = devices[seed % devices.size()].id;
    degrade.factor = 1.5;
    runtime.faults.events.push_back(degrade);
    sim::FaultEvent transport;
    transport.kind = sim::FaultKind::TransportDelay;
    transport.delay = Minutes{3};
    transport.at = Minutes{10};
    runtime.faults.events.push_back(transport);
    // A late failure on top: layer spans already shifted by the above.
    sim::FaultEvent fail;
    fail.kind = sim::FaultKind::DeviceFailure;
    fail.device = devices[(seed + 1) % devices.size()].id;
    fail.at = Minutes{40};
    runtime.faults.events.push_back(fail);
    expect_parity(report.result, protocol.assay, runtime,
                  "combined plan seed " + std::to_string(seed));
  }
}

TEST(RuntimeParity, HazardSampledPlans) {
  const core::SynthesisOptions options = sweep_options();
  const Protocol protocol{"gene-expression", assays::gene_expression_assay(3)};
  const core::SynthesisReport report = core::synthesize(protocol.assay, options);
  const sim::HazardModel hazard =
      sim::parse_hazard_spec("exp:300", protocol.assay.registry());

  for (std::uint64_t run = 0; run < 32; ++run) {
    sim::RuntimeOptions runtime;
    runtime.seed = run + 1;
    hazard.sample_into(runtime.faults, report.result.devices, 42, run,
                       Minutes{1'000'000});
    expect_parity(report.result, protocol.assay, runtime,
                  "hazard run " + std::to_string(run));
  }
}

TEST(RuntimeParity, SimultaneousFailuresTieBreakLikeTheReference) {
  const core::SynthesisOptions options = sweep_options();
  const Protocol protocol{"kinase-activity", assays::kinase_activity_assay(2)};
  const core::SynthesisReport report = core::synthesize(protocol.assay, options);
  const std::vector<model::Device>& devices = report.result.devices.devices();
  ASSERT_GE(devices.size(), 2u);

  // Two devices die the same minute (in both registration orders), plus an
  // exhaustion landing nearby: the drain order must reproduce Break::beats.
  for (const bool swapped : {false, true}) {
    sim::RuntimeOptions runtime;
    runtime.seed = 5;
    sim::FaultEvent a;
    a.kind = sim::FaultKind::DeviceFailure;
    a.device = devices[swapped ? 1 : 0].id;
    a.at = Minutes{5};
    sim::FaultEvent b = a;
    b.device = devices[swapped ? 0 : 1].id;
    runtime.faults.events.push_back(a);
    runtime.faults.events.push_back(b);
    expect_parity(report.result, protocol.assay, runtime,
                  std::string("simultaneous failures swapped=") +
                      (swapped ? "true" : "false"));
  }
}

}  // namespace
}  // namespace cohls
