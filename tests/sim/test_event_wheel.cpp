#include "sim/event_wheel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace cohls::sim {
namespace {

Event make_event(std::int64_t at, EventType type = EventType::Start, std::int32_t key = 0,
                 std::int32_t payload = 0) {
  Event e;
  e.at = at;
  e.type = type;
  e.key = key;
  e.payload = payload;
  return e;
}

std::vector<Event> drain(EventWheel& wheel, std::int64_t horizon) {
  std::vector<Event> out;
  while (std::optional<Event> e = wheel.next(horizon)) {
    out.push_back(*e);
  }
  return out;
}

TEST(EventWheel, DrainsInTimeOrder) {
  EventWheel wheel(8);
  wheel.reset();
  for (const std::int64_t at : {17, 3, 0, 99, 4, 3, 250}) {
    wheel.post(make_event(at));
  }
  const std::vector<Event> events = drain(wheel, 1'000);
  ASSERT_EQ(events.size(), 7u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].at, events[i].at);
  }
  EXPECT_EQ(events.front().at, 0);
  EXPECT_EQ(events.back().at, 250);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(EventWheel, SameInstantPriorityIsTypeKeySeq) {
  EventWheel wheel(16);
  wheel.reset();
  // Posted deliberately out of drain order.
  wheel.post(make_event(5, EventType::Start, 2));
  wheel.post(make_event(5, EventType::Exhaustion, 9));
  wheel.post(make_event(5, EventType::DeviceFailure, 4));
  wheel.post(make_event(5, EventType::Completion, 7));
  wheel.post(make_event(5, EventType::DeviceFailure, 1));
  wheel.post(make_event(5, EventType::DeviceFailure, 1));  // tie -> posting order

  const std::vector<Event> events = drain(wheel, 10);
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(events[0].type, EventType::Completion);
  EXPECT_EQ(events[1].type, EventType::DeviceFailure);
  EXPECT_EQ(events[1].key, 1);
  EXPECT_EQ(events[2].type, EventType::DeviceFailure);
  EXPECT_EQ(events[2].key, 1);
  EXPECT_LT(events[1].seq, events[2].seq);
  EXPECT_EQ(events[3].type, EventType::DeviceFailure);
  EXPECT_EQ(events[3].key, 4);
  EXPECT_EQ(events[4].type, EventType::Exhaustion);
  EXPECT_EQ(events[5].type, EventType::Start);
}

TEST(EventWheel, HorizonGatesDelivery) {
  EventWheel wheel(8);
  wheel.reset();
  wheel.post(make_event(2));
  wheel.post(make_event(7));
  wheel.post(make_event(30));

  EXPECT_EQ(drain(wheel, 7).size(), 2u);
  EXPECT_EQ(wheel.pending(), 1u);
  // Events may be posted at or after the current clock while others wait.
  wheel.post(make_event(8));
  const std::vector<Event> rest = drain(wheel, 40);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].at, 8);
  EXPECT_EQ(rest[1].at, 30);
}

TEST(EventWheel, CascadesFromCoarseAndOverflow) {
  EventWheel wheel(4);  // fine window 4, coarse span 16: tiny on purpose
  wheel.reset();
  wheel.post(make_event(1));    // fine
  wheel.post(make_event(9));    // coarse
  wheel.post(make_event(14));   // coarse
  wheel.post(make_event(77));   // overflow
  wheel.post(make_event(300));  // overflow

  const std::vector<Event> events = drain(wheel, 1'000);
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].at, 1);
  EXPECT_EQ(events[1].at, 9);
  EXPECT_EQ(events[2].at, 14);
  EXPECT_EQ(events[3].at, 77);
  EXPECT_EQ(events[4].at, 300);
  EXPECT_GE(wheel.stats().cascaded, 4u);
  EXPECT_EQ(wheel.stats().overflowed, 2u);
}

TEST(EventWheel, MatchesSortedOrderOnRandomWorkload) {
  EventWheel wheel(32);
  Rng rng{123};
  for (int round = 0; round < 5; ++round) {
    wheel.reset();
    std::vector<Event> posted;
    for (int i = 0; i < 500; ++i) {
      Event e = make_event(rng.uniform_int(0, 4'000),
                           static_cast<EventType>(rng.uniform_int(0, 3)),
                           static_cast<std::int32_t>(rng.uniform_int(0, 9)), i);
      wheel.post(e);
      e.seq = static_cast<std::uint32_t>(i);
      posted.push_back(e);
    }
    std::stable_sort(posted.begin(), posted.end(), [](const Event& a, const Event& b) {
      if (a.at != b.at) {
        return a.at < b.at;
      }
      if (a.type != b.type) {
        return a.type < b.type;
      }
      if (a.key != b.key) {
        return a.key < b.key;
      }
      return a.seq < b.seq;
    });
    const std::vector<Event> drained = drain(wheel, 10'000);
    ASSERT_EQ(drained.size(), posted.size());
    for (std::size_t i = 0; i < posted.size(); ++i) {
      EXPECT_EQ(drained[i].at, posted[i].at) << i;
      EXPECT_EQ(drained[i].type, posted[i].type) << i;
      EXPECT_EQ(drained[i].key, posted[i].key) << i;
      EXPECT_EQ(drained[i].payload, posted[i].payload) << i;
    }
  }
}

TEST(EventWheel, ResetReplaysWithoutStalePendingAndKeepsStats) {
  EventWheel wheel(8);
  wheel.reset();
  wheel.post(make_event(3));
  wheel.post(make_event(900));
  EXPECT_EQ(drain(wheel, 5).size(), 1u);
  EXPECT_EQ(wheel.pending(), 1u);

  wheel.reset();
  EXPECT_EQ(wheel.pending(), 0u);
  EXPECT_EQ(wheel.now(), 0);
  wheel.post(make_event(2, EventType::Completion));
  const std::vector<Event> events = drain(wheel, 10);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].at, 2);

  EXPECT_EQ(wheel.stats().posted, 3u);  // stats accumulate across resets
  wheel.clear_stats();
  EXPECT_EQ(wheel.stats().posted, 0u);
}

TEST(EventWheel, PostAtCurrentInstantIsDelivered) {
  EventWheel wheel(8);
  wheel.reset();
  wheel.post(make_event(4));
  const std::optional<Event> first = wheel.next(100);
  ASSERT_TRUE(first.has_value());
  // The clock sits just past 4 now; a post at now() must still drain.
  wheel.post(make_event(wheel.now(), EventType::Completion));
  const std::optional<Event> second = wheel.next(100);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->at, wheel.now() - 1);
  EXPECT_THROW(wheel.post(make_event(0)), PreconditionError);
}

TEST(EventWheel, StatsMergeSumsAndPeaks) {
  EventWheel::Stats a;
  a.posted = 10;
  a.popped = 8;
  a.cascaded = 2;
  a.overflowed = 1;
  a.peak_pending = 5;
  EventWheel::Stats b;
  b.posted = 3;
  b.popped = 3;
  b.peak_pending = 9;
  a.merge(b);
  EXPECT_EQ(a.posted, 13u);
  EXPECT_EQ(a.popped, 11u);
  EXPECT_EQ(a.cascaded, 2u);
  EXPECT_EQ(a.overflowed, 1u);
  EXPECT_EQ(a.peak_pending, 9u);
}

}  // namespace
}  // namespace cohls::sim
