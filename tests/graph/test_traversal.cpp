#include "graph/traversal.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"

namespace cohls::graph {
namespace {

Digraph diamond() {
  // 0 -> 1 -> 3, 0 -> 2 -> 3
  Digraph g{4};
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  return g;
}

TEST(Traversal, TopologicalSortRespectsEdges) {
  const Digraph g = diamond();
  const auto order = topological_sort(g);
  ASSERT_TRUE(order.has_value());
  std::vector<std::size_t> position(g.node_count());
  for (std::size_t i = 0; i < order->size(); ++i) {
    position[(*order)[i]] = i;
  }
  for (NodeIndex n = 0; n < g.node_count(); ++n) {
    for (const NodeIndex s : g.successors(n)) {
      EXPECT_LT(position[n], position[s]);
    }
  }
}

TEST(Traversal, TopologicalSortDetectsCycle) {
  Digraph g{3};
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_FALSE(topological_sort(g).has_value());
  EXPECT_TRUE(has_cycle(g));
}

TEST(Traversal, AcyclicGraphHasNoCycle) {
  EXPECT_FALSE(has_cycle(diamond()));
}

TEST(Traversal, SelfLoopIsACycle) {
  Digraph g{1};
  g.add_edge(0, 0);
  EXPECT_TRUE(has_cycle(g));
}

TEST(Traversal, DescendantsExcludeStart) {
  const Digraph g = diamond();
  const auto d = descendants(g, 0);
  EXPECT_EQ(d, (std::vector<NodeIndex>{1, 2, 3}));
  EXPECT_TRUE(descendants(g, 3).empty());
}

TEST(Traversal, AncestorsExcludeStart) {
  const Digraph g = diamond();
  const auto a = ancestors(g, 3);
  EXPECT_EQ(a, (std::vector<NodeIndex>{0, 1, 2}));
  EXPECT_TRUE(ancestors(g, 0).empty());
}

TEST(Traversal, MasksMatchLists) {
  const Digraph g = diamond();
  const auto mask = descendant_mask(g, 0);
  const auto list = descendants(g, 0);
  for (NodeIndex n = 0; n < g.node_count(); ++n) {
    const bool in_list = std::find(list.begin(), list.end(), n) != list.end();
    EXPECT_EQ(mask[n], in_list);
  }
}

TEST(Traversal, StartNodeIsNotItsOwnDescendantInDag) {
  const Digraph g = diamond();
  EXPECT_FALSE(descendant_mask(g, 0)[0]);
  EXPECT_FALSE(ancestor_mask(g, 3)[3]);
}

// Property: on random DAGs (edges only forward in a random permutation),
// ancestors/descendants are mutually consistent and the topo sort exists.
class RandomDagProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomDagProperty, AncestorDescendantDuality) {
  Rng rng{static_cast<std::uint64_t>(GetParam())};
  const std::size_t n = 3 + static_cast<std::size_t>(rng.uniform_int(0, 17));
  Digraph g{n};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.bernoulli(0.25)) {
        g.add_edge(i, j);
      }
    }
  }
  ASSERT_TRUE(topological_sort(g).has_value());
  for (NodeIndex a = 0; a < n; ++a) {
    const auto desc = descendant_mask(g, a);
    for (NodeIndex b = 0; b < n; ++b) {
      if (desc[b]) {
        EXPECT_TRUE(ancestor_mask(g, b)[a])
            << a << " reaches " << b << " but is not its ancestor";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagProperty, ::testing::Range(0, 12));

}  // namespace
}  // namespace cohls::graph
