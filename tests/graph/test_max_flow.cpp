#include "graph/max_flow.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.hpp"

namespace cohls::graph {
namespace {

TEST(MaxFlow, SingleArc) {
  FlowNetwork net{2};
  net.add_arc(0, 1, 5);
  const auto cut = net.min_cut(0, 1);
  EXPECT_EQ(cut.value, 5);
  EXPECT_TRUE(cut.source_side[0]);
  EXPECT_FALSE(cut.source_side[1]);
  ASSERT_EQ(cut.cut_arcs.size(), 1u);
}

TEST(MaxFlow, NoPathMeansZeroFlow) {
  FlowNetwork net{3};
  net.add_arc(0, 1, 4);  // 2 is unreachable
  const auto cut = net.min_cut(0, 2);
  EXPECT_EQ(cut.value, 0);
  EXPECT_TRUE(cut.cut_arcs.empty());
}

TEST(MaxFlow, SeriesTakesBottleneck) {
  FlowNetwork net{3};
  net.add_arc(0, 1, 7);
  net.add_arc(1, 2, 3);
  EXPECT_EQ(net.min_cut(0, 2).value, 3);
}

TEST(MaxFlow, ParallelPathsAdd) {
  FlowNetwork net{4};
  net.add_arc(0, 1, 2);
  net.add_arc(1, 3, 2);
  net.add_arc(0, 2, 3);
  net.add_arc(2, 3, 3);
  EXPECT_EQ(net.min_cut(0, 3).value, 5);
}

TEST(MaxFlow, ClassicCrossNetwork) {
  // CLRS-style example with a cross edge.
  FlowNetwork net{6};
  net.add_arc(0, 1, 16);
  net.add_arc(0, 2, 13);
  net.add_arc(1, 2, 10);
  net.add_arc(2, 1, 4);
  net.add_arc(1, 3, 12);
  net.add_arc(3, 2, 9);
  net.add_arc(2, 4, 14);
  net.add_arc(4, 3, 7);
  net.add_arc(3, 5, 20);
  net.add_arc(4, 5, 4);
  EXPECT_EQ(net.min_cut(0, 5).value, 23);
}

TEST(MaxFlow, CutArcsCapacitySumsToFlowValue) {
  FlowNetwork net{6};
  net.add_arc(0, 1, 16);
  net.add_arc(0, 2, 13);
  net.add_arc(1, 3, 12);
  net.add_arc(2, 4, 14);
  net.add_arc(3, 2, 9);
  net.add_arc(4, 3, 7);
  net.add_arc(3, 5, 20);
  net.add_arc(4, 5, 4);
  const auto cut = net.min_cut(0, 5);
  std::int64_t cut_capacity = 0;
  for (const auto handle : cut.cut_arcs) {
    cut_capacity += net.arc(handle).capacity;
  }
  EXPECT_EQ(cut_capacity, cut.value);
}

TEST(MaxFlow, InfiniteArcsNeverEnterTheCut) {
  FlowNetwork net{4};
  net.add_arc(0, 1, FlowNetwork::kInfinite);
  net.add_arc(1, 2, 1);
  net.add_arc(2, 3, FlowNetwork::kInfinite);
  const auto cut = net.min_cut(0, 3);
  EXPECT_EQ(cut.value, 1);
  ASSERT_EQ(cut.cut_arcs.size(), 1u);
  const auto info = net.arc(cut.cut_arcs[0]);
  EXPECT_EQ(info.from, 1u);
  EXPECT_EQ(info.to, 2u);
}

TEST(MaxFlow, ArcInfoReportsFlow) {
  FlowNetwork net{2};
  const auto h = net.add_arc(0, 1, 9);
  (void)net.min_cut(0, 1);
  const auto info = net.arc(h);
  EXPECT_EQ(info.flow, 9);
  EXPECT_EQ(info.capacity, 9);
}

TEST(MaxFlow, RejectsBadArcs) {
  FlowNetwork net{2};
  EXPECT_THROW(net.add_arc(0, 0, 1), PreconditionError);
  EXPECT_THROW(net.add_arc(0, 5, 1), PreconditionError);
  EXPECT_THROW(net.add_arc(0, 1, -1), PreconditionError);
  EXPECT_THROW(net.min_cut(0, 0), PreconditionError);
}

// Property: flow conservation holds at every interior node, and the cut's
// crossing capacity equals the flow value (max-flow min-cut theorem), on
// random networks.
class RandomFlowProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomFlowProperty, ConservationAndDuality) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 7919 + 13};
  const std::size_t n = 4 + static_cast<std::size_t>(rng.uniform_int(0, 8));
  FlowNetwork net{n};
  std::vector<FlowNetwork::ArcInfo> infos;
  std::vector<std::size_t> handles;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && rng.bernoulli(0.3)) {
        handles.push_back(net.add_arc(i, j, rng.uniform_int(0, 10)));
      }
    }
  }
  const std::size_t source = 0;
  const std::size_t sink = n - 1;
  const auto cut = net.min_cut(source, sink);

  std::vector<std::int64_t> net_out(n, 0);
  std::int64_t cut_capacity = 0;
  for (const auto h : handles) {
    const auto info = net.arc(h);
    EXPECT_GE(info.flow, 0);
    EXPECT_LE(info.flow, info.capacity);
    net_out[info.from] += info.flow;
    net_out[info.to] -= info.flow;
    if (cut.source_side[info.from] && !cut.source_side[info.to]) {
      cut_capacity += info.capacity;
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (v == source || v == sink) {
      continue;
    }
    EXPECT_EQ(net_out[v], 0) << "conservation violated at " << v;
  }
  EXPECT_EQ(net_out[source], cut.value);
  EXPECT_EQ(cut_capacity, cut.value) << "max-flow != min-cut";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFlowProperty, ::testing::Range(0, 20));

}  // namespace
}  // namespace cohls::graph
