#include "graph/digraph.hpp"

#include <gtest/gtest.h>

namespace cohls::graph {
namespace {

TEST(Digraph, StartsEmpty) {
  Digraph g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Digraph, PreSizedConstruction) {
  Digraph g{5};
  EXPECT_EQ(g.node_count(), 5u);
}

TEST(Digraph, AddNodeReturnsSequentialIndices) {
  Digraph g;
  EXPECT_EQ(g.add_node(), 0u);
  EXPECT_EQ(g.add_node(), 1u);
  EXPECT_EQ(g.add_node(), 2u);
}

TEST(Digraph, EdgesUpdateBothAdjacencyLists) {
  Digraph g{3};
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  EXPECT_EQ(g.successors(0).size(), 2u);
  EXPECT_EQ(g.predecessors(1).size(), 1u);
  EXPECT_EQ(g.predecessors(2).size(), 1u);
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(Digraph, HasEdge) {
  Digraph g{3};
  g.add_edge(1, 2);
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(2, 1));
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(Digraph, ParallelEdgesAllowed) {
  Digraph g{2};
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.successors(0).size(), 2u);
}

TEST(Digraph, RejectsOutOfRangeEndpoints) {
  Digraph g{2};
  EXPECT_THROW(g.add_edge(0, 2), PreconditionError);
  EXPECT_THROW(g.add_edge(5, 0), PreconditionError);
  EXPECT_THROW((void)g.successors(2), PreconditionError);
}

}  // namespace
}  // namespace cohls::graph
