#include "chip/resources.hpp"

#include <gtest/gtest.h>

#include "assays/benchmarks.hpp"
#include "baseline/conventional.hpp"
#include "core/progressive_resynthesis.hpp"

namespace cohls::chip {
namespace {

using model::BuiltinAccessory;
using model::Capacity;
using model::ContainerKind;

schedule::SynthesisResult single_device_result(const model::DeviceConfig& config,
                                               model::Assay& assay) {
  model::OperationSpec spec;
  spec.name = "op";
  spec.duration = 10_min;
  spec.container = config.container;
  spec.capacity = config.capacity;
  spec.accessories = config.accessories;
  const auto op = assay.add_operation(spec);
  schedule::SynthesisResult result;
  result.devices = model::DeviceInventory(2);
  const auto d = result.devices.instantiate(config, LayerId{0});
  result.layers.push_back({LayerId{0}, {{op, d, 0_min, 10_min, 0_min}}});
  return result;
}

TEST(ChipResources, BareChamberCostsTwoValves) {
  model::Assay assay{"t"};
  const auto result =
      single_device_result({ContainerKind::Chamber, Capacity::Tiny, {}}, assay);
  const ChipResources budget = estimate_resources(result, assay);
  EXPECT_EQ(budget.flow_valves, 2);
  EXPECT_EQ(budget.channels, 0);
  EXPECT_EQ(budget.control_ports_direct, 2);
}

TEST(ChipResources, RotaryMixerMatchesTheClassicBudget) {
  // Ring (3) + peristaltic pump (3) = 6 flow valves [8].
  model::Assay assay{"t"};
  const auto result = single_device_result(
      {ContainerKind::Ring, Capacity::Small, {BuiltinAccessory::kPump}}, assay);
  EXPECT_EQ(estimate_resources(result, assay).flow_valves, 6);
}

TEST(ChipResources, HeaterAndOpticsAreControlPortsNotValves) {
  model::Assay assay{"t"};
  const auto result = single_device_result(
      {ContainerKind::Chamber, Capacity::Small,
       {BuiltinAccessory::kHeatingPad, BuiltinAccessory::kOpticalSystem}},
      assay);
  const ChipResources budget = estimate_resources(result, assay);
  EXPECT_EQ(budget.flow_valves, 2);
  EXPECT_EQ(budget.control_ports_direct, 4);  // 2 valves + heater + optics
}

TEST(ChipResources, PathsAddChannelGateValves) {
  model::Assay assay{"t"};
  model::OperationSpec spec;
  spec.name = "a";
  spec.duration = 10_min;
  const auto a = assay.add_operation(spec);
  spec.name = "b";
  spec.parents = {a};
  const auto b = assay.add_operation(spec);
  schedule::SynthesisResult result;
  result.devices = model::DeviceInventory(2);
  const model::DeviceConfig cfg{ContainerKind::Chamber, Capacity::Tiny, {}};
  const auto d0 = result.devices.instantiate(cfg, LayerId{0});
  const auto d1 = result.devices.instantiate(cfg, LayerId{0});
  result.layers.push_back({LayerId{0},
                           {{a, d0, 0_min, 10_min, 0_min},
                            {b, d1, 12_min, 10_min, 0_min}}});
  const ChipResources budget = estimate_resources(result, assay);
  EXPECT_EQ(budget.channels, 1);
  EXPECT_EQ(budget.flow_valves, 2 + 2 + 2);  // two chambers + one gated channel
}

TEST(ChipResources, MultiplexerBeatsDirectDriveOnRealChips) {
  const model::Assay assay = assays::gene_expression_assay();
  core::SynthesisOptions options;
  options.max_devices = 25;
  const auto report = core::synthesize(assay, options);
  const ChipResources budget = estimate_resources(report.result, assay);
  EXPECT_GT(budget.flow_valves, 0);
  EXPECT_LT(budget.control_ports_multiplexed, budget.control_ports_direct);
}

TEST(ChipResources, ComponentOrientedNeedsNoMoreValvesThanConventional) {
  const model::Assay assay = assays::kinase_activity_assay();
  core::SynthesisOptions options;
  options.max_devices = 25;
  const auto ours = core::synthesize(assay, options);
  const auto conv = baseline::synthesize_conventional(assay, options);
  EXPECT_LE(estimate_resources(ours.result, assay).flow_valves,
            estimate_resources(conv.result, assay).flow_valves);
}

TEST(ChipResources, CustomAccessoriesCountConfiguredValves) {
  model::AccessoryRegistry registry;
  const auto sorter = registry.register_accessory("droplet sorter", 3.0);
  model::Assay assay("t", registry);
  model::OperationSpec spec;
  spec.name = "sort";
  spec.duration = 10_min;
  spec.accessories = {sorter};
  const auto op = assay.add_operation(spec);
  schedule::SynthesisResult result;
  result.devices = model::DeviceInventory(1);
  const auto d = result.devices.instantiate(
      {ContainerKind::Chamber, Capacity::Tiny, {sorter}}, LayerId{0});
  result.layers.push_back({LayerId{0}, {{op, d, 0_min, 10_min, 0_min}}});
  ValveModel valves;
  valves.valves_per_custom_accessory = 4;
  EXPECT_EQ(estimate_resources(result, assay, valves).flow_valves, 2 + 4);
}

}  // namespace
}  // namespace cohls::chip
