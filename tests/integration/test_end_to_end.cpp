// Whole-flow integration tests: layering + scheduling + binding +
// re-synthesis on the paper's benchmark assays, checked against the
// independent validators.
#include <gtest/gtest.h>

#include "assays/benchmarks.hpp"
#include "baseline/conventional.hpp"
#include "core/progressive_resynthesis.hpp"
#include "schedule/validate.hpp"

namespace cohls {
namespace {

core::SynthesisOptions paper_options() {
  core::SynthesisOptions options;
  options.max_devices = 25;
  options.layering.indeterminate_threshold = 10;
  return options;
}

class BenchmarkCase : public ::testing::TestWithParam<int> {
 protected:
  static model::Assay assay_for(int which) {
    switch (which) {
      case 1: return assays::kinase_activity_assay();
      case 2: return assays::gene_expression_assay();
      default: return assays::rt_qpcr_assay();
    }
  }
};

TEST_P(BenchmarkCase, ComponentOrientedFlowValidates) {
  const model::Assay assay = assay_for(GetParam());
  const auto report = core::synthesize(assay, paper_options());
  const auto violations =
      schedule::validate_result(report.result, assay, report.transport);
  EXPECT_TRUE(violations.empty()) << violations.front();
  const auto layering = core::validate_layering(report.plan, assay, 10);
  EXPECT_TRUE(layering.empty()) << layering.front();
}

TEST_P(BenchmarkCase, ConventionalFlowValidates) {
  const model::Assay assay = assay_for(GetParam());
  const auto report = baseline::synthesize_conventional(assay, paper_options());
  const auto violations =
      schedule::validate_result(report.result, assay, report.transport);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST_P(BenchmarkCase, EveryOperationBoundOnce) {
  const model::Assay assay = assay_for(GetParam());
  const auto report = core::synthesize(assay, paper_options());
  const auto binding = report.result.binding();
  EXPECT_EQ(static_cast<int>(binding.size()), assay.operation_count());
}

TEST_P(BenchmarkCase, DeviceBudgetRespected) {
  const model::Assay assay = assay_for(GetParam());
  const auto report = core::synthesize(assay, paper_options());
  EXPECT_LE(report.result.devices.size(), 25);
  EXPECT_LE(report.result.used_device_count(), report.result.devices.size());
}

TEST_P(BenchmarkCase, SymbolCountMatchesIndeterminateLayers) {
  const model::Assay assay = assay_for(GetParam());
  const auto report = core::synthesize(assay, paper_options());
  int layers_with_indeterminate = 0;
  for (const auto& layer : report.result.layers) {
    if (layer.has_indeterminate(assay)) {
      ++layers_with_indeterminate;
    }
  }
  EXPECT_EQ(static_cast<int>(report.result.total_time(assay).symbols().size()),
            layers_with_indeterminate);
}

INSTANTIATE_TEST_SUITE_P(Cases, BenchmarkCase, ::testing::Values(1, 2, 3));

TEST(EndToEnd, TightInventoryStillSynthesizesCase1) {
  const model::Assay assay = assays::kinase_activity_assay();
  core::SynthesisOptions options;
  options.max_devices = 3;  // the paper's conventional solution used 3
  const auto report = core::synthesize(assay, options);
  const auto violations =
      schedule::validate_result(report.result, assay, report.transport);
  EXPECT_TRUE(violations.empty()) << violations.front();
  EXPECT_LE(report.result.used_device_count(), 3);
}

TEST(EndToEnd, ImpossibleInventoryRaisesTypedError) {
  // Case 2 needs 10 parallel capture rings in layer 1; 4 devices cannot do.
  const model::Assay assay = assays::gene_expression_assay();
  core::SynthesisOptions options;
  options.max_devices = 4;
  options.layering.indeterminate_threshold = 10;
  EXPECT_THROW((void)core::synthesize(assay, options), InfeasibleError);
}

TEST(EndToEnd, LoweringThresholdRestoresFeasibilityOnSmallChips) {
  const model::Assay assay = assays::gene_expression_assay();
  core::SynthesisOptions options;
  options.max_devices = 6;
  options.layering.indeterminate_threshold = 2;  // 2 captures at a time
  const auto report = core::synthesize(assay, options);
  const auto violations =
      schedule::validate_result(report.result, assay, report.transport);
  EXPECT_TRUE(violations.empty()) << violations.front();
  EXPECT_LE(report.result.used_device_count(), 6);
}

}  // namespace
}  // namespace cohls
