// Randomized fault sweep: for every shipped benchmark protocol (at small
// replication), kill each device at each layer boundary under several seeds
// and demand that every broken run either recovers to a certified
// continuation or fails with structured COHLS-E3xx diagnostics — never an
// uncertified schedule, never a silent wrong answer. The sweep is
// deterministic per seed, so any failure here is reproducible.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "assays/benchmarks.hpp"
#include "core/progressive_resynthesis.hpp"
#include "core/recovery.hpp"
#include "sim/faults.hpp"
#include "sim/runtime.hpp"
#include "util/rng.hpp"

namespace cohls {
namespace {

struct Protocol {
  std::string name;
  model::Assay assay;
};

std::vector<Protocol> protocols() {
  std::vector<Protocol> list;
  list.push_back({"kinase-activity", assays::kinase_activity_assay(2)});
  list.push_back({"gene-expression", assays::gene_expression_assay(3)});
  list.push_back({"rt-qpcr", assays::rt_qpcr_assay(3)});
  return list;
}

core::SynthesisOptions sweep_options() {
  core::SynthesisOptions options;
  options.max_devices = 12;
  options.layering.indeterminate_threshold = 3;
  return options;
}

bool all_e3xx(const std::vector<diag::Diagnostic>& diagnostics) {
  for (const diag::Diagnostic& d : diagnostics) {
    if (d.code.rfind("COHLS-E3", 0) != 0) {
      return false;
    }
  }
  return !diagnostics.empty();
}

/// One sweep cell: replay the schedule with `victim` failing at `when`
/// under `seed`; if the run breaks, recover and enforce the acceptance
/// criterion (certified continuation, or structured E3xx evidence).
/// Returns whether the run broke, so callers can count coverage.
bool sweep_cell(const Protocol& protocol, const core::SynthesisReport& report,
                const core::SynthesisOptions& options, DeviceId victim,
                Minutes when, std::uint64_t seed) {
  sim::RuntimeOptions runtime;
  runtime.seed = seed;
  runtime.faults.events.push_back(
      sim::FaultEvent{sim::FaultKind::DeviceFailure, victim, OperationId{}, when});
  const sim::RunTrace trace =
      sim::simulate_run(report.result, protocol.assay, runtime);
  if (trace.ok()) {
    return false;
  }

  const core::RecoveryOutcome outcome =
      core::recover(protocol.assay, report.result, trace, options);
  if (outcome.recovered) {
    EXPECT_TRUE(outcome.diagnostics.empty())
        << protocol.name << ": recovered continuation still carries "
        << outcome.diagnostics.front().code;
  } else {
    EXPECT_TRUE(all_e3xx(outcome.diagnostics))
        << protocol.name << ": unrecovered fault (device "
        << victim.value() << " at " << when << ", seed " << seed
        << ") lacks structured E3xx evidence";
  }
  return true;
}

TEST(FaultSweep, EveryDeviceAtEveryLayerBoundaryRecoversOrReportsE3xx) {
  const core::SynthesisOptions options = sweep_options();
  int broken = 0;
  for (const Protocol& protocol : protocols()) {
    const core::SynthesisReport report = core::synthesize(protocol.assay, options);
    ASSERT_FALSE(report.result.layers.empty()) << protocol.name;

    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      // Layer boundaries are seed-dependent (indeterminate retries stretch
      // layers), so read them off this seed's healthy replay.
      sim::RuntimeOptions healthy;
      healthy.seed = seed;
      const sim::RunTrace base =
          sim::simulate_run(report.result, protocol.assay, healthy);
      ASSERT_TRUE(base.ok()) << protocol.name << " seed " << seed;
      std::set<Minutes> boundaries;
      for (const sim::LayerTrace& layer : base.layers) {
        boundaries.insert(layer.start);
      }

      for (const model::Device& device : report.result.devices.devices()) {
        for (const Minutes when : boundaries) {
          if (sweep_cell(protocol, report, options, device.id, when, seed)) {
            ++broken;
          }
        }
      }
    }
  }
  // The sweep must actually exercise the recovery path: a boundary failure
  // of a busy device breaks the run in the vast majority of cells.
  EXPECT_GT(broken, 10);
}

TEST(FaultSweep, SweepIsDeterministicPerSeed) {
  const core::SynthesisOptions options = sweep_options();
  const Protocol protocol{"gene-expression", assays::gene_expression_assay(3)};
  const core::SynthesisReport report = core::synthesize(protocol.assay, options);
  const DeviceId victim = report.result.layers.front().items.front().device;

  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    sim::RuntimeOptions runtime;
    runtime.seed = seed;
    runtime.faults.events.push_back(
        sim::FaultEvent{sim::FaultKind::DeviceFailure, victim, OperationId{}, 0_min});
    const sim::RunTrace a = sim::simulate_run(report.result, protocol.assay, runtime);
    const sim::RunTrace b = sim::simulate_run(report.result, protocol.assay, runtime);
    ASSERT_EQ(a.outcome, b.outcome) << "seed " << seed;
    ASSERT_FALSE(a.ok());
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.lost, b.lost);

    const core::RecoveryOutcome ra = core::recover(protocol.assay, report.result, a, options);
    const core::RecoveryOutcome rb = core::recover(protocol.assay, report.result, b, options);
    ASSERT_EQ(ra.recovered, rb.recovered) << "seed " << seed;
    ASSERT_EQ(ra.diagnostics.size(), rb.diagnostics.size());
    for (std::size_t i = 0; i < ra.diagnostics.size(); ++i) {
      EXPECT_EQ(ra.diagnostics[i].code, rb.diagnostics[i].code);
    }
    if (ra.recovered) {
      ASSERT_EQ(ra.continuation.result.layers.size(),
                rb.continuation.result.layers.size());
      for (std::size_t li = 0; li < ra.continuation.result.layers.size(); ++li) {
        const auto& la = ra.continuation.result.layers[li].items;
        const auto& lb = rb.continuation.result.layers[li].items;
        ASSERT_EQ(la.size(), lb.size());
        for (std::size_t k = 0; k < la.size(); ++k) {
          EXPECT_EQ(la[k].op, lb[k].op);
          EXPECT_EQ(la[k].device, lb[k].device);
          EXPECT_EQ(la[k].start, lb[k].start);
        }
      }
    }
  }
}

TEST(FaultSweep, ExhaustionAtEachIndeterminateOpRecoversOrReportsE3xx) {
  // The other break class: a scripted attempt exhaustion at every
  // indeterminate operation of the gene-expression protocol.
  const core::SynthesisOptions options = sweep_options();
  const Protocol protocol{"gene-expression", assays::gene_expression_assay(3)};
  const core::SynthesisReport report = core::synthesize(protocol.assay, options);

  for (const OperationId op : protocol.assay.indeterminate_operations()) {
    sim::RuntimeOptions runtime;
    runtime.attempt_success_probability = 1.0;  // only the script fails
    sim::FaultEvent exhaust;
    exhaust.kind = sim::FaultKind::AttemptExhaustion;
    exhaust.op = op;
    runtime.faults.events.push_back(exhaust);
    const sim::RunTrace trace =
        sim::simulate_run(report.result, protocol.assay, runtime);
    ASSERT_EQ(trace.outcome, sim::RunOutcome::AttemptsExhausted);

    const core::RecoveryOutcome outcome =
        core::recover(protocol.assay, report.result, trace, options);
    if (!outcome.recovered) {
      EXPECT_TRUE(all_e3xx(outcome.diagnostics)) << "op " << op.value();
    }
  }
}

TEST(FaultSweep, RandomMultiFaultMissionsRecoverOrReportE3xx) {
  // The multi-fault analogue of the single-fault sweeps above: for every
  // shipped protocol, draw seeded random sequences of 2-4 device failures
  // across the healthy makespan and drive them through the re-entrant
  // mission loop. The acceptance criterion is the mission contract: every
  // round along the way certified and the stitched replay completed, or a
  // frozen run with structured COHLS-E3xx evidence — never a crash, never
  // an uncertified continuation.
  const core::SynthesisOptions options = sweep_options();
  core::MissionOptions mission;
  mission.synthesis = options;
  mission.max_rounds = 4;

  int recovered_multi = 0;
  int frozen = 0;
  for (const Protocol& protocol : protocols()) {
    const core::SynthesisReport report = core::synthesize(protocol.assay, options);
    const std::vector<model::Device>& devices = report.result.devices.devices();
    ASSERT_FALSE(devices.empty()) << protocol.name;

    sim::RuntimeOptions healthy;
    const sim::RunTrace base = sim::simulate_run(report.result, protocol.assay, healthy);
    ASSERT_TRUE(base.ok()) << protocol.name;
    const std::int64_t makespan = base.completed_at.count();

    for (const std::uint64_t seed : {11u, 12u, 13u, 14u, 15u, 16u}) {
      Rng rng(derive_stream_seed(seed, 0x4D554C5449ULL, 0));  // "MULTI"
      sim::RuntimeOptions runtime;
      runtime.seed = seed;
      const int faults = static_cast<int>(rng.uniform_int(2, 4));
      for (int k = 0; k < faults; ++k) {
        const DeviceId victim =
            devices[static_cast<std::size_t>(rng.uniform_int(
                        0, static_cast<std::int64_t>(devices.size()) - 1))]
                .id;
        const Minutes when{rng.uniform_int(1, std::max<std::int64_t>(makespan, 2))};
        runtime.faults.events.push_back(sim::FaultEvent{sim::FaultKind::DeviceFailure,
                                                        victim, OperationId{}, when});
      }

      const core::MissionOutcome out =
          core::run_mission(protocol.assay, report.result, runtime, mission);
      if (out.recovered) {
        EXPECT_TRUE(out.diagnostics.empty())
            << protocol.name << " seed " << seed << ": recovered mission still "
            << "carries " << out.diagnostics.front().code;
        EXPECT_EQ(out.final_trace.outcome, sim::RunOutcome::Completed);
        for (const core::MissionRound& round : out.round_log) {
          EXPECT_TRUE(round.recovered) << protocol.name << " seed " << seed;
        }
        recovered_multi += out.rounds >= 2 ? 1 : 0;
      } else {
        EXPECT_TRUE(all_e3xx(out.diagnostics))
            << protocol.name << ": frozen mission (seed " << seed
            << ") lacks structured E3xx evidence";
        ++frozen;
      }
      // The composite outcome is deterministic in its inputs.
      const core::MissionOutcome again =
          core::run_mission(protocol.assay, report.result, runtime, mission);
      EXPECT_EQ(again.recovered, out.recovered) << protocol.name << " seed " << seed;
      EXPECT_EQ(again.rounds, out.rounds);
      EXPECT_EQ(again.credit_carried, out.credit_carried);
      EXPECT_EQ(again.fault_chain.size(), out.fault_chain.size());
    }
  }
  // The fuzz must exercise both arms: some chains survive multiple rounds,
  // some freeze with evidence.
  EXPECT_GT(recovered_multi + frozen, 0);
}

}  // namespace
}  // namespace cohls
