// Regression tests pinning the *shape* of the paper's evaluation: who wins,
// in which metric, and roughly how the re-synthesis trace behaves. Absolute
// numbers are ours (reconstructed DAGs + simulated solver), but these
// relations are what Table 2 / Table 3 claim.
#include <gtest/gtest.h>

#include "assays/benchmarks.hpp"
#include "baseline/conventional.hpp"
#include "core/progressive_resynthesis.hpp"

namespace cohls {
namespace {

core::SynthesisOptions paper_options() {
  core::SynthesisOptions options;
  options.max_devices = 25;
  options.layering.indeterminate_threshold = 10;
  return options;
}

struct CaseResult {
  SymbolicDuration time;
  int devices;
  int paths;
};

CaseResult run_ours(const model::Assay& assay) {
  const auto report = core::synthesize(assay, paper_options());
  return {report.result.total_time(assay), report.result.used_device_count(),
          report.result.path_count(assay)};
}

CaseResult run_conv(const model::Assay& assay) {
  const auto report = baseline::synthesize_conventional(assay, paper_options());
  return {report.result.total_time(assay), report.result.used_device_count(),
          report.result.path_count(assay)};
}

TEST(Table2Shape, Case1OursWinsTimeDevicesAndPaths) {
  const model::Assay assay = assays::kinase_activity_assay();
  const CaseResult ours = run_ours(assay);
  const CaseResult conv = run_conv(assay);
  EXPECT_LE(ours.time.fixed(), conv.time.fixed());
  EXPECT_LT(ours.devices, conv.devices);
  EXPECT_LT(ours.paths, conv.paths);
  EXPECT_TRUE(ours.time.symbols().empty()) << "case 1 has no indeterminate ops";
}

TEST(Table2Shape, Case2OursWinsTimeWithNoMoreDevices) {
  const model::Assay assay = assays::gene_expression_assay();
  const CaseResult ours = run_ours(assay);
  const CaseResult conv = run_conv(assay);
  EXPECT_LT(ours.time.fixed(), conv.time.fixed());
  EXPECT_LE(ours.devices, conv.devices);
  EXPECT_LE(ours.paths, conv.paths);
  EXPECT_EQ(ours.time.symbols(), std::vector<int>{1}) << "one capture layer -> +I1";
}

TEST(Table2Shape, Case3OursReducesTimeWithoutMoreDevices) {
  const model::Assay assay = assays::rt_qpcr_assay();
  const CaseResult ours = run_ours(assay);
  const CaseResult conv = run_conv(assay);
  // The paper: 81.7% of the conventional time at equal device count.
  EXPECT_LT(ours.time.fixed(), conv.time.fixed());
  EXPECT_LE(ours.devices, conv.devices);
  EXPECT_EQ(ours.time.symbols(), (std::vector<int>{1, 2})) << "two capture layers";
}

TEST(Table3Shape, ResynthesisImprovesThenSaturates) {
  core::SynthesisOptions options = paper_options();
  options.resynthesis_improvement_threshold = -1.0;
  options.max_resynthesis_iterations = 2;
  for (const model::Assay& assay :
       {assays::gene_expression_assay(), assays::rt_qpcr_assay()}) {
    const auto report = core::synthesize(assay, options);
    ASSERT_GE(report.iterations.size(), 3u) << assay.name();
    const auto t0 = report.iterations[0].execution_time.fixed();
    const auto t1 = report.iterations[1].execution_time.fixed();
    const auto t2 = report.iterations[2].execution_time.fixed();
    EXPECT_LT(t1, t0) << "first re-synthesis must improve on " << assay.name();
    EXPECT_LE(t2, t1) << "second iteration must not regress the kept best";
    // Devices stay flat, as in Table 3.
    EXPECT_EQ(report.iterations[0].device_count, report.iterations[1].device_count);
  }
}

TEST(Table3Shape, FirstImprovementIsTheBigOne) {
  core::SynthesisOptions options = paper_options();
  options.resynthesis_improvement_threshold = -1.0;
  options.max_resynthesis_iterations = 2;
  const model::Assay assay = assays::rt_qpcr_assay();
  const auto report = core::synthesize(assay, options);
  const double t0 = static_cast<double>(report.iterations[0].execution_time.fixed().count());
  const double t1 = static_cast<double>(report.iterations[1].execution_time.fixed().count());
  const double t2 = static_cast<double>(report.iterations[2].execution_time.fixed().count());
  const double first = (t0 - t1) / t0;
  const double second = (t1 - t2) / std::max(t1, 1.0);
  EXPECT_GT(first, second);
  EXPECT_GT(first, 0.05) << "paper reports double-digit first improvements";
}

}  // namespace
}  // namespace cohls
