#include "lp/presolve.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace cohls::lp {
namespace {

constexpr double kTol = 1e-6;

TEST(Presolve, RemovesFixedColumns) {
  LpModel m;
  const Col fixed = m.add_variable(3.0, 3.0, 1.0);
  const Col free = m.add_variable(0.0, 10.0, 1.0);
  m.add_constraint({{fixed, 2.0}, {free, 1.0}}, RowSense::LessEqual, 10.0);
  const Presolved pre = presolve(m);
  ASSERT_FALSE(pre.infeasible());
  EXPECT_EQ(pre.removed_columns(), 1);
  EXPECT_EQ(pre.model().variable_count(), 1);
  // The substituted row becomes free + 6 <= 10, a singleton, which presolve
  // absorbs into the bound free <= 4 and drops.
  EXPECT_EQ(pre.model().constraint_count(), 0);
  EXPECT_DOUBLE_EQ(pre.model().upper_bound(0), 4.0);
}

TEST(Presolve, DropsEmptyConsistentRows) {
  LpModel m;
  (void)m.add_variable(0.0, 1.0, 0.0);
  m.add_constraint({}, RowSense::LessEqual, 5.0);
  const Presolved pre = presolve(m);
  ASSERT_FALSE(pre.infeasible());
  EXPECT_EQ(pre.model().constraint_count(), 0);
  EXPECT_EQ(pre.removed_rows(), 1);
}

TEST(Presolve, DetectsEmptyInfeasibleRow) {
  LpModel m;
  (void)m.add_variable(0.0, 1.0, 0.0);
  m.add_constraint({}, RowSense::GreaterEqual, 5.0);
  EXPECT_TRUE(presolve(m).infeasible());
}

TEST(Presolve, SingletonRowTightensBounds) {
  LpModel m;
  const Col x = m.add_variable(0.0, 100.0, -1.0);
  m.add_constraint({{x, 2.0}}, RowSense::LessEqual, 10.0);  // x <= 5
  const Presolved pre = presolve(m);
  ASSERT_FALSE(pre.infeasible());
  EXPECT_EQ(pre.model().constraint_count(), 0);
  EXPECT_DOUBLE_EQ(pre.model().upper_bound(0), 5.0);
}

TEST(Presolve, NegativeCoefficientFlipsTheSense) {
  LpModel m;
  const Col x = m.add_variable(-100.0, 100.0, 1.0);
  m.add_constraint({{x, -1.0}}, RowSense::LessEqual, 4.0);  // -x <= 4 -> x >= -4
  const Presolved pre = presolve(m);
  ASSERT_FALSE(pre.infeasible());
  EXPECT_DOUBLE_EQ(pre.model().lower_bound(0), -4.0);
}

TEST(Presolve, SingletonEqualityFixesAndCascades) {
  // x == 4 fixes x; substituting makes the second row a singleton on y,
  // fixing y too; everything presolves away.
  LpModel m;
  const Col x = m.add_variable(0.0, 10.0, 1.0);
  const Col y = m.add_variable(0.0, 10.0, 1.0);
  m.add_constraint({{x, 1.0}}, RowSense::Equal, 4.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, RowSense::Equal, 9.0);
  const Presolved pre = presolve(m);
  ASSERT_FALSE(pre.infeasible());
  EXPECT_EQ(pre.model().variable_count(), 0);
  EXPECT_EQ(pre.model().constraint_count(), 0);
  const auto full = pre.restore({});
  EXPECT_DOUBLE_EQ(full[static_cast<std::size_t>(x)], 4.0);
  EXPECT_DOUBLE_EQ(full[static_cast<std::size_t>(y)], 5.0);
}

TEST(Presolve, DetectsBoundClashFromSingletons) {
  LpModel m;
  const Col x = m.add_variable(0.0, 10.0, 0.0);
  m.add_constraint({{x, 1.0}}, RowSense::GreaterEqual, 7.0);
  m.add_constraint({{x, 1.0}}, RowSense::LessEqual, 3.0);
  EXPECT_TRUE(presolve(m).infeasible());
}

TEST(SolveWithPresolve, MatchesDirectSolveOnFixedHeavyModel) {
  LpModel m;
  const Col a = m.add_variable(2.0, 2.0, 3.0);   // fixed
  const Col b = m.add_variable(0.0, 10.0, -1.0);
  const Col c = m.add_variable(1.0, 1.0, 1.0);   // fixed
  m.add_constraint({{a, 1.0}, {b, 1.0}, {c, 1.0}}, RowSense::LessEqual, 9.0);
  const LpSolution direct = solve_lp(m);
  const LpSolution pre = solve_lp_with_presolve(m);
  ASSERT_EQ(direct.status, LpStatus::Optimal);
  ASSERT_EQ(pre.status, LpStatus::Optimal);
  EXPECT_NEAR(direct.objective, pre.objective, kTol);
  EXPECT_NEAR(pre.values[a], 2.0, kTol);
  EXPECT_NEAR(pre.values[b], 6.0, kTol);
  EXPECT_NEAR(pre.values[c], 1.0, kTol);
}

// Property: presolve + solve agrees with the direct solve on random models.
class PresolveCrossValidation : public ::testing::TestWithParam<int> {};

TEST_P(PresolveCrossValidation, AgreesWithDirectSolve) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 48611 + 5};
  LpModel m;
  const int n = static_cast<int>(rng.uniform_int(1, 6));
  for (int j = 0; j < n; ++j) {
    const double lb = static_cast<double>(rng.uniform_int(-4, 2));
    // Bias towards fixed columns so presolve has work to do.
    const double ub = rng.bernoulli(0.3) ? lb : lb + static_cast<double>(rng.uniform_int(0, 6));
    m.add_variable(lb, ub, static_cast<double>(rng.uniform_int(-4, 4)));
  }
  const int rows = static_cast<int>(rng.uniform_int(0, 5));
  for (int r = 0; r < rows; ++r) {
    std::vector<Term> terms;
    // Bias towards short rows (empty / singleton reductions).
    for (int j = 0; j < n; ++j) {
      if (rng.bernoulli(0.4)) {
        terms.emplace_back(j, static_cast<double>(rng.uniform_int(-3, 3)));
      }
    }
    const auto sense_draw = rng.uniform_int(0, 2);
    m.add_constraint(std::move(terms),
                     sense_draw == 0   ? RowSense::LessEqual
                     : sense_draw == 1 ? RowSense::GreaterEqual
                                       : RowSense::Equal,
                     static_cast<double>(rng.uniform_int(-8, 8)));
  }
  const LpSolution direct = solve_lp(m);
  const LpSolution pre = solve_lp_with_presolve(m);
  ASSERT_NE(direct.status, LpStatus::IterationLimit);
  EXPECT_EQ(direct.status, pre.status);
  if (direct.status == LpStatus::Optimal) {
    EXPECT_NEAR(direct.objective, pre.objective, 1e-5);
    EXPECT_TRUE(m.is_feasible(pre.values, 1e-5));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PresolveCrossValidation, ::testing::Range(0, 80));

}  // namespace
}  // namespace cohls::lp
