#include "lp/model.hpp"

#include <gtest/gtest.h>

namespace cohls::lp {
namespace {

TEST(LpModel, AddVariableReturnsSequentialColumns) {
  LpModel m;
  EXPECT_EQ(m.add_variable(0, 1, 2.0, "a"), 0);
  EXPECT_EQ(m.add_variable(0, 1, 3.0, "b"), 1);
  EXPECT_EQ(m.variable_count(), 2);
  EXPECT_EQ(m.variable_name(1), "b");
  EXPECT_DOUBLE_EQ(m.objective_coefficient(0), 2.0);
}

TEST(LpModel, BoundsStored) {
  LpModel m;
  const Col c = m.add_variable(-2.5, 7.0, 0.0);
  EXPECT_DOUBLE_EQ(m.lower_bound(c), -2.5);
  EXPECT_DOUBLE_EQ(m.upper_bound(c), 7.0);
}

TEST(LpModel, RejectsInvertedBounds) {
  LpModel m;
  EXPECT_THROW(m.add_variable(1.0, 0.0, 0.0), PreconditionError);
}

TEST(LpModel, SetBoundsTightens) {
  LpModel m;
  const Col c = m.add_variable(0.0, 10.0, 0.0);
  m.set_bounds(c, 2.0, 3.0);
  EXPECT_DOUBLE_EQ(m.lower_bound(c), 2.0);
  EXPECT_DOUBLE_EQ(m.upper_bound(c), 3.0);
}

TEST(LpModel, ConstraintMergesDuplicateColumns) {
  LpModel m;
  const Col x = m.add_variable(0, 10, 1.0);
  const Row r = m.add_constraint({{x, 1.0}, {x, 2.0}}, RowSense::LessEqual, 6.0);
  ASSERT_EQ(m.row_terms(r).size(), 1u);
  EXPECT_DOUBLE_EQ(m.row_terms(r)[0].second, 3.0);
}

TEST(LpModel, ConstraintRejectsUnknownColumn) {
  LpModel m;
  EXPECT_THROW(m.add_constraint({{0, 1.0}}, RowSense::Equal, 0.0), PreconditionError);
}

TEST(LpModel, ObjectiveValue) {
  LpModel m;
  m.add_variable(0, 10, 2.0);
  m.add_variable(0, 10, -1.0);
  EXPECT_DOUBLE_EQ(m.objective_value({3.0, 4.0}), 2.0);
}

TEST(LpModel, FeasibilityChecksBoundsAndRows) {
  LpModel m;
  const Col x = m.add_variable(0, 5, 0.0);
  const Col y = m.add_variable(0, 5, 0.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, RowSense::LessEqual, 6.0);
  m.add_constraint({{x, 1.0}}, RowSense::GreaterEqual, 1.0);
  m.add_constraint({{y, 1.0}}, RowSense::Equal, 2.0);
  EXPECT_TRUE(m.is_feasible({2.0, 2.0}));
  EXPECT_FALSE(m.is_feasible({0.0, 2.0}));   // violates >=
  EXPECT_FALSE(m.is_feasible({5.0, 2.0}));   // violates <=
  EXPECT_FALSE(m.is_feasible({2.0, 3.0}));   // violates ==
  EXPECT_FALSE(m.is_feasible({6.0, 0.0}));   // violates upper bound
}

TEST(LpModel, FeasibilityRespectsTolerance) {
  LpModel m;
  const Col x = m.add_variable(0, 1, 0.0);
  m.add_constraint({{x, 1.0}}, RowSense::Equal, 0.5);
  EXPECT_TRUE(m.is_feasible({0.5 + 1e-9}));
  EXPECT_FALSE(m.is_feasible({0.6}));
}

}  // namespace
}  // namespace cohls::lp
