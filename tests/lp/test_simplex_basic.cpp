#include <gtest/gtest.h>

#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace cohls::lp {
namespace {

constexpr double kTol = 1e-6;

TEST(Simplex, TrivialBoundsOnlyProblem) {
  // min 3x - 2y with x in [1, 4], y in [0, 5]: x=1, y=5.
  LpModel m;
  m.add_variable(1, 4, 3.0);
  m.add_variable(0, 5, -2.0);
  const auto sol = solve_lp(m);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 3.0 - 10.0, kTol);
  EXPECT_NEAR(sol.values[0], 1.0, kTol);
  EXPECT_NEAR(sol.values[1], 5.0, kTol);
}

TEST(Simplex, ClassicTwoVariableMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (Hillier-Lieberman):
  // optimum (2, 6) value 36. Minimize the negation.
  LpModel m;
  const Col x = m.add_variable(0, kInfinity, -3.0);
  const Col y = m.add_variable(0, kInfinity, -5.0);
  m.add_constraint({{x, 1.0}}, RowSense::LessEqual, 4.0);
  m.add_constraint({{y, 2.0}}, RowSense::LessEqual, 12.0);
  m.add_constraint({{x, 3.0}, {y, 2.0}}, RowSense::LessEqual, 18.0);
  const auto sol = solve_lp(m);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, -36.0, kTol);
  EXPECT_NEAR(sol.values[x], 2.0, kTol);
  EXPECT_NEAR(sol.values[y], 6.0, kTol);
}

TEST(Simplex, EqualityConstraint) {
  // min x + y s.t. x + y = 10, x >= 3: objective 10.
  LpModel m;
  const Col x = m.add_variable(3, kInfinity, 1.0);
  const Col y = m.add_variable(0, kInfinity, 1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, RowSense::Equal, 10.0);
  const auto sol = solve_lp(m);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 10.0, kTol);
  EXPECT_NEAR(sol.values[x] + sol.values[y], 10.0, kTol);
}

TEST(Simplex, GreaterEqualNeedsPhaseOne) {
  // min 2x + 3y s.t. x + y >= 4, x - y >= -2: optimum at (1,3)? Check:
  // minimize pushes to x+y = 4 boundary; cheapest mix is all-x: (4,0) -> 8,
  // but x - y >= -2 holds there. So optimum 8 at (4, 0).
  LpModel m;
  const Col x = m.add_variable(0, kInfinity, 2.0);
  const Col y = m.add_variable(0, kInfinity, 3.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, RowSense::GreaterEqual, 4.0);
  m.add_constraint({{x, 1.0}, {y, -1.0}}, RowSense::GreaterEqual, -2.0);
  const auto sol = solve_lp(m);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 8.0, kTol);
  EXPECT_NEAR(sol.values[x], 4.0, kTol);
  EXPECT_NEAR(sol.values[y], 0.0, kTol);
}

TEST(Simplex, DetectsInfeasible) {
  LpModel m;
  const Col x = m.add_variable(0, 1, 1.0);
  m.add_constraint({{x, 1.0}}, RowSense::GreaterEqual, 2.0);
  EXPECT_EQ(solve_lp(m).status, LpStatus::Infeasible);
}

TEST(Simplex, DetectsInfeasibleEqualitySystem) {
  LpModel m;
  const Col x = m.add_variable(0, kInfinity, 0.0);
  const Col y = m.add_variable(0, kInfinity, 0.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, RowSense::Equal, 1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, RowSense::Equal, 2.0);
  EXPECT_EQ(solve_lp(m).status, LpStatus::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  // min -x with x >= 0 unbounded below.
  LpModel m;
  m.add_variable(0, kInfinity, -1.0);
  EXPECT_EQ(solve_lp(m).status, LpStatus::Unbounded);
}

TEST(Simplex, UnboundedDetectedThroughConstraints) {
  // min -x + y s.t. x - y <= 1: ray (t+1, t) drives objective to -1 but
  // stays bounded... actually -x + y = -(t+1) + t = -1. Use x - 2y <= 1:
  // ray (2t+1, t): -(2t+1) + t = -t - 1 -> unbounded.
  LpModel m;
  const Col x = m.add_variable(0, kInfinity, -1.0);
  const Col y = m.add_variable(0, kInfinity, 1.0);
  m.add_constraint({{x, 1.0}, {y, -2.0}}, RowSense::LessEqual, 1.0);
  EXPECT_EQ(solve_lp(m).status, LpStatus::Unbounded);
}

TEST(Simplex, FreeVariable) {
  // min x s.t. x >= -7 expressed via a row (variable itself is free).
  LpModel m;
  const Col x = m.add_variable(-kInfinity, kInfinity, 1.0);
  m.add_constraint({{x, 1.0}}, RowSense::GreaterEqual, -7.0);
  const auto sol = solve_lp(m);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.values[x], -7.0, kTol);
}

TEST(Simplex, NegativeUpperBoundedVariable) {
  // min -x with x in (-inf, -3]: x = -3.
  LpModel m;
  const Col x = m.add_variable(-kInfinity, -3.0, -1.0);
  const auto sol = solve_lp(m);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.values[x], -3.0, kTol);
}

TEST(Simplex, FixedVariablePropagates) {
  // x fixed at 2, min y s.t. y >= 3x.
  LpModel m;
  const Col x = m.add_variable(2.0, 2.0, 0.0);
  const Col y = m.add_variable(0, kInfinity, 1.0);
  m.add_constraint({{y, 1.0}, {x, -3.0}}, RowSense::GreaterEqual, 0.0);
  const auto sol = solve_lp(m);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.values[y], 6.0, kTol);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Beale's classic cycling example (degenerate); Bland fallback must stop it.
  LpModel m;
  const Col x1 = m.add_variable(0, kInfinity, -0.75);
  const Col x2 = m.add_variable(0, kInfinity, 150.0);
  const Col x3 = m.add_variable(0, kInfinity, -0.02);
  const Col x4 = m.add_variable(0, kInfinity, 6.0);
  m.add_constraint({{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}}, RowSense::LessEqual, 0.0);
  m.add_constraint({{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}}, RowSense::LessEqual, 0.0);
  m.add_constraint({{x3, 1.0}}, RowSense::LessEqual, 1.0);
  const auto sol = solve_lp(m);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, -0.05, kTol);
}

TEST(Simplex, RedundantEqualityRowsHandled) {
  LpModel m;
  const Col x = m.add_variable(0, kInfinity, 1.0);
  const Col y = m.add_variable(0, kInfinity, 1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, RowSense::Equal, 4.0);
  m.add_constraint({{x, 2.0}, {y, 2.0}}, RowSense::Equal, 8.0);  // duplicate
  const auto sol = solve_lp(m);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 4.0, kTol);
}

TEST(Simplex, EmptyModelIsOptimalZero) {
  LpModel m;
  const auto sol = solve_lp(m);
  EXPECT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_DOUBLE_EQ(sol.objective, 0.0);
}

TEST(Simplex, SolutionIsPrimalFeasible) {
  LpModel m;
  const Col x = m.add_variable(0, 10, -1.0);
  const Col y = m.add_variable(0, 10, -2.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, RowSense::LessEqual, 12.0);
  m.add_constraint({{x, 1.0}, {y, 3.0}}, RowSense::LessEqual, 24.0);
  const auto sol = solve_lp(m);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_TRUE(m.is_feasible(sol.values, 1e-6));
  // Optimum: y=10 not allowed beyond row2: x + 3y <= 24 -> at x=2? Check
  // corners: (10,2): -14; (3? ) Actually best is x+y<=12 & x+3y<=24 corner
  // (6,6): -18. And (10, 2): -14, (0, 8): -16. So -18.
  EXPECT_NEAR(sol.objective, -18.0, kTol);
}

}  // namespace
}  // namespace cohls::lp
