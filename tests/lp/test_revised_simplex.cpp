// Differential tests for the sparse revised simplex against the dense
// tableau implementation, plus warm-start coverage: a dual re-solve from the
// optimal basis after a bound tightening must match a cold solve exactly
// (status and objective) — that equivalence is what lets branch and bound
// reuse parent bases without changing any result.
#include "lp/revised_simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "util/rng.hpp"

namespace cohls::lp {
namespace {

LpModel make_random_bounded_lp(std::uint64_t seed, int max_vars = 8, int max_rows = 8) {
  Rng rng{seed};
  LpModel model;
  const int n = static_cast<int>(rng.uniform_int(1, max_vars));
  const int m = static_cast<int>(rng.uniform_int(0, max_rows));
  for (int j = 0; j < n; ++j) {
    // Mix of bounded, half-bounded and free variables.
    const auto shape = rng.uniform_int(0, 9);
    double lb = static_cast<double>(rng.uniform_int(-5, 2));
    double ub = lb + static_cast<double>(rng.uniform_int(0, 8));
    if (shape == 8) {
      ub = kInfinity;
    } else if (shape == 9) {
      lb = -kInfinity;
      ub = kInfinity;
    }
    model.add_variable(lb, ub, static_cast<double>(rng.uniform_int(-4, 4)));
  }
  for (int i = 0; i < m; ++i) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) {
      const auto coef = rng.uniform_int(-3, 3);
      if (coef != 0) {
        terms.emplace_back(j, static_cast<double>(coef));
      }
    }
    const auto sense_draw = rng.uniform_int(0, 2);
    const auto sense = sense_draw == 0   ? RowSense::LessEqual
                       : sense_draw == 1 ? RowSense::GreaterEqual
                                         : RowSense::Equal;
    model.add_constraint(std::move(terms), sense,
                         static_cast<double>(rng.uniform_int(-10, 10)));
  }
  return model;
}

SimplexOptions dense_options() {
  SimplexOptions options;
  options.algorithm = SimplexAlgorithm::Dense;
  return options;
}

SimplexOptions revised_options() {
  SimplexOptions options;
  options.algorithm = SimplexAlgorithm::Revised;
  return options;
}

// --- differential: dense vs revised on random bounded LPs -------------------

class RevisedVsDense : public ::testing::TestWithParam<int> {};

TEST_P(RevisedVsDense, SameStatusAndObjective) {
  const LpModel model =
      make_random_bounded_lp(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 13);
  const LpSolution dense = solve_lp(model, dense_options());
  const LpSolution revised = solve_lp(model, revised_options());
  ASSERT_NE(dense.status, LpStatus::IterationLimit);
  ASSERT_NE(revised.status, LpStatus::IterationLimit);
  EXPECT_EQ(revised.status, dense.status) << "dense=" << to_string(dense.status)
                                          << " revised=" << to_string(revised.status);
  if (dense.status == LpStatus::Optimal && revised.status == LpStatus::Optimal) {
    EXPECT_NEAR(revised.objective, dense.objective, 1e-6);
    EXPECT_TRUE(model.is_feasible(revised.values, 1e-5));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RevisedVsDense, ::testing::Range(0, 400));

// Larger instances where the dense tableau's O(rows x cols) sweeps start to
// hurt; still cross-checked exactly.
class RevisedVsDenseLarge : public ::testing::TestWithParam<int> {};

TEST_P(RevisedVsDenseLarge, SameStatusAndObjective) {
  const LpModel model = make_random_bounded_lp(
      static_cast<std::uint64_t>(GetParam()) * 40503 + 271, /*max_vars=*/20,
      /*max_rows=*/16);
  const LpSolution dense = solve_lp(model, dense_options());
  const LpSolution revised = solve_lp(model, revised_options());
  ASSERT_NE(dense.status, LpStatus::IterationLimit);
  ASSERT_NE(revised.status, LpStatus::IterationLimit);
  EXPECT_EQ(revised.status, dense.status);
  if (dense.status == LpStatus::Optimal && revised.status == LpStatus::Optimal) {
    EXPECT_NEAR(revised.objective, dense.objective, 1e-6);
    EXPECT_TRUE(model.is_feasible(revised.values, 1e-5));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RevisedVsDenseLarge, ::testing::Range(0, 120));

// --- warm start: dual re-solve after a bound tightening ---------------------

class WarmStartAfterTightening : public ::testing::TestWithParam<int> {};

TEST_P(WarmStartAfterTightening, MatchesColdSolve) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) * 9176 + 5;
  LpModel model = make_random_bounded_lp(seed);
  RevisedSimplex solver(model, revised_options());
  const LpSolution first = solver.solve();
  if (first.status != LpStatus::Optimal) {
    return;  // warm starts only make sense off an optimal basis
  }
  const Basis basis = solver.basis();
  ASSERT_FALSE(basis.empty());

  // Tighten one variable's bounds the way branch and bound does: floor /
  // ceil around its LP value.
  Rng rng{seed + 1};
  const Col c = static_cast<Col>(rng.uniform_int(0, model.variable_count() - 1));
  const double v = first.values[static_cast<std::size_t>(c)];
  const bool branch_down = rng.uniform_int(0, 1) == 0;
  double lo = model.lower_bound(c);
  double hi = model.upper_bound(c);
  if (branch_down) {
    hi = std::min(hi, std::floor(v));
  } else {
    lo = std::max(lo, std::floor(v) + 1.0);
  }
  if (lo > hi) {
    return;  // trivially infeasible branch; nothing to re-solve
  }

  solver.set_bounds(c, lo, hi);
  const LpSolution warm = solver.solve_from(basis);

  model.set_bounds(c, lo, hi);
  const LpSolution cold = solve_lp(model, revised_options());
  const LpSolution cold_dense = solve_lp(model, dense_options());

  ASSERT_NE(warm.status, LpStatus::IterationLimit);
  EXPECT_EQ(warm.status, cold.status);
  EXPECT_EQ(warm.status, cold_dense.status);
  if (warm.status == LpStatus::Optimal) {
    EXPECT_NEAR(warm.objective, cold.objective, 1e-6);
    EXPECT_NEAR(warm.objective, cold_dense.objective, 1e-6);
    EXPECT_TRUE(model.is_feasible(warm.values, 1e-5));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarmStartAfterTightening, ::testing::Range(0, 300));

// A chain of tightenings re-using each optimal basis in turn — the exact
// access pattern of a depth-first branch-and-bound dive.
TEST(WarmStart, ChainedTighteningsMatchColdSolves) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    LpModel model = make_random_bounded_lp(seed * 7919 + 3, 10, 8);
    RevisedSimplex solver(model, revised_options());
    LpSolution current = solver.solve();
    Rng rng{seed};
    for (int depth = 0; depth < 6 && current.status == LpStatus::Optimal; ++depth) {
      const Basis basis = solver.basis();
      const Col c =
          static_cast<Col>(rng.uniform_int(0, model.variable_count() - 1));
      const double v = current.values[static_cast<std::size_t>(c)];
      double lo = model.lower_bound(c);
      double hi = model.upper_bound(c);
      if (rng.uniform_int(0, 1) == 0) {
        hi = std::min(hi, std::floor(v));
      } else {
        lo = std::max(lo, std::ceil(v - 1e-9));
      }
      if (lo > hi) {
        break;
      }
      solver.set_bounds(c, lo, hi);
      model.set_bounds(c, lo, hi);
      current = solver.solve_from(basis);
      const LpSolution cold = solve_lp(model, dense_options());
      ASSERT_NE(current.status, LpStatus::IterationLimit) << "seed " << seed;
      ASSERT_EQ(current.status, cold.status) << "seed " << seed << " depth " << depth;
      if (current.status == LpStatus::Optimal) {
        EXPECT_NEAR(current.objective, cold.objective, 1e-6)
            << "seed " << seed << " depth " << depth;
      }
    }
  }
}

// --- targeted shapes --------------------------------------------------------

TEST(RevisedSimplex, EmptyModelIsOptimalAtZero) {
  LpModel model;
  const LpSolution sol = solve_lp(model, revised_options());
  EXPECT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_DOUBLE_EQ(sol.objective, 0.0);
}

TEST(RevisedSimplex, UnboundedBelowIsDetected) {
  LpModel model;
  model.add_variable(-kInfinity, kInfinity, 1.0);
  const LpSolution sol = solve_lp(model, revised_options());
  EXPECT_EQ(sol.status, LpStatus::Unbounded);
}

TEST(RevisedSimplex, FixedVariablesAndEqualities) {
  LpModel model;
  const Col x = model.add_variable(2.0, 2.0, 3.0);   // fixed
  const Col y = model.add_variable(0.0, 10.0, 1.0);
  model.add_constraint({{x, 1.0}, {y, 1.0}}, RowSense::Equal, 5.0);
  const LpSolution sol = solve_lp(model, revised_options());
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.values[0], 2.0, 1e-9);
  EXPECT_NEAR(sol.values[1], 3.0, 1e-9);
  EXPECT_NEAR(sol.objective, 9.0, 1e-9);
}

TEST(RevisedSimplex, InfeasibleEqualitiesAreDetected) {
  LpModel model;
  const Col x = model.add_variable(0.0, 1.0, 1.0);
  model.add_constraint({{x, 1.0}}, RowSense::Equal, 5.0);
  const LpSolution sol = solve_lp(model, revised_options());
  EXPECT_EQ(sol.status, LpStatus::Infeasible);
}

TEST(RevisedSimplex, WarmStatsCountBasisReuse) {
  LpModel model;
  const Col x = model.add_variable(0.0, 10.0, -1.0);
  const Col y = model.add_variable(0.0, 10.0, -2.0);
  model.add_constraint({{x, 1.0}, {y, 1.0}}, RowSense::LessEqual, 8.0);
  RevisedSimplex solver(model);
  const LpSolution cold = solver.solve();
  ASSERT_EQ(cold.status, LpStatus::Optimal);
  EXPECT_EQ(solver.last_stats().cold_solves, 1);
  const Basis basis = solver.basis();
  solver.set_bounds(y, 0.0, 3.0);
  const LpSolution warm = solver.solve_from(basis);
  ASSERT_EQ(warm.status, LpStatus::Optimal);
  EXPECT_EQ(solver.last_stats().warm_solves, 1);
  EXPECT_EQ(solver.total_stats().warm_solves, 1);
  EXPECT_EQ(solver.total_stats().cold_solves, 1);
  EXPECT_NEAR(warm.objective, -11.0, 1e-9);  // y=3, x=5
}

TEST(RevisedSimplex, CloneWorkspaceSharesTheMatrixButNotTheState) {
  LpModel model;
  const Col x = model.add_variable(0.0, 10.0, -1.0);
  const Col y = model.add_variable(0.0, 10.0, -2.0);
  model.add_constraint({{x, 1.0}, {y, 1.0}}, RowSense::LessEqual, 8.0);
  RevisedSimplex original(model);
  // Bound overrides on the original must NOT leak into the clone: a clone
  // starts from the model's own bounds with fresh stats and no basis.
  original.set_bounds(y, 0.0, 3.0);
  ASSERT_EQ(original.solve().status, LpStatus::Optimal);

  RevisedSimplex clone = original.clone_workspace();
  EXPECT_EQ(clone.total_stats().cold_solves, 0);
  EXPECT_TRUE(clone.basis().empty());
  const LpSolution fresh = clone.solve();
  ASSERT_EQ(fresh.status, LpStatus::Optimal);
  EXPECT_NEAR(fresh.objective, -16.0, 1e-9);  // y=8 allowed again: x=0, y=8

  // Mutating the clone afterwards must not disturb the original either.
  clone.set_bounds(x, 2.0, 2.0);
  ASSERT_EQ(clone.solve().status, LpStatus::Optimal);
  const LpSolution again = original.solve();
  ASSERT_EQ(again.status, LpStatus::Optimal);
  EXPECT_NEAR(again.objective, -11.0, 1e-9);  // y still capped at 3: x=5, y=3
}

TEST(RevisedSimplex, ClonesSolveIndependentlyAcrossRandomModels) {
  // The parallel branch and bound hands every worker a clone; each must
  // reproduce the dense solver on its own bound trajectory.
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const LpModel model = make_random_bounded_lp(seed * 104729 + 13);
    RevisedSimplex original(model);
    RevisedSimplex clone = original.clone_workspace();
    const LpSolution a = original.solve();
    const LpSolution b = clone.solve();
    const LpSolution reference = solve_lp(model, dense_options());
    ASSERT_EQ(a.status, reference.status) << "seed " << seed;
    ASSERT_EQ(b.status, reference.status) << "seed " << seed;
    if (reference.status == LpStatus::Optimal) {
      EXPECT_NEAR(a.objective, reference.objective, 1e-6) << "seed " << seed;
      EXPECT_NEAR(b.objective, reference.objective, 1e-6) << "seed " << seed;
    }
  }
}

TEST(RevisedSimplex, WarmStartFromForeignBasisFallsBackSafely) {
  LpModel model;
  model.add_variable(0.0, 4.0, -1.0);
  model.add_variable(0.0, 4.0, -1.0);
  model.add_constraint({{0, 1.0}, {1, 2.0}}, RowSense::LessEqual, 6.0);
  RevisedSimplex solver(model);
  Basis bogus;  // malformed on purpose: wrong arity
  bogus.basic = {0, 1, 2};
  bogus.status = {BasisStatus::Basic};
  const LpSolution sol = solver.solve_from(bogus);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_GE(solver.last_stats().warm_degraded, 1);
}

}  // namespace
}  // namespace cohls::lp
