// Property tests for the bounded-variable simplex. The native-bounds solve
// is cross-validated against a reformulated model where every finite bound
// becomes an explicit row and all variables are free — the two formulations
// exercise disjoint code paths (bound flips vs. phase-1 rows) and must agree
// on status and objective.
#include <gtest/gtest.h>

#include <cmath>

#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "util/rng.hpp"

namespace cohls::lp {
namespace {

struct RandomLp {
  LpModel model;
};

RandomLp make_random_lp(std::uint64_t seed) {
  Rng rng{seed};
  RandomLp out;
  const int n = static_cast<int>(rng.uniform_int(1, 6));
  const int m = static_cast<int>(rng.uniform_int(0, 6));
  for (int j = 0; j < n; ++j) {
    const double lb = static_cast<double>(rng.uniform_int(-5, 2));
    const double ub = lb + static_cast<double>(rng.uniform_int(0, 8));
    const double c = static_cast<double>(rng.uniform_int(-4, 4));
    out.model.add_variable(lb, ub, c);
  }
  for (int i = 0; i < m; ++i) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) {
      const auto coef = rng.uniform_int(-3, 3);
      if (coef != 0) {
        terms.emplace_back(j, static_cast<double>(coef));
      }
    }
    const auto sense_draw = rng.uniform_int(0, 2);
    const auto sense = sense_draw == 0   ? RowSense::LessEqual
                       : sense_draw == 1 ? RowSense::GreaterEqual
                                         : RowSense::Equal;
    out.model.add_constraint(std::move(terms), sense,
                             static_cast<double>(rng.uniform_int(-10, 10)));
  }
  return out;
}

/// Reformulates: every variable becomes free; bounds become explicit rows.
LpModel bounds_as_rows(const LpModel& original) {
  LpModel m;
  for (Col c = 0; c < original.variable_count(); ++c) {
    m.add_variable(-kInfinity, kInfinity, original.objective_coefficient(c));
  }
  for (Col c = 0; c < original.variable_count(); ++c) {
    if (std::isfinite(original.lower_bound(c))) {
      m.add_constraint({{c, 1.0}}, RowSense::GreaterEqual, original.lower_bound(c));
    }
    if (std::isfinite(original.upper_bound(c))) {
      m.add_constraint({{c, 1.0}}, RowSense::LessEqual, original.upper_bound(c));
    }
  }
  for (Row r = 0; r < original.constraint_count(); ++r) {
    m.add_constraint(original.row_terms(r), original.row_sense(r), original.row_rhs(r));
  }
  return m;
}

class SimplexCrossValidation : public ::testing::TestWithParam<int> {};

TEST_P(SimplexCrossValidation, NativeBoundsAgreeWithBoundRows) {
  const auto instance = make_random_lp(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  const auto native = solve_lp(instance.model);
  const auto rows = solve_lp(bounds_as_rows(instance.model));
  ASSERT_NE(native.status, LpStatus::IterationLimit);
  ASSERT_NE(rows.status, LpStatus::IterationLimit);
  EXPECT_EQ(native.status, rows.status);
  if (native.status == LpStatus::Optimal) {
    EXPECT_NEAR(native.objective, rows.objective, 1e-5);
    EXPECT_TRUE(instance.model.is_feasible(native.values, 1e-5));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexCrossValidation, ::testing::Range(0, 120));

// Property: no random feasible point beats the reported optimum.
class SimplexOptimality : public ::testing::TestWithParam<int> {};

TEST_P(SimplexOptimality, RandomFeasiblePointsNeverBeatOptimum) {
  const auto instance = make_random_lp(static_cast<std::uint64_t>(GetParam()) * 65537 + 3);
  const auto sol = solve_lp(instance.model);
  if (sol.status != LpStatus::Optimal) {
    return;  // covered by cross-validation suite
  }
  Rng rng{static_cast<std::uint64_t>(GetParam()) + 99};
  const auto& m = instance.model;
  int tested = 0;
  for (int trial = 0; trial < 2000 && tested < 200; ++trial) {
    std::vector<double> x(static_cast<std::size_t>(m.variable_count()));
    for (Col c = 0; c < m.variable_count(); ++c) {
      const double lo = m.lower_bound(c);
      const double hi = m.upper_bound(c);
      x[static_cast<std::size_t>(c)] = lo + (hi - lo) * rng.uniform_double();
    }
    if (!m.is_feasible(x, 1e-9)) {
      continue;
    }
    ++tested;
    EXPECT_GE(m.objective_value(x), sol.objective - 1e-6)
        << "sampled feasible point beats the 'optimal' objective";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexOptimality, ::testing::Range(0, 60));

}  // namespace
}  // namespace cohls::lp
