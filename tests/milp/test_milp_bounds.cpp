// Bound-driven search: validity of the combinatorial node bounds, dive
// incumbent certification, and exactness of the solver with bounds attached
// (sequential, parallel, and dense-vs-revised differential).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "lp/simplex.hpp"
#include "milp/bounds.hpp"
#include "milp/branch_and_bound.hpp"
#include "milp/dive.hpp"
#include "milp/model.hpp"
#include "util/rng.hpp"

namespace cohls::milp {
namespace {

/// A random disjunctive device-conflict scheduling MILP shaped like the
/// per-layer model: binding binaries with bind-once rows, integer starts,
/// big-M conflict disjunctions, a makespan epigraph, and per-use cost on the
/// device slots beyond the free prefix.
struct SchedulingInstance {
  MilpModel model;
  SchedulingBounds::Config config;
  lp::Col makespan = -1;
};

constexpr double kNewDeviceCost = 3.0;

SchedulingInstance make_scheduling(std::uint64_t seed, int tasks, int devices,
                                   int free_devices, int distinct = 0) {
  Rng rng{seed};
  SchedulingInstance out;
  std::vector<double> dur(static_cast<std::size_t>(tasks));
  std::vector<double> occ(static_cast<std::size_t>(tasks));
  double horizon = 0.0;
  for (int i = 0; i < tasks; ++i) {
    dur[static_cast<std::size_t>(i)] = static_cast<double>(rng.uniform_int(1, 4));
    occ[static_cast<std::size_t>(i)] =
        dur[static_cast<std::size_t>(i)] + static_cast<double>(rng.uniform_int(0, 2));
    horizon += occ[static_cast<std::size_t>(i)];
  }
  std::vector<lp::Col> used(static_cast<std::size_t>(devices), -1);
  for (int j = free_devices; j < devices; ++j) {
    used[static_cast<std::size_t>(j)] = out.model.add_binary(kNewDeviceCost);
  }
  std::vector<std::vector<lp::Col>> binding(static_cast<std::size_t>(tasks));
  for (int i = 0; i < tasks; ++i) {
    std::vector<lp::Term> bind_once;
    for (int j = 0; j < devices; ++j) {
      const lp::Col col = out.model.add_binary(0.0);
      binding[static_cast<std::size_t>(i)].push_back(col);
      bind_once.emplace_back(col, 1.0);
      if (used[static_cast<std::size_t>(j)] >= 0) {
        out.model.add_constraint({{col, 1.0}, {used[static_cast<std::size_t>(j)], -1.0}},
                                 lp::RowSense::LessEqual, 0.0);
      }
    }
    out.model.add_constraint(std::move(bind_once), lp::RowSense::Equal, 1.0);
  }
  std::vector<lp::Col> start(static_cast<std::size_t>(tasks));
  for (int i = 0; i < tasks; ++i) {
    start[static_cast<std::size_t>(i)] =
        out.model.add_variable(VarKind::Integer, 0.0, horizon, 0.0);
  }
  out.makespan = out.model.add_variable(VarKind::Continuous, 0.0, horizon, 1.0);
  for (int i = 0; i < tasks; ++i) {
    out.model.add_constraint(
        {{out.makespan, 1.0}, {start[static_cast<std::size_t>(i)], -1.0}},
        lp::RowSense::GreaterEqual, dur[static_cast<std::size_t>(i)]);
  }
  // The first `distinct` tasks must occupy pairwise-distinct devices (the
  // indeterminate parallel rule): at most one of them binds to any slot.
  for (int j = 0; distinct > 1 && j < devices; ++j) {
    std::vector<lp::Term> at_most_one;
    for (int i = 0; i < distinct; ++i) {
      at_most_one.emplace_back(
          binding[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], 1.0);
    }
    out.model.add_constraint(std::move(at_most_one), lp::RowSense::LessEqual, 1.0);
  }
  const double big_m = horizon + 1.0;
  for (int a = 0; a < tasks; ++a) {
    for (int b = a + 1; b < tasks; ++b) {
      const lp::Col q0 = out.model.add_binary(0.0);
      const lp::Col q1 = out.model.add_binary(0.0);
      const lp::Col q2 = out.model.add_binary(0.0);
      out.model.add_constraint({{start[static_cast<std::size_t>(a)], 1.0},
                                {q0, big_m},
                                {start[static_cast<std::size_t>(b)], -1.0}},
                               lp::RowSense::GreaterEqual,
                               occ[static_cast<std::size_t>(b)]);
      out.model.add_constraint({{start[static_cast<std::size_t>(a)], 1.0},
                                {q1, -big_m},
                                {start[static_cast<std::size_t>(b)], -1.0}},
                               lp::RowSense::LessEqual,
                               -occ[static_cast<std::size_t>(a)]);
      for (int j = 0; j < devices; ++j) {
        out.model.add_constraint({{binding[static_cast<std::size_t>(a)][static_cast<std::size_t>(j)], 1.0},
                                  {binding[static_cast<std::size_t>(b)][static_cast<std::size_t>(j)], 1.0},
                                  {q2, -1.0}},
                                 lp::RowSense::LessEqual, 1.0);
      }
      out.model.add_constraint({{q0, 1.0}, {q1, 1.0}, {q2, 1.0}},
                               lp::RowSense::LessEqual, 2.0);
    }
  }

  for (int i = 0; i < tasks; ++i) {
    SchedulingBounds::Task task;
    task.start = start[static_cast<std::size_t>(i)];
    task.occupation = occ[static_cast<std::size_t>(i)];
    task.duration = dur[static_cast<std::size_t>(i)];
    task.binding = binding[static_cast<std::size_t>(i)];
    out.config.tasks.push_back(std::move(task));
  }
  out.config.makespan = out.makespan;
  out.config.makespan_weight = 1.0;
  out.config.free_devices = free_devices;
  out.config.new_devices = devices - free_devices;
  out.config.min_new_device_cost = kNewDeviceCost;
  for (int j = free_devices; j < devices; ++j) {
    out.config.new_device_cols.push_back(used[static_cast<std::size_t>(j)]);
  }
  if (distinct > 0) {
    out.config.task_new_cost.assign(static_cast<std::size_t>(tasks), kNewDeviceCost);
    for (int i = 0; i < distinct; ++i) {
      out.config.distinct_tasks.push_back(i);
    }
    out.config.free_slot_mask =
        free_devices >= 64 ? ~DeviceMask{0} : (DeviceMask{1} << free_devices) - 1;
  }
  out.config.objective.resize(static_cast<std::size_t>(out.model.variable_count()));
  for (lp::Col c = 0; c < out.model.variable_count(); ++c) {
    out.config.objective[static_cast<std::size_t>(c)] =
        out.model.lp().objective_coefficient(c);
  }
  return out;
}

SchedulingInstance make_from_seed(std::uint64_t seed) {
  Rng shape{seed * 977 + 5};
  const int tasks = static_cast<int>(shape.uniform_int(2, 5));
  const int devices = static_cast<int>(shape.uniform_int(2, 3));
  const int free_devices = static_cast<int>(shape.uniform_int(1, devices));
  // Every other seed carries a pairwise-distinct set so the task-level cost
  // floors (and their free-slot escapes) are exercised alongside plain runs.
  const int distinct =
      seed % 2 == 0 ? 0
                    : static_cast<int>(shape.uniform_int(0, std::min(tasks, devices)));
  return make_scheduling(seed, tasks, devices, free_devices, distinct);
}

std::vector<double> root_lower(const MilpModel& model) {
  std::vector<double> out(static_cast<std::size_t>(model.variable_count()));
  for (lp::Col c = 0; c < model.variable_count(); ++c) {
    out[static_cast<std::size_t>(c)] = model.lp().lower_bound(c);
  }
  return out;
}

std::vector<double> root_upper(const MilpModel& model) {
  std::vector<double> out(static_cast<std::size_t>(model.variable_count()));
  for (lp::Col c = 0; c < model.variable_count(); ++c) {
    out[static_cast<std::size_t>(c)] = model.lp().upper_bound(c);
  }
  return out;
}

class SchedulingBoundValidity : public ::testing::TestWithParam<int> {};

// The combinatorial root bound never exceeds the proven optimum, and a
// solve with the provider attached reaches exactly the same optimum.
TEST_P(SchedulingBoundValidity, RootBoundIsAdmissibleAndPreservesExactness) {
  const auto instance = make_from_seed(static_cast<std::uint64_t>(GetParam()));
  const auto provider = std::make_shared<SchedulingBounds>(instance.config);

  const auto reference = solve_milp(instance.model);
  ASSERT_EQ(reference.status, MilpStatus::Optimal);

  const double root_bound =
      provider->objective_lower_bound(root_lower(instance.model), root_upper(instance.model));
  EXPECT_LE(root_bound, reference.objective + 1e-6)
      << "combinatorial bound overshoots the true optimum";
  EXPECT_GT(root_bound, -std::numeric_limits<double>::infinity());

  MilpOptions with_bounds;
  with_bounds.bounds = provider;
  const auto bounded = solve_milp(instance.model, with_bounds);
  ASSERT_EQ(bounded.status, MilpStatus::Optimal);
  EXPECT_NEAR(bounded.objective, reference.objective, 1e-6);
  EXPECT_TRUE(instance.model.is_feasible(bounded.values, 1e-5));

  // Dense-vs-revised differential with the provider attached.
  MilpOptions dense = with_bounds;
  dense.simplex.algorithm = lp::SimplexAlgorithm::Dense;
  dense.presolve = false;
  const auto dense_sol = solve_milp(instance.model, dense);
  ASSERT_EQ(dense_sol.status, MilpStatus::Optimal);
  EXPECT_NEAR(dense_sol.objective, reference.objective, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulingBoundValidity, ::testing::Range(0, 40));

class SchedulingBoundMonotonicity : public ::testing::TestWithParam<int> {};

// makespan_bound relaxes as devices are added; min_devices_for_deadline
// relaxes as the deadline grows; and with the full device set the makespan
// bound is admissible against the proven optimal makespan.
TEST_P(SchedulingBoundMonotonicity, DeviceAndDeadlineDirectionsAreMonotone) {
  const auto instance = make_from_seed(static_cast<std::uint64_t>(GetParam()) + 1000);
  const SchedulingBounds provider(instance.config);
  const auto lower = root_lower(instance.model);
  const auto upper = root_upper(instance.model);
  const int devices = instance.config.free_devices + instance.config.new_devices;

  double previous = std::numeric_limits<double>::infinity();
  for (int d = 1; d <= devices; ++d) {
    const double bound = provider.makespan_bound(lower, upper, d);
    EXPECT_LE(bound, previous + 1e-9) << "more devices must not worsen the bound";
    previous = bound;
  }

  const auto reference = solve_milp(instance.model);
  ASSERT_EQ(reference.status, MilpStatus::Optimal);
  const double optimal_makespan =
      reference.values[static_cast<std::size_t>(instance.makespan)];
  EXPECT_LE(provider.makespan_bound(lower, upper, devices), optimal_makespan + 1e-6);

  int previous_devices = devices + 2;
  for (double deadline = 0.0; deadline <= upper[static_cast<std::size_t>(
                                  instance.makespan)] + 1.0;
       deadline += 1.0) {
    const int needed = provider.min_devices_for_deadline(lower, upper, deadline);
    EXPECT_LE(needed, previous_devices) << "a later deadline must not need more devices";
    previous_devices = needed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulingBoundMonotonicity, ::testing::Range(0, 20));

class SchedulingThreadParity : public ::testing::TestWithParam<int> {};

// With bounds and dive attached, a 4-worker team reports the same status and
// objective as the sequential search.
TEST_P(SchedulingThreadParity, FourWorkersMatchSequentialWithBounds) {
  const auto instance = make_from_seed(static_cast<std::uint64_t>(GetParam()) + 2000);
  const auto provider = std::make_shared<SchedulingBounds>(instance.config);

  MilpOptions opts;
  opts.bounds = provider;
  const auto sequential = solve_milp(instance.model, opts);
  opts.threads = 4;
  const auto parallel = solve_milp(instance.model, opts);

  ASSERT_EQ(sequential.status, MilpStatus::Optimal);
  EXPECT_EQ(parallel.status, sequential.status);
  EXPECT_NEAR(parallel.objective, sequential.objective, 1e-6);
  EXPECT_TRUE(instance.model.is_feasible(parallel.values, 1e-5));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulingThreadParity, ::testing::Range(0, 15));

// --- wide masks ------------------------------------------------------------

// Device masks are 64-bit: a 40-slot instance must carry allowed-device bits
// past the 32-bit boundary through window derivation, the energetic grouping,
// and the distinct-task free-slot escape. A 32-bit mask would wrap slot 39
// onto slot 7 — silently freeing pinned high slots and collapsing the bound.
TEST(SchedulingWideMasks, FortySlotInstanceTracksHighMaskBits) {
  constexpr int kTasks = 3;
  constexpr int kDevices = 40;
  constexpr int kFree = 36;  // free slots 0..35 straddle the 32-bit boundary
  constexpr double kDuration = 3.0;
  constexpr double kOccupation = 4.0;
  const double horizon = kTasks * kOccupation;

  MilpModel model;
  SchedulingBounds::Config config;
  std::vector<std::vector<lp::Col>> binding(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    for (int j = 0; j < kDevices; ++j) {
      binding[static_cast<std::size_t>(i)].push_back(model.add_binary(0.0));
    }
  }
  for (int i = 0; i < kTasks; ++i) {
    SchedulingBounds::Task task;
    task.start = model.add_variable(VarKind::Integer, 0.0, horizon, 0.0);
    task.occupation = kOccupation;
    task.duration = kDuration;
    task.binding = binding[static_cast<std::size_t>(i)];
    config.tasks.push_back(std::move(task));
  }
  config.makespan = model.add_variable(VarKind::Continuous, 0.0, horizon, 1.0);
  config.makespan_weight = 1.0;
  config.free_devices = kFree;
  config.new_devices = kDevices - kFree;
  config.min_new_device_cost = kNewDeviceCost;
  config.task_new_cost.assign(kTasks, kNewDeviceCost);
  config.distinct_tasks = {0, 1, 2};
  config.free_slot_mask = (DeviceMask{1} << kFree) - 1;
  config.objective.resize(static_cast<std::size_t>(model.variable_count()));
  for (lp::Col c = 0; c < model.variable_count(); ++c) {
    config.objective[static_cast<std::size_t>(c)] =
        model.lp().objective_coefficient(c);
  }
  const SchedulingBounds provider(config);

  // Unpinned: forty slots host three tasks in parallel, every distinct task
  // reaches a free slot, so both bounds collapse to the bare duration.
  const auto lower = root_lower(model);
  const auto upper = root_upper(model);
  EXPECT_NEAR(provider.makespan_bound(lower, upper, kDevices), kDuration, 1e-9);
  EXPECT_NEAR(provider.objective_lower_bound(lower, upper), kDuration, 1e-9);
  EXPECT_EQ(provider.min_devices_for_deadline(lower, upper, kDuration), kTasks);

  // Pin tasks 1 and 2 to the two highest slots (38 and 39, both NEW slots).
  // Their device payments can no longer escape to a free slot: the distinct
  // floor is two task costs, and the cheapest device count is u = 38 —
  // makespan 3 plus max(floor, 2 paid slots) * cost.
  auto pinned_lower = lower;
  pinned_lower[static_cast<std::size_t>(binding[1][38])] = 1.0;
  pinned_lower[static_cast<std::size_t>(binding[2][39])] = 1.0;
  EXPECT_NEAR(provider.makespan_bound(pinned_lower, upper, kDevices), kDuration,
              1e-9);
  EXPECT_NEAR(provider.objective_lower_bound(pinned_lower, upper),
              kDuration + 2.0 * kNewDeviceCost, 1e-9);

  // Pin all three tasks onto slot 39: one slot, occupation-serialized. The
  // energetic bound must see a single-device group at bit 39.
  auto serial_lower = lower;
  for (int i = 0; i < kTasks; ++i) {
    serial_lower[static_cast<std::size_t>(
        binding[static_cast<std::size_t>(i)][39])] = 1.0;
  }
  EXPECT_NEAR(provider.makespan_bound(serial_lower, upper, kDevices),
              2.0 * kOccupation + kDuration, 1e-9);
}

// --- dive ------------------------------------------------------------------

struct RandomMilpForDive {
  MilpModel model;
};

RandomMilpForDive make_random_mip(std::uint64_t seed) {
  Rng rng{seed};
  RandomMilpForDive out;
  const int n = static_cast<int>(rng.uniform_int(2, 6));
  for (int j = 0; j < n; ++j) {
    const int lb = static_cast<int>(rng.uniform_int(-2, 0));
    const int ub = lb + static_cast<int>(rng.uniform_int(1, 5));
    out.model.add_variable(VarKind::Integer, lb, ub,
                           static_cast<double>(rng.uniform_int(-4, 4)));
  }
  const int m = static_cast<int>(rng.uniform_int(1, 5));
  for (int i = 0; i < m; ++i) {
    std::vector<lp::Term> terms;
    for (int j = 0; j < n; ++j) {
      const auto coef = rng.uniform_int(-3, 3);
      if (coef != 0) {
        terms.emplace_back(j, static_cast<double>(coef));
      }
    }
    const auto sense = rng.uniform_int(0, 1) == 0 ? lp::RowSense::LessEqual
                                                  : lp::RowSense::GreaterEqual;
    out.model.add_constraint(std::move(terms), sense,
                             static_cast<double>(rng.uniform_int(-6, 6)));
  }
  return out;
}

class DiveCertification : public ::testing::TestWithParam<int> {};

// Whatever point the dive claims is always LP- and integrality-feasible for
// the model it dived, with a correctly reported objective.
TEST_P(DiveCertification, DiveIncumbentAlwaysCertifies) {
  const auto instance = make_random_mip(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
  lp::LpModel box = instance.model.lp();
  std::vector<double> lower(static_cast<std::size_t>(box.variable_count()));
  std::vector<double> upper(static_cast<std::size_t>(box.variable_count()));
  for (lp::Col c = 0; c < box.variable_count(); ++c) {
    lower[static_cast<std::size_t>(c)] = box.lower_bound(c);
    upper[static_cast<std::size_t>(c)] = box.upper_bound(c);
  }
  DiveHooks hooks;
  hooks.resolve = [&box] { return lp::solve_lp(box); };
  hooks.set_bounds = [&](lp::Col c, double lo, double hi) {
    box.set_bounds(c, lo, hi);
    lower[static_cast<std::size_t>(c)] = lo;
    upper[static_cast<std::size_t>(c)] = hi;
  };
  hooks.lower = &lower;
  hooks.upper = &upper;

  const auto root = lp::solve_lp(box);
  if (root.status != lp::LpStatus::Optimal) {
    return;  // nothing to dive from
  }
  const auto result = dive_for_incumbent(instance.model, hooks, root,
                                         /*integrality_tolerance=*/1e-6,
                                         /*feasibility_tolerance=*/1e-6,
                                         /*max_lp_solves=*/64);
  if (!result.found) {
    return;
  }
  EXPECT_TRUE(instance.model.is_feasible(result.values, 1e-6));
  EXPECT_NEAR(result.objective, instance.model.lp().objective_value(result.values), 1e-9);

  // Soundness: a dive incumbent can never beat the proven optimum.
  const auto exact = solve_milp(instance.model);
  ASSERT_EQ(exact.status, MilpStatus::Optimal);
  EXPECT_GE(result.objective, exact.objective - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiveCertification, ::testing::Range(0, 60));

// The dive is not vacuous: across the seed range it finds incumbents, and a
// solve that reports dive_found_incumbent matches the no-dive optimum.
TEST(DiveCertification, DiveFindsIncumbentsAndPreservesExactness) {
  int found = 0;
  for (int seed = 0; seed < 25; ++seed) {
    const auto instance = make_from_seed(static_cast<std::uint64_t>(seed) + 3000);
    MilpOptions with_dive;
    with_dive.bounds = std::make_shared<SchedulingBounds>(instance.config);
    MilpOptions no_dive = with_dive;
    no_dive.dive = false;
    const auto dived = solve_milp(instance.model, with_dive);
    const auto plain = solve_milp(instance.model, no_dive);
    ASSERT_EQ(dived.status, MilpStatus::Optimal);
    ASSERT_EQ(plain.status, MilpStatus::Optimal);
    EXPECT_NEAR(dived.objective, plain.objective, 1e-6);
    if (dived.dive_found_incumbent) {
      ++found;
      EXPECT_GT(dived.dive_lp_solves, 0);
    }
  }
  EXPECT_GT(found, 0) << "the root dive never fired across 25 scheduling instances";
}

}  // namespace
}  // namespace cohls::milp
