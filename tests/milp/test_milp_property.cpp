// Property tests: branch-and-bound is cross-validated against exhaustive
// enumeration of the integer grid on random small pure-integer programs.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>

#include "milp/branch_and_bound.hpp"
#include "milp/model.hpp"
#include "util/rng.hpp"

namespace cohls::milp {
namespace {

struct RandomMilp {
  MilpModel model;
  std::vector<int> lower;
  std::vector<int> upper;
};

RandomMilp make_random_milp(std::uint64_t seed) {
  Rng rng{seed};
  RandomMilp out;
  const int n = static_cast<int>(rng.uniform_int(1, 4));
  for (int j = 0; j < n; ++j) {
    const int lb = static_cast<int>(rng.uniform_int(-2, 1));
    const int ub = lb + static_cast<int>(rng.uniform_int(0, 4));
    out.lower.push_back(lb);
    out.upper.push_back(ub);
    out.model.add_variable(VarKind::Integer, lb, ub,
                           static_cast<double>(rng.uniform_int(-5, 5)));
  }
  const int m = static_cast<int>(rng.uniform_int(0, 4));
  for (int i = 0; i < m; ++i) {
    std::vector<lp::Term> terms;
    for (int j = 0; j < n; ++j) {
      const auto coef = rng.uniform_int(-3, 3);
      if (coef != 0) {
        terms.emplace_back(j, static_cast<double>(coef));
      }
    }
    const auto sense_draw = rng.uniform_int(0, 2);
    const auto sense = sense_draw == 0   ? lp::RowSense::LessEqual
                       : sense_draw == 1 ? lp::RowSense::GreaterEqual
                                         : lp::RowSense::Equal;
    out.model.add_constraint(std::move(terms), sense,
                             static_cast<double>(rng.uniform_int(-8, 8)));
  }
  return out;
}

/// Exhaustively enumerates the integer box and returns the best feasible
/// objective, if any.
std::optional<double> brute_force(const RandomMilp& instance) {
  const auto& m = instance.model;
  const int n = m.variable_count();
  std::vector<double> x(static_cast<std::size_t>(n));
  std::optional<double> best;
  std::vector<int> cursor(instance.lower.begin(), instance.lower.end());
  while (true) {
    for (int j = 0; j < n; ++j) {
      x[static_cast<std::size_t>(j)] = cursor[static_cast<std::size_t>(j)];
    }
    if (m.lp().is_feasible(x, 1e-9)) {
      const double v = m.lp().objective_value(x);
      if (!best || v < *best) {
        best = v;
      }
    }
    int j = 0;
    while (j < n) {
      if (++cursor[static_cast<std::size_t>(j)] <= instance.upper[static_cast<std::size_t>(j)]) {
        break;
      }
      cursor[static_cast<std::size_t>(j)] = instance.lower[static_cast<std::size_t>(j)];
      ++j;
    }
    if (j == n) {
      break;
    }
  }
  return best;
}

class MilpBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(MilpBruteForce, MatchesExhaustiveEnumeration) {
  const auto instance = make_random_milp(static_cast<std::uint64_t>(GetParam()) * 31337 + 17);
  const auto expected = brute_force(instance);
  const auto sol = solve_milp(instance.model);
  if (expected.has_value()) {
    ASSERT_EQ(sol.status, MilpStatus::Optimal)
        << "brute force found " << *expected << " but solver says "
        << to_string(sol.status);
    EXPECT_NEAR(sol.objective, *expected, 1e-6);
    EXPECT_TRUE(instance.model.is_feasible(sol.values, 1e-5));
  } else {
    EXPECT_EQ(sol.status, MilpStatus::Infeasible);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MilpBruteForce, ::testing::Range(0, 150));

// Property: the incumbent of a limited search is never better than the true
// optimum (soundness under limits).
class MilpLimitedSearch : public ::testing::TestWithParam<int> {};

TEST_P(MilpLimitedSearch, IncumbentIsSoundUnderNodeLimit) {
  const auto instance = make_random_milp(static_cast<std::uint64_t>(GetParam()) * 7 + 1);
  const auto expected = brute_force(instance);
  MilpOptions opts;
  opts.max_nodes = 3;
  const auto sol = solve_milp(instance.model, opts);
  if (sol.status == MilpStatus::Optimal || sol.status == MilpStatus::Feasible) {
    ASSERT_TRUE(expected.has_value());
    EXPECT_GE(sol.objective, *expected - 1e-6);
    EXPECT_TRUE(instance.model.is_feasible(sol.values, 1e-5));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MilpLimitedSearch, ::testing::Range(0, 60));

}  // namespace
}  // namespace cohls::milp
