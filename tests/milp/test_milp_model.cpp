#include "milp/model.hpp"

#include <gtest/gtest.h>

namespace cohls::milp {
namespace {

TEST(MilpModel, TracksVariableKinds) {
  MilpModel m;
  const auto x = m.add_variable(VarKind::Continuous, 0, 10, 1.0);
  const auto y = m.add_variable(VarKind::Integer, 0, 10, 1.0);
  const auto z = m.add_binary(1.0);
  EXPECT_FALSE(m.is_integer(x));
  EXPECT_TRUE(m.is_integer(y));
  EXPECT_TRUE(m.is_integer(z));
  EXPECT_EQ(m.kind(z), VarKind::Binary);
  EXPECT_EQ(m.variable_count(), 3);
}

TEST(MilpModel, BinaryBoundsEnforced) {
  MilpModel m;
  EXPECT_THROW(m.add_variable(VarKind::Binary, 0, 2, 0.0), PreconditionError);
  EXPECT_THROW(m.add_variable(VarKind::Binary, -1, 1, 0.0), PreconditionError);
}

TEST(MilpModel, FeasibilityRequiresIntegrality) {
  MilpModel m;
  const auto x = m.add_variable(VarKind::Integer, 0, 10, 0.0);
  m.add_constraint({{x, 1.0}}, lp::RowSense::LessEqual, 9.0);
  EXPECT_TRUE(m.is_feasible({3.0}));
  EXPECT_FALSE(m.is_feasible({3.5}));
  EXPECT_FALSE(m.is_feasible({9.5}));
}

TEST(MilpModel, ContinuousColumnsMayBeFractional) {
  MilpModel m;
  m.add_variable(VarKind::Continuous, 0, 10, 0.0);
  EXPECT_TRUE(m.is_feasible({3.5}));
}

TEST(MilpModel, ConstraintCountForwards) {
  MilpModel m;
  const auto x = m.add_binary(0.0);
  m.add_constraint({{x, 1.0}}, lp::RowSense::LessEqual, 1.0);
  EXPECT_EQ(m.constraint_count(), 1);
}

}  // namespace
}  // namespace cohls::milp
