#include <gtest/gtest.h>

#include "milp/branch_and_bound.hpp"
#include "milp/model.hpp"

namespace cohls::milp {
namespace {

constexpr double kTol = 1e-6;

TEST(Milp, PureLpPassesThrough) {
  MilpModel m;
  const auto x = m.add_variable(VarKind::Continuous, 0, 4, -1.0);
  m.add_constraint({{x, 1.0}}, lp::RowSense::LessEqual, 2.5);
  const auto sol = solve_milp(m);
  ASSERT_EQ(sol.status, MilpStatus::Optimal);
  EXPECT_NEAR(sol.objective, -2.5, kTol);
}

TEST(Milp, IntegerRoundingIsNotTruncation) {
  // min -x, x integer, x <= 2.5 -> x = 2 (not 2.5, not 3).
  MilpModel m;
  const auto x = m.add_variable(VarKind::Integer, 0, 10, -1.0);
  m.add_constraint({{x, 1.0}}, lp::RowSense::LessEqual, 2.5);
  const auto sol = solve_milp(m);
  ASSERT_EQ(sol.status, MilpStatus::Optimal);
  EXPECT_NEAR(sol.values[0], 2.0, kTol);
}

TEST(Milp, SmallKnapsack) {
  // max 10a + 13b + 7c st 3a + 4b + 2c <= 6, binaries.
  // Best: a + c = 17 (weight 5); b + c = 20 (weight 6) -> 20.
  MilpModel m;
  const auto a = m.add_binary(-10.0);
  const auto b = m.add_binary(-13.0);
  const auto c = m.add_binary(-7.0);
  m.add_constraint({{a, 3.0}, {b, 4.0}, {c, 2.0}}, lp::RowSense::LessEqual, 6.0);
  const auto sol = solve_milp(m);
  ASSERT_EQ(sol.status, MilpStatus::Optimal);
  EXPECT_NEAR(sol.objective, -20.0, kTol);
  EXPECT_NEAR(sol.values[b], 1.0, kTol);
  EXPECT_NEAR(sol.values[c], 1.0, kTol);
}

TEST(Milp, AssignmentProblem) {
  // 3x3 assignment, cost matrix; optimum = 5 (1+3+1? verify below).
  const double cost[3][3] = {{4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
  // Optimal picks (0,1)=1, (1,0)=2, (2,2)=2 -> 5.
  MilpModel m;
  lp::Col x[3][3];
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      x[i][j] = m.add_binary(cost[i][j]);
    }
  }
  for (int i = 0; i < 3; ++i) {
    std::vector<lp::Term> row, col;
    for (int j = 0; j < 3; ++j) {
      row.emplace_back(x[i][j], 1.0);
      col.emplace_back(x[j][i], 1.0);
    }
    m.add_constraint(std::move(row), lp::RowSense::Equal, 1.0);
    m.add_constraint(std::move(col), lp::RowSense::Equal, 1.0);
  }
  const auto sol = solve_milp(m);
  ASSERT_EQ(sol.status, MilpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 5.0, kTol);
}

TEST(Milp, InfeasibleIntegerSystem) {
  // 2x = 1 with x integer.
  MilpModel m;
  const auto x = m.add_variable(VarKind::Integer, 0, 10, 0.0);
  m.add_constraint({{x, 2.0}}, lp::RowSense::Equal, 1.0);
  EXPECT_EQ(solve_milp(m).status, MilpStatus::Infeasible);
}

TEST(Milp, LpFeasibleButIntegerInfeasible) {
  // x + y = 0.5 with x, y binary: LP relaxation feasible, MILP not.
  MilpModel m;
  const auto x = m.add_binary(0.0);
  const auto y = m.add_binary(0.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, lp::RowSense::Equal, 0.5);
  EXPECT_EQ(solve_milp(m).status, MilpStatus::Infeasible);
}

TEST(Milp, WarmStartAccepted) {
  MilpModel m;
  const auto x = m.add_variable(VarKind::Integer, 0, 100, 1.0);
  m.add_constraint({{x, 1.0}}, lp::RowSense::GreaterEqual, 40.0);
  MilpOptions opts;
  opts.warm_start = std::vector<double>{50.0};
  const auto sol = solve_milp(m, opts);
  ASSERT_EQ(sol.status, MilpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 40.0, kTol);
}

TEST(Milp, InfeasibleWarmStartIgnored) {
  MilpModel m;
  const auto x = m.add_variable(VarKind::Integer, 0, 100, 1.0);
  m.add_constraint({{x, 1.0}}, lp::RowSense::GreaterEqual, 40.0);
  MilpOptions opts;
  opts.warm_start = std::vector<double>{10.0};  // violates the row
  const auto sol = solve_milp(m, opts);
  ASSERT_EQ(sol.status, MilpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 40.0, kTol);
}

TEST(Milp, NodeLimitReportsFeasibleOrNoSolution) {
  // A 12-binary knapsack-style model; one node is not enough to prove
  // optimality but the warm start guarantees an incumbent.
  MilpModel m;
  std::vector<lp::Term> row;
  std::vector<double> start;
  for (int i = 0; i < 12; ++i) {
    const auto b = m.add_binary(-1.0);
    row.emplace_back(b, 2.0);
    start.push_back(0.0);
  }
  // Identical items of weight 2 against an odd capacity: the root LP
  // relaxation is forced fractional (3.5 items), so one node cannot prove
  // optimality.
  m.add_constraint(std::move(row), lp::RowSense::LessEqual, 7.0);
  MilpOptions opts;
  opts.max_nodes = 1;
  opts.warm_start = start;
  const auto sol = solve_milp(m, opts);
  EXPECT_EQ(sol.status, MilpStatus::Feasible);
}

TEST(Milp, BigMDisjunctionPicksASide) {
  // Either x >= 10 or y >= 10 via indicator q: minimize x + y.
  constexpr double kM = 1000.0;
  MilpModel m;
  const auto x = m.add_variable(VarKind::Continuous, 0, kM, 1.0);
  const auto y = m.add_variable(VarKind::Continuous, 0, kM, 1.0);
  const auto q = m.add_binary(0.0);
  // x >= 10 - M q  and  y >= 10 - M (1 - q)
  m.add_constraint({{x, 1.0}, {q, kM}}, lp::RowSense::GreaterEqual, 10.0);
  m.add_constraint({{y, 1.0}, {q, -kM}}, lp::RowSense::GreaterEqual, 10.0 - kM);
  const auto sol = solve_milp(m);
  ASSERT_EQ(sol.status, MilpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 10.0, kTol);
}

TEST(Milp, MixedIntegerContinuous) {
  // min y s.t. y >= 1.5 x, x integer >= 2 -> x = 2, y = 3.
  MilpModel m;
  const auto x = m.add_variable(VarKind::Integer, 2, 10, 0.0);
  const auto y = m.add_variable(VarKind::Continuous, 0, lp::kInfinity, 1.0);
  m.add_constraint({{y, 1.0}, {x, -1.5}}, lp::RowSense::GreaterEqual, 0.0);
  const auto sol = solve_milp(m);
  ASSERT_EQ(sol.status, MilpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 3.0, kTol);
  EXPECT_NEAR(sol.values[x], 2.0, kTol);
}

TEST(Milp, StatusStrings) {
  EXPECT_EQ(to_string(MilpStatus::Optimal), "Optimal");
  EXPECT_EQ(to_string(MilpStatus::Feasible), "Feasible");
  EXPECT_EQ(to_string(MilpStatus::Infeasible), "Infeasible");
  EXPECT_EQ(to_string(MilpStatus::NoSolution), "NoSolution");
}

}  // namespace
}  // namespace cohls::milp
