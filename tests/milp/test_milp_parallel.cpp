// Parallel branch and bound: the work-stealing worker team must be a pure
// acceleration of the sequential depth-first search. Status and optimal
// objective agree with threads == 1 on every instance; incumbent vectors may
// differ only when several optima tie or a budget truncates the search.
// These suites double as the TSan stress target for the parallel solver
// (see .github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "lp/simplex.hpp"
#include "milp/branch_and_bound.hpp"
#include "milp/model.hpp"
#include "util/cancellation.hpp"
#include "util/rng.hpp"

namespace cohls::milp {
namespace {

/// Random bounded MILPs in the same family as test_milp_parity.cpp, sized up
/// so the parallel team actually gets subtrees to steal.
MilpModel make_random_milp(std::uint64_t seed) {
  Rng rng{seed};
  MilpModel model;
  const int n = static_cast<int>(rng.uniform_int(4, 12));
  for (int j = 0; j < n; ++j) {
    const auto shape = rng.uniform_int(0, 3);
    if (shape == 0) {
      model.add_binary(static_cast<double>(rng.uniform_int(-5, 5)));
    } else if (shape == 1) {
      const int lb = static_cast<int>(rng.uniform_int(-3, 1));
      model.add_variable(VarKind::Continuous, lb, lb + rng.uniform_int(1, 6),
                         static_cast<double>(rng.uniform_int(-4, 4)));
    } else {
      const int lb = static_cast<int>(rng.uniform_int(-2, 1));
      model.add_variable(VarKind::Integer, lb, lb + rng.uniform_int(0, 5),
                         static_cast<double>(rng.uniform_int(-5, 5)));
    }
  }
  const int m = static_cast<int>(rng.uniform_int(1, 8));
  for (int i = 0; i < m; ++i) {
    std::vector<lp::Term> terms;
    for (int j = 0; j < n; ++j) {
      const auto coef = rng.uniform_int(-3, 3);
      if (coef != 0) {
        terms.emplace_back(j, static_cast<double>(coef));
      }
    }
    const auto sense_draw = rng.uniform_int(0, 2);
    const auto sense = sense_draw == 0   ? lp::RowSense::LessEqual
                       : sense_draw == 1 ? lp::RowSense::GreaterEqual
                                         : lp::RowSense::Equal;
    model.add_constraint(std::move(terms), sense,
                         static_cast<double>(rng.uniform_int(-10, 10)));
  }
  return model;
}

/// A deliberately branchy knapsack family: identical even weights against an
/// odd capacity keep every relaxation fractional, so the tree is deep enough
/// for stealing to happen.
MilpModel make_branchy_knapsack(int items, double capacity) {
  MilpModel model;
  std::vector<lp::Term> row;
  for (int i = 0; i < items; ++i) {
    row.emplace_back(model.add_binary(-1.0 - 0.01 * i), 2.0);
  }
  model.add_constraint(std::move(row), lp::RowSense::LessEqual, capacity);
  return model;
}

MilpOptions parallel_options(int threads) {
  MilpOptions options;
  options.threads = threads;
  options.time_limit_seconds = 0.0;  // node budgets only: deterministic work
  options.cold_solve_threshold = 0;  // exercise the revised path regardless of size
  return options;
}

class MilpParallelParity : public ::testing::TestWithParam<int> {};

TEST_P(MilpParallelParity, FourWorkersAgreeWithSequential) {
  const MilpModel model =
      make_random_milp(static_cast<std::uint64_t>(GetParam()) * 69621 + 11);
  const MilpSolution seq = solve_milp(model, parallel_options(1));
  const MilpSolution par = solve_milp(model, parallel_options(4));
  ASSERT_EQ(par.status, seq.status)
      << to_string(par.status) << " vs " << to_string(seq.status);
  // Presolve can prove infeasibility before the worker team launches, in
  // which case the solve legitimately reports a team of one.
  EXPECT_EQ(par.threads_used, par.nodes > 0 ? 4 : 1);
  EXPECT_EQ(seq.threads_used, 1);
  EXPECT_EQ(seq.steals, 0);
  if (seq.status == MilpStatus::Optimal) {
    EXPECT_NEAR(par.objective, seq.objective, 1e-6);
    EXPECT_TRUE(model.is_feasible(par.values, 1e-5));
    EXPECT_NEAR(par.best_bound, seq.best_bound, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MilpParallelParity, ::testing::Range(0, 80));

TEST(MilpParallel, StealsAndWarmSolvesOnBranchyInstance) {
  const MilpModel model = make_branchy_knapsack(16, 13.0);
  const MilpSolution seq = solve_milp(model, parallel_options(1));
  const MilpSolution par = solve_milp(model, parallel_options(4));
  ASSERT_EQ(seq.status, MilpStatus::Optimal);
  ASSERT_EQ(par.status, MilpStatus::Optimal);
  EXPECT_NEAR(par.objective, seq.objective, 1e-6);
  EXPECT_GT(par.nodes, 1);
  // The team genuinely shared the tree and kept warm-starting children.
  EXPECT_GT(par.steals, 0);
  EXPECT_GT(par.incumbent_updates, 0);
  EXPECT_GT(par.lp_warm_solves, 0);
  EXPECT_GE(par.worker_idle_seconds, 0.0);
}

TEST(MilpParallel, EqualNodeBudgetsAcrossWorkerCounts) {
  // On a truncated search every configuration must expand exactly the node
  // budget — the global counter, not wall clock, ends the search.
  const MilpModel model = make_branchy_knapsack(24, 21.0);
  for (const int threads : {1, 2, 4}) {
    MilpOptions options = parallel_options(threads);
    options.max_nodes = 40;
    options.enable_rounding_heuristic = false;  // keep the tree from closing early
    const MilpSolution sol = solve_milp(model, options);
    EXPECT_EQ(sol.nodes, 40) << "threads " << threads;
    EXPECT_NE(sol.status, MilpStatus::Optimal) << "threads " << threads;
  }
}

TEST(MilpParallel, CancellationStopsAllWorkersPromptly) {
  const MilpModel model = make_branchy_knapsack(30, 29.0);
  CancellationSource source;
  MilpOptions options = parallel_options(4);
  options.max_nodes = 0;  // unbounded: only the token ends this search
  options.enable_rounding_heuristic = false;
  options.cancel = source.token();

  std::thread trigger([&source] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    source.request_stop();
  });
  const auto begin = std::chrono::steady_clock::now();
  const MilpSolution sol = solve_milp(model, options);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count();
  trigger.join();

  EXPECT_TRUE(sol.cancelled);
  EXPECT_NE(sol.status, MilpStatus::Optimal);
  // Every worker polls the token per node; a cancelled solve must return in
  // token-poll time, not tree-exhaustion time.
  EXPECT_LT(elapsed, 5.0);
  if (sol.status == MilpStatus::Feasible) {
    EXPECT_TRUE(model.is_feasible(sol.values, 1e-5));
  }
}

TEST(MilpParallel, SequentialSolveLeavesParallelStatsAtDefaults) {
  const MilpSolution sol =
      solve_milp(make_branchy_knapsack(10, 7.0), parallel_options(1));
  ASSERT_EQ(sol.status, MilpStatus::Optimal);
  EXPECT_EQ(sol.threads_used, 1);
  EXPECT_EQ(sol.steals, 0);
  EXPECT_EQ(sol.incumbent_updates, 0);
  EXPECT_EQ(sol.incumbent_races, 0);
  EXPECT_EQ(sol.worker_idle_seconds, 0.0);
}

TEST(MilpParallel, DenseAlgorithmRunsParallelToo) {
  // The worker team also works over per-worker dense scratch models.
  const MilpModel model = make_branchy_knapsack(12, 9.0);
  MilpOptions options = parallel_options(4);
  options.simplex.algorithm = lp::SimplexAlgorithm::Dense;
  options.presolve = false;
  const MilpSolution seq_ref = solve_milp(model, parallel_options(1));
  const MilpSolution sol = solve_milp(model, options);
  ASSERT_EQ(sol.status, MilpStatus::Optimal);
  EXPECT_NEAR(sol.objective, seq_ref.objective, 1e-6);
  EXPECT_EQ(sol.lp_warm_solves, 0);
  EXPECT_GT(sol.lp_cold_solves, 0);
}

TEST(MilpParallelStress, RandomInstancesUnderContention) {
  // Deliberately oversubscribed relative to the instance sizes so workers
  // contend on the deques and the shared incumbent — the TSan target.
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    const MilpModel model = make_random_milp(seed * 40503 + 3);
    MilpOptions options = parallel_options(4);
    const MilpSolution par = solve_milp(model, options);
    const MilpSolution seq = solve_milp(model, parallel_options(1));
    ASSERT_EQ(par.status, seq.status) << "seed " << seed;
    if (seq.status == MilpStatus::Optimal) {
      ASSERT_NEAR(par.objective, seq.objective, 1e-6) << "seed " << seed;
      ASSERT_TRUE(model.is_feasible(par.values, 1e-5)) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace cohls::milp
