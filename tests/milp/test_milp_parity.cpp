// End-to-end parity of branch and bound across its solver configurations:
// warm-started revised simplex vs the dense tableau, with root presolve on
// and off. All four must agree on status and optimal objective — the warm
// dual re-solves and the reduced-space search are pure accelerations.
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "lp/simplex.hpp"
#include "milp/branch_and_bound.hpp"
#include "milp/model.hpp"
#include "util/rng.hpp"

namespace cohls::milp {
namespace {

MilpModel make_random_milp(std::uint64_t seed) {
  Rng rng{seed};
  MilpModel model;
  const int n = static_cast<int>(rng.uniform_int(2, 8));
  for (int j = 0; j < n; ++j) {
    const auto shape = rng.uniform_int(0, 3);
    if (shape == 0) {
      model.add_binary(static_cast<double>(rng.uniform_int(-5, 5)));
    } else if (shape == 1) {
      const int lb = static_cast<int>(rng.uniform_int(-3, 1));
      model.add_variable(VarKind::Continuous, lb, lb + rng.uniform_int(1, 6),
                         static_cast<double>(rng.uniform_int(-4, 4)));
    } else {
      const int lb = static_cast<int>(rng.uniform_int(-2, 1));
      model.add_variable(VarKind::Integer, lb, lb + rng.uniform_int(0, 5),
                         static_cast<double>(rng.uniform_int(-5, 5)));
    }
  }
  const int m = static_cast<int>(rng.uniform_int(0, 6));
  for (int i = 0; i < m; ++i) {
    std::vector<lp::Term> terms;
    for (int j = 0; j < n; ++j) {
      const auto coef = rng.uniform_int(-3, 3);
      if (coef != 0) {
        terms.emplace_back(j, static_cast<double>(coef));
      }
    }
    const auto sense_draw = rng.uniform_int(0, 2);
    const auto sense = sense_draw == 0   ? lp::RowSense::LessEqual
                       : sense_draw == 1 ? lp::RowSense::GreaterEqual
                                         : lp::RowSense::Equal;
    model.add_constraint(std::move(terms), sense,
                         static_cast<double>(rng.uniform_int(-8, 8)));
  }
  return model;
}

MilpOptions make_options(lp::SimplexAlgorithm algorithm, bool presolve) {
  MilpOptions options;
  options.simplex.algorithm = algorithm;
  options.presolve = presolve;
  // The random instances here are tiny; disable the cold-solve fallback so
  // the Revised configurations genuinely exercise the revised solver.
  options.cold_solve_threshold = 0;
  return options;
}

class MilpSolverParity : public ::testing::TestWithParam<int> {};

TEST_P(MilpSolverParity, AllConfigurationsAgree) {
  const MilpModel model =
      make_random_milp(static_cast<std::uint64_t>(GetParam()) * 48271 + 7);
  const std::array<MilpOptions, 4> configs = {
      make_options(lp::SimplexAlgorithm::Revised, true),
      make_options(lp::SimplexAlgorithm::Revised, false),
      make_options(lp::SimplexAlgorithm::Dense, true),
      make_options(lp::SimplexAlgorithm::Dense, false),
  };
  const MilpSolution reference = solve_milp(model, configs[0]);
  for (std::size_t i = 1; i < configs.size(); ++i) {
    const MilpSolution sol = solve_milp(model, configs[i]);
    ASSERT_EQ(sol.status, reference.status)
        << "config " << i << ": " << to_string(sol.status) << " vs "
        << to_string(reference.status);
    if (reference.status == MilpStatus::Optimal) {
      EXPECT_NEAR(sol.objective, reference.objective, 1e-6) << "config " << i;
      EXPECT_TRUE(model.is_feasible(sol.values, 1e-5)) << "config " << i;
    }
  }
  if (reference.status == MilpStatus::Optimal) {
    EXPECT_TRUE(model.is_feasible(reference.values, 1e-5));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MilpSolverParity, ::testing::Range(0, 200));

TEST(MilpSolverStats, WarmSolvesDominateOnBranchyInstances) {
  // Identical weight-2 items against an odd capacity force a fractional
  // relaxation at every level, so the search must branch repeatedly; every
  // child node should warm-start off its parent's basis.
  MilpModel m;
  std::vector<lp::Term> row;
  for (int i = 0; i < 10; ++i) {
    row.emplace_back(m.add_binary(-1.0 - 0.01 * i), 2.0);
  }
  m.add_constraint(std::move(row), lp::RowSense::LessEqual, 7.0);
  MilpOptions options;
  options.cold_solve_threshold = 0;  // small on purpose; still wants revised
  const MilpSolution sol = solve_milp(m, options);
  ASSERT_EQ(sol.status, MilpStatus::Optimal);
  EXPECT_NEAR(sol.objective, -3.0 - 0.01 * (9 + 8 + 7), 1e-6);
  EXPECT_GT(sol.nodes, 1);
  EXPECT_EQ(sol.lp_cold_solves, 1);  // only the root solves from scratch
  EXPECT_GE(sol.lp_warm_solves, sol.nodes - 1);
  EXPECT_GT(sol.lp_pivots, 0);
}

TEST(MilpSolverStats, DenseAlgorithmCountsColdSolves) {
  MilpModel m;
  const auto x = m.add_variable(VarKind::Integer, 0, 10, -1.0);
  m.add_constraint({{x, 2.0}}, lp::RowSense::LessEqual, 5.0);
  MilpOptions options = make_options(lp::SimplexAlgorithm::Dense, false);
  const MilpSolution sol = solve_milp(m, options);
  ASSERT_EQ(sol.status, MilpStatus::Optimal);
  EXPECT_NEAR(sol.objective, -2.0, 1e-6);
  EXPECT_EQ(sol.lp_warm_solves, 0);
  EXPECT_EQ(sol.lp_cold_solves, sol.nodes);
}

TEST(MilpPresolve, FullyFixedModelRestoresSolution) {
  // Every column pinned by singleton equalities: presolve empties the model
  // and the solver must still report the restored incumbent.
  MilpModel m;
  const auto x = m.add_variable(VarKind::Integer, 0, 10, 2.0);
  const auto y = m.add_variable(VarKind::Continuous, 0, 10, 1.0);
  m.add_constraint({{x, 1.0}}, lp::RowSense::Equal, 4.0);
  m.add_constraint({{y, 2.0}}, lp::RowSense::Equal, 3.0);
  const MilpSolution sol = solve_milp(m);
  ASSERT_EQ(sol.status, MilpStatus::Optimal);
  EXPECT_NEAR(sol.values[x], 4.0, 1e-9);
  EXPECT_NEAR(sol.values[y], 1.5, 1e-9);
  EXPECT_NEAR(sol.objective, 9.5, 1e-9);
  EXPECT_NEAR(sol.best_bound, 9.5, 1e-9);
}

TEST(MilpPresolve, IntegerFixedToFractionIsInfeasible) {
  MilpModel m;
  const auto x = m.add_variable(VarKind::Integer, 0, 10, 1.0);
  m.add_constraint({{x, 2.0}}, lp::RowSense::Equal, 5.0);  // x = 2.5
  EXPECT_EQ(solve_milp(m).status, MilpStatus::Infeasible);
  // The dense/no-presolve configuration must agree.
  EXPECT_EQ(solve_milp(m, make_options(lp::SimplexAlgorithm::Dense, false)).status,
            MilpStatus::Infeasible);
}

}  // namespace
}  // namespace cohls::milp
