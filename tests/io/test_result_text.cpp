#include "io/result_text.hpp"

#include <gtest/gtest.h>

#include "assays/benchmarks.hpp"
#include "core/progressive_resynthesis.hpp"
#include "schedule/validate.hpp"

namespace cohls::io {
namespace {

struct Fixture {
  model::Assay assay = assays::gene_expression_assay(3);
  core::SynthesisReport report;

  Fixture() {
    core::SynthesisOptions options;
    options.max_devices = 12;
    options.layering.indeterminate_threshold = 3;
    report = core::synthesize(assay, options);
  }
};

void expect_same(const schedule::SynthesisResult& a, const schedule::SynthesisResult& b) {
  ASSERT_EQ(a.devices.size(), b.devices.size());
  ASSERT_EQ(a.devices.max_devices(), b.devices.max_devices());
  for (int d = 0; d < a.devices.size(); ++d) {
    const auto& da = a.devices.device(DeviceId{d});
    const auto& db = b.devices.device(DeviceId{d});
    EXPECT_EQ(da.config, db.config);
    EXPECT_EQ(da.created_in, db.created_in);
  }
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (std::size_t l = 0; l < a.layers.size(); ++l) {
    ASSERT_EQ(a.layers[l].items.size(), b.layers[l].items.size());
    for (std::size_t i = 0; i < a.layers[l].items.size(); ++i) {
      const auto& ia = a.layers[l].items[i];
      const auto& ib = b.layers[l].items[i];
      EXPECT_EQ(ia.op, ib.op);
      EXPECT_EQ(ia.device, ib.device);
      EXPECT_EQ(ia.start, ib.start);
      EXPECT_EQ(ia.duration, ib.duration);
      EXPECT_EQ(ia.transport, ib.transport);
    }
  }
}

TEST(ResultText, RoundTripsASynthesizedResult) {
  const Fixture f;
  const std::string text = to_text(f.report.result, f.assay);
  const schedule::SynthesisResult parsed = result_from_text(text, f.assay);
  expect_same(f.report.result, parsed);
  // The reloaded result still satisfies every constraint.
  const auto violations =
      schedule::validate_result(parsed, f.assay, f.report.transport);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(ResultText, SerializedFormIsStable) {
  const Fixture f;
  const std::string text = to_text(f.report.result, f.assay);
  EXPECT_EQ(text, to_text(result_from_text(text, f.assay), f.assay));
}

TEST(ResultText, ParsesAMinimalDocument) {
  model::Assay assay{"t"};
  model::OperationSpec spec;
  spec.name = "a";
  spec.duration = 10_min;
  (void)assay.add_operation(spec);
  const auto result = result_from_text(R"(
result max_devices=3
device 0 container=chamber capacity=tiny created_in=0
layer 0
schedule op=0 device=0 start=0 duration=10 transport=0
)",
                                       assay);
  EXPECT_EQ(result.devices.size(), 1);
  ASSERT_EQ(result.layers.size(), 1u);
  EXPECT_EQ(result.layers[0].items[0].duration, 10_min);
}

TEST(ResultText, RejectsMissingHeader) {
  const model::Assay assay = assays::kinase_activity_assay(1);
  EXPECT_THROW((void)result_from_text("layer 0\n", assay), ParseError);
}

TEST(ResultText, RejectsUndeclaredDevice) {
  model::Assay assay{"t"};
  model::OperationSpec spec;
  spec.name = "a";
  spec.duration = 10_min;
  (void)assay.add_operation(spec);
  EXPECT_THROW((void)result_from_text(R"(
result max_devices=3
layer 0
schedule op=0 device=0 start=0 duration=10 transport=0
)",
                                      assay),
               ParseError);
}

TEST(ResultText, RejectsUnknownOperation) {
  model::Assay assay{"t"};
  model::OperationSpec spec;
  spec.name = "a";
  spec.duration = 10_min;
  (void)assay.add_operation(spec);
  EXPECT_THROW((void)result_from_text(R"(
result max_devices=3
device 0 container=chamber capacity=tiny created_in=0
layer 0
schedule op=7 device=0 start=0 duration=10 transport=0
)",
                                      assay),
               ParseError);
}

TEST(ResultText, RejectsInvalidDeviceConfig) {
  const model::Assay assay = assays::kinase_activity_assay(1);
  EXPECT_THROW((void)result_from_text(R"(
result max_devices=3
device 0 container=ring capacity=tiny created_in=0
)",
                                      assay),
               ParseError);
}

TEST(ResultText, RejectsNonDenseLayers) {
  const model::Assay assay = assays::kinase_activity_assay(1);
  EXPECT_THROW((void)result_from_text(R"(
result max_devices=3
layer 1
)",
                                      assay),
               ParseError);
}

TEST(ResultText, ErrorsCarryLineNumbers) {
  const model::Assay assay = assays::kinase_activity_assay(1);
  try {
    (void)result_from_text("result max_devices=3\nbogus 1\n", assay);
    FAIL();
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace cohls::io
