#include "io/export.hpp"

#include <gtest/gtest.h>

#include "assays/benchmarks.hpp"
#include "core/progressive_resynthesis.hpp"

namespace cohls::io {
namespace {

struct Fixture {
  model::Assay assay = assays::kinase_activity_assay(1);
  core::SynthesisReport report;

  Fixture() {
    core::SynthesisOptions options;
    options.max_devices = 10;
    report = core::synthesize(assay, options);
  }
};

TEST(Gantt, ContainsEveryDeviceAndOperationLegend) {
  const Fixture f;
  const std::string gantt = to_gantt(f.report.result, f.assay);
  for (const auto& [op, device] : f.report.result.binding()) {
    EXPECT_NE(gantt.find("device#" + std::to_string(device.value())), std::string::npos);
    EXPECT_NE(gantt.find(f.assay.operation(op).name()), std::string::npos);
  }
  EXPECT_NE(gantt.find("== layer 1"), std::string::npos);
}

TEST(Gantt, ResolutionShortensRows) {
  const Fixture f;
  const std::string fine = to_gantt(f.report.result, f.assay, 1_min);
  const std::string coarse = to_gantt(f.report.result, f.assay, 10_min);
  EXPECT_GT(fine.size(), coarse.size());
}

TEST(Gantt, RejectsNonPositiveResolution) {
  const Fixture f;
  EXPECT_THROW((void)to_gantt(f.report.result, f.assay, Minutes{0}), PreconditionError);
}

TEST(Csv, OneRowPerOperationPlusHeader) {
  const Fixture f;
  const std::string csv = to_csv(f.report.result, f.assay);
  const auto rows = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(rows, f.assay.operation_count() + 1);
  EXPECT_NE(csv.find("layer,operation,name,device,start,end,indeterminate"),
            std::string::npos);
}

TEST(Csv, EscapesCommasInNames) {
  model::Assay assay{"t"};
  model::OperationSpec spec;
  spec.name = "mix, then heat";
  spec.duration = 5_min;
  (void)assay.add_operation(spec);
  core::SynthesisOptions options;
  options.max_devices = 2;
  const auto report = core::synthesize(assay, options);
  const std::string csv = to_csv(report.result, assay);
  EXPECT_NE(csv.find("mix; then heat"), std::string::npos);
}

TEST(Dot, DeclaresUsedDevicesAndPaths) {
  const Fixture f;
  const std::string dot = to_dot(f.report.result, f.assay);
  EXPECT_EQ(dot.rfind("graph chip {", 0), 0u);
  for (const auto& [op, device] : f.report.result.binding()) {
    (void)op;
    EXPECT_NE(dot.find("d" + std::to_string(device.value()) + " [label="),
              std::string::npos);
  }
  const auto paths = f.report.result.paths(f.assay);
  for (const auto& [a, b] : paths) {
    const std::string edge =
        "d" + std::to_string(a.value()) + " -- d" + std::to_string(b.value());
    EXPECT_NE(dot.find(edge), std::string::npos);
  }
}

TEST(Dot, NoPathsMeansNoEdges) {
  model::Assay assay{"t"};
  model::OperationSpec spec;
  spec.name = "solo";
  spec.duration = 5_min;
  (void)assay.add_operation(spec);
  core::SynthesisOptions options;
  options.max_devices = 2;
  const auto report = core::synthesize(assay, options);
  const std::string dot = to_dot(report.result, assay);
  EXPECT_EQ(dot.find("--"), std::string::npos);
}

}  // namespace
}  // namespace cohls::io
