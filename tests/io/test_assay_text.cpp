#include "io/assay_text.hpp"

#include <gtest/gtest.h>

#include "assays/benchmarks.hpp"
#include "assays/random_assay.hpp"

namespace cohls::io {
namespace {

void expect_same(const model::Assay& a, const model::Assay& b) {
  ASSERT_EQ(a.name(), b.name());
  ASSERT_EQ(a.operation_count(), b.operation_count());
  ASSERT_EQ(a.registry().count(), b.registry().count());
  for (model::AccessoryId id = 0; id < a.registry().count(); ++id) {
    EXPECT_EQ(a.registry().name(id), b.registry().name(id));
    EXPECT_DOUBLE_EQ(a.registry().processing_cost(id), b.registry().processing_cost(id));
  }
  for (int i = 0; i < a.operation_count(); ++i) {
    const auto& oa = a.operation(OperationId{i});
    const auto& ob = b.operation(OperationId{i});
    EXPECT_EQ(oa.name(), ob.name());
    EXPECT_EQ(oa.duration(), ob.duration());
    EXPECT_EQ(oa.container(), ob.container());
    EXPECT_EQ(oa.capacity(), ob.capacity());
    EXPECT_EQ(oa.accessories(), ob.accessories());
    EXPECT_EQ(oa.indeterminate(), ob.indeterminate());
    EXPECT_EQ(oa.parents(), ob.parents());
  }
}

TEST(AssayText, ParsesAMinimalDocument) {
  const model::Assay assay = assay_from_text(R"(
assay "tiny"
operation 0 "mix" duration=10
)");
  EXPECT_EQ(assay.name(), "tiny");
  EXPECT_EQ(assay.operation_count(), 1);
  EXPECT_EQ(assay.operation(OperationId{0}).duration(), 10_min);
}

TEST(AssayText, ParsesEveryField) {
  const model::Assay assay = assay_from_text(R"(
assay "full"  # a comment
accessory "droplet sorter" cost=3.5
operation 0 "capture" duration=8 container=ring capacity=medium accessories={pump; cell trap} indeterminate
operation 1 "sort" duration=12 accessories={droplet sorter} parents=0
)");
  const auto& capture = assay.operation(OperationId{0});
  EXPECT_EQ(capture.container(), model::ContainerKind::Ring);
  EXPECT_EQ(capture.capacity(), model::Capacity::Medium);
  EXPECT_TRUE(capture.indeterminate());
  EXPECT_TRUE(capture.accessories().contains(model::BuiltinAccessory::kPump));
  EXPECT_TRUE(capture.accessories().contains(model::BuiltinAccessory::kCellTrap));
  const auto& sort = assay.operation(OperationId{1});
  EXPECT_EQ(sort.parents(), std::vector<OperationId>{OperationId{0}});
  const auto sorter = assay.registry().find("droplet sorter");
  ASSERT_GE(sorter, 0);
  EXPECT_TRUE(sort.accessories().contains(sorter));
}

TEST(AssayText, RoundTripsTheBenchmarkAssays) {
  for (const model::Assay& original :
       {assays::kinase_activity_assay(), assays::gene_expression_assay(3),
        assays::rt_qpcr_assay(2)}) {
    const model::Assay parsed = assay_from_text(to_text(original));
    expect_same(original, parsed);
  }
}

TEST(AssayText, SerializedFormIsStable) {
  const model::Assay assay = assay_from_text(R"(
assay "stable"
operation 0 "a" duration=5
operation 1 "b" duration=6 parents=0
)");
  EXPECT_EQ(to_text(assay), to_text(assay_from_text(to_text(assay))));
}

TEST(AssayText, RejectsMissingHeader) {
  EXPECT_THROW((void)assay_from_text("operation 0 \"a\" duration=5\n"), ParseError);
}

TEST(AssayText, RejectsDuplicateHeader) {
  EXPECT_THROW((void)assay_from_text("assay \"a\"\nassay \"b\"\n"), ParseError);
}

TEST(AssayText, RejectsUnknownDirectiveWithLineNumber) {
  try {
    (void)assay_from_text("assay \"a\"\nfrobnicate 1\n");
    FAIL();
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(AssayText, RejectsUnknownAccessory) {
  EXPECT_THROW((void)assay_from_text(R"(
assay "a"
operation 0 "x" duration=5 accessories={tractor beam}
)"),
               ParseError);
}

TEST(AssayText, RejectsNonDenseIds) {
  EXPECT_THROW((void)assay_from_text(R"(
assay "a"
operation 1 "x" duration=5
)"),
               ParseError);
}

TEST(AssayText, RejectsForwardParents) {
  EXPECT_THROW((void)assay_from_text(R"(
assay "a"
operation 0 "x" duration=5 parents=1
operation 1 "y" duration=5
)"),
               ParseError);
}

TEST(AssayText, RejectsMalformedNumbers) {
  EXPECT_THROW((void)assay_from_text(R"(
assay "a"
operation 0 "x" duration=abc
)"),
               ParseError);
}

TEST(AssayText, RejectsUnterminatedString) {
  EXPECT_THROW((void)assay_from_text("assay \"oops\n"), ParseError);
}

class AssayTextRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(AssayTextRoundTrip, RandomAssaysRoundTrip) {
  assays::RandomAssayOptions gen;
  gen.operations = 20;
  gen.indeterminate_probability = 0.3;
  const model::Assay original =
      assays::random_assay(static_cast<std::uint64_t>(GetParam()) * 17 + 1, gen);
  const model::Assay parsed = assay_from_text(to_text(original));
  expect_same(original, parsed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssayTextRoundTrip, ::testing::Range(0, 15));

}  // namespace
}  // namespace cohls::io
