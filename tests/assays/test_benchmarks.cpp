#include "assays/benchmarks.hpp"

#include <gtest/gtest.h>

#include "graph/traversal.hpp"
#include "model/compatibility.hpp"

namespace cohls::assays {
namespace {

TEST(Benchmarks, Case1HasPaperDimensions) {
  const model::Assay assay = kinase_activity_assay();
  EXPECT_EQ(assay.operation_count(), 16);
  EXPECT_EQ(assay.indeterminate_count(), 0);
}

TEST(Benchmarks, Case2HasPaperDimensions) {
  const model::Assay assay = gene_expression_assay();
  EXPECT_EQ(assay.operation_count(), 70);
  EXPECT_EQ(assay.indeterminate_count(), 10);
}

TEST(Benchmarks, Case3HasPaperDimensions) {
  const model::Assay assay = rt_qpcr_assay();
  EXPECT_EQ(assay.operation_count(), 120);
  EXPECT_EQ(assay.indeterminate_count(), 20);
}

TEST(Benchmarks, ReplicationScalesLinearly) {
  EXPECT_EQ(kinase_activity_assay(3).operation_count(), 24);
  EXPECT_EQ(gene_expression_assay(2).operation_count(), 14);
  EXPECT_EQ(rt_qpcr_assay(5).operation_count(), 30);
}

TEST(Benchmarks, RejectsNonPositiveReplication) {
  EXPECT_THROW((void)kinase_activity_assay(0), PreconditionError);
  EXPECT_THROW((void)gene_expression_assay(-1), PreconditionError);
  EXPECT_THROW((void)rt_qpcr_assay(0), PreconditionError);
}

TEST(Benchmarks, AllGraphsAreDags) {
  for (const model::Assay& assay :
       {kinase_activity_assay(), gene_expression_assay(), rt_qpcr_assay()}) {
    EXPECT_FALSE(graph::has_cycle(assay.dependency_graph())) << assay.name();
  }
}

TEST(Benchmarks, EveryOperationHasAnAdmissibleDevice) {
  for (const model::Assay& assay :
       {kinase_activity_assay(), gene_expression_assay(), rt_qpcr_assay()}) {
    for (const auto& op : assay.operations()) {
      EXPECT_FALSE(model::admissible_configs(op).empty())
          << op.name() << " in " << assay.name();
    }
  }
}

TEST(Benchmarks, IndeterminateOpsAreTheCaptures) {
  const model::Assay assay = gene_expression_assay();
  for (const auto id : assay.indeterminate_operations()) {
    EXPECT_NE(assay.operation(id).name().find("capture"), std::string::npos);
    EXPECT_TRUE(assay.operation(id).parents().empty());
  }
}

TEST(Benchmarks, LanesAreIndependentSubgraphs) {
  // Replicated protocols must not cross-link: every dependency stays within
  // one replicate's id range.
  const model::Assay assay = rt_qpcr_assay(3);
  const int per_cell = assay.operation_count() / 3;
  for (const auto& op : assay.operations()) {
    for (const auto parent : op.parents()) {
      EXPECT_EQ(op.id().value() / per_cell, parent.value() / per_cell);
    }
  }
}

TEST(Benchmarks, ComponentRequirementsMatchTheProtocols) {
  const model::Assay assay = rt_qpcr_assay(1);
  // qPCR needs thermal cycling + in-situ fluorescence on a ring mixer.
  const auto& qpcr = assay.operation(OperationId{3});
  EXPECT_EQ(qpcr.container(), model::ContainerKind::Ring);
  EXPECT_TRUE(qpcr.accessories().contains(model::BuiltinAccessory::kHeatingPad));
  EXPECT_TRUE(qpcr.accessories().contains(model::BuiltinAccessory::kOpticalSystem));
  // The melt-curve read-out only needs optics, container-agnostic — the
  // component-oriented binding can put it on the qPCR ring.
  const auto& melt = assay.operation(OperationId{5});
  EXPECT_FALSE(melt.container().has_value());
  EXPECT_TRUE(model::requirements_subsume(qpcr, melt));
}

}  // namespace
}  // namespace cohls::assays
