#include "assays/random_assay.hpp"

#include <gtest/gtest.h>

#include "graph/traversal.hpp"
#include "model/compatibility.hpp"

namespace cohls::assays {
namespace {

TEST(RandomAssay, Deterministic) {
  const model::Assay a = random_assay(42);
  const model::Assay b = random_assay(42);
  ASSERT_EQ(a.operation_count(), b.operation_count());
  for (int i = 0; i < a.operation_count(); ++i) {
    const auto& oa = a.operation(OperationId{i});
    const auto& ob = b.operation(OperationId{i});
    EXPECT_EQ(oa.duration(), ob.duration());
    EXPECT_EQ(oa.indeterminate(), ob.indeterminate());
    EXPECT_EQ(oa.accessories(), ob.accessories());
    EXPECT_EQ(oa.parents(), ob.parents());
  }
}

TEST(RandomAssay, DifferentSeedsDiffer) {
  const model::Assay a = random_assay(1);
  const model::Assay b = random_assay(2);
  bool any_difference = a.operation_count() != b.operation_count();
  for (int i = 0; !any_difference && i < a.operation_count(); ++i) {
    const auto& oa = a.operation(OperationId{i});
    const auto& ob = b.operation(OperationId{i});
    any_difference = oa.duration() != ob.duration() || oa.parents() != ob.parents() ||
                     !(oa.accessories() == ob.accessories());
  }
  EXPECT_TRUE(any_difference);
}

TEST(RandomAssay, HonorsOperationCount) {
  RandomAssayOptions options;
  options.operations = 31;
  EXPECT_EQ(random_assay(7, options).operation_count(), 31);
}

TEST(RandomAssay, RespectsMaxParents) {
  RandomAssayOptions options;
  options.operations = 40;
  options.edge_probability = 0.9;
  options.max_parents = 2;
  const model::Assay assay = random_assay(11, options);
  for (const auto& op : assay.operations()) {
    EXPECT_LE(op.parents().size(), 2u);
  }
}

TEST(RandomAssay, ZeroIndeterminateProbabilityMeansNone) {
  RandomAssayOptions options;
  options.operations = 50;
  options.indeterminate_probability = 0.0;
  EXPECT_EQ(random_assay(3, options).indeterminate_count(), 0);
}

class RandomAssayProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomAssayProperty, AlwaysWellFormed) {
  RandomAssayOptions options;
  options.operations = 25;
  options.indeterminate_probability = 0.3;
  const model::Assay assay =
      random_assay(static_cast<std::uint64_t>(GetParam()) * 53 + 2, options);
  EXPECT_FALSE(graph::has_cycle(assay.dependency_graph()));
  for (const auto& op : assay.operations()) {
    EXPECT_GE(op.duration(), options.min_duration);
    EXPECT_LE(op.duration(), options.max_duration);
    EXPECT_FALSE(model::admissible_configs(op).empty())
        << "spec must always be satisfiable";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAssayProperty, ::testing::Range(0, 20));

}  // namespace
}  // namespace cohls::assays
