#include "layout/transport_from_layout.hpp"

#include <gtest/gtest.h>

#include "assays/benchmarks.hpp"
#include "core/progressive_resynthesis.hpp"
#include "schedule/validate.hpp"

namespace cohls::layout {
namespace {

TEST(TransportFromLayout, SameDeviceEdgesAreZero) {
  model::Assay assay{"t"};
  model::OperationSpec sa;
  sa.name = "a";
  sa.duration = 10_min;
  const auto a = assay.add_operation(sa);
  model::OperationSpec sb;
  sb.name = "b";
  sb.duration = 10_min;
  sb.parents = {a};
  const auto b = assay.add_operation(sb);

  schedule::SynthesisResult result;
  result.devices = model::DeviceInventory(2);
  const auto d0 = result.devices.instantiate(
      {model::ContainerKind::Chamber, model::Capacity::Tiny, {}}, LayerId{0});
  result.layers.push_back({LayerId{0},
                           {{a, d0, 0_min, 10_min, 0_min},
                            {b, d0, 10_min, 10_min, 0_min}}});
  const Placement placement({d0}, {GridPosition{0, 0}}, 1);
  const auto plan = transport_from_layout(placement, result, assay, {});
  EXPECT_EQ(plan.edge_time(a, b), 0_min);
}

TEST(TransportFromLayout, TimeGrowsWithDistance) {
  model::Assay assay{"t"};
  model::OperationSpec spec;
  spec.name = "a";
  spec.duration = 10_min;
  const auto a = assay.add_operation(spec);
  spec.name = "b";
  spec.parents = {a};
  const auto b = assay.add_operation(spec);
  spec.name = "c";
  spec.parents = {a};
  const auto c = assay.add_operation(spec);

  schedule::SynthesisResult result;
  result.devices = model::DeviceInventory(3);
  const model::DeviceConfig cfg{model::ContainerKind::Chamber, model::Capacity::Tiny, {}};
  const auto d0 = result.devices.instantiate(cfg, LayerId{0});
  const auto d1 = result.devices.instantiate(cfg, LayerId{0});
  const auto d2 = result.devices.instantiate(cfg, LayerId{0});
  result.layers.push_back({LayerId{0},
                           {{a, d0, 0_min, 10_min, 0_min},
                            {b, d1, 13_min, 10_min, 0_min},
                            {c, d2, 15_min, 10_min, 0_min}}});
  // d1 adjacent to d0; d2 four cells away.
  const Placement placement({d0, d1, d2},
                            {GridPosition{0, 0}, GridPosition{1, 0}, GridPosition{4, 0}},
                            5);
  LayoutTransportOptions options;
  options.minimum = 1_min;
  options.per_cell = 2_min;
  const auto plan = transport_from_layout(placement, result, assay, options);
  EXPECT_EQ(plan.edge_time(a, b), 1_min);               // adjacent
  EXPECT_EQ(plan.edge_time(a, c), 1_min + 3 * 2_min);   // 4 cells away
}

TEST(TransportFromLayout, RejectsNegativeOptions) {
  const Placement placement({DeviceId{0}}, {GridPosition{0, 0}}, 1);
  schedule::SynthesisResult result;
  model::Assay assay{"t"};
  LayoutTransportOptions options;
  options.minimum = Minutes{-1};
  EXPECT_THROW((void)transport_from_layout(placement, result, assay, options),
               PreconditionError);
}

TEST(TransportFromLayout, FullFlowWithLayoutRefinementValidates) {
  const model::Assay assay = assays::gene_expression_assay(4);
  core::SynthesisOptions options;
  options.max_devices = 15;
  options.layering.indeterminate_threshold = 4;
  options.transport_refinement = core::TransportRefinement::Layout;
  const auto report = core::synthesize(assay, options);
  const auto violations =
      schedule::validate_result(report.result, assay, report.transport);
  EXPECT_TRUE(violations.empty()) << violations.front();
  EXPECT_GE(report.iterations.size(), 2u);
}

TEST(TransportFromLayout, LayoutRefinementImprovesOnTheFlatEstimate) {
  const model::Assay assay = assays::gene_expression_assay();
  core::SynthesisOptions options;
  options.max_devices = 25;
  options.layering.indeterminate_threshold = 10;
  options.transport_refinement = core::TransportRefinement::Layout;
  options.resynthesis_improvement_threshold = -1.0;
  options.max_resynthesis_iterations = 2;
  const auto report = core::synthesize(assay, options);
  EXPECT_LE(report.iterations.back().execution_time.fixed(),
            report.iterations.front().execution_time.fixed());
}

}  // namespace
}  // namespace cohls::layout
