#include "layout/placement.hpp"

#include <gtest/gtest.h>

#include "assays/benchmarks.hpp"
#include "core/progressive_resynthesis.hpp"

namespace cohls::layout {
namespace {

struct Fixture {
  model::Assay assay = assays::gene_expression_assay(4);
  core::SynthesisReport report;

  Fixture() {
    core::SynthesisOptions options;
    options.max_devices = 15;
    options.layering.indeterminate_threshold = 4;
    report = core::synthesize(assay, options);
  }
};

TEST(Placement, ValidatesItsInvariants) {
  EXPECT_THROW(Placement({DeviceId{0}}, {}, 1), PreconditionError);
  EXPECT_THROW(Placement({DeviceId{0}}, {GridPosition{1, 0}}, 1), PreconditionError);
  EXPECT_THROW(Placement({DeviceId{0}, DeviceId{1}},
                         {GridPosition{0, 0}, GridPosition{0, 0}}, 2),
               PreconditionError);
}

TEST(Placement, DistanceIsManhattan) {
  const Placement p({DeviceId{0}, DeviceId{1}}, {GridPosition{0, 0}, GridPosition{2, 3}},
                    4);
  EXPECT_EQ(p.distance(DeviceId{0}, DeviceId{1}), 5);
  EXPECT_EQ(p.distance(DeviceId{1}, DeviceId{0}), 5);
  EXPECT_EQ(p.distance(DeviceId{0}, DeviceId{0}), 0);
}

TEST(Placement, UnplacedDeviceThrows) {
  const Placement p({DeviceId{0}}, {GridPosition{0, 0}}, 1);
  EXPECT_THROW((void)p.position(DeviceId{9}), PreconditionError);
}

TEST(Placement, AsciiRendersDevicesAndEmptyCells) {
  const Placement p({DeviceId{0}, DeviceId{11}},
                    {GridPosition{0, 0}, GridPosition{1, 1}}, 2);
  EXPECT_EQ(p.to_ascii(), "0.\n.b\n");
}

TEST(PathUsage, CountsTransfersPerDevicePair) {
  const Fixture f;
  const auto usage = path_usage(f.report.result, f.assay);
  int total = 0;
  for (const auto& [path, count] : usage) {
    EXPECT_NE(path.first, path.second);
    EXPECT_GT(count, 0);
    total += count;
  }
  // Total transfers = number of dependency edges whose endpoints sit on
  // different devices.
  const auto binding = f.report.result.binding();
  int expected = 0;
  for (const auto& op : f.assay.operations()) {
    for (const auto child : f.assay.children(op.id())) {
      if (binding.at(op.id()) != binding.at(child)) {
        ++expected;
      }
    }
  }
  EXPECT_EQ(total, expected);
}

TEST(PlaceDevices, DeterministicForFixedSeed) {
  const Fixture f;
  PlacementOptions options;
  options.seed = 5;
  const Placement a = place_devices(f.report.result, f.assay, options);
  const Placement b = place_devices(f.report.result, f.assay, options);
  for (const DeviceId d : a.devices()) {
    EXPECT_EQ(a.position(d), b.position(d));
  }
}

TEST(PlaceDevices, PlacesExactlyTheUsedDevices) {
  const Fixture f;
  const Placement p = place_devices(f.report.result, f.assay);
  EXPECT_EQ(static_cast<int>(p.devices().size()),
            f.report.result.used_device_count());
}

TEST(PlaceDevices, AnnealingBeatsOrMatchesTheIdentityLayout) {
  const Fixture f;
  const auto usage = path_usage(f.report.result, f.assay);
  PlacementOptions options;
  const Placement annealed = place_devices(f.report.result, f.assay, options);
  // Identity layout: devices in row-major order of their ids.
  PlacementOptions no_anneal = options;
  no_anneal.sweeps = 0;
  const Placement identity = place_devices(f.report.result, f.assay, no_anneal);
  EXPECT_LE(annealed.wirelength(usage), identity.wirelength(usage));
}

TEST(PlaceDevices, HonorsExplicitGridWidth) {
  const Fixture f;
  PlacementOptions options;
  options.grid_width = 8;
  const Placement p = place_devices(f.report.result, f.assay, options);
  EXPECT_EQ(p.grid_width(), 8);
}

TEST(PlaceDevices, RejectsTooSmallGrid) {
  const Fixture f;
  PlacementOptions options;
  options.grid_width = 1;
  EXPECT_THROW((void)place_devices(f.report.result, f.assay, options),
               PreconditionError);
}

TEST(PlaceDevices, CommunicatingPairsEndUpClose) {
  // Star topology: device 0 talks to everyone; after annealing its average
  // distance to the others should not exceed the grid's average pair
  // distance.
  const Fixture f;
  const auto usage = path_usage(f.report.result, f.assay);
  if (usage.empty()) {
    GTEST_SKIP() << "fully co-located result";
  }
  const Placement p = place_devices(f.report.result, f.assay);
  double used_distance = 0.0;
  int used_pairs = 0;
  for (const auto& [path, count] : usage) {
    (void)count;
    used_distance += p.distance(path.first, path.second);
    ++used_pairs;
  }
  double all_distance = 0.0;
  int all_pairs = 0;
  for (std::size_t i = 0; i < p.devices().size(); ++i) {
    for (std::size_t j = i + 1; j < p.devices().size(); ++j) {
      all_distance += p.distance(p.devices()[i], p.devices()[j]);
      ++all_pairs;
    }
  }
  if (all_pairs == used_pairs) {
    GTEST_SKIP() << "every pair communicates";
  }
  EXPECT_LE(used_distance / used_pairs, all_distance / all_pairs + 1e-9);
}

}  // namespace
}  // namespace cohls::layout
