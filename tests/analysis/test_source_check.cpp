// The cohls_check source checker: a golden corpus (one snippet per
// COHLS-S1xx code, plus the suppression syntax and the documented escapes)
// and the self-hosting gate — the checker runs over this repository's own
// src/ tree and must report nothing.
#include "analysis/source_check.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace cohls::analysis {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot read " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::vector<std::string> codes_of(const std::vector<diag::Diagnostic>& found) {
  std::vector<std::string> codes;
  codes.reserve(found.size());
  for (const diag::Diagnostic& d : found) {
    codes.push_back(d.code);
  }
  std::sort(codes.begin(), codes.end());
  return codes;
}

std::vector<diag::Diagnostic> check_corpus_file(const std::string& name) {
  const fs::path path = fs::path(COHLS_CHECK_CORPUS_DIR) / name;
  return check_source(name, read_file(path));
}

// --- golden corpus: each snippet fires exactly its code ---------------------

TEST(SourceCheckCorpus, UnorderedIterationFiresS101) {
  const auto found = check_corpus_file("s101_unordered_iteration.cpp");
  EXPECT_EQ(codes_of(found), std::vector<std::string>{"COHLS-S101"});
}

TEST(SourceCheckCorpus, OrderedProjectionIsClean) {
  const auto found = check_corpus_file("s101_ordered_projection.cpp");
  EXPECT_EQ(codes_of(found), std::vector<std::string>{}) << "first: "
      << (found.empty() ? "" : diag::summary_line(found.front()));
}

TEST(SourceCheckCorpus, RandomSourceFiresS102) {
  const auto found = check_corpus_file("s102_random_source.cpp");
  EXPECT_EQ(codes_of(found), std::vector<std::string>{"COHLS-S102"});
}

TEST(SourceCheckCorpus, WallClockFiresS103) {
  const auto found = check_corpus_file("s103_wall_clock.cpp");
  EXPECT_EQ(codes_of(found), std::vector<std::string>{"COHLS-S103"});
}

TEST(SourceCheckCorpus, UnguardedMutexFiresS104) {
  const auto found = check_corpus_file("s104_unguarded_mutex.cpp");
  EXPECT_EQ(codes_of(found), std::vector<std::string>{"COHLS-S104"});
}

TEST(SourceCheckCorpus, GuardedMutexIsClean) {
  const auto found = check_corpus_file("s104_guarded_mutex.cpp");
  EXPECT_EQ(codes_of(found), std::vector<std::string>{});
}

TEST(SourceCheckCorpus, ThrowInWorkerFiresS105) {
  const auto found = check_corpus_file("s105_throw_in_worker.cpp");
  EXPECT_EQ(codes_of(found), std::vector<std::string>{"COHLS-S105"});
}

TEST(SourceCheckCorpus, CaughtAtBoundaryIsClean) {
  const auto found = check_corpus_file("s105_caught_at_boundary.cpp");
  EXPECT_EQ(codes_of(found), std::vector<std::string>{});
}

TEST(SourceCheckCorpus, LineSuppressionCoversExactlyOneCall) {
  const auto found = check_corpus_file("suppressed_line.cpp");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].code, "COHLS-S102");
}

TEST(SourceCheckCorpus, FileSuppressionCoversTheWholeFile) {
  const auto found = check_corpus_file("suppressed_file.cpp");
  EXPECT_EQ(codes_of(found), std::vector<std::string>{});
}

TEST(SourceCheckCorpus, RecoveryClockFiresS106) {
  // The corpus snippet fires only when checked under a recovery path: two
  // steady_clock reads plus one sleep_for.
  const fs::path path =
      fs::path(COHLS_CHECK_CORPUS_DIR) / "s106_recovery_clock.cpp";
  const std::string text = read_file(path);
  const auto found = check_source("src/core/recovery.cpp", text);
  EXPECT_EQ(codes_of(found),
            (std::vector<std::string>{"COHLS-S106", "COHLS-S106",
                                      "COHLS-S106"}));
  // Outside the recovery paths, steady_clock and sleep_for are S103-clean.
  EXPECT_EQ(codes_of(check_source("src/engine/batch.cpp", text)),
            std::vector<std::string>{});
}

// --- checker behaviors beyond the corpus ------------------------------------

TEST(SourceCheck, AllowlistExemptsRngImplementation) {
  const std::string text = "int draw() { return rand(); }\n";
  EXPECT_TRUE(check_source("src/util/rng.cpp", text).empty());
  EXPECT_EQ(check_source("src/core/other.cpp", text).size(), 1u);
}

TEST(SourceCheck, WallClockAllowlistIsAnOption) {
  SourceCheckOptions options;
  options.wall_clock_allowlist.push_back("util/stopwatch.");
  const std::string text =
      "auto t = std::chrono::system_clock::now();\n";
  EXPECT_TRUE(check_source("src/util/stopwatch.cpp", text, options).empty());
  EXPECT_EQ(check_source("src/core/other.cpp", text, options).size(), 1u);
}

TEST(SourceCheck, RecoveryPathsAreAnOption) {
  SourceCheckOptions options;
  options.recovery_paths.push_back("engine/mission.");
  const std::string text = "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_EQ(check_source("src/engine/mission.cpp", text, options).size(), 1u);
  EXPECT_TRUE(check_source("src/engine/other.cpp", text, options).empty());
}

TEST(SourceCheck, WerrorPromotesSeverity) {
  SourceCheckOptions options;
  options.warnings_as_errors = true;
  const auto found =
      check_source("x.cpp", "int j() { return rand(); }\n", options);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].severity, diag::Severity::Error);
}

TEST(SourceCheck, CommentsAndStringsAreInvisible) {
  const std::string text =
      "// rand() and system_clock in a comment\n"
      "const char* s = \"rand() system_clock random_device\";\n"
      "/* throw inside pool.submit([]{}) */\n";
  EXPECT_TRUE(check_source("x.cpp", text).empty());
}

TEST(SourceCheck, MemberNamedRandIsNotTheLibcFunction) {
  EXPECT_TRUE(check_source("x.cpp", "int v = gen.rand();\n").empty());
  EXPECT_TRUE(check_source("x.cpp", "int v = gen->rand();\n").empty());
}

TEST(SourceCheck, ClassicForOverUnorderedIsNotFlagged) {
  const std::string text =
      "#include <unordered_set>\n"
      "int f() {\n"
      "  std::unordered_set<int> seen;\n"
      "  int n = 0;\n"
      "  for (int i = 0; i < 3; ++i) { n += static_cast<int>(seen.count(i)); }\n"
      "  return n;\n"
      "}\n";
  EXPECT_TRUE(check_source("x.cpp", text).empty());
}

TEST(SourceCheck, ReferenceMutexMembersAreExempt) {
  // Scoped locks borrow a capability owned elsewhere.
  const std::string text =
      "class Lock {\n"
      " public:\n"
      "  explicit Lock(Mutex& m) : mutex_(m) {}\n"
      " private:\n"
      "  Mutex& mutex_;\n"
      "};\n";
  EXPECT_TRUE(check_source("x.cpp", text).empty());
}

TEST(SourceCheck, CodesAreStableAndSorted) {
  const std::vector<std::string>& codes = source_check_codes();
  EXPECT_EQ(codes.size(), 6u);
  EXPECT_TRUE(std::is_sorted(codes.begin(), codes.end()));
  EXPECT_EQ(codes.front(), "COHLS-S101");
  EXPECT_EQ(codes.back(), "COHLS-S106");
}

// --- self-hosting gate: this repository's src/ tree is clean ----------------

TEST(SourceCheckSelfHost, SrcTreeHasNoFindings) {
  const fs::path root(COHLS_SOURCE_DIR);
  ASSERT_TRUE(fs::is_directory(root / "src"));
  std::vector<std::string> files;
  for (const auto& entry : fs::recursive_directory_iterator(root / "src")) {
    const std::string ext = entry.path().extension().string();
    if (entry.is_regular_file() && (ext == ".hpp" || ext == ".cpp")) {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  ASSERT_GT(files.size(), 50u) << "src/ walk found suspiciously few files";
  int findings = 0;
  for (const std::string& file : files) {
    const std::string relative = fs::relative(file, root).generic_string();
    for (const diag::Diagnostic& d :
         check_source(relative, read_file(file))) {
      ++findings;
      ADD_FAILURE() << relative << ":" << d.span.line << ": "
                    << diag::summary_line(d);
    }
  }
  EXPECT_EQ(findings, 0);
}

}  // namespace
}  // namespace cohls::analysis
