// Linter rules exercised one by one on hand-built bad assay sources; every
// test matches on stable codes and spans, never on message text.
#include "analysis/linter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace cohls::analysis {
namespace {

std::vector<std::string> codes_of(const LintReport& report) {
  std::vector<std::string> codes;
  codes.reserve(report.diagnostics.size());
  for (const diag::Diagnostic& d : report.diagnostics) {
    codes.push_back(d.code);
  }
  return codes;
}

bool has_code(const LintReport& report, const char* code) {
  const auto codes = codes_of(report);
  return std::find(codes.begin(), codes.end(), code) != codes.end();
}

const diag::Diagnostic& first_with_code(const LintReport& report,
                                        const char* code) {
  for (const diag::Diagnostic& d : report.diagnostics) {
    if (d.code == code) {
      return d;
    }
  }
  ADD_FAILURE() << "no diagnostic with code " << code;
  return report.diagnostics.front();
}

TEST(Linter, CleanAssayHasNoDiagnostics) {
  const LintReport report = lint_assay_text(
      "assay \"ok\"\n"
      "operation 0 \"mix\" duration=5\n"
      "operation 1 \"heat\" duration=3 parents=0\n");
  EXPECT_TRUE(report.diagnostics.empty());
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(report.clean(/*warnings_as_errors=*/true));
}

TEST(Linter, LexicalFailureBecomesE100WithLine) {
  const LintReport report = lint_assay_text(
      "assay \"x\"\n"
      "operation 0 \"a\" duration=5 wobble=3\n");
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].code, diag::codes::kParseError);
  EXPECT_EQ(report.diagnostics[0].span.line, 2);
  EXPECT_TRUE(report.has_errors());
}

TEST(Linter, DuplicateIdIsE101WithNoteAtFirstDefinition) {
  const LintReport report = lint_assay_text(
      "assay \"x\"\n"
      "operation 0 \"a\" duration=5\n"
      "operation 0 \"b\" duration=5\n");
  const auto& d = first_with_code(report, diag::codes::kDuplicateOperationId);
  EXPECT_EQ(d.span.line, 3);
  ASSERT_FALSE(d.notes.empty());
  EXPECT_EQ(d.notes[0].span.line, 2);
}

TEST(Linter, UndefinedParentIsE102) {
  const LintReport report = lint_assay_text(
      "assay \"x\"\n"
      "operation 0 \"a\" duration=5\n"
      "operation 1 \"b\" duration=5 parents=7\n");
  const auto& d = first_with_code(report, diag::codes::kUndefinedReference);
  EXPECT_EQ(d.span.line, 3);
}

TEST(Linter, DependencyCycleIsE103WithPath) {
  const LintReport report = lint_assay_text(
      "assay \"x\"\n"
      "operation 0 \"a\" duration=5 parents=1\n"
      "operation 1 \"b\" duration=5 parents=0\n");
  const auto& d = first_with_code(report, diag::codes::kDependencyCycle);
  // The path names both members and notes point at their definitions.
  EXPECT_NE(d.message.find("0"), std::string::npos);
  EXPECT_NE(d.message.find("1"), std::string::npos);
  EXPECT_EQ(d.notes.size(), 2u);
}

TEST(Linter, SelfParentIsE103) {
  const LintReport report = lint_assay_text(
      "assay \"x\"\n"
      "operation 0 \"a\" duration=5 parents=0\n");
  EXPECT_TRUE(has_code(report, diag::codes::kDependencyCycle));
}

TEST(Linter, AcyclicForwardReferenceIsE106NotE103) {
  const LintReport report = lint_assay_text(
      "assay \"x\"\n"
      "operation 0 \"a\" duration=5 parents=1\n"
      "operation 1 \"b\" duration=5\n");
  EXPECT_TRUE(has_code(report, diag::codes::kNonDenseIds));
  EXPECT_FALSE(has_code(report, diag::codes::kDependencyCycle));
}

TEST(Linter, NonDenseIdsAreE106) {
  const LintReport report = lint_assay_text(
      "assay \"x\"\n"
      "operation 0 \"a\" duration=5\n"
      "operation 2 \"b\" duration=5\n");
  const auto& d = first_with_code(report, diag::codes::kNonDenseIds);
  EXPECT_EQ(d.span.line, 3);
}

TEST(Linter, UnbindableOperationIsE104WithNearestDeviceNote) {
  const LintReport report = lint_assay_text(
      "assay \"x\"\n"
      "operation 0 \"big\" duration=5 container=chamber capacity=large\n");
  const auto& d = first_with_code(report, diag::codes::kUnbindableOperation);
  EXPECT_EQ(d.span.line, 2);
  ASSERT_FALSE(d.notes.empty());
  // The note names the nearest admissible configuration (chamber at medium).
  EXPECT_NE(d.notes[0].message.find("medium"), std::string::npos);
  EXPECT_FALSE(d.fixit.empty());
}

TEST(Linter, RingTinyIsAlsoUnbindable) {
  const LintReport report = lint_assay_text(
      "assay \"x\"\n"
      "operation 0 \"small\" duration=5 container=ring capacity=tiny\n");
  EXPECT_TRUE(has_code(report, diag::codes::kUnbindableOperation));
}

TEST(Linter, UnpinnedContainerIsAlwaysBindable) {
  const LintReport report = lint_assay_text(
      "assay \"x\"\n"
      "operation 0 \"a\" duration=5 capacity=large\n"
      "operation 1 \"b\" duration=5 capacity=tiny\n"
      "operation 2 \"c\" duration=5 container=ring\n"
      "operation 3 \"d\" duration=5 container=chamber\n");
  EXPECT_FALSE(has_code(report, diag::codes::kUnbindableOperation));
}

TEST(Linter, NonPositiveDurationIsE105) {
  const LintReport report = lint_assay_text(
      "assay \"x\"\n"
      "operation 0 \"a\" duration=0\n"
      "operation 1 \"b\" duration=-3 indeterminate\n");
  int count = 0;
  for (const auto& d : report.diagnostics) {
    count += d.code == diag::codes::kNonPositiveDuration ? 1 : 0;
  }
  EXPECT_EQ(count, 2);
}

TEST(Linter, DeviceDemandBeyondBudgetIsE107) {
  std::string text = "assay \"x\"\n";
  for (int i = 0; i < 5; ++i) {
    text += "operation " + std::to_string(i) + " \"c" + std::to_string(i) +
            "\" duration=5 indeterminate\n";
  }
  AnalysisOptions options;
  options.max_devices = 3;
  options.indeterminate_threshold = 4;  // eviction keeps 4 > 3 devices
  const LintReport report = lint_assay_text(text, options);
  const auto& d = first_with_code(report, diag::codes::kDeviceDemandExceedsBudget);
  EXPECT_EQ(d.severity, diag::Severity::Error);
  ASSERT_FALSE(d.notes.empty());
  // Per-capacity-class breakdown rides along.
  EXPECT_NE(d.notes[0].message.find("any/any x5"), std::string::npos);
  // The same cluster is over-threshold, so the dry-run warning fires too.
  EXPECT_TRUE(has_code(report, diag::codes::kOverThresholdCluster));
}

TEST(Linter, DeviceDemandWithinBudgetAfterEvictionIsOnlyWarned) {
  std::string text = "assay \"x\"\n";
  for (int i = 0; i < 5; ++i) {
    text += "operation " + std::to_string(i) + " \"c" + std::to_string(i) +
            "\" duration=5 indeterminate\n";
  }
  AnalysisOptions options;
  options.max_devices = 3;
  options.indeterminate_threshold = 2;  // eviction trims to 2 <= 3 devices
  const LintReport report = lint_assay_text(text, options);
  EXPECT_FALSE(has_code(report, diag::codes::kDeviceDemandExceedsBudget));
  EXPECT_TRUE(has_code(report, diag::codes::kOverThresholdCluster));
  EXPECT_TRUE(report.clean());
  EXPECT_FALSE(report.clean(/*warnings_as_errors=*/true));
}

TEST(Linter, NonPositiveThresholdWithIndeterminatesIsE108) {
  AnalysisOptions options;
  options.indeterminate_threshold = 0;
  const LintReport report = lint_assay_text(
      "assay \"x\"\n"
      "operation 0 \"c\" duration=5 indeterminate\n",
      options);
  EXPECT_TRUE(has_code(report, diag::codes::kNonPositiveThreshold));
  // Without indeterminate operations the threshold never matters.
  const LintReport fixed = lint_assay_text(
      "assay \"x\"\n"
      "operation 0 \"c\" duration=5\n",
      options);
  EXPECT_TRUE(fixed.diagnostics.empty());
}

TEST(Linter, OverThresholdClusterIsW101PerDependencyLayer) {
  // Layer 0: three captures; their children form a second cluster at layer 1.
  std::string text = "assay \"x\"\n";
  for (int i = 0; i < 3; ++i) {
    text += "operation " + std::to_string(i) + " \"c" + std::to_string(i) +
            "\" duration=5 indeterminate\n";
  }
  for (int i = 0; i < 3; ++i) {
    text += "operation " + std::to_string(3 + i) + " \"d" + std::to_string(i) +
            "\" duration=5 indeterminate parents=" + std::to_string(i) + "\n";
  }
  AnalysisOptions options;
  options.indeterminate_threshold = 2;
  const LintReport report = lint_assay_text(text, options);
  int count = 0;
  for (const auto& d : report.diagnostics) {
    count += d.code == diag::codes::kOverThresholdCluster ? 1 : 0;
  }
  EXPECT_EQ(count, 2);
  const auto& d = first_with_code(report, diag::codes::kOverThresholdCluster);
  EXPECT_EQ(d.notes.size(), 3u);
}

TEST(Linter, LayeringWarningStillFiresNextToACycleError) {
  // The cycle disables nothing: the dry-run drops the cyclic edge and the
  // cluster warning still appears alongside E103.
  std::string text =
      "assay \"x\"\n"
      "operation 0 \"a\" duration=5 parents=1\n"
      "operation 1 \"b\" duration=5 parents=0\n";
  for (int i = 2; i < 5; ++i) {
    text += "operation " + std::to_string(i) + " \"c" + std::to_string(i) +
            "\" duration=5 indeterminate\n";
  }
  AnalysisOptions options;
  options.indeterminate_threshold = 2;
  const LintReport report = lint_assay_text(text, options);
  EXPECT_TRUE(has_code(report, diag::codes::kDependencyCycle));
  EXPECT_TRUE(has_code(report, diag::codes::kOverThresholdCluster));
}

TEST(Linter, StoragePressureIsW102) {
  // One indeterminate gate plus four plain producers at layer 0; every
  // consumer depends on both, so five intermediates cross the boundary
  // against |D| = 3 while the indeterminate cluster itself stays tiny.
  std::string text =
      "assay \"x\"\n"
      "operation 0 \"gate\" duration=5 indeterminate\n";
  for (int i = 0; i < 4; ++i) {
    text += "operation " + std::to_string(1 + i) + " \"p" + std::to_string(i) +
            "\" duration=5\n";
  }
  for (int i = 0; i < 4; ++i) {
    text += "operation " + std::to_string(5 + i) + " \"q" + std::to_string(i) +
            "\" duration=5 parents=" + std::to_string(1 + i) + ",0\n";
  }
  AnalysisOptions options;
  options.max_devices = 3;
  options.indeterminate_threshold = 10;
  const LintReport report = lint_assay_text(text, options);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  const auto& d = first_with_code(report, diag::codes::kStoragePressure);
  EXPECT_EQ(d.severity, diag::Severity::Warning);
  EXPECT_TRUE(report.clean());
}

TEST(Linter, UnusedAccessoryIsW103) {
  const LintReport report = lint_assay_text(
      "assay \"x\"\n"
      "accessory \"droplet sorter\" cost=3.5\n"
      "operation 0 \"a\" duration=5\n");
  const auto& d = first_with_code(report, diag::codes::kUnusedAccessory);
  EXPECT_EQ(d.span.line, 2);
  EXPECT_EQ(d.severity, diag::Severity::Warning);
  // Referencing it silences the warning.
  const LintReport used = lint_assay_text(
      "assay \"x\"\n"
      "accessory \"droplet sorter\" cost=3.5\n"
      "operation 0 \"a\" duration=5 accessories={droplet sorter}\n");
  EXPECT_TRUE(used.diagnostics.empty());
}

TEST(Linter, DuplicateParentIsW104) {
  const LintReport report = lint_assay_text(
      "assay \"x\"\n"
      "operation 0 \"a\" duration=5\n"
      "operation 1 \"b\" duration=5 parents=0,0\n");
  const auto& d = first_with_code(report, diag::codes::kDuplicateParent);
  EXPECT_EQ(d.span.line, 3);
  EXPECT_EQ(d.severity, diag::Severity::Warning);
}

TEST(Linter, DiagnosticsAreSortedByLine) {
  const LintReport report = lint_assay_text(
      "assay \"x\"\n"
      "operation 0 \"dur\" duration=0\n"
      "operation 1 \"big\" duration=5 container=chamber capacity=large\n");
  ASSERT_EQ(report.diagnostics.size(), 2u);
  EXPECT_EQ(report.diagnostics[0].span.line, 2);
  EXPECT_EQ(report.diagnostics[1].span.line, 3);
}

TEST(Linter, CustomPassPipeline) {
  PassManager manager;
  manager.add(Pass{"always-warn", false,
                   [](PassContext& ctx, std::vector<diag::Diagnostic>& out) {
                     diag::Diagnostic d;
                     d.code = "TEST-W001";
                     d.severity = diag::Severity::Warning;
                     d.message = "assay " + ctx.source.name;
                     out.push_back(std::move(d));
                   }});
  const io::AssaySource source = io::parse_assay_source(
      "assay \"x\"\n"
      "operation 0 \"a\" duration=5\n");
  const LintReport report = manager.run(source, AnalysisOptions{});
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].code, "TEST-W001");
}

}  // namespace
}  // namespace cohls::analysis
