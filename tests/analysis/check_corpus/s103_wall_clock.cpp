// Golden corpus: a wall-clock read outside the timing allowlist must fire
// exactly COHLS-S103 (calendar time makes runs unreproducible).
#include <chrono>

long long stamp() {
  const auto now = std::chrono::system_clock::now();
  return now.time_since_epoch().count();
}
