// Golden corpus: a line-level `cohls-check: allow(...)` directive covers
// the next code line, so the rand() below reports nothing — but only that
// one; the second call still fires COHLS-S102.
#include <cstdlib>

int seeded_jitter() {
  // cohls-check: allow(S102): demo of the suppression syntax
  const int allowed = std::rand();
  const int flagged = std::rand();
  return allowed + flagged;
}
