// Golden corpus: the fixed version of s104_unguarded_mutex — the mutex has
// a COHLS_GUARDED_BY-annotated sibling, so the file is clean. (The macro
// expands to nothing off clang; the checker matches the token.)
#include <mutex>

#ifndef COHLS_GUARDED_BY
#define COHLS_GUARDED_BY(x)
#endif

class SharedCounter {
 public:
  void increment() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++value_;
  }

 private:
  std::mutex mutex_;
  int value_ COHLS_GUARDED_BY(mutex_) = 0;
};

int keep_linker_quiet() {
  SharedCounter counter;
  counter.increment();
  return 0;
}
