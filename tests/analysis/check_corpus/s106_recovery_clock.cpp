// S106 corpus: clock reads in a recovery-path file. Checked under the path
// "src/core/recovery.cpp" — even steady_clock (fine elsewhere under S103)
// is banned there, because the mission loop must be a pure function of its
// inputs to keep fleet reductions bit-identical across worker counts.
#include <chrono>
#include <thread>

namespace corpus {

long elapsed_guess() {
  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::milliseconds>(end - start)
      .count();
}

}  // namespace corpus
