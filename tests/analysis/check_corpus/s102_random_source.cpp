// Golden corpus: a direct random source outside util/rng must fire exactly
// COHLS-S102 (runs would not replay).
#include <cstdlib>

int jitter() { return std::rand() % 7; }
