// Golden corpus: a file-level directive suppresses a code everywhere in the
// file. Both wall-clock reads below stay silent.
// cohls-check: allow-file(S103): corpus exercise of file-wide suppression
#include <chrono>

long long start_stamp() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

long long end_stamp() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}
