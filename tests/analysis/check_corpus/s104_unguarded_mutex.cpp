// Golden corpus: a class owning a mutex by value with no GUARDED_BY
// annotation anywhere in its body must fire exactly COHLS-S104 — clang's
// thread-safety analysis cannot see what the mutex protects.
#include <mutex>

class SharedCounter {
 public:
  void increment() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++value_;
  }

 private:
  std::mutex mutex_;
  int value_ = 0;
};

int keep_linker_quiet() {
  SharedCounter counter;
  counter.increment();
  return 0;
}
