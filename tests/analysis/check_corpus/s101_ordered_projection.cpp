// Golden corpus: iterating an ordered projection of an unordered container
// is clean — the range expression ends in a call, the documented S101
// escape (the call is expected to return an ordered view).
#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

std::vector<std::string> sorted_keys(
    const std::unordered_map<std::string, int>& table) {
  std::vector<std::string> keys;
  keys.reserve(table.size());
  // Collecting keys is fine; it is the *iteration for output* that must be
  // ordered, and this helper's caller sorts below.
  // cohls-check: allow(S101): key collection feeding an immediate sort
  for (const auto& [key, value] : table) {
    (void)value;
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

int emit(const std::unordered_map<std::string, int>& table) {
  int order_sensitive = 0;
  for (const std::string& key : sorted_keys(table)) {
    order_sensitive = order_sensitive * 31 + static_cast<int>(key.size());
  }
  return order_sensitive;
}
