// Golden corpus: the fixed version of s105_throw_in_worker — the throw is
// wrapped in a try block inside the lambda itself, so the exception never
// crosses the worker boundary. Clean.
#include <functional>
#include <stdexcept>

struct FakePool {
  void submit(std::function<void()> task) { task(); }
};

void schedule(FakePool& pool, int value, bool& failed) {
  pool.submit([value, &failed] {
    try {
      if (value < 0) {
        throw std::runtime_error("negative value reached a worker");
      }
    } catch (const std::exception&) {
      failed = true;
    }
  });
}
