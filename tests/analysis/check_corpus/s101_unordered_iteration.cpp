// Golden corpus: range-for over an unordered container must fire exactly
// COHLS-S101 (iteration order is not deterministic).
#include <string>
#include <unordered_map>

int serialize_all(const std::unordered_map<std::string, int>& unused) {
  std::unordered_map<std::string, int> table;
  int sum = 0;
  for (const auto& [key, value] : table) {
    sum += value + static_cast<int>(key.size());
  }
  return sum;
}
