// Golden corpus: a bare `throw` inside a worker lambda handed to
// ThreadPool::submit must fire exactly COHLS-S105 — an escaping exception
// tears down the worker thread.
#include <functional>
#include <stdexcept>

struct FakePool {
  void submit(std::function<void()> task) { task(); }
};

void schedule(FakePool& pool, int value) {
  pool.submit([value] {
    if (value < 0) {
      throw std::runtime_error("negative value reached a worker");
    }
  });
}
