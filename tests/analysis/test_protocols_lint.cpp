// Every shipped protocol must lint clean: warnings are acceptable (they
// describe work the resource phase will do), errors are not.
#include "analysis/linter.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

namespace cohls::analysis {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

LintReport lint_protocol(const char* name,
                         const AnalysisOptions& options = {}) {
  const std::string path = std::string(COHLS_PROTOCOLS_DIR) + "/" + name;
  return lint_assay_text(read_file(path), options);
}

TEST(ProtocolsLint, KinaseActivityIsClean) {
  const LintReport report = lint_protocol("kinase_activity.assay");
  EXPECT_TRUE(report.diagnostics.empty())
      << diag::render_text(report.diagnostics, "kinase_activity.assay");
}

TEST(ProtocolsLint, GeneExpressionIsClean) {
  const LintReport report = lint_protocol("gene_expression.assay");
  EXPECT_TRUE(report.diagnostics.empty())
      << diag::render_text(report.diagnostics, "gene_expression.assay");
}

TEST(ProtocolsLint, RtQpcrHasNoErrors) {
  // 20 captures against the default threshold t = 10: the linter warns that
  // the resource phase will evict half the cluster, but nothing is an error.
  const LintReport report = lint_protocol("rt_qpcr.assay");
  EXPECT_FALSE(report.has_errors())
      << diag::render_text(report.diagnostics, "rt_qpcr.assay");
  EXPECT_TRUE(report.clean());
  bool warned = false;
  for (const diag::Diagnostic& d : report.diagnostics) {
    warned |= d.code == diag::codes::kOverThresholdCluster;
  }
  EXPECT_TRUE(warned);
}

TEST(ProtocolsLint, RtQpcrCleanAtGenerousThreshold) {
  AnalysisOptions options;
  options.indeterminate_threshold = 20;
  const LintReport report = lint_protocol("rt_qpcr.assay", options);
  EXPECT_TRUE(report.diagnostics.empty())
      << diag::render_text(report.diagnostics, "rt_qpcr.assay");
}

}  // namespace
}  // namespace cohls::analysis
