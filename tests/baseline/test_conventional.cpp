#include "baseline/conventional.hpp"

#include <gtest/gtest.h>

#include "assays/benchmarks.hpp"
#include "schedule/objective.hpp"
#include "schedule/validate.hpp"

namespace cohls::baseline {
namespace {

using model::BuiltinAccessory;
using model::Capacity;
using model::ContainerKind;

model::Operation make_op(std::optional<ContainerKind> container,
                         std::optional<Capacity> capacity,
                         model::AccessorySet accessories) {
  model::OperationSpec spec;
  spec.name = "op";
  spec.duration = 10_min;
  spec.container = container;
  spec.capacity = capacity;
  spec.accessories = accessories;
  return model::Operation(OperationId{0}, spec);
}

TEST(ClassConfig, SpecifiedRequirementsCarryOver) {
  const auto op = make_op(ContainerKind::Ring, Capacity::Medium,
                          {BuiltinAccessory::kPump});
  const model::DeviceConfig config = class_config(op);
  EXPECT_EQ(config.container, ContainerKind::Ring);
  EXPECT_EQ(config.capacity, Capacity::Medium);
  EXPECT_EQ(config.accessories, (model::AccessorySet{BuiltinAccessory::kPump}));
}

TEST(ClassConfig, UnspecifiedContainerDefaultsToChamberTiny) {
  const auto op = make_op(std::nullopt, std::nullopt, {});
  const model::DeviceConfig config = class_config(op);
  EXPECT_EQ(config.container, ContainerKind::Chamber);
  EXPECT_EQ(config.capacity, Capacity::Tiny);
}

TEST(ClassConfig, LargeCapacityForcesRing) {
  const auto op = make_op(std::nullopt, Capacity::Large, {});
  const model::DeviceConfig config = class_config(op);
  EXPECT_EQ(config.container, ContainerKind::Ring);
  EXPECT_EQ(config.capacity, Capacity::Large);
}

TEST(ClassMatch, ExactMatchOnly) {
  // The conventional rule denies the subset-binding the component-oriented
  // rule allows: an op needing only a sieve valve cannot use a sieve+pump
  // device.
  const auto op = make_op(std::nullopt, std::nullopt, {BuiltinAccessory::kSieveValve});
  EXPECT_TRUE(class_match(op, class_config(op)));
  model::DeviceConfig richer = class_config(op);
  richer.accessories.insert(BuiltinAccessory::kPump);
  EXPECT_FALSE(class_match(op, richer));
  EXPECT_TRUE(model::is_compatible(op, richer)) << "component-oriented rule accepts it";
}

TEST(Conventional, ProducesValidSchedules) {
  const model::Assay assay = assays::kinase_activity_assay();
  core::SynthesisOptions options;
  options.max_devices = 25;
  const auto report = synthesize_conventional(assay, options);
  const auto violations =
      schedule::validate_result(report.result, assay, report.transport);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(Conventional, EveryBindingIsAnExactClassMatch) {
  const model::Assay assay = assays::gene_expression_assay(4);
  core::SynthesisOptions options;
  options.max_devices = 20;
  options.layering.indeterminate_threshold = 4;
  const auto report = synthesize_conventional(assay, options);
  for (const auto& [op, device] : report.result.binding()) {
    EXPECT_TRUE(class_match(assay.operation(op),
                            report.result.devices.device(device).config))
        << "operation '" << assay.operation(op).name()
        << "' bound outside its class";
  }
}

TEST(Conventional, QuantizesStartsToTheSlotGrid) {
  const model::Assay assay = assays::kinase_activity_assay();
  core::SynthesisOptions options;
  options.max_devices = 25;
  const auto report = synthesize_conventional(assay, options, 10_min);
  for (const auto& layer : report.result.layers) {
    for (const auto& item : layer.items) {
      EXPECT_EQ(item.start.count() % 10, 0);
    }
  }
}

TEST(Conventional, CoarserSlotsNeverSpeedUpTheAssay) {
  const model::Assay assay = assays::kinase_activity_assay();
  core::SynthesisOptions options;
  options.max_devices = 25;
  const auto continuous = synthesize_conventional(assay, options, 0_min);
  const auto coarse = synthesize_conventional(assay, options, 20_min);
  EXPECT_LE(continuous.result.total_time(assay).fixed(),
            coarse.result.total_time(assay).fixed());
}

TEST(Conventional, RejectsNegativeSlotSize) {
  const model::Assay assay = assays::kinase_activity_assay(1);
  EXPECT_THROW(
      (void)synthesize_conventional(assay, core::SynthesisOptions{}, Minutes{-1}),
      PreconditionError);
}

TEST(Conventional, NeverBeatsComponentOrientedOnTheBenchmarks) {
  // The paper's Table 2 claim, as a regression test: on all three cases the
  // component-oriented method is at least as good on time, devices and
  // paths simultaneously is not guaranteed — but the weighted objective
  // must not be worse.
  core::SynthesisOptions options;
  options.max_devices = 25;
  options.layering.indeterminate_threshold = 10;
  for (const model::Assay& assay :
       {assays::kinase_activity_assay(), assays::gene_expression_assay(4)}) {
    const auto ours = core::synthesize(assay, options);
    const auto conv = synthesize_conventional(assay, options);
    const auto ours_obj =
        schedule::evaluate_objective(ours.result, assay, options.costs);
    const auto conv_obj =
        schedule::evaluate_objective(conv.result, assay, options.costs);
    EXPECT_LE(ours_obj.weighted_total, conv_obj.weighted_total + 1e-9)
        << "on " << assay.name();
  }
}

}  // namespace
}  // namespace cohls::baseline
