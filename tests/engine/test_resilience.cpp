// The engine resilience ladder: stall-watchdog downgrade to the heuristic,
// retry accounting on final (non-retryable) verdicts, and the fault-injected
// replay + recovery stage of the batch pipeline. Runs under TSan in CI.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "assays/benchmarks.hpp"
#include "core/progressive_resynthesis.hpp"
#include "engine/batch.hpp"
#include "io/assay_text.hpp"

namespace cohls::engine {
namespace {

core::SynthesisOptions benchmark_options() {
  core::SynthesisOptions options;
  options.max_devices = 12;
  options.layering.indeterminate_threshold = 3;
  return options;
}

BatchJob benchmark_job() {
  BatchJob job;
  job.name = "gene-expression";
  job.text = io::to_text(assays::gene_expression_assay(3));
  job.options = benchmark_options();
  return job;
}

/// The assay of Recover.UniqueCapableDeviceLostReportsE301: two large-ring
/// operations in sequence plus an independent tiny chamber, so losing the
/// one ring mid-run leaves the second ring operation unbindable.
model::Assay unique_device_assay(OperationId* first_ring_op) {
  model::Assay assay{"unique-device"};
  model::OperationSpec a1;
  a1.name = "A1";
  a1.container = model::ContainerKind::Ring;
  a1.capacity = model::Capacity::Large;
  a1.duration = 20_min;
  const OperationId a1_id = assay.add_operation(a1);
  model::OperationSpec a2 = a1;
  a2.name = "A2";
  a2.parents = {a1_id};
  (void)assay.add_operation(a2);
  model::OperationSpec b;
  b.name = "B";
  b.container = model::ContainerKind::Chamber;
  b.capacity = model::Capacity::Tiny;
  b.duration = 50_min;
  (void)assay.add_operation(b);
  if (first_ring_op != nullptr) {
    *first_ring_op = a1_id;
  }
  return assay;
}

TEST(Resilience, StallWatchdogDowngradesToHeuristicAndReports) {
  BatchOptions options;
  options.stall_seconds = 1e-4;  // every real synthesis outlives this
  BatchEngine engine(options);
  const std::vector<BatchResult> rows = engine.run({benchmark_job()});

  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].status, JobStatus::Ok) << rows[0].detail;
  EXPECT_TRUE(rows[0].degraded);
  EXPECT_GE(engine.metrics().counter("fallbacks_taken").value(), 1);
  // The downgraded schedule is still a certified result.
  EXPECT_FALSE(rows[0].result_text.empty());
  EXPECT_GT(rows[0].summary.layers, 0);
}

TEST(Resilience, WatchdogDoesNotMaskTheJobDeadline) {
  BatchOptions options;
  options.stall_seconds = 30.0;  // watchdog armed but far away
  BatchEngine engine(options);
  BatchJob job = benchmark_job();
  job.deadline_seconds = 1e-6;  // expires before synthesis starts
  const std::vector<BatchResult> rows = engine.run({job});

  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].status, JobStatus::Cancelled);
  // A real deadline is a cancellation, never a silent heuristic downgrade.
  EXPECT_FALSE(rows[0].degraded);
  EXPECT_EQ(engine.metrics().counter("fallbacks_taken").value(), 0);
}

TEST(Resilience, DeterministicVerdictsAreFinalNotRetried) {
  // Infeasibility and an unreadable file are deterministic verdicts:
  // re-running cannot change them, so the retry budget must stay untouched.
  BatchOptions options;
  options.max_retries = 3;
  options.retry_backoff_seconds = 0.001;
  options.lint = false;  // reach the solver so infeasibility is its verdict
  BatchEngine engine(options);

  model::Assay infeasible{"too-many-captures"};
  for (int k = 0; k < 3; ++k) {
    model::OperationSpec spec;
    spec.name = "capture-" + std::to_string(k);
    spec.container = model::ContainerKind::Chamber;
    spec.capacity = model::Capacity::Tiny;
    spec.duration = 10_min;
    spec.indeterminate = true;
    (void)infeasible.add_operation(spec);
  }
  BatchJob infeasible_job;
  infeasible_job.name = "infeasible";
  infeasible_job.text = io::to_text(infeasible);
  infeasible_job.options.max_devices = 2;  // 3 captures need 3 devices

  BatchJob missing;
  missing.name = "missing";
  missing.path = "/nonexistent/assay/file.assay";

  const std::vector<BatchResult> rows = engine.run({infeasible_job, missing});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].status, JobStatus::Infeasible) << rows[0].detail;
  EXPECT_EQ(rows[1].status, JobStatus::Error);
  EXPECT_EQ(rows[0].retries, 0);
  EXPECT_EQ(rows[1].retries, 0);
  EXPECT_EQ(engine.metrics().counter("job_retries").value(), 0);
}

TEST(Resilience, RecoveredFaultKeepsTheJobOkAndCounts) {
  // Kill the device of the first scheduled operation mid-run, after the
  // indeterminate capture layer has passed: the replay must break, and the
  // residual re-plans cleanly on the survivors.
  const model::Assay assay = assays::gene_expression_assay(3);
  const core::SynthesisReport report =
      core::synthesize(assay, benchmark_options());
  const DeviceId victim = report.result.layers.front().items.front().device;

  BatchJob job = benchmark_job();
  std::ostringstream plan;
  plan << "device-fail " << victim.value() << " at 30\n";
  job.fault_plan = plan.str();

  BatchEngine engine{BatchOptions{}};
  const std::vector<BatchResult> rows = engine.run({job});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].status, JobStatus::Ok) << rows[0].detail;
  EXPECT_EQ(rows[0].run_outcome, "device-failed");
  EXPECT_TRUE(rows[0].recovery_attempted);
  EXPECT_TRUE(rows[0].recovered);
  EXPECT_EQ(engine.metrics().counter("recoveries_attempted").value(), 1);
  EXPECT_EQ(engine.metrics().counter("recoveries_succeeded").value(), 1);
  EXPECT_GE(engine.metrics().histogram("recovery_seconds").count(), 1);
}

TEST(Resilience, UnrecoverableFaultReportsRunFailedWithE3xx) {
  OperationId a1_id;
  const model::Assay assay = unique_device_assay(&a1_id);
  core::SynthesisOptions options;
  options.max_devices = 4;
  const core::SynthesisReport report = core::synthesize(assay, options);
  const std::map<OperationId, DeviceId> binding = report.result.binding();

  BatchJob job;
  job.name = "unique-device";
  job.text = io::to_text(assay);
  job.options = options;
  std::ostringstream plan;
  plan << "device-fail " << binding.at(a1_id).value() << " at 5\n";
  job.fault_plan = plan.str();

  BatchEngine engine{BatchOptions{}};
  const std::vector<BatchResult> rows = engine.run({job});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].status, JobStatus::RunFailed);
  EXPECT_EQ(rows[0].run_outcome, "device-failed");
  EXPECT_TRUE(rows[0].recovery_attempted);
  EXPECT_FALSE(rows[0].recovered);
  EXPECT_FALSE(rows[0].detail.empty());
  ASSERT_FALSE(rows[0].diagnostics.empty());
  for (const diag::Diagnostic& d : rows[0].diagnostics) {
    EXPECT_EQ(d.code, diag::codes::kRecoveryUnbindable);
  }
  EXPECT_EQ(engine.metrics().counter("recoveries_attempted").value(), 1);
  EXPECT_EQ(engine.metrics().counter("recoveries_succeeded").value(), 0);
  EXPECT_NE(results_json(rows).find("run-failed"), std::string::npos);
}

TEST(Resilience, MalformedFaultPlanIsAJobErrorNotACrash) {
  BatchJob job = benchmark_job();
  job.fault_plan = "frobnicate the chip\n";
  BatchEngine engine{BatchOptions{}};
  const std::vector<BatchResult> rows = engine.run({job});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].status, JobStatus::Error);
  EXPECT_NE(rows[0].detail.find("fault plan"), std::string::npos);
}

TEST(Resilience, ResultsJsonCarriesResilienceFields) {
  BatchJob job = benchmark_job();
  // A device id beyond the inventory: the plan is live but harmless, so the
  // replay completes and no recovery runs.
  job.fault_plan = "device-fail 999 at 0\n";
  BatchEngine engine{BatchOptions{}};
  const std::vector<BatchResult> rows = engine.run({job});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].status, JobStatus::Ok) << rows[0].detail;
  EXPECT_EQ(rows[0].run_outcome, "completed");
  EXPECT_FALSE(rows[0].recovery_attempted);

  const std::string json = results_json(rows);
  EXPECT_NE(json.find("\"degraded\": false"), std::string::npos);
  EXPECT_NE(json.find("\"retries\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"run_outcome\": \"completed\""), std::string::npos);
  EXPECT_NE(json.find("\"recovery_attempted\": false"), std::string::npos);
  EXPECT_NE(json.find("\"recovered\": false"), std::string::npos);
}

}  // namespace
}  // namespace cohls::engine
