#include "engine/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

namespace cohls::engine {
namespace {

TEST(ThreadPool, RunsEveryJob) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([&ran](const CancellationToken&) { ++ran; }));
  }
  for (std::future<void>& future : futures) {
    future.get();
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1);
  std::atomic<bool> ran{false};
  pool.submit([&ran](const CancellationToken&) { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, PropagatesJobExceptions) {
  ThreadPool pool(1);
  std::future<void> future =
      pool.submit([](const CancellationToken&) { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, DeadlineTokenFires) {
  ThreadPool pool(1);
  std::future<void> future = pool.submit(
      [](const CancellationToken& token) {
        while (!token.cancelled()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        token.check("deadline job");
      },
      /*deadline_seconds=*/0.02);
  EXPECT_THROW(future.get(), CancelledError);
}

TEST(ThreadPool, TokenWithoutDeadlineDoesNotCancel) {
  ThreadPool pool(1);
  std::future<void> future = pool.submit(
      [](const CancellationToken& token) { EXPECT_FALSE(token.cancelled()); });
  future.get();
}

TEST(ThreadPool, DestructorDrainsQueuedJobs) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 8; ++i) {
      // Discard futures: completion is observed through `ran`.
      (void)pool.submit([&ran](const CancellationToken&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++ran;
      });
    }
  }
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, StopCancelsRunningAndAbandonsQueued) {
  ThreadPool pool(1);
  std::atomic<bool> started{false};
  std::future<void> running = pool.submit([&started](const CancellationToken& token) {
    started = true;
    while (!token.cancelled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  // Queued behind the running job; must never start after stop().
  std::atomic<bool> queued_ran{false};
  std::future<void> queued =
      pool.submit([&queued_ran](const CancellationToken&) { queued_ran = true; });

  while (!started.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  pool.stop();

  running.get();  // the running job winds down cooperatively
  EXPECT_THROW(queued.get(), std::future_error);
  EXPECT_FALSE(queued_ran.load());
}

TEST(ThreadPool, SubmitAfterStopFailsTheFuture) {
  ThreadPool pool(1);
  pool.stop();
  std::future<void> future = pool.submit([](const CancellationToken&) {});
  EXPECT_THROW(future.get(), CancelledError);
}

TEST(ThreadPool, PendingDropsToZero) {
  ThreadPool pool(2);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(pool.submit([](const CancellationToken&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }));
  }
  for (std::future<void>& future : futures) {
    future.get();
  }
  // The in-flight count is decremented just after the future is fulfilled,
  // so poll briefly instead of asserting instantly.
  for (int i = 0; i < 1000 && pool.pending() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(pool.pending(), 0);
}

}  // namespace
}  // namespace cohls::engine
