#include "engine/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace cohls::engine {
namespace {

TEST(Counter, AddsAndIncrements) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.increment();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42);
}

TEST(Histogram, CountsAndTotals) {
  Histogram histogram;
  EXPECT_EQ(histogram.count(), 0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 0.0);

  histogram.observe(0.001);
  histogram.observe(0.002);
  histogram.observe(0.004);
  EXPECT_EQ(histogram.count(), 3);
  EXPECT_NEAR(histogram.total_seconds(), 0.007, 1e-9);
}

TEST(Histogram, QuantilesAreMonotoneAndBucketAccurate) {
  Histogram histogram;
  for (int i = 0; i < 100; ++i) {
    histogram.observe(0.001);  // all samples in one bucket
  }
  const double p50 = histogram.quantile(0.5);
  const double p95 = histogram.quantile(0.95);
  EXPECT_LE(p50, p95);
  // The estimate may be off by the bucket's width, never more.
  EXPECT_GE(p95, 0.001 / 2);
  EXPECT_LE(p95, 0.001 * 2);
}

TEST(Histogram, BucketBoundsAreGeometric) {
  EXPECT_DOUBLE_EQ(Histogram::bucket_bound(1) / Histogram::bucket_bound(0), 2.0);
  EXPECT_LT(Histogram::bucket_bound(0), 2e-6);
}

TEST(Histogram, OverflowSamplesLandInLastBucket) {
  Histogram histogram;
  histogram.observe(1e9);  // beyond the last boundary
  EXPECT_EQ(histogram.count(), 1);
  EXPECT_GE(histogram.quantile(0.5), Histogram::bucket_bound(Histogram::kBuckets - 1));
}

TEST(MetricsRegistry, SameNameSameMetric) {
  MetricsRegistry registry;
  Counter& a = registry.counter("jobs");
  Counter& b = registry.counter("jobs");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = registry.histogram("latency");
  Histogram& h2 = registry.histogram("latency");
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistry, ReportsContainMetricNames) {
  MetricsRegistry registry;
  registry.counter("solved").add(7);
  registry.histogram("seconds").observe(0.5);

  const std::string text = registry.text_report();
  EXPECT_NE(text.find("solved"), std::string::npos);
  EXPECT_NE(text.find("7"), std::string::npos);
  EXPECT_NE(text.find("seconds"), std::string::npos);

  const std::string json = registry.json();
  EXPECT_NE(json.find("\"solved\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(MetricsRegistry, JsonListsNamesInStableOrder) {
  MetricsRegistry registry;
  registry.counter("zebra").increment();
  registry.counter("alpha").increment();
  const std::string json = registry.json();
  EXPECT_LT(json.find("alpha"), json.find("zebra"));
}

TEST(MetricsRegistry, ConcurrentUpdatesAreLossless) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Counter& counter = registry.counter("shared");
      Histogram& histogram = registry.histogram("shared_h");
      for (int i = 0; i < kPerThread; ++i) {
        counter.increment();
        histogram.observe(1e-4);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(registry.counter("shared").value(), kThreads * kPerThread);
  EXPECT_EQ(registry.histogram("shared_h").count(), kThreads * kPerThread);
}

}  // namespace
}  // namespace cohls::engine
