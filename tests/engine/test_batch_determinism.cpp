// Byte-level determinism of the engine's machine-readable artifacts: the
// stable results_json rendering must be identical across repeat runs, cache
// shard layouts, and --jobs values, and every metrics emission must be
// key-ordered (std::map iteration) so it never depends on hash-table layout.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "assays/benchmarks.hpp"
#include "engine/batch.hpp"
#include "io/assay_text.hpp"

namespace cohls::engine {
namespace {

BatchJob text_job(std::string name, const model::Assay& assay) {
  BatchJob job;
  job.name = std::move(name);
  job.text = io::to_text(assay);
  return job;
}

std::vector<BatchJob> benchmark_jobs() {
  return {text_job("case1", assays::kinase_activity_assay()),
          text_job("case2", assays::gene_expression_assay()),
          text_job("case3", assays::rt_qpcr_assay())};
}

std::string stable_json_for(BatchOptions options) {
  BatchEngine engine(options);
  return results_json(engine.run(benchmark_jobs()), /*stable=*/true);
}

TEST(BatchDeterminism, StableJsonIsByteIdenticalAcrossRepeatRuns) {
  const std::string first = stable_json_for(BatchOptions{});
  const std::string second = stable_json_for(BatchOptions{});
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"wall_seconds\": 0"), std::string::npos);
}

TEST(BatchDeterminism, StableJsonIsByteIdenticalAcrossShardLayouts) {
  // cache_shards is a lock-contention knob only: the documents must not
  // know how the cache spreads its locks.
  BatchOptions narrow;
  narrow.cache_shards = 1;
  BatchOptions medium;
  medium.cache_shards = 4;
  BatchOptions wide;
  wide.cache_shards = 64;
  const std::string baseline = stable_json_for(narrow);
  EXPECT_EQ(baseline, stable_json_for(medium));
  EXPECT_EQ(baseline, stable_json_for(wide));
}

TEST(BatchDeterminism, StableJsonIsByteIdenticalAcrossJobCounts) {
  BatchOptions serial;
  serial.jobs = 1;
  BatchOptions parallel_opts;
  parallel_opts.jobs = 4;
  EXPECT_EQ(stable_json_for(serial), stable_json_for(parallel_opts));
}

TEST(BatchDeterminism, UnstableJsonCarriesRealTimings) {
  BatchEngine engine{BatchOptions{}};
  const std::vector<BatchResult> rows = engine.run(benchmark_jobs());
  for (const BatchResult& row : rows) {
    EXPECT_GT(row.wall_seconds, 0.0) << row.name;
  }
  const std::string raw = results_json(rows);
  const std::string stable = results_json(rows, /*stable=*/true);
  EXPECT_NE(raw, stable) << "raw rendering lost its timings";
  EXPECT_EQ(raw.find("\"wall_seconds\": 0,"), std::string::npos);
  EXPECT_NE(stable.find("\"wall_seconds\": 0,"), std::string::npos);
}

/// Extracts the object keys of `json` in emission order, depth-first.
std::vector<std::string> object_keys(const std::string& json) {
  std::vector<std::string> keys;
  for (std::size_t i = 0; i + 1 < json.size(); ++i) {
    if (json[i] != '"') {
      continue;
    }
    const std::size_t close = json.find('"', i + 1);
    if (close == std::string::npos) {
      break;
    }
    if (close + 1 < json.size() && json[close + 1] == ':') {
      keys.push_back(json.substr(i + 1, close - i - 1));
    }
    i = close;
  }
  return keys;
}

TEST(BatchDeterminism, MetricsEmissionIsKeyOrdered) {
  BatchEngine engine{BatchOptions{}};
  engine.run(benchmark_jobs());
  const std::string json = engine.metrics_json();

  // Counter keys (between "counters" and "histograms") and the spliced
  // cache block's count keys must each be sorted — the registry and the
  // splice both emit through std::map, never through a hash table.
  const std::vector<std::string> keys = object_keys(json);
  const auto counters = std::find(keys.begin(), keys.end(), "counters");
  const auto histograms = std::find(keys.begin(), keys.end(), "histograms");
  const auto cache = std::find(keys.begin(), keys.end(), "cache");
  ASSERT_NE(counters, keys.end());
  ASSERT_NE(histograms, keys.end());
  ASSERT_NE(cache, keys.end());
  EXPECT_GT(histograms - counters, 1) << "no counters were registered";
  EXPECT_TRUE(std::is_sorted(counters + 1, histograms))
      << "counter keys not sorted in: " << json;
  const auto cache_counts_end =
      std::find(cache + 1, keys.end(), std::string("hit_rate"));
  ASSERT_NE(cache_counts_end, keys.end());
  EXPECT_TRUE(std::is_sorted(cache + 1, cache_counts_end))
      << "cache stat keys not sorted in: " << json;

  // The text report lists counters in the same sorted order.
  const std::string text = engine.report();
  const std::size_t hits = text.find("layer_cache_hits");
  const std::size_t solved = text.find("layers_solved");
  ASSERT_NE(hits, std::string::npos);
  ASSERT_NE(solved, std::string::npos);
  EXPECT_LT(hits, solved);
}

TEST(BatchDeterminism, CacheStatsAreShardLayoutInvariant) {
  BatchOptions narrow;
  narrow.cache_shards = 1;
  BatchOptions wide;
  wide.cache_shards = 64;
  BatchEngine a(narrow);
  BatchEngine b(wide);
  a.run(benchmark_jobs());
  b.run(benchmark_jobs());
  const CacheStats sa = a.cache().stats();
  const CacheStats sb = b.cache().stats();
  EXPECT_EQ(sa.hits, sb.hits);
  EXPECT_EQ(sa.misses, sb.misses);
  EXPECT_EQ(sa.stores, sb.stores);
  EXPECT_EQ(sa.evictions, sb.evictions);
}

}  // namespace
}  // namespace cohls::engine
