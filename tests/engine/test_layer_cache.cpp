#include "engine/layer_cache.hpp"

#include <gtest/gtest.h>

#include <set>

#include "model/assay.hpp"

namespace cohls::engine {
namespace {

model::OperationSpec op_spec(std::string name, long duration,
                             std::vector<OperationId> parents = {}) {
  model::OperationSpec spec;
  spec.name = std::move(name);
  spec.container = model::ContainerKind::Chamber;
  spec.capacity = model::Capacity::Tiny;
  spec.duration = Minutes{duration};
  spec.parents = std::move(parents);
  return spec;
}

/// Owns everything a LayerSolveContext references.
struct Fixture {
  model::Assay assay{"cache-test"};
  schedule::TransportPlan transport{Minutes{5}};
  model::CostModel costs{};
  core::EngineOptions engine{};
  model::DeviceInventory inventory{10};
  schedule::LayerRequest request;

  [[nodiscard]] core::LayerSolveContext context() const {
    return {request, assay, transport, costs, engine, inventory};
  }
  [[nodiscard]] core::LayerOutcome solve() const {
    return core::synthesize_layer(request, assay, transport, costs, engine, inventory);
  }
};

/// A fixture with one `chain`-op pipeline in the layer.
Fixture chain_fixture(int chain, long base_duration = 10) {
  Fixture f;
  std::vector<OperationId> parents;
  for (int i = 0; i < chain; ++i) {
    const OperationId id = f.assay.add_operation(
        op_spec("op" + std::to_string(i), base_duration + i, parents));
    parents = {id};
    f.request.ops.push_back(id);
  }
  return f;
}

TEST(LayerSolutionCache, MissThenStoreThenHit) {
  Fixture f = chain_fixture(3);
  LayerSolutionCache cache;
  EXPECT_FALSE(cache.lookup(f.context()).has_value());

  const core::LayerOutcome outcome = f.solve();
  cache.store(f.context(), outcome);
  const std::optional<core::LayerOutcome> hit = cache.lookup(f.context());
  ASSERT_TRUE(hit.has_value());

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.stores, 1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(LayerSolutionCache, HitReproducesTheSolveExactly) {
  Fixture f = chain_fixture(3);
  LayerSolutionCache cache;
  const core::LayerOutcome outcome = f.solve();
  cache.store(f.context(), outcome);
  const std::optional<core::LayerOutcome> hit = cache.lookup(f.context());
  ASSERT_TRUE(hit.has_value());
  // Compare through the canonical encoding — it covers schedule, devices,
  // consumed hints, engine choice and score.
  EXPECT_TRUE(LayerSolutionCache::encode(f.context(), *hit) ==
              LayerSolutionCache::encode(f.context(), outcome));
  EXPECT_EQ(hit->inventory.size(), outcome.inventory.size());
}

TEST(LayerSolutionCache, NormalizedHitAcrossReplicatedPipelines) {
  // Two structurally identical pipelines in one assay: solving {0,1,2}
  // must produce a hit for {3,4,5}, decoded onto the second pipeline's ids.
  Fixture f;
  std::vector<OperationId> first_ops;
  std::vector<OperationId> second_ops;
  for (int pipeline = 0; pipeline < 2; ++pipeline) {
    std::vector<OperationId> parents;
    for (int i = 0; i < 3; ++i) {
      const OperationId id =
          f.assay.add_operation(op_spec("op" + std::to_string(i), 10 + i, parents));
      parents = {id};
      (pipeline == 0 ? first_ops : second_ops).push_back(id);
    }
  }

  schedule::LayerRequest first = f.request;
  first.layer = LayerId{0};
  first.ops = first_ops;
  schedule::LayerRequest second = f.request;
  second.layer = LayerId{1};
  second.ops = second_ops;

  LayerSolutionCache cache;
  const core::LayerSolveContext context_a{first, f.assay, f.transport,
                                          f.costs, f.engine, f.inventory};
  cache.store(context_a,
              core::synthesize_layer(first, f.assay, f.transport, f.costs,
                                     f.engine, f.inventory));

  const core::LayerSolveContext context_b{second, f.assay, f.transport,
                                          f.costs, f.engine, f.inventory};
  const std::optional<core::LayerOutcome> hit = cache.lookup(context_b);
  ASSERT_TRUE(hit.has_value());

  const std::set<OperationId> expected(second_ops.begin(), second_ops.end());
  ASSERT_EQ(hit->result.schedule.items.size(), 3u);
  for (const schedule::ScheduledOperation& item : hit->result.schedule.items) {
    EXPECT_TRUE(expected.count(item.op) > 0)
        << "decoded schedule references pipeline-1 op " << item.op;
  }
  EXPECT_EQ(hit->result.schedule.layer, LayerId{1});
}

TEST(LayerSolutionCache, DifferentContextsNeverAlias) {
  // One shard forces every entry into the same bucket chain; the full-text
  // compare must still keep distinct contexts apart.
  LayerSolutionCache cache(/*capacity=*/8, /*shards=*/1);
  Fixture a = chain_fixture(2, 10);
  Fixture b = chain_fixture(2, 99);
  cache.store(a.context(), a.solve());
  EXPECT_FALSE(cache.lookup(b.context()).has_value());
  cache.store(b.context(), b.solve());

  const std::optional<core::LayerOutcome> hit_a = cache.lookup(a.context());
  const std::optional<core::LayerOutcome> hit_b = cache.lookup(b.context());
  ASSERT_TRUE(hit_a.has_value());
  ASSERT_TRUE(hit_b.has_value());
  EXPECT_EQ(hit_a->result.schedule.items.front().duration, Minutes{10});
  EXPECT_EQ(hit_b->result.schedule.items.front().duration, Minutes{99});
}

TEST(LayerSolutionCache, LruEvictionBoundsTheSize) {
  LayerSolutionCache cache(/*capacity=*/2, /*shards=*/1);
  Fixture a = chain_fixture(1, 10);
  Fixture b = chain_fixture(1, 20);
  Fixture c = chain_fixture(1, 30);
  cache.store(a.context(), a.solve());
  cache.store(b.context(), b.solve());
  // Touch `a` so `b` is the least recently used entry.
  EXPECT_TRUE(cache.lookup(a.context()).has_value());
  cache.store(c.context(), c.solve());

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_TRUE(cache.lookup(a.context()).has_value());
  EXPECT_FALSE(cache.lookup(b.context()).has_value());  // evicted
  EXPECT_TRUE(cache.lookup(c.context()).has_value());
}

TEST(LayerSolutionCache, FirstWriterWins) {
  LayerSolutionCache cache;
  Fixture f = chain_fixture(2);
  const core::LayerOutcome outcome = f.solve();
  cache.store(f.context(), outcome);
  cache.store(f.context(), outcome);  // duplicate store is a no-op
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().stores, 1);
}

TEST(LayerSolutionCache, UncacheableContextsBypassTheCache) {
  LayerSolutionCache cache;
  Fixture f = chain_fixture(2);
  f.request.binds = [](const model::Operation&, const model::DeviceConfig&) {
    return true;
  };
  EXPECT_FALSE(cache.lookup(f.context()).has_value());
  cache.store(f.context(), chain_fixture(2).solve());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().stores, 0);
  // Bypass is not a miss: the context could never be served.
  EXPECT_EQ(cache.stats().misses, 0);
}

TEST(LayerSolutionCache, VerifyHitsModeAcceptsSoundEntries) {
  LayerSolutionCache cache;
  cache.set_verify_hits(true);
  Fixture f = chain_fixture(3);
  cache.store(f.context(), f.solve());
  // Would abort via COHLS_ASSERT if the signature were incomplete.
  EXPECT_TRUE(cache.lookup(f.context()).has_value());
}

TEST(LayerSolutionCache, EncodeDecodeRoundTripsCreatedDevices) {
  Fixture f = chain_fixture(3);
  const core::LayerOutcome outcome = f.solve();
  ASSERT_GT(outcome.inventory.size(), f.inventory.size());

  const LayerSolutionCache::CachedSolution cached =
      LayerSolutionCache::encode(f.context(), outcome);
  EXPECT_EQ(static_cast<int>(cached.created.size()),
            outcome.inventory.size() - f.inventory.size());

  const core::LayerOutcome decoded = LayerSolutionCache::decode(f.context(), cached);
  EXPECT_TRUE(LayerSolutionCache::encode(f.context(), decoded) == cached);
}

}  // namespace
}  // namespace cohls::engine
