// Cooperative cancellation end to end: token semantics, the branch-and-bound
// node loop, and the synthesis flow's layer / iteration checkpoints.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "assays/benchmarks.hpp"
#include "core/progressive_resynthesis.hpp"
#include "milp/branch_and_bound.hpp"
#include "util/cancellation.hpp"

namespace cohls {
namespace {

TEST(CancellationToken, DefaultTokenIsInert) {
  CancellationToken token;
  EXPECT_FALSE(token.can_cancel());
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.check("anything"));
}

TEST(CancellationToken, StopRequestPropagatesToAllTokens) {
  CancellationSource source;
  CancellationToken a = source.token();
  CancellationToken b = source.token();
  EXPECT_TRUE(a.can_cancel());
  EXPECT_FALSE(a.cancelled());
  source.request_stop();
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
  EXPECT_THROW(a.check("solve"), CancelledError);
}

TEST(CancellationToken, DeadlineFires) {
  CancellationSource source;
  CancellationToken token = source.token_with_deadline(0.005);
  // May or may not be cancelled immediately; must be after the deadline.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(token.cancelled());
}

TEST(CancellationToken, NonPositiveDeadlineMeansNone) {
  CancellationSource source;
  CancellationToken token = source.token_with_deadline(0.0);
  EXPECT_FALSE(token.cancelled());
}

/// An equality knapsack with all-even weights and an odd target: integral
/// infeasible, but every LP relaxation is feasible, so branch-and-bound
/// must explore an exponential tree to prove it. Intractable at n = 40 —
/// unless cancellation stops it.
milp::MilpModel hard_model(int n) {
  milp::MilpModel model;
  std::vector<lp::Term> terms;
  for (int i = 0; i < n; ++i) {
    const lp::Col x = model.add_binary(/*objective=*/1.0);
    terms.push_back({x, 2.0});
  }
  model.add_constraint(terms, lp::RowSense::Equal, static_cast<double>(n) + 1.0);
  return model;
}

TEST(Cancellation, PreCancelledTokenStopsBranchAndBoundBeforeAnyNode) {
  CancellationSource source;
  source.request_stop();
  milp::MilpOptions options;
  options.max_nodes = 0;  // unlimited
  options.time_limit_seconds = 0.0;
  options.cancel = source.token();
  const milp::MilpSolution solution = milp::solve_milp(hard_model(40), options);
  EXPECT_TRUE(solution.cancelled);
  EXPECT_EQ(solution.status, milp::MilpStatus::NoSolution);
  EXPECT_EQ(solution.nodes, 0);
}

TEST(Cancellation, DeadlineStopsLongBranchAndBoundSolve) {
  // Without the token this solve would effectively never finish; the test
  // terminating at all is the point.
  CancellationSource source;
  milp::MilpOptions options;
  options.max_nodes = 0;  // unlimited
  options.time_limit_seconds = 0.0;
  options.cancel = source.token_with_deadline(0.05);
  const milp::MilpSolution solution = milp::solve_milp(hard_model(40), options);
  EXPECT_TRUE(solution.cancelled);
  EXPECT_GT(solution.nodes, 0);
}

TEST(Cancellation, CrossThreadStopRequestStopsSolver) {
  CancellationSource source;
  milp::MilpOptions options;
  options.max_nodes = 0;
  options.time_limit_seconds = 0.0;
  options.cancel = source.token();
  std::thread stopper([&source] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    source.request_stop();
  });
  const milp::MilpSolution solution = milp::solve_milp(hard_model(40), options);
  stopper.join();
  EXPECT_TRUE(solution.cancelled);
}

TEST(Cancellation, SynthesisThrowsCancelledError) {
  CancellationSource source;
  source.request_stop();
  core::SynthesisOptions options;
  options.cancel = source.token();
  const model::Assay assay = assays::kinase_activity_assay();
  EXPECT_THROW((void)core::synthesize(assay, options), CancelledError);
}

TEST(Cancellation, UncancelledSynthesisStillSucceeds) {
  CancellationSource source;
  core::SynthesisOptions options;
  options.cancel = source.token();
  const model::Assay assay = assays::kinase_activity_assay();
  const core::SynthesisReport report = core::synthesize(assay, options);
  EXPECT_FALSE(report.result.layers.empty());
}

}  // namespace
}  // namespace cohls
