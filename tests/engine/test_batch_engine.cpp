// End-to-end behavior of the batch-synthesis engine: determinism across job
// counts, shared-cache reuse, failure classification, manifest parsing, and
// a concurrency smoke test (run under TSan in CI).
#include "engine/batch.hpp"

#include <gtest/gtest.h>

#include "assays/benchmarks.hpp"
#include "io/assay_text.hpp"

namespace cohls::engine {
namespace {

BatchJob text_job(std::string name, const model::Assay& assay) {
  BatchJob job;
  job.name = std::move(name);
  job.text = io::to_text(assay);
  return job;
}

std::vector<BatchJob> benchmark_jobs() {
  return {text_job("case1", assays::kinase_activity_assay()),
          text_job("case2", assays::gene_expression_assay()),
          text_job("case3", assays::rt_qpcr_assay())};
}

TEST(BatchEngine, SynthesizesAManifest) {
  BatchEngine engine{BatchOptions{}};
  const std::vector<BatchResult> rows = engine.run(benchmark_jobs());
  ASSERT_EQ(rows.size(), 3u);
  for (const BatchResult& row : rows) {
    EXPECT_EQ(row.status, JobStatus::Ok) << row.name << ": " << row.detail;
    EXPECT_FALSE(row.result_text.empty());
    EXPECT_GT(row.summary.devices, 0);
    EXPECT_GT(row.summary.layers, 0);
    EXPECT_GT(row.summary.objective, 0.0);
  }
  EXPECT_EQ(rows[0].name, "case1");
  EXPECT_EQ(rows[2].name, "case3");
}

TEST(BatchEngine, ResultsAreIdenticalForAnyJobCount) {
  // The acceptance bar of the subsystem: --jobs N must be byte-identical
  // to --jobs 1 on the three benchmark assays.
  BatchOptions serial;
  serial.jobs = 1;
  BatchEngine one(serial);
  const std::vector<BatchResult> baseline = one.run(benchmark_jobs());

  BatchOptions parallel_opts;
  parallel_opts.jobs = 8;
  BatchEngine eight(parallel_opts);
  const std::vector<BatchResult> wide = eight.run(benchmark_jobs());

  ASSERT_EQ(baseline.size(), wide.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(baseline[i].status, JobStatus::Ok);
    EXPECT_EQ(baseline[i].result_text, wide[i].result_text)
        << baseline[i].name << " differs between --jobs 1 and --jobs 8";
    EXPECT_EQ(baseline[i].summary.execution_time, wide[i].summary.execution_time);
    EXPECT_DOUBLE_EQ(baseline[i].summary.objective, wide[i].summary.objective);
  }
}

TEST(BatchEngine, CacheDisabledIsStillIdentical) {
  BatchOptions no_cache;
  no_cache.cache_capacity = 0;
  BatchEngine uncached(no_cache);
  BatchEngine cached{BatchOptions{}};
  const std::vector<BatchResult> a = uncached.run(benchmark_jobs());
  const std::vector<BatchResult> b = cached.run(benchmark_jobs());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].result_text, b[i].result_text);
  }
  EXPECT_EQ(uncached.cache().stats().stores, 0);
}

TEST(BatchEngine, ResubmissionHitsTheCache) {
  BatchEngine engine{BatchOptions{}};
  const std::vector<BatchJob> jobs = {text_job("case3", assays::rt_qpcr_assay())};
  (void)engine.run(jobs);
  const CacheStats first = engine.cache().stats();
  (void)engine.run(jobs);
  const CacheStats second = engine.cache().stats();
  EXPECT_GT(second.hits, first.hits);
  EXPECT_EQ(second.stores, first.stores);  // nothing new to learn
  EXPECT_GT(second.hit_rate(), 0.0);
}

TEST(BatchEngine, VerifiedCacheHitsOnReplicatedAssays) {
  // verify_cache_hits re-solves every hit and aborts on any divergence, so
  // a green run here is a proof of signature completeness on real assays.
  BatchOptions options;
  options.verify_cache_hits = true;
  BatchEngine engine(options);
  for (int round = 0; round < 2; ++round) {
    const std::vector<BatchResult> rows = engine.run(benchmark_jobs());
    for (const BatchResult& row : rows) {
      EXPECT_EQ(row.status, JobStatus::Ok) << row.detail;
    }
  }
  EXPECT_GT(engine.cache().stats().hits, 0);
}

TEST(BatchEngine, ClassifiesParseErrors) {
  BatchEngine engine{BatchOptions{}};
  BatchJob bad;
  bad.name = "garbage";
  bad.text = "this is not an assay";
  const std::vector<BatchResult> rows = engine.run({bad});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows.front().status, JobStatus::ParseError);
  EXPECT_FALSE(rows.front().detail.empty());
}

TEST(BatchEngine, ClassifiesLintFailures) {
  BatchEngine engine{BatchOptions{}};
  BatchJob cyclic;
  cyclic.name = "cyclic";
  cyclic.text =
      "assay \"c\"\n"
      "operation 0 \"a\" duration=5 parents=1\n"
      "operation 1 \"b\" duration=5 parents=0\n";
  const std::vector<BatchResult> rows = engine.run({cyclic});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows.front().status, JobStatus::LintFailed);
  EXPECT_TRUE(rows.front().result_text.empty());
  ASSERT_FALSE(rows.front().diagnostics.empty());
  EXPECT_EQ(rows.front().diagnostics.front().code, diag::codes::kDependencyCycle);
  // The detail line leads with the stable code.
  EXPECT_EQ(rows.front().detail.rfind(diag::codes::kDependencyCycle, 0), 0u);
  EXPECT_EQ(engine.metrics().counter("lint_failed").value(), 1);
  EXPECT_EQ(engine.metrics().counter("jobs_failed").value(), 1);
}

TEST(BatchEngine, LintOnlySkipsTheSolver) {
  BatchOptions options;
  options.lint_only = true;
  BatchEngine engine(options);
  const std::vector<BatchResult> rows =
      engine.run({text_job("case1", assays::kinase_activity_assay())});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows.front().status, JobStatus::Ok);
  EXPECT_TRUE(rows.front().result_text.empty());
  EXPECT_EQ(rows.front().summary.devices, 0);
  EXPECT_EQ(engine.metrics().counter("lint_passed").value(), 1);
  EXPECT_EQ(engine.metrics().counter("layers_solved").value(), 0);
}

TEST(BatchEngine, LintDisabledFallsBackToBuildErrors) {
  BatchOptions options;
  options.lint = false;
  BatchEngine engine(options);
  BatchJob cyclic;
  cyclic.name = "cyclic";
  cyclic.text =
      "assay \"c\"\n"
      "operation 0 \"a\" duration=5 parents=1\n"
      "operation 1 \"b\" duration=5 parents=0\n";
  const std::vector<BatchResult> rows = engine.run({cyclic});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows.front().status, JobStatus::ParseError);
  EXPECT_EQ(engine.metrics().counter("lint_failed").value(), 0);
}

TEST(BatchEngine, WarningsAsErrorsFailTheJobAndShowInJson) {
  // rt-qPCR's 20-capture cluster warns (W101) at the default threshold; with
  // --Werror that fails the job before any solving happens.
  BatchOptions options;
  options.warnings_as_errors = true;
  BatchEngine engine(options);
  const std::vector<BatchResult> rows =
      engine.run({text_job("case3", assays::rt_qpcr_assay())});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows.front().status, JobStatus::LintFailed);
  ASSERT_FALSE(rows.front().diagnostics.empty());
  EXPECT_EQ(rows.front().diagnostics.front().code,
            diag::codes::kOverThresholdCluster);
  EXPECT_EQ(engine.metrics().counter("layers_solved").value(), 0);

  const std::string json = results_json(rows);
  EXPECT_NE(json.find("\"status\": \"lint_failed\""), std::string::npos);
  EXPECT_NE(json.find(diag::codes::kOverThresholdCluster), std::string::npos);
}

TEST(BatchEngine, ResultsJsonCoversCleanRuns) {
  BatchEngine engine{BatchOptions{}};
  const std::vector<BatchResult> rows =
      engine.run({text_job("case1", assays::kinase_activity_assay())});
  const std::string json = results_json(rows);
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"name\": \"case1\""), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"diagnostics\": []"), std::string::npos);
}

TEST(BatchEngine, ClassifiesUnreadableFiles) {
  BatchEngine engine{BatchOptions{}};
  BatchJob missing;
  missing.path = "/nonexistent/assay.file";
  const std::vector<BatchResult> rows = engine.run({missing});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows.front().status, JobStatus::Error);
}

TEST(BatchEngine, ExpiredDeadlineCancelsTheJob) {
  BatchEngine engine{BatchOptions{}};
  BatchJob job = text_job("case3", assays::rt_qpcr_assay());
  job.deadline_seconds = 1e-9;  // expires before the first layer solve
  const std::vector<BatchResult> rows = engine.run({job});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows.front().status, JobStatus::Cancelled);
  EXPECT_EQ(engine.metrics().counter("jobs_cancelled").value(), 1);
}

TEST(BatchEngine, FailedJobsDoNotPoisonLaterRounds) {
  BatchEngine engine{BatchOptions{}};
  BatchJob job = text_job("case1", assays::kinase_activity_assay());
  BatchJob doomed = job;
  doomed.deadline_seconds = 1e-9;
  (void)engine.run({doomed});
  const std::vector<BatchResult> rows = engine.run({job});
  EXPECT_EQ(rows.front().status, JobStatus::Ok) << rows.front().detail;
}

TEST(BatchEngine, MetricsCoverSolvesAndJobs) {
  BatchEngine engine{BatchOptions{}};
  (void)engine.run(benchmark_jobs());
  EXPECT_EQ(engine.metrics().counter("jobs_completed").value(), 3);
  EXPECT_GT(engine.metrics().counter("layers_solved").value(), 0);
  EXPECT_GT(engine.metrics().histogram("layer_solve_seconds").count(), 0);

  const std::string json = engine.metrics_json();
  EXPECT_NE(json.find("\"jobs_completed\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"cache\""), std::string::npos);
  EXPECT_NE(json.find("\"hit_rate\""), std::string::npos);
  EXPECT_EQ(json.back(), '}');

  const std::string report = engine.report();
  EXPECT_NE(report.find("layer cache:"), std::string::npos);
}

TEST(BatchEngine, ConcurrencySmoke) {
  // Many concurrent jobs sharing one cache and one metrics registry; run
  // under TSan in CI to surface data races. Small assay variants keep it
  // fast enough to repeat.
  BatchOptions options;
  options.jobs = 8;
  BatchEngine engine(options);
  std::vector<BatchJob> jobs;
  for (int i = 0; i < 16; ++i) {
    jobs.push_back(text_job("job" + std::to_string(i),
                            assays::gene_expression_assay(2 + i % 3)));
  }
  const std::vector<BatchResult> rows = engine.run(jobs);
  ASSERT_EQ(rows.size(), jobs.size());
  for (const BatchResult& row : rows) {
    EXPECT_EQ(row.status, JobStatus::Ok) << row.name << ": " << row.detail;
  }
  // Replicated variants share layer contexts, so the shared cache must hit.
  EXPECT_GT(engine.cache().stats().hits, 0);
  EXPECT_EQ(engine.metrics().counter("jobs_completed").value(), 16);
}

TEST(JobsFromManifest, ParsesPathsCommentsAndBlanks) {
  const std::string manifest =
      "# comment\n"
      "\n"
      "a.assay\n"
      "  sub/b.assay  \n"
      "/abs/c.assay\n";
  core::SynthesisOptions options;
  options.max_devices = 7;
  const std::vector<BatchJob> jobs = jobs_from_manifest(manifest, "/base", options);
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].path, "/base/a.assay");
  EXPECT_EQ(jobs[1].path, "/base/sub/b.assay");
  EXPECT_EQ(jobs[2].path, "/abs/c.assay");
  EXPECT_EQ(jobs[0].name, "a.assay");
  EXPECT_EQ(jobs[0].options.max_devices, 7);
}

TEST(JobStatusNames, AreStable) {
  EXPECT_EQ(to_string(JobStatus::Ok), "ok");
  EXPECT_EQ(to_string(JobStatus::ParseError), "parse-error");
  EXPECT_EQ(to_string(JobStatus::LintFailed), "lint_failed");
  EXPECT_EQ(to_string(JobStatus::Cancelled), "cancelled");
}

TEST(MilpThreadArbitration, SharesTheMachineBetweenJobsAndSolverTeams) {
  // jobs x milp-threads must never exceed the hardware threads. 0 = auto
  // takes the per-job share; explicit requests are clamped to it.
  EXPECT_EQ(arbitrated_milp_threads(0, 1, 8), 8);   // one job: whole machine
  EXPECT_EQ(arbitrated_milp_threads(0, 2, 8), 4);   // auto per-job share
  EXPECT_EQ(arbitrated_milp_threads(0, 3, 8), 2);   // floor(8/3)
  EXPECT_EQ(arbitrated_milp_threads(8, 4, 8), 2);   // explicit, clamped
  EXPECT_EQ(arbitrated_milp_threads(2, 2, 8), 2);   // explicit, within budget
  EXPECT_EQ(arbitrated_milp_threads(1, 8, 8), 1);   // sequential stays sequential
}

TEST(MilpThreadArbitration, DegradesToOneWorkerWhenTheMachineIsCovered) {
  // The batch pool already saturates (or overshoots) the cores: every
  // solve degrades to a single sequential worker rather than oversubscribe.
  EXPECT_EQ(arbitrated_milp_threads(0, 8, 8), 1);
  EXPECT_EQ(arbitrated_milp_threads(0, 16, 8), 1);
  EXPECT_EQ(arbitrated_milp_threads(4, 16, 8), 1);
  EXPECT_EQ(arbitrated_milp_threads(0, 4, 1), 1);  // single-core host
}

TEST(BatchEngine, ParallelMilpTeamsReproduceTheSequentialObjectives) {
  // --milp-threads != 1 trades bit-identity for objective-identity: the
  // incumbent vector may differ when optima tie, but status and objective
  // must match the sequential engine on the benchmark assays.
  BatchOptions sequential;
  BatchEngine one(sequential);
  const std::vector<BatchResult> baseline = one.run(benchmark_jobs());

  BatchOptions teamed;
  teamed.milp_threads = 4;
  BatchEngine four(teamed);
  const std::vector<BatchResult> wide = four.run(benchmark_jobs());

  ASSERT_EQ(baseline.size(), wide.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(baseline[i].status, wide[i].status) << baseline[i].name;
    // Not the result text or the execution time: tied optima may trade
    // schedule time against other objective components.
    EXPECT_NEAR(baseline[i].summary.objective, wide[i].summary.objective, 1e-6)
        << baseline[i].name;
  }
}

}  // namespace
}  // namespace cohls::engine
