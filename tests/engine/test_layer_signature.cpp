// The canonical layer signature must (a) coincide for contexts that are
// equal up to monotone relabeling of operation / device ids — that is what
// makes replicated pipelines and re-submitted assays hit the cache — and
// (b) differ whenever anything the layer solver reads differs.
#include "engine/layer_signature.hpp"

#include <gtest/gtest.h>

#include "model/assay.hpp"

namespace cohls::engine {
namespace {

model::OperationSpec op_spec(std::string name, long duration,
                             std::vector<OperationId> parents = {}) {
  model::OperationSpec spec;
  spec.name = std::move(name);
  spec.container = model::ContainerKind::Chamber;
  spec.capacity = model::Capacity::Tiny;
  spec.duration = Minutes{duration};
  spec.parents = std::move(parents);
  return spec;
}

/// Owns everything a LayerSolveContext references.
struct Fixture {
  model::Assay assay{"sig-test"};
  schedule::TransportPlan transport{Minutes{5}};
  model::CostModel costs{};
  core::EngineOptions engine{};
  model::DeviceInventory inventory{10};
  schedule::LayerRequest request;

  [[nodiscard]] core::LayerSolveContext context() const {
    return {request, assay, transport, costs, engine, inventory};
  }
};

/// Two structurally identical 3-op pipelines: ops {0,1,2} and {3,4,5}.
Fixture replicated_fixture() {
  Fixture f;
  for (int pipeline = 0; pipeline < 2; ++pipeline) {
    const OperationId a = f.assay.add_operation(op_spec("capture", 10));
    const OperationId b = f.assay.add_operation(op_spec("react", 20, {a}));
    f.assay.add_operation(op_spec("detect", 5, {b}));
  }
  return f;
}

TEST(LayerSignature, ReplicatedPipelinesShareOneSignature) {
  const Fixture f = replicated_fixture();
  schedule::LayerRequest first = f.request;
  first.ops = {OperationId{0}, OperationId{1}, OperationId{2}};
  schedule::LayerRequest second = f.request;
  second.ops = {OperationId{3}, OperationId{4}, OperationId{5}};

  const core::LayerSolveContext context_a{first, f.assay, f.transport,
                                          f.costs, f.engine, f.inventory};
  const core::LayerSolveContext context_b{second, f.assay, f.transport,
                                          f.costs, f.engine, f.inventory};
  const LayerSignature sig_a = layer_signature(context_a);
  const LayerSignature sig_b = layer_signature(context_b);
  EXPECT_EQ(sig_a.text, sig_b.text);
  EXPECT_EQ(sig_a.hash, sig_b.hash);
}

TEST(LayerSignature, LayerIdDoesNotAffectTheSignature) {
  const Fixture f = replicated_fixture();
  schedule::LayerRequest first = f.request;
  first.layer = LayerId{0};
  first.ops = {OperationId{0}, OperationId{1}, OperationId{2}};
  schedule::LayerRequest second = first;
  second.layer = LayerId{4};

  const core::LayerSolveContext context_a{first, f.assay, f.transport,
                                          f.costs, f.engine, f.inventory};
  const core::LayerSolveContext context_b{second, f.assay, f.transport,
                                          f.costs, f.engine, f.inventory};
  EXPECT_EQ(layer_signature(context_a).text, layer_signature(context_b).text);
}

TEST(LayerSignature, OperationDurationChangesTheSignature) {
  Fixture f;
  f.assay.add_operation(op_spec("only", 10));
  f.request.ops = {OperationId{0}};
  const LayerSignature before = layer_signature(f.context());

  Fixture g;
  g.assay.add_operation(op_spec("only", 11));
  g.request.ops = {OperationId{0}};
  EXPECT_NE(before.text, layer_signature(g.context()).text);
}

TEST(LayerSignature, DescendantConeAttributesChangeTheSignature) {
  // The layer contains only op 0, but the scheduler's pipeline lookahead
  // reads descendants — so a difference in a child outside the layer must
  // change the key.
  Fixture f;
  const OperationId root_f = f.assay.add_operation(op_spec("root", 10));
  f.assay.add_operation(op_spec("child", 20, {root_f}));
  f.request.ops = {root_f};

  Fixture g;
  const OperationId root_g = g.assay.add_operation(op_spec("root", 10));
  g.assay.add_operation(op_spec("child", 21, {root_g}));
  g.request.ops = {root_g};

  EXPECT_NE(layer_signature(f.context()).text, layer_signature(g.context()).text);
}

TEST(LayerSignature, InheritedInventoryChangesTheSignature) {
  Fixture f;
  f.assay.add_operation(op_spec("only", 10));
  f.request.ops = {OperationId{0}};
  const LayerSignature empty_inventory = layer_signature(f.context());

  const DeviceId device = f.inventory.instantiate(model::DeviceConfig{}, LayerId{0});
  f.request.usable_devices = {device};
  EXPECT_NE(empty_inventory.text, layer_signature(f.context()).text);
}

TEST(LayerSignature, PriorBindingChangesTheSignature) {
  // One op whose parent lives in an earlier layer: whether (and where) that
  // parent was bound feeds the scheduler's transport arithmetic.
  Fixture f;
  const OperationId parent = f.assay.add_operation(op_spec("early", 10));
  const OperationId child = f.assay.add_operation(op_spec("late", 20, {parent}));
  const DeviceId device = f.inventory.instantiate(model::DeviceConfig{}, LayerId{0});
  f.request.ops = {child};
  f.request.usable_devices = {device};
  const LayerSignature unbound = layer_signature(f.context());

  f.request.prior_binding[parent] = device;
  EXPECT_NE(unbound.text, layer_signature(f.context()).text);
}

TEST(LayerSignature, HintOrderIsPartOfTheSignature) {
  Fixture f;
  f.assay.add_operation(op_spec("only", 10));
  f.request.ops = {OperationId{0}};
  model::DeviceConfig ring;
  ring.container = model::ContainerKind::Ring;
  ring.capacity = model::Capacity::Small;
  const model::DeviceConfig chamber{};

  f.request.hints = {{ring, 0}, {chamber, 1}};
  const LayerSignature forward = layer_signature(f.context());
  f.request.hints = {{chamber, 0}, {ring, 1}};
  EXPECT_NE(forward.text, layer_signature(f.context()).text);
}

TEST(LayerSignature, HintKeysAreNotPartOfTheSignature) {
  Fixture f;
  f.assay.add_operation(op_spec("only", 10));
  f.request.ops = {OperationId{0}};
  f.request.hints = {{model::DeviceConfig{}, 7}};
  const LayerSignature first = layer_signature(f.context());
  f.request.hints = {{model::DeviceConfig{}, 99}};
  // Keys are caller bookkeeping, re-mapped on decode; the key text is equal.
  EXPECT_EQ(first.text, layer_signature(f.context()).text);
}

TEST(LayerSignature, EngineBudgetChangesTheSignature) {
  Fixture f;
  f.assay.add_operation(op_spec("only", 10));
  f.request.ops = {OperationId{0}};
  const LayerSignature before = layer_signature(f.context());
  f.engine.milp.max_nodes += 1;
  EXPECT_NE(before.text, layer_signature(f.context()).text);
}

TEST(LayerSignature, CacheableRejectsCustomPoliciesAndWarmStarts) {
  Fixture f;
  f.assay.add_operation(op_spec("only", 10));
  f.request.ops = {OperationId{0}};
  EXPECT_TRUE(cacheable(f.context()));

  schedule::LayerRequest with_binds = f.request;
  with_binds.binds = [](const model::Operation&, const model::DeviceConfig&) {
    return true;
  };
  const core::LayerSolveContext custom{with_binds, f.assay, f.transport,
                                       f.costs, f.engine, f.inventory};
  EXPECT_FALSE(cacheable(custom));

  Fixture warm = replicated_fixture();
  warm.request.ops = {OperationId{0}};
  warm.engine.milp.warm_start = std::vector<double>{1.0};
  EXPECT_FALSE(cacheable(warm.context()));
}

TEST(Fnv1a, IsDeterministicAndDiscriminates) {
  EXPECT_EQ(fnv1a("layer"), fnv1a("layer"));
  EXPECT_NE(fnv1a("layer"), fnv1a("layes"));
  // Published FNV-1a reference value for the empty string.
  EXPECT_EQ(fnv1a(""), 14695981039346656037ULL);
}

}  // namespace
}  // namespace cohls::engine
