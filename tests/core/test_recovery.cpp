#include "core/recovery.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "assays/benchmarks.hpp"
#include "sim/runtime.hpp"

namespace cohls::core {
namespace {

struct Fixture {
  model::Assay assay = assays::gene_expression_assay(3);
  SynthesisOptions options;
  SynthesisReport report;

  Fixture() {
    options.max_devices = 12;
    options.layering.indeterminate_threshold = 3;
    report = synthesize(assay, options);
  }

  /// A broken trace: the device executing the first scheduled operation
  /// dies at `at` minutes into a deterministic (always-succeeds) replay.
  [[nodiscard]] sim::RunTrace break_at(Minutes at) const {
    sim::RuntimeOptions runtime;
    runtime.attempt_success_probability = 1.0;
    const DeviceId victim = report.result.layers.front().items.front().device;
    runtime.faults.events.push_back(
        sim::FaultEvent{sim::FaultKind::DeviceFailure, victim, OperationId{}, at});
    return sim::simulate_run(report.result, assay, runtime);
  }
};

TEST(BuildResidual, DropsCompletedOpsAndStrikesTheFailedDevice) {
  const Fixture f;
  const sim::RunTrace trace = f.break_at(30_min);
  ASSERT_FALSE(trace.ok());
  const ResidualAssay residual = build_residual(f.assay, f.report.result, trace);

  EXPECT_EQ(residual.assay.operation_count(),
            f.assay.operation_count() - static_cast<int>(trace.completed.size()));
  EXPECT_EQ(static_cast<int>(residual.surviving_devices.size()),
            f.report.result.devices.size() - 1);
  EXPECT_EQ(residual.device_map.count(trace.failure->device), 0u);

  // The id maps are inverse bijections and completed originals are absent.
  for (const auto& [residual_id, original_id] : residual.to_original) {
    EXPECT_EQ(residual.from_original.at(original_id), residual_id);
    EXPECT_TRUE(std::none_of(trace.completed.begin(), trace.completed.end(),
                             [&](OperationId done) { return done == original_id; }));
  }

  // Parent edges survive the remap exactly when the parent is outstanding.
  for (const model::Operation& op : residual.assay.operations()) {
    const model::Operation& original =
        f.assay.operation(residual.to_original.at(op.id()));
    std::set<OperationId> expected;
    for (const OperationId parent : original.parents()) {
      if (residual.from_original.count(parent) > 0) {
        expected.insert(residual.from_original.at(parent));
      }
    }
    const std::set<OperationId> actual(op.parents().begin(), op.parents().end());
    EXPECT_EQ(actual, expected);
  }
}

TEST(BuildResidual, PinsInFlightOpsWithElapsedTimeCredit) {
  const Fixture f;
  const sim::RunTrace trace = f.break_at(30_min);
  const ResidualAssay residual = build_residual(f.assay, f.report.result, trace);

  ASSERT_EQ(residual.pinned.size(), trace.in_flight.size());
  for (const sim::InFlightOperation& running : trace.in_flight) {
    const OperationId residual_id = residual.from_original.at(running.op);
    // Only the remaining realized time is re-planned.
    EXPECT_EQ(residual.assay.operation(residual_id).duration(), running.remaining);
    // The pin targets the surviving id of the device already running it.
    EXPECT_EQ(residual.pinned.at(residual_id),
              residual.device_map.at(running.device));
  }

  // Lost operations re-run in full.
  for (const OperationId gone : trace.lost) {
    const OperationId residual_id = residual.from_original.at(gone);
    EXPECT_EQ(residual.assay.operation(residual_id).duration(),
              f.assay.operation(gone).duration());
  }
}

TEST(Recover, ProducesACertifiedContinuationHonoringPins) {
  const Fixture f;
  const sim::RunTrace trace = f.break_at(30_min);
  const RecoveryOutcome outcome = recover(f.assay, f.report.result, trace, f.options);

  ASSERT_TRUE(outcome.recovered) << (outcome.diagnostics.empty()
                                         ? "no diagnostics"
                                         : outcome.diagnostics.front().message);
  EXPECT_TRUE(outcome.diagnostics.empty());

  // Every pinned operation stayed on its device; no binding references a
  // device beyond the surviving inventory.
  const std::map<OperationId, DeviceId> binding = outcome.continuation.result.binding();
  for (const auto& [op, device] : outcome.residual.pinned) {
    EXPECT_EQ(binding.at(op), device);
  }
  const int survivors = static_cast<int>(outcome.residual.surviving_devices.size());
  EXPECT_LE(outcome.continuation.result.devices.size(), survivors);
  for (const auto& [op, device] : binding) {
    EXPECT_LT(device.value(), survivors);
  }
}

TEST(Recover, IsDeterministic) {
  const Fixture f;
  const sim::RunTrace trace = f.break_at(30_min);
  const RecoveryOutcome a = recover(f.assay, f.report.result, trace, f.options);
  const RecoveryOutcome b = recover(f.assay, f.report.result, trace, f.options);
  ASSERT_EQ(a.recovered, b.recovered);
  ASSERT_TRUE(a.recovered);
  ASSERT_EQ(a.continuation.result.layers.size(), b.continuation.result.layers.size());
  for (std::size_t li = 0; li < a.continuation.result.layers.size(); ++li) {
    const auto& la = a.continuation.result.layers[li].items;
    const auto& lb = b.continuation.result.layers[li].items;
    ASSERT_EQ(la.size(), lb.size());
    for (std::size_t k = 0; k < la.size(); ++k) {
      EXPECT_EQ(la[k].op, lb[k].op);
      EXPECT_EQ(la[k].device, lb[k].device);
      EXPECT_EQ(la[k].start, lb[k].start);
      EXPECT_EQ(la[k].duration, lb[k].duration);
    }
  }
}

TEST(Recover, UnbrokenTraceReportsE304) {
  const Fixture f;
  sim::RuntimeOptions runtime;
  runtime.attempt_success_probability = 1.0;
  const sim::RunTrace trace = sim::simulate_run(f.report.result, f.assay, runtime);
  ASSERT_TRUE(trace.ok());
  const RecoveryOutcome outcome = recover(f.assay, f.report.result, trace, f.options);
  EXPECT_FALSE(outcome.recovered);
  ASSERT_EQ(outcome.diagnostics.size(), 1u);
  EXPECT_EQ(outcome.diagnostics.front().code, diag::codes::kRecoveryNoFailure);
}

TEST(Recover, UniqueCapableDeviceLostReportsE301) {
  // Two large-ring operations in sequence plus an independent chamber
  // chain: the synthesizer needs one large ring (both A-ops share it) and a
  // chamber. Killing the ring mid-A1 leaves A2 outstanding with no
  // surviving hardware able to run it.
  model::Assay assay{"unique-device"};
  model::OperationSpec a1;
  a1.name = "A1";
  a1.container = model::ContainerKind::Ring;
  a1.capacity = model::Capacity::Large;
  a1.duration = 20_min;
  const OperationId a1_id = assay.add_operation(a1);
  model::OperationSpec a2 = a1;
  a2.name = "A2";
  a2.parents = {a1_id};
  (void)assay.add_operation(a2);
  model::OperationSpec b;
  b.name = "B";
  b.container = model::ContainerKind::Chamber;
  b.capacity = model::Capacity::Tiny;
  b.duration = 50_min;
  (void)assay.add_operation(b);

  SynthesisOptions options;
  options.max_devices = 4;
  const SynthesisReport report = synthesize(assay, options);

  const std::map<OperationId, DeviceId> binding = report.result.binding();
  sim::RuntimeOptions runtime;
  runtime.attempt_success_probability = 1.0;
  runtime.faults.events.push_back(sim::FaultEvent{
      sim::FaultKind::DeviceFailure, binding.at(a1_id), OperationId{}, 5_min});
  const sim::RunTrace trace = sim::simulate_run(report.result, assay, runtime);
  ASSERT_EQ(trace.outcome, sim::RunOutcome::DeviceFailed);

  const RecoveryOutcome outcome = recover(assay, report.result, trace, options);
  EXPECT_FALSE(outcome.recovered);
  ASSERT_FALSE(outcome.diagnostics.empty());
  for (const diag::Diagnostic& d : outcome.diagnostics) {
    EXPECT_EQ(d.code, diag::codes::kRecoveryUnbindable);
  }
}

TEST(Recover, MoreIndeterminateOpsThanSurvivorsReportsE300) {
  // Three identical parentless indeterminate captures must occupy pairwise
  // distinct devices (E214), so the original chip carries three. After one
  // dies, the residual still holds three indeterminate operations — two
  // pinned in flight plus the lost one — but only two devices survive and
  // the chip cannot grow: recovery is infeasible.
  model::Assay assay{"three-captures"};
  for (int k = 0; k < 3; ++k) {
    model::OperationSpec spec;
    spec.name = "capture-" + std::to_string(k);
    spec.container = model::ContainerKind::Chamber;
    spec.capacity = model::Capacity::Tiny;
    spec.duration = 10_min;
    spec.indeterminate = true;
    (void)assay.add_operation(spec);
  }
  SynthesisOptions options;
  options.max_devices = 4;
  const SynthesisReport report = synthesize(assay, options);
  ASSERT_EQ(report.result.devices.size(), 3);

  const std::map<OperationId, DeviceId> binding = report.result.binding();
  sim::RuntimeOptions runtime;
  runtime.attempt_success_probability = 1.0;
  runtime.faults.events.push_back(sim::FaultEvent{
      sim::FaultKind::DeviceFailure, binding.at(OperationId{0}), OperationId{}, 5_min});
  const sim::RunTrace trace = sim::simulate_run(report.result, assay, runtime);
  ASSERT_EQ(trace.outcome, sim::RunOutcome::DeviceFailed);
  ASSERT_EQ(trace.in_flight.size(), 2u);

  const RecoveryOutcome outcome = recover(assay, report.result, trace, options);
  EXPECT_FALSE(outcome.recovered);
  ASSERT_FALSE(outcome.diagnostics.empty());
  EXPECT_EQ(outcome.diagnostics.front().code, diag::codes::kRecoveryInfeasible);
}

TEST(Recover, SoleDeviceChipReportsStructuredE301) {
  // Regression for the device-budget derivation: when the failed device was
  // the only device on the chip (the extreme only-instance-of-its-class
  // case), the surviving inventory is empty. The budget must come from the
  // survivors — never `max_devices - struck`, which would underflow — and
  // the outcome must be structured E301 diagnostics, not a crash.
  model::Assay assay{"sole-device"};
  model::OperationSpec a;
  a.name = "A";
  a.container = model::ContainerKind::Chamber;
  a.capacity = model::Capacity::Tiny;
  a.duration = 20_min;
  const OperationId a_id = assay.add_operation(a);
  model::OperationSpec b = a;
  b.name = "B";
  b.parents = {a_id};
  (void)assay.add_operation(b);

  SynthesisOptions options;
  options.max_devices = 4;
  const SynthesisReport report = synthesize(assay, options);
  ASSERT_EQ(report.result.devices.size(), 1);

  sim::RuntimeOptions runtime;
  runtime.attempt_success_probability = 1.0;
  runtime.faults.events.push_back(sim::FaultEvent{
      sim::FaultKind::DeviceFailure, DeviceId{0}, OperationId{}, 5_min});
  const sim::RunTrace trace = sim::simulate_run(report.result, assay, runtime);
  ASSERT_EQ(trace.outcome, sim::RunOutcome::DeviceFailed);

  const RecoveryOutcome outcome = recover(assay, report.result, trace, options);
  EXPECT_FALSE(outcome.recovered);
  EXPECT_TRUE(outcome.residual.surviving_devices.empty());
  ASSERT_FALSE(outcome.diagnostics.empty());
  for (const diag::Diagnostic& d : outcome.diagnostics) {
    EXPECT_EQ(d.code, diag::codes::kRecoveryUnbindable);
  }
}

// --- re-entrant multi-fault missions ----------------------------------------

/// Extends `runtime` with one more device failure that is guaranteed to
/// strand work AND leave the mission survivable: run the mission as
/// scripted so far, collect the stitched windows that start strictly after
/// every scripted fault and last at least two minutes, and kill the first
/// candidate's device one minute in whose loss the mission still recovers
/// from (a window can be the last hardware able to run an outstanding
/// operation — a correct E301 freeze, but not the chain this builds).
void add_breaking_fault(const Fixture& f, sim::RuntimeOptions& runtime,
                        const MissionOptions& mission) {
  const MissionOutcome out = run_mission(f.assay, f.report.result, runtime, mission);
  ASSERT_TRUE(out.recovered) << (out.diagnostics.empty()
                                     ? "no diagnostics"
                                     : out.diagnostics.front().message);
  Minutes last{0};
  for (const sim::FaultEvent& event : runtime.faults.events) {
    last = std::max(last, event.at);
  }
  std::vector<const sim::OperationTrace*> windows;
  for (const sim::LayerTrace& layer : out.final_trace.layers) {
    for (const sim::OperationTrace& op : layer.operations) {
      if (op.start > last && op.actual >= 2_min) {
        windows.push_back(&op);
      }
    }
  }
  std::sort(windows.begin(), windows.end(),
            [](const sim::OperationTrace* a, const sim::OperationTrace* b) {
              return a->start < b->start;
            });
  for (const sim::OperationTrace* window : windows) {
    runtime.faults.events.push_back(sim::FaultEvent{sim::FaultKind::DeviceFailure,
                                                    window->device, OperationId{},
                                                    window->start + 1_min});
    const MissionOutcome probe =
        run_mission(f.assay, f.report.result, runtime, mission);
    if (probe.recovered) {
      return;
    }
    runtime.faults.events.pop_back();
  }
  FAIL() << "no survivable breakable window after minute " << last.count();
}

TEST(Mission, SurvivesThreeSeededFaultsEndToEnd) {
  const Fixture f;
  MissionOptions mission;
  mission.synthesis = f.options;
  mission.max_rounds = 5;

  sim::RuntimeOptions runtime;
  runtime.attempt_success_probability = 1.0;
  for (int k = 0; k < 3; ++k) {
    add_breaking_fault(f, runtime, mission);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
  }

  const MissionOutcome out = run_mission(f.assay, f.report.result, runtime, mission);
  EXPECT_TRUE(out.recovered) << (out.diagnostics.empty()
                                     ? "no diagnostics"
                                     : diag::summary_line(out.diagnostics.front()));
  EXPECT_EQ(out.rounds, 3);
  ASSERT_EQ(out.round_log.size(), 3u);
  EXPECT_TRUE(out.diagnostics.empty());
  EXPECT_GE(out.fault_chain.size(), 3u);

  // Every round along the way certified, break times strictly increase, and
  // the carried credit is the monotone sum of per-round grants.
  Minutes credit_sum{0};
  Minutes previous_break{0};
  for (const MissionRound& round : out.round_log) {
    EXPECT_TRUE(round.recovered);
    EXPECT_FALSE(round.degraded);
    EXPECT_GT(round.break_at, previous_break);
    previous_break = round.break_at;
    EXPECT_GE(round.credit, Minutes{0});
    credit_sum = credit_sum + round.credit;
  }
  EXPECT_EQ(out.credit_carried, credit_sum);
  EXPECT_GT(out.completed_at, out.round_log.back().break_at);

  // The stitched end-to-end trace completes every root operation exactly
  // once — pinned continuations finish, lost work re-ran.
  const std::set<OperationId> done(out.final_trace.completed.begin(),
                                   out.final_trace.completed.end());
  EXPECT_EQ(static_cast<int>(done.size()), f.assay.operation_count());
  EXPECT_EQ(out.final_trace.completed.size(), done.size());
  EXPECT_EQ(out.final_trace.outcome, sim::RunOutcome::Completed);
}

TEST(Mission, ExhaustedRoundsFreezeWithE305AndFaultChain) {
  const Fixture f;
  MissionOptions mission;
  mission.synthesis = f.options;
  mission.max_rounds = 5;

  sim::RuntimeOptions runtime;
  runtime.attempt_success_probability = 1.0;
  for (int k = 0; k < 2; ++k) {
    add_breaking_fault(f, runtime, mission);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
  }

  MissionOptions capped = mission;
  capped.max_rounds = 1;
  const MissionOutcome out = run_mission(f.assay, f.report.result, runtime, capped);
  EXPECT_FALSE(out.recovered);
  EXPECT_EQ(out.rounds, 1);
  ASSERT_FALSE(out.diagnostics.empty());
  EXPECT_EQ(out.diagnostics.front().code, diag::codes::kRecoveryBudgetExhausted);
  // The full fault chain rides along as notes on the frozen diagnostic.
  ASSERT_GE(out.diagnostics.front().notes.size(), 2u);
  for (const diag::Note& note : out.diagnostics.front().notes) {
    EXPECT_EQ(note.message.rfind("fault chain: ", 0), 0u) << note.message;
  }
  EXPECT_GE(out.fault_chain.size(), 2u);
  ASSERT_EQ(out.round_log.size(), 2u);
  EXPECT_TRUE(out.round_log.front().recovered);
  EXPECT_FALSE(out.round_log.back().recovered);
}

TEST(Mission, TightRoundBudgetDegradesInsteadOfFailing) {
  const Fixture f;
  MissionOptions mission;
  mission.synthesis = f.options;
  mission.max_rounds = 3;
  // A budget that expires before the first synthesis pass even starts: the
  // round blows its deadline, and instead of cancelling, the mission retries
  // heuristic-only and flags the degradation.
  mission.round_budget_seconds = 1e-9;

  sim::RuntimeOptions runtime;
  runtime.attempt_success_probability = 1.0;
  const DeviceId victim = f.report.result.layers.front().items.front().device;
  runtime.faults.events.push_back(
      sim::FaultEvent{sim::FaultKind::DeviceFailure, victim, OperationId{}, 30_min});

  const MissionOutcome out = run_mission(f.assay, f.report.result, runtime, mission);
  EXPECT_TRUE(out.recovered) << (out.diagnostics.empty()
                                     ? "no diagnostics"
                                     : out.diagnostics.front().message);
  EXPECT_TRUE(out.degraded);
  ASSERT_EQ(out.round_log.size(), 1u);
  EXPECT_TRUE(out.round_log.front().degraded);
  EXPECT_TRUE(out.round_log.front().recovered);

  // With degradation disabled the same budget must cancel instead.
  MissionOptions strict = mission;
  strict.degrade_on_deadline = false;
  EXPECT_THROW((void)run_mission(f.assay, f.report.result, runtime, strict),
               CancelledError);
}

TEST(Mission, PinnedDeviceDeathRestoresFullDuration) {
  const Fixture f;
  const sim::RunTrace first = f.break_at(30_min);
  ASSERT_FALSE(first.ok());
  // A pinned operation whose credit is worth losing: still >= 2 minutes of
  // remaining work when its device dies one minute into the continuation.
  const sim::InFlightOperation* pinned = nullptr;
  for (const sim::InFlightOperation& item : first.in_flight) {
    if (item.remaining >= 2_min && item.elapsed >= 1_min) {
      pinned = &item;
      break;
    }
  }
  ASSERT_NE(pinned, nullptr);

  sim::RuntimeOptions runtime;
  runtime.attempt_success_probability = 1.0;
  const DeviceId victim = f.report.result.layers.front().items.front().device;
  runtime.faults.events.push_back(
      sim::FaultEvent{sim::FaultKind::DeviceFailure, victim, OperationId{}, 30_min});
  runtime.faults.events.push_back(sim::FaultEvent{
      sim::FaultKind::DeviceFailure, pinned->device, OperationId{}, 31_min});

  MissionOptions mission;
  mission.synthesis = f.options;
  mission.max_rounds = 3;
  const MissionOutcome out = run_mission(f.assay, f.report.result, runtime, mission);
  ASSERT_TRUE(out.recovered) << (out.diagnostics.empty()
                                     ? "no diagnostics"
                                     : out.diagnostics.front().message);
  EXPECT_EQ(out.rounds, 2);

  // The credit carried for the pinned op died with its device: its final
  // stitched execution runs the full root duration again.
  const sim::OperationTrace* rerun = nullptr;
  for (const sim::LayerTrace& layer : out.final_trace.layers) {
    for (const sim::OperationTrace& op : layer.operations) {
      if (op.op == pinned->op) {
        rerun = &op;  // keep the last occurrence
      }
    }
  }
  ASSERT_NE(rerun, nullptr);
  EXPECT_EQ(rerun->actual, f.assay.operation(pinned->op).duration());
  EXPECT_GT(rerun->start, 31_min);
}

}  // namespace
}  // namespace cohls::core
