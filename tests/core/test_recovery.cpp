#include "core/recovery.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "assays/benchmarks.hpp"
#include "sim/runtime.hpp"

namespace cohls::core {
namespace {

struct Fixture {
  model::Assay assay = assays::gene_expression_assay(3);
  SynthesisOptions options;
  SynthesisReport report;

  Fixture() {
    options.max_devices = 12;
    options.layering.indeterminate_threshold = 3;
    report = synthesize(assay, options);
  }

  /// A broken trace: the device executing the first scheduled operation
  /// dies at `at` minutes into a deterministic (always-succeeds) replay.
  [[nodiscard]] sim::RunTrace break_at(Minutes at) const {
    sim::RuntimeOptions runtime;
    runtime.attempt_success_probability = 1.0;
    const DeviceId victim = report.result.layers.front().items.front().device;
    runtime.faults.events.push_back(
        sim::FaultEvent{sim::FaultKind::DeviceFailure, victim, OperationId{}, at});
    return sim::simulate_run(report.result, assay, runtime);
  }
};

TEST(BuildResidual, DropsCompletedOpsAndStrikesTheFailedDevice) {
  const Fixture f;
  const sim::RunTrace trace = f.break_at(30_min);
  ASSERT_FALSE(trace.ok());
  const ResidualAssay residual = build_residual(f.assay, f.report.result, trace);

  EXPECT_EQ(residual.assay.operation_count(),
            f.assay.operation_count() - static_cast<int>(trace.completed.size()));
  EXPECT_EQ(static_cast<int>(residual.surviving_devices.size()),
            f.report.result.devices.size() - 1);
  EXPECT_EQ(residual.device_map.count(trace.failure->device), 0u);

  // The id maps are inverse bijections and completed originals are absent.
  for (const auto& [residual_id, original_id] : residual.to_original) {
    EXPECT_EQ(residual.from_original.at(original_id), residual_id);
    EXPECT_TRUE(std::none_of(trace.completed.begin(), trace.completed.end(),
                             [&](OperationId done) { return done == original_id; }));
  }

  // Parent edges survive the remap exactly when the parent is outstanding.
  for (const model::Operation& op : residual.assay.operations()) {
    const model::Operation& original =
        f.assay.operation(residual.to_original.at(op.id()));
    std::set<OperationId> expected;
    for (const OperationId parent : original.parents()) {
      if (residual.from_original.count(parent) > 0) {
        expected.insert(residual.from_original.at(parent));
      }
    }
    const std::set<OperationId> actual(op.parents().begin(), op.parents().end());
    EXPECT_EQ(actual, expected);
  }
}

TEST(BuildResidual, PinsInFlightOpsWithElapsedTimeCredit) {
  const Fixture f;
  const sim::RunTrace trace = f.break_at(30_min);
  const ResidualAssay residual = build_residual(f.assay, f.report.result, trace);

  ASSERT_EQ(residual.pinned.size(), trace.in_flight.size());
  for (const sim::InFlightOperation& running : trace.in_flight) {
    const OperationId residual_id = residual.from_original.at(running.op);
    // Only the remaining realized time is re-planned.
    EXPECT_EQ(residual.assay.operation(residual_id).duration(), running.remaining);
    // The pin targets the surviving id of the device already running it.
    EXPECT_EQ(residual.pinned.at(residual_id),
              residual.device_map.at(running.device));
  }

  // Lost operations re-run in full.
  for (const OperationId gone : trace.lost) {
    const OperationId residual_id = residual.from_original.at(gone);
    EXPECT_EQ(residual.assay.operation(residual_id).duration(),
              f.assay.operation(gone).duration());
  }
}

TEST(Recover, ProducesACertifiedContinuationHonoringPins) {
  const Fixture f;
  const sim::RunTrace trace = f.break_at(30_min);
  const RecoveryOutcome outcome = recover(f.assay, f.report.result, trace, f.options);

  ASSERT_TRUE(outcome.recovered) << (outcome.diagnostics.empty()
                                         ? "no diagnostics"
                                         : outcome.diagnostics.front().message);
  EXPECT_TRUE(outcome.diagnostics.empty());

  // Every pinned operation stayed on its device; no binding references a
  // device beyond the surviving inventory.
  const std::map<OperationId, DeviceId> binding = outcome.continuation.result.binding();
  for (const auto& [op, device] : outcome.residual.pinned) {
    EXPECT_EQ(binding.at(op), device);
  }
  const int survivors = static_cast<int>(outcome.residual.surviving_devices.size());
  EXPECT_LE(outcome.continuation.result.devices.size(), survivors);
  for (const auto& [op, device] : binding) {
    EXPECT_LT(device.value(), survivors);
  }
}

TEST(Recover, IsDeterministic) {
  const Fixture f;
  const sim::RunTrace trace = f.break_at(30_min);
  const RecoveryOutcome a = recover(f.assay, f.report.result, trace, f.options);
  const RecoveryOutcome b = recover(f.assay, f.report.result, trace, f.options);
  ASSERT_EQ(a.recovered, b.recovered);
  ASSERT_TRUE(a.recovered);
  ASSERT_EQ(a.continuation.result.layers.size(), b.continuation.result.layers.size());
  for (std::size_t li = 0; li < a.continuation.result.layers.size(); ++li) {
    const auto& la = a.continuation.result.layers[li].items;
    const auto& lb = b.continuation.result.layers[li].items;
    ASSERT_EQ(la.size(), lb.size());
    for (std::size_t k = 0; k < la.size(); ++k) {
      EXPECT_EQ(la[k].op, lb[k].op);
      EXPECT_EQ(la[k].device, lb[k].device);
      EXPECT_EQ(la[k].start, lb[k].start);
      EXPECT_EQ(la[k].duration, lb[k].duration);
    }
  }
}

TEST(Recover, UnbrokenTraceReportsE304) {
  const Fixture f;
  sim::RuntimeOptions runtime;
  runtime.attempt_success_probability = 1.0;
  const sim::RunTrace trace = sim::simulate_run(f.report.result, f.assay, runtime);
  ASSERT_TRUE(trace.ok());
  const RecoveryOutcome outcome = recover(f.assay, f.report.result, trace, f.options);
  EXPECT_FALSE(outcome.recovered);
  ASSERT_EQ(outcome.diagnostics.size(), 1u);
  EXPECT_EQ(outcome.diagnostics.front().code, diag::codes::kRecoveryNoFailure);
}

TEST(Recover, UniqueCapableDeviceLostReportsE301) {
  // Two large-ring operations in sequence plus an independent chamber
  // chain: the synthesizer needs one large ring (both A-ops share it) and a
  // chamber. Killing the ring mid-A1 leaves A2 outstanding with no
  // surviving hardware able to run it.
  model::Assay assay{"unique-device"};
  model::OperationSpec a1;
  a1.name = "A1";
  a1.container = model::ContainerKind::Ring;
  a1.capacity = model::Capacity::Large;
  a1.duration = 20_min;
  const OperationId a1_id = assay.add_operation(a1);
  model::OperationSpec a2 = a1;
  a2.name = "A2";
  a2.parents = {a1_id};
  (void)assay.add_operation(a2);
  model::OperationSpec b;
  b.name = "B";
  b.container = model::ContainerKind::Chamber;
  b.capacity = model::Capacity::Tiny;
  b.duration = 50_min;
  (void)assay.add_operation(b);

  SynthesisOptions options;
  options.max_devices = 4;
  const SynthesisReport report = synthesize(assay, options);

  const std::map<OperationId, DeviceId> binding = report.result.binding();
  sim::RuntimeOptions runtime;
  runtime.attempt_success_probability = 1.0;
  runtime.faults.events.push_back(sim::FaultEvent{
      sim::FaultKind::DeviceFailure, binding.at(a1_id), OperationId{}, 5_min});
  const sim::RunTrace trace = sim::simulate_run(report.result, assay, runtime);
  ASSERT_EQ(trace.outcome, sim::RunOutcome::DeviceFailed);

  const RecoveryOutcome outcome = recover(assay, report.result, trace, options);
  EXPECT_FALSE(outcome.recovered);
  ASSERT_FALSE(outcome.diagnostics.empty());
  for (const diag::Diagnostic& d : outcome.diagnostics) {
    EXPECT_EQ(d.code, diag::codes::kRecoveryUnbindable);
  }
}

TEST(Recover, MoreIndeterminateOpsThanSurvivorsReportsE300) {
  // Three identical parentless indeterminate captures must occupy pairwise
  // distinct devices (E214), so the original chip carries three. After one
  // dies, the residual still holds three indeterminate operations — two
  // pinned in flight plus the lost one — but only two devices survive and
  // the chip cannot grow: recovery is infeasible.
  model::Assay assay{"three-captures"};
  for (int k = 0; k < 3; ++k) {
    model::OperationSpec spec;
    spec.name = "capture-" + std::to_string(k);
    spec.container = model::ContainerKind::Chamber;
    spec.capacity = model::Capacity::Tiny;
    spec.duration = 10_min;
    spec.indeterminate = true;
    (void)assay.add_operation(spec);
  }
  SynthesisOptions options;
  options.max_devices = 4;
  const SynthesisReport report = synthesize(assay, options);
  ASSERT_EQ(report.result.devices.size(), 3);

  const std::map<OperationId, DeviceId> binding = report.result.binding();
  sim::RuntimeOptions runtime;
  runtime.attempt_success_probability = 1.0;
  runtime.faults.events.push_back(sim::FaultEvent{
      sim::FaultKind::DeviceFailure, binding.at(OperationId{0}), OperationId{}, 5_min});
  const sim::RunTrace trace = sim::simulate_run(report.result, assay, runtime);
  ASSERT_EQ(trace.outcome, sim::RunOutcome::DeviceFailed);
  ASSERT_EQ(trace.in_flight.size(), 2u);

  const RecoveryOutcome outcome = recover(assay, report.result, trace, options);
  EXPECT_FALSE(outcome.recovered);
  ASSERT_FALSE(outcome.diagnostics.empty());
  EXPECT_EQ(outcome.diagnostics.front().code, diag::codes::kRecoveryInfeasible);
}

}  // namespace
}  // namespace cohls::core
