// White-box and end-to-end tests of the per-layer ILP (constraints
// (1)-(21)). The decoded solutions must pass the independent validator, and
// on small instances the exact engine must never score worse than the
// heuristic.
#include "core/ilp_layer_model.hpp"

#include <gtest/gtest.h>

#include "assays/random_assay.hpp"
#include "core/layer_synthesizer.hpp"
#include "milp/bounds.hpp"
#include "milp/branch_and_bound.hpp"
#include "schedule/objective.hpp"
#include "schedule/validate.hpp"

namespace cohls::core {
namespace {

using model::BuiltinAccessory;
using model::Capacity;
using model::ContainerKind;

OperationId add_op(model::Assay& assay, const std::string& name, Minutes duration,
                   std::vector<OperationId> parents = {},
                   model::AccessorySet accessories = {}, bool indeterminate = false) {
  model::OperationSpec spec;
  spec.name = name;
  spec.duration = duration;
  spec.parents = std::move(parents);
  spec.accessories = accessories;
  spec.indeterminate = indeterminate;
  return assay.add_operation(spec);
}

schedule::SynthesisResult wrap(schedule::LayerResult layer,
                               model::DeviceInventory inventory) {
  schedule::SynthesisResult result;
  result.layers.push_back(std::move(layer.schedule));
  result.devices = std::move(inventory);
  return result;
}

TEST(IlpLayerModel, SolvesASingleOperation) {
  model::Assay assay{"t"};
  const auto a = add_op(assay, "a", 10_min, {}, {BuiltinAccessory::kPump});
  IlpLayerInputs inputs;
  inputs.layer = LayerId{0};
  inputs.ops = {a};
  inputs.new_slots = 1;
  const schedule::TransportPlan transport{2_min};
  const model::CostModel costs;
  const IlpLayerModel ilp(assay, std::move(inputs), transport, costs);
  const auto solution = milp::solve_milp(ilp.model());
  ASSERT_EQ(solution.status, milp::MilpStatus::Optimal);
  model::DeviceInventory inventory(2);
  const auto decoded = ilp.decode(solution.values, inventory);
  ASSERT_EQ(decoded.schedule.items.size(), 1u);
  EXPECT_EQ(decoded.schedule.items[0].start, 0_min);
  ASSERT_EQ(inventory.size(), 1);
  EXPECT_TRUE(inventory.device(DeviceId{0}).config.accessories.contains(
      BuiltinAccessory::kPump));
  EXPECT_TRUE(
      schedule::validate_result(wrap(decoded, inventory), assay, transport).empty());
}

TEST(IlpLayerModel, DependencyOrdersStarts) {
  model::Assay assay{"t"};
  const auto a = add_op(assay, "a", 10_min);
  const auto b = add_op(assay, "b", 5_min, {a});
  IlpLayerInputs inputs;
  inputs.layer = LayerId{0};
  inputs.ops = {a, b};
  inputs.new_slots = 2;
  const schedule::TransportPlan transport{2_min};
  const model::CostModel costs;
  const IlpLayerModel ilp(assay, std::move(inputs), transport, costs);
  const auto solution = milp::solve_milp(ilp.model());
  ASSERT_EQ(solution.status, milp::MilpStatus::Optimal);
  model::DeviceInventory inventory(3);
  const auto decoded = ilp.decode(solution.values, inventory);
  const auto* item_a = decoded.schedule.find(a);
  const auto* item_b = decoded.schedule.find(b);
  ASSERT_NE(item_a, nullptr);
  ASSERT_NE(item_b, nullptr);
  if (item_a->device == item_b->device) {
    EXPECT_GE(item_b->start, item_a->end());
  } else {
    EXPECT_GE(item_b->start, item_a->end() + 2_min);
  }
  EXPECT_TRUE(
      schedule::validate_result(wrap(decoded, inventory), assay, transport).empty());
}

TEST(IlpLayerModel, CoLocationSkipsTransport) {
  // One device slot only: both ops must share it. Constraint (9)'s
  // same-device refinement drops the dependency's transport, but the
  // conflict constraints (10)-(13) still reserve the parent's worst-case
  // outgoing slot (4m) in the first pass — mirroring the heuristic.
  model::Assay assay{"t"};
  const auto a = add_op(assay, "a", 10_min);
  const auto b = add_op(assay, "b", 5_min, {a});
  IlpLayerInputs inputs;
  inputs.layer = LayerId{0};
  inputs.ops = {a, b};
  inputs.new_slots = 1;
  const schedule::TransportPlan first_pass{4_min};
  const model::CostModel costs;
  {
    const IlpLayerModel ilp(assay, inputs, first_pass, costs);
    const auto solution = milp::solve_milp(ilp.model());
    ASSERT_EQ(solution.status, milp::MilpStatus::Optimal);
    model::DeviceInventory inventory(1);
    const auto decoded = ilp.decode(solution.values, inventory);
    EXPECT_EQ(decoded.schedule.makespan(), 19_min);  // 10 + 4 reserve + 5
  }
  // A refined plan whose edge is known co-located costs nothing extra.
  schedule::TransportPlan refined{4_min};
  refined.set_edge_time(a, b, 0_min);
  const IlpLayerModel ilp(assay, std::move(inputs), refined, costs);
  const auto solution = milp::solve_milp(ilp.model());
  ASSERT_EQ(solution.status, milp::MilpStatus::Optimal);
  model::DeviceInventory inventory(1);
  const auto decoded = ilp.decode(solution.values, inventory);
  EXPECT_EQ(decoded.schedule.makespan(), 15_min);  // 10 + 5, nothing reserved
}

TEST(IlpLayerModel, ConflictPreventionSeparatesSharedDevice) {
  // Two independent long ops, one slot: they must serialize.
  model::Assay assay{"t"};
  const auto a = add_op(assay, "a", 10_min);
  const auto b = add_op(assay, "b", 10_min);
  IlpLayerInputs inputs;
  inputs.layer = LayerId{0};
  inputs.ops = {a, b};
  inputs.new_slots = 1;
  const schedule::TransportPlan transport{2_min};
  const model::CostModel costs;
  const IlpLayerModel ilp(assay, std::move(inputs), transport, costs);
  const auto solution = milp::solve_milp(ilp.model());
  ASSERT_EQ(solution.status, milp::MilpStatus::Optimal);
  model::DeviceInventory inventory(1);
  const auto decoded = ilp.decode(solution.values, inventory);
  EXPECT_EQ(decoded.schedule.makespan(), 20_min);
  EXPECT_TRUE(
      schedule::validate_result(wrap(decoded, inventory), assay, transport).empty());
}

TEST(IlpLayerModel, IndeterminateEndsTheLayerAndGetsOwnDevice) {
  model::Assay assay{"t"};
  const auto det = add_op(assay, "det", 20_min);
  const auto i1 = add_op(assay, "i1", 5_min, {}, {}, true);
  const auto i2 = add_op(assay, "i2", 5_min, {}, {}, true);
  IlpLayerInputs inputs;
  inputs.layer = LayerId{0};
  inputs.ops = {det, i1, i2};
  inputs.new_slots = 3;
  const schedule::TransportPlan transport{1_min};
  const model::CostModel costs;
  const IlpLayerModel ilp(assay, std::move(inputs), transport, costs);
  const auto solution = milp::solve_milp(ilp.model());
  ASSERT_EQ(solution.status, milp::MilpStatus::Optimal);
  model::DeviceInventory inventory(3);
  const auto decoded = ilp.decode(solution.values, inventory);
  const auto violations =
      schedule::validate_result(wrap(decoded, inventory), assay, transport);
  EXPECT_TRUE(violations.empty()) << violations.front();
  EXPECT_NE(decoded.schedule.find(i1)->device, decoded.schedule.find(i2)->device);
}

TEST(IlpLayerModel, FixedDevicesCostNothingAndGetReused) {
  model::Assay assay{"t"};
  const auto a = add_op(assay, "a", 10_min, {}, {BuiltinAccessory::kHeatingPad});
  model::DeviceInventory inventory(3);
  const auto fixed = inventory.instantiate(
      {ContainerKind::Chamber, Capacity::Small, {BuiltinAccessory::kHeatingPad}},
      LayerId{0});
  IlpLayerInputs inputs;
  inputs.layer = LayerId{1};
  inputs.ops = {a};
  inputs.fixed_devices = {{fixed, inventory.device(fixed).config}};
  inputs.new_slots = 1;
  const schedule::TransportPlan transport{2_min};
  const model::CostModel costs;
  const IlpLayerModel ilp(assay, std::move(inputs), transport, costs);
  const auto solution = milp::solve_milp(ilp.model());
  ASSERT_EQ(solution.status, milp::MilpStatus::Optimal);
  const auto decoded = ilp.decode(solution.values, inventory);
  EXPECT_EQ(decoded.schedule.items[0].device, fixed);
  EXPECT_EQ(inventory.size(), 1);  // no new integration
}

TEST(IlpLayerModel, IncompatibleFixedDeviceForcesNewSlot) {
  model::Assay assay{"t"};
  const auto a = add_op(assay, "a", 10_min, {}, {BuiltinAccessory::kOpticalSystem});
  model::DeviceInventory inventory(3);
  const auto fixed = inventory.instantiate(
      {ContainerKind::Chamber, Capacity::Small, {}}, LayerId{0});
  IlpLayerInputs inputs;
  inputs.layer = LayerId{1};
  inputs.ops = {a};
  inputs.fixed_devices = {{fixed, inventory.device(fixed).config}};
  inputs.new_slots = 1;
  const schedule::TransportPlan transport{2_min};
  const model::CostModel costs;
  const IlpLayerModel ilp(assay, std::move(inputs), transport, costs);
  const auto solution = milp::solve_milp(ilp.model());
  ASSERT_EQ(solution.status, milp::MilpStatus::Optimal);
  const auto decoded = ilp.decode(solution.values, inventory);
  EXPECT_NE(decoded.schedule.items[0].device, fixed);
  EXPECT_EQ(inventory.size(), 2);
  EXPECT_TRUE(inventory.device(decoded.schedule.items[0].device)
                  .config.accessories.contains(BuiltinAccessory::kOpticalSystem));
}

TEST(IlpLayerModel, HintSlotsAreFreeAndReportConsumption) {
  model::Assay assay{"t"};
  const auto a = add_op(assay, "a", 10_min, {}, {BuiltinAccessory::kSieveValve});
  IlpLayerInputs inputs;
  inputs.layer = LayerId{0};
  inputs.ops = {a};
  inputs.hints = {schedule::DeviceHint{
      {ContainerKind::Ring, Capacity::Small,
       {BuiltinAccessory::kSieveValve, BuiltinAccessory::kPump}},
      /*key=*/42}};
  inputs.new_slots = 1;
  const schedule::TransportPlan transport{2_min};
  const model::CostModel costs;
  const IlpLayerModel ilp(assay, std::move(inputs), transport, costs);
  const auto solution = milp::solve_milp(ilp.model());
  ASSERT_EQ(solution.status, milp::MilpStatus::Optimal);
  model::DeviceInventory inventory(2);
  const auto decoded = ilp.decode(solution.values, inventory);
  // The free hinted ring beats paying for even a minimal new chamber.
  ASSERT_EQ(decoded.consumed_hints.size(), 1u);
  EXPECT_EQ(decoded.consumed_hints[0], 42);
  EXPECT_EQ(inventory.device(decoded.schedule.items[0].device).config.container,
            ContainerKind::Ring);
}

TEST(IlpLayerModel, RingOnlyCapacityRequirementForcesRing) {
  model::Assay assay{"t"};
  model::OperationSpec spec;
  spec.name = "big";
  spec.duration = 10_min;
  spec.capacity = Capacity::Large;  // only rings can be large
  const auto a = assay.add_operation(spec);
  IlpLayerInputs inputs;
  inputs.layer = LayerId{0};
  inputs.ops = {a};
  inputs.new_slots = 1;
  const schedule::TransportPlan transport{2_min};
  const model::CostModel costs;
  const IlpLayerModel ilp(assay, std::move(inputs), transport, costs);
  const auto solution = milp::solve_milp(ilp.model());
  ASSERT_EQ(solution.status, milp::MilpStatus::Optimal);
  model::DeviceInventory inventory(1);
  const auto decoded = ilp.decode(solution.values, inventory);
  const auto& config = inventory.device(decoded.schedule.items[0].device).config;
  EXPECT_EQ(config.container, ContainerKind::Ring);
  EXPECT_EQ(config.capacity, Capacity::Large);
}

TEST(IlpLayerModel, RejectsModelWithoutDeviceSlots) {
  model::Assay assay{"t"};
  const auto a = add_op(assay, "a", 10_min, {}, {BuiltinAccessory::kCellTrap});
  IlpLayerInputs inputs;
  inputs.layer = LayerId{0};
  inputs.ops = {a};
  inputs.new_slots = 0;  // no devices at all: rejected up-front
  const schedule::TransportPlan transport{2_min};
  const model::CostModel costs;
  EXPECT_THROW(IlpLayerModel(assay, std::move(inputs), transport, costs),
               PreconditionError);
}

TEST(IlpLayerModel, InfeasibleWhenOnlyDeviceCannotHost) {
  model::Assay assay{"t"};
  const auto a = add_op(assay, "a", 10_min, {}, {BuiltinAccessory::kCellTrap});
  IlpLayerInputs inputs;
  inputs.layer = LayerId{0};
  inputs.ops = {a};
  // A single fixed device with no cell trap and no new slots: constraint
  // (5) cannot be satisfied.
  inputs.fixed_devices = {
      {DeviceId{0}, model::DeviceConfig{ContainerKind::Chamber, Capacity::Tiny, {}}}};
  inputs.new_slots = 0;
  const schedule::TransportPlan transport{2_min};
  const model::CostModel costs;
  const IlpLayerModel ilp(assay, std::move(inputs), transport, costs);
  EXPECT_EQ(milp::solve_milp(ilp.model()).status, milp::MilpStatus::Infeasible);
}

// Cross-engine consistency: on a fresh single layer (no inherited devices,
// no pre-existing paths), the MILP's internal objective value must equal
// the shared evaluator's score of the decoded schedule.
TEST(IlpLayerModel, ObjectiveMatchesTheSharedEvaluator) {
  model::Assay assay{"t"};
  const auto a = add_op(assay, "a", 10_min, {}, {BuiltinAccessory::kPump});
  const auto b = add_op(assay, "b", 8_min, {a}, {BuiltinAccessory::kHeatingPad});
  const auto c = add_op(assay, "c", 6_min, {b}, {});
  IlpLayerInputs inputs;
  inputs.layer = LayerId{0};
  inputs.ops = {a, b, c};
  inputs.new_slots = 3;
  const schedule::TransportPlan transport{2_min};
  const model::CostModel costs;
  const IlpLayerModel ilp(assay, std::move(inputs), transport, costs);
  const auto solution = milp::solve_milp(ilp.model());
  ASSERT_EQ(solution.status, milp::MilpStatus::Optimal);
  model::DeviceInventory inventory(3);
  const auto decoded = ilp.decode(solution.values, inventory);
  schedule::SynthesisResult wrapped;
  wrapped.layers.push_back(decoded.schedule);
  wrapped.devices = inventory;
  const auto breakdown = schedule::evaluate_objective(wrapped, assay, costs);
  EXPECT_NEAR(solution.objective, breakdown.weighted_total, 1e-6);
}

// Property: on random small layers, the decoded ILP solution validates and
// scores no worse than the heuristic under the shared layer objective.
class IlpVsHeuristic : public ::testing::TestWithParam<int> {};

TEST_P(IlpVsHeuristic, ExactNeverLosesAndAlwaysValidates) {
  assays::RandomAssayOptions gen;
  gen.operations = 4;
  gen.indeterminate_probability = 0.2;
  gen.max_parents = 2;
  const model::Assay assay =
      assays::random_assay(static_cast<std::uint64_t>(GetParam()) * 977 + 3, gen);
  // Use only assays whose ops can form one layer (no indeterminate op with
  // descendants).
  for (const auto& op : assay.operations()) {
    if (op.indeterminate() && !assay.children(op.id()).empty()) {
      GTEST_SKIP() << "assay needs layering; covered elsewhere";
    }
  }
  schedule::LayerRequest request;
  request.layer = LayerId{0};
  for (const auto& op : assay.operations()) {
    request.ops.push_back(op.id());
  }
  const schedule::TransportPlan transport{2_min};
  const model::CostModel costs;
  EngineOptions engine;
  engine.ilp_max_ops = 6;
  engine.ilp_max_devices = 8;
  engine.ilp_new_slots = 3;
  const model::DeviceInventory inventory(4);

  model::DeviceInventory heuristic_inventory = inventory;
  const auto heuristic =
      schedule_layer(request, assay, transport, costs, heuristic_inventory);
  const double heuristic_score =
      layer_score(heuristic, heuristic_inventory, request, assay, costs);

  const LayerOutcome outcome =
      synthesize_layer(request, assay, transport, costs, engine, inventory);
  EXPECT_LE(outcome.score, heuristic_score + 1e-6);

  schedule::SynthesisResult wrapped;
  wrapped.layers.push_back(outcome.result.schedule);
  wrapped.devices = outcome.inventory;
  const auto violations = schedule::validate_result(wrapped, assay, transport);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

INSTANTIATE_TEST_SUITE_P(Seeds, IlpVsHeuristic, ::testing::Range(0, 10));

TEST(IlpLayerModel, PinnedBindingIsEnforced) {
  model::Assay assay{"t"};
  const auto a = add_op(assay, "a", 10_min);
  const auto b = add_op(assay, "b", 5_min);

  model::DeviceInventory inventory(4);
  const model::DeviceConfig config{ContainerKind::Chamber, Capacity::Tiny, {}};
  const auto d0 = inventory.instantiate(config, LayerId{0});
  const auto d1 = inventory.instantiate(config, LayerId{0});

  IlpLayerInputs inputs;
  inputs.layer = LayerId{0};
  inputs.ops = {a, b};
  inputs.fixed_devices = {{d0, config}, {d1, config}};
  inputs.new_slots = 0;
  // Without the pin the optimum would place `a` anywhere; the pin forces the
  // second device even though both are symmetric.
  inputs.pinned = {{a, d1}};
  const schedule::TransportPlan transport{2_min};
  const model::CostModel costs;
  const IlpLayerModel ilp(assay, std::move(inputs), transport, costs);
  const auto solution = milp::solve_milp(ilp.model());
  ASSERT_EQ(solution.status, milp::MilpStatus::Optimal);
  const auto decoded = ilp.decode(solution.values, inventory);
  const auto* item_a = decoded.schedule.find(a);
  ASSERT_NE(item_a, nullptr);
  EXPECT_EQ(item_a->device, d1);
  EXPECT_TRUE(
      schedule::validate_result(wrap(decoded, inventory), assay, transport).empty());
}

TEST(IlpLayerModel, BoundProviderIsAdmissibleAndPreservesTheOptimum) {
  model::Assay assay{"t"};
  const auto a = add_op(assay, "a", 10_min);
  const auto b = add_op(assay, "b", 8_min, {a});
  const auto c = add_op(assay, "c", 6_min);
  IlpLayerInputs inputs;
  inputs.layer = LayerId{0};
  inputs.ops = {a, b, c};
  inputs.new_slots = 2;
  const schedule::TransportPlan transport{2_min};
  const model::CostModel costs;
  const IlpLayerModel ilp(assay, std::move(inputs), transport, costs);

  const auto reference = milp::solve_milp(ilp.model());
  ASSERT_EQ(reference.status, milp::MilpStatus::Optimal);

  const auto provider = ilp.bound_provider();
  ASSERT_NE(provider, nullptr);
  std::vector<double> lower, upper;
  for (lp::Col col = 0; col < ilp.model().variable_count(); ++col) {
    lower.push_back(ilp.model().lp().lower_bound(col));
    upper.push_back(ilp.model().lp().upper_bound(col));
  }
  const double bound = provider->objective_lower_bound(lower, upper);
  EXPECT_LE(bound, reference.objective + 1e-6);

  milp::MilpOptions options;
  options.bounds = provider;
  const auto bounded = milp::solve_milp(ilp.model(), options);
  ASSERT_EQ(bounded.status, milp::MilpStatus::Optimal);
  EXPECT_NEAR(bounded.objective, reference.objective, 1e-6);
}

TEST(IlpLayerModel, EncodeProducesAFeasibleWarmStart) {
  model::Assay assay{"t"};
  const auto a = add_op(assay, "a", 10_min);
  const auto b = add_op(assay, "b", 8_min, {a});
  const auto c = add_op(assay, "c", 6_min, {a});
  schedule::LayerRequest request;
  request.layer = LayerId{0};
  request.ops = {a, b, c};
  const schedule::TransportPlan transport{2_min};
  const model::CostModel costs;

  model::DeviceInventory heuristic_inventory(4);
  const auto heuristic =
      schedule_layer(request, assay, transport, costs, heuristic_inventory);

  IlpLayerInputs inputs;
  inputs.layer = request.layer;
  inputs.ops = request.ops;
  inputs.new_slots = 3;
  const IlpLayerModel ilp(assay, std::move(inputs), transport, costs);
  const std::vector<double> seed = ilp.encode(heuristic, heuristic_inventory);
  ASSERT_FALSE(seed.empty());
  EXPECT_TRUE(ilp.model().is_feasible(seed, 1e-6));

  // Seeding the encoded point as the warm start must keep the solve exact
  // and can only help: the optimum is no worse than the heuristic's value.
  milp::MilpOptions options;
  options.warm_start = seed;
  const auto solution = milp::solve_milp(ilp.model(), options);
  ASSERT_EQ(solution.status, milp::MilpStatus::Optimal);
  EXPECT_LE(solution.objective, ilp.model().lp().objective_value(seed) + 1e-6);
}

}  // namespace
}  // namespace cohls::core
