// End-to-end parity of the two LP engines through the full synthesis flow:
// the ablation-D random-assay setup (small single-layer assays the exact
// engine can close) must produce the same final objective whether the MILP
// runs on the warm-started revised simplex or on the seed dense tableau.
#include <gtest/gtest.h>

#include "assays/random_assay.hpp"
#include "core/progressive_resynthesis.hpp"
#include "core/solve_hooks.hpp"
#include "schedule/validate.hpp"

namespace cohls::core {
namespace {

/// Accumulates the LP counters run_pass reports per layer solve.
class CountingObserver final : public SolveObserver {
 public:
  void on_layer_solve(const LayerSolveEvent& event) override {
    if (event.used_ilp) {
      ++ilp_layers;
    }
    warm_solves += event.lp_warm_solves;
    cold_solves += event.lp_cold_solves;
    pivots += event.lp_pivots;
  }

  int ilp_layers = 0;
  long warm_solves = 0;
  long cold_solves = 0;
  long pivots = 0;
};

SynthesisOptions ablation_d_options(lp::SimplexAlgorithm algorithm, bool presolve,
                                    SolveObserver* observer) {
  SynthesisOptions options;
  options.max_devices = 4;
  options.engine.enable_ilp = true;
  options.engine.ilp_max_ops = 6;
  options.engine.ilp_max_devices = 6;
  options.engine.ilp_new_slots = 2;
  // Node budget instead of wall clock so both configurations are
  // deterministic regardless of machine load.
  options.engine.milp.time_limit_seconds = 0.0;
  options.engine.milp.max_nodes = 20000;
  options.engine.milp.simplex.algorithm = algorithm;
  options.engine.milp.presolve = presolve;
  options.max_resynthesis_iterations = 1;
  options.observer = observer;
  return options;
}

TEST(SolverParity, RevisedAndDenseAgreeOnAblationDAssays) {
  assays::RandomAssayOptions gen;
  gen.operations = 4;
  gen.indeterminate_probability = 0.0;
  gen.max_parents = 2;

  int revised_ilp_layers = 0;
  int dense_ilp_layers = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const model::Assay assay = assays::random_assay(seed * 101, gen);

    CountingObserver revised_stats;
    const SynthesisReport revised = synthesize(
        assay, ablation_d_options(lp::SimplexAlgorithm::Revised, true, &revised_stats));

    CountingObserver dense_stats;
    const SynthesisReport dense = synthesize(
        assay, ablation_d_options(lp::SimplexAlgorithm::Dense, false, &dense_stats));

    CountingObserver parallel_stats;
    SynthesisOptions parallel_options =
        ablation_d_options(lp::SimplexAlgorithm::Revised, true, &parallel_stats);
    parallel_options.engine.milp.threads = 4;
    const SynthesisReport parallel = synthesize(assay, parallel_options);

    const auto revised_violations =
        schedule::validate_result(revised.result, assay, revised.transport);
    ASSERT_TRUE(revised_violations.empty())
        << "seed " << seed << ": " << revised_violations.front();
    const auto dense_violations =
        schedule::validate_result(dense.result, assay, dense.transport);
    ASSERT_TRUE(dense_violations.empty())
        << "seed " << seed << ": " << dense_violations.front();

    const auto parallel_violations =
        schedule::validate_result(parallel.result, assay, parallel.transport);
    ASSERT_TRUE(parallel_violations.empty())
        << "seed " << seed << ": " << parallel_violations.front();

    const double revised_objective =
        revised.iterations.back().objective.weighted_total;
    const double dense_objective = dense.iterations.back().objective.weighted_total;
    EXPECT_NEAR(revised_objective, dense_objective, 1e-6) << "seed " << seed;
    // A 4-worker exact search must land on the same final objective as the
    // sequential one (incumbent vectors may differ at equal objective).
    const double parallel_objective =
        parallel.iterations.back().objective.weighted_total;
    EXPECT_NEAR(parallel_objective, revised_objective, 1e-6) << "seed " << seed;

    // Both configurations must actually exercise their engine: the MILP
    // has to run on these layers (pivots accumulate even when the
    // heuristic candidate ends up winning the layer), warm dual re-solves
    // only on the revised path, cold solves only on the dense path.
    EXPECT_GT(revised_stats.pivots, 0) << "seed " << seed;
    EXPECT_GT(dense_stats.pivots, 0) << "seed " << seed;
    EXPECT_EQ(dense_stats.warm_solves, 0) << "seed " << seed;
    EXPECT_GT(dense_stats.cold_solves, 0) << "seed " << seed;
    revised_ilp_layers += revised_stats.ilp_layers;
    dense_ilp_layers += dense_stats.ilp_layers;
  }
  // Across the seed set the exact candidate must win some layers under
  // both engines — otherwise the parity above would be vacuous.
  EXPECT_GT(revised_ilp_layers, 0);
  EXPECT_GT(dense_ilp_layers, 0);
}

}  // namespace
}  // namespace cohls::core
