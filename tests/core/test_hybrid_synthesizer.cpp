#include "core/hybrid_synthesizer.hpp"

#include <gtest/gtest.h>

#include "assays/benchmarks.hpp"
#include "schedule/validate.hpp"

namespace cohls::core {
namespace {

using model::BuiltinAccessory;
using model::Capacity;
using model::ContainerKind;

TEST(HybridSynthesizer, SingleLayerPass) {
  const model::Assay assay = assays::kinase_activity_assay(1);
  const LayerPlan plan = layer_assay(assay);
  ASSERT_EQ(plan.layer_count(), 1);
  SynthesisOptions options;
  options.max_devices = 10;
  const schedule::TransportPlan transport{options.initial_transport};
  const auto result = run_pass(assay, plan, transport, options);
  ASSERT_EQ(result.layers.size(), 1u);
  EXPECT_TRUE(schedule::validate_result(result, assay, transport).empty());
}

TEST(HybridSynthesizer, MultiLayerPassValidates) {
  const model::Assay assay = assays::gene_expression_assay(3);
  SynthesisOptions options;
  options.max_devices = 12;
  options.layering.indeterminate_threshold = 3;
  const LayerPlan plan = layer_assay(assay, options.layering);
  ASSERT_EQ(plan.layer_count(), 2);
  const schedule::TransportPlan transport{options.initial_transport};
  const auto result = run_pass(assay, plan, transport, options);
  ASSERT_EQ(result.layers.size(), 2u);
  const auto violations = schedule::validate_result(result, assay, transport);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(HybridSynthesizer, DevicesAccumulateAcrossLayers) {
  const model::Assay assay = assays::gene_expression_assay(2);
  SynthesisOptions options;
  options.max_devices = 10;
  options.layering.indeterminate_threshold = 2;
  const LayerPlan plan = layer_assay(assay, options.layering);
  const schedule::TransportPlan transport{options.initial_transport};
  const auto result = run_pass(assay, plan, transport, options);
  // Layer-2 lysis/RT/etc. re-use the capture rings created in layer 1 (the
  // pipeline-enriched configs), so the device count stays well below one
  // device per operation.
  EXPECT_LT(result.devices.size(), assay.operation_count() / 2);
}

TEST(HybridSynthesizer, FutureLayerHintsAreOfferedAndConsumedOnce) {
  // A 2-layer toy: layer 1 = {o2 (sieve, any container), gate (ind)};
  // layer 2 = {o1 (ring, sieve+pump)}. With the later layer's ring offered
  // as a hint, o2 binds to it and the pass needs one device fewer.
  model::Assay assay{"t"};
  model::OperationSpec o2;
  o2.name = "o2";
  o2.duration = 10_min;
  o2.accessories = {BuiltinAccessory::kSieveValve};
  (void)assay.add_operation(o2);
  model::OperationSpec gate;
  gate.name = "gate";
  gate.duration = 8_min;
  gate.indeterminate = true;
  gate.container = ContainerKind::Chamber;
  gate.accessories = {BuiltinAccessory::kCellTrap};
  const auto gate_id = assay.add_operation(gate);
  model::OperationSpec o1;
  o1.name = "o1";
  o1.duration = 15_min;
  o1.container = ContainerKind::Ring;
  o1.capacity = Capacity::Small;
  o1.accessories = {BuiltinAccessory::kSieveValve, BuiltinAccessory::kPump};
  o1.parents = {gate_id};
  (void)assay.add_operation(o1);

  SynthesisOptions options;
  options.max_devices = 6;
  options.layering.indeterminate_threshold = 1;
  const LayerPlan plan = layer_assay(assay, options.layering);
  ASSERT_EQ(plan.layer_count(), 2);
  const schedule::TransportPlan transport{options.initial_transport};

  // Pass 1: no knowledge -> o2 gets its own cheap chamber.
  const auto first = run_pass(assay, plan, transport, options);
  // Pass 2: the ring o1 needs is known to come from layer 2.
  std::vector<KnownDevice> known;
  for (const auto& device : first.devices.devices()) {
    known.push_back(KnownDevice{device.config, device.created_in.value()});
  }
  const auto second = run_pass(assay, plan, transport, options, known);
  EXPECT_LT(second.devices.size(), first.devices.size());
  EXPECT_TRUE(schedule::validate_result(second, assay, transport).empty());
}

TEST(HybridSynthesizer, PolicyOverridesBinding) {
  const model::Assay assay = assays::kinase_activity_assay(1);
  const LayerPlan plan = layer_assay(assay);
  SynthesisOptions options;
  options.max_devices = 20;
  const schedule::TransportPlan transport{options.initial_transport};
  int binds_calls = 0;
  PassPolicy policy;
  policy.binds = [&binds_calls](const model::Operation& op,
                                const model::DeviceConfig& config) {
    ++binds_calls;
    return model::is_compatible(op, config);
  };
  (void)run_pass(assay, plan, transport, options, {}, policy);
  EXPECT_GT(binds_calls, 0);
}

}  // namespace
}  // namespace cohls::core
