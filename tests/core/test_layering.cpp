#include "core/layering.hpp"

#include <gtest/gtest.h>

#include "assays/benchmarks.hpp"
#include "assays/random_assay.hpp"

namespace cohls::core {
namespace {

OperationId add_op(model::Assay& assay, const std::string& name,
                   std::vector<OperationId> parents = {}, bool indeterminate = false) {
  model::OperationSpec spec;
  spec.name = name;
  spec.duration = 10_min;
  spec.parents = std::move(parents);
  spec.indeterminate = indeterminate;
  return assay.add_operation(spec);
}

TEST(Layering, AllDeterminateYieldsOneLayer) {
  model::Assay assay{"t"};
  const auto a = add_op(assay, "a");
  const auto b = add_op(assay, "b", {a});
  (void)add_op(assay, "c", {b});
  const LayerPlan plan = layer_assay(assay);
  EXPECT_EQ(plan.layer_count(), 1);
  EXPECT_EQ(plan.layer(0).size(), 3u);
  EXPECT_TRUE(validate_layering(plan, assay, 10).empty());
}

TEST(Layering, IndeterminateDescendantsMoveToLaterLayers) {
  model::Assay assay{"t"};
  const auto i = add_op(assay, "capture", {}, true);
  const auto child = add_op(assay, "lysis", {i});
  const auto grandchild = add_op(assay, "rt", {child});
  const LayerPlan plan = layer_assay(assay);
  EXPECT_EQ(plan.layer_count(), 2);
  EXPECT_EQ(plan.layer_of(i), 0);
  EXPECT_EQ(plan.layer_of(child), 1);
  EXPECT_EQ(plan.layer_of(grandchild), 1);
  EXPECT_TRUE(validate_layering(plan, assay, 10).empty());
}

TEST(Layering, ChainedIndeterminatesStack) {
  model::Assay assay{"t"};
  const auto i1 = add_op(assay, "i1", {}, true);
  const auto i2 = add_op(assay, "i2", {i1}, true);
  const auto i3 = add_op(assay, "i3", {i2}, true);
  const LayerPlan plan = layer_assay(assay);
  EXPECT_EQ(plan.layer_count(), 3);
  EXPECT_EQ(plan.layer_of(i1), 0);
  EXPECT_EQ(plan.layer_of(i2), 1);
  EXPECT_EQ(plan.layer_of(i3), 2);
}

TEST(Layering, IndependentIndeterminatesShareALayer) {
  model::Assay assay{"t"};
  (void)add_op(assay, "i1", {}, true);
  (void)add_op(assay, "i2", {}, true);
  (void)add_op(assay, "i3", {}, true);
  const LayerPlan plan = layer_assay(assay);
  EXPECT_EQ(plan.layer_count(), 1);
}

TEST(Layering, ThresholdForcesEviction) {
  model::Assay assay{"t"};
  for (int i = 0; i < 6; ++i) {
    (void)add_op(assay, "i" + std::to_string(i), {}, true);
  }
  LayeringOptions options;
  options.indeterminate_threshold = 2;
  const LayerPlan plan = layer_assay(assay, options);
  EXPECT_EQ(plan.layer_count(), 3);
  for (int li = 0; li < plan.layer_count(); ++li) {
    EXPECT_EQ(plan.layer(li).size(), 2u);
  }
  EXPECT_TRUE(validate_layering(plan, assay, 2).empty());
}

TEST(Layering, AncestorsOfIndeterminateStayInItsLayer) {
  model::Assay assay{"t"};
  const auto prep = add_op(assay, "prep");
  const auto i = add_op(assay, "capture", {prep}, true);
  const LayerPlan plan = layer_assay(assay);
  EXPECT_EQ(plan.layer_count(), 1);
  EXPECT_EQ(plan.layer_of(prep), plan.layer_of(i));
}

TEST(Layering, Case2ShapeMatchesPaper) {
  // 10 parallel captures, threshold 10 -> exactly 2 layers (the paper's
  // "277m+I1" has one indeterminate symbol).
  const model::Assay assay = assays::gene_expression_assay();
  LayeringOptions options;
  options.indeterminate_threshold = 10;
  const LayerPlan plan = layer_assay(assay, options);
  EXPECT_EQ(plan.layer_count(), 2);
  EXPECT_EQ(plan.layer(0).size(), 10u);  // the captures
  EXPECT_EQ(plan.layer(1).size(), 60u);
  EXPECT_TRUE(validate_layering(plan, assay, 10).empty());
}

TEST(Layering, Case3ShapeMatchesPaper) {
  // 20 captures, threshold 10 -> 3 layers (the paper's "603m+I1+I2").
  const model::Assay assay = assays::rt_qpcr_assay();
  LayeringOptions options;
  options.indeterminate_threshold = 10;
  const LayerPlan plan = layer_assay(assay, options);
  EXPECT_EQ(plan.layer_count(), 3);
  EXPECT_TRUE(validate_layering(plan, assay, 10).empty());
}

TEST(Layering, RejectsEmptyAssayAndBadThreshold) {
  model::Assay assay{"t"};
  EXPECT_THROW((void)layer_assay(assay), PreconditionError);
  (void)add_op(assay, "a");
  LayeringOptions options;
  options.indeterminate_threshold = 0;
  EXPECT_THROW((void)layer_assay(assay, options), PreconditionError);
}

TEST(LayerPlan, LayerOfUnknownIsNegative) {
  const LayerPlan plan({{OperationId{0}}});
  EXPECT_EQ(plan.layer_of(OperationId{5}), -1);
  EXPECT_EQ(plan.layer_of(OperationId{}), -1);
}

TEST(LayerPlan, RejectsDuplicateAssignment) {
  EXPECT_THROW(LayerPlan({{OperationId{0}}, {OperationId{0}}}), PreconditionError);
}

// --- eviction_cost: the Fig. 5 scenarios -----------------------------------

TEST(EvictionCost, SingleChainStoresOneEdge) {
  model::Assay assay{"t"};
  const auto a = add_op(assay, "a");
  const auto o1 = add_op(assay, "o1", {a}, true);
  const EvictionCost cost = eviction_cost(assay, {a, o1}, o1);
  EXPECT_EQ(cost.storage, 1);
  EXPECT_EQ(cost.moved, std::vector<OperationId>{o1});
}

TEST(EvictionCost, TwoChainsStoreTwoEdges) {
  model::Assay assay{"t"};
  const auto b = add_op(assay, "b");
  const auto c = add_op(assay, "c");
  const auto o2 = add_op(assay, "o2", {b, c}, true);
  const EvictionCost cost = eviction_cost(assay, {b, c, o2}, o2);
  EXPECT_EQ(cost.storage, 2);
  EXPECT_EQ(cost.moved, std::vector<OperationId>{o2});
}

TEST(EvictionCost, DiamondMovesAncestorsForCheaperCut) {
  model::Assay assay{"t"};
  const auto d = add_op(assay, "d");
  const auto e = add_op(assay, "e", {d});
  const auto f = add_op(assay, "f", {d});
  const auto o3 = add_op(assay, "o3", {e, f}, true);
  const EvictionCost cost = eviction_cost(assay, {d, e, f, o3}, o3);
  EXPECT_EQ(cost.storage, 1);
  EXPECT_EQ(cost.moved.size(), 4u);  // d, e, f and o3 itself
}

TEST(EvictionCost, TieBreakPrefersFewerMovedVertices) {
  // a -> b -> o: every single-edge cut has value 1; the sink-closest cut
  // moves nothing but o itself (Fig. 5(d)'s c2-over-c1 rule).
  model::Assay assay{"t"};
  const auto a = add_op(assay, "a");
  const auto b = add_op(assay, "b", {a});
  const auto o = add_op(assay, "o", {b}, true);
  const EvictionCost cost = eviction_cost(assay, {a, b, o}, o);
  EXPECT_EQ(cost.storage, 1);
  EXPECT_EQ(cost.moved, std::vector<OperationId>{o});
}

TEST(EvictionCost, VictimMustBeInLayer) {
  model::Assay assay{"t"};
  const auto a = add_op(assay, "a");
  const auto o = add_op(assay, "o", {a}, true);
  EXPECT_THROW((void)eviction_cost(assay, {a}, o), PreconditionError);
}

// --- boundary_storage -------------------------------------------------------

TEST(BoundaryStorage, SingleLayerNeedsNoStorage) {
  model::Assay assay{"t"};
  const auto a = add_op(assay, "a");
  (void)add_op(assay, "b", {a});
  const LayerPlan plan = layer_assay(assay);
  EXPECT_TRUE(boundary_storage(plan, assay).empty());
}

TEST(BoundaryStorage, CountsCrossBoundaryEdges) {
  model::Assay assay{"t"};
  const auto i = add_op(assay, "capture", {}, true);
  const auto c1 = add_op(assay, "lysis", {i});
  (void)add_op(assay, "rt", {c1});
  const LayerPlan plan = layer_assay(assay);
  ASSERT_EQ(plan.layer_count(), 2);
  // Only the capture->lysis edge crosses the single boundary.
  EXPECT_EQ(boundary_storage(plan, assay), std::vector<int>{1});
}

TEST(BoundaryStorage, LongEdgesOccupyEveryCrossedBoundary) {
  model::Assay assay{"t"};
  const auto i1 = add_op(assay, "i1", {}, true);
  const auto i2 = add_op(assay, "i2", {i1}, true);
  const auto sink = add_op(assay, "sink", {i1, i2});
  (void)sink;
  const LayerPlan plan = layer_assay(assay);
  ASSERT_EQ(plan.layer_count(), 3);
  // i1->i2 crosses boundary 0; i1->sink crosses both; i2->sink crosses 1.
  EXPECT_EQ(boundary_storage(plan, assay), (std::vector<int>{2, 2}));
}

// Property: layering invariants hold on random assays for several seeds and
// thresholds.
class LayeringProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LayeringProperty, InvariantsHoldOnRandomAssays) {
  const auto [seed, threshold] = GetParam();
  assays::RandomAssayOptions gen;
  gen.operations = 30;
  gen.indeterminate_probability = 0.3;
  const model::Assay assay = assays::random_assay(static_cast<std::uint64_t>(seed) * 7 + 1, gen);
  LayeringOptions options;
  options.indeterminate_threshold = threshold;
  options.seed = static_cast<std::uint64_t>(seed);
  const LayerPlan plan = layer_assay(assay, options);
  const auto violations = validate_layering(plan, assay, threshold);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

INSTANTIATE_TEST_SUITE_P(SeedsAndThresholds, LayeringProperty,
                         ::testing::Combine(::testing::Range(0, 12),
                                            ::testing::Values(1, 2, 5)));

}  // namespace
}  // namespace cohls::core
