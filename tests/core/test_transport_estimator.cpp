#include "core/transport_estimator.hpp"

#include <gtest/gtest.h>

#include <set>

namespace cohls::core {
namespace {

struct Fixture {
  model::Assay assay{"t"};
  schedule::SynthesisResult result;
  OperationId a, b, c, d;
  DeviceId d0, d1, d2;

  Fixture() {
    const auto add = [this](const std::string& name, std::vector<OperationId> parents) {
      model::OperationSpec spec;
      spec.name = name;
      spec.duration = 10_min;
      spec.parents = std::move(parents);
      return assay.add_operation(spec);
    };
    a = add("a", {});
    b = add("b", {a});
    c = add("c", {a});
    d = add("d", {b, c});

    result.devices = model::DeviceInventory(4);
    const model::DeviceConfig cfg{model::ContainerKind::Chamber, model::Capacity::Tiny, {}};
    d0 = result.devices.instantiate(cfg, LayerId{0});
    d1 = result.devices.instantiate(cfg, LayerId{0});
    d2 = result.devices.instantiate(cfg, LayerId{0});
    // a,b on d0; c on d1; d on d1. Paths: (d0,d1) used by a->c and b->d = 2
    // transfers; no other path.
    result.layers.push_back({LayerId{0},
                             {{a, d0, 0_min, 10_min, 0_min},
                              {b, d0, 10_min, 10_min, 0_min},
                              {c, d1, 13_min, 10_min, 0_min},
                              {d, d1, 23_min, 10_min, 0_min}}});
  }
};

TEST(TransportEstimator, SameDeviceEdgesBecomeZero) {
  const Fixture f;
  const schedule::TransportProgression progression{1_min, 4_min, 4};
  const auto plan = refine_transport(f.result, f.assay, progression, 3_min);
  EXPECT_EQ(plan.edge_time(f.a, f.b), 0_min);  // a,b co-located
  EXPECT_EQ(plan.edge_time(f.c, f.d), 0_min);  // c,d co-located
}

TEST(TransportEstimator, BusiestPathGetsShortestTerm) {
  const Fixture f;
  const schedule::TransportProgression progression{1_min, 4_min, 4};
  const auto plan = refine_transport(f.result, f.assay, progression, 3_min);
  // The only inter-device path is (d0,d1) (rank 0 of 1) -> minimum term.
  EXPECT_EQ(plan.edge_time(f.a, f.c), 1_min);
  EXPECT_EQ(plan.edge_time(f.b, f.d), 1_min);
}

TEST(TransportEstimator, RanksMultiplePathsByUsage) {
  Fixture f;
  // Rebind: a on d0; b,d on d1; c on d2.
  // Edges: a->b (d0,d1), a->c (d0,d2), b->d same device 0, c->d (d2,d1).
  // Path usage: each path used once -> ranks spread across terms.
  f.result.layers[0].items[1].device = f.d1;                      // b
  f.result.layers[0].items[2].device = f.d2;                      // c
  f.result.layers[0].items[3].device = f.d1;                      // d
  const schedule::TransportProgression progression{1_min, 3_min, 3};
  const auto plan = refine_transport(f.result, f.assay, progression, 3_min);
  EXPECT_EQ(plan.edge_time(f.b, f.d), 0_min);  // co-located
  // Three used paths, three terms: each path gets a distinct term 1m/2m/3m.
  std::multiset<std::int64_t> terms{plan.edge_time(f.a, f.b).count(),
                                    plan.edge_time(f.a, f.c).count(),
                                    plan.edge_time(f.c, f.d).count()};
  EXPECT_EQ(terms, (std::multiset<std::int64_t>{1, 2, 3}));
}

TEST(TransportEstimator, UnboundEdgesKeepFallback) {
  Fixture f;
  // Drop operation d from the result: edges into d stay at the fallback.
  f.result.layers[0].items.pop_back();
  const schedule::TransportProgression progression{1_min, 4_min, 4};
  const auto plan = refine_transport(f.result, f.assay, progression, 3_min);
  EXPECT_EQ(plan.edge_time(f.b, f.d), 3_min);
}

TEST(TransportEstimator, NoInterDevicePathsMeansAllZeroOrFallback) {
  Fixture f;
  for (auto& item : f.result.layers[0].items) {
    item.device = f.d0;
  }
  const schedule::TransportProgression progression{1_min, 4_min, 4};
  const auto plan = refine_transport(f.result, f.assay, progression, 3_min);
  EXPECT_EQ(plan.edge_time(f.a, f.b), 0_min);
  EXPECT_EQ(plan.edge_time(f.a, f.c), 0_min);
  EXPECT_EQ(plan.edge_time(f.b, f.d), 0_min);
  EXPECT_EQ(plan.edge_time(f.c, f.d), 0_min);
}

}  // namespace
}  // namespace cohls::core
