#include "core/layer_synthesizer.hpp"

#include <gtest/gtest.h>

#include "schedule/validate.hpp"

namespace cohls::core {
namespace {

using model::BuiltinAccessory;
using model::Capacity;
using model::ContainerKind;

OperationId add_op(model::Assay& assay, const std::string& name, Minutes duration,
                   std::vector<OperationId> parents = {}) {
  model::OperationSpec spec;
  spec.name = name;
  spec.duration = duration;
  spec.parents = std::move(parents);
  return assay.add_operation(spec);
}

TEST(LayerSynthesizer, HeuristicOnlyWhenIlpDisabled) {
  model::Assay assay{"t"};
  const auto a = add_op(assay, "a", 10_min);
  schedule::LayerRequest request;
  request.layer = LayerId{0};
  request.ops = {a};
  EngineOptions engine;
  engine.enable_ilp = false;
  const model::DeviceInventory inventory(3);
  const auto outcome = synthesize_layer(request, assay, schedule::TransportPlan{2_min},
                                        model::CostModel{}, engine, inventory);
  EXPECT_FALSE(outcome.used_ilp);
  EXPECT_EQ(outcome.result.schedule.items.size(), 1u);
}

TEST(LayerSynthesizer, IlpSkippedAboveSizeThresholds) {
  model::Assay assay{"t"};
  std::vector<OperationId> ops;
  for (int i = 0; i < 10; ++i) {
    ops.push_back(add_op(assay, "op" + std::to_string(i), 10_min));
  }
  schedule::LayerRequest request;
  request.layer = LayerId{0};
  request.ops = ops;
  EngineOptions engine;
  engine.ilp_max_ops = 4;  // 10 ops exceed the cap
  const model::DeviceInventory inventory(12);
  const auto outcome = synthesize_layer(request, assay, schedule::TransportPlan{2_min},
                                        model::CostModel{}, engine, inventory);
  EXPECT_FALSE(outcome.used_ilp);
}

TEST(LayerSynthesizer, IlpSkippedForCustomBindingPolicies) {
  model::Assay assay{"t"};
  const auto a = add_op(assay, "a", 10_min);
  schedule::LayerRequest request;
  request.layer = LayerId{0};
  request.ops = {a};
  request.binds = [](const model::Operation&, const model::DeviceConfig&) { return true; };
  EngineOptions engine;  // ILP enabled, but the custom predicate disables it
  const model::DeviceInventory inventory(3);
  const auto outcome = synthesize_layer(request, assay, schedule::TransportPlan{2_min},
                                        model::CostModel{}, engine, inventory);
  EXPECT_FALSE(outcome.used_ilp);
}

TEST(LayerSynthesizer, ExactEngineImprovesOnGreedyWhenItCan) {
  // Two ops with different single-accessory needs. The greedy builds two
  // minimal chambers (or serializes); the ILP can configure one chamber
  // with both accessories, killing the path and one integration.
  model::Assay assay{"t"};
  const auto a = add_op(assay, "a", 10_min);
  const auto b = add_op(assay, "b", 10_min, {a});
  model::OperationSpec sc;
  sc.name = "c";
  sc.duration = 10_min;
  sc.parents = {b};
  sc.accessories = {BuiltinAccessory::kHeatingPad};
  const auto c = assay.add_operation(sc);
  schedule::LayerRequest request;
  request.layer = LayerId{0};
  request.ops = {a, b, c};
  EngineOptions engine;
  const model::DeviceInventory inventory(4);
  const auto outcome = synthesize_layer(request, assay, schedule::TransportPlan{3_min},
                                        model::CostModel{}, engine, inventory);
  // Whatever engine won, the result validates and uses at most 2 devices.
  schedule::SynthesisResult wrapped;
  wrapped.layers.push_back(outcome.result.schedule);
  wrapped.devices = outcome.inventory;
  EXPECT_TRUE(
      schedule::validate_result(wrapped, assay, schedule::TransportPlan{3_min}).empty());
  EXPECT_LE(outcome.inventory.size(), 2);
}

TEST(LayerScore, CountsLayerDevicesAndPaths) {
  model::Assay assay{"t"};
  const auto a = add_op(assay, "a", 10_min);
  const auto b = add_op(assay, "b", 10_min, {a});
  schedule::LayerRequest request;
  request.layer = LayerId{0};
  request.ops = {a, b};

  model::DeviceInventory inventory(4);
  const auto d0 = inventory.instantiate({ContainerKind::Chamber, Capacity::Tiny, {}},
                                        LayerId{0});
  const auto d1 = inventory.instantiate({ContainerKind::Chamber, Capacity::Tiny, {}},
                                        LayerId{0});
  schedule::LayerResult result;
  result.schedule.layer = LayerId{0};
  result.schedule.items = {{a, d0, 0_min, 10_min, 2_min},
                           {b, d1, 12_min, 10_min, 0_min}};
  model::CostModel costs;
  costs.set_weights(1.0, 2.0, 3.0, 5.0);
  const double score = layer_score(result, inventory, request, assay, costs);
  const double device_cost =
      2 * (2.0 * model::device_area({ContainerKind::Chamber, Capacity::Tiny, {}}, costs) +
           3.0 * model::device_processing({ContainerKind::Chamber, Capacity::Tiny, {}},
                                          costs, assay.registry()));
  EXPECT_DOUBLE_EQ(score, 1.0 * 22.0 + device_cost + 5.0 * 1.0);
}

TEST(LayerScore, InheritedDevicesAreSunkCosts) {
  model::Assay assay{"t"};
  const auto a = add_op(assay, "a", 10_min);
  schedule::LayerRequest request;
  request.layer = LayerId{1};
  request.ops = {a};
  model::DeviceInventory inventory(4);
  const auto d0 = inventory.instantiate({ContainerKind::Chamber, Capacity::Tiny, {}},
                                        LayerId{0});  // created by layer 0
  schedule::LayerResult result;
  result.schedule.layer = LayerId{1};
  result.schedule.items = {{a, d0, 0_min, 10_min, 0_min}};
  const model::CostModel costs;
  const double score = layer_score(result, inventory, request, assay, costs);
  EXPECT_DOUBLE_EQ(score, costs.weight_time() * 10.0);  // time only
}

}  // namespace
}  // namespace cohls::core
