#include "core/progressive_resynthesis.hpp"

#include <gtest/gtest.h>

#include "assays/benchmarks.hpp"
#include "assays/random_assay.hpp"
#include "schedule/validate.hpp"

namespace cohls::core {
namespace {

TEST(ProgressiveResynthesis, RecordsInitialIteration) {
  const model::Assay assay = assays::kinase_activity_assay(1);
  SynthesisOptions options;
  options.max_devices = 10;
  options.max_resynthesis_iterations = 0;
  const SynthesisReport report = synthesize(assay, options);
  ASSERT_EQ(report.iterations.size(), 1u);
  EXPECT_GT(report.iterations[0].objective.weighted_total, 0.0);
  EXPECT_EQ(report.iterations[0].device_count, report.result.used_device_count());
}

TEST(ProgressiveResynthesis, KeepsTheBestIterationEvenIfLaterOnesRegress) {
  const model::Assay assay = assays::gene_expression_assay(3);
  SynthesisOptions options;
  options.max_devices = 12;
  options.layering.indeterminate_threshold = 3;
  options.resynthesis_improvement_threshold = -1.0;  // never stop early
  options.max_resynthesis_iterations = 3;
  const SynthesisReport report = synthesize(assay, options);
  double best = report.iterations.front().objective.weighted_total;
  for (const auto& it : report.iterations) {
    best = std::min(best, it.objective.weighted_total);
  }
  const auto final_objective =
      schedule::evaluate_objective(report.result, assay, options.costs);
  EXPECT_NEAR(final_objective.weighted_total, best, 1e-9);
}

TEST(ProgressiveResynthesis, StopsWhenImprovementBelowThreshold) {
  const model::Assay assay = assays::kinase_activity_assay(1);
  SynthesisOptions options;
  options.max_devices = 10;
  options.resynthesis_improvement_threshold = 1.0;  // 100%: stop after one
  options.max_resynthesis_iterations = 5;
  const SynthesisReport report = synthesize(assay, options);
  EXPECT_EQ(report.iterations.size(), 2u);  // initial + one re-synthesis
}

TEST(ProgressiveResynthesis, ResultValidatesUnderReportedTransport) {
  const model::Assay assay = assays::gene_expression_assay(4);
  SynthesisOptions options;
  options.max_devices = 15;
  options.layering.indeterminate_threshold = 4;
  const SynthesisReport report = synthesize(assay, options);
  const auto violations =
      schedule::validate_result(report.result, assay, report.transport);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(ProgressiveResynthesis, PlanMatchesResultLayers) {
  const model::Assay assay = assays::rt_qpcr_assay(4);
  SynthesisOptions options;
  options.max_devices = 15;
  options.layering.indeterminate_threshold = 2;
  const SynthesisReport report = synthesize(assay, options);
  ASSERT_EQ(static_cast<int>(report.result.layers.size()), report.plan.layer_count());
  for (int li = 0; li < report.plan.layer_count(); ++li) {
    EXPECT_EQ(report.result.layers[static_cast<std::size_t>(li)].items.size(),
              report.plan.layer(li).size());
  }
}

TEST(ProgressiveResynthesis, MultiStartNeverWorsensTheObjective) {
  assays::RandomAssayOptions gen;
  gen.operations = 20;
  gen.indeterminate_probability = 0.25;
  const model::Assay assay = assays::random_assay(4242, gen);
  SynthesisOptions single;
  single.max_devices = 10;
  single.layering.indeterminate_threshold = 3;
  single.engine.enable_ilp = false;
  SynthesisOptions multi = single;
  multi.restarts = 4;
  const auto one = synthesize(assay, single);
  const auto four = synthesize(assay, multi);
  const double one_obj =
      schedule::evaluate_objective(one.result, assay, single.costs).weighted_total;
  const double four_obj =
      schedule::evaluate_objective(four.result, assay, multi.costs).weighted_total;
  EXPECT_LE(four_obj, one_obj + 1e-9);
  const auto violations =
      schedule::validate_result(four.result, assay, four.transport);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(ProgressiveResynthesis, RejectsZeroRestarts) {
  const model::Assay assay = assays::kinase_activity_assay(1);
  SynthesisOptions options;
  options.restarts = 0;
  EXPECT_THROW((void)synthesize(assay, options), PreconditionError);
}

// Property: the full flow produces validating results on random assays
// across seeds, thresholds and inventory sizes.
class FullFlowProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(FullFlowProperty, EndToEndResultAlwaysValidates) {
  const auto [seed, threshold, max_devices] = GetParam();
  assays::RandomAssayOptions gen;
  gen.operations = 24;
  gen.indeterminate_probability = 0.2;
  const model::Assay assay =
      assays::random_assay(static_cast<std::uint64_t>(seed) * 131 + 7, gen);
  SynthesisOptions options;
  options.max_devices = max_devices;
  options.layering.indeterminate_threshold = threshold;
  options.layering.seed = static_cast<std::uint64_t>(seed);
  // Keep the property sweep fast; exactness is covered by the dedicated
  // ILP suites.
  options.engine.milp.time_limit_seconds = 0.2;
  options.engine.milp.max_nodes = 2000;
  try {
    const SynthesisReport report = synthesize(assay, options);
    const auto violations =
        schedule::validate_result(report.result, assay, report.transport);
    EXPECT_TRUE(violations.empty()) << violations.front();
    const auto layering_violations =
        validate_layering(report.plan, assay, threshold);
    EXPECT_TRUE(layering_violations.empty()) << layering_violations.front();
  } catch (const InfeasibleError&) {
    // Tight inventories can be genuinely infeasible (many parallel
    // indeterminate ops); rejecting with a typed error is correct behavior.
    SUCCEED();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FullFlowProperty,
                         ::testing::Combine(::testing::Range(0, 10),
                                            ::testing::Values(2, 4),
                                            ::testing::Values(8, 16)));

}  // namespace
}  // namespace cohls::core
