#include "diag/diagnostic.hpp"

#include <gtest/gtest.h>

namespace cohls::diag {
namespace {

Diagnostic make(const char* code, Severity severity, const std::string& message,
                Span span = {}) {
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.message = message;
  d.span = span;
  return d;
}

TEST(Diagnostic, SeverityNames) {
  EXPECT_EQ(to_string(Severity::Note), "note");
  EXPECT_EQ(to_string(Severity::Warning), "warning");
  EXPECT_EQ(to_string(Severity::Error), "error");
}

TEST(Diagnostic, SpanKnownOnlyWithPositiveLine) {
  EXPECT_FALSE(Span{}.known());
  EXPECT_FALSE((Span{0, 3}).known());
  EXPECT_TRUE((Span{1, 0}).known());
}

TEST(Diagnostic, CountsBySeverity) {
  const std::vector<Diagnostic> diagnostics{
      make(codes::kDependencyCycle, Severity::Error, "a"),
      make(codes::kOverThresholdCluster, Severity::Warning, "b"),
      make(codes::kStoragePressure, Severity::Warning, "c"),
  };
  EXPECT_TRUE(has_errors(diagnostics));
  EXPECT_EQ(count(diagnostics, Severity::Error), 1);
  EXPECT_EQ(count(diagnostics, Severity::Warning), 2);
  EXPECT_FALSE(has_errors({diagnostics[1], diagnostics[2]}));
}

TEST(Diagnostic, SortByLocationPutsSpanlessLast) {
  std::vector<Diagnostic> diagnostics{
      make(codes::kDeviceOverlap, Severity::Error, "spanless"),
      make(codes::kUnbindableOperation, Severity::Error, "late", Span{9, 1}),
      make(codes::kDependencyCycle, Severity::Error, "early", Span{2, 1}),
      make(codes::kNonPositiveDuration, Severity::Error, "same line", Span{2, 5}),
  };
  sort_by_location(diagnostics);
  EXPECT_EQ(diagnostics[0].message, "early");
  EXPECT_EQ(diagnostics[1].message, "same line");
  EXPECT_EQ(diagnostics[2].message, "late");
  EXPECT_EQ(diagnostics[3].message, "spanless");
}

TEST(Diagnostic, ParseFormat) {
  EXPECT_EQ(parse_format("text"), Format::Text);
  EXPECT_EQ(parse_format("json"), Format::Json);
  EXPECT_FALSE(parse_format("yaml").has_value());
  EXPECT_FALSE(parse_format("").has_value());
}

TEST(Diagnostic, RenderTextIsClangStyle) {
  Diagnostic d = make(codes::kDependencyCycle, Severity::Error,
                      "dependency cycle: 2 -> 5 -> 2", Span{12, 1});
  d.notes.push_back(Note{"operation 5 defined here", Span{9, 1}});
  d.fixit = "break the cycle";
  const std::string text = render_text({d}, "file.assay");
  EXPECT_NE(text.find("file.assay:12:1: error: dependency cycle: 2 -> 5 -> 2 "
                      "[COHLS-E103]"),
            std::string::npos);
  EXPECT_NE(text.find("note: operation 5 defined here (file.assay:9)"),
            std::string::npos);
  EXPECT_NE(text.find("fix-it: break the cycle"), std::string::npos);
}

TEST(Diagnostic, RenderTextOmitsLocationForSpanless) {
  const Diagnostic d =
      make(codes::kDeviceOverlap, Severity::Error, "ops overlap");
  const std::string text = render_text({d}, "file.assay");
  EXPECT_EQ(text.rfind("file.assay: error: ops overlap [COHLS-E211]", 0), 0u);
}

TEST(Diagnostic, RenderJsonCarriesCountsAndCodes) {
  Diagnostic error = make(codes::kUnbindableOperation, Severity::Error,
                          "no device", Span{4, 1});
  error.fixit = "use capacity=medium";
  const Diagnostic warning =
      make(codes::kOverThresholdCluster, Severity::Warning, "big cluster", Span{7, 1});
  const std::string json = render_json({error, warning}, "a.assay");
  EXPECT_EQ(json.rfind("{\"file\": \"a.assay\", \"errors\": 1, \"warnings\": 1", 0),
            0u);
  EXPECT_NE(json.find("\"code\": \"COHLS-E104\""), std::string::npos);
  EXPECT_NE(json.find("\"code\": \"COHLS-W101\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"fixit\": \"use capacity=medium\""), std::string::npos);
}

TEST(Diagnostic, JsonObjectEscapesStrings) {
  const Diagnostic d = make(codes::kParseError, Severity::Error,
                            "expected '\"' after \\ name\n");
  const std::string json = json_object(d);
  EXPECT_NE(json.find("expected '\\\"' after \\\\ name\\n"), std::string::npos);
}

TEST(Diagnostic, EscapeJsonControlCharacters) {
  EXPECT_EQ(escape_json("a\tb"), "a\\tb");
  EXPECT_EQ(escape_json("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(escape_json(std::string_view("a\x01z", 3)), "a\\u0001z");
}

TEST(Diagnostic, SummaryLine) {
  const Diagnostic d =
      make(codes::kMissingOperation, Severity::Error, "op #3 is missing");
  EXPECT_EQ(summary_line(d), "COHLS-E203: op #3 is missing");
}

TEST(Diagnostic, RenderDispatchesOnFormat) {
  const Diagnostic d = make(codes::kParseError, Severity::Error, "bad", Span{1, 1});
  EXPECT_NE(render({d}, Format::Text, "f").find("error: bad"), std::string::npos);
  EXPECT_EQ(render({d}, Format::Json, "f").front(), '{');
}

}  // namespace
}  // namespace cohls::diag
