#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace cohls {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"Case", "Time"});
  t.add_row({"1", "225m"});
  t.add_row({"22", "5m"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Case  Time"), std::string::npos);
  EXPECT_NE(s.find("1     225m"), std::string::npos);
  EXPECT_NE(s.find("22    5m"), std::string::npos);
}

TEST(TextTable, HeaderSeparatorPresent) {
  TextTable t({"A"});
  t.add_row({"x"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find('-'), std::string::npos);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), PreconditionError);
}

TEST(TextTable, RejectsMismatchedRowArity) {
  TextTable t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(TextTable, CountsRows) {
  TextTable t({"A"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, WideCellGrowsColumn) {
  TextTable t({"A", "B"});
  t.add_row({"a-very-wide-cell", "b"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("a-very-wide-cell  b"), std::string::npos);
}

}  // namespace
}  // namespace cohls
