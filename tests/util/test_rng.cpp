#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>

namespace cohls {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int identical = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) {
      ++identical;
    }
  }
  EXPECT_LT(identical, 4);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng{7};
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform_int(5, 5), 5);
  }
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng{7};
  EXPECT_THROW(rng.uniform_int(2, 1), PreconditionError);
}

TEST(Rng, UniformIntCoversAllValuesOfSmallRange) {
  Rng rng{11};
  std::array<int, 4> seen{};
  for (int i = 0; i < 400; ++i) {
    ++seen[static_cast<std::size_t>(rng.uniform_int(0, 3))];
  }
  for (const int count : seen) {
    EXPECT_GT(count, 50);  // roughly uniform
  }
}

TEST(Rng, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng{3};
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng{5};
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRejectsOutOfRangeProbability) {
  Rng rng{5};
  EXPECT_THROW(rng.bernoulli(-0.1), PreconditionError);
  EXPECT_THROW(rng.bernoulli(1.1), PreconditionError);
}

}  // namespace
}  // namespace cohls
