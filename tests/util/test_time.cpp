#include "util/time.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace cohls {
namespace {

TEST(Minutes, ArithmeticBehavesLikeIntegers) {
  EXPECT_EQ((Minutes{10} + Minutes{5}).count(), 15);
  EXPECT_EQ((Minutes{10} - Minutes{25}).count(), -15);
  EXPECT_EQ((3 * Minutes{7}).count(), 21);
}

TEST(Minutes, CompoundAssignment) {
  Minutes m{4};
  m += Minutes{6};
  EXPECT_EQ(m.count(), 10);
  m -= Minutes{3};
  EXPECT_EQ(m.count(), 7);
}

TEST(Minutes, Ordering) {
  EXPECT_LT(Minutes{1}, Minutes{2});
  EXPECT_EQ(Minutes{5}, Minutes{5});
  EXPECT_GT(Minutes{9}, Minutes{-9});
}

TEST(Minutes, UserLiteral) {
  EXPECT_EQ(225_min, Minutes{225});
}

TEST(Minutes, StreamFormat) {
  std::ostringstream out;
  out << 225_min;
  EXPECT_EQ(out.str(), "225m");
}

TEST(FormatWallclock, SubMinuteUsesSeconds) {
  EXPECT_EQ(format_wallclock(5.531), "5.531s");
  EXPECT_EQ(format_wallclock(0.0), "0.000s");
}

TEST(FormatWallclock, AboveMinuteUsesMinuteSecond) {
  EXPECT_EQ(format_wallclock(312.0), "5m12s");
  EXPECT_EQ(format_wallclock(601.4), "10m1s");
}

TEST(FormatWallclock, RejectsNegative) {
  EXPECT_THROW(format_wallclock(-1.0), PreconditionError);
}

}  // namespace
}  // namespace cohls
