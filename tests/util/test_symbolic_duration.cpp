#include "util/symbolic_duration.hpp"

#include <gtest/gtest.h>

namespace cohls {
namespace {

TEST(SymbolicDuration, DeterminatePrintsJustMinutes) {
  SymbolicDuration d{225_min};
  EXPECT_EQ(d.to_string(), "225m");
}

TEST(SymbolicDuration, SymbolsPrintInPaperNotation) {
  SymbolicDuration d{277_min};
  d.add_symbol(1);
  EXPECT_EQ(d.to_string(), "277m+I1");
  d.add_symbol(2);
  EXPECT_EQ(d.to_string(), "277m+I1+I2");
}

TEST(SymbolicDuration, SymbolsStaySortedRegardlessOfInsertionOrder) {
  SymbolicDuration d{1_min};
  d.add_symbol(3);
  d.add_symbol(1);
  d.add_symbol(2);
  EXPECT_EQ(d.to_string(), "1m+I1+I2+I3");
}

TEST(SymbolicDuration, DuplicateSymbolsCollapse) {
  SymbolicDuration d{10_min};
  d.add_symbol(1);
  d.add_symbol(1);
  EXPECT_EQ(d.symbols().size(), 1u);
}

TEST(SymbolicDuration, AdditionMergesFixedAndSymbols) {
  SymbolicDuration a{100_min};
  a.add_symbol(1);
  SymbolicDuration b{44_min};
  b.add_symbol(2);
  a += b;
  EXPECT_EQ(a.to_string(), "144m+I1+I2");
}

TEST(SymbolicDuration, EqualityComparesFixedAndSymbols) {
  SymbolicDuration a{10_min};
  SymbolicDuration b{10_min};
  EXPECT_EQ(a, b);
  a.add_symbol(1);
  EXPECT_NE(a, b);
  b.add_symbol(1);
  EXPECT_EQ(a, b);
}

TEST(SymbolicDuration, RejectsNonPositiveLayerNumbers) {
  SymbolicDuration d;
  EXPECT_THROW(d.add_symbol(0), PreconditionError);
  EXPECT_THROW(d.add_symbol(-2), PreconditionError);
}

TEST(SymbolicDuration, AddFixedAccumulates) {
  SymbolicDuration d{10_min};
  d.add_fixed(5_min);
  EXPECT_EQ(d.fixed(), 15_min);
}

}  // namespace
}  // namespace cohls
