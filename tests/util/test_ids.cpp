#include "util/ids.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

namespace cohls {
namespace {

TEST(Ids, DefaultConstructedIsInvalid) {
  OperationId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.value(), -1);
}

TEST(Ids, ExplicitValueRoundTrips) {
  DeviceId id{7};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 7);
  EXPECT_EQ(id.index(), 7u);
}

TEST(Ids, ComparesByValue) {
  EXPECT_EQ(OperationId{3}, OperationId{3});
  EXPECT_NE(OperationId{3}, OperationId{4});
  EXPECT_LT(OperationId{3}, OperationId{4});
}

TEST(Ids, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<OperationId, DeviceId>);
  static_assert(!std::is_same_v<DeviceId, LayerId>);
}

TEST(Ids, Hashable) {
  std::unordered_set<OperationId> set;
  set.insert(OperationId{1});
  set.insert(OperationId{2});
  set.insert(OperationId{1});
  EXPECT_EQ(set.size(), 2u);
}

TEST(Ids, StreamsItsValue) {
  std::ostringstream out;
  out << LayerId{12};
  EXPECT_EQ(out.str(), "12");
}

}  // namespace
}  // namespace cohls
