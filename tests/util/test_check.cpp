#include "util/check.hpp"

#include <gtest/gtest.h>

namespace cohls {
namespace {

TEST(Check, ExpectPassesOnTrue) {
  EXPECT_NO_THROW(COHLS_EXPECT(1 + 1 == 2, "arithmetic works"));
}

TEST(Check, ExpectThrowsPreconditionError) {
  EXPECT_THROW(COHLS_EXPECT(false, "deliberate"), PreconditionError);
}

TEST(Check, AssertThrowsInvariantError) {
  EXPECT_THROW(COHLS_ASSERT(false, "deliberate"), InvariantError);
}

TEST(Check, MessageNamesTheExpressionAndLocation) {
  try {
    COHLS_EXPECT(2 < 1, "two is not less than one");
    FAIL() << "expected a throw";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("two is not less than one"), std::string::npos);
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos);
  }
}

TEST(Check, PreconditionErrorIsInvalidArgument) {
  EXPECT_THROW(COHLS_EXPECT(false, "x"), std::invalid_argument);
}

TEST(Check, InvariantErrorIsLogicError) {
  EXPECT_THROW(COHLS_ASSERT(false, "x"), std::logic_error);
}

}  // namespace
}  // namespace cohls
