// The certifier is the executable form of constraints (5)-(14); these tests
// feed it hand-built valid and deliberately broken schedules and match on
// the stable diagnostic codes (never on message text, which may evolve).
#include "schedule/validate.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace cohls::schedule {
namespace {

using model::BuiltinAccessory;
using model::Capacity;
using model::ContainerKind;

bool has_code(const std::vector<diag::Diagnostic>& diagnostics, const char* code) {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [code](const diag::Diagnostic& d) { return d.code == code; });
}

struct Fixture {
  model::Assay assay{"t"};
  OperationId a, b, ind;
  SynthesisResult result;
  TransportPlan transport{2_min};
  DeviceId d0, d1;

  Fixture() {
    model::OperationSpec sa;
    sa.name = "a";
    sa.duration = 10_min;
    sa.accessories = {BuiltinAccessory::kPump};
    a = assay.add_operation(sa);

    model::OperationSpec sb;
    sb.name = "b";
    sb.duration = 5_min;
    sb.parents = {a};
    b = assay.add_operation(sb);

    model::OperationSpec si;
    si.name = "capture";
    si.duration = 8_min;
    si.indeterminate = true;
    ind = assay.add_operation(si);

    result.devices = model::DeviceInventory(4);
    d0 = result.devices.instantiate(
        {ContainerKind::Ring, Capacity::Small, {BuiltinAccessory::kPump}}, LayerId{0});
    d1 = result.devices.instantiate({ContainerKind::Chamber, Capacity::Tiny, {}},
                                    LayerId{0});
    // Valid single layer: a on d0 [0,10]; b on d0 [10,15]; ind on d1 at the
    // end [10,18].
    result.layers.push_back({LayerId{0},
                             {{a, d0, 0_min, 10_min, 0_min},
                              {b, d0, 10_min, 5_min, 0_min},
                              {ind, d1, 10_min, 8_min, 0_min}}});
  }
};

TEST(Certify, AcceptsAValidSchedule) {
  const Fixture f;
  EXPECT_TRUE(certify_result(f.result, f.assay, f.transport).empty());
}

TEST(Certify, DetectsMissingOperation) {
  Fixture f;
  f.result.layers[0].items.pop_back();
  const auto diagnostics = certify_result(f.result, f.assay, f.transport);
  ASSERT_FALSE(diagnostics.empty());
  EXPECT_TRUE(has_code(diagnostics, diag::codes::kMissingOperation));
}

TEST(Certify, DetectsDuplicateOperation) {
  Fixture f;
  f.result.layers[0].items.push_back({f.a, f.d1, 50_min, 10_min, 0_min});
  const auto diagnostics = certify_result(f.result, f.assay, f.transport);
  ASSERT_FALSE(diagnostics.empty());
  EXPECT_TRUE(has_code(diagnostics, diag::codes::kDuplicateSchedule));
}

TEST(Certify, DetectsOperationOutsideAssay) {
  Fixture f;
  f.result.layers[0].items[0].op = OperationId{99};
  const auto diagnostics = certify_result(f.result, f.assay, f.transport);
  EXPECT_TRUE(has_code(diagnostics, diag::codes::kUnknownOperation));
}

TEST(Certify, DetectsWrongDuration) {
  Fixture f;
  f.result.layers[0].items[0].duration = 99_min;
  const auto diagnostics = certify_result(f.result, f.assay, f.transport);
  EXPECT_TRUE(has_code(diagnostics, diag::codes::kWrongDuration));
}

TEST(Certify, DetectsIncompatibleBinding) {
  Fixture f;
  // a needs a pump; d1 has none.
  f.result.layers[0].items[0].device = f.d1;
  f.result.layers[0].items[1].device = f.d1;  // keep b with its parent
  f.result.layers[0].items[2].device = f.d0;  // keep ind on its own device
  const auto diagnostics = certify_result(f.result, f.assay, f.transport);
  EXPECT_TRUE(has_code(diagnostics, diag::codes::kIncompatibleBinding));
}

TEST(Certify, DetectsDependencyViolationSameDevice) {
  Fixture f;
  f.result.layers[0].items[1].start = 5_min;  // b starts before a ends
  const auto diagnostics = certify_result(f.result, f.assay, f.transport);
  EXPECT_TRUE(has_code(diagnostics, diag::codes::kDependencyStart));
}

TEST(Certify, ChargesTransportAcrossDevices) {
  Fixture f;
  // Move b to d1 starting right at a's end: misses the 2m transport.
  f.result.layers[0].items[1].device = f.d1;
  f.result.layers[0].items[1].start = 10_min;
  f.result.layers[0].items[2].device = f.d0;  // keep ind separate
  f.result.layers[0].items[2].start = 10_min;
  EXPECT_TRUE(has_code(certify_result(f.result, f.assay, f.transport),
                       diag::codes::kDependencyStart));
  // With the transport honored it passes.
  f.result.layers[0].items[1].start = 12_min;
  f.result.layers[0].items[2].start = 12_min;
  EXPECT_TRUE(certify_result(f.result, f.assay, f.transport).empty());
}

TEST(Certify, DetectsDeviceConflict) {
  Fixture f;
  f.result.layers[0].items[1].start = 9_min;  // overlaps a on d0 AND precedes parent end
  const auto diagnostics = certify_result(f.result, f.assay, f.transport);
  EXPECT_TRUE(has_code(diagnostics, diag::codes::kDeviceOverlap));
}

TEST(Certify, TransportSlotOccupiesDevice) {
  Fixture f;
  // b moves to d1 (a must hold d0 during the 2m outgoing transport);
  // squeeze the indeterminate op onto d0 during that window.
  f.result.layers[0].items[1].device = f.d1;
  f.result.layers[0].items[1].start = 12_min;
  f.result.layers[0].items[2].device = f.d0;
  f.result.layers[0].items[2].start = 10_min;  // inside a's transport slot? a ends 10, transport until 12
  // ind on d0 at [10,18) overlaps a's occupation [0,12) -> conflict.
  const auto diagnostics = certify_result(f.result, f.assay, f.transport);
  EXPECT_TRUE(has_code(diagnostics, diag::codes::kDeviceOverlap));
}

TEST(Certify, DetectsLateStartAfterIndeterminateEnd) {
  Fixture f;
  // b starts after ind's minimum completion (constraint 14).
  f.result.layers[0].items[1].start = 30_min;
  const auto diagnostics = certify_result(f.result, f.assay, f.transport);
  EXPECT_TRUE(has_code(diagnostics, diag::codes::kStartAfterIndeterminate));
}

TEST(Certify, DetectsParentInLaterLayer) {
  Fixture f;
  // Split: child b into layer 0, parent a into layer 1.
  SynthesisResult split;
  split.devices = f.result.devices;
  split.layers.push_back({LayerId{0},
                          {{f.b, f.d0, 0_min, 5_min, 0_min},
                           {f.ind, f.d1, 0_min, 8_min, 0_min}}});
  split.layers.push_back({LayerId{1}, {{f.a, f.d0, 0_min, 10_min, 0_min}}});
  const auto diagnostics = certify_result(split, f.assay, f.transport);
  EXPECT_TRUE(has_code(diagnostics, diag::codes::kParentLayerOrder));
}

TEST(Certify, CrossLayerChildWaitsForTransport) {
  Fixture f;
  SynthesisResult split;
  split.devices = f.result.devices;
  split.layers.push_back({LayerId{0},
                          {{f.a, f.d0, 0_min, 10_min, 0_min},
                           {f.ind, f.d1, 0_min, 8_min, 0_min}}});
  // b inherits a's output onto a different device but starts at 0.
  split.layers.push_back({LayerId{1}, {{f.b, f.d1, 0_min, 5_min, 0_min}}});
  const auto diagnostics = certify_result(split, f.assay, f.transport);
  EXPECT_TRUE(has_code(diagnostics, diag::codes::kTransportStart));
  // Waiting out the transport fixes it.
  split.layers[1].items[0].start = 2_min;
  EXPECT_TRUE(certify_result(split, f.assay, f.transport).empty());
}

TEST(Certify, IndeterminateOpsMustNotShareDevices) {
  model::Assay assay{"t"};
  model::OperationSpec s;
  s.name = "i1";
  s.duration = 5_min;
  s.indeterminate = true;
  const auto i1 = assay.add_operation(s);
  s.name = "i2";
  const auto i2 = assay.add_operation(s);
  SynthesisResult result;
  result.devices = model::DeviceInventory(2);
  const auto d = result.devices.instantiate(
      {ContainerKind::Chamber, Capacity::Tiny, {}}, LayerId{0});
  result.layers.push_back({LayerId{0},
                           {{i1, d, 0_min, 5_min, 0_min},
                            {i2, d, 5_min, 5_min, 0_min}}});
  const auto diagnostics = certify_result(result, assay, TransportPlan{1_min});
  EXPECT_TRUE(has_code(diagnostics, diag::codes::kIndeterminateSharedDevice));
}

TEST(Certify, IndeterminateWithSameLayerChildIsFlagged) {
  model::Assay assay{"t"};
  model::OperationSpec s;
  s.name = "i";
  s.duration = 5_min;
  s.indeterminate = true;
  const auto i = assay.add_operation(s);
  model::OperationSpec c;
  c.name = "c";
  c.duration = 5_min;
  c.parents = {i};
  const auto child = assay.add_operation(c);
  SynthesisResult result;
  result.devices = model::DeviceInventory(2);
  const auto d0 = result.devices.instantiate(
      {ContainerKind::Chamber, Capacity::Tiny, {}}, LayerId{0});
  const auto d1 = result.devices.instantiate(
      {ContainerKind::Chamber, Capacity::Tiny, {}}, LayerId{0});
  result.layers.push_back({LayerId{0},
                           {{i, d0, 0_min, 5_min, 0_min},
                            {child, d1, 5_min + 1_min, 5_min, 0_min}}});
  const auto diagnostics = certify_result(result, assay, TransportPlan{1_min});
  EXPECT_TRUE(has_code(diagnostics, diag::codes::kIndeterminateSameLayerChild));
}

TEST(Certify, ValidateResultWrapsDiagnosticsAsSummaryLines) {
  Fixture f;
  f.result.layers[0].items.pop_back();
  const auto violations = validate_result(f.result, f.assay, f.transport);
  ASSERT_FALSE(violations.empty());
  // Each line starts with the stable code.
  EXPECT_EQ(violations[0].rfind(diag::codes::kMissingOperation, 0), 0u);
}

}  // namespace
}  // namespace cohls::schedule
