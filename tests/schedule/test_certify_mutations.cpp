// Mutation-style properties for the certifier: synthesize a real benchmark
// schedule (which certifies clean), apply ONE targeted corruption, and
// assert that exactly the intended COHLS-Exxx code fires. Each mutation is
// constructed so its side effects cannot trip neighbouring checks (moves
// only shrink occupation windows, relocations only touch operations whose
// neighbours sit on other devices, and so on).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "assays/benchmarks.hpp"
#include "core/progressive_resynthesis.hpp"
#include "model/compatibility.hpp"
#include "schedule/validate.hpp"

namespace cohls::schedule {
namespace {

using model::Capacity;
using model::ContainerKind;

core::SynthesisOptions paper_options() {
  core::SynthesisOptions options;
  options.max_devices = 25;
  options.layering.indeterminate_threshold = 10;
  return options;
}

struct Bench {
  model::Assay assay;
  core::SynthesisReport report;
};

const Bench& kinase_bench() {
  static const Bench bench = [] {
    model::Assay assay = assays::kinase_activity_assay();
    core::SynthesisReport report = core::synthesize(assay, paper_options());
    return Bench{std::move(assay), std::move(report)};
  }();
  return bench;
}

const Bench& gene_bench() {
  static const Bench bench = [] {
    model::Assay assay = assays::gene_expression_assay();
    core::SynthesisReport report = core::synthesize(assay, paper_options());
    return Bench{std::move(assay), std::move(report)};
  }();
  return bench;
}

/// True when the report is non-empty and every diagnostic carries `code`.
bool only_code(const std::vector<diag::Diagnostic>& diagnostics, const char* code) {
  if (diagnostics.empty()) {
    return false;
  }
  return std::all_of(diagnostics.begin(), diagnostics.end(),
                     [code](const diag::Diagnostic& d) { return d.code == code; });
}

std::string render(const std::vector<diag::Diagnostic>& diagnostics) {
  return diag::render_text(diagnostics, "schedule");
}

struct Flat {
  int layer = 0;
  std::size_t index = 0;
};

std::map<OperationId, Flat> flatten(const SynthesisResult& result) {
  std::map<OperationId, Flat> flat;
  for (int li = 0; li < static_cast<int>(result.layers.size()); ++li) {
    const auto& items = result.layers[static_cast<std::size_t>(li)].items;
    for (std::size_t i = 0; i < items.size(); ++i) {
      flat[items[i].op] = Flat{li, i};
    }
  }
  return flat;
}

const ScheduledOperation& at(const SynthesisResult& result, Flat where) {
  return result.layers[static_cast<std::size_t>(where.layer)].items[where.index];
}

ScheduledOperation& at(SynthesisResult& result, Flat where) {
  return result.layers[static_cast<std::size_t>(where.layer)].items[where.index];
}

/// Earliest start the dependency checks allow for `item`, exactly as the
/// certifier computes it (same-layer parents gate on end + transport,
/// cross-layer parents on the transport alone).
Minutes dependency_bound(const SynthesisResult& result, const model::Assay& assay,
                         const TransportPlan& transport,
                         const std::map<OperationId, Flat>& flat, Flat where) {
  const ScheduledOperation& item = at(result, where);
  Minutes bound{0};
  for (const OperationId parent : assay.operation(item.op).parents()) {
    const Flat p = flat.at(parent);
    const ScheduledOperation& pi = at(result, p);
    const Minutes t = pi.device == item.device
                          ? Minutes{0}
                          : transport.edge_time(parent, item.op);
    bound = std::max(bound, p.layer == where.layer ? pi.end() + t : t);
  }
  return bound;
}

/// Device-occupation end of `item`, exactly as the certifier computes it.
Minutes occupation_end(const SynthesisResult& result, const model::Assay& assay,
                       const TransportPlan& transport,
                       const std::map<OperationId, Flat>& flat, Flat where) {
  const ScheduledOperation& item = at(result, where);
  Minutes end = item.end();
  for (const OperationId child : assay.children(item.op)) {
    const Flat c = flat.at(child);
    if (c.layer == where.layer && at(result, c).device != item.device) {
      end = std::max(end, item.end() + transport.edge_time(item.op, child));
    }
  }
  return end;
}

/// True when rebinding `item` to a brand-new device (one nothing else uses)
/// perturbs no check other than the binding ones: no same-layer neighbour
/// shares its device, and every cross-layer neighbour that does already
/// starts late enough to absorb the transport the move introduces.
bool relocatable(const SynthesisResult& result, const model::Assay& assay,
                 const TransportPlan& transport,
                 const std::map<OperationId, Flat>& flat, Flat where) {
  const ScheduledOperation& item = at(result, where);
  for (const OperationId parent : assay.operation(item.op).parents()) {
    const Flat p = flat.at(parent);
    const ScheduledOperation& pi = at(result, p);
    if (pi.device != item.device) {
      continue;
    }
    if (p.layer == where.layer) {
      return false;  // parent's occupation would stretch by the new transport
    }
    if (item.start < transport.edge_time(parent, item.op)) {
      return false;
    }
  }
  for (const OperationId child : assay.children(item.op)) {
    const Flat c = flat.at(child);
    const ScheduledOperation& ci = at(result, c);
    if (ci.device != item.device) {
      continue;
    }
    const Minutes t = transport.edge_time(item.op, child);
    if (c.layer == where.layer ? ci.start < item.end() + t : ci.start < t) {
      return false;
    }
  }
  return true;
}

TEST(CertifyMutations, SynthesizedSchedulesCertifyClean) {
  const Bench& kinase = kinase_bench();
  EXPECT_TRUE(certify_result(kinase.report.result, kinase.assay,
                             kinase.report.transport)
                  .empty());
  const Bench& gene = gene_bench();
  EXPECT_TRUE(
      certify_result(gene.report.result, gene.assay, gene.report.transport)
          .empty());
}

TEST(CertifyMutations, DuplicatedEntryFiresExactlyE202) {
  const Bench& bench = gene_bench();
  SynthesisResult mutated = bench.report.result;
  mutated.layers.back().items.push_back(mutated.layers.front().items.front());
  const auto diagnostics =
      certify_result(mutated, bench.assay, bench.report.transport);
  EXPECT_TRUE(only_code(diagnostics, diag::codes::kDuplicateSchedule))
      << render(diagnostics);
}

TEST(CertifyMutations, DroppedEntryFiresExactlyE203) {
  const Bench& bench = gene_bench();
  SynthesisResult mutated = bench.report.result;
  mutated.layers.back().items.pop_back();
  const auto diagnostics =
      certify_result(mutated, bench.assay, bench.report.transport);
  EXPECT_TRUE(only_code(diagnostics, diag::codes::kMissingOperation))
      << render(diagnostics);
}

TEST(CertifyMutations, ForeignOperationIdFiresE201) {
  const Bench& bench = kinase_bench();
  SynthesisResult mutated = bench.report.result;
  mutated.layers.front().items.front().op =
      OperationId{bench.assay.operation_count()};
  const auto diagnostics =
      certify_result(mutated, bench.assay, bench.report.transport);
  // The overwritten operation is also missing now; nothing else may fire.
  bool unknown = false;
  for (const diag::Diagnostic& d : diagnostics) {
    unknown |= d.code == diag::codes::kUnknownOperation;
    EXPECT_TRUE(d.code == diag::codes::kUnknownOperation ||
                d.code == diag::codes::kMissingOperation)
        << render(diagnostics);
  }
  EXPECT_TRUE(unknown) << render(diagnostics);
}

TEST(CertifyMutations, NegativeStartFiresExactlyE204) {
  const Bench& bench = kinase_bench();
  SynthesisResult mutated = bench.report.result;
  // A parentless operation that already starts first on its device: pulling
  // it to -1 shifts its window left without reaching anything else.
  bool found = false;
  for (auto& layer : mutated.layers) {
    for (ScheduledOperation& item : layer.items) {
      if (!bench.assay.operation(item.op).parents().empty()) {
        continue;
      }
      const bool first_on_device = std::all_of(
          layer.items.begin(), layer.items.end(),
          [&item](const ScheduledOperation& other) {
            return other.device != item.device || other.start >= item.start;
          });
      if (first_on_device) {
        item.start = Minutes{-1};
        found = true;
        break;
      }
    }
    if (found) {
      break;
    }
  }
  ASSERT_TRUE(found);
  const auto diagnostics =
      certify_result(mutated, bench.assay, bench.report.transport);
  EXPECT_TRUE(only_code(diagnostics, diag::codes::kNegativeStart))
      << render(diagnostics);
}

TEST(CertifyMutations, ShrunkDurationFiresExactlyE205) {
  const Bench& bench = kinase_bench();
  SynthesisResult mutated = bench.report.result;
  // Shrinking a duration only contracts the occupation window; no ordering
  // or overlap check can newly fail.
  bool found = false;
  for (auto& layer : mutated.layers) {
    for (ScheduledOperation& item : layer.items) {
      if (!bench.assay.operation(item.op).indeterminate() &&
          item.duration >= Minutes{2}) {
        item.duration = item.duration - Minutes{1};
        found = true;
        break;
      }
    }
    if (found) {
      break;
    }
  }
  ASSERT_TRUE(found);
  const auto diagnostics =
      certify_result(mutated, bench.assay, bench.report.transport);
  EXPECT_TRUE(only_code(diagnostics, diag::codes::kWrongDuration))
      << render(diagnostics);
}

TEST(CertifyMutations, OutOfInventoryDeviceFiresExactlyE206) {
  for (const Bench* bench : {&gene_bench(), &kinase_bench()}) {
    SynthesisResult mutated = bench->report.result;
    const auto flat = flatten(mutated);
    for (const auto& [op, where] : flat) {
      if (!relocatable(mutated, bench->assay, bench->report.transport, flat,
                       where)) {
        continue;
      }
      at(mutated, where).device = DeviceId{mutated.devices.size()};
      const auto diagnostics =
          certify_result(mutated, bench->assay, bench->report.transport);
      EXPECT_TRUE(only_code(diagnostics, diag::codes::kUnknownDevice))
          << render(diagnostics);
      return;
    }
  }
  FAIL() << "no relocatable operation in either benchmark schedule";
}

TEST(CertifyMutations, RebindingToIncompatibleDeviceFiresExactlyE207) {
  for (const Bench* bench : {&gene_bench(), &kinase_bench()}) {
    if (bench->report.result.devices.full()) {
      continue;  // no room for the decoy device
    }
    SynthesisResult mutated = bench->report.result;
    const auto flat = flatten(mutated);
    const model::DeviceConfig decoy{ContainerKind::Chamber, Capacity::Tiny, {}};
    for (const auto& [op, where] : flat) {
      if (model::is_compatible(bench->assay.operation(op), decoy)) {
        continue;
      }
      if (!relocatable(mutated, bench->assay, bench->report.transport, flat,
                       where)) {
        continue;
      }
      const DeviceId fresh = mutated.devices.instantiate(decoy, LayerId{0});
      at(mutated, where).device = fresh;
      const auto diagnostics =
          certify_result(mutated, bench->assay, bench->report.transport);
      EXPECT_TRUE(only_code(diagnostics, diag::codes::kIncompatibleBinding))
          << render(diagnostics);
      return;
    }
  }
  FAIL() << "no relocatable incompatible operation in either benchmark";
}

TEST(CertifyMutations, SwappedLayersFireExactlyE208) {
  const Bench& bench = gene_bench();
  SynthesisResult mutated = bench.report.result;
  ASSERT_GE(mutated.layers.size(), 2u);
  std::swap(mutated.layers[0], mutated.layers[1]);
  const auto diagnostics =
      certify_result(mutated, bench.assay, bench.report.transport);
  // One violation per dependency edge crossing the swapped boundary; the
  // certifier skips the start checks of an edge it reports out of order, so
  // nothing else may fire.
  EXPECT_TRUE(only_code(diagnostics, diag::codes::kParentLayerOrder))
      << render(diagnostics);
}

TEST(CertifyMutations, OverlapOnSharedDeviceFiresExactlyE211) {
  const Bench& bench = gene_bench();
  SynthesisResult mutated = bench.report.result;
  const auto flat = flatten(mutated);
  // Pull an operation back onto the busy window of an earlier same-device
  // neighbour, but never before what its own parents allow — the move can
  // only create overlaps, all of them E211.
  bool found = false;
  for (const auto& [op, where] : flat) {
    if (found) {
      break;
    }
    const auto& items = mutated.layers[static_cast<std::size_t>(where.layer)].items;
    for (const ScheduledOperation& earlier : items) {
      const ScheduledOperation& item = at(mutated, where);
      if (earlier.device != item.device || earlier.op == item.op ||
          earlier.start >= item.start) {
        continue;
      }
      const Flat ew = flat.at(earlier.op);
      const Minutes bound = dependency_bound(mutated, bench.assay,
                                             bench.report.transport, flat, where);
      const Minutes target = std::max(bound, earlier.start);
      const Minutes busy_until = occupation_end(mutated, bench.assay,
                                                bench.report.transport, flat, ew);
      if (target < item.start && target < busy_until) {
        at(mutated, where).start = target;
        found = true;
        break;
      }
    }
  }
  ASSERT_TRUE(found) << "no same-device pair admits a parent-safe overlap";
  const auto diagnostics =
      certify_result(mutated, bench.assay, bench.report.transport);
  EXPECT_TRUE(only_code(diagnostics, diag::codes::kDeviceOverlap))
      << render(diagnostics);
}

TEST(CertifyMutations, StartAfterIndeterminateEndFiresExactlyE212) {
  const Bench& bench = gene_bench();
  SynthesisResult mutated = bench.report.result;
  // Layer 0 of the gene-expression assay is the capture cluster: all
  // indeterminate, pairwise on distinct devices, children all downstream.
  auto& captures = mutated.layers.front().items;
  ASSERT_GE(captures.size(), 2u);
  for (const ScheduledOperation& item : captures) {
    ASSERT_TRUE(bench.assay.operation(item.op).indeterminate());
  }
  Minutes latest{0};
  for (std::size_t i = 1; i < captures.size(); ++i) {
    latest = std::max(latest, captures[i].end());
  }
  // Push the first capture past every sibling's minimum completion: the
  // siblings may already have finished, so the schedule is cyberphysically
  // unsound (constraint 14) and nothing else about it changed.
  captures.front().start = latest + Minutes{1};
  const auto diagnostics =
      certify_result(mutated, bench.assay, bench.report.transport);
  EXPECT_TRUE(only_code(diagnostics, diag::codes::kStartAfterIndeterminate))
      << render(diagnostics);
}

}  // namespace
}  // namespace cohls::schedule
