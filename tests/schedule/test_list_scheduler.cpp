#include "schedule/list_scheduler.hpp"

#include <gtest/gtest.h>

#include "assays/random_assay.hpp"
#include "schedule/validate.hpp"

namespace cohls::schedule {
namespace {

using model::BuiltinAccessory;
using model::Capacity;
using model::ContainerKind;

OperationId add_op(model::Assay& assay, const std::string& name, Minutes duration,
                   std::vector<OperationId> parents = {},
                   model::AccessorySet accessories = {}, bool indeterminate = false) {
  model::OperationSpec spec;
  spec.name = name;
  spec.duration = duration;
  spec.parents = std::move(parents);
  spec.accessories = accessories;
  spec.indeterminate = indeterminate;
  return assay.add_operation(spec);
}

SynthesisResult wrap(const model::Assay& assay, LayerResult layer,
                     model::DeviceInventory inventory) {
  SynthesisResult result;
  result.layers.push_back(std::move(layer.schedule));
  result.devices = std::move(inventory);
  (void)assay;
  return result;
}

TEST(ListScheduler, SingleOpGetsADevice) {
  model::Assay assay{"t"};
  const auto a = add_op(assay, "a", 10_min);
  model::DeviceInventory inventory(3);
  LayerRequest request;
  request.layer = LayerId{0};
  request.ops = {a};
  const TransportPlan transport{2_min};
  const model::CostModel costs;
  const auto result = schedule_layer(request, assay, transport, costs, inventory);
  ASSERT_EQ(result.schedule.items.size(), 1u);
  EXPECT_EQ(result.schedule.items[0].start, 0_min);
  EXPECT_EQ(inventory.size(), 1);
  EXPECT_TRUE(validate_result(wrap(assay, result, inventory), assay, transport).empty());
}

TEST(ListScheduler, ChainPrefersCoLocation) {
  // With the default weights, a dependent chain should stay on one device
  // (no transport, no path) rather than spread across devices. In the first
  // pass each parent still reserves its worst-case outgoing transport
  // (3m each here); once the estimator refines co-located edges to zero the
  // reserve vanishes.
  model::Assay assay{"t"};
  const auto a = add_op(assay, "a", 10_min);
  const auto b = add_op(assay, "b", 10_min, {a});
  const auto c = add_op(assay, "c", 10_min, {b});
  model::DeviceInventory inventory(5);
  LayerRequest request;
  request.layer = LayerId{0};
  request.ops = {a, b, c};
  const TransportPlan first_pass{3_min};
  const model::CostModel costs;
  const auto result = schedule_layer(request, assay, first_pass, costs, inventory);
  EXPECT_EQ(inventory.size(), 1);
  EXPECT_EQ(result.schedule.makespan(), 36_min);  // 30m + two 3m reserves
  EXPECT_TRUE(
      validate_result(wrap(assay, result, inventory), assay, first_pass).empty());

  // Refined plan: co-located edges cost zero, the reserves disappear.
  TransportPlan refined{3_min};
  refined.set_edge_time(a, b, 0_min);
  refined.set_edge_time(b, c, 0_min);
  model::DeviceInventory inventory2(5);
  const auto result2 = schedule_layer(request, assay, refined, costs, inventory2);
  EXPECT_EQ(inventory2.size(), 1);
  EXPECT_EQ(result2.schedule.makespan(), 30_min);
}

TEST(ListScheduler, IndependentOpsRunInParallelWhenTimeMatters) {
  model::Assay assay{"t"};
  const auto a = add_op(assay, "a", 30_min);
  const auto b = add_op(assay, "b", 30_min);
  model::DeviceInventory inventory(4);
  LayerRequest request;
  request.layer = LayerId{0};
  request.ops = {a, b};
  const TransportPlan transport{1_min};
  model::CostModel costs;
  costs.set_weights(10.0, 0.1, 0.1, 0.1);  // time-dominant
  const auto result = schedule_layer(request, assay, transport, costs, inventory);
  EXPECT_EQ(inventory.size(), 2);
  EXPECT_EQ(result.schedule.makespan(), 30_min);
}

TEST(ListScheduler, ReusesInheritedDevices) {
  model::Assay assay{"t"};
  const auto a = add_op(assay, "a", 10_min, {}, {BuiltinAccessory::kPump});
  model::DeviceInventory inventory(3);
  const auto inherited = inventory.instantiate(
      {ContainerKind::Ring, Capacity::Small, {BuiltinAccessory::kPump}}, LayerId{0});
  LayerRequest request;
  request.layer = LayerId{1};
  request.ops = {a};
  request.usable_devices = {inherited};
  const TransportPlan transport{2_min};
  const model::CostModel costs;
  const auto result = schedule_layer(request, assay, transport, costs, inventory);
  EXPECT_EQ(inventory.size(), 1);  // no new device
  EXPECT_EQ(result.schedule.items[0].device, inherited);
}

TEST(ListScheduler, IndeterminateOpsGetDistinctDevicesAndEndTheLayer) {
  model::Assay assay{"t"};
  const auto det = add_op(assay, "det", 20_min);
  const auto i1 = add_op(assay, "i1", 5_min, {}, {}, true);
  const auto i2 = add_op(assay, "i2", 5_min, {}, {}, true);
  model::DeviceInventory inventory(5);
  LayerRequest request;
  request.layer = LayerId{0};
  request.ops = {det, i1, i2};
  const TransportPlan transport{1_min};
  const model::CostModel costs;
  const auto result = schedule_layer(request, assay, transport, costs, inventory);
  const auto* item1 = result.schedule.find(i1);
  const auto* item2 = result.schedule.find(i2);
  ASSERT_NE(item1, nullptr);
  ASSERT_NE(item2, nullptr);
  EXPECT_NE(item1->device, item2->device);
  EXPECT_TRUE(validate_result(wrap(assay, result, inventory), assay, transport).empty());
}

TEST(ListScheduler, ThrowsWhenInventoryCannotFit) {
  model::Assay assay{"t"};
  // Two ops with disjoint hard requirements but room for only one device.
  const auto a = add_op(assay, "a", 10_min, {}, {BuiltinAccessory::kHeatingPad});
  model::OperationSpec spec;
  spec.name = "b";
  spec.duration = 10_min;
  spec.container = ContainerKind::Ring;
  spec.capacity = Capacity::Large;
  const auto b = assay.add_operation(spec);
  model::DeviceInventory inventory(1);
  LayerRequest request;
  request.layer = LayerId{0};
  request.ops = {a, b};
  const TransportPlan transport{1_min};
  const model::CostModel costs;
  EXPECT_THROW(
      (void)schedule_layer(request, assay, transport, costs, inventory),
      InfeasibleError);
}

TEST(ListScheduler, CapabilityReservationKeepsSlotsForPickyOps) {
  // Nine easy ops plus one op that needs a large ring; with 2 slots the
  // scheduler must not burn both on chambers for the easy ops.
  model::Assay assay{"t"};
  std::vector<OperationId> ops;
  for (int i = 0; i < 9; ++i) {
    ops.push_back(add_op(assay, "easy" + std::to_string(i), 10_min));
  }
  model::OperationSpec picky;
  picky.name = "picky";
  picky.duration = 10_min;
  picky.container = ContainerKind::Ring;
  picky.capacity = Capacity::Large;
  ops.push_back(assay.add_operation(picky));
  model::DeviceInventory inventory(2);
  LayerRequest request;
  request.layer = LayerId{0};
  request.ops = ops;
  const TransportPlan transport{1_min};
  model::CostModel costs;
  costs.set_weights(10.0, 0.1, 0.1, 0.1);  // tempt it to parallelize
  const auto result = schedule_layer(request, assay, transport, costs, inventory);
  EXPECT_LE(inventory.size(), 2);
  EXPECT_TRUE(validate_result(wrap(assay, result, inventory), assay, transport).empty());
}

TEST(ListScheduler, ConsumedHintsAreReported) {
  model::Assay assay{"t"};
  const auto a = add_op(assay, "a", 10_min, {}, {BuiltinAccessory::kSieveValve});
  model::DeviceInventory inventory(3);
  LayerRequest request;
  request.layer = LayerId{0};
  request.ops = {a};
  request.hints = {DeviceHint{
      {ContainerKind::Ring, Capacity::Small,
       {BuiltinAccessory::kSieveValve, BuiltinAccessory::kPump}},
      /*key=*/7}};
  const TransportPlan transport{1_min};
  const model::CostModel costs;
  const auto result = schedule_layer(request, assay, transport, costs, inventory);
  // The hinted ring is free (its cost is owned elsewhere), so it wins over
  // integrating a new minimal chamber.
  ASSERT_EQ(result.consumed_hints.size(), 1u);
  EXPECT_EQ(result.consumed_hints[0], 7);
  EXPECT_EQ(inventory.size(), 1);
  EXPECT_EQ(inventory.device(DeviceId{0}).config.container, ContainerKind::Ring);
}

TEST(ListScheduler, ExactMatchPolicyMimicsConventionalBinding) {
  model::Assay assay{"t"};
  const auto a = add_op(assay, "a", 10_min, {}, {BuiltinAccessory::kSieveValve});
  const auto b = add_op(assay, "b", 10_min, {a}, {});  // no requirements
  model::DeviceInventory inventory(4);
  LayerRequest request;
  request.layer = LayerId{0};
  request.ops = {a, b};
  // Exact-match: b's class ({} accessories) differs from a's, so they can
  // never share a device.
  request.binds = [](const model::Operation& op, const model::DeviceConfig& config) {
    return op.accessories() == config.accessories;
  };
  request.new_config = [](const model::Operation& op) {
    return model::DeviceConfig{ContainerKind::Chamber, Capacity::Tiny, op.accessories()};
  };
  const TransportPlan transport{1_min};
  const model::CostModel costs;
  const auto result = schedule_layer(request, assay, transport, costs, inventory);
  EXPECT_EQ(inventory.size(), 2);
  const auto* item_a = result.schedule.find(a);
  const auto* item_b = result.schedule.find(b);
  EXPECT_NE(item_a->device, item_b->device);
}

TEST(ListScheduler, CrossLayerParentChargesIncomingTransport) {
  model::Assay assay{"t"};
  const auto parent = add_op(assay, "p", 10_min);
  const auto child = add_op(assay, "c", 10_min, {parent});
  model::DeviceInventory inventory(3);
  const auto d_prev = inventory.instantiate({ContainerKind::Chamber, Capacity::Tiny, {}},
                                            LayerId{0});
  LayerRequest request;
  request.layer = LayerId{1};
  request.ops = {child};
  request.prior_binding = {{parent, d_prev}};
  request.usable_devices = {d_prev};
  TransportPlan transport{4_min};
  const model::CostModel costs;
  const auto result = schedule_layer(request, assay, transport, costs, inventory);
  const auto& item = result.schedule.items[0];
  if (item.device == d_prev) {
    EXPECT_EQ(item.start, 0_min);  // same device: reagent is already there
  } else {
    EXPECT_GE(item.start, 4_min);  // moved: wait for the transfer
  }
}

TEST(ListScheduler, SlotQuantizationRoundsStartsUp) {
  model::Assay assay{"t"};
  const auto a = add_op(assay, "a", 7_min);   // ends at 7
  const auto b = add_op(assay, "b", 5_min, {a});
  model::DeviceInventory inventory(2);
  LayerRequest request;
  request.layer = LayerId{0};
  request.ops = {a, b};
  request.slot_size = 10_min;
  TransportPlan transport{0_min};
  const model::CostModel costs;
  const auto result = schedule_layer(request, assay, transport, costs, inventory);
  for (const auto& item : result.schedule.items) {
    EXPECT_EQ(item.start.count() % 10, 0)
        << assay.operation(item.op).name() << " not on a slot boundary";
  }
  // b is ready at 7 but must wait for the 10m slot.
  EXPECT_EQ(result.schedule.find(b)->start, 10_min);
  EXPECT_TRUE(validate_result(wrap(assay, result, inventory), assay, transport).empty());
}

TEST(ListScheduler, ZeroSlotSizeKeepsContinuousStarts) {
  model::Assay assay{"t"};
  const auto a = add_op(assay, "a", 7_min);
  const auto b = add_op(assay, "b", 5_min, {a});
  model::DeviceInventory inventory(2);
  LayerRequest request;
  request.layer = LayerId{0};
  request.ops = {a, b};
  TransportPlan transport{0_min};
  const model::CostModel costs;
  const auto result = schedule_layer(request, assay, transport, costs, inventory);
  EXPECT_EQ(result.schedule.find(b)->start, 7_min);
}

// Property: on random assays treated as a single determinate layer, the
// scheduler's output always validates.
class ListSchedulerProperty : public ::testing::TestWithParam<int> {};

TEST_P(ListSchedulerProperty, OutputAlwaysValidates) {
  assays::RandomAssayOptions gen;
  gen.operations = 14;
  gen.indeterminate_probability = 0.0;
  const model::Assay assay =
      assays::random_assay(static_cast<std::uint64_t>(GetParam()) * 33 + 5, gen);
  model::DeviceInventory inventory(8);
  LayerRequest request;
  request.layer = LayerId{0};
  for (const auto& op : assay.operations()) {
    request.ops.push_back(op.id());
  }
  const TransportPlan transport{2_min};
  const model::CostModel costs;
  const auto result = schedule_layer(request, assay, transport, costs, inventory);
  SynthesisResult wrapped;
  wrapped.layers.push_back(result.schedule);
  wrapped.devices = inventory;
  const auto violations = validate_result(wrapped, assay, transport);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ListSchedulerProperty, ::testing::Range(0, 25));

}  // namespace
}  // namespace cohls::schedule
