#include "schedule/transport_plan.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace cohls::schedule {
namespace {

TEST(TransportProgression, TermsAreArithmetic) {
  const TransportProgression p{1_min, 4_min, 4};
  EXPECT_EQ(p.term(0), 1_min);
  EXPECT_EQ(p.term(1), 2_min);
  EXPECT_EQ(p.term(2), 3_min);
  EXPECT_EQ(p.term(3), 4_min);
}

TEST(TransportProgression, BeyondLastTermClampsToMaximum) {
  const TransportProgression p{1_min, 4_min, 4};
  EXPECT_EQ(p.term(9), 4_min);
}

TEST(TransportProgression, SingleTermProgression) {
  const TransportProgression p{3_min, 3_min, 1};
  EXPECT_EQ(p.term(0), 3_min);
  EXPECT_EQ(p.term(5), 3_min);
}

TEST(TransportProgression, NonDivisibleSpanRoundsDown) {
  const TransportProgression p{1_min, 4_min, 3};  // terms 1, 2.5->2, 4
  EXPECT_EQ(p.term(0), 1_min);
  EXPECT_EQ(p.term(1), 2_min);
  EXPECT_EQ(p.term(2), 4_min);
}

TEST(TransportProgression, RejectsBadShapes) {
  const TransportProgression inverted{4_min, 1_min, 3};
  EXPECT_THROW((void)inverted.term(0), PreconditionError);
  const TransportProgression no_terms{1_min, 2_min, 0};
  EXPECT_THROW((void)no_terms.term(0), PreconditionError);
  const TransportProgression fine{1_min, 2_min, 2};
  EXPECT_THROW((void)fine.term(-1), PreconditionError);
}

TEST(TransportPlan, UniformFallback) {
  const TransportPlan plan{2_min};
  EXPECT_EQ(plan.edge_time(OperationId{0}, OperationId{1}), 2_min);
  EXPECT_EQ(plan.uniform_time(), 2_min);
}

TEST(TransportPlan, PerEdgeOverride) {
  TransportPlan plan{2_min};
  plan.set_edge_time(OperationId{0}, OperationId{1}, 5_min);
  EXPECT_EQ(plan.edge_time(OperationId{0}, OperationId{1}), 5_min);
  // Direction matters: the reverse edge keeps the fallback.
  EXPECT_EQ(plan.edge_time(OperationId{1}, OperationId{0}), 2_min);
}

TEST(TransportPlan, ZeroOverrideRepresentsCoLocation) {
  TransportPlan plan{2_min};
  plan.set_edge_time(OperationId{0}, OperationId{1}, 0_min);
  EXPECT_EQ(plan.edge_time(OperationId{0}, OperationId{1}), 0_min);
}

TEST(TransportPlan, RejectsNegativeTimes) {
  TransportPlan plan{1_min};
  EXPECT_THROW(plan.set_edge_time(OperationId{0}, OperationId{1}, Minutes{-1}),
               PreconditionError);
  EXPECT_THROW(TransportPlan{Minutes{-2}}, PreconditionError);
}

}  // namespace
}  // namespace cohls::schedule
