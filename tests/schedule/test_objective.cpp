#include "schedule/objective.hpp"

#include <gtest/gtest.h>

namespace cohls::schedule {
namespace {

struct Fixture {
  model::Assay assay{"t"};
  SynthesisResult result;

  Fixture() {
    model::OperationSpec a;
    a.name = "a";
    a.duration = 10_min;
    const auto a_id = assay.add_operation(a);
    model::OperationSpec b;
    b.name = "b";
    b.duration = 20_min;
    b.parents = {a_id};
    (void)assay.add_operation(b);

    result.devices = model::DeviceInventory(4);
    const model::DeviceConfig chamber{model::ContainerKind::Chamber,
                                      model::Capacity::Tiny, {}};
    const auto d0 = result.devices.instantiate(chamber, LayerId{0});
    const auto d1 = result.devices.instantiate(chamber, LayerId{0});
    result.layers.push_back({LayerId{0},
                             {{OperationId{0}, d0, 0_min, 10_min, 1_min},
                              {OperationId{1}, d1, 11_min, 20_min, 0_min}}});
  }
};

TEST(Objective, BreaksDownComponents) {
  const Fixture f;
  model::CostModel costs;
  costs.set_weights(1.0, 2.0, 3.0, 5.0);
  const ObjectiveBreakdown b = evaluate_objective(f.result, f.assay, costs);
  EXPECT_DOUBLE_EQ(b.time_minutes, 31.0);
  const double chamber_area = costs.area(model::ContainerKind::Chamber, model::Capacity::Tiny);
  EXPECT_DOUBLE_EQ(b.area, 2 * chamber_area);
  EXPECT_DOUBLE_EQ(b.path_count, 1.0);
  EXPECT_DOUBLE_EQ(b.weighted_total,
                   1.0 * b.time_minutes + 2.0 * b.area + 3.0 * b.processing + 5.0 * 1.0);
}

TEST(Objective, UnusedInventorySlotsCostNothing) {
  Fixture f;
  // An extra instantiated-but-unused device must not count.
  (void)f.result.devices.instantiate(
      {model::ContainerKind::Ring, model::Capacity::Large, {}}, LayerId{0});
  const model::CostModel costs;
  const ObjectiveBreakdown b = evaluate_objective(f.result, f.assay, costs);
  const double chamber_area = costs.area(model::ContainerKind::Chamber, model::Capacity::Tiny);
  EXPECT_DOUBLE_EQ(b.area, 2 * chamber_area);
}

TEST(Objective, SharedDeviceCountedOnce) {
  model::Assay assay{"t"};
  model::OperationSpec a;
  a.name = "a";
  a.duration = 5_min;
  (void)assay.add_operation(a);
  a.name = "b";
  (void)assay.add_operation(a);
  SynthesisResult result;
  result.devices = model::DeviceInventory(2);
  const auto d = result.devices.instantiate(
      {model::ContainerKind::Chamber, model::Capacity::Tiny, {}}, LayerId{0});
  result.layers.push_back({LayerId{0},
                           {{OperationId{0}, d, 0_min, 5_min, 0_min},
                            {OperationId{1}, d, 5_min, 5_min, 0_min}}});
  const model::CostModel costs;
  const ObjectiveBreakdown b = evaluate_objective(result, assay, costs);
  EXPECT_DOUBLE_EQ(
      b.area, costs.area(model::ContainerKind::Chamber, model::Capacity::Tiny));
  EXPECT_DOUBLE_EQ(b.path_count, 0.0);
}

}  // namespace
}  // namespace cohls::schedule
