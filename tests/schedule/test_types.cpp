#include "schedule/types.hpp"

#include <gtest/gtest.h>

namespace cohls::schedule {
namespace {

model::Assay two_layer_assay() {
  model::Assay assay("t");
  model::OperationSpec a;
  a.name = "a";
  a.duration = 10_min;
  a.indeterminate = true;
  const auto a_id = assay.add_operation(a);
  model::OperationSpec b;
  b.name = "b";
  b.duration = 20_min;
  b.parents = {a_id};
  (void)assay.add_operation(b);
  return assay;
}

TEST(ScheduledOperation, EndAndRelease) {
  const ScheduledOperation item{OperationId{0}, DeviceId{0}, 5_min, 10_min, 2_min};
  EXPECT_EQ(item.end(), 15_min);
  EXPECT_EQ(item.release(), 17_min);
}

TEST(LayerSchedule, MakespanIsLatestCompletion) {
  LayerSchedule layer;
  layer.items = {{OperationId{0}, DeviceId{0}, 0_min, 10_min, 0_min},
                 {OperationId{1}, DeviceId{1}, 5_min, 3_min, 0_min}};
  EXPECT_EQ(layer.makespan(), 10_min);
}

TEST(LayerSchedule, EmptyLayerMakespanZero) {
  EXPECT_EQ(LayerSchedule{}.makespan(), 0_min);
}

TEST(LayerSchedule, FindLocatesItems) {
  LayerSchedule layer;
  layer.items = {{OperationId{3}, DeviceId{0}, 0_min, 10_min, 0_min}};
  EXPECT_NE(layer.find(OperationId{3}), nullptr);
  EXPECT_EQ(layer.find(OperationId{4}), nullptr);
}

TEST(MakePath, Unordered) {
  EXPECT_EQ(make_path(DeviceId{3}, DeviceId{1}), make_path(DeviceId{1}, DeviceId{3}));
}

TEST(SynthesisResult, BindingUnionsLayers) {
  const model::Assay assay = two_layer_assay();
  SynthesisResult result;
  result.devices = model::DeviceInventory(3);
  const model::DeviceConfig ring{model::ContainerKind::Ring, model::Capacity::Small, {}};
  const auto d0 = result.devices.instantiate(ring, LayerId{0});
  const auto d1 = result.devices.instantiate(ring, LayerId{1});
  result.layers.push_back(
      {LayerId{0}, {{OperationId{0}, d0, 0_min, 10_min, 0_min}}});
  result.layers.push_back(
      {LayerId{1}, {{OperationId{1}, d1, 0_min, 20_min, 0_min}}});
  const auto binding = result.binding();
  EXPECT_EQ(binding.at(OperationId{0}), d0);
  EXPECT_EQ(binding.at(OperationId{1}), d1);
  // Cross-layer parent->child on different devices = one path.
  EXPECT_EQ(result.path_count(assay), 1);
  EXPECT_EQ(result.used_device_count(), 2);
}

TEST(SynthesisResult, SameDeviceEdgesCreateNoPath) {
  const model::Assay assay = two_layer_assay();
  SynthesisResult result;
  result.devices = model::DeviceInventory(2);
  const model::DeviceConfig ring{model::ContainerKind::Ring, model::Capacity::Small, {}};
  const auto d0 = result.devices.instantiate(ring, LayerId{0});
  result.layers.push_back({LayerId{0}, {{OperationId{0}, d0, 0_min, 10_min, 0_min}}});
  result.layers.push_back({LayerId{1}, {{OperationId{1}, d0, 0_min, 20_min, 0_min}}});
  EXPECT_EQ(result.path_count(assay), 0);
}

TEST(SynthesisResult, TotalTimeAddsSymbolPerIndeterminateLayer) {
  const model::Assay assay = two_layer_assay();
  SynthesisResult result;
  result.devices = model::DeviceInventory(2);
  const model::DeviceConfig ring{model::ContainerKind::Ring, model::Capacity::Small, {}};
  const auto d0 = result.devices.instantiate(ring, LayerId{0});
  result.layers.push_back({LayerId{0}, {{OperationId{0}, d0, 0_min, 10_min, 0_min}}});
  result.layers.push_back({LayerId{1}, {{OperationId{1}, d0, 0_min, 20_min, 0_min}}});
  const SymbolicDuration total = result.total_time(assay);
  EXPECT_EQ(total.fixed(), 30_min);
  EXPECT_EQ(total.to_string(), "30m+I1");  // only layer 1 holds indeterminate ops
}

}  // namespace
}  // namespace cohls::schedule
