// Deterministic pseudo-random numbers for workload generation and the
// randomized tie-breaks in the layering algorithm ("we first randomly choose
// an indeterminate operation..."). A fixed, seedable generator keeps tests
// and benchmark tables reproducible across platforms, unlike
// std::default_random_engine whose behaviour is implementation-defined.
#pragma once

#include <cstdint>

#include "util/check.hpp"

namespace cohls {

/// xoshiro256** with a splitmix64 seeder — small, fast, and identical on
/// every platform. The draw methods are defined inline: per-attempt
/// bernoulli draws dominate the fleet-replay hot loop, and a cross-TU call
/// per draw is measurable there.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    COHLS_EXPECT(lo <= hi, "uniform_int requires lo <= hi");
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) {  // full 64-bit range
      return static_cast<std::int64_t>(next_u64());
    }
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
    std::uint64_t draw = next_u64();
    while (draw >= limit) {
      draw = next_u64();
    }
    return lo + static_cast<std::int64_t>(draw % range);
  }

  /// Uniform double in [0, 1).
  double uniform_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability `p` in [0, 1].
  bool bernoulli(double p) {
    COHLS_EXPECT(p >= 0.0 && p <= 1.0, "bernoulli probability must be in [0, 1]");
    return uniform_double() < p;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

/// Derives an independent stream seed from a master seed and two counters
/// (e.g. a stream tag and a run index) via splitmix64 finalization rounds.
/// Counter-based derivation makes parallel Monte-Carlo sweeps reproducible
/// and order-independent: any subset of (a, b) pairs can be expanded in any
/// order — on any worker — and yields the same per-stream sequences.
[[nodiscard]] std::uint64_t derive_stream_seed(std::uint64_t master, std::uint64_t a,
                                               std::uint64_t b);

}  // namespace cohls
