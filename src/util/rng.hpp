// Deterministic pseudo-random numbers for workload generation and the
// randomized tie-breaks in the layering algorithm ("we first randomly choose
// an indeterminate operation..."). A fixed, seedable generator keeps tests
// and benchmark tables reproducible across platforms, unlike
// std::default_random_engine whose behaviour is implementation-defined.
#pragma once

#include <cstdint>

#include "util/check.hpp"

namespace cohls {

/// xoshiro256** with a splitmix64 seeder — small, fast, and identical on
/// every platform.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform_double();

  /// Bernoulli draw with probability `p` in [0, 1].
  bool bernoulli(double p);

 private:
  std::uint64_t state_[4];
};

}  // namespace cohls
