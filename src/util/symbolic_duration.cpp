#include "util/symbolic_duration.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace cohls {

void SymbolicDuration::add_symbol(int layer_number) {
  COHLS_EXPECT(layer_number >= 1, "layer numbers are 1-based");
  const auto pos = std::lower_bound(symbols_.begin(), symbols_.end(), layer_number);
  if (pos == symbols_.end() || *pos != layer_number) {
    symbols_.insert(pos, layer_number);
  }
}

SymbolicDuration& SymbolicDuration::operator+=(const SymbolicDuration& other) {
  fixed_ += other.fixed_;
  for (const int s : other.symbols_) {
    add_symbol(s);
  }
  return *this;
}

std::string SymbolicDuration::to_string() const {
  std::ostringstream out;
  out << fixed_;
  for (const int s : symbols_) {
    out << "+I" << s;
  }
  return out.str();
}

std::ostream& operator<<(std::ostream& out, const SymbolicDuration& d) {
  return out << d.to_string();
}

}  // namespace cohls
