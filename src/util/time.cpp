#include "util/time.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace cohls {

std::ostream& operator<<(std::ostream& out, Minutes m) {
  return out << m.count_ << 'm';
}

std::string format_wallclock(double seconds) {
  COHLS_EXPECT(seconds >= 0.0, "wall-clock duration must be non-negative");
  std::ostringstream out;
  if (seconds < 60.0) {
    out << std::fixed << std::setprecision(3) << seconds << 's';
    return out.str();
  }
  const auto whole = static_cast<std::int64_t>(seconds);
  out << whole / 60 << 'm' << whole % 60 << 's';
  return out.str();
}

}  // namespace cohls
