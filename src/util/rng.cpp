#include "util/rng.hpp"

namespace cohls {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& word : state_) {
    word = splitmix64(seed);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  COHLS_EXPECT(lo <= hi, "uniform_int requires lo <= hi");
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t draw = next_u64();
  while (draw >= limit) {
    draw = next_u64();
  }
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::uniform_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  COHLS_EXPECT(p >= 0.0 && p <= 1.0, "bernoulli probability must be in [0, 1]");
  return uniform_double() < p;
}

}  // namespace cohls
