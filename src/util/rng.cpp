#include "util/rng.hpp"

namespace cohls {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& word : state_) {
    word = splitmix64(seed);
  }
}

std::uint64_t derive_stream_seed(std::uint64_t master, std::uint64_t a, std::uint64_t b) {
  // Three chained splitmix64 finalizations: each input perturbs the counter
  // before the next round, so (master, a, b) triples that differ in any
  // component land in unrelated streams.
  std::uint64_t x = master;
  std::uint64_t mixed = splitmix64(x);
  x ^= a + 0xD1B54A32D192ED03ULL;
  mixed ^= splitmix64(x);
  x ^= b + 0x8CB92BA72F3D8DD7ULL;
  mixed ^= splitmix64(x);
  return mixed;
}

}  // namespace cohls
