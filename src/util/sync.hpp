// Capability-annotated synchronization primitives. These are thin wrappers
// over the std primitives whose only job is to carry the thread-safety
// attributes from util/thread_annotations.hpp: libstdc++'s std::mutex and
// std::lock_guard are unannotated, so locking through them is invisible to
// clang's Thread Safety Analysis and every GUARDED_BY member would warn.
// All mutex-protected state in cohls declares its mutex as util::Mutex /
// util::SharedMutex and locks through the scoped lock types below; the
// build then proves lock discipline under -Werror=thread-safety (clang) at
// zero runtime cost (the wrappers add no state beyond the std primitive).
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.hpp"

namespace cohls::util {

/// std::mutex carrying the capability attribute.
class COHLS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() COHLS_ACQUIRE() { mutex_.lock(); }
  void unlock() COHLS_RELEASE() { mutex_.unlock(); }
  bool try_lock() COHLS_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  /// The wrapped handle, for interoperating with std wait machinery
  /// (CondVar). Lock state changes through it are invisible to the
  /// analysis; only CondVar should need it.
  [[nodiscard]] std::mutex& native() { return mutex_; }

 private:
  // cohls-check: allow(S104): Mutex IS the capability; it guards callers'
  // members, not its own.
  std::mutex mutex_;
};

/// std::shared_mutex carrying the capability attribute (writer = exclusive,
/// reader = shared).
class COHLS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() COHLS_ACQUIRE() { mutex_.lock(); }
  void unlock() COHLS_RELEASE() { mutex_.unlock(); }
  bool try_lock() COHLS_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  void lock_shared() COHLS_ACQUIRE_SHARED() { mutex_.lock_shared(); }
  void unlock_shared() COHLS_RELEASE_SHARED() { mutex_.unlock_shared(); }
  bool try_lock_shared() COHLS_TRY_ACQUIRE_SHARED(true) {
    return mutex_.try_lock_shared();
  }

 private:
  // cohls-check: allow(S104): SharedMutex IS the capability; it guards
  // callers' members, not its own.
  std::shared_mutex mutex_;
};

/// RAII exclusive lock (the annotated std::lock_guard).
class COHLS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) COHLS_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() COHLS_RELEASE_GENERIC() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// RAII exclusive lock on a SharedMutex (the annotated std::unique_lock).
class COHLS_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mutex) COHLS_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~WriterLock() COHLS_RELEASE_GENERIC() { mutex_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// RAII shared lock on a SharedMutex (the annotated std::shared_lock).
class COHLS_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mutex) COHLS_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared();
  }
  ~ReaderLock() COHLS_RELEASE_GENERIC() { mutex_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Condition variable bound to util::Mutex. wait() requires the caller to
/// hold the mutex (typically via a MutexLock in the same scope); the
/// unlock/relock around the block is performed on the native handle, which
/// keeps the capability state unchanged from the analysis' point of view —
/// exactly the semantics of std::condition_variable::wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(Mutex& mutex) COHLS_REQUIRES(mutex) COHLS_NO_THREAD_SAFETY_ANALYSIS {
    // Suppression reason: the adopt/release dance below unlocks and relocks
    // the capability through the native handle; net lock state is unchanged,
    // which is what REQUIRES already promises callers.
    std::unique_lock<std::mutex> relock(mutex.native(), std::adopt_lock);
    cv_.wait(relock);
    relock.release();
  }

 private:
  std::condition_variable cv_;
};

}  // namespace cohls::util
