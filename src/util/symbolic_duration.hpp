// Hybrid schedules contain operations whose duration is known only as a
// minimum; the extra time beyond the minimum is decided at run time by the
// cyberphysical controller. Totals are therefore *symbolic*: a fixed number
// of minutes plus one unknown per layer that ends in indeterminate
// operations. The paper prints these as "277m+I1" (Table 2); this type
// reproduces that notation and supports exact comparison of the fixed part.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace cohls {

/// A duration of the form `fixed + I_{s1} + I_{s2} + ...` where each `I_k`
/// is the unknown overrun of the indeterminate operations ending layer `k`.
class SymbolicDuration {
 public:
  SymbolicDuration() = default;
  explicit SymbolicDuration(Minutes fixed) : fixed_(fixed) {}

  /// The deterministic part of the duration.
  [[nodiscard]] Minutes fixed() const { return fixed_; }

  /// 1-based indices of layers contributing an unknown overrun, sorted.
  [[nodiscard]] const std::vector<int>& symbols() const { return symbols_; }

  void add_fixed(Minutes m) { fixed_ += m; }

  /// Records that layer `layer_number` (1-based) ends with indeterminate
  /// operations and thus contributes an unknown `I_{layer_number}`.
  void add_symbol(int layer_number);

  SymbolicDuration& operator+=(const SymbolicDuration& other);

  /// "244m+I1+I2" (or just "225m" when fully determinate).
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const SymbolicDuration&, const SymbolicDuration&) = default;
  friend std::ostream& operator<<(std::ostream& out, const SymbolicDuration& d);

 private:
  Minutes fixed_{0};
  std::vector<int> symbols_;
};

}  // namespace cohls
