// Assay time is measured in whole minutes, matching the paper's reporting
// granularity ("225m"). `Minutes` is a checked arithmetic wrapper; schedule
// arithmetic never silently mixes minutes with unrelated integers.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "util/check.hpp"

namespace cohls {

/// A duration or time point on the assay clock, in minutes.
class Minutes {
 public:
  constexpr Minutes() = default;
  constexpr explicit Minutes(std::int64_t count) : count_(count) {}

  [[nodiscard]] constexpr std::int64_t count() const { return count_; }

  constexpr Minutes& operator+=(Minutes other) {
    count_ += other.count_;
    return *this;
  }
  constexpr Minutes& operator-=(Minutes other) {
    count_ -= other.count_;
    return *this;
  }

  friend constexpr Minutes operator+(Minutes a, Minutes b) { return Minutes(a.count_ + b.count_); }
  friend constexpr Minutes operator-(Minutes a, Minutes b) { return Minutes(a.count_ - b.count_); }
  friend constexpr Minutes operator*(std::int64_t k, Minutes m) { return Minutes(k * m.count_); }
  friend constexpr auto operator<=>(Minutes, Minutes) = default;

  friend std::ostream& operator<<(std::ostream& out, Minutes m);

 private:
  std::int64_t count_ = 0;
};

constexpr Minutes operator""_min(unsigned long long count) {
  return Minutes(static_cast<std::int64_t>(count));
}

/// Renders a wall-clock duration the way the paper's runtime column does:
/// "5.531s" below a minute, "5m12s" above.
[[nodiscard]] std::string format_wallclock(double seconds);

}  // namespace cohls
