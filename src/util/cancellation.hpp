// Cooperative cancellation for long-running solves. A CancellationSource
// owns a stop flag; the CancellationTokens it hands out are cheap value
// types that solver loops poll between units of work (branch-and-bound
// nodes, layer solves, re-synthesis iterations). Tokens may additionally
// carry a deadline, so per-job time budgets and explicit cancellation share
// one check. A default-constructed token is inert and never reports
// cancellation, which keeps single-shot callers zero-cost.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>

namespace cohls {

/// Thrown by CancellationToken::check when a computation was cancelled (by
/// request or because its deadline passed). Callers that launched the work
/// (the batch engine, CLI front ends) catch it to report a clean "cancelled"
/// or "timed out" outcome instead of a partial result.
class CancelledError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Polling handle observed inside solver loops. Copyable and cheap; a
/// default-constructed token never cancels.
class CancellationToken {
 public:
  CancellationToken() = default;

  /// True when a stop was requested or the deadline has passed.
  [[nodiscard]] bool cancelled() const {
    if (flag_ && flag_->load(std::memory_order_relaxed)) {
      return true;
    }
    return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
  }

  /// True when this token can ever report cancellation (i.e. it is not the
  /// inert default token). Lets hot loops skip the clock read entirely.
  [[nodiscard]] bool can_cancel() const { return flag_ != nullptr || has_deadline_; }

  /// True when an explicit stop was requested, regardless of any deadline.
  /// Lets deadline-pressure ladders tell "the budget ran out" (degrade and
  /// keep going) apart from "the user cancelled" (stop for real).
  [[nodiscard]] bool stop_requested() const {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }

  /// Throws CancelledError("<what> cancelled") when cancelled.
  void check(const std::string& what) const;

  /// A copy of this token whose deadline is additionally capped at
  /// `seconds_from_now` (<= 0 returns the token unchanged). The stop flag is
  /// shared; an existing earlier deadline wins. This is how watchdogs wrap a
  /// budgeted computation without a second flag: the wrapped work observes
  /// the earlier of the caller's deadline and the watchdog's.
  [[nodiscard]] CancellationToken with_earlier_deadline(double seconds_from_now) const {
    if (seconds_from_now <= 0.0) {
      return *this;
    }
    CancellationToken t = *this;
    const auto candidate =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(seconds_from_now));
    if (!t.has_deadline_ || candidate < t.deadline_) {
      t.deadline_ = candidate;
      t.has_deadline_ = true;
    }
    return t;
  }

  /// A copy of this token observing only the stop flag, with any deadline
  /// removed. The recovery degradation ladder uses this: once a budgeted
  /// round blows its deadline, the heuristic-only continuation still honours
  /// explicit cancellation but is no longer bound by the expired budget.
  [[nodiscard]] CancellationToken without_deadline() const {
    CancellationToken t = *this;
    t.has_deadline_ = false;
    t.deadline_ = {};
    return t;
  }

 private:
  friend class CancellationSource;

  std::shared_ptr<const std::atomic<bool>> flag_;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
};

/// Owner side: creates tokens and requests the stop.
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_stop() { flag_->store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool stop_requested() const {
    return flag_->load(std::memory_order_relaxed);
  }

  /// A token observing only explicit stop requests.
  [[nodiscard]] CancellationToken token() const {
    CancellationToken t;
    t.flag_ = flag_;
    return t;
  }

  /// A token that additionally cancels `seconds_from_now` after this call
  /// (<= 0 means no deadline).
  [[nodiscard]] CancellationToken token_with_deadline(double seconds_from_now) const {
    CancellationToken t = token();
    if (seconds_from_now > 0.0) {
      t.deadline_ = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(seconds_from_now));
      t.has_deadline_ = true;
    }
    return t;
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace cohls
