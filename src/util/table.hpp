// Fixed-width ASCII table writer used by the benchmark harnesses to print
// Table 2 / Table 3-style result rows.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace cohls {

/// Accumulates rows of strings and renders them with aligned columns.
class TextTable {
 public:
  /// Starts a table whose first row is the header.
  explicit TextTable(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Renders the table with a separator line below the header.
  void print(std::ostream& out) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cohls
