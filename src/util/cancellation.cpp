#include "util/cancellation.hpp"

namespace cohls {

void CancellationToken::check(const std::string& what) const {
  if (cancelled()) {
    throw CancelledError(what + " cancelled");
  }
}

}  // namespace cohls
