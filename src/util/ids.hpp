// Strong ID types. Operations, devices and layers are all indexed by small
// integers; wrapping them in distinct types prevents accidentally using an
// operation index where a device index is expected.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>

namespace cohls {

/// A strongly-typed non-negative index. `Tag` distinguishes unrelated id
/// spaces at compile time; ids are ordered and hashable so they can key
/// standard containers.
template <typename Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(std::int32_t value) : value_(value) {}

  [[nodiscard]] constexpr std::int32_t value() const { return value_; }
  [[nodiscard]] constexpr std::size_t index() const {
    return static_cast<std::size_t>(value_);
  }
  [[nodiscard]] constexpr bool valid() const { return value_ >= 0; }

  friend constexpr auto operator<=>(Id, Id) = default;

  friend std::ostream& operator<<(std::ostream& out, Id id) {
    return out << id.value_;
  }

 private:
  std::int32_t value_ = -1;
};

struct OperationTag {};
struct DeviceTag {};
struct LayerTag {};

using OperationId = Id<OperationTag>;
using DeviceId = Id<DeviceTag>;
using LayerId = Id<LayerTag>;

}  // namespace cohls

template <typename Tag>
struct std::hash<cohls::Id<Tag>> {
  std::size_t operator()(cohls::Id<Tag> id) const noexcept {
    return std::hash<std::int32_t>{}(id.value());
  }
};
