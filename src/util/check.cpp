#include "util/check.hpp"

#include <sstream>

namespace cohls::detail {

namespace {
std::string format(const char* kind, const char* expr, const char* file, int line,
                   const std::string& message) {
  std::ostringstream out;
  out << kind << " failed: " << message << " [" << expr << "] at " << file << ':' << line;
  return out.str();
}
}  // namespace

void throw_precondition(const char* expr, const char* file, int line,
                        const std::string& message) {
  throw PreconditionError(format("precondition", expr, file, line, message));
}

void throw_invariant(const char* expr, const char* file, int line,
                     const std::string& message) {
  throw InvariantError(format("invariant", expr, file, line, message));
}

}  // namespace cohls::detail
