// Checked-error support: precondition and invariant checking that throws
// typed exceptions instead of aborting, so library users can recover and
// tests can assert on failure modes.
#pragma once

#include <stdexcept>
#include <string>

namespace cohls {

/// Thrown when a caller violates a documented precondition of a public API.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant is found broken (a library bug, or
/// corrupted input that slipped past precondition checks).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a requested computation has no feasible answer (e.g. an
/// operation that no device configuration can satisfy).
class InfeasibleError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] void throw_precondition(const char* expr, const char* file, int line,
                                     const std::string& message);
[[noreturn]] void throw_invariant(const char* expr, const char* file, int line,
                                  const std::string& message);
}  // namespace detail

}  // namespace cohls

/// Check a documented precondition of a public entry point.
#define COHLS_EXPECT(expr, message)                                            \
  do {                                                                         \
    if (!(expr)) {                                                             \
      ::cohls::detail::throw_precondition(#expr, __FILE__, __LINE__, message); \
    }                                                                          \
  } while (false)

/// Check an internal invariant.
#define COHLS_ASSERT(expr, message)                                         \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::cohls::detail::throw_invariant(#expr, __FILE__, __LINE__, message); \
    }                                                                       \
  } while (false)
