// Portable Clang Thread Safety Analysis macros. Under clang the COHLS_*
// macros expand to the capability attributes that let
// `-Werror=thread-safety` prove, at compile time, that every access to a
// GUARDED_BY member happens with its mutex held; under any other compiler
// they expand to nothing. The annotated primitives that carry these
// attributes live in util/sync.hpp — std::mutex and std::lock_guard are NOT
// annotated by libstdc++, so locking through them is invisible to the
// analysis and cohls code locks through util::Mutex instead (enforced by
// cohls_check COHLS-S104).
//
// Escape hatch: COHLS_NO_THREAD_SAFETY_ANALYSIS is the committed allowlist
// for patterns the analysis cannot model (e.g. address-ordered dual-mutex
// acquisition). Every use must carry an inline comment explaining why the
// suppression is sound.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define COHLS_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define COHLS_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off clang
#endif

/// Marks a class as a lockable capability ("mutex" names the kind in
/// diagnostics).
#define COHLS_CAPABILITY(x) COHLS_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases a
/// capability.
#define COHLS_SCOPED_CAPABILITY COHLS_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Declares that a data member is protected by the given capability.
#define COHLS_GUARDED_BY(x) COHLS_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Declares that the data pointed to by a pointer member is protected by the
/// given capability.
#define COHLS_PT_GUARDED_BY(x) COHLS_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Declares that a function acquires a capability (exclusively / shared).
#define COHLS_ACQUIRE(...) \
  COHLS_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define COHLS_ACQUIRE_SHARED(...) \
  COHLS_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// Declares that a function releases a capability. The GENERIC form releases
/// a capability regardless of whether it was acquired exclusively or shared
/// (the right annotation for a scoped lock's destructor).
#define COHLS_RELEASE(...) \
  COHLS_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define COHLS_RELEASE_SHARED(...) \
  COHLS_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
#define COHLS_RELEASE_GENERIC(...) \
  COHLS_THREAD_ANNOTATION_ATTRIBUTE(release_generic_capability(__VA_ARGS__))

/// Declares that a function returns `success` when the capability was
/// acquired.
#define COHLS_TRY_ACQUIRE(...) \
  COHLS_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define COHLS_TRY_ACQUIRE_SHARED(...) \
  COHLS_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_shared_capability(__VA_ARGS__))

/// Declares that callers must hold the capability (exclusively / shared)
/// before calling.
#define COHLS_REQUIRES(...) \
  COHLS_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define COHLS_REQUIRES_SHARED(...) \
  COHLS_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Declares that callers must NOT hold the capability (deadlock guard for
/// functions that acquire it themselves).
#define COHLS_EXCLUDES(...) \
  COHLS_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Declares that a function returns a reference to the given capability.
#define COHLS_RETURN_CAPABILITY(x) \
  COHLS_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Turns the analysis off for one function. Allowlist-only: every use needs
/// an inline reason comment (see header comment).
#define COHLS_NO_THREAD_SAFETY_ANALYSIS \
  COHLS_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
