#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace cohls {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  COHLS_EXPECT(!header_.empty(), "a table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  COHLS_EXPECT(row.size() == header_.size(), "row arity must match the header");
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c] << std::string(widths[c] - row[c].size(), ' ');
      out << (c + 1 == row.size() ? "" : "  ");
    }
    out << '\n';
  };

  print_row(header_);
  std::size_t total = 0;
  for (const std::size_t w : widths) {
    total += w;
  }
  total += 2 * (widths.size() - 1);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string TextTable::to_string() const {
  std::ostringstream out;
  print(out);
  return out.str();
}

}  // namespace cohls
