#include "baseline/conventional.hpp"

namespace cohls::baseline {

model::DeviceConfig class_config(const model::Operation& op) {
  model::DeviceConfig config;
  if (op.container().has_value()) {
    config.container = *op.container();
  } else if (op.capacity().has_value() && *op.capacity() == model::Capacity::Large) {
    config.container = model::ContainerKind::Ring;  // only rings go large
  } else {
    config.container = model::ContainerKind::Chamber;  // cheaper default
  }
  if (op.capacity().has_value()) {
    config.capacity = *op.capacity();
  } else {
    config.capacity = config.container == model::ContainerKind::Ring
                          ? model::Capacity::Small
                          : model::Capacity::Tiny;
  }
  config.accessories = op.accessories();
  COHLS_ASSERT(config.valid(), "class configuration must be admissible");
  return config;
}

bool class_match(const model::Operation& op, const model::DeviceConfig& config) {
  return class_config(op) == config;
}

core::SynthesisReport synthesize_conventional(const model::Assay& assay,
                                              const core::SynthesisOptions& options,
                                              Minutes slot_size) {
  COHLS_EXPECT(slot_size >= Minutes{0}, "slot size must be non-negative");
  core::PassPolicy policy;
  policy.binds = [](const model::Operation& op, const model::DeviceConfig& config) {
    return class_match(op, config);
  };
  policy.new_config = [](const model::Operation& op) { return class_config(op); };
  policy.slot_size = slot_size;
  return core::synthesize(assay, options, policy);
}

}  // namespace cohls::baseline
