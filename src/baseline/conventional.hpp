// The modified conventional synthesis method of Sec. 5. Conventional flow
// synthesis classifies operations and devices into types and only binds on
// an exact type match; since the original functionality-based types cannot
// express up-to-date applications, the paper's comparison re-classifies by
// *component requirements* — but keeps the rigid exact-match binding. The
// layering algorithm and progressive re-synthesis are integrated here too,
// exactly as the paper does for a fair comparison.
#pragma once

#include "core/progressive_resynthesis.hpp"

namespace cohls::baseline {

/// Canonical device configuration of an operation's requirement class: the
/// declared container (or the cheaper chamber when unspecified), the
/// declared capacity (or the smallest admissible), and exactly the required
/// accessories. Devices are dedicated to one class.
[[nodiscard]] model::DeviceConfig class_config(const model::Operation& op);

/// Exact-match binding rule: an operation may only use a device whose
/// configuration equals its class configuration.
[[nodiscard]] bool class_match(const model::Operation& op,
                               const model::DeviceConfig& config);

/// Full conventional flow: layering + per-layer *fixed-time-slot*
/// scheduling (starts quantized to `slot_size`) with exact-match binding +
/// progressive re-synthesis. `slot_size` = 0 disables quantization for
/// apples-to-apples binding-only comparisons.
[[nodiscard]] core::SynthesisReport synthesize_conventional(
    const model::Assay& assay, const core::SynthesisOptions& options = {},
    Minutes slot_size = Minutes{5});

}  // namespace cohls::baseline
