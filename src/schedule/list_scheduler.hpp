// Critical-path list scheduler with objective-aware binding. This is the
// scalable engine behind LayerSynthesizer: it builds a feasible sub-schedule
// for one layer, re-using inherited devices first (Sec. 3.2's inheritance
// rule) and instantiating minimally-configured new devices only when that
// scores better under the paper's objective. It also serves, with exact
// signature matching, as the engine of the modified conventional baseline.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "model/compatibility.hpp"
#include "model/cost_model.hpp"
#include "schedule/transport_plan.hpp"
#include "schedule/types.hpp"

namespace cohls::schedule {

/// A device configuration some *other* layer is known to integrate (from
/// the previous re-synthesis iteration). Binding to a hint instantiates the
/// device here but charges no integration cost — the chip pays for it once
/// regardless of which layer triggers the integration (Fig. 6).
struct DeviceHint {
  model::DeviceConfig config;
  /// Caller-defined key reported back when the hint is consumed.
  int key = 0;
};

/// Everything the scheduler needs to place one layer's operations.
struct LayerRequest {
  LayerId layer;
  /// Operations allocated to this layer.
  std::vector<OperationId> ops;
  /// Binding of operations in earlier layers (for transport and paths).
  std::map<OperationId, DeviceId> prior_binding;
  /// Devices this layer may re-use without integration cost.
  std::vector<DeviceId> usable_devices;
  /// Configurations of devices a later layer will integrate anyway.
  std::vector<DeviceHint> hints;
  /// Paths already committed by earlier layers (new ones cost C_p).
  std::set<DevicePath> existing_paths;
  /// Operations that must execute on a specific usable device (recovery
  /// re-synthesis pins in-flight operations to the device already running
  /// them). Pinned devices must appear in `usable_devices`; scheduling a
  /// pinned operation considers no other binding.
  std::map<OperationId, DeviceId> pinned;
  /// May the scheduler instantiate new devices?
  bool allow_new_devices = true;
  /// Fixed-time-slot scheduling: when positive, every start time is rounded
  /// up to a multiple of this slot length. Zero = continuous start times
  /// (the component-oriented default). The conventional baseline quantizes,
  /// reproducing the "fixed-time-slot scheduling methods" the paper's
  /// introduction calls insufficient.
  Minutes slot_size{0};
  /// Binding predicate; defaults to the component-oriented rule
  /// (model::is_compatible). The conventional baseline swaps in exact
  /// signature matching here.
  std::function<bool(const model::Operation&, const model::DeviceConfig&)> binds;
  /// Configuration chooser for new devices; defaults to the cheapest
  /// compatible configuration.
  std::function<model::DeviceConfig(const model::Operation&)> new_config;
};

struct LayerResult {
  LayerSchedule schedule;
  /// Keys of the hints this layer consumed (instantiated locally).
  std::vector<int> consumed_hints;
};

/// Schedules one layer. New devices are appended to `inventory` (tagged with
/// the request's layer id). Throws InfeasibleError when an operation cannot
/// be placed on any device and the inventory is exhausted.
[[nodiscard]] LayerResult schedule_layer(const LayerRequest& request,
                                         const model::Assay& assay,
                                         const TransportPlan& transport,
                                         const model::CostModel& costs,
                                         model::DeviceInventory& inventory);

}  // namespace cohls::schedule
