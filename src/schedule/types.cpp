#include "schedule/types.hpp"

#include <algorithm>

namespace cohls::schedule {

Minutes LayerSchedule::makespan() const {
  Minutes latest{0};
  for (const ScheduledOperation& item : items) {
    latest = std::max(latest, item.end());
  }
  return latest;
}

bool LayerSchedule::has_indeterminate(const model::Assay& assay) const {
  return std::any_of(items.begin(), items.end(), [&](const ScheduledOperation& item) {
    return assay.operation(item.op).indeterminate();
  });
}

const ScheduledOperation* LayerSchedule::find(OperationId op) const {
  for (const ScheduledOperation& item : items) {
    if (item.op == op) {
      return &item;
    }
  }
  return nullptr;
}

DevicePath make_path(DeviceId a, DeviceId b) {
  return a < b ? DevicePath{a, b} : DevicePath{b, a};
}

std::map<OperationId, DeviceId> SynthesisResult::binding() const {
  std::map<OperationId, DeviceId> map;
  for (const LayerSchedule& layer : layers) {
    for (const ScheduledOperation& item : layer.items) {
      map[item.op] = item.device;
    }
  }
  return map;
}

std::set<DevicePath> SynthesisResult::paths(const model::Assay& assay) const {
  const auto bound = binding();
  std::set<DevicePath> result;
  for (const auto& [op, device] : bound) {
    for (const OperationId child : assay.children(op)) {
      const auto it = bound.find(child);
      if (it != bound.end() && it->second != device) {
        result.insert(make_path(device, it->second));
      }
    }
  }
  return result;
}

int SynthesisResult::used_device_count() const {
  std::set<DeviceId> used;
  for (const LayerSchedule& layer : layers) {
    for (const ScheduledOperation& item : layer.items) {
      used.insert(item.device);
    }
  }
  return static_cast<int>(used.size());
}

SymbolicDuration SynthesisResult::total_time(const model::Assay& assay) const {
  SymbolicDuration total;
  int layer_number = 0;
  for (const LayerSchedule& layer : layers) {
    ++layer_number;
    total.add_fixed(layer.makespan());
    if (layer.has_indeterminate(assay)) {
      total.add_symbol(layer_number);
    }
  }
  return total;
}

}  // namespace cohls::schedule
