#include "schedule/list_scheduler.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <tuple>

#include "util/check.hpp"

namespace cohls::schedule {

namespace {

/// Longest downstream duration chain within the layer (critical-path
/// priority). Indeterminate operations contribute their minimum duration.
std::map<OperationId, Minutes> critical_priorities(const LayerRequest& request,
                                                   const model::Assay& assay) {
  std::map<OperationId, Minutes> priority;
  // Children always carry larger ids than their parents, so a reverse sweep
  // over sorted ids sees children before parents.
  std::vector<OperationId> ordered = request.ops;
  std::sort(ordered.begin(), ordered.end());
  const std::set<OperationId> in_layer(ordered.begin(), ordered.end());
  for (auto it = ordered.rbegin(); it != ordered.rend(); ++it) {
    Minutes best{0};
    for (const OperationId child : assay.children(*it)) {
      if (in_layer.count(child)) {
        best = std::max(best, priority.at(child));
      }
    }
    priority[*it] = best + assay.operation(*it).duration();
  }
  return priority;
}

struct DeviceState {
  DeviceId id;
  model::DeviceConfig config;
  Minutes available{0};
};

class LayerScheduler {
 public:
  LayerScheduler(const LayerRequest& request, const model::Assay& assay,
                 const TransportPlan& transport, const model::CostModel& costs,
                 model::DeviceInventory& inventory)
      : request_(request),
        assay_(assay),
        transport_(transport),
        costs_(costs),
        inventory_(inventory),
        in_layer_(request.ops.begin(), request.ops.end()),
        binds_(request.binds ? request.binds
                             : [](const model::Operation& op,
                                  const model::DeviceConfig& config) {
                                 return model::is_compatible(op, config);
                               }) {
    for (const DeviceId id : request.usable_devices) {
      devices_.push_back(DeviceState{id, inventory.device(id).config, Minutes{0}});
    }
    hint_consumed_.assign(request.hints.size(), false);
    paths_ = request.existing_paths;
    unplaced_ = in_layer_;
  }

  LayerResult run() {
    LayerResult result;
    result.schedule.layer = request_.layer;
    const auto priority = critical_priorities(request_, assay_);

    std::vector<OperationId> determinate;
    std::vector<OperationId> indeterminate;
    for (const OperationId id : request_.ops) {
      (assay_.operation(id).indeterminate() ? indeterminate : determinate).push_back(id);
    }

    place_determinate(determinate, priority, result);
    place_indeterminate(indeterminate, result);
    fill_transport_fields(result.schedule);
    return result;
  }

 private:
  // ---- readiness ----------------------------------------------------------
  bool ready(OperationId id) const {
    for (const OperationId parent : assay_.operation(id).parents()) {
      if (in_layer_.count(parent) && !placed_.count(parent)) {
        return false;
      }
    }
    return true;
  }

  /// Rounds a start time up to the next slot boundary when fixed-time-slot
  /// scheduling is requested.
  Minutes quantize(Minutes start) const {
    const std::int64_t slot = request_.slot_size.count();
    if (slot <= 0) {
      return start;
    }
    return Minutes{(start.count() + slot - 1) / slot * slot};
  }

  /// Earliest start of `id` on a device, honoring parent completions and
  /// incoming transport (constraint (9)). Fresh devices pass an invalid id
  /// (they can never host a parent).
  Minutes earliest_start(OperationId id, DeviceId device, Minutes available) const {
    Minutes start = available;
    for (const OperationId parent : assay_.operation(id).parents()) {
      const auto placed = placed_.find(parent);
      if (placed != placed_.end()) {
        const Minutes t = (device.valid() && placed->second.device == device)
                              ? Minutes{0}
                              : transport_.edge_time(parent, id);
        start = std::max(start, placed->second.end + t);
        continue;
      }
      const auto prior = request_.prior_binding.find(parent);
      if (prior != request_.prior_binding.end() &&
          !(device.valid() && prior->second == device)) {
        // Reagent inherited across the layer boundary must be moved first.
        start = std::max(start, transport_.edge_time(parent, id));
      }
    }
    return quantize(start);
  }

  /// Worst-case outgoing transport of `id`: assume every same-layer child
  /// lands on another device. Reserving this up-front guarantees the device
  /// is free during any transfer the final binding actually needs.
  Minutes outgoing_reserve(OperationId id) const {
    Minutes reserve{0};
    for (const OperationId child : assay_.children(id)) {
      if (in_layer_.count(child)) {
        reserve = std::max(reserve, transport_.edge_time(id, child));
      }
    }
    return reserve;
  }

  /// Parent devices of `id` under the current partial binding.
  std::vector<DeviceId> parent_devices(OperationId id) const {
    std::vector<DeviceId> out;
    for (const OperationId parent : assay_.operation(id).parents()) {
      const auto placed = placed_.find(parent);
      if (placed != placed_.end()) {
        out.push_back(placed->second.device);
        continue;
      }
      const auto prior = request_.prior_binding.find(parent);
      if (prior != request_.prior_binding.end()) {
        out.push_back(prior->second);
      }
    }
    return out;
  }

  int new_paths_on(OperationId id, DeviceId device) const {
    int count = 0;
    std::set<DevicePath> seen;
    for (const DeviceId parent_device : parent_devices(id)) {
      if (device.valid() && parent_device == device) {
        continue;
      }
      if (!device.valid()) {
        // Fresh device: any inter-device edge is a new path; dedupe by
        // parent device.
        if (seen.insert(make_path(parent_device, DeviceId{-1})).second) {
          ++count;
        }
        continue;
      }
      const DevicePath path = make_path(parent_device, device);
      if (!paths_.count(path) && seen.insert(path).second) {
        ++count;
      }
    }
    return count;
  }

  // ---- capability reservation ---------------------------------------------
  /// Conservative count of inventory slots that must stay free for the
  /// *other* unplaced operations of this layer: one per distinct
  /// requirement signature no current device satisfies, plus one per
  /// indeterminate operation that cannot be matched to a distinct existing
  /// device. Spawning a device for parallelism is only allowed when it
  /// leaves at least this many slots.
  int slots_reserved_for_others(OperationId current) const {
    std::set<std::tuple<int, int, std::uint64_t>> unsatisfied_groups;
    std::set<DeviceId> matched;
    int unmatched_indeterminate = 0;
    for (const OperationId id : unplaced_) {
      if (id == current) {
        continue;
      }
      const model::Operation& op = assay_.operation(id);
      if (!op.indeterminate()) {
        bool satisfied = false;
        for (const DeviceState& d : devices_) {
          if (binds_(op, d.config)) {
            satisfied = true;
            break;
          }
        }
        if (!satisfied) {
          std::uint64_t acc_bits = 0;
          for (const model::AccessoryId a : op.accessories().to_list()) {
            acc_bits |= (std::uint64_t{1} << a);
          }
          unsatisfied_groups.insert(
              {op.container() ? static_cast<int>(*op.container()) : -1,
               op.capacity() ? static_cast<int>(*op.capacity()) : -1, acc_bits});
        }
        continue;
      }
      // Indeterminate: needs its own device, distinct from those already
      // claimed by other indeterminate operations.
      bool found = false;
      for (const DeviceState& d : devices_) {
        if (!indeterminate_devices_.count(d.id) && !matched.count(d.id) &&
            binds_(op, d.config)) {
          matched.insert(d.id);
          found = true;
          break;
        }
      }
      if (!found) {
        ++unmatched_indeterminate;
      }
    }
    return static_cast<int>(unsatisfied_groups.size()) + unmatched_indeterminate;
  }

  /// When slots are scarce, a forced new device is *enriched*: it takes the
  /// union of the accessory needs of still-unsatisfied operations whose
  /// container/capacity requirements it can also honor, so one slot can
  /// unblock several requirement groups. Only applies to the
  /// component-oriented rule (custom new_config callers keep exact classes).
  model::DeviceConfig enrich_config(model::DeviceConfig config,
                                    OperationId current) const {
    for (const OperationId id : unplaced_) {
      if (id == current) {
        continue;
      }
      const model::Operation& op = assay_.operation(id);
      bool satisfied = false;
      for (const DeviceState& d : devices_) {
        if (binds_(op, d.config)) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) {
        continue;
      }
      if (op.container().has_value() && *op.container() != config.container) {
        continue;
      }
      if (op.capacity().has_value() && *op.capacity() != config.capacity) {
        continue;
      }
      config.accessories = config.accessories.united_with(op.accessories());
    }
    return config;
  }

  // ---- binding choice -----------------------------------------------------
  struct Choice {
    bool fresh = false;
    std::size_t device_index = 0;      // when !fresh
    model::DeviceConfig fresh_config;  // when fresh
    int hint_key = -1;                 // >= 0 when the fresh device is a hint
    std::size_t hint_index = 0;
    Minutes start{0};
    double score = 0.0;
  };

  /// Lookahead: unscheduled descendants (in this layer or later ones) that
  /// could run on the same device need no new path and no transport; half
  /// the path weight per such descendant rewards binding (or building)
  /// devices the pipeline can stay on.
  int hostable_descendants(OperationId id, const model::DeviceConfig& config) const {
    int count = 0;
    std::vector<OperationId> frontier{id};
    std::set<OperationId> seen{id};
    while (!frontier.empty()) {
      const OperationId current = frontier.back();
      frontier.pop_back();
      for (const OperationId child : assay_.children(current)) {
        if (!seen.insert(child).second || placed_.count(child)) {
          continue;
        }
        frontier.push_back(child);
        if (binds_(assay_.operation(child), config)) {
          ++count;
        }
      }
    }
    return count;
  }

  double base_score(OperationId id, DeviceId device, const model::DeviceConfig& config,
                    Minutes start) const {
    const Minutes completion = start + assay_.operation(id).duration();
    return costs_.weight_time() * static_cast<double>(completion.count()) +
           costs_.weight_paths() * new_paths_on(id, device) -
           0.5 * costs_.weight_paths() * hostable_descendants(id, config);
  }

  /// The component-oriented alternative to a minimal device: enrich the
  /// configuration with the accessory needs of the operation's descendants
  /// (across layer boundaries — devices persist) that the container and
  /// capacity can also honor, so the whole pipeline suffix can stay on one
  /// device. This is exactly the paper's integrated-device reality: mixers
  /// with cell-separation modules, heaters and optics on one ring
  /// (Fig. 1/2).
  model::DeviceConfig pipeline_config(OperationId id,
                                      model::DeviceConfig config) const {
    std::vector<OperationId> frontier{id};
    std::set<OperationId> seen{id};
    while (!frontier.empty()) {
      const OperationId current = frontier.back();
      frontier.pop_back();
      for (const OperationId child : assay_.children(current)) {
        if (!seen.insert(child).second) {
          continue;
        }
        frontier.push_back(child);
        const model::Operation& op = assay_.operation(child);
        if (op.container().has_value() && *op.container() != config.container) {
          continue;
        }
        if (op.capacity().has_value() && *op.capacity() != config.capacity) {
          continue;
        }
        config.accessories = config.accessories.united_with(op.accessories());
      }
    }
    return config;
  }

  std::optional<Choice> best_choice(OperationId id, bool exclude_indeterminate_devices) {
    const model::Operation& op = assay_.operation(id);
    // A pinned operation (recovery: it is physically mid-flight on that
    // device) considers no alternative binding — the pin overrides scoring
    // and the indeterminate-device exclusion alike.
    const auto pin = request_.pinned.find(id);
    if (pin != request_.pinned.end()) {
      for (std::size_t i = 0; i < devices_.size(); ++i) {
        const DeviceState& d = devices_[i];
        if (d.id != pin->second) {
          continue;
        }
        if (!binds_(op, d.config)) {
          throw InfeasibleError("operation '" + op.name() +
                                "' is pinned to a device that cannot execute it");
        }
        Choice c;
        c.fresh = false;
        c.device_index = i;
        c.start = earliest_start(id, d.id, d.available);
        c.score = base_score(id, d.id, d.config, c.start);
        return c;
      }
      throw InfeasibleError("operation '" + op.name() +
                            "' is pinned to a device this layer cannot use");
    }
    std::optional<Choice> best;
    const auto offer = [&](const Choice& candidate) {
      if (!best || candidate.score < best->score - 1e-9) {
        best = candidate;
      }
    };

    bool reusable_exists = false;
    for (std::size_t i = 0; i < devices_.size(); ++i) {
      const DeviceState& d = devices_[i];
      if (!binds_(op, d.config)) {
        continue;
      }
      if (exclude_indeterminate_devices && indeterminate_devices_.count(d.id)) {
        continue;
      }
      reusable_exists = true;
      Choice c;
      c.fresh = false;
      c.device_index = i;
      c.start = earliest_start(id, d.id, d.available);
      c.score = base_score(id, d.id, d.config, c.start);
      offer(c);
    }

    // Capability reservation: a fresh device for mere parallelism must not
    // consume a slot that a still-unsatisfied requirement group will need.
    const int slots_left = inventory_.max_devices() - inventory_.size();
    const bool slots_scarce = slots_left <= slots_reserved_for_others(id);
    const bool allow_fresh = request_.allow_new_devices && slots_left > 0 &&
                             (!reusable_exists || !slots_scarce);

    if (allow_fresh) {
      // Hinted configurations: a later layer integrates them anyway, so the
      // integration cost is already accounted for globally.
      for (std::size_t h = 0; h < request_.hints.size(); ++h) {
        if (hint_consumed_[h]) {
          continue;
        }
        const DeviceHint& hint = request_.hints[h];
        if (!binds_(op, hint.config)) {
          continue;
        }
        Choice c;
        c.fresh = true;
        c.fresh_config = hint.config;
        c.hint_key = hint.key;
        c.hint_index = h;
        c.start = earliest_start(id, DeviceId{}, Minutes{0});
        c.score = base_score(id, DeviceId{}, hint.config, c.start);
        offer(c);
      }
      // Brand-new devices, at full integration cost. The component-oriented
      // rule offers both a minimal configuration and a pipeline-enriched one
      // (plus requirement-group enrichment under slot scarcity); custom
      // new_config callers (the conventional baseline) get exactly their
      // class configuration.
      std::vector<model::DeviceConfig> candidates;
      if (request_.new_config) {
        candidates.push_back(request_.new_config(op));
      } else {
        model::DeviceConfig minimal = model::minimal_config(op, costs_, assay_.registry());
        if (slots_scarce) {
          minimal = enrich_config(minimal, id);
        }
        candidates.push_back(minimal);
        const model::DeviceConfig piped = pipeline_config(id, candidates.front());
        if (!(piped == candidates.front())) {
          candidates.push_back(piped);
        }
      }
      for (const model::DeviceConfig& config : candidates) {
        if (!binds_(op, config)) {
          continue;
        }
        Choice c;
        c.fresh = true;
        c.fresh_config = config;
        c.start = earliest_start(id, DeviceId{}, Minutes{0});
        c.score = base_score(id, DeviceId{}, config, c.start) +
                  costs_.weight_area() * model::device_area(config, costs_) +
                  costs_.weight_processing() *
                      model::device_processing(config, costs_, assay_.registry());
        offer(c);
      }
    }
    return best;
  }

  /// Turns a fresh choice into a real device; returns the devices_ index.
  std::size_t materialize(const Choice& choice, LayerResult& result) {
    if (!choice.fresh) {
      return choice.device_index;
    }
    const DeviceId id = inventory_.instantiate(choice.fresh_config, request_.layer);
    devices_.push_back(DeviceState{id, choice.fresh_config, Minutes{0}});
    if (choice.hint_key >= 0) {
      hint_consumed_[choice.hint_index] = true;
      result.consumed_hints.push_back(choice.hint_key);
    }
    return devices_.size() - 1;
  }

  void commit(OperationId id, const Choice& choice, std::size_t device_index,
              LayerResult& result) {
    DeviceState& d = devices_[device_index];
    const model::Operation& op = assay_.operation(id);
    const Minutes end = choice.start + op.duration();
    d.available = end + outgoing_reserve(id);
    placed_.emplace(id, PlacedOp{d.id, end});
    unplaced_.erase(id);
    for (const DeviceId parent_device : parent_devices(id)) {
      if (parent_device != d.id) {
        paths_.insert(make_path(parent_device, d.id));
      }
    }
    result.schedule.items.push_back(
        ScheduledOperation{id, d.id, choice.start, op.duration(), Minutes{0}});
  }

  void place_determinate(const std::vector<OperationId>& ops,
                         const std::map<OperationId, Minutes>& priority,
                         LayerResult& result) {
    std::set<OperationId> pending(ops.begin(), ops.end());
    while (!pending.empty()) {
      // Highest critical-path priority among ready operations.
      OperationId pick;
      Minutes best_priority{-1};
      for (const OperationId id : pending) {
        if (!ready(id)) {
          continue;
        }
        if (priority.at(id) > best_priority) {
          best_priority = priority.at(id);
          pick = id;
        }
      }
      COHLS_ASSERT(pick.valid(), "no ready operation: layer dependencies are cyclic");
      const auto choice = best_choice(pick, /*exclude_indeterminate_devices=*/false);
      if (!choice) {
        throw InfeasibleError("no device can execute operation '" +
                              assay_.operation(pick).name() +
                              "' and the inventory is exhausted");
      }
      const std::size_t index = materialize(*choice, result);
      commit(pick, *choice, index, result);
      pending.erase(pick);
    }
  }

  void place_indeterminate(const std::vector<OperationId>& ops, LayerResult& result) {
    if (ops.empty()) {
      return;
    }
    // Bind each indeterminate operation to its own device (they must run in
    // parallel), then align all starts to a common time T so constraint
    // (14) holds pairwise and against every determinate start.
    struct Tentative {
      OperationId id;
      Choice choice;
      std::size_t device_index;
    };
    std::vector<Tentative> tentative;
    // Pinned operations claim their devices first, so an unpinned
    // indeterminate operation can never grab a device some pin needs.
    std::vector<OperationId> ordered = ops;
    std::stable_partition(ordered.begin(), ordered.end(), [this](OperationId id) {
      return request_.pinned.count(id) > 0;
    });
    for (const OperationId id : ordered) {
      const auto choice = best_choice(id, /*exclude_indeterminate_devices=*/true);
      if (!choice) {
        throw InfeasibleError(
            "cannot give indeterminate operation '" + assay_.operation(id).name() +
            "' a dedicated device; increase |D| or lower the layer threshold");
      }
      const std::size_t index = materialize(*choice, result);
      indeterminate_devices_.insert(devices_[index].id);
      tentative.push_back(Tentative{id, *choice, index});
    }
    Minutes common_start{0};
    for (const Tentative& t : tentative) {
      common_start = std::max(common_start, t.choice.start);
    }
    for (const ScheduledOperation& item : result.schedule.items) {
      common_start = std::max(common_start, item.start);
    }
    for (Tentative& t : tentative) {
      t.choice.start = common_start;
      commit(t.id, t.choice, t.device_index, result);
    }
  }

  /// Reporting only: the actual outgoing transport each operation needs
  /// given the final binding (<= the reserved worst case).
  void fill_transport_fields(LayerSchedule& schedule) const {
    for (ScheduledOperation& item : schedule.items) {
      Minutes actual{0};
      for (const OperationId child : assay_.children(item.op)) {
        const auto placed = placed_.find(child);
        if (placed != placed_.end() && placed->second.device != item.device) {
          actual = std::max(actual, transport_.edge_time(item.op, child));
        }
      }
      item.transport = actual;
    }
  }

  struct PlacedOp {
    DeviceId device;
    Minutes end;
  };

  const LayerRequest& request_;
  const model::Assay& assay_;
  const TransportPlan& transport_;
  const model::CostModel& costs_;
  model::DeviceInventory& inventory_;
  std::set<OperationId> in_layer_;
  std::set<OperationId> unplaced_;
  std::function<bool(const model::Operation&, const model::DeviceConfig&)> binds_;
  std::vector<DeviceState> devices_;
  std::vector<bool> hint_consumed_;
  std::map<OperationId, PlacedOp> placed_;
  std::set<DevicePath> paths_;
  std::set<DeviceId> indeterminate_devices_;
};

}  // namespace

LayerResult schedule_layer(const LayerRequest& request, const model::Assay& assay,
                           const TransportPlan& transport, const model::CostModel& costs,
                           model::DeviceInventory& inventory) {
  for (const OperationId id : request.ops) {
    COHLS_EXPECT(id.valid() && id.value() < assay.operation_count(),
                 "layer references an operation outside the assay");
  }
  LayerScheduler scheduler(request, assay, transport, costs, inventory);
  return scheduler.run();
}

}  // namespace cohls::schedule
