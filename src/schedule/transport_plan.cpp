#include "schedule/transport_plan.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace cohls::schedule {

Minutes TransportProgression::term(int k) const {
  COHLS_EXPECT(terms >= 1, "progression needs at least one term");
  COHLS_EXPECT(minimum <= maximum, "progression minimum exceeds maximum");
  COHLS_EXPECT(k >= 0, "term index must be non-negative");
  if (terms == 1 || k >= terms) {
    return k >= terms ? maximum : minimum;
  }
  const std::int64_t span = (maximum - minimum).count();
  const std::int64_t step_num = span * k;
  return minimum + Minutes{step_num / (terms - 1)};
}

TransportPlan::TransportPlan(Minutes uniform) : uniform_(uniform) {
  COHLS_EXPECT(uniform >= Minutes{0}, "transport time must be non-negative");
}

Minutes TransportPlan::edge_time(OperationId parent, OperationId child) const {
  const auto it = edges_.find({parent, child});
  return it == edges_.end() ? uniform_ : it->second;
}

void TransportPlan::set_edge_time(OperationId parent, OperationId child, Minutes time) {
  COHLS_EXPECT(time >= Minutes{0}, "transport time must be non-negative");
  edges_[{parent, child}] = time;
}

}  // namespace cohls::schedule
