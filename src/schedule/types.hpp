// Result types of the synthesis flow: per-layer sub-schedules (the hybrid
// scheduling output of Sec. 3), bindings, and the assembled SynthesisResult
// whose totals correspond to the paper's Table 2 columns (Exe.Time, #D.,
// #P.).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "model/assay.hpp"
#include "model/device.hpp"
#include "util/symbolic_duration.hpp"

namespace cohls::schedule {

/// One operation placed on the layer's local clock (0 = layer start).
struct ScheduledOperation {
  OperationId op;
  DeviceId device;
  Minutes start{0};
  /// Fixed duration, or the declared minimum for indeterminate operations.
  Minutes duration{0};
  /// Transportation time charged after completion when the consuming
  /// operation sits on a different device.
  Minutes transport{0};

  [[nodiscard]] Minutes end() const { return start + duration; }
  /// End of device occupation, including the outgoing transport slot.
  [[nodiscard]] Minutes release() const { return start + duration + transport; }
};

/// The sub-schedule of one layer.
struct LayerSchedule {
  LayerId layer;
  std::vector<ScheduledOperation> items;

  /// Layer makespan: completion of the last operation (fixed part; the
  /// overrun of indeterminate operations is symbolic).
  [[nodiscard]] Minutes makespan() const;
  [[nodiscard]] bool has_indeterminate(const model::Assay& assay) const;
  [[nodiscard]] const ScheduledOperation* find(OperationId op) const;
};

/// An unordered device pair connected by a flow-channel path.
using DevicePath = std::pair<DeviceId, DeviceId>;

[[nodiscard]] DevicePath make_path(DeviceId a, DeviceId b);

/// Complete synthesis output for one assay.
struct SynthesisResult {
  std::vector<LayerSchedule> layers;
  model::DeviceInventory devices{1};

  /// Device executing each operation (union over layers).
  [[nodiscard]] std::map<OperationId, DeviceId> binding() const;

  /// Distinct inter-device paths implied by parent->child transfers, both
  /// within and across layers (sum_p).
  [[nodiscard]] std::set<DevicePath> paths(const model::Assay& assay) const;
  [[nodiscard]] int path_count(const model::Assay& assay) const {
    return static_cast<int>(paths(assay).size());
  }

  /// Devices actually used by at least one operation.
  [[nodiscard]] int used_device_count() const;

  /// Total assay execution time in the paper's notation: the sum of layer
  /// makespans plus one symbol per layer ending in indeterminate operations.
  [[nodiscard]] SymbolicDuration total_time(const model::Assay& assay) const;
};

}  // namespace cohls::schedule
