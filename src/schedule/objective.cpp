#include "schedule/objective.hpp"

#include <set>

namespace cohls::schedule {

ObjectiveBreakdown evaluate_objective(const SynthesisResult& result,
                                      const model::Assay& assay,
                                      const model::CostModel& costs) {
  ObjectiveBreakdown out;
  out.time_minutes = static_cast<double>(result.total_time(assay).fixed().count());

  std::set<DeviceId> used;
  for (const LayerSchedule& layer : result.layers) {
    for (const ScheduledOperation& item : layer.items) {
      used.insert(item.device);
    }
  }
  for (const DeviceId id : used) {
    const model::Device& device = result.devices.device(id);
    out.area += model::device_area(device.config, costs);
    out.processing += model::device_processing(device.config, costs, assay.registry());
  }
  out.path_count = static_cast<double>(result.path_count(assay));

  out.weighted_total = costs.weight_time() * out.time_minutes +
                       costs.weight_area() * out.area +
                       costs.weight_processing() * out.processing +
                       costs.weight_paths() * out.path_count;
  return out;
}

}  // namespace cohls::schedule
