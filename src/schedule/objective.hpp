// The single definition of the paper's objective (Sec. 4.3):
//   C_t * sum_t + C_a * sum_a + C_pr * sum_pr + C_p * sum_p.
// Both the MILP decode path and the heuristic scheduler are scored here so
// cross-engine comparisons (and the solver-gap ablation) are meaningful.
#pragma once

#include "model/cost_model.hpp"
#include "schedule/types.hpp"

namespace cohls::schedule {

struct ObjectiveBreakdown {
  double time_minutes = 0.0;   ///< sum_t (fixed part only)
  double area = 0.0;           ///< sum_a over used devices
  double processing = 0.0;     ///< sum_pr over used devices
  double path_count = 0.0;     ///< sum_p
  double weighted_total = 0.0;
};

/// Scores a synthesis result. Only devices actually used by an operation
/// count toward area / processing (an unused inventory slot costs nothing).
[[nodiscard]] ObjectiveBreakdown evaluate_objective(const SynthesisResult& result,
                                                    const model::Assay& assay,
                                                    const model::CostModel& costs);

}  // namespace cohls::schedule
