// Schedule validation: every invariant the ILP constraints (5)-(14) encode,
// re-checked independently on the produced schedule. Both synthesis engines
// (MILP decode and heuristic) must produce results that pass this validator,
// which is also the backbone of the property-test suites.
#pragma once

#include <string>
#include <vector>

#include "schedule/transport_plan.hpp"
#include "schedule/types.hpp"

namespace cohls::schedule {

/// Returns human-readable descriptions of every violated invariant; an
/// empty vector means the result is valid. Checked invariants:
///  - each assay operation is scheduled exactly once, with its declared
///    duration and a non-negative start;
///  - bindings reference existing devices whose configuration satisfies the
///    operation's component requirements (constraints (5)-(8));
///  - a child never sits in an earlier layer than a parent; same-layer
///    children start only after the parent completes plus transport when
///    devices differ (constraint (9)); children of prior-layer parents wait
///    for incoming transport at the layer start;
///  - operations on the same device never overlap, counting the outgoing
///    transport slot as occupation (constraints (10)-(13));
///  - indeterminate operations end their layer: no operation starts after
///    an indeterminate operation's minimum completion (constraint (14)),
///    indeterminate operations occupy pairwise-distinct devices, and none
///    has a child in its own layer.
[[nodiscard]] std::vector<std::string> validate_result(const SynthesisResult& result,
                                                       const model::Assay& assay,
                                                       const TransportPlan& transport);

}  // namespace cohls::schedule
