// Schedule certification: every invariant the ILP constraints (5)-(14)
// encode, re-checked independently on the produced schedule. Both synthesis
// engines (MILP decode and heuristic) must produce results that pass this
// certifier, which is also the backbone of the property-test suites.
//
// certify_result reports through the structured-diagnostics type shared with
// the pre-solve linter; every rule has a stable COHLS-E2xx code (see
// diag/diagnostic.hpp and the README rule catalog) so tools and tests match
// on codes, never on message text.
#pragma once

#include <string>
#include <vector>

#include "diag/diagnostic.hpp"
#include "schedule/transport_plan.hpp"
#include "schedule/types.hpp"

namespace cohls::schedule {

/// Certifies a synthesis result against the assay. Returns one diagnostic
/// per violated invariant (empty means certified). Checked invariants and
/// their codes:
///  - each assay operation is scheduled exactly once (E201 unknown op,
///    E202 scheduled twice, E203 missing) — structural problems make the
///    remaining checks meaningless, so certification stops there;
///  - non-negative starts (E204) and declared durations (E205);
///  - bindings reference existing devices (E206) whose configuration
///    satisfies the operation's component requirements, constraints
///    (5)-(8) (E207);
///  - a child never sits in an earlier layer than a parent (E208);
///    same-layer children start only after the parent completes plus
///    transport when devices differ, constraint (9) (E209); children of
///    prior-layer parents wait for incoming transport (E210);
///  - operations on the same device never overlap, counting the outgoing
///    transport slot as occupation, constraints (10)-(13) (E211);
///  - indeterminate operations end their layer: no operation starts after
///    an indeterminate operation's minimum completion, constraint (14)
///    (E212), none has a child in its own layer (E213), and indeterminate
///    operations occupy pairwise-distinct devices (E214).
///
/// Certifier diagnostics carry no source span (they describe a schedule,
/// not a file).
[[nodiscard]] std::vector<diag::Diagnostic> certify_result(
    const SynthesisResult& result, const model::Assay& assay,
    const TransportPlan& transport);

/// Back-compat rendering wrapper around certify_result: one summary line
/// ("COHLS-E211: <message>") per diagnostic; an empty vector means the
/// result is valid.
[[nodiscard]] std::vector<std::string> validate_result(const SynthesisResult& result,
                                                       const model::Assay& assay,
                                                       const TransportPlan& transport);

}  // namespace cohls::schedule
