// Transportation-time plan (Sec. 4.1). The first synthesis pass charges a
// user-defined constant to every inter-device transfer; after a full pass,
// per-edge times are refined to terms of a user-defined arithmetic
// progression — the more often a path is used, the shorter its channel is
// assumed to be laid out, hence the shorter its transfer time. Same-device
// transfers always cost zero.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "model/assay.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace cohls::schedule {

/// The user-defined arithmetic progression of candidate transport times.
struct TransportProgression {
  Minutes minimum{1};
  Minutes maximum{4};
  int terms = 4;

  /// The k-th term (0-based, ascending). k beyond the last term clamps.
  [[nodiscard]] Minutes term(int k) const;
};

/// Per-dependency-edge transport times used by scheduling and the ILP.
/// Edge (parent, child) lookups fall back to the default constant.
class TransportPlan {
 public:
  /// Initial plan: every edge costs `uniform` (the paper's constant `t`).
  explicit TransportPlan(Minutes uniform = Minutes{2});

  /// Transport charged on edge parent->child when they sit on different
  /// devices. (Zero for same-device transfers is applied by callers, who
  /// know the binding.)
  [[nodiscard]] Minutes edge_time(OperationId parent, OperationId child) const;

  void set_edge_time(OperationId parent, OperationId child, Minutes time);

  [[nodiscard]] Minutes uniform_time() const { return uniform_; }

 private:
  Minutes uniform_;
  std::map<std::pair<OperationId, OperationId>, Minutes> edges_;
};

}  // namespace cohls::schedule
