#include "schedule/validate.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "model/compatibility.hpp"

namespace cohls::schedule {

namespace {

struct Placement {
  int layer_index;  // position in result.layers
  const ScheduledOperation* item;
};

/// Occupation end of `item` on its device: completion plus the longest
/// outgoing transport to a same-layer child on a different device.
Minutes occupation_end(const ScheduledOperation& item, const model::Assay& assay,
                       const TransportPlan& transport,
                       const std::map<OperationId, Placement>& placements) {
  Minutes end = item.end();
  const auto self = placements.at(item.op);
  for (const OperationId child : assay.children(item.op)) {
    const auto it = placements.find(child);
    if (it == placements.end()) {
      continue;
    }
    if (it->second.layer_index == self.layer_index &&
        it->second.item->device != item.device) {
      end = std::max(end, item.end() + transport.edge_time(item.op, child));
    }
  }
  return end;
}

}  // namespace

std::vector<diag::Diagnostic> certify_result(const SynthesisResult& result,
                                             const model::Assay& assay,
                                             const TransportPlan& transport) {
  std::vector<diag::Diagnostic> diagnostics;
  const auto report = [&diagnostics](const char* code, const std::string& message) {
    diag::Diagnostic d;
    d.code = code;
    d.message = message;
    diagnostics.push_back(std::move(d));
  };
  const auto op_name = [&assay](OperationId id) {
    return "op '" + assay.operation(id).name() + "' (#" + std::to_string(id.value()) + ")";
  };

  // -- coverage: each operation exactly once ------------------------------
  std::map<OperationId, Placement> placements;
  for (int li = 0; li < static_cast<int>(result.layers.size()); ++li) {
    for (const ScheduledOperation& item : result.layers[static_cast<std::size_t>(li)].items) {
      if (!item.op.valid() || item.op.value() >= assay.operation_count()) {
        report(diag::codes::kUnknownOperation,
               "schedule references an operation outside the assay");
        continue;
      }
      if (!placements.emplace(item.op, Placement{li, &item}).second) {
        report(diag::codes::kDuplicateSchedule,
               op_name(item.op) + " is scheduled more than once");
      }
    }
  }
  for (const model::Operation& op : assay.operations()) {
    if (!placements.count(op.id())) {
      report(diag::codes::kMissingOperation,
             op_name(op.id()) + " is missing from the schedule");
    }
  }
  if (!diagnostics.empty()) {
    return diagnostics;  // structural problems make later checks meaningless
  }

  // -- per-item checks: start, duration, binding legality ------------------
  for (const auto& [id, placement] : placements) {
    const ScheduledOperation& item = *placement.item;
    const model::Operation& op = assay.operation(id);
    if (item.start < Minutes{0}) {
      report(diag::codes::kNegativeStart,
             op_name(id) + " starts before the layer begins");
    }
    if (item.duration != op.duration()) {
      std::ostringstream msg;
      msg << op_name(id) << " scheduled with duration " << item.duration
          << " but the assay declares " << op.duration();
      report(diag::codes::kWrongDuration, msg.str());
    }
    if (!item.device.valid() || item.device.value() >= result.devices.size()) {
      report(diag::codes::kUnknownDevice,
             op_name(id) + " is bound to a device missing from the inventory");
      continue;
    }
    const model::Device& device = result.devices.device(item.device);
    if (!model::is_compatible(op, device.config)) {
      report(diag::codes::kIncompatibleBinding,
             op_name(id) + " is bound to an incompatible device #" +
                 std::to_string(item.device.value()));
    }
  }

  // -- dependency constraints ----------------------------------------------
  for (const model::Operation& op : assay.operations()) {
    const Placement child = placements.at(op.id());
    for (const OperationId parent_id : op.parents()) {
      const Placement parent = placements.at(parent_id);
      if (parent.layer_index > child.layer_index) {
        report(diag::codes::kParentLayerOrder,
               op_name(op.id()) + " is layered before its parent " + op_name(parent_id));
        continue;
      }
      const bool same_device = parent.item->device == child.item->device;
      const Minutes t =
          same_device ? Minutes{0} : transport.edge_time(parent_id, op.id());
      if (parent.layer_index == child.layer_index) {
        if (child.item->start < parent.item->end() + t) {
          std::ostringstream msg;
          msg << op_name(op.id()) << " starts at " << child.item->start
              << " before parent " << op_name(parent_id) << " completes at "
              << parent.item->end() << " plus transport " << t;
          report(diag::codes::kDependencyStart, msg.str());
        }
      } else if (child.item->start < t) {
        std::ostringstream msg;
        msg << op_name(op.id()) << " starts at " << child.item->start
            << " before its inherited reagent arrives (transport " << t << ")";
        report(diag::codes::kTransportStart, msg.str());
      }
    }
  }

  // -- device-conflict prevention ------------------------------------------
  for (const LayerSchedule& layer : result.layers) {
    for (std::size_t a = 0; a < layer.items.size(); ++a) {
      for (std::size_t b = a + 1; b < layer.items.size(); ++b) {
        const ScheduledOperation& oa = layer.items[a];
        const ScheduledOperation& ob = layer.items[b];
        if (oa.device != ob.device) {
          continue;
        }
        const Minutes end_a = occupation_end(oa, assay, transport, placements);
        const Minutes end_b = occupation_end(ob, assay, transport, placements);
        if (oa.start < end_b && ob.start < end_a) {
          report(diag::codes::kDeviceOverlap,
                 op_name(oa.op) + " and " + op_name(ob.op) +
                     " overlap on device #" + std::to_string(oa.device.value()));
        }
      }
    }
  }

  // -- indeterminate operations end their layer -----------------------------
  for (const LayerSchedule& layer : result.layers) {
    std::vector<const ScheduledOperation*> indeterminate;
    for (const ScheduledOperation& item : layer.items) {
      if (assay.operation(item.op).indeterminate()) {
        indeterminate.push_back(&item);
      }
    }
    for (const ScheduledOperation* ind : indeterminate) {
      for (const ScheduledOperation& other : layer.items) {
        if (other.start > ind->end()) {
          report(diag::codes::kStartAfterIndeterminate,
                 op_name(other.op) + " starts after indeterminate " + op_name(ind->op) +
                     " may already have completed (constraint 14)");
        }
      }
      for (const OperationId child : assay.children(ind->op)) {
        const Placement child_placement = placements.at(child);
        if (&result.layers[static_cast<std::size_t>(child_placement.layer_index)] == &layer) {
          report(diag::codes::kIndeterminateSameLayerChild,
                 "indeterminate " + op_name(ind->op) + " has same-layer child " +
                     op_name(child));
        }
      }
    }
    for (std::size_t a = 0; a < indeterminate.size(); ++a) {
      for (std::size_t b = a + 1; b < indeterminate.size(); ++b) {
        if (indeterminate[a]->device == indeterminate[b]->device) {
          report(diag::codes::kIndeterminateSharedDevice,
                 "indeterminate " + op_name(indeterminate[a]->op) + " and " +
                     op_name(indeterminate[b]->op) +
                     " share a device; they must run in parallel");
        }
      }
    }
  }

  return diagnostics;
}

std::vector<std::string> validate_result(const SynthesisResult& result,
                                         const model::Assay& assay,
                                         const TransportPlan& transport) {
  std::vector<std::string> violations;
  for (const diag::Diagnostic& d : certify_result(result, assay, transport)) {
    violations.push_back(diag::summary_line(d));
  }
  return violations;
}

}  // namespace cohls::schedule
