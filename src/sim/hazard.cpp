#include "sim/hazard.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace cohls::sim {

namespace {

/// Hazard draws mix the master seed with these tags so hazard streams can
/// never collide with other per-run streams derived from the same seed.
constexpr std::uint64_t kHazardStreamTag = 0x48415A41524421ULL;  // "HAZARD!"

/// Ceiling on sampled failure times: far enough out that no replay reaches
/// it, small enough that calendar-wheel arithmetic can never overflow.
constexpr double kMaxFailureMinutes = 1e15;

Minutes clamp_minutes(double t) {
  if (!(t >= 0.0)) {
    return Minutes{0};
  }
  return Minutes{static_cast<std::int64_t>(std::ceil(std::min(t, kMaxFailureMinutes)))};
}

}  // namespace

std::string_view to_string(HazardFamily family) {
  switch (family) {
    case HazardFamily::Exponential:
      return "exponential";
    case HazardFamily::Weibull:
      return "weibull";
  }
  return "unknown";
}

Minutes HazardDistribution::sample(double u) const {
  COHLS_EXPECT(u >= 0.0 && u < 1.0, "hazard draw must be in [0, 1)");
  // Inverse CDF. log1p(-u) = ln(1 - u) is exact near u = 0, where most
  // draws land for long-lived hardware.
  const double exponent = -std::log1p(-u);
  switch (family) {
    case HazardFamily::Exponential:
      return clamp_minutes(scale * exponent);
    case HazardFamily::Weibull:
      return clamp_minutes(scale * std::pow(exponent, 1.0 / shape));
  }
  return Minutes{0};
}

void HazardModel::add_rule(HazardRule rule) {
  COHLS_EXPECT(rule.dist.scale > 0.0, "hazard scale must be positive");
  COHLS_EXPECT(rule.dist.shape > 0.0, "hazard shape must be positive");
  rules_.push_back(rule);
}

void HazardModel::sample_into(FaultPlan& plan, const model::DeviceInventory& devices,
                              std::uint64_t master_seed, std::uint64_t run,
                              Minutes horizon) const {
  if (rules_.empty()) {
    return;
  }
  const std::uint64_t run_seed = derive_stream_seed(master_seed, kHazardStreamTag, run);
  for (const model::Device& device : devices.devices()) {
    // One stream per (run, device): draws consume nothing from other
    // devices' streams, so the sampled plan is independent of device count
    // changes elsewhere and of worker scheduling.
    Rng rng{derive_stream_seed(run_seed, static_cast<std::uint64_t>(device.id.value()), 0)};
    bool failed = false;
    Minutes failure_at{0};
    for (const HazardRule& rule : rules_) {
      // Every applicable rule consumes exactly one draw, in rule order.
      if (rule.accessory >= 0 && !device.config.accessories.contains(rule.accessory)) {
        continue;
      }
      const Minutes t = rule.dist.sample(rng.uniform_double());
      if (!failed || t < failure_at) {
        failed = true;
        failure_at = t;
      }
    }
    if (failed && failure_at < horizon) {
      FaultEvent event;
      event.kind = FaultKind::DeviceFailure;
      event.device = device.id;
      event.at = failure_at;
      plan.events.push_back(event);
    }
  }
}

namespace {

std::string trimmed(const std::string& s) {
  const std::size_t first = s.find_first_not_of(" \t");
  if (first == std::string::npos) {
    return {};
  }
  const std::size_t last = s.find_last_not_of(" \t");
  return s.substr(first, last - first + 1);
}

double parse_positive(const std::string& token, const char* what) {
  double value = 0.0;
  try {
    std::size_t used = 0;
    value = std::stod(token, &used);
    if (used != token.size()) {
      throw HazardSpecError(std::string("trailing characters after ") + what + ": '" +
                            token + "'");
    }
  } catch (const HazardSpecError&) {
    throw;
  } catch (const std::exception&) {
    throw HazardSpecError(std::string("expected a number for ") + what + ", got '" +
                          token + "'");
  }
  if (!(value > 0.0)) {
    throw HazardSpecError(std::string(what) + " must be positive, got '" + token + "'");
  }
  return value;
}

}  // namespace

HazardModel parse_hazard_spec(const std::string& spec,
                              const model::AccessoryRegistry& registry) {
  HazardModel model;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t next = spec.find(';', pos);
    std::string clause = trimmed(
        spec.substr(pos, next == std::string::npos ? std::string::npos : next - pos));
    pos = next == std::string::npos ? spec.size() + 1 : next + 1;
    if (clause.empty()) {
      continue;
    }

    HazardRule rule;
    std::string dist = clause;
    if (const std::size_t eq = clause.find('='); eq != std::string::npos) {
      std::string target = trimmed(clause.substr(0, eq));
      dist = trimmed(clause.substr(eq + 1));
      if (target != "default") {
        // CLI-friendly accessory names use '-' where registry names have
        // spaces: heating-pad -> "heating pad".
        std::replace(target.begin(), target.end(), '-', ' ');
        rule.accessory = registry.find(target);
        if (rule.accessory < 0) {
          throw HazardSpecError("unknown accessory '" + target + "' in hazard spec");
        }
      }
    }

    const std::size_t colon = dist.find(':');
    if (colon == std::string::npos) {
      throw HazardSpecError("expected <dist>:<params> in hazard clause '" + clause + "'");
    }
    const std::string family = trimmed(dist.substr(0, colon));
    const std::string params = trimmed(dist.substr(colon + 1));
    if (family == "exp" || family == "exponential") {
      rule.dist.family = HazardFamily::Exponential;
      rule.dist.scale = parse_positive(params, "exponential scale");
    } else if (family == "weibull") {
      rule.dist.family = HazardFamily::Weibull;
      const std::size_t comma = params.find(',');
      if (comma == std::string::npos) {
        throw HazardSpecError("weibull needs <scale>,<shape>, got '" + params + "'");
      }
      rule.dist.scale = parse_positive(trimmed(params.substr(0, comma)), "weibull scale");
      rule.dist.shape =
          parse_positive(trimmed(params.substr(comma + 1)), "weibull shape");
    } else {
      throw HazardSpecError("unknown hazard distribution '" + family + "'");
    }
    model.add_rule(rule);
  }
  return model;
}

}  // namespace cohls::sim
