#include "sim/runtime.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace cohls::sim {

RunTrace simulate_run(const schedule::SynthesisResult& result, const model::Assay& assay,
                      const RuntimeOptions& options) {
  COHLS_EXPECT(options.attempt_success_probability > 0.0 &&
                   options.attempt_success_probability <= 1.0,
               "attempt success probability must be in (0, 1]");
  COHLS_EXPECT(options.max_attempts >= 1, "need at least one attempt");
  Rng rng{options.seed};

  RunTrace trace;
  Minutes clock{0};
  for (const schedule::LayerSchedule& layer : result.layers) {
    LayerTrace layer_trace;
    layer_trace.layer = layer.layer;
    layer_trace.start = clock;
    Minutes layer_span{0};
    for (const schedule::ScheduledOperation& item : layer.items) {
      const model::Operation& op = assay.operation(item.op);
      OperationTrace op_trace;
      op_trace.op = item.op;
      op_trace.device = item.device;
      op_trace.start = clock + item.start;
      op_trace.actual = op.duration();
      if (op.indeterminate()) {
        // Retry until the cyberphysical check passes; each attempt repeats
        // the operation's minimum duration.
        while (op_trace.attempts < options.max_attempts &&
               !rng.bernoulli(options.attempt_success_probability)) {
          ++op_trace.attempts;
        }
        op_trace.actual = op_trace.attempts * op.duration();
      }
      layer_span = std::max(layer_span, item.start + op_trace.actual);
      layer_trace.operations.push_back(op_trace);
    }
    clock += layer_span;
    layer_trace.end = clock;
    trace.layers.push_back(std::move(layer_trace));
    trace.planned_fixed += layer.makespan();
  }
  trace.completed_at = clock;
  return trace;
}

}  // namespace cohls::sim
