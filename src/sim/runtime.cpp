// Event-driven replay on the sim::EventWheel calendar queue. The schedule is
// compiled once (compile_schedule) and each run posts operation-start,
// completion, attempt-exhaustion and device-failure events which drain in
// (time, type, key, seq) order; the first break event truncates the run
// without realizing the remaining layers or rescanning any window list. The
// output is bit-identical to simulate_run_reference (the original three-pass
// implementation, kept in runtime_reference.cpp as the differential oracle):
//
//  - RNG draws happen at layer-realization time in schedule order, so the
//    draw sequence for every computed layer matches the reference; layers
//    skipped after a break would only have consumed *further* draws, which
//    cannot affect the truncated trace.
//  - A device failure at minute T breaks the run iff some window on the
//    device still finishes after T. Windows of unrealized layers all do
//    (they start at or after the drain horizon, hence after T), which the
//    realized-count-vs-static-load comparison answers in O(1); realized
//    windows are answered by one scan of the window list, performed at most
//    once per run because the first break truncates it. This replaces
//    per-event pending-count bookkeeping, so a summary replay posts only
//    the events that can break a run (failures and exhaustions).
//  - Same-instant events drain completions first (releasing devices before a
//    failure looks for stranded work), then device failures by device id,
//    then exhaustions by operation id — exactly the reference's Break::beats
//    tie-break — then starts (a window starting at T is not stranded by a
//    failure at T).
#include "sim/runtime.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace cohls::sim {

namespace {

Minutes degraded(Minutes base, double factor) {
  if (factor <= 1.0) {
    return base;
  }
  return Minutes{static_cast<std::int64_t>(
      std::ceil(static_cast<double>(base.count()) * factor))};
}

/// Product of the active degradations for work starting at `start` on
/// `device`, in plan order (floating-point products are order-sensitive, and
/// the split preserves the plan's relative event order).
double degradation_factor(const std::vector<FaultEvent>& degrades, DeviceId device,
                          Minutes start) {
  double factor = 1.0;
  for (const FaultEvent& event : degrades) {
    if (event.device == device && event.at <= start) {
      factor *= event.factor;
    }
  }
  return factor;
}

Minutes transport_delay(const std::vector<FaultEvent>& transports, Minutes at) {
  Minutes delay{0};
  for (const FaultEvent& event : transports) {
    if (event.at <= at) {
      delay += event.delay;
    }
  }
  return delay;
}

bool exhausts(const std::vector<OperationId>& exhausted, OperationId op) {
  return std::find(exhausted.begin(), exhausted.end(), op) != exhausted.end();
}

}  // namespace

std::string_view to_string(RunOutcome outcome) {
  switch (outcome) {
    case RunOutcome::Completed:
      return "completed";
    case RunOutcome::AttemptsExhausted:
      return "attempts-exhausted";
    case RunOutcome::DeviceFailed:
      return "device-failed";
  }
  return "unknown";
}

CompiledSchedule compile_schedule(const schedule::SynthesisResult& result,
                                  const model::Assay& assay) {
  CompiledSchedule compiled;
  compiled.layers.reserve(result.layers.size());
  std::size_t total = 0;
  for (const schedule::LayerSchedule& layer : result.layers) {
    total += layer.items.size();
  }
  compiled.items.reserve(total);

  for (const schedule::LayerSchedule& layer : result.layers) {
    CompiledSchedule::Layer compiled_layer;
    compiled_layer.id = layer.layer;
    compiled_layer.first = compiled.items.size();
    compiled_layer.count = layer.items.size();
    compiled_layer.makespan = layer.makespan();
    for (const schedule::ScheduledOperation& item : layer.items) {
      const model::Operation& op = assay.operation(item.op);
      CompiledSchedule::Item compiled_item;
      compiled_item.op = item.op;
      compiled_item.device = item.device;
      compiled_item.start = item.start;
      compiled_item.duration = op.duration();
      compiled_item.indeterminate = op.indeterminate();
      compiled_item.has_transport = item.transport > Minutes{0};
      COHLS_EXPECT(item.device.valid(), "scheduled operation without a device");
      compiled.device_limit = std::max(compiled.device_limit, item.device.value() + 1);
      compiled.items.push_back(compiled_item);
    }
    compiled.planned_fixed += compiled_layer.makespan;
    compiled.layers.push_back(compiled_layer);
  }

  compiled.device_load.assign(static_cast<std::size_t>(compiled.device_limit), 0);
  for (const CompiledSchedule::Item& item : compiled.items) {
    ++compiled.device_load[static_cast<std::size_t>(item.device.value())];
  }
  return compiled;
}

Minutes CompiledSchedule::worst_case_end(int max_attempts) const {
  COHLS_EXPECT(max_attempts >= 1, "need at least one attempt");
  Minutes end{0};
  for (const Layer& layer : layers) {
    Minutes span{0};
    for (std::size_t idx = layer.first; idx < layer.first + layer.count; ++idx) {
      const Item& item = items[idx];
      const std::int64_t attempts = item.indeterminate ? max_attempts : 1;
      span = std::max(span, item.start + attempts * item.duration);
    }
    end += span;
  }
  return end;
}

ReplaySummary Replayer::replay(const CompiledSchedule& compiled,
                               const RuntimeOptions& options, RunTrace* trace) {
  COHLS_EXPECT(options.attempt_success_probability > 0.0 &&
                   options.attempt_success_probability <= 1.0,
               "attempt success probability must be in (0, 1]");
  COHLS_EXPECT(options.max_attempts >= 1, "need at least one attempt");
  Rng rng{options.seed};

  const int layer_count = static_cast<int>(compiled.layers.size());

  // Hazard sweeps post plans holding nothing but device failures; those are
  // consumed straight from the options. Mixed plans are split by kind once
  // per run so the hot loops touch only the events that can affect them, in
  // plan order.
  degrade_events_.clear();
  transport_events_.clear();
  failure_events_.clear();
  exhausted_ops_.clear();
  const std::vector<FaultEvent>* failures = &options.faults.events;
  for (const FaultEvent& event : options.faults.events) {
    if (event.kind != FaultKind::DeviceFailure) {
      failures = &failure_events_;
      break;
    }
  }
  if (failures == &failure_events_) {
    for (const FaultEvent& event : options.faults.events) {
      switch (event.kind) {
        case FaultKind::Degradation:
          degrade_events_.push_back(event);
          break;
        case FaultKind::TransportDelay:
          transport_events_.push_back(event);
          break;
        case FaultKind::DeviceFailure:
          failure_events_.push_back(event);
          break;
        case FaultKind::AttemptExhaustion:
          exhausted_ops_.push_back(event.op);
          break;
      }
    }
  }

  windows_.clear();
  windows_.reserve(compiled.items.size());
  layer_begin_.assign(static_cast<std::size_t>(layer_count), Minutes{0});
  layer_finish_.assign(static_cast<std::size_t>(layer_count), Minutes{0});
  device_realized_.assign(static_cast<std::size_t>(compiled.device_limit), 0);

  ReplaySummary summary;
  summary.planned_fixed = compiled.planned_fixed;

  wheel_.reset(0);
  // Failures can only matter on devices the schedule actually uses; a
  // failure of an unused device can never be "affected" and is dropped here.
  for (std::size_t fi = 0; fi < failures->size(); ++fi) {
    const FaultEvent& event = (*failures)[fi];
    const int d = event.device.value();
    if (d < 0 || d >= compiled.device_limit || compiled.device_load[static_cast<std::size_t>(d)] == 0) {
      continue;
    }
    wheel_.post(Event{std::max<std::int64_t>(event.at.count(), 0),
                      EventType::DeviceFailure, d, static_cast<std::int32_t>(fi), 0});
  }
  // A summary-only replay posts the minimal event set — device failures and
  // attempt exhaustions, the only events that can break a run. Starts and
  // completions steer nothing a summary reports; a traced replay still
  // posts the full stream so the drained timeline is complete.
  const bool minimal_events = trace == nullptr;

  std::optional<BreakPoint> broke;
  Minutes clock{0};
  for (int li = 0; li < layer_count && !broke; ++li) {
    const CompiledSchedule::Layer& layer = compiled.layers[static_cast<std::size_t>(li)];
    layer_begin_[static_cast<std::size_t>(li)] = clock;
    Minutes layer_span{0};
    for (std::size_t idx = layer.first; idx < layer.first + layer.count; ++idx) {
      const CompiledSchedule::Item& item = compiled.items[idx];
      Window w;
      w.op = item.op;
      w.device = item.device;
      w.layer_index = li;
      w.start = clock + item.start;
      if (item.indeterminate) {
        if (exhausts(exhausted_ops_, item.op)) {
          w.attempts = options.max_attempts;
          w.exhausted = true;
        } else {
          // Retry until the cyberphysical check passes; the draws happen
          // here, in schedule order, to match the reference bit for bit.
          bool succeeded = rng.bernoulli(options.attempt_success_probability);
          while (!succeeded && w.attempts < options.max_attempts) {
            ++w.attempts;
            succeeded = rng.bernoulli(options.attempt_success_probability);
          }
          w.exhausted = !succeeded;
        }
      }
      const Minutes base = static_cast<std::int64_t>(w.attempts) * item.duration;
      w.actual = degraded(base, degradation_factor(degrade_events_, w.device, w.start));
      const Minutes transport_tail =
          item.has_transport ? transport_delay(transport_events_, w.completion())
                             : Minutes{0};
      layer_span = std::max(layer_span, item.start + w.actual + transport_tail);

      const std::int32_t window_index = static_cast<std::int32_t>(windows_.size());
      windows_.push_back(w);
      ++device_realized_[static_cast<std::size_t>(w.device.value())];
      if (!minimal_events) {
        wheel_.post(Event{w.start.count(), EventType::Start, window_index, window_index, 0});
        wheel_.post(Event{w.completion().count(), EventType::Completion, window_index,
                          window_index, 0});
      }
      if (w.exhausted) {
        // The controller alarms when the attempt cap trips: a break
        // candidate keyed by operation id (the reference's exhaustion
        // tie-break), losing to any same-minute device failure.
        wheel_.post(Event{w.completion().count(), EventType::Exhaustion,
                          w.op.value(), window_index, 0});
      }
    }
    clock += layer_span;
    layer_finish_[static_cast<std::size_t>(li)] = clock;

    // Drain this layer's horizon. Events exactly on a non-final boundary are
    // deferred to the next round: a boundary break belongs to the layer
    // about to run (the reference's layer_at uses `at < finish`), and the
    // next layer's starts at that same minute must be posted first.
    const std::int64_t horizon =
        li + 1 < layer_count ? clock.count() - 1 : clock.count();
    while (std::optional<Event> event = wheel_.next(horizon)) {
      ++summary.events;
      switch (event->type) {
        case EventType::Completion:
        case EventType::Start:
          break;  // neither alters a replay; posted for the trace stream
        case EventType::DeviceFailure: {
          const FaultEvent& fault = (*failures)[static_cast<std::size_t>(event->payload)];
          const std::size_t d = static_cast<std::size_t>(fault.device.value());
          // The failure breaks the run iff some window on the device still
          // finishes after it. Unrealized layers answer in O(1): every
          // window there starts after the drain horizon >= fault.at. The
          // realized half takes one scan, which also picks the stranded
          // operation — the earliest-started window still running (ties:
          // schedule order, like the reference's first-wins scan). At most
          // one failure breaks a run, so the scan happens at most once.
          bool affected = device_realized_[d] < compiled.device_load[d];
          const Window* stranded = nullptr;
          for (const Window& w : windows_) {
            if (w.device != fault.device || w.completion() <= fault.at) {
              continue;
            }
            affected = true;
            if (w.start < fault.at &&
                (stranded == nullptr || w.start < stranded->start)) {
              stranded = &w;
            }
          }
          if (!affected) {
            break;  // no unfinished work bound to the device: harmless
          }
          BreakPoint bp;
          bp.at = fault.at;
          bp.outcome = RunOutcome::DeviceFailed;
          // Binary search over the realized layer boundaries: first layer
          // finishing strictly after the break owns it.
          const auto it =
              std::upper_bound(layer_finish_.begin(),
                               layer_finish_.begin() + (li + 1), fault.at);
          bp.layer_index =
              it != layer_finish_.begin() + (li + 1)
                  ? static_cast<int>(it - layer_finish_.begin())
                  : (layer_count > 0 ? layer_count - 1 : 0);
          bp.device = fault.device;
          bp.op = stranded != nullptr ? stranded->op : OperationId{};
          broke = bp;
          break;
        }
        case EventType::Exhaustion: {
          const Window& w = windows_[static_cast<std::size_t>(event->payload)];
          BreakPoint bp;
          bp.at = w.completion();
          bp.outcome = RunOutcome::AttemptsExhausted;
          bp.layer_index = w.layer_index;
          bp.device = DeviceId{};
          bp.op = w.op;
          broke = bp;
          break;
        }
      }
      if (broke) {
        break;
      }
    }
  }

  const Minutes end_time = broke ? broke->at : clock;
  summary.completed_at = end_time;
  if (broke) {
    summary.outcome = broke->outcome;
    summary.break_layer = broke->layer_index;
    summary.failed_device = broke->device;
    summary.failed_op = broke->op;
  }

  if (trace == nullptr) {
    return summary;
  }

  // Trace assembly over the computed prefix only: every window of an
  // unrealized layer starts at or after the break, so the reference's full
  // scans would skip it anyway.
  trace->planned_fixed = compiled.planned_fixed;
  trace->completed_at = end_time;
  const int last_layer = broke ? broke->layer_index : layer_count - 1;
  for (int li = 0; li <= last_layer && li < layer_count; ++li) {
    const CompiledSchedule::Layer& layer = compiled.layers[static_cast<std::size_t>(li)];
    LayerTrace layer_trace;
    layer_trace.layer = layer.id;
    layer_trace.start = layer_begin_[static_cast<std::size_t>(li)];
    layer_trace.end = std::min(layer_finish_[static_cast<std::size_t>(li)], end_time);
    for (std::size_t idx = layer.first;
         idx < layer.first + layer.count && idx < windows_.size(); ++idx) {
      const Window& w = windows_[idx];
      if (w.start >= end_time) {
        continue;  // never started before the break
      }
      layer_trace.operations.push_back(
          OperationTrace{w.op, w.device, w.start, w.actual, w.attempts});
    }
    trace->layers.push_back(std::move(layer_trace));
  }

  for (const Window& w : windows_) {
    if (w.exhausted) {
      // An exhausted check never produced a usable result, no matter when
      // the run broke; its work is void.
      if (w.start < end_time) {
        trace->lost.push_back(w.op);
      }
      continue;
    }
    if (w.completion() <= end_time) {
      trace->completed.push_back(w.op);
    } else if (w.start < end_time) {
      if (broke && broke->outcome == RunOutcome::DeviceFailed &&
          w.device == broke->device) {
        trace->lost.push_back(w.op);  // stranded on the dead device
      } else {
        trace->in_flight.push_back(InFlightOperation{
            w.op, w.device, w.start, end_time - w.start, w.completion() - end_time});
      }
    }
  }

  if (broke) {
    trace->outcome = broke->outcome;
    RunFailure failure;
    failure.outcome = broke->outcome;
    failure.layer = broke->layer_index < layer_count
                        ? compiled.layers[static_cast<std::size_t>(broke->layer_index)].id
                        : LayerId{};
    failure.device = broke->device;
    failure.op = broke->op;
    failure.at = broke->at;
    std::ostringstream detail;
    if (broke->outcome == RunOutcome::DeviceFailed) {
      detail << "device " << broke->device << " failed at minute " << broke->at.count()
             << " in layer " << failure.layer;
      if (broke->op.valid()) {
        detail << " stranding operation " << broke->op;
      }
    } else {
      detail << "operation " << broke->op << " exhausted " << options.max_attempts
             << " attempts at minute " << broke->at.count() << " in layer "
             << failure.layer;
    }
    failure.detail = detail.str();
    trace->failure = failure;
  }
  return summary;
}

RunTrace Replayer::run(const CompiledSchedule& compiled, const RuntimeOptions& options,
                       ReplaySummary* summary) {
  RunTrace trace;
  const ReplaySummary digest = replay(compiled, options, &trace);
  if (summary != nullptr) {
    *summary = digest;
  }
  return trace;
}

ReplaySummary Replayer::run_summary(const CompiledSchedule& compiled,
                                    const RuntimeOptions& options) {
  return replay(compiled, options, nullptr);
}

RunTrace simulate_run(const schedule::SynthesisResult& result, const model::Assay& assay,
                      const RuntimeOptions& options) {
  const CompiledSchedule compiled = compile_schedule(result, assay);
  Replayer replayer;
  return replayer.run(compiled, options);
}

}  // namespace cohls::sim
