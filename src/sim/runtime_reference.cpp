// The original three-pass replay: realize every window, scan the full
// window list for the earliest break, then assemble the trace. Kept verbatim
// as the differential-testing oracle for the event-wheel implementation in
// runtime.cpp and as the baseline of bench_sim — every behavioural detail
// here (RNG draw order, tie-breaks, boundary ownership) is the contract the
// event-driven replay must reproduce bit-identically.
#include <algorithm>
#include <cmath>
#include <sstream>

#include "sim/runtime.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace cohls::sim {

namespace {

/// One operation's realized execution window, before fault truncation.
struct Window {
  OperationId op;
  DeviceId device;
  int layer_index = 0;
  Minutes start{0};
  Minutes actual{0};
  int attempts = 1;
  /// The cyberphysical check never passed (scripted, or the random attempt
  /// cap was hit). The window's end is where the controller alarms.
  bool exhausted = false;

  [[nodiscard]] Minutes completion() const { return start + actual; }
};

/// A candidate break point; the earliest one wins (ties: device failures
/// before exhaustions, then lower device/op id — fully deterministic).
struct Break {
  Minutes at{0};
  RunOutcome outcome = RunOutcome::DeviceFailed;
  int layer_index = 0;
  DeviceId device;
  OperationId op;

  [[nodiscard]] bool beats(const Break& other) const {
    if (at != other.at) {
      return at < other.at;
    }
    if (outcome != other.outcome) {
      return outcome == RunOutcome::DeviceFailed;
    }
    if (device != other.device) {
      return device < other.device;
    }
    return op < other.op;
  }
};

Minutes degraded(Minutes base, double factor) {
  if (factor <= 1.0) {
    return base;
  }
  return Minutes{static_cast<std::int64_t>(
      std::ceil(static_cast<double>(base.count()) * factor))};
}

}  // namespace

RunTrace simulate_run_reference(const schedule::SynthesisResult& result,
                                const model::Assay& assay,
                                const RuntimeOptions& options) {
  COHLS_EXPECT(options.attempt_success_probability > 0.0 &&
                   options.attempt_success_probability <= 1.0,
               "attempt success probability must be in (0, 1]");
  COHLS_EXPECT(options.max_attempts >= 1, "need at least one attempt");
  Rng rng{options.seed};
  const FaultPlan& faults = options.faults;

  // Pass 1: realized execution windows, layer by layer, as if nothing dies.
  // Degradation inflates durations; scripted exhaustion caps attempts;
  // transport congestion stretches the layer span of operations with
  // outgoing transfers.
  const int layer_count = static_cast<int>(result.layers.size());
  std::vector<Window> windows;
  std::vector<Minutes> layer_begin(layer_count, Minutes{0});
  std::vector<Minutes> layer_finish(layer_count, Minutes{0});

  RunTrace trace;
  Minutes clock{0};
  for (int li = 0; li < layer_count; ++li) {
    const schedule::LayerSchedule& layer = result.layers[li];
    layer_begin[li] = clock;
    Minutes layer_span{0};
    for (const schedule::ScheduledOperation& item : layer.items) {
      const model::Operation& op = assay.operation(item.op);
      Window w;
      w.op = item.op;
      w.device = item.device;
      w.layer_index = li;
      w.start = clock + item.start;
      if (op.indeterminate()) {
        if (faults.exhausts(item.op)) {
          w.attempts = options.max_attempts;
          w.exhausted = true;
        } else {
          // Retry until the cyberphysical check passes; each attempt repeats
          // the operation's minimum duration. Running out of attempts is a
          // failure, never a fabricated success.
          bool succeeded = rng.bernoulli(options.attempt_success_probability);
          while (!succeeded && w.attempts < options.max_attempts) {
            ++w.attempts;
            succeeded = rng.bernoulli(options.attempt_success_probability);
          }
          w.exhausted = !succeeded;
        }
      }
      const Minutes base = static_cast<std::int64_t>(w.attempts) * op.duration();
      w.actual = degraded(base, faults.degradation_factor(w.device, w.start));
      const Minutes transport_tail =
          item.transport > Minutes{0} ? faults.transport_delay(w.completion())
                                      : Minutes{0};
      layer_span = std::max(layer_span, item.start + w.actual + transport_tail);
      windows.push_back(w);
    }
    clock += layer_span;
    layer_finish[li] = clock;
    trace.planned_fixed += layer.makespan();
  }

  // Pass 2: earliest break point, if any.
  std::optional<Break> broke;
  const auto offer = [&broke](const Break& candidate) {
    if (!broke || candidate.beats(*broke)) {
      broke = candidate;
    }
  };
  // The layer whose sub-schedule is active at time `at`; a break exactly on
  // a boundary belongs to the layer about to run — the paper's layer-boundary
  // decision point.
  const auto layer_at = [&](Minutes at) {
    for (int li = 0; li < layer_count; ++li) {
      if (at < layer_finish[li]) {
        return li;
      }
    }
    return layer_count > 0 ? layer_count - 1 : 0;
  };

  for (const Window& w : windows) {
    if (w.exhausted) {
      offer(Break{w.completion(), RunOutcome::AttemptsExhausted, w.layer_index,
                  DeviceId{}, w.op});
    }
  }
  for (const FaultEvent& event : faults.events) {
    if (event.kind != FaultKind::DeviceFailure) {
      continue;
    }
    // The failure matters only when unfinished work is bound to the device.
    const Window* stranded = nullptr;
    bool affected = false;
    for (const Window& w : windows) {
      if (w.device != event.device || w.completion() <= event.at) {
        continue;
      }
      affected = true;
      if (w.start < event.at && (stranded == nullptr || w.start < stranded->start)) {
        stranded = &w;
      }
    }
    if (!affected) {
      continue;
    }
    offer(Break{event.at, RunOutcome::DeviceFailed, layer_at(event.at), event.device,
                stranded != nullptr ? stranded->op : OperationId{}});
  }

  // Pass 3: assemble the trace, truncated at the break when one fired.
  const Minutes end_time = broke ? broke->at : clock;
  const int last_layer = broke ? broke->layer_index : layer_count - 1;
  for (int li = 0; li <= last_layer && li < layer_count; ++li) {
    LayerTrace layer_trace;
    layer_trace.layer = result.layers[li].layer;
    layer_trace.start = layer_begin[li];
    layer_trace.end = std::min(layer_finish[li], end_time);
    for (const Window& w : windows) {
      if (w.layer_index != li || w.start >= end_time) {
        continue;  // never started before the break
      }
      layer_trace.operations.push_back(
          OperationTrace{w.op, w.device, w.start, w.actual, w.attempts});
    }
    trace.layers.push_back(std::move(layer_trace));
  }
  trace.completed_at = end_time;

  for (const Window& w : windows) {
    if (w.exhausted) {
      // An exhausted check never produced a usable result, no matter when
      // the run broke; its work is void.
      if (w.start < end_time) {
        trace.lost.push_back(w.op);
      }
      continue;
    }
    if (w.completion() <= end_time) {
      trace.completed.push_back(w.op);
    } else if (w.start < end_time) {
      if (broke && broke->outcome == RunOutcome::DeviceFailed &&
          w.device == broke->device) {
        trace.lost.push_back(w.op);  // stranded on the dead device
      } else {
        trace.in_flight.push_back(InFlightOperation{
            w.op, w.device, w.start, end_time - w.start, w.completion() - end_time});
      }
    }
  }

  if (broke) {
    trace.outcome = broke->outcome;
    RunFailure failure;
    failure.outcome = broke->outcome;
    failure.layer = broke->layer_index < layer_count
                        ? result.layers[broke->layer_index].layer
                        : LayerId{};
    failure.device = broke->device;
    failure.op = broke->op;
    failure.at = broke->at;
    std::ostringstream detail;
    if (broke->outcome == RunOutcome::DeviceFailed) {
      detail << "device " << broke->device << " failed at minute " << broke->at.count()
             << " in layer " << failure.layer;
      if (broke->op.valid()) {
        detail << " stranding operation " << broke->op;
      }
    } else {
      detail << "operation " << broke->op << " exhausted " << options.max_attempts
             << " attempts at minute " << broke->at.count() << " in layer "
             << failure.layer;
    }
    failure.detail = detail.str();
    trace.failure = failure;
  }
  return trace;
}

}  // namespace cohls::sim
