// Probabilistic hazard models for fleet simulation: per-accessory failure-
// time distributions sampled into deterministic FaultPlans. Where a
// FaultPlan scripts one specific what-if ("the heater dies at minute 90"),
// a HazardModel describes how hardware fails statistically — pumps wear out
// Weibull-shaped, optical systems die exponentially — and each fleet run
// draws concrete failure times from it.
//
// Determinism contract: draws come from counter-based streams derived from
// (master seed, run index, device id), never from a shared generator, so
// run r of a 10 000-run sweep samples the same failure times whether it is
// simulated first, last, alone, or on any of eight workers.
//
// Spec grammar (the `--hazard` CLI flag):
//
//   spec     := clause (';' clause)*
//   clause   := [target '='] dist
//   target   := 'default' | accessory name with '-' for spaces
//               (e.g. 'heating-pad', 'optical-system')
//   dist     := ('exp' | 'exponential') ':' scale
//             | 'weibull' ':' scale ',' shape
//
// `scale` is the characteristic life in minutes (the mean for exponential);
// `shape` is the Weibull shape k (k > 1 models wear-out). A clause without
// a target applies to every device; an accessory-targeted clause applies to
// devices carrying that accessory. A device's failure time is the minimum
// over all applicable distributions (competing risks).
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "model/components.hpp"
#include "model/device.hpp"
#include "sim/faults.hpp"

namespace cohls::sim {

enum class HazardFamily {
  Exponential,
  Weibull,
};

[[nodiscard]] std::string_view to_string(HazardFamily family);

struct HazardDistribution {
  HazardFamily family = HazardFamily::Exponential;
  /// Characteristic life in minutes (> 0).
  double scale = 0.0;
  /// Weibull shape k (> 0); ignored for exponential.
  double shape = 1.0;

  /// Inverse-CDF sample at `u` in [0, 1), in whole minutes (rounded up, so
  /// a failure never lands before its continuous draw).
  [[nodiscard]] Minutes sample(double u) const;
};

/// One clause of a hazard spec.
struct HazardRule {
  /// Accessory gate: the rule applies to devices carrying this accessory;
  /// -1 applies to every device (the `default` target).
  model::AccessoryId accessory = -1;
  HazardDistribution dist;
};

/// Raised by parse_hazard_spec on a malformed or unknown clause.
class HazardSpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class HazardModel {
 public:
  [[nodiscard]] bool empty() const { return rules_.empty(); }
  [[nodiscard]] const std::vector<HazardRule>& rules() const { return rules_; }

  void add_rule(HazardRule rule);

  /// Appends a `device-fail` event per device whose sampled failure time is
  /// below `horizon` (competing-risk minimum over the applicable rules, in
  /// rule order). Each device draws from its own counter-derived stream, so
  /// results depend only on (master_seed, run, device id).
  void sample_into(FaultPlan& plan, const model::DeviceInventory& devices,
                   std::uint64_t master_seed, std::uint64_t run, Minutes horizon) const;

 private:
  std::vector<HazardRule> rules_;
};

/// Parses the spec grammar documented above; accessory names resolve
/// against `registry`. Throws HazardSpecError on malformed clauses or
/// unknown accessories.
[[nodiscard]] HazardModel parse_hazard_spec(const std::string& spec,
                                            const model::AccessoryRegistry& registry);

}  // namespace cohls::sim
