#include "sim/event_wheel.hpp"

#include <algorithm>
#include <bit>

#include "util/check.hpp"

namespace cohls::sim {

namespace {

/// Same-instant drain order: type priority, then the type's natural key,
/// then posting order. All compared events share `at`.
bool event_order(const Event& a, const Event& b) {
  if (a.type != b.type) {
    return static_cast<std::uint8_t>(a.type) < static_cast<std::uint8_t>(b.type);
  }
  if (a.key != b.key) {
    return a.key < b.key;
  }
  return a.seq < b.seq;
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

constexpr std::size_t kNoBucket = static_cast<std::size_t>(-1);

}  // namespace

void EventWheel::Stats::merge(const Stats& other) {
  posted += other.posted;
  popped += other.popped;
  cascaded += other.cascaded;
  overflowed += other.overflowed;
  peak_pending = std::max(peak_pending, other.peak_pending);
}

EventWheel::EventWheel(std::size_t buckets)
    : bucket_count_(round_up_pow2(std::max<std::size_t>(buckets, 2))),
      mask_(static_cast<std::int64_t>(bucket_count_) - 1),
      shift_(std::countr_zero(bucket_count_)),
      coarse_span_(static_cast<std::int64_t>(bucket_count_) *
                   static_cast<std::int64_t>(bucket_count_)),
      fine_(bucket_count_),
      coarse_(bucket_count_),
      fine_epoch_(bucket_count_, 0),
      coarse_epoch_(bucket_count_, 0),
      fine_bits_((bucket_count_ + 63) / 64, 0),
      coarse_bits_((bucket_count_ + 63) / 64, 0) {}

std::vector<Event>& EventWheel::fine_bucket(std::size_t index) {
  std::vector<Event>& bucket = fine_[index];
  if (fine_epoch_[index] != epoch_) {
    bucket.clear();
    fine_epoch_[index] = epoch_;
  }
  return bucket;
}

std::vector<Event>& EventWheel::coarse_bucket(std::size_t index) {
  std::vector<Event>& bucket = coarse_[index];
  if (coarse_epoch_[index] != epoch_) {
    bucket.clear();
    coarse_epoch_[index] = epoch_;
  }
  return bucket;
}

std::size_t EventWheel::next_occupied(const std::vector<std::uint64_t>& bits,
                                      std::size_t from) const {
  std::size_t word = from >> 6;
  if (word >= bits.size()) {
    return kNoBucket;
  }
  std::uint64_t w = bits[word] & (~std::uint64_t{0} << (from & 63));
  while (w == 0) {
    if (++word == bits.size()) {
      return kNoBucket;
    }
    w = bits[word];
  }
  return (word << 6) + static_cast<std::size_t>(std::countr_zero(w));
}

void EventWheel::reset(std::int64_t start) {
  COHLS_EXPECT(start >= 0, "event wheel start time must be non-negative");
  ++epoch_;  // every bucket's contents become stale; cleared lazily on touch
  std::fill(fine_bits_.begin(), fine_bits_.end(), 0);
  std::fill(coarse_bits_.begin(), coarse_bits_.end(), 0);
  overflow_.clear();
  drain_.clear();
  drain_pos_ = 0;
  now_ = start;
  fine_window_ = start & ~mask_;
  coarse_window_ = start - (start % coarse_span_);
  pending_ = 0;
  fine_count_ = 0;
  seq_ = 0;
}

void EventWheel::post(Event e) {
  COHLS_EXPECT(e.at >= now_, "events must be posted at or after the wheel clock");
  e.seq = seq_++;
  if (e.at < fine_window_ + static_cast<std::int64_t>(bucket_count_)) {
    const std::size_t index = static_cast<std::size_t>(e.at & mask_);
    fine_bucket(index).push_back(e);
    fine_bits_[index >> 6] |= std::uint64_t{1} << (index & 63);
    ++fine_count_;
  } else if (e.at < coarse_window_ + coarse_span_) {
    const std::size_t index = static_cast<std::size_t>((e.at >> shift_) & mask_);
    coarse_bucket(index).push_back(e);
    coarse_bits_[index >> 6] |= std::uint64_t{1} << (index & 63);
  } else {
    overflow_.push_back(e);
    ++stats_.overflowed;
  }
  ++pending_;
  ++stats_.posted;
  stats_.peak_pending = std::max(stats_.peak_pending, pending_);
}

void EventWheel::cascade() {
  // The fine wheel finished its rotation: advance its window and pull down
  // the coarse bucket that covers the new rotation.
  fine_window_ += static_cast<std::int64_t>(bucket_count_);
  if (fine_window_ == coarse_window_ + coarse_span_) {
    // The coarse wheel also wrapped: advance it and re-home any parked
    // overflow events that now fall inside a wheel window.
    coarse_window_ += coarse_span_;
    std::vector<Event> still_far;
    still_far.reserve(overflow_.size());
    for (const Event& e : overflow_) {
      if (e.at < coarse_window_ + coarse_span_) {
        const std::size_t index = static_cast<std::size_t>((e.at >> shift_) & mask_);
        coarse_bucket(index).push_back(e);
        coarse_bits_[index >> 6] |= std::uint64_t{1} << (index & 63);
        ++stats_.cascaded;
      } else {
        still_far.push_back(e);
      }
    }
    overflow_.swap(still_far);
  }
  const std::size_t slice_index =
      static_cast<std::size_t>((fine_window_ >> shift_) & mask_);
  if ((coarse_bits_[slice_index >> 6] >> (slice_index & 63)) & 1) {
    std::vector<Event>& slice = coarse_[slice_index];
    for (const Event& e : slice) {
      const std::size_t index = static_cast<std::size_t>(e.at & mask_);
      fine_bucket(index).push_back(e);
      fine_bits_[index >> 6] |= std::uint64_t{1} << (index & 63);
      ++fine_count_;
      ++stats_.cascaded;
    }
    slice.clear();
    coarse_bits_[slice_index >> 6] &= ~(std::uint64_t{1} << (slice_index & 63));
  }
}

std::optional<Event> EventWheel::next(std::int64_t horizon) {
  if (drain_pos_ < drain_.size()) {
    if (drain_[drain_pos_].at > horizon) {
      return std::nullopt;
    }
    return drain_[drain_pos_++];
  }
  drain_.clear();
  drain_pos_ = 0;
  while (pending_ > 0) {
    if (now_ > horizon) {
      return std::nullopt;
    }
    const std::int64_t rotation_end = fine_window_ + static_cast<std::int64_t>(bucket_count_);
    if (now_ == rotation_end) {
      cascade();
      continue;
    }
    if (fine_count_ == 0) {
      // Nothing due this rotation: jump straight to its end (triggering a
      // cascade) or just past the horizon, whichever is nearer.
      now_ = std::min(rotation_end, horizon + 1);
      continue;
    }
    // The fine window is mask-aligned, so minutes [now_, rotation_end) map
    // monotonically to bucket indices [now_ & mask_, bucket_count_): one
    // bitmap probe finds the next occupied minute of the rotation.
    const std::size_t index = next_occupied(fine_bits_, static_cast<std::size_t>(now_ & mask_));
    if (index == kNoBucket) {
      now_ = std::min(rotation_end, horizon + 1);
      continue;
    }
    const std::int64_t minute = fine_window_ + static_cast<std::int64_t>(index);
    if (minute > horizon) {
      now_ = horizon + 1;
      return std::nullopt;
    }
    now_ = minute;
    std::vector<Event>& bucket = fine_[index];  // occupied => current epoch
    // Every event in a fine bucket shares one instant (distinct minutes in
    // a rotation map to distinct buckets), so sorting yields the
    // deterministic same-instant order.
    if (bucket.size() > 1) {
      std::sort(bucket.begin(), bucket.end(), event_order);
    }
    drain_.swap(bucket);
    bucket.clear();
    fine_bits_[index >> 6] &= ~(std::uint64_t{1} << (index & 63));
    fine_count_ -= drain_.size();
    pending_ -= drain_.size();
    stats_.popped += drain_.size();
    ++now_;
    return drain_[drain_pos_++];
  }
  return std::nullopt;
}

}  // namespace cohls::sim
