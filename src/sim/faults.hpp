// Deterministic cyberphysical fault plans. A FaultPlan is a seeded,
// replayable script of hardware misbehaviour the runtime simulator injects
// into a synthesized schedule: devices that die mid-assay (stuck sieve
// valves, dead heating pads), accessory degradation that inflates execution
// times, indeterminate operations whose cyberphysical check never passes
// (attempt exhaustion), and congested transport channels. Plans are plain
// text, one directive per line:
//
//   # comments and blank lines are ignored
//   device-fail <device-id> at <minute>        # device dies at assay minute
//   degrade <device-id> by <factor> [from <minute>]
//                                              # durations on the device are
//                                              # inflated by <factor> (>= 1)
//   exhaust <op-id>                            # the indeterminate operation
//                                              # never passes its check
//   transport-delay <minutes> [from <minute>]  # every outgoing transfer is
//                                              # slowed by <minutes>
//
// The same plan replayed against the same schedule and seed produces a
// bit-identical RunTrace — fault experiments are reproducible by
// construction.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/ids.hpp"
#include "util/time.hpp"

namespace cohls::sim {

enum class FaultKind {
  DeviceFailure,      ///< the device stops executing at `at`
  Degradation,        ///< durations on the device inflate by `factor` from `at`
  AttemptExhaustion,  ///< the indeterminate op `op` never succeeds
  TransportDelay,     ///< outgoing transfers gain `delay` minutes from `at`
};

[[nodiscard]] std::string_view to_string(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::DeviceFailure;
  /// Target device (DeviceFailure, Degradation); invalid otherwise.
  DeviceId device{};
  /// Target operation (AttemptExhaustion); invalid otherwise.
  OperationId op{};
  /// Activation time on the realized assay clock (0 = active from start).
  Minutes at{0};
  /// Duration inflation (Degradation); must be >= 1.
  double factor = 1.0;
  /// Extra transfer time (TransportDelay).
  Minutes delay{0};

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Raised by parse_fault_plan on a malformed directive. Carries the
/// offending 1-based line so CLIs can point at it.
class FaultPlanError : public std::runtime_error {
 public:
  FaultPlanError(const std::string& message, int line)
      : std::runtime_error(message), line_(line) {}

  [[nodiscard]] int line() const { return line_; }

 private:
  int line_ = 0;
};

/// An ordered script of fault events. Helpers answer the questions the
/// simulator asks while replaying a schedule.
struct FaultPlan {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }

  /// Earliest failure time of `device`, if the plan fails it at all.
  [[nodiscard]] std::optional<Minutes> device_failure_at(DeviceId device) const;

  /// Combined duration-inflation factor for work starting at `start` on
  /// `device` (product of all active degradations; 1.0 = healthy).
  [[nodiscard]] double degradation_factor(DeviceId device, Minutes start) const;

  /// True when the plan exhausts the indeterminate operation `op`.
  [[nodiscard]] bool exhausts(OperationId op) const;

  /// Extra transport minutes for a transfer happening at `at`.
  [[nodiscard]] Minutes transport_delay(Minutes at) const;
};

/// Parses the fault-plan text format documented above. Throws
/// FaultPlanError on malformed directives.
[[nodiscard]] FaultPlan parse_fault_plan(const std::string& text);

/// Renders a plan back to the text format (parse round-trips).
[[nodiscard]] std::string to_text(const FaultPlan& plan);

}  // namespace cohls::sim
