#include "sim/faults.hpp"

#include <sstream>

#include "util/check.hpp"

namespace cohls::sim {

namespace {

/// Splits a line into whitespace-separated tokens.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    tokens.push_back(token);
  }
  return tokens;
}

long parse_long(const std::string& token, const char* what, int line) {
  try {
    std::size_t used = 0;
    const long value = std::stol(token, &used);
    if (used != token.size()) {
      throw FaultPlanError(std::string("trailing characters after ") + what + ": '" +
                               token + "'",
                           line);
    }
    return value;
  } catch (const FaultPlanError&) {
    throw;
  } catch (const std::exception&) {
    throw FaultPlanError(std::string("expected a number for ") + what + ", got '" +
                             token + "'",
                         line);
  }
}

double parse_double(const std::string& token, const char* what, int line) {
  try {
    std::size_t used = 0;
    const double value = std::stod(token, &used);
    if (used != token.size()) {
      throw FaultPlanError(std::string("trailing characters after ") + what + ": '" +
                               token + "'",
                           line);
    }
    return value;
  } catch (const FaultPlanError&) {
    throw;
  } catch (const std::exception&) {
    throw FaultPlanError(std::string("expected a number for ") + what + ", got '" +
                             token + "'",
                         line);
  }
}

}  // namespace

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::DeviceFailure:
      return "device-fail";
    case FaultKind::Degradation:
      return "degrade";
    case FaultKind::AttemptExhaustion:
      return "exhaust";
    case FaultKind::TransportDelay:
      return "transport-delay";
  }
  return "unknown";
}

std::optional<Minutes> FaultPlan::device_failure_at(DeviceId device) const {
  std::optional<Minutes> earliest;
  for (const FaultEvent& event : events) {
    if (event.kind == FaultKind::DeviceFailure && event.device == device) {
      if (!earliest || event.at < *earliest) {
        earliest = event.at;
      }
    }
  }
  return earliest;
}

double FaultPlan::degradation_factor(DeviceId device, Minutes start) const {
  double factor = 1.0;
  for (const FaultEvent& event : events) {
    if (event.kind == FaultKind::Degradation && event.device == device &&
        event.at <= start) {
      factor *= event.factor;
    }
  }
  return factor;
}

bool FaultPlan::exhausts(OperationId op) const {
  for (const FaultEvent& event : events) {
    if (event.kind == FaultKind::AttemptExhaustion && event.op == op) {
      return true;
    }
  }
  return false;
}

Minutes FaultPlan::transport_delay(Minutes at) const {
  Minutes delay{0};
  for (const FaultEvent& event : events) {
    if (event.kind == FaultKind::TransportDelay && event.at <= at) {
      delay += event.delay;
    }
  }
  return delay;
}

FaultPlan parse_fault_plan(const std::string& text) {
  FaultPlan plan;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) {
      continue;
    }
    FaultEvent event;
    const std::string& directive = tokens.front();
    if (directive == "device-fail") {
      // device-fail <device-id> at <minute>
      if (tokens.size() != 4 || tokens[2] != "at") {
        throw FaultPlanError("expected: device-fail <device-id> at <minute>",
                             line_number);
      }
      event.kind = FaultKind::DeviceFailure;
      event.device = DeviceId{
          static_cast<std::int32_t>(parse_long(tokens[1], "device id", line_number))};
      event.at = Minutes{parse_long(tokens[3], "failure time", line_number)};
      if (!event.device.valid() || event.at < Minutes{0}) {
        throw FaultPlanError("device id and failure time must be non-negative",
                             line_number);
      }
    } else if (directive == "degrade") {
      // degrade <device-id> by <factor> [from <minute>]
      const bool with_from = tokens.size() == 6 && tokens[4] == "from";
      if (!(tokens.size() == 4 || with_from) || tokens[2] != "by") {
        throw FaultPlanError(
            "expected: degrade <device-id> by <factor> [from <minute>]", line_number);
      }
      event.kind = FaultKind::Degradation;
      event.device = DeviceId{
          static_cast<std::int32_t>(parse_long(tokens[1], "device id", line_number))};
      event.factor = parse_double(tokens[3], "degradation factor", line_number);
      if (with_from) {
        event.at = Minutes{parse_long(tokens[5], "activation time", line_number)};
      }
      if (!event.device.valid() || event.factor < 1.0 || event.at < Minutes{0}) {
        throw FaultPlanError(
            "degradation needs a valid device, a factor >= 1 and a non-negative time",
            line_number);
      }
    } else if (directive == "exhaust") {
      // exhaust <op-id>
      if (tokens.size() != 2) {
        throw FaultPlanError("expected: exhaust <op-id>", line_number);
      }
      event.kind = FaultKind::AttemptExhaustion;
      event.op = OperationId{
          static_cast<std::int32_t>(parse_long(tokens[1], "operation id", line_number))};
      if (!event.op.valid()) {
        throw FaultPlanError("operation id must be non-negative", line_number);
      }
    } else if (directive == "transport-delay") {
      // transport-delay <minutes> [from <minute>]
      const bool with_from = tokens.size() == 4 && tokens[2] == "from";
      if (!(tokens.size() == 2 || with_from)) {
        throw FaultPlanError("expected: transport-delay <minutes> [from <minute>]",
                             line_number);
      }
      event.kind = FaultKind::TransportDelay;
      event.delay = Minutes{parse_long(tokens[1], "delay", line_number)};
      if (with_from) {
        event.at = Minutes{parse_long(tokens[3], "activation time", line_number)};
      }
      if (event.delay < Minutes{0} || event.at < Minutes{0}) {
        throw FaultPlanError("delay and activation time must be non-negative",
                             line_number);
      }
    } else {
      throw FaultPlanError("unknown fault directive: '" + directive + "'", line_number);
    }
    plan.events.push_back(event);
  }
  return plan;
}

std::string to_text(const FaultPlan& plan) {
  std::ostringstream out;
  for (const FaultEvent& event : plan.events) {
    switch (event.kind) {
      case FaultKind::DeviceFailure:
        out << "device-fail " << event.device << " at " << event.at.count() << "\n";
        break;
      case FaultKind::Degradation:
        out << "degrade " << event.device << " by " << event.factor;
        if (event.at > Minutes{0}) {
          out << " from " << event.at.count();
        }
        out << "\n";
        break;
      case FaultKind::AttemptExhaustion:
        out << "exhaust " << event.op << "\n";
        break;
      case FaultKind::TransportDelay:
        out << "transport-delay " << event.delay.count();
        if (event.at > Minutes{0}) {
          out << " from " << event.at.count();
        }
        out << "\n";
        break;
    }
  }
  return out.str();
}

}  // namespace cohls::sim
