// Multi-scale circular-bucket calendar queue for the runtime simulator.
//
// The replay engine posts operation-start / completion / attempt-exhaustion /
// device-failure events at integer assay minutes and consumes them strictly
// in time order. A binary heap would cost O(log n) per event; this wheel is
// O(1) amortized: a fine wheel of one-minute buckets covers the current
// rotation, a coarse wheel of rotation-wide buckets covers the next
// `buckets` rotations, and everything farther parks in an overflow list that
// is re-homed when the coarse window advances (the sched_util.h multi-scale
// design from mcell, adapted to deterministic draining).
//
// Determinism contract: events popped at one instant are ordered by
// (type, key, seq) — completions first, then device failures by device id,
// then exhaustions by operation id, then starts — so a replay that stops at
// the first break event resolves simultaneous candidates exactly like the
// reference implementation's Break::beats tie-break. `seq` is the posting
// order, making the full drain order a pure function of the posted events.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace cohls::sim {

/// Drain priority at one instant, in ascending order: completions release
/// devices before a same-minute failure checks for stranded work, failures
/// beat exhaustions (the reference tie-break), and starts never break a run.
enum class EventType : std::uint8_t {
  Completion = 0,
  DeviceFailure = 1,
  Exhaustion = 2,
  Start = 3,
};

struct Event {
  std::int64_t at = 0;  ///< absolute assay minute
  EventType type = EventType::Start;
  /// Deterministic same-instant tie-break: device id for failures,
  /// operation id for exhaustions, window index otherwise.
  std::int32_t key = 0;
  /// Free payload: window index (start/completion/exhaustion) or fault
  /// index (device failure).
  std::int32_t payload = 0;
  /// Posting order; final tie-break so drain order is reproducible.
  std::uint32_t seq = 0;
};

class EventWheel {
 public:
  struct Stats {
    std::uint64_t posted = 0;
    std::uint64_t popped = 0;
    /// Events pulled from the coarse wheel or the overflow list into a
    /// finer scale as the window advanced.
    std::uint64_t cascaded = 0;
    /// Events that landed in the overflow list on posting.
    std::uint64_t overflowed = 0;
    /// Maximum number of events pending at once.
    std::size_t peak_pending = 0;

    void merge(const Stats& other);
  };

  /// `buckets` is the fine-wheel size (rounded up to a power of two); the
  /// coarse wheel spans buckets^2 minutes before the overflow list starts.
  explicit EventWheel(std::size_t buckets = 256);

  /// Clears all pending events and rewinds the clock to `start`. O(1) in
  /// the bucket count: buckets are epoch-stamped and lazily cleared on
  /// their next touch, so a reset wheel replays without allocating or
  /// walking the bucket arrays. Cumulative stats survive a reset (they
  /// aggregate across fleet runs); call `clear_stats` to zero them.
  void reset(std::int64_t start = 0);
  void clear_stats() { stats_ = Stats{}; }

  /// Posts an event at `e.at >= now()`. `e.seq` is assigned by the wheel.
  void post(Event e);

  /// Pops the next pending event with `at <= horizon` in deterministic
  /// (time, type, key, seq) order, or nullopt when none is due yet. The
  /// clock never moves backwards: after a pop at time t, posts must be
  /// at >= t.
  [[nodiscard]] std::optional<Event> next(std::int64_t horizon);

  [[nodiscard]] std::int64_t now() const { return now_; }
  [[nodiscard]] std::size_t pending() const { return pending_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void cascade();
  /// Bucket accessors that lazily clear storage left over from a previous
  /// epoch (reset bumps the epoch instead of walking every bucket).
  std::vector<Event>& fine_bucket(std::size_t index);
  std::vector<Event>& coarse_bucket(std::size_t index);
  /// Index of the first occupied bucket at or after `from`, or npos.
  [[nodiscard]] std::size_t next_occupied(const std::vector<std::uint64_t>& bits,
                                          std::size_t from) const;

  std::size_t bucket_count_;         // power of two
  std::int64_t mask_;                // bucket_count_ - 1
  int shift_ = 0;                    // log2(bucket_count_)
  std::int64_t coarse_span_;         // bucket_count_^2
  std::vector<std::vector<Event>> fine_;
  std::vector<std::vector<Event>> coarse_;
  /// Epoch stamp of each bucket's contents; a stale stamp reads as empty.
  std::vector<std::uint64_t> fine_epoch_;
  std::vector<std::uint64_t> coarse_epoch_;
  std::uint64_t epoch_ = 1;
  /// Occupancy bitmaps (one bit per bucket): `next` jumps straight to the
  /// next non-empty minute instead of probing every bucket in between.
  std::vector<std::uint64_t> fine_bits_;
  std::vector<std::uint64_t> coarse_bits_;
  std::vector<Event> overflow_;
  std::vector<Event> drain_;         // same-instant events, sorted
  std::size_t drain_pos_ = 0;
  std::int64_t now_ = 0;
  std::int64_t fine_window_ = 0;     // fine wheel covers [fine_window_, +buckets)
  std::int64_t coarse_window_ = 0;   // coarse wheel covers [coarse_window_, +buckets^2)
  std::size_t pending_ = 0;
  std::size_t fine_count_ = 0;
  std::uint32_t seq_ = 0;
  Stats stats_;
};

}  // namespace cohls::sim
