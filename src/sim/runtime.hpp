// Cyberphysical runtime simulation of a hybrid schedule. The synthesizer
// plans fixed sub-schedules whose indeterminate tails are resolved at run
// time: a capture is checked (e.g. by a fluorescence image [12]) and re-run
// until it succeeds — [11] reports ~53% single-cell success per attempt.
// This simulator replays the layered schedule against sampled attempt
// counts — and, optionally, against a deterministic FaultPlan of hardware
// misbehaviour — and reports the realized timeline. On a happy-path run it
// demonstrates that the pre-generated schedule needs no re-synthesis: only
// the layer boundaries move. On a faulted run it reports exactly *where*
// the plan broke (the failing layer, the failed device, which operations
// completed and which were in flight), which is the input the recovery
// re-synthesizer (core/recovery.hpp) needs to build the residual assay.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "model/assay.hpp"
#include "schedule/types.hpp"
#include "sim/event_wheel.hpp"
#include "sim/faults.hpp"

namespace cohls::sim {

struct RuntimeOptions {
  /// Per-attempt success probability of an indeterminate operation.
  double attempt_success_probability = 0.53;
  /// Hard cap on retries. Reaching it does NOT fabricate a success: the run
  /// breaks with RunOutcome::AttemptsExhausted, exactly as a real
  /// controller would alarm instead of pretending the capture worked.
  int max_attempts = 1000;
  std::uint64_t seed = 1;
  /// Deterministic fault script replayed against the schedule (empty =
  /// happy path).
  FaultPlan faults;
};

struct OperationTrace {
  OperationId op;
  DeviceId device;
  Minutes start;   ///< absolute assay-clock start
  Minutes actual;  ///< realized duration (attempts * minimum for indeterminate)
  int attempts = 1;
};

struct LayerTrace {
  LayerId layer;
  Minutes start;  ///< absolute start of this sub-schedule
  Minutes end;    ///< when every operation (incl. overruns) completed
  std::vector<OperationTrace> operations;
};

/// How the replay ended.
enum class RunOutcome {
  Completed,          ///< every operation finished
  AttemptsExhausted,  ///< an indeterminate check never passed within the cap
  DeviceFailed,       ///< a device died with unfinished work bound to it
};

[[nodiscard]] std::string_view to_string(RunOutcome outcome);

/// Where a broken run broke. `layer` is the layer whose sub-schedule was
/// active at the break; `at` is the absolute break time on the realized
/// clock.
struct RunFailure {
  RunOutcome outcome = RunOutcome::DeviceFailed;
  LayerId layer;
  /// The dead device (DeviceFailed) or invalid.
  DeviceId device;
  /// The operation that exhausted its attempts, or the earliest operation
  /// stranded on the dead device; invalid when the failure stranded no
  /// started operation.
  OperationId op;
  Minutes at{0};
  std::string detail;
};

/// An operation that was running when the run broke, on a still-healthy
/// device. Recovery pins it to its binding and credits the elapsed time.
struct InFlightOperation {
  OperationId op;
  DeviceId device;
  Minutes started{0};    ///< absolute realized start
  Minutes elapsed{0};    ///< work already done at the break
  Minutes remaining{0};  ///< realized time still needed (>= 1)
};

struct RunTrace {
  std::vector<LayerTrace> layers;
  Minutes completed_at{0};
  /// The fixed part the synthesizer promised; the difference to
  /// `completed_at` is exactly the indeterminate overrun.
  Minutes planned_fixed{0};

  RunOutcome outcome = RunOutcome::Completed;
  /// Set iff outcome != Completed.
  std::optional<RunFailure> failure;
  /// Operations that finished before the run ended (every operation on a
  /// completed run).
  std::vector<OperationId> completed;
  /// Operations running at the break on surviving devices (empty on a
  /// completed run).
  std::vector<InFlightOperation> in_flight;
  /// Operations that had started but whose work is lost: stranded on the
  /// dead device, or the exhausted operation itself. They must re-run in
  /// full.
  std::vector<OperationId> lost;

  [[nodiscard]] Minutes overrun() const { return completed_at - planned_fixed; }
  [[nodiscard]] bool ok() const { return outcome == RunOutcome::Completed; }
};

/// Replays `result` with sampled indeterminate durations and the options'
/// fault plan. Deterministic: identical inputs (schedule, assay, options)
/// produce bit-identical traces.
[[nodiscard]] RunTrace simulate_run(const schedule::SynthesisResult& result,
                                    const model::Assay& assay,
                                    const RuntimeOptions& options = {});

/// The original three-pass implementation of simulate_run (full-window
/// materialization and O(windows x faults) break scans). Kept as the
/// differential-testing oracle and benchmark baseline for the event-wheel
/// replay: both must produce bit-identical RunTraces for every input.
[[nodiscard]] RunTrace simulate_run_reference(const schedule::SynthesisResult& result,
                                              const model::Assay& assay,
                                              const RuntimeOptions& options = {});

/// A synthesized schedule pre-resolved for replay: layer-major items with
/// cached durations and indeterminate flags, per-layer makespans, and static
/// per-device work counts. Compiling once amortizes every assay/schedule
/// lookup across the thousands of replays of a fleet sweep.
struct CompiledSchedule {
  struct Item {
    OperationId op;
    DeviceId device;
    Minutes start{0};     ///< layer-local planned start
    Minutes duration{0};  ///< fixed duration or indeterminate minimum
    bool indeterminate = false;
    bool has_transport = false;  ///< outgoing transport slot > 0
  };
  struct Layer {
    LayerId id;
    std::size_t first = 0;  ///< index of the layer's first item
    std::size_t count = 0;
    Minutes makespan{0};
  };

  std::vector<Item> items;  ///< layer-major, schedule order
  std::vector<Layer> layers;
  Minutes planned_fixed{0};  ///< sum of layer makespans
  int device_limit = 0;      ///< 1 + largest bound device id
  /// Static number of scheduled items per device id; a device failure can
  /// only break a run while its pending count is positive.
  std::vector<int> device_load;

  /// Latest minute any replay of this schedule can still have unfinished
  /// work, assuming no degradation or transport-delay faults: every
  /// indeterminate item at its attempt cap. A device failure sampled at or
  /// after this bound can never strand anything, so fleet hazard sampling
  /// clips there instead of posting provably inert events.
  [[nodiscard]] Minutes worst_case_end(int max_attempts) const;
};

[[nodiscard]] CompiledSchedule compile_schedule(const schedule::SynthesisResult& result,
                                                const model::Assay& assay);

/// The replay result without the trace: enough for Monte-Carlo reductions
/// (outcome counts, MTTF, completion times) at a fraction of the cost of
/// assembling a RunTrace.
struct ReplaySummary {
  RunOutcome outcome = RunOutcome::Completed;
  Minutes completed_at{0};  ///< realized end (the break time on broken runs)
  Minutes planned_fixed{0};
  int break_layer = -1;  ///< layer index active at the break; -1 when completed
  DeviceId failed_device;
  OperationId failed_op;
  /// Wheel events consumed by this replay. Summary-only replays post the
  /// minimal event set (device failures and attempt exhaustions — the only
  /// events that can break a run), so this is smaller than for a traced
  /// replay of the same run, and zero for a fault-free summary; it is
  /// deterministic for fixed inputs either way.
  std::uint64_t events = 0;

  [[nodiscard]] bool ok() const { return outcome == RunOutcome::Completed; }
  [[nodiscard]] Minutes overrun() const { return completed_at - planned_fixed; }
};

/// Event-driven replay engine. One Replayer owns the calendar wheel and all
/// scratch state, reused across runs so a steady-state fleet replay performs
/// no allocation; it is cheap to construct but NOT thread-safe — use one per
/// worker. Results are bit-identical to simulate_run{,_reference} for the
/// same inputs.
class Replayer {
 public:
  /// Full replay with trace assembly (equivalent to simulate_run). When
  /// `summary` is non-null it also receives the trace-free digest.
  [[nodiscard]] RunTrace run(const CompiledSchedule& compiled,
                             const RuntimeOptions& options,
                             ReplaySummary* summary = nullptr);

  /// Trace-free replay for fleet reductions: a break truncates the run
  /// without materializing the remaining windows.
  [[nodiscard]] ReplaySummary run_summary(const CompiledSchedule& compiled,
                                          const RuntimeOptions& options);

  /// Cumulative wheel statistics across every run of this Replayer.
  [[nodiscard]] const EventWheel::Stats& wheel_stats() const {
    return wheel_.stats();
  }

 private:
  /// One realized execution window (same quantity the reference's pass 1
  /// materializes, but created lazily layer by layer).
  struct Window {
    OperationId op;
    DeviceId device;
    int layer_index = 0;
    Minutes start{0};
    Minutes actual{0};
    int attempts = 1;
    bool exhausted = false;

    [[nodiscard]] Minutes completion() const { return start + actual; }
  };
  struct BreakPoint {
    Minutes at{0};
    RunOutcome outcome = RunOutcome::DeviceFailed;
    int layer_index = 0;
    DeviceId device;
    OperationId op;
  };

  [[nodiscard]] ReplaySummary replay(const CompiledSchedule& compiled,
                                     const RuntimeOptions& options, RunTrace* trace);

  EventWheel wheel_;
  std::vector<Window> windows_;
  std::vector<Minutes> layer_begin_;
  std::vector<Minutes> layer_finish_;
  /// Windows realized so far per device id. A failure at time t "affects"
  /// its device iff some window there still finishes after t; windows of
  /// unrealized layers all do (they start after the drain horizon), so the
  /// count answers the unrealized half and one scan of `windows_` — at most
  /// once per run, on a failure pop — answers the realized half exactly.
  std::vector<int> device_realized_;
  /// The run's fault plan split by kind (scripted events + sampled hazards).
  /// A plan holding only device failures — the hazard-sweep hot path — is
  /// posted straight from the options without copying into these.
  std::vector<FaultEvent> degrade_events_;
  std::vector<FaultEvent> transport_events_;
  std::vector<FaultEvent> failure_events_;
  std::vector<OperationId> exhausted_ops_;
};

}  // namespace cohls::sim
