// Cyberphysical runtime simulation of a hybrid schedule. The synthesizer
// plans fixed sub-schedules whose indeterminate tails are resolved at run
// time: a capture is checked (e.g. by a fluorescence image [12]) and re-run
// until it succeeds — [11] reports ~53% single-cell success per attempt.
// This simulator replays the layered schedule against sampled attempt
// counts and reports the realized timeline, demonstrating that the
// pre-generated schedule needs no re-synthesis at run time: only the layer
// boundaries move.
#pragma once

#include <vector>

#include "model/assay.hpp"
#include "schedule/types.hpp"

namespace cohls::sim {

struct RuntimeOptions {
  /// Per-attempt success probability of an indeterminate operation.
  double attempt_success_probability = 0.53;
  /// Hard cap on retries (a real controller would alarm).
  int max_attempts = 1000;
  std::uint64_t seed = 1;
};

struct OperationTrace {
  OperationId op;
  DeviceId device;
  Minutes start;   ///< absolute assay-clock start
  Minutes actual;  ///< realized duration (attempts * minimum for indeterminate)
  int attempts = 1;
};

struct LayerTrace {
  LayerId layer;
  Minutes start;  ///< absolute start of this sub-schedule
  Minutes end;    ///< when every operation (incl. overruns) completed
  std::vector<OperationTrace> operations;
};

struct RunTrace {
  std::vector<LayerTrace> layers;
  Minutes completed_at{0};
  /// The fixed part the synthesizer promised; the difference to
  /// `completed_at` is exactly the indeterminate overrun.
  Minutes planned_fixed{0};

  [[nodiscard]] Minutes overrun() const { return completed_at - planned_fixed; }
};

/// Replays `result` with sampled indeterminate durations.
[[nodiscard]] RunTrace simulate_run(const schedule::SynthesisResult& result,
                                    const model::Assay& assay,
                                    const RuntimeOptions& options = {});

}  // namespace cohls::sim
