// Cyberphysical runtime simulation of a hybrid schedule. The synthesizer
// plans fixed sub-schedules whose indeterminate tails are resolved at run
// time: a capture is checked (e.g. by a fluorescence image [12]) and re-run
// until it succeeds — [11] reports ~53% single-cell success per attempt.
// This simulator replays the layered schedule against sampled attempt
// counts — and, optionally, against a deterministic FaultPlan of hardware
// misbehaviour — and reports the realized timeline. On a happy-path run it
// demonstrates that the pre-generated schedule needs no re-synthesis: only
// the layer boundaries move. On a faulted run it reports exactly *where*
// the plan broke (the failing layer, the failed device, which operations
// completed and which were in flight), which is the input the recovery
// re-synthesizer (core/recovery.hpp) needs to build the residual assay.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "model/assay.hpp"
#include "schedule/types.hpp"
#include "sim/faults.hpp"

namespace cohls::sim {

struct RuntimeOptions {
  /// Per-attempt success probability of an indeterminate operation.
  double attempt_success_probability = 0.53;
  /// Hard cap on retries. Reaching it does NOT fabricate a success: the run
  /// breaks with RunOutcome::AttemptsExhausted, exactly as a real
  /// controller would alarm instead of pretending the capture worked.
  int max_attempts = 1000;
  std::uint64_t seed = 1;
  /// Deterministic fault script replayed against the schedule (empty =
  /// happy path).
  FaultPlan faults;
};

struct OperationTrace {
  OperationId op;
  DeviceId device;
  Minutes start;   ///< absolute assay-clock start
  Minutes actual;  ///< realized duration (attempts * minimum for indeterminate)
  int attempts = 1;
};

struct LayerTrace {
  LayerId layer;
  Minutes start;  ///< absolute start of this sub-schedule
  Minutes end;    ///< when every operation (incl. overruns) completed
  std::vector<OperationTrace> operations;
};

/// How the replay ended.
enum class RunOutcome {
  Completed,          ///< every operation finished
  AttemptsExhausted,  ///< an indeterminate check never passed within the cap
  DeviceFailed,       ///< a device died with unfinished work bound to it
};

[[nodiscard]] std::string_view to_string(RunOutcome outcome);

/// Where a broken run broke. `layer` is the layer whose sub-schedule was
/// active at the break; `at` is the absolute break time on the realized
/// clock.
struct RunFailure {
  RunOutcome outcome = RunOutcome::DeviceFailed;
  LayerId layer;
  /// The dead device (DeviceFailed) or invalid.
  DeviceId device;
  /// The operation that exhausted its attempts, or the earliest operation
  /// stranded on the dead device; invalid when the failure stranded no
  /// started operation.
  OperationId op;
  Minutes at{0};
  std::string detail;
};

/// An operation that was running when the run broke, on a still-healthy
/// device. Recovery pins it to its binding and credits the elapsed time.
struct InFlightOperation {
  OperationId op;
  DeviceId device;
  Minutes started{0};    ///< absolute realized start
  Minutes elapsed{0};    ///< work already done at the break
  Minutes remaining{0};  ///< realized time still needed (>= 1)
};

struct RunTrace {
  std::vector<LayerTrace> layers;
  Minutes completed_at{0};
  /// The fixed part the synthesizer promised; the difference to
  /// `completed_at` is exactly the indeterminate overrun.
  Minutes planned_fixed{0};

  RunOutcome outcome = RunOutcome::Completed;
  /// Set iff outcome != Completed.
  std::optional<RunFailure> failure;
  /// Operations that finished before the run ended (every operation on a
  /// completed run).
  std::vector<OperationId> completed;
  /// Operations running at the break on surviving devices (empty on a
  /// completed run).
  std::vector<InFlightOperation> in_flight;
  /// Operations that had started but whose work is lost: stranded on the
  /// dead device, or the exhausted operation itself. They must re-run in
  /// full.
  std::vector<OperationId> lost;

  [[nodiscard]] Minutes overrun() const { return completed_at - planned_fixed; }
  [[nodiscard]] bool ok() const { return outcome == RunOutcome::Completed; }
};

/// Replays `result` with sampled indeterminate durations and the options'
/// fault plan. Deterministic: identical inputs (schedule, assay, options)
/// produce bit-identical traces.
[[nodiscard]] RunTrace simulate_run(const schedule::SynthesisResult& result,
                                    const model::Assay& assay,
                                    const RuntimeOptions& options = {});

}  // namespace cohls::sim
