#include "sim/fleet.hpp"

#include <algorithm>
#include <future>
#include <limits>

#include "engine/thread_pool.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace cohls::sim {

namespace {

/// Tag of the per-run attempt-seed stream (disjoint by construction from
/// the hazard stream tag inside hazard.cpp).
constexpr std::uint64_t kAttemptStreamTag = 0x415454454D505453ULL;  // "ATTEMPTS"

/// No clipping: a hazard failure sampled past the realized end is simply
/// never "affected" during replay.
constexpr Minutes kNoHorizon{std::numeric_limits<std::int64_t>::max()};

/// Latest minute a sampled failure can still matter. Without scripted
/// degradation or transport delays no replay outlives the schedule's
/// attempt-capped worst case, so failures sampled past it are provably
/// inert and are never turned into events (the per-device draws still
/// happen, keeping every stream — and thus every outcome — unchanged).
Minutes sampling_horizon(const CompiledSchedule& compiled, const RuntimeOptions& runtime) {
  for (const FaultEvent& event : runtime.faults.events) {
    if (event.kind == FaultKind::Degradation || event.kind == FaultKind::TransportDelay) {
      return kNoHorizon;
    }
  }
  return compiled.worst_case_end(runtime.max_attempts);
}

struct RunRecord {
  RunOutcome outcome = RunOutcome::Completed;
  Minutes completed_at{0};
  std::uint64_t events = 0;
  bool recovery_attempted = false;
  bool recovered = false;
  bool mission_ran = false;
  MissionReport mission;
};

/// Simulates runs [lo, hi) into their record slots. One Replayer and one
/// RuntimeOptions instance serve the whole chunk, so the steady state
/// allocates nothing but the hazard events appended per run.
void simulate_chunk(const CompiledSchedule& compiled,
                    const model::DeviceInventory& devices, const FleetOptions& options,
                    int lo, int hi, std::vector<RunRecord>& records,
                    EventWheel::Stats& wheel_stats) {
  Replayer replayer;
  RuntimeOptions run_options = options.runtime;
  const std::size_t scripted_faults = run_options.faults.events.size();
  const Minutes horizon = sampling_horizon(compiled, options.runtime);
  for (int r = lo; r < hi; ++r) {
    run_options.seed =
        derive_stream_seed(options.seed, kAttemptStreamTag, static_cast<std::uint64_t>(r));
    // Keep the scripted prefix, drop the previous run's sampled failures.
    run_options.faults.events.resize(scripted_faults);
    options.hazard.sample_into(run_options.faults, devices, options.seed,
                               static_cast<std::uint64_t>(r), horizon);

    RunRecord record;
    ReplaySummary summary;
    if (options.mission) {
      const RunTrace trace = replayer.run(compiled, run_options, &summary);
      if (!trace.ok()) {
        // The mission replays from the root itself, so it receives the
        // scripted prefix only: re-sampling the hazard model with the same
        // (seed, run) streams reproduces this run's failure times while
        // extending the horizon round by round.
        RuntimeOptions mission_options = run_options;
        mission_options.faults.events.resize(scripted_faults);
        record.mission =
            options.mission(trace, mission_options, static_cast<std::uint64_t>(r));
        record.mission_ran = true;
        record.recovery_attempted = true;
        record.recovered = record.mission.recovered;
      }
    } else if (options.recover) {
      const RunTrace trace = replayer.run(compiled, run_options, &summary);
      if (!trace.ok()) {
        record.recovery_attempted = true;
        record.recovered = options.recover(trace);
      }
    } else {
      summary = replayer.run_summary(compiled, run_options);
    }
    record.outcome = summary.outcome;
    record.completed_at = summary.completed_at;
    record.events = summary.events;
    records[static_cast<std::size_t>(r)] = record;
  }
  wheel_stats = replayer.wheel_stats();
}

FleetSummary reduce(const std::vector<RunRecord>& records, const FleetOptions& options) {
  FleetSummary summary;
  summary.runs = static_cast<int>(records.size());

  std::int64_t break_sum = 0;
  std::int64_t completion_sum = 0;
  for (const RunRecord& record : records) {
    switch (record.outcome) {
      case RunOutcome::Completed:
        ++summary.completed;
        completion_sum += record.completed_at.count();
        break;
      case RunOutcome::DeviceFailed:
        ++summary.device_failed;
        break_sum += record.completed_at.count();
        break;
      case RunOutcome::AttemptsExhausted:
        ++summary.attempts_exhausted;
        break_sum += record.completed_at.count();
        break;
    }
    summary.recovery_attempts += record.recovery_attempted ? 1 : 0;
    summary.recovered += record.recovered ? 1 : 0;
    summary.events += record.events;
    if (record.mission_ran) {
      ++summary.missions;
      summary.missions_recovered += record.mission.recovered ? 1 : 0;
      summary.missions_degraded += record.mission.degraded ? 1 : 0;
      summary.mission_rounds += record.mission.rounds;
      summary.mission_credit = summary.mission_credit + record.mission.credit;
      const std::size_t bucket = static_cast<std::size_t>(record.mission.rounds);
      if (summary.mission_rounds_histogram.size() <= bucket) {
        summary.mission_rounds_histogram.resize(bucket + 1, 0);
      }
      ++summary.mission_rounds_histogram[bucket];
    }
  }
  summary.mission_survival_rate =
      summary.missions > 0
          ? static_cast<double>(summary.missions_recovered) / summary.missions
          : 0.0;
  summary.mean_mission_rounds =
      summary.missions > 0
          ? static_cast<double>(summary.mission_rounds) / summary.missions
          : 0.0;

  const int broken = summary.device_failed + summary.attempts_exhausted;
  summary.mttf_minutes =
      broken > 0 ? static_cast<double>(break_sum) / broken : 0.0;
  summary.mean_completion_minutes =
      summary.completed > 0 ? static_cast<double>(completion_sum) / summary.completed
                            : 0.0;
  summary.recovery_success_rate =
      summary.recovery_attempts > 0
          ? static_cast<double>(summary.recovered) / summary.recovery_attempts
          : 0.0;

  if (summary.completed > 0 && options.histogram_buckets > 0) {
    Minutes lo = kNoHorizon;
    Minutes hi{std::numeric_limits<std::int64_t>::min()};
    for (const RunRecord& record : records) {
      if (record.outcome != RunOutcome::Completed) {
        continue;
      }
      lo = std::min(lo, record.completed_at);
      hi = std::max(hi, record.completed_at);
    }
    summary.histogram_min = lo;
    summary.histogram_max = hi;
    const std::int64_t span = hi.count() - lo.count() + 1;
    const std::int64_t width =
        (span + options.histogram_buckets - 1) / options.histogram_buckets;
    summary.completion_histogram.assign(
        static_cast<std::size_t>(options.histogram_buckets), 0);
    for (const RunRecord& record : records) {
      if (record.outcome != RunOutcome::Completed) {
        continue;
      }
      const std::int64_t bucket = (record.completed_at.count() - lo.count()) / width;
      ++summary.completion_histogram[static_cast<std::size_t>(bucket)];
    }
  }
  return summary;
}

}  // namespace

FleetSummary run_fleet(const CompiledSchedule& compiled,
                       const model::DeviceInventory& devices,
                       const FleetOptions& options) {
  COHLS_EXPECT(options.runs >= 0, "fleet size must be non-negative");
  COHLS_EXPECT(options.histogram_buckets >= 1, "histogram needs at least one bucket");

  std::vector<RunRecord> records(static_cast<std::size_t>(options.runs));
  const int jobs = std::clamp(options.jobs, 1, std::max(options.runs, 1));

  if (jobs <= 1) {
    EventWheel::Stats stats;
    simulate_chunk(compiled, devices, options, 0, options.runs, records, stats);
    FleetSummary summary = reduce(records, options);
    summary.wheel = stats;
    return summary;
  }

  // Contiguous chunks into disjoint record slots; the serial reduction over
  // run order afterwards makes the result independent of worker timing.
  std::vector<EventWheel::Stats> worker_stats(static_cast<std::size_t>(jobs));
  std::vector<std::future<void>> pending;
  pending.reserve(static_cast<std::size_t>(jobs));
  const int chunk = (options.runs + jobs - 1) / jobs;
  {
    engine::ThreadPool pool(jobs);
    for (int w = 0; w < jobs; ++w) {
      const int lo = w * chunk;
      const int hi = std::min(options.runs, lo + chunk);
      if (lo >= hi) {
        break;
      }
      EventWheel::Stats& stats = worker_stats[static_cast<std::size_t>(w)];
      pending.push_back(pool.submit([&, lo, hi](const CancellationToken&) {
        simulate_chunk(compiled, devices, options, lo, hi, records, stats);
      }));
    }
    for (std::future<void>& f : pending) {
      f.get();
    }
  }

  FleetSummary summary = reduce(records, options);
  for (const EventWheel::Stats& stats : worker_stats) {
    summary.wheel.merge(stats);
  }
  return summary;
}

FleetSummary run_fleet(const schedule::SynthesisResult& result, const model::Assay& assay,
                       const FleetOptions& options) {
  const CompiledSchedule compiled = compile_schedule(result, assay);
  return run_fleet(compiled, result.devices, options);
}

}  // namespace cohls::sim
