// Monte-Carlo fleet simulation: thousands of seeded replays of one
// synthesized schedule, fanned across a worker pool and reduced into
// reliability metrics (MTTF, recovery success rate, completion-time
// histogram). Each run derives its attempt seed and hazard-sampled fault
// plan from counter-based streams of (fleet seed, run index), and the
// reduction walks per-run records in run order — so the summary is
// bit-identical for any worker count and independent of scheduling.
#pragma once

#include <functional>

#include "model/assay.hpp"
#include "schedule/types.hpp"
#include "sim/hazard.hpp"
#include "sim/runtime.hpp"

namespace cohls::sim {

struct FleetOptions {
  /// Number of seeded replays.
  int runs = 1000;
  /// Fleet master seed; run r's streams derive from (seed, r).
  std::uint64_t seed = 1;
  /// Worker threads (1 = run inline on the caller).
  int jobs = 1;
  /// Base replay options. The per-run attempt seed is derived from the
  /// fleet seed; any scripted faults here replay in every run, with
  /// hazard-sampled failures appended.
  RuntimeOptions runtime;
  HazardModel hazard;
  /// Optional recovery probe, called with the trace of every broken run;
  /// returns whether recovery (e.g. core re-synthesis of the residual
  /// assay) succeeded. Must be thread-safe and deterministic in the trace.
  std::function<bool(const RunTrace&)> recover;
  /// Buckets of the completion-time histogram.
  int histogram_buckets = 16;
};

struct FleetSummary {
  int runs = 0;
  int completed = 0;
  int device_failed = 0;
  int attempts_exhausted = 0;
  /// Broken runs offered to the recovery probe (= broken runs when a probe
  /// is set, else 0) and how many of those recovered.
  int recovery_attempts = 0;
  int recovered = 0;
  /// recovered / recovery_attempts; 0 when nothing was attempted.
  double recovery_success_rate = 0.0;
  /// Mean break time of broken runs in minutes; 0 when nothing broke.
  double mttf_minutes = 0.0;
  /// Mean realized completion time of completed runs; 0 when none completed.
  double mean_completion_minutes = 0.0;
  /// Completion-time histogram over completed runs: `histogram_buckets`
  /// equal-width buckets spanning [histogram_min, histogram_max].
  Minutes histogram_min{0};
  Minutes histogram_max{0};
  std::vector<int> completion_histogram;
  /// Wheel events consumed across all runs.
  std::uint64_t events = 0;
  /// Calendar-wheel statistics merged across all workers.
  EventWheel::Stats wheel;
};

/// Simulates `options.runs` seeded replays of `result` and reduces them.
/// The reduction is deterministic: bit-identical for the same
/// (result, assay, options) at any `jobs`.
[[nodiscard]] FleetSummary run_fleet(const schedule::SynthesisResult& result,
                                     const model::Assay& assay,
                                     const FleetOptions& options);

/// As above, for a schedule already compiled with compile_schedule. The
/// inventory supplies the devices hazards sample over.
[[nodiscard]] FleetSummary run_fleet(const CompiledSchedule& compiled,
                                     const model::DeviceInventory& devices,
                                     const FleetOptions& options);

}  // namespace cohls::sim
