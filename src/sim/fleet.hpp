// Monte-Carlo fleet simulation: thousands of seeded replays of one
// synthesized schedule, fanned across a worker pool and reduced into
// reliability metrics (MTTF, recovery success rate, completion-time
// histogram). Each run derives its attempt seed and hazard-sampled fault
// plan from counter-based streams of (fleet seed, run index), and the
// reduction walks per-run records in run order — so the summary is
// bit-identical for any worker count and independent of scheduling.
#pragma once

#include <functional>

#include "model/assay.hpp"
#include "schedule/types.hpp"
#include "sim/hazard.hpp"
#include "sim/runtime.hpp"

namespace cohls::sim {

/// What a multi-fault recovery mission reported for one broken run (see
/// core::run_mission; the sim layer only carries the digest so fleets can
/// reduce mission-survival curves without depending on core).
struct MissionReport {
  bool recovered = false;  ///< the mission replayed to completion
  int rounds = 0;          ///< recovery rounds performed (faults survived)
  bool degraded = false;   ///< a round used the heuristic-only ladder
  Minutes credit{0};       ///< cumulative elapsed-time credit carried
  Minutes completed_at{0};  ///< mission-clock end when recovered
};

struct FleetOptions {
  /// Number of seeded replays.
  int runs = 1000;
  /// Fleet master seed; run r's streams derive from (seed, r).
  std::uint64_t seed = 1;
  /// Worker threads (1 = run inline on the caller).
  int jobs = 1;
  /// Base replay options. The per-run attempt seed is derived from the
  /// fleet seed; any scripted faults here replay in every run, with
  /// hazard-sampled failures appended.
  RuntimeOptions runtime;
  HazardModel hazard;
  /// Optional recovery probe, called with the trace of every broken run;
  /// returns whether recovery (e.g. core re-synthesis of the residual
  /// assay) succeeded. Must be thread-safe and deterministic in the trace.
  std::function<bool(const RunTrace&)> recover;
  /// Optional multi-fault mission probe; takes precedence over `recover`.
  /// Called for every broken run with the trace, the run's replay options
  /// restricted to the *scripted* fault prefix (the mission re-samples the
  /// hazard model per round with the same (seed, run) streams and its own
  /// per-round horizons), and the run index. Must be thread-safe and
  /// deterministic in its arguments — the reduction stays bit-identical
  /// across worker counts.
  std::function<MissionReport(const RunTrace&, const RuntimeOptions&, std::uint64_t)>
      mission;
  /// Buckets of the completion-time histogram.
  int histogram_buckets = 16;
};

struct FleetSummary {
  int runs = 0;
  int completed = 0;
  int device_failed = 0;
  int attempts_exhausted = 0;
  /// Broken runs offered to the recovery probe (= broken runs when a probe
  /// is set, else 0) and how many of those recovered.
  int recovery_attempts = 0;
  int recovered = 0;
  /// recovered / recovery_attempts; 0 when nothing was attempted.
  double recovery_success_rate = 0.0;
  /// Mean break time of broken runs in minutes; 0 when nothing broke.
  double mttf_minutes = 0.0;
  /// Mean realized completion time of completed runs; 0 when none completed.
  double mean_completion_minutes = 0.0;
  /// Completion-time histogram over completed runs: `histogram_buckets`
  /// equal-width buckets spanning [histogram_min, histogram_max].
  Minutes histogram_min{0};
  Minutes histogram_max{0};
  std::vector<int> completion_histogram;
  /// Wheel events consumed across all runs.
  std::uint64_t events = 0;
  /// Calendar-wheel statistics merged across all workers.
  EventWheel::Stats wheel;

  // Multi-fault mission reductions (populated when a mission probe is set;
  // zero otherwise). A "mission" is one broken run driven through the
  // re-entrant replay→recover loop.
  int missions = 0;
  int missions_recovered = 0;  ///< recovered after >= 1 rounds
  int missions_degraded = 0;   ///< missions with a heuristic-only round
  /// Total recovery rounds across all missions.
  std::int64_t mission_rounds = 0;
  /// missions_recovered / missions; 0 when no mission ran.
  double mission_survival_rate = 0.0;
  /// mission_rounds / missions; 0 when no mission ran.
  double mean_mission_rounds = 0.0;
  /// Total elapsed-time credit carried across mission rounds, in minutes.
  Minutes mission_credit{0};
  /// mission_rounds_histogram[k] = missions that performed exactly k
  /// recovery rounds (size = max observed rounds + 1; empty without
  /// missions).
  std::vector<int> mission_rounds_histogram;
};

/// Simulates `options.runs` seeded replays of `result` and reduces them.
/// The reduction is deterministic: bit-identical for the same
/// (result, assay, options) at any `jobs`.
[[nodiscard]] FleetSummary run_fleet(const schedule::SynthesisResult& result,
                                     const model::Assay& assay,
                                     const FleetOptions& options);

/// As above, for a schedule already compiled with compile_schedule. The
/// inventory supplies the devices hazards sample over.
[[nodiscard]] FleetSummary run_fleet(const CompiledSchedule& compiled,
                                     const model::DeviceInventory& devices,
                                     const FleetOptions& options);

}  // namespace cohls::sim
