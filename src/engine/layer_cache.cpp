#include "engine/layer_cache.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace cohls::engine {

namespace {

/// Layer ops in canonical (id) order — rank r maps to sorted_ops[r].
std::vector<OperationId> sorted_layer_ops(const schedule::LayerRequest& request) {
  std::vector<OperationId> ops = request.ops;
  std::sort(ops.begin(), ops.end());
  return ops;
}

int hint_position(const schedule::LayerRequest& request, int key) {
  for (std::size_t i = 0; i < request.hints.size(); ++i) {
    if (request.hints[i].key == key) {
      return static_cast<int>(i);
    }
  }
  COHLS_ASSERT(false, "consumed hint key not present in the request");
  return -1;
}

}  // namespace

LayerSolutionCache::LayerSolutionCache(std::size_t capacity, int shards)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  const std::size_t shard_count = std::clamp<std::size_t>(
      static_cast<std::size_t>(std::max(shards, 1)), 1, capacity_);
  shards_ = std::vector<Shard>(shard_count);
  per_shard_capacity_ = std::max<std::size_t>(capacity_ / shard_count, 1);
}

LayerSolutionCache::CachedSolution LayerSolutionCache::encode(
    const core::LayerSolveContext& context, const core::LayerOutcome& outcome) {
  const schedule::LayerRequest& request = context.request;
  const std::vector<OperationId> ops = sorted_layer_ops(request);
  std::unordered_map<std::int32_t, int> op_rank;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    op_rank.emplace(ops[i].value(), static_cast<int>(i));
  }
  std::unordered_map<std::int32_t, int> device_ref;
  for (std::size_t i = 0; i < request.usable_devices.size(); ++i) {
    device_ref.emplace(request.usable_devices[i].value(), static_cast<int>(i));
  }

  CachedSolution cached;
  // Devices the layer created, in instantiation (id) order.
  const int inherited = context.inventory.size();
  const auto& devices = outcome.inventory.devices();
  for (int i = inherited; i < outcome.inventory.size(); ++i) {
    const model::Device& device = devices[static_cast<std::size_t>(i)];
    COHLS_ASSERT(device.created_in == request.layer,
                 "layer outcome contains a device created elsewhere");
    device_ref.emplace(device.id.value(),
                       static_cast<int>(request.usable_devices.size()) + (i - inherited));
    cached.created.push_back(device.config);
  }

  for (const schedule::ScheduledOperation& item : outcome.result.schedule.items) {
    CachedItem encoded;
    encoded.op_rank = op_rank.at(item.op.value());
    encoded.device_ref = device_ref.at(item.device.value());
    encoded.start = item.start.count();
    encoded.duration = item.duration.count();
    encoded.transport = item.transport.count();
    cached.items.push_back(encoded);
  }
  for (const int key : outcome.result.consumed_hints) {
    cached.consumed_hints.push_back(hint_position(request, key));
  }
  cached.used_ilp = outcome.used_ilp;
  cached.score = outcome.score;
  cached.milp_nodes = outcome.milp_nodes;
  return cached;
}

core::LayerOutcome LayerSolutionCache::decode(const core::LayerSolveContext& context,
                                              const CachedSolution& cached) {
  const schedule::LayerRequest& request = context.request;
  const std::vector<OperationId> ops = sorted_layer_ops(request);

  core::LayerOutcome outcome;
  outcome.inventory = context.inventory;
  std::vector<DeviceId> devices = request.usable_devices;
  for (const model::DeviceConfig& config : cached.created) {
    devices.push_back(outcome.inventory.instantiate(config, request.layer));
  }

  outcome.result.schedule.layer = request.layer;
  for (const CachedItem& item : cached.items) {
    schedule::ScheduledOperation decoded;
    decoded.op = ops.at(static_cast<std::size_t>(item.op_rank));
    decoded.device = devices.at(static_cast<std::size_t>(item.device_ref));
    decoded.start = Minutes{item.start};
    decoded.duration = Minutes{item.duration};
    decoded.transport = Minutes{item.transport};
    outcome.result.schedule.items.push_back(decoded);
  }
  for (const int position : cached.consumed_hints) {
    outcome.result.consumed_hints.push_back(
        request.hints.at(static_cast<std::size_t>(position)).key);
  }
  outcome.used_ilp = cached.used_ilp;
  outcome.score = cached.score;
  outcome.milp_nodes = cached.milp_nodes;
  return outcome;
}

std::optional<core::LayerOutcome> LayerSolutionCache::lookup(
    const core::LayerSolveContext& context) {
  if (!cacheable(context)) {
    return std::nullopt;
  }
  const LayerSignature signature = layer_signature(context);
  Shard& shard = shard_for(signature.hash);
  std::optional<CachedSolution> found;
  {
    util::MutexLock lock(shard.mutex);
    const auto it = shard.index.find(std::string_view{signature.text});
    if (it == shard.index.end()) {
      ++shard.misses;
    } else {
      ++shard.hits;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      found = it->second->value;  // copy out under the lock
    }
  }
  if (!found.has_value()) {
    return std::nullopt;
  }
  core::LayerOutcome outcome = decode(context, *found);
  if (verify_hits_) {
    const core::LayerOutcome fresh =
        core::synthesize_layer(context.request, context.assay, context.transport,
                               context.costs, context.engine, context.inventory);
    COHLS_ASSERT(encode(context, fresh) == *found,
                 "layer cache hit differs from a fresh solve — incomplete signature");
  }
  return outcome;
}

void LayerSolutionCache::store(const core::LayerSolveContext& context,
                               const core::LayerOutcome& outcome) {
  if (!cacheable(context)) {
    return;
  }
  const LayerSignature signature = layer_signature(context);
  CachedSolution value = encode(context, outcome);
  Shard& shard = shard_for(signature.hash);
  util::MutexLock lock(shard.mutex);
  if (shard.index.count(std::string_view{signature.text}) > 0) {
    return;  // first writer wins; identical by construction
  }
  shard.lru.push_front(Entry{std::move(signature.text), std::move(value)});
  shard.index.emplace(std::string_view{shard.lru.front().key}, shard.lru.begin());
  ++shard.stores;
  while (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(std::string_view{shard.lru.back().key});
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

CacheStats LayerSolutionCache::stats() const {
  CacheStats total;
  for (const Shard& shard : shards_) {
    util::MutexLock lock(shard.mutex);
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.stores += shard.stores;
    total.evictions += shard.evictions;
  }
  return total;
}

std::size_t LayerSolutionCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    util::MutexLock lock(shard.mutex);
    total += shard.lru.size();
  }
  return total;
}

}  // namespace cohls::engine
