#include "engine/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace cohls::engine {

namespace {

constexpr double kFirstBound = 1e-6;  // 1 microsecond

std::string format_seconds(double seconds) {
  std::ostringstream out;
  out << std::setprecision(4) << seconds << "s";
  return out.str();
}

}  // namespace

double Histogram::bucket_bound(int i) {
  return kFirstBound * std::pow(2.0, i);
}

void Histogram::observe(double seconds) {
  seconds = std::max(seconds, 0.0);
  int bucket = 0;
  while (bucket < kBuckets && seconds > bucket_bound(bucket)) {
    ++bucket;
  }
  buckets_[static_cast<std::size_t>(bucket)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_nanos_.fetch_add(static_cast<std::int64_t>(seconds * 1e9),
                         std::memory_order_relaxed);
}

double Histogram::total_seconds() const {
  return static_cast<double>(total_nanos_.load(std::memory_order_relaxed)) * 1e-9;
}

double Histogram::quantile(double q) const {
  const std::int64_t n = count();
  if (n <= 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n);
  double cumulative = 0.0;
  for (int i = 0; i <= kBuckets; ++i) {
    const auto in_bucket = static_cast<double>(
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed));
    if (in_bucket <= 0.0) {
      continue;
    }
    if (cumulative + in_bucket >= target) {
      const double lower = i == 0 ? 0.0 : bucket_bound(i - 1);
      const double upper = bucket_bound(std::min(i, kBuckets - 1));
      const double fraction = std::clamp((target - cumulative) / in_bucket, 0.0, 1.0);
      return lower + fraction * (upper - lower);
    }
    cumulative += in_bucket;
  }
  return bucket_bound(kBuckets - 1);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  util::MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  util::MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

std::string MetricsRegistry::text_report() const {
  util::MutexLock lock(mutex_);
  std::ostringstream out;
  out << "metrics:\n";
  std::size_t width = 0;
  for (const auto& [name, unused] : counters_) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, unused] : histograms_) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, value] : counters_) {
    out << "  " << std::left << std::setw(static_cast<int>(width)) << name << "  "
        << value->value() << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    out << "  " << std::left << std::setw(static_cast<int>(width)) << name << "  count "
        << histogram->count() << ", total " << format_seconds(histogram->total_seconds())
        << ", p50 " << format_seconds(histogram->quantile(0.50)) << ", p95 "
        << format_seconds(histogram->quantile(0.95)) << "\n";
  }
  return out.str();
}

std::string MetricsRegistry::json() const {
  util::MutexLock lock(mutex_);
  std::ostringstream out;
  out << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    out << (first ? "" : ", ") << "\"" << name << "\": " << value->value();
    first = false;
  }
  out << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    out << (first ? "" : ", ") << "\"" << name << "\": {\"count\": " << histogram->count()
        << ", \"total_seconds\": " << histogram->total_seconds()
        << ", \"p50\": " << histogram->quantile(0.50)
        << ", \"p95\": " << histogram->quantile(0.95) << "}";
    first = false;
  }
  out << "}}";
  return out.str();
}

}  // namespace cohls::engine
