// Sharded, thread-safe, capacity-bounded (LRU) cache of per-layer solutions,
// keyed by the canonical layer signature. Solutions are stored in a
// device-id- and operation-id-independent form (canonical ranks), so a hit
// can be decoded into any context that produced the same signature —
// replicated pipelines, re-submitted assays, converged re-synthesis
// iterations. Lookup compares the full signature text, so a 64-bit hash
// collision degrades to a miss, never to a wrong answer.
//
// Caching is only sound when the per-layer solver is deterministic for a
// given context; wall-clock MILP budgets violate that, so the batch engine
// replaces them with node budgets (see BatchOptions::deterministic_budgets).
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/solve_hooks.hpp"
#include "engine/layer_signature.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace cohls::engine {

struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t stores = 0;
  std::int64_t evictions = 0;

  [[nodiscard]] double hit_rate() const {
    const std::int64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
};

class LayerSolutionCache final : public core::LayerSolveCache {
 public:
  /// `capacity` bounds the number of cached layer solutions across all
  /// shards; `shards` spreads lock contention (clamped to [1, capacity]).
  explicit LayerSolutionCache(std::size_t capacity = 4096, int shards = 16);

  /// Never throws business logic at callers: uncacheable contexts and
  /// signature mismatches simply miss.
  [[nodiscard]] std::optional<core::LayerOutcome> lookup(
      const core::LayerSolveContext& context) override;
  void store(const core::LayerSolveContext& context,
             const core::LayerOutcome& outcome) override;

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Debug/test mode: on every hit, also solve the layer from scratch and
  /// assert the solutions are identical. Expensive — defeats the cache's
  /// purpose — but turns any signature-completeness bug into a loud failure.
  void set_verify_hits(bool verify) { verify_hits_ = verify; }

  // --- canonical solution form (exposed for white-box tests) ---------------
  struct CachedItem {
    int op_rank = 0;      ///< rank of the op within the layer (id order)
    int device_ref = 0;   ///< < |inherited|: inventory position; else created
    std::int64_t start = 0;
    std::int64_t duration = 0;
    std::int64_t transport = 0;

    friend bool operator==(const CachedItem&, const CachedItem&) = default;
  };
  struct CachedSolution {
    std::vector<CachedItem> items;  ///< in schedule emission order
    std::vector<model::DeviceConfig> created;  ///< instantiation order
    std::vector<int> consumed_hints;           ///< positions in request.hints
    bool used_ilp = false;
    double score = 0.0;
    long milp_nodes = 0;

    friend bool operator==(const CachedSolution&, const CachedSolution&) = default;
  };

  /// Canonicalizes an outcome for storage.
  [[nodiscard]] static CachedSolution encode(const core::LayerSolveContext& context,
                                             const core::LayerOutcome& outcome);
  /// Reconstructs an outcome in the given context (instantiates the created
  /// devices into a copy of the context's inventory).
  [[nodiscard]] static core::LayerOutcome decode(const core::LayerSolveContext& context,
                                                 const CachedSolution& cached);

 private:
  struct Entry {
    std::string key;
    CachedSolution value;
  };
  struct Shard {
    mutable util::Mutex mutex;
    /// front = most recently used. The index is lookup-only (find/erase/
    /// emplace) — it is never iterated, so its unordered order can't leak
    /// into any output (cohls_check S101 guards the invariant).
    std::list<Entry> lru COHLS_GUARDED_BY(mutex);
    std::unordered_map<std::string_view, std::list<Entry>::iterator> index
        COHLS_GUARDED_BY(mutex);
    std::int64_t hits COHLS_GUARDED_BY(mutex) = 0;
    std::int64_t misses COHLS_GUARDED_BY(mutex) = 0;
    std::int64_t stores COHLS_GUARDED_BY(mutex) = 0;
    std::int64_t evictions COHLS_GUARDED_BY(mutex) = 0;
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t hash) {
    return shards_[static_cast<std::size_t>(hash % shards_.size())];
  }

  std::size_t capacity_;
  std::size_t per_shard_capacity_;
  std::vector<Shard> shards_;
  bool verify_hits_ = false;
};

}  // namespace cohls::engine
