#include "engine/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace cohls::engine {

ThreadPool::ThreadPool(int threads) {
  threads = std::max(threads, 1);
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

std::future<void> ThreadPool::submit(std::function<void(const CancellationToken&)> job,
                                     double deadline_seconds) {
  // The token is fixed at submission so the deadline covers queue wait too:
  // a saturated pool cannot grant a job more budget than its caller asked.
  CancellationToken token = stop_source_.token_with_deadline(deadline_seconds);
  std::packaged_task<void()> task(
      [job = std::move(job), token = std::move(token)] { job(token); });
  std::future<void> future = task.get_future();
  {
    util::MutexLock lock(mutex_);
    if (shutdown_ || discard_queued_) {
      // Late submission: fail the future instead of silently dropping it.
      try {
        throw CancelledError("thread pool stopped");
      } catch (...) {
        std::promise<void> broken;
        future = broken.get_future();
        broken.set_exception(std::current_exception());
      }
      return future;
    }
    queue_.push_back(Job{std::move(task)});
    ++in_flight_;
  }
  wake_.notify_one();
  return future;
}

void ThreadPool::stop() {
  std::deque<Job> abandoned;
  {
    util::MutexLock lock(mutex_);
    discard_queued_ = true;
    abandoned.swap(queue_);
    in_flight_ -= static_cast<int>(abandoned.size());
  }
  stop_source_.request_stop();
  wake_.notify_all();
  // Dropping the abandoned tasks breaks their futures with
  // std::future_error(broken_promise) — the "never ran" signal callers of
  // stop() are expected to tolerate. Jobs already running observe their
  // token and wind down cooperatively.
  abandoned.clear();
}

int ThreadPool::pending() const {
  util::MutexLock lock(mutex_);
  return in_flight_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    Job job;
    {
      util::MutexLock lock(mutex_);
      while (!work_available()) {
        wake_.wait(mutex_);
      }
      if (queue_.empty()) {
        return;  // shutdown with a drained queue
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job.task();  // packaged_task captures exceptions into the future
    {
      util::MutexLock lock(mutex_);
      --in_flight_;
    }
  }
}

}  // namespace cohls::engine
