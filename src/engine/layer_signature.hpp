// Canonical layer-solve signatures: the cache key of the layer-solution
// cache. A signature is a complete, normalized serialization of everything
// the per-layer solver reads — the layer's operation DAG (attributes,
// intra-layer dependency edges with transport times, prior-parent bindings,
// and the attribute structure of the full descendant cone the scheduler's
// lookahead inspects), the inherited device inventory, hint and path
// context, the cost model, and the engine budgets.
//
// Normalization renumbers operations and devices to dense ranks and drops
// names and raw ids, so two layers produced by replicated per-cell
// pipelines — or by re-submitting the same assay — share one key. The
// normalization is deliberately restricted to *monotone* relabelings: the
// list scheduler and the ILP tie-break in id order, so an arbitrary
// permutation between isomorphic layers would not commute with the solver
// and a cache hit could return a result that differs from a fresh solve,
// breaking bit-identical determinism. Under monotone relabeling the solver
// is equivariant, and a hit is exactly a fresh solve.
//
// Equal signature strings imply equal solver inputs; the cache compares
// full strings (not just hashes), so hash collisions cannot alias two
// different layers.
#pragma once

#include <cstdint>
#include <string>

#include "core/solve_hooks.hpp"

namespace cohls::engine {

struct LayerSignature {
  /// The complete canonical serialization (the exact-compare cache key).
  std::string text;
  /// FNV-1a hash of `text` (shard selection and index buckets).
  std::uint64_t hash = 0;
};

/// False for contexts the cache must not serve: custom binding policies
/// (std::function hooks have no canonical form) and MILP warm starts.
[[nodiscard]] bool cacheable(const core::LayerSolveContext& context);

/// Builds the canonical signature; requires cacheable(context).
[[nodiscard]] LayerSignature layer_signature(const core::LayerSolveContext& context);

[[nodiscard]] std::uint64_t fnv1a(const std::string& text);

}  // namespace cohls::engine
