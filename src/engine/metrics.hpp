// Run metrics for the batch-synthesis engine: named monotonic counters and
// latency histograms, safe to update from many worker threads without
// coordination beyond atomics. A registry renders itself as an aligned text
// report (for terminals) and as a machine-readable JSON dump (for CI and
// dashboards). Metric objects are created on first use and live as long as
// the registry; references handed out stay valid, so hot paths can cache
// them and update lock-free.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace cohls::engine {

/// A monotonically increasing counter.
class Counter {
 public:
  void add(std::int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void increment() { add(1); }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// A latency histogram over geometric buckets (factor 2 from 1 microsecond
/// up; everything slower than the last boundary lands in an overflow
/// bucket). Quantiles are estimated by linear interpolation within the
/// containing bucket — coarse, but monotone, thread-safe and allocation-free.
class Histogram {
 public:
  static constexpr int kBuckets = 32;

  void observe(double seconds);

  [[nodiscard]] std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double total_seconds() const;
  /// Estimated q-quantile in seconds, q in [0, 1]; 0 when empty.
  [[nodiscard]] double quantile(double q) const;

  /// Upper boundary of bucket `i` in seconds (exposed for tests).
  [[nodiscard]] static double bucket_bound(int i);

 private:
  std::array<std::atomic<std::int64_t>, kBuckets + 1> buckets_{};
  std::atomic<std::int64_t> count_{0};
  /// Total in nanoseconds so the sum can be a lock-free integer atomic.
  std::atomic<std::int64_t> total_nanos_{0};
};

/// Named metrics, created on demand. Reports list metrics in name order, so
/// output is stable across runs and thread schedules.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Aligned human-readable report.
  [[nodiscard]] std::string text_report() const;
  /// {"counters": {name: value, ...},
  ///  "histograms": {name: {"count": n, "total_seconds": s,
  ///                        "p50": s, "p95": s}, ...}}
  [[nodiscard]] std::string json() const;

 private:
  mutable util::Mutex mutex_;
  /// std::map so reports iterate in key order — byte-stable output across
  /// runs and thread schedules (cohls_check S101 forbids unordered
  /// iteration on emission paths).
  std::map<std::string, std::unique_ptr<Counter>> counters_ COHLS_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      COHLS_GUARDED_BY(mutex_);
};

}  // namespace cohls::engine
