// The concurrent batch-synthesis engine: fans a manifest of assays out
// across a thread pool, sharing one layer-solution cache and one metrics
// registry among the workers. Results are reported in manifest order
// regardless of completion order, and — because the cache key is a complete
// canonical signature and the per-layer solver budgets are deterministic —
// the synthesized results are bit-identical for any job count.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/progressive_resynthesis.hpp"
#include "diag/diagnostic.hpp"
#include "engine/layer_cache.hpp"
#include "engine/metrics.hpp"
#include "engine/thread_pool.hpp"
#include "sim/fleet.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace cohls::engine {

/// One unit of work: an assay, by file path or inline text.
struct BatchJob {
  /// Display name (defaults to the path / assay name when empty).
  std::string name;
  /// Assay source: `text` wins when set, else `path` is read.
  std::string path;
  std::optional<std::string> text;
  /// Synthesis configuration for this job.
  core::SynthesisOptions options;
  /// Use the modified conventional baseline instead (uncached policy pass).
  bool conventional = false;
  /// Per-job wall-clock budget in seconds (0 = none). Measured from
  /// submission, so queue wait counts against the job.
  double deadline_seconds = 0.0;
  /// Fault-plan DSL text (see sim::parse_fault_plan). When set, the
  /// certified schedule is replayed against the plan and, if the run
  /// breaks, the recovery re-synthesizer is invoked; an unrecoverable fault
  /// reports JobStatus::RunFailed.
  std::optional<std::string> fault_plan;
  /// Seed of the fault-injection replay (indeterminate attempt sampling).
  std::uint64_t simulate_seed = 1;
  /// Monte-Carlo fleet: when > 0, the certified schedule is replayed this
  /// many times with per-run seeds derived from `fleet_seed`, optionally
  /// under `hazard_spec`-sampled device failures, and reduced into
  /// reliability metrics (BatchResult::fleet). Scripted `fault_plan` events
  /// replay in every fleet run.
  int fleet_runs = 0;
  /// Hazard spec (see sim::parse_hazard_spec), e.g.
  /// "exp:5000; heating-pad=weibull:2000,1.5". Empty = no sampled failures.
  std::string hazard_spec;
  std::uint64_t fleet_seed = 1;
  /// Probe degraded-mode recovery (core::recover) on every broken fleet run
  /// so the summary reports a recovery success rate.
  bool fleet_recover = false;
  /// Recovery rounds per mission (--recover-rounds): the fault-injected
  /// replay and every broken fleet run are driven through the re-entrant
  /// mission loop (core::run_mission), surviving up to this many faults
  /// before freezing with COHLS-E305. 1 reproduces single-fault recovery.
  int recover_rounds = 1;
  /// Per-round recovery wall budget in seconds (--recover-budget, 0 = none).
  /// A round that blows it — or the job deadline — degrades to a
  /// heuristic-only continuation (BatchResult::degraded) instead of failing
  /// the job.
  double recover_budget_seconds = 0.0;
};

enum class JobStatus {
  Ok,
  ParseError,  ///< the assay text did not parse
  LintFailed,  ///< the pre-solve linter rejected the assay; no solver ran
  Infeasible,  ///< synthesis proved there is no feasible schedule
  Invalid,     ///< a result was produced but failed certification
  RunFailed,   ///< the fault-injected replay broke and recovery failed
  Cancelled,   ///< deadline or engine stop fired mid-synthesis
  Error,       ///< any other failure (unreadable file, internal error)
};

[[nodiscard]] std::string to_string(JobStatus status);

struct BatchRowSummary {
  std::string execution_time;  ///< symbolic, e.g. "277m+I1"
  int devices = 0;
  int paths = 0;
  int layers = 0;
  int resynthesis_iterations = 0;
  double objective = 0.0;
};

struct BatchResult {
  std::string name;
  JobStatus status = JobStatus::Error;
  /// Failure detail (exception message, first diagnostic) when not Ok.
  std::string detail;
  /// Structured diagnostics for this job: lint findings (including parse
  /// errors as COHLS-E100) and, on Invalid, the certifier's findings.
  std::vector<diag::Diagnostic> diagnostics;
  BatchRowSummary summary;
  /// The io::to_text serialization of the result (empty unless Ok/Invalid);
  /// this is the artifact the determinism guarantee is stated over.
  std::string result_text;
  double wall_seconds = 0.0;
  /// The stalled MILP was downgraded to the list-scheduling heuristic
  /// (BatchOptions::stall_seconds). Never silent: reported here and in
  /// results_json.
  bool degraded = false;
  /// Transient-error re-runs this job consumed (BatchOptions::max_retries).
  int retries = 0;
  /// Fault-injection replay outcome ("completed" / "attempts-exhausted" /
  /// "device-failed"); empty when the job carried no fault plan.
  std::string run_outcome;
  /// The replay broke and the recovery mission ran.
  bool recovery_attempted = false;
  /// The mission produced a certified end-to-end continuation.
  bool recovered = false;
  /// Recovery rounds the fault-injection mission performed (faults survived).
  int recovery_rounds = 0;
  /// A recovery round fell back to the heuristic-only ladder under deadline
  /// pressure (also sets `degraded`).
  bool recovery_degraded = false;
  /// Cumulative elapsed-time credit the mission carried across rounds.
  Minutes recovery_credit{0};
  /// Fleet-simulation reduction; set iff the job requested fleet_runs > 0
  /// and the schedule certified.
  std::optional<sim::FleetSummary> fleet;
};

struct BatchOptions {
  /// Worker threads.
  int jobs = 1;
  /// Layer-solution cache capacity (entries); 0 disables the cache.
  std::size_t cache_capacity = 4096;
  /// Lock shards inside the layer cache. Purely a contention knob: hit/miss
  /// behaviour, reported stats and results are identical for any value
  /// (tests sweep this to prove it).
  int cache_shards = 16;
  /// Replace wall-clock MILP budgets with node budgets, so a layer solve
  /// returns the same result regardless of machine load. Required for the
  /// cache to be sound and for --jobs N determinism; disable only for
  /// latency experiments.
  bool deterministic_budgets = true;
  /// Worker threads inside each per-layer MILP solve (MilpOptions::threads).
  /// 0 means auto: share the machine with the batch pool so that
  /// jobs x milp-threads never exceeds the hardware threads (degrading to 1
  /// per solve under full batch load). Explicit values are clamped to the
  /// same budget. The default of 1 keeps the engine's bit-determinism
  /// guarantee; with more workers per solve, results are still
  /// objective-identical but incumbent ties may resolve differently.
  int milp_threads = 1;
  /// Default per-job deadline applied when a job does not set its own.
  double default_deadline_seconds = 0.0;
  /// Debug: verify every cache hit against a fresh solve (see
  /// LayerSolutionCache::set_verify_hits).
  bool verify_cache_hits = false;
  /// Lint every assay before synthesis; jobs with lint errors report
  /// JobStatus::LintFailed and never reach the solver.
  bool lint = true;
  /// Lint warnings also fail the job (--Werror).
  bool warnings_as_errors = false;
  /// Only lint: no job runs the solver; clean jobs report Ok.
  bool lint_only = false;
  /// Transient-failure re-runs per job (JobStatus::Error class only — parse
  /// errors, lint failures, infeasibility and cancellation are final).
  int max_retries = 1;
  /// Sleep before the first re-run; doubles per further re-run.
  double retry_backoff_seconds = 0.05;
  /// Watchdog: when a synthesis runs longer than this (seconds), it is
  /// cancelled and re-run with the MILP disabled (pure list-scheduling
  /// heuristic). The downgrade is reported as BatchResult::degraded, never
  /// applied silently. 0 disables the watchdog.
  double stall_seconds = 0.0;
};

/// Resolves a per-solve MILP worker count against the batch job parallelism
/// so the two levels draw from one concurrency budget: with B hardware
/// threads and J jobs, each solve gets at most max(1, B / J) workers.
/// `requested` 0 means auto (use the whole per-job share); explicit requests
/// are clamped to the share. Always returns >= 1. `hardware_threads` 0 means
/// query the machine.
[[nodiscard]] int arbitrated_milp_threads(int requested, int jobs,
                                          unsigned hardware_threads = 0);

class BatchEngine {
 public:
  explicit BatchEngine(BatchOptions options = {});

  /// Runs all jobs to completion (or to their deadlines) and returns one
  /// result per job, in input order. May be called repeatedly; the cache
  /// and metrics persist across calls, so a re-submitted assay hits.
  [[nodiscard]] std::vector<BatchResult> run(const std::vector<BatchJob>& jobs);

  /// Requests cancellation of the batch currently in flight (no-op when
  /// idle). Running jobs report JobStatus::Cancelled; queued jobs never
  /// start.
  void stop();

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const LayerSolutionCache& cache() const { return cache_; }

  /// Metrics text report including cache totals.
  [[nodiscard]] std::string report() const;
  /// Metrics JSON dump; cache totals appear as counters
  /// (layer_cache_hits/misses/stores/evictions) plus "cache_hit_rate".
  [[nodiscard]] std::string metrics_json() const;

 private:
  [[nodiscard]] BatchResult run_one(const BatchJob& job, const CancellationToken& token);

  BatchOptions options_;
  MetricsRegistry metrics_;
  LayerSolutionCache cache_;
  /// The pool of the run() in flight, so stop() can reach it.
  mutable util::Mutex pool_mutex_;
  ThreadPool* active_pool_ COHLS_GUARDED_BY(pool_mutex_) = nullptr;
};

/// Renders batch results as a JSON document: one object per job with name,
/// status, detail, wall_seconds, the summary block, and a `diagnostics`
/// array (diag::json_object per entry). This is the machine-readable
/// counterpart of the cohls_batch table.
///
/// With `stable` set, timing fields (wall_seconds — the only nondeterministic
/// bytes in the document) are emitted as 0, making the rendering
/// byte-identical across repeat runs, shard layouts and --jobs values
/// whenever the results themselves are (see the engine's determinism
/// guarantee). Tests and diffable artifacts use this mode.
[[nodiscard]] std::string results_json(const std::vector<BatchResult>& rows,
                                       bool stable = false);

/// Parses a manifest: one assay-file path per line, '#' comments and blank
/// lines ignored; relative paths resolve against `base_dir`.
[[nodiscard]] std::vector<BatchJob> jobs_from_manifest(
    const std::string& manifest_text, const std::string& base_dir,
    const core::SynthesisOptions& options = {});

}  // namespace cohls::engine
