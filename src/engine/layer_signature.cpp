#include "engine/layer_signature.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "util/check.hpp"

namespace cohls::engine {

namespace {

void put_double(std::ostringstream& out, double value) {
  out.precision(std::numeric_limits<double>::max_digits10);
  out << value;
}

void put_config(std::ostringstream& out, const model::DeviceConfig& config) {
  out << (config.container == model::ContainerKind::Ring ? 'R' : 'C')
      << static_cast<int>(config.capacity) << "a{";
  bool first = true;
  for (const model::AccessoryId id : config.accessories.to_list()) {
    out << (first ? "" : ",") << id;
    first = false;
  }
  out << '}';
}

void put_op_attributes(std::ostringstream& out, const model::Operation& op) {
  out << " c=";
  if (op.container().has_value()) {
    out << (*op.container() == model::ContainerKind::Ring ? 'R' : 'C');
  } else {
    out << '*';
  }
  out << " k=";
  if (op.capacity().has_value()) {
    out << static_cast<int>(*op.capacity());
  } else {
    out << '*';
  }
  out << " a{";
  bool first = true;
  for (const model::AccessoryId id : op.accessories().to_list()) {
    out << (first ? "" : ",") << id;
    first = false;
  }
  out << "} d=" << op.duration().count() << (op.indeterminate() ? " ind" : "");
}

}  // namespace

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : text) {
    hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    hash *= 1099511628211ULL;
  }
  return hash;
}

bool cacheable(const core::LayerSolveContext& context) {
  // std::function policies have no canonical form, and a warm start changes
  // what the MILP returns; both must bypass the cache. Recovery pins force
  // bindings the signature does not encode, so they bypass it too.
  return !context.request.binds && !context.request.new_config &&
         context.request.pinned.empty() &&
         !context.engine.milp.warm_start.has_value();
}

LayerSignature layer_signature(const core::LayerSolveContext& context) {
  COHLS_EXPECT(cacheable(context), "layer context is not cacheable");
  const schedule::LayerRequest& request = context.request;
  const model::Assay& assay = context.assay;

  // Canonical operation numbering: dense rank in id order, over the layer's
  // ops plus the full descendant cone (the scheduler's pipeline lookahead
  // reads descendant attributes arbitrarily deep).
  std::set<OperationId> cone(request.ops.begin(), request.ops.end());
  std::vector<OperationId> frontier(request.ops.begin(), request.ops.end());
  while (!frontier.empty()) {
    const OperationId current = frontier.back();
    frontier.pop_back();
    for (const OperationId child : assay.children(current)) {
      if (cone.insert(child).second) {
        frontier.push_back(child);
      }
    }
  }
  std::map<OperationId, int> rank;
  for (const OperationId id : cone) {
    rank.emplace(id, static_cast<int>(rank.size()));
  }
  const std::set<OperationId> in_layer(request.ops.begin(), request.ops.end());

  // Canonical device numbering: position in the inherited inventory.
  std::map<DeviceId, int> device_rank;
  for (const DeviceId id : request.usable_devices) {
    device_rank.emplace(id, static_cast<int>(device_rank.size()));
  }

  std::ostringstream out;
  out << "cohls-layer-sig v1\n";

  // Engine budgets — a different budget may legitimately change the result.
  const core::EngineOptions& engine = context.engine;
  out << "engine ilp=" << engine.enable_ilp << " ops=" << engine.ilp_max_ops
      << " dev=" << engine.ilp_max_devices << " slots=" << engine.ilp_new_slots
      << " nodes=" << engine.milp.max_nodes << " tl=";
  put_double(out, engine.milp.time_limit_seconds);
  out << " tol=";
  put_double(out, engine.milp.integrality_tolerance);
  out << " gap=";
  put_double(out, engine.milp.absolute_gap);
  out << " round=" << engine.milp.enable_rounding_heuristic << "\n";

  // Cost model and registry processing costs.
  const model::CostModel& costs = context.costs;
  out << "w";
  for (const double w : {costs.weight_time(), costs.weight_area(),
                         costs.weight_processing(), costs.weight_paths()}) {
    out << ' ';
    put_double(out, w);
  }
  out << "\narea";
  for (const model::ContainerKind kind :
       {model::ContainerKind::Ring, model::ContainerKind::Chamber}) {
    for (const model::Capacity capacity : model::kAllCapacities) {
      if (!model::capacity_allowed(kind, capacity)) {
        continue;
      }
      out << ' ';
      put_double(out, costs.area(kind, capacity));
      out << '/';
      put_double(out, costs.container_processing(kind, capacity));
    }
  }
  out << "\nacc";
  const model::AccessoryRegistry& registry = assay.registry();
  const int accessory_count = registry.count();
  for (model::AccessoryId id = 0; id < accessory_count; ++id) {
    out << ' ';
    put_double(out, registry.processing_cost(id));
  }
  out << '\n';

  // Layer-request scalars. The layer id itself is deliberately absent: it
  // only tags the output and is re-applied on decode.
  out << "req slot=" << request.slot_size.count() << " new=" << request.allow_new_devices
      << " free=" << (context.inventory.max_devices() - context.inventory.size())
      << " t0=" << context.transport.uniform_time().count() << "\n";

  // Inherited devices, in canonical (inventory) order.
  for (const DeviceId id : request.usable_devices) {
    out << "dev ";
    put_config(out, context.inventory.device(id).config);
    out << '\n';
  }
  // Hints, in request order (the order is visible to the solver).
  for (const schedule::DeviceHint& hint : request.hints) {
    out << "hint ";
    put_config(out, hint.config);
    out << '\n';
  }
  // Existing paths between inherited devices, canonically numbered.
  std::vector<std::pair<int, int>> paths;
  for (const schedule::DevicePath& path : request.existing_paths) {
    const auto a = device_rank.find(path.first);
    const auto b = device_rank.find(path.second);
    COHLS_ASSERT(a != device_rank.end() && b != device_rank.end(),
                 "existing path references a device outside the inventory");
    paths.emplace_back(std::min(a->second, b->second), std::max(a->second, b->second));
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& [a, b] : paths) {
    out << "path " << a << '-' << b << '\n';
  }

  // Operations of the cone in canonical order. Layer members carry their
  // full scheduling context (parent edges with transport, prior bindings);
  // cone-only members carry the attributes the lookahead reads.
  for (const OperationId id : cone) {
    const model::Operation& op = assay.operation(id);
    const bool member = in_layer.count(id) > 0;
    out << "op " << rank.at(id) << (member ? " L" : " D");
    put_op_attributes(out, op);
    if (member) {
      out << " par[";
      bool first = true;
      for (const OperationId parent : op.parents()) {
        out << (first ? "" : " ");
        first = false;
        const std::int64_t t = context.transport.edge_time(parent, id).count();
        if (in_layer.count(parent)) {
          out << 'L' << rank.at(parent) << '@' << t;
        } else {
          const auto prior = request.prior_binding.find(parent);
          if (prior != request.prior_binding.end()) {
            const auto bound = device_rank.find(prior->second);
            COHLS_ASSERT(bound != device_rank.end(),
                         "prior binding references a device outside the inventory");
            out << 'P' << bound->second << '@' << t;
          } else {
            out << "U@" << t;
          }
        }
      }
      out << ']';
    }
    out << " ch[";
    std::vector<std::pair<int, std::int64_t>> children;
    for (const OperationId child : assay.children(id)) {
      children.emplace_back(rank.at(child), context.transport.edge_time(id, child).count());
    }
    std::sort(children.begin(), children.end());
    bool first = true;
    for (const auto& [child_rank, t] : children) {
      out << (first ? "" : " ") << child_rank << '@' << t;
      first = false;
    }
    out << "]\n";
  }

  LayerSignature signature;
  signature.text = out.str();
  signature.hash = fnv1a(signature.text);
  return signature;
}

}  // namespace cohls::engine
