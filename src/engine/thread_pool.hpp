// Fixed-size thread-pool executor with a FIFO job queue. Each submitted job
// receives a CancellationToken derived from the pool-wide stop source plus
// the job's own deadline, so shutdown and per-job time budgets reach
// cooperative solver loops through one handle. The pool never drops queued
// work on normal destruction (it drains the queue, then joins); `stop()`
// requests cancellation of everything and discards jobs that have not
// started.
#pragma once

#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/cancellation.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace cohls::engine {

class ThreadPool {
 public:
  /// Spawns `threads` workers (minimum 1).
  explicit ThreadPool(int threads);

  /// Drains remaining jobs, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job. The job's token cancels when `stop()` is called or —
  /// with `deadline_seconds > 0` — once that budget (measured from
  /// submission) elapses. The returned future carries the job's exception,
  /// if any.
  std::future<void> submit(std::function<void(const CancellationToken&)> job,
                           double deadline_seconds = 0.0);

  /// Requests cancellation: running jobs see their token fire, queued jobs
  /// that have not started are abandoned (their futures get a
  /// CancelledError).
  void stop();

  [[nodiscard]] int thread_count() const { return static_cast<int>(workers_.size()); }
  /// Jobs submitted but not yet finished.
  [[nodiscard]] int pending() const;

 private:
  struct Job {
    std::packaged_task<void()> task;
  };

  void worker_loop();
  /// Worker wake condition; the wait loop re-tests it after every wakeup.
  [[nodiscard]] bool work_available() const COHLS_REQUIRES(mutex_) {
    return shutdown_ || !queue_.empty();
  }

  CancellationSource stop_source_;
  mutable util::Mutex mutex_;
  util::CondVar wake_;
  std::deque<Job> queue_ COHLS_GUARDED_BY(mutex_);
  int in_flight_ COHLS_GUARDED_BY(mutex_) = 0;  // queued + running
  bool shutdown_ COHLS_GUARDED_BY(mutex_) = false;
  bool discard_queued_ COHLS_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace cohls::engine
