#include "engine/batch.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <utility>

#include "analysis/linter.hpp"
#include "baseline/conventional.hpp"
#include "core/recovery.hpp"
#include "engine/thread_pool.hpp"
#include "io/assay_text.hpp"
#include "io/result_text.hpp"
#include "schedule/objective.hpp"
#include "schedule/validate.hpp"
#include "sim/runtime.hpp"
#include "util/check.hpp"

namespace cohls::engine {

namespace {

/// Adapts the core's per-layer solve events onto the metrics registry.
class MetricsObserver final : public core::SolveObserver {
 public:
  explicit MetricsObserver(MetricsRegistry& metrics)
      : layers_solved_(metrics.counter("layers_solved")),
        layer_cache_hits_(metrics.counter("layer_cache_hits")),
        ilp_layers_(metrics.counter("ilp_layers")),
        milp_nodes_(metrics.counter("milp_nodes")),
        lp_pivots_(metrics.counter("lp_pivots")),
        lp_warm_solves_(metrics.counter("lp_warm_solves")),
        lp_cold_solves_(metrics.counter("lp_cold_solves")),
        lp_refactorizations_(metrics.counter("lp_refactorizations")),
        milp_parallel_solves_(metrics.counter("milp_parallel_solves")),
        milp_steals_(metrics.counter("milp_steals")),
        milp_incumbent_updates_(metrics.counter("milp_incumbent_updates")),
        milp_incumbent_races_(metrics.counter("milp_incumbent_races")),
        milp_bound_prunes_(metrics.counter("milp_bound_prunes")),
        milp_cutoff_prunes_(metrics.counter("milp_cutoff_prunes")),
        milp_dive_lp_solves_(metrics.counter("milp_dive_lp_solves")),
        milp_dive_incumbents_(metrics.counter("milp_dive_incumbents")),
        solve_seconds_(metrics.histogram("layer_solve_seconds")),
        milp_idle_seconds_(metrics.histogram("milp_worker_idle_seconds")) {}

  void on_layer_solve(const core::LayerSolveEvent& event) override {
    if (event.cache_hit) {
      layer_cache_hits_.increment();
    } else {
      layers_solved_.increment();
    }
    if (event.used_ilp) {
      ilp_layers_.increment();
    }
    milp_nodes_.add(event.milp_nodes);
    lp_pivots_.add(event.lp_pivots);
    lp_warm_solves_.add(event.lp_warm_solves);
    lp_cold_solves_.add(event.lp_cold_solves);
    lp_refactorizations_.add(event.lp_refactorizations);
    if (event.milp_threads > 1) {
      milp_parallel_solves_.increment();
      milp_steals_.add(event.milp_steals);
      milp_incumbent_updates_.add(event.milp_incumbent_updates);
      milp_incumbent_races_.add(event.milp_incumbent_races);
      milp_idle_seconds_.observe(event.milp_idle_seconds);
    }
    milp_bound_prunes_.add(event.milp_bound_prunes);
    milp_cutoff_prunes_.add(event.milp_cutoff_prunes);
    milp_dive_lp_solves_.add(event.milp_dive_lp_solves);
    if (event.milp_dive_found_incumbent) {
      milp_dive_incumbents_.increment();
    }
    solve_seconds_.observe(event.seconds);
  }

 private:
  Counter& layers_solved_;
  Counter& layer_cache_hits_;
  Counter& ilp_layers_;
  Counter& milp_nodes_;
  Counter& lp_pivots_;
  Counter& lp_warm_solves_;
  Counter& lp_cold_solves_;
  Counter& lp_refactorizations_;
  Counter& milp_parallel_solves_;
  Counter& milp_steals_;
  Counter& milp_incumbent_updates_;
  Counter& milp_incumbent_races_;
  Counter& milp_bound_prunes_;
  Counter& milp_cutoff_prunes_;
  Counter& milp_dive_lp_solves_;
  Counter& milp_dive_incumbents_;
  Histogram& solve_seconds_;
  Histogram& milp_idle_seconds_;
};

std::string read_file(const std::string& path) {
  std::ifstream file(path);
  COHLS_EXPECT(static_cast<bool>(file), "cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

/// Token-aware retry backoff: never sleeps through a stop request.
void backoff_sleep(double seconds, const CancellationToken& token) {
  token.check("retry backoff");
  if (seconds > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
  token.check("retry backoff");
}

}  // namespace

std::string to_string(JobStatus status) {
  switch (status) {
    case JobStatus::Ok:
      return "ok";
    case JobStatus::ParseError:
      return "parse-error";
    case JobStatus::LintFailed:
      return "lint_failed";
    case JobStatus::Infeasible:
      return "infeasible";
    case JobStatus::Invalid:
      return "invalid";
    case JobStatus::RunFailed:
      return "run-failed";
    case JobStatus::Cancelled:
      return "cancelled";
    case JobStatus::Error:
      return "error";
  }
  return "unknown";
}

int arbitrated_milp_threads(int requested, int jobs, unsigned hardware_threads) {
  if (hardware_threads == 0) {
    hardware_threads = std::thread::hardware_concurrency();
  }
  const int budget =
      std::max(1, static_cast<int>(hardware_threads) / std::max(1, jobs));
  if (requested <= 0) {
    return budget;  // auto: the whole per-job share
  }
  return std::min(requested, budget);
}

BatchEngine::BatchEngine(BatchOptions options)
    : options_(options),
      cache_(options.cache_capacity > 0 ? options.cache_capacity : 1,
             options.cache_shards) {
  cache_.set_verify_hits(options_.verify_cache_hits);
}

BatchResult BatchEngine::run_one(const BatchJob& job, const CancellationToken& token) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point begin = Clock::now();
  MetricsObserver observer(metrics_);

  BatchResult row;
  row.name = !job.name.empty() ? job.name : job.path;
  try {
    const std::string text = job.text.has_value() ? *job.text : read_file(job.path);

    bool run_solver = true;
    if (options_.lint || options_.lint_only) {
      const analysis::AnalysisOptions lint_options{
          job.options.max_devices, job.options.layering.indeterminate_threshold};
      analysis::LintReport lint = analysis::lint_assay_text(text, lint_options);
      const bool passed = lint.clean(options_.warnings_as_errors);
      row.diagnostics = std::move(lint.diagnostics);
      metrics_.counter(passed ? "lint_passed" : "lint_failed").increment();
      if (!passed) {
        // A lexical failure surfaces as the single COHLS-E100 diagnostic;
        // keep reporting it under the dedicated ParseError status.
        row.status = row.diagnostics.front().code == diag::codes::kParseError
                         ? JobStatus::ParseError
                         : JobStatus::LintFailed;
        row.detail = diag::summary_line(row.diagnostics.front());
        run_solver = false;
      } else if (options_.lint_only) {
        row.status = JobStatus::Ok;
        run_solver = false;
      }
    }
    if (!run_solver) {
      row.wall_seconds =
          std::chrono::duration<double>(Clock::now() - begin).count();
      metrics_.counter("jobs_completed").increment();
      if (row.status != JobStatus::Ok) {
        metrics_.counter("jobs_failed").increment();
      }
      metrics_.histogram("job_seconds").observe(row.wall_seconds);
      return row;
    }

    const model::Assay assay = io::assay_from_text(text);
    if (row.name.empty()) {
      row.name = assay.name();
    }

    core::SynthesisOptions options = job.options;
    options.cancel = token;
    options.observer = &observer;
    if (options_.cache_capacity > 0) {
      options.layer_cache = &cache_;
    }
    // Per-solve workers and batch jobs draw from one concurrency budget, so
    // a fully loaded pool degrades every solve to a single worker instead of
    // oversubscribing the machine.
    options.engine.milp.threads =
        arbitrated_milp_threads(options_.milp_threads, options_.jobs);
    if (options_.deterministic_budgets) {
      // Wall-clock budgets make the layer solver load-dependent, which
      // breaks both the cache and --jobs determinism; fall back to a node
      // budget when the caller left the MILP unbounded.
      options.engine.milp.time_limit_seconds = 0.0;
      if (options.engine.milp.max_nodes <= 0) {
        options.engine.milp.max_nodes = 20000;
      }
    }

    // Resilience ladder. Rung 1: transient-failure retry with exponential
    // backoff — only the generic Error class re-runs; parse errors, lint
    // failures, infeasibility and cancellation are deterministic verdicts
    // and final. Rung 2: the stall watchdog cancels a synthesis that
    // outlives stall_seconds and re-runs it with the MILP disabled; the
    // downgrade is flagged on the row, never applied silently.
    core::SynthesisReport report;
    int retries_left = std::max(0, options_.max_retries);
    double backoff = options_.retry_backoff_seconds;
    for (;;) {
      try {
        if (job.conventional) {
          report = baseline::synthesize_conventional(assay, options);
        } else if (options_.stall_seconds > 0.0) {
          core::SynthesisOptions guarded = options;
          guarded.cancel = token.with_earlier_deadline(options_.stall_seconds);
          try {
            report = core::synthesize(assay, guarded);
          } catch (const CancelledError&) {
            if (token.cancelled()) {
              throw;  // the job deadline or stop(), not the watchdog
            }
            row.degraded = true;
            metrics_.counter("fallbacks_taken").increment();
            core::SynthesisOptions heuristic = options;
            heuristic.engine.enable_ilp = false;
            report = core::synthesize(assay, heuristic);
          }
        } else {
          report = core::synthesize(assay, options);
        }
        break;
      } catch (const io::ParseError&) {
        throw;
      } catch (const CancelledError&) {
        throw;
      } catch (const InfeasibleError&) {
        throw;
      } catch (const std::exception&) {
        if (retries_left == 0) {
          throw;
        }
        --retries_left;
        ++row.retries;
        metrics_.counter("job_retries").increment();
        backoff_sleep(backoff, token);
        backoff *= 2.0;
      }
    }

    const auto certification =
        schedule::certify_result(report.result, assay, report.transport);
    row.status = certification.empty() ? JobStatus::Ok : JobStatus::Invalid;
    if (!certification.empty()) {
      row.detail = diag::summary_line(certification.front());
      row.diagnostics.insert(row.diagnostics.end(), certification.begin(),
                             certification.end());
    }

    std::ostringstream time_text;
    time_text << report.result.total_time(assay);
    row.summary.execution_time = time_text.str();
    row.summary.devices = report.result.used_device_count();
    row.summary.paths = report.result.path_count(assay);
    row.summary.layers = static_cast<int>(report.result.layers.size());
    row.summary.resynthesis_iterations =
        static_cast<int>(report.iterations.size()) - 1;
    row.summary.objective =
        schedule::evaluate_objective(report.result, assay, options.costs)
            .weighted_total;
    row.result_text = io::to_text(report.result, assay);

    // Fault injection: drive the certified schedule through the re-entrant
    // recovery mission — iterated replay → recover → re-certify, surviving
    // up to job.recover_rounds faults with elapsed-time credit threaded
    // across rounds. A recovered mission keeps the job Ok (every
    // continuation is certified); an unrecoverable one reports RunFailed
    // with the E3xx evidence and the fault chain — never a fabricated
    // success. Deadline pressure degrades a round to the heuristic-only
    // ladder (row.degraded) instead of cancelling the job.
    if (row.status == JobStatus::Ok && job.fault_plan.has_value()) {
      sim::RuntimeOptions runtime;
      runtime.seed = job.simulate_seed;
      runtime.faults = sim::parse_fault_plan(*job.fault_plan);
      core::MissionOptions mission;
      mission.synthesis = options;
      mission.max_rounds = std::max(1, job.recover_rounds);
      mission.round_budget_seconds = job.recover_budget_seconds;
      const Clock::time_point recovery_begin = Clock::now();
      const core::MissionOutcome outcome =
          core::run_mission(assay, report.result, runtime, mission);
      // run_outcome keeps its original contract: the outcome of the replay
      // (= the first break when the plan bites; the mission's end-to-end
      // verdict is `recovered`).
      row.run_outcome = std::string(
          sim::to_string(outcome.round_log.empty() ? outcome.final_trace.outcome
                                                   : outcome.round_log.front().outcome));
      if (!outcome.round_log.empty() || !outcome.recovered) {
        row.recovery_attempted = true;
        metrics_.counter("recoveries_attempted").increment();
        metrics_.histogram("recovery_seconds")
            .observe(std::chrono::duration<double>(Clock::now() - recovery_begin)
                         .count());
        row.recovered = outcome.recovered;
        row.recovery_rounds = outcome.rounds;
        row.recovery_degraded = outcome.degraded;
        row.recovery_credit = outcome.credit_carried;
        row.degraded = row.degraded || outcome.degraded;
        metrics_.counter("recovery_rounds").add(outcome.rounds);
        metrics_.histogram("recovery_rounds_per_mission")
            .observe(static_cast<double>(outcome.rounds));
        if (outcome.degraded) {
          metrics_.counter("recoveries_degraded").increment();
        }
        metrics_.counter("recovery_credit_minutes")
            .add(outcome.credit_carried.count());
        if (outcome.recovered) {
          metrics_.counter("recoveries_succeeded").increment();
        } else {
          row.status = JobStatus::RunFailed;
          row.detail =
              !outcome.diagnostics.empty()
                  ? diag::summary_line(outcome.diagnostics.front())
                  : (outcome.final_trace.failure.has_value()
                         ? outcome.final_trace.failure->detail
                         : "fault replay broke the run");
          row.diagnostics.insert(row.diagnostics.end(),
                                 outcome.diagnostics.begin(),
                                 outcome.diagnostics.end());
        }
      }
    }

    // Fleet simulation: thousands of seeded replays of the certified
    // schedule under sampled hazards, reduced into MTTF / recovery-rate /
    // completion-histogram metrics. Deterministic for any worker count.
    if (row.status == JobStatus::Ok && job.fleet_runs > 0) {
      sim::FleetOptions fleet;
      fleet.runs = job.fleet_runs;
      fleet.seed = job.fleet_seed;
      // Fleet workers draw from the same per-job concurrency share as the
      // MILP solves; the reduction is identical either way.
      fleet.jobs = arbitrated_milp_threads(0, options_.jobs);
      fleet.runtime.seed = job.simulate_seed;
      if (job.fault_plan.has_value()) {
        fleet.runtime.faults = sim::parse_fault_plan(*job.fault_plan);
      }
      if (!job.hazard_spec.empty()) {
        fleet.hazard = sim::parse_hazard_spec(job.hazard_spec, assay.registry());
      }
      if (job.fleet_recover) {
        // Broken fleet runs replay through the multi-fault mission loop:
        // the probe re-samples the job's hazard model with the run's own
        // (seed, run) streams, so continuation rounds admit exactly the
        // failures the root sampling clipped — and the reduction stays
        // bit-identical across worker counts.
        const schedule::SynthesisResult& result = report.result;
        const sim::HazardModel& hazard = fleet.hazard;
        const int recover_rounds = std::max(1, job.recover_rounds);
        const double recover_budget = job.recover_budget_seconds;
        const std::uint64_t fleet_seed = job.fleet_seed;
        fleet.mission = [&assay, &result, &options, &hazard, recover_rounds,
                         recover_budget, fleet_seed](
                            const sim::RunTrace&,
                            const sim::RuntimeOptions& run_options,
                            std::uint64_t run) {
          core::MissionOptions mission;
          mission.synthesis = options;
          mission.max_rounds = recover_rounds;
          mission.round_budget_seconds = recover_budget;
          mission.hazard = &hazard;
          mission.hazard_seed = fleet_seed;
          mission.hazard_run = run;
          const core::MissionOutcome outcome =
              core::run_mission(assay, result, run_options, mission);
          sim::MissionReport digest;
          digest.recovered = outcome.recovered;
          digest.rounds = outcome.rounds;
          digest.degraded = outcome.degraded;
          digest.credit = outcome.credit_carried;
          digest.completed_at = outcome.completed_at;
          return digest;
        };
      }
      const Clock::time_point fleet_begin = Clock::now();
      row.fleet = sim::run_fleet(report.result, assay, fleet);
      metrics_.histogram("fleet_seconds")
          .observe(std::chrono::duration<double>(Clock::now() - fleet_begin)
                       .count());
      metrics_.counter("fleet_runs").add(row.fleet->runs);
      metrics_.counter("fleet_breaks")
          .add(row.fleet->device_failed + row.fleet->attempts_exhausted);
      metrics_.counter("fleet_recoveries").add(row.fleet->recovered);
      if (row.fleet->missions > 0) {
        metrics_.counter("fleet_missions").add(row.fleet->missions);
        metrics_.counter("fleet_mission_rounds")
            .add(static_cast<int>(row.fleet->mission_rounds));
        metrics_.counter("fleet_missions_degraded")
            .add(row.fleet->missions_degraded);
        metrics_.counter("fleet_mission_credit_minutes")
            .add(row.fleet->mission_credit.count());
      }
    }
  } catch (const io::ParseError& e) {
    row.status = JobStatus::ParseError;
    row.detail = e.what();
  } catch (const CancelledError& e) {
    row.status = JobStatus::Cancelled;
    row.detail = e.what();
  } catch (const InfeasibleError& e) {
    row.status = JobStatus::Infeasible;
    row.detail = e.what();
  } catch (const sim::FaultPlanError& e) {
    row.status = JobStatus::Error;
    row.detail = std::string{"fault plan: "} + e.what();
  } catch (const sim::HazardSpecError& e) {
    row.status = JobStatus::Error;
    row.detail = std::string{"hazard spec: "} + e.what();
  } catch (const std::exception& e) {
    row.status = JobStatus::Error;
    row.detail = e.what();
  }
  row.wall_seconds = std::chrono::duration<double>(Clock::now() - begin).count();

  metrics_.counter("jobs_completed").increment();
  if (row.status == JobStatus::Cancelled) {
    metrics_.counter("jobs_cancelled").increment();
  } else if (row.status != JobStatus::Ok) {
    metrics_.counter("jobs_failed").increment();
  }
  metrics_.histogram("job_seconds").observe(row.wall_seconds);
  return row;
}

std::vector<BatchResult> BatchEngine::run(const std::vector<BatchJob>& jobs) {
  // Rows are pre-sized so each worker writes its own slot: results come back
  // in manifest order no matter how the pool interleaves the jobs.
  std::vector<BatchResult> rows(jobs.size());
  ThreadPool pool(options_.jobs);
  {
    util::MutexLock lock(pool_mutex_);
    active_pool_ = &pool;
  }

  std::vector<std::future<void>> futures;
  futures.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const BatchJob& job = jobs[i];
    const double deadline = job.deadline_seconds > 0.0
                                ? job.deadline_seconds
                                : options_.default_deadline_seconds;
    futures.push_back(pool.submit(
        [this, &job, &rows, i](const CancellationToken& token) {
          rows[i] = run_one(job, token);
        },
        deadline));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    try {
      futures[i].get();
    } catch (const std::future_error&) {
      // stop() abandoned the queued job before it started.
      rows[i].name = !jobs[i].name.empty() ? jobs[i].name : jobs[i].path;
      rows[i].status = JobStatus::Cancelled;
      rows[i].detail = "batch stopped before the job started";
    } catch (const CancelledError& e) {
      // Submitted after stop(); run_one never ran.
      rows[i].name = !jobs[i].name.empty() ? jobs[i].name : jobs[i].path;
      rows[i].status = JobStatus::Cancelled;
      rows[i].detail = e.what();
    }
  }
  {
    util::MutexLock lock(pool_mutex_);
    active_pool_ = nullptr;
  }
  return rows;
}

void BatchEngine::stop() {
  util::MutexLock lock(pool_mutex_);
  if (active_pool_ != nullptr) {
    active_pool_->stop();
  }
}

std::string BatchEngine::report() const {
  const CacheStats cache = cache_.stats();
  std::ostringstream out;
  out << metrics_.text_report();
  out << "layer cache: " << cache.hits << " hits, " << cache.misses
      << " misses, " << cache.stores << " stores, " << cache.evictions
      << " evictions (hit rate ";
  out.precision(3);
  out << cache.hit_rate() << ", " << cache_.size() << '/' << cache_.capacity()
      << " entries)\n";
  return out.str();
}

std::string BatchEngine::metrics_json() const {
  const CacheStats cache = cache_.stats();
  std::map<std::string, std::int64_t> extra{
      {"layer_cache_hit_count", cache.hits},
      {"layer_cache_miss_count", cache.misses},
      {"layer_cache_store_count", cache.stores},
      {"layer_cache_eviction_count", cache.evictions},
  };
  std::ostringstream out;
  const std::string base = metrics_.json();
  // Splice the cache block into the registry's top-level object.
  COHLS_ASSERT(!base.empty() && base.back() == '}', "malformed metrics JSON");
  out << base.substr(0, base.size() - 1) << ", \"cache\": {";
  bool first = true;
  for (const auto& [name, value] : extra) {
    out << (first ? "" : ", ") << '"' << name << "\": " << value;
    first = false;
  }
  out << ", \"hit_rate\": " << cache.hit_rate() << "}}";
  return out.str();
}

std::string results_json(const std::vector<BatchResult>& rows, bool stable) {
  std::ostringstream out;
  out << "{\"jobs\": [";
  bool first_row = true;
  for (const BatchResult& row : rows) {
    out << (first_row ? "" : ", ") << "{\"name\": \""
        << diag::escape_json(row.name) << "\", \"status\": \""
        << to_string(row.status) << "\", \"detail\": \""
        << diag::escape_json(row.detail) << "\", \"wall_seconds\": "
        << (stable ? 0.0 : row.wall_seconds)
        << ", \"summary\": {\"execution_time\": \""
        << diag::escape_json(row.summary.execution_time)
        << "\", \"devices\": " << row.summary.devices
        << ", \"paths\": " << row.summary.paths
        << ", \"layers\": " << row.summary.layers
        << ", \"resynthesis_iterations\": " << row.summary.resynthesis_iterations
        << ", \"objective\": " << row.summary.objective
        << "}, \"degraded\": " << (row.degraded ? "true" : "false")
        << ", \"retries\": " << row.retries << ", \"run_outcome\": \""
        << diag::escape_json(row.run_outcome) << "\", \"recovery_attempted\": "
        << (row.recovery_attempted ? "true" : "false")
        << ", \"recovered\": " << (row.recovered ? "true" : "false")
        << ", \"recovery_rounds\": " << row.recovery_rounds
        << ", \"recovery_degraded\": " << (row.recovery_degraded ? "true" : "false")
        << ", \"recovery_credit_minutes\": " << row.recovery_credit.count()
        << ", \"fleet\": ";
    if (row.fleet.has_value()) {
      const sim::FleetSummary& fleet = *row.fleet;
      out << "{\"runs\": " << fleet.runs << ", \"completed\": " << fleet.completed
          << ", \"device_failed\": " << fleet.device_failed
          << ", \"attempts_exhausted\": " << fleet.attempts_exhausted
          << ", \"recovery_attempts\": " << fleet.recovery_attempts
          << ", \"recovered\": " << fleet.recovered
          << ", \"recovery_success_rate\": " << fleet.recovery_success_rate
          << ", \"mttf_minutes\": " << fleet.mttf_minutes
          << ", \"mean_completion_minutes\": " << fleet.mean_completion_minutes
          << ", \"histogram_min\": " << fleet.histogram_min.count()
          << ", \"histogram_max\": " << fleet.histogram_max.count()
          << ", \"completion_histogram\": [";
      bool first_bucket = true;
      for (const int count : fleet.completion_histogram) {
        out << (first_bucket ? "" : ", ") << count;
        first_bucket = false;
      }
      out << "], \"events\": " << fleet.events
          << ", \"missions\": " << fleet.missions
          << ", \"missions_recovered\": " << fleet.missions_recovered
          << ", \"missions_degraded\": " << fleet.missions_degraded
          << ", \"mission_rounds\": " << fleet.mission_rounds
          << ", \"mission_survival_rate\": " << fleet.mission_survival_rate
          << ", \"mean_mission_rounds\": " << fleet.mean_mission_rounds
          << ", \"mission_credit_minutes\": " << fleet.mission_credit.count()
          << ", \"mission_rounds_histogram\": [";
      bool first_round_bucket = true;
      for (const int count : fleet.mission_rounds_histogram) {
        out << (first_round_bucket ? "" : ", ") << count;
        first_round_bucket = false;
      }
      out << "]}";
    } else {
      out << "null";
    }
    out << ", \"diagnostics\": [";
    bool first_diag = true;
    for (const diag::Diagnostic& d : row.diagnostics) {
      out << (first_diag ? "" : ", ") << diag::json_object(d);
      first_diag = false;
    }
    out << "]}";
    first_row = false;
  }
  out << "]}";
  return out.str();
}

std::vector<BatchJob> jobs_from_manifest(const std::string& manifest_text,
                                         const std::string& base_dir,
                                         const core::SynthesisOptions& options) {
  std::vector<BatchJob> jobs;
  std::istringstream in(manifest_text);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos || line[begin] == '#') {
      continue;
    }
    const std::size_t end = line.find_last_not_of(" \t\r");
    const std::string path = line.substr(begin, end - begin + 1);
    BatchJob job;
    job.name = path;
    job.path = (!base_dir.empty() && path.front() != '/') ? base_dir + "/" + path
                                                          : path;
    job.options = options;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace cohls::engine
