#include "model/compatibility.hpp"

#include <limits>

namespace cohls::model {

bool is_compatible(const Operation& op, const DeviceConfig& config) {
  if (!config.valid()) {
    return false;
  }
  if (op.container().has_value() && *op.container() != config.container) {
    return false;  // constraint (6)
  }
  if (op.capacity().has_value() && *op.capacity() != config.capacity) {
    return false;  // constraint (8)
  }
  return op.accessories().is_subset_of(config.accessories);  // constraint (7)
}

bool requirements_subsume(const Operation& outer, const Operation& inner) {
  if (inner.container().has_value() &&
      (!outer.container().has_value() || *outer.container() != *inner.container())) {
    return false;
  }
  if (inner.capacity().has_value() &&
      (!outer.capacity().has_value() || *outer.capacity() != *inner.capacity())) {
    return false;
  }
  return inner.accessories().is_subset_of(outer.accessories());
}

std::vector<DeviceConfig> admissible_configs(const Operation& op) {
  std::vector<DeviceConfig> configs;
  for (const ContainerKind kind : {ContainerKind::Ring, ContainerKind::Chamber}) {
    if (op.container().has_value() && *op.container() != kind) {
      continue;
    }
    for (const Capacity cap : kAllCapacities) {
      if (!capacity_allowed(kind, cap)) {
        continue;
      }
      if (op.capacity().has_value() && *op.capacity() != cap) {
        continue;
      }
      configs.push_back(DeviceConfig{kind, cap, op.accessories()});
    }
  }
  return configs;
}

DeviceConfig minimal_config(const Operation& op, const CostModel& costs,
                            const AccessoryRegistry& registry) {
  const auto configs = admissible_configs(op);
  if (configs.empty()) {
    throw InfeasibleError("no device configuration can execute operation '" + op.name() +
                          "'");
  }
  const DeviceConfig* best = nullptr;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const DeviceConfig& config : configs) {
    const double cost = costs.weight_area() * device_area(config, costs) +
                        costs.weight_processing() * device_processing(config, costs, registry);
    if (cost < best_cost) {
      best_cost = cost;
      best = &config;
    }
  }
  return *best;
}

OperationSignature signature_of(const Operation& op) {
  OperationSignature sig;
  sig.container = op.container().has_value() ? static_cast<int>(*op.container()) : -1;
  sig.capacity = op.capacity().has_value() ? static_cast<int>(*op.capacity()) : -1;
  sig.accessories = op.accessories();
  return sig;
}

}  // namespace cohls::model
