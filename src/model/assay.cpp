#include "model/assay.hpp"

namespace cohls::model {

Assay::Assay(std::string name, AccessoryRegistry registry)
    : name_(std::move(name)), registry_(std::move(registry)) {
  COHLS_EXPECT(!name_.empty(), "assay name must be non-empty");
}

OperationId Assay::add_operation(OperationSpec spec) {
  const OperationId id{operation_count()};
  for (const OperationId parent : spec.parents) {
    COHLS_EXPECT(parent.valid() && parent.value() < id.value(),
                 "parent operations must be added before their children");
  }
  for (const AccessoryId acc : spec.accessories.to_list()) {
    COHLS_EXPECT(acc < registry_.count(),
                 "operation requires an accessory kind that is not registered");
  }
  operations_.emplace_back(id, spec);
  const auto node = graph_.add_node();
  COHLS_ASSERT(node == id.index(), "graph nodes must mirror operation ids");
  for (const OperationId parent : spec.parents) {
    graph_.add_edge(parent.index(), id.index());
  }
  return id;
}

const Operation& Assay::operation(OperationId id) const {
  COHLS_EXPECT(id.valid() && id.value() < operation_count(), "unknown operation id");
  return operations_[id.index()];
}

std::vector<OperationId> Assay::children(OperationId id) const {
  COHLS_EXPECT(id.valid() && id.value() < operation_count(), "unknown operation id");
  std::vector<OperationId> out;
  for (const auto node : graph_.successors(id.index())) {
    out.push_back(OperationId{static_cast<std::int32_t>(node)});
  }
  return out;
}

std::vector<OperationId> Assay::indeterminate_operations() const {
  std::vector<OperationId> out;
  for (const Operation& op : operations_) {
    if (op.indeterminate()) {
      out.push_back(op.id());
    }
  }
  return out;
}

int Assay::indeterminate_count() const {
  return static_cast<int>(indeterminate_operations().size());
}

}  // namespace cohls::model
