// The binding rule of Sec. 2.2 in code: "an operation is allowed to be
// bound to a device, if their containers match with each other and the
// device includes the accessories required by the operation". These are
// constraints (6)-(8) of the ILP, shared by the heuristic scheduler, the
// model builder, and the validators so every engine agrees on legality.
#pragma once

#include <vector>

#include "model/cost_model.hpp"
#include "model/device.hpp"
#include "model/operation.hpp"

namespace cohls::model {

/// True when `op` may execute on a device configured as `config`.
[[nodiscard]] bool is_compatible(const Operation& op, const DeviceConfig& config);

/// True when every requirement of `inner` is implied by the requirements of
/// `outer` — i.e. any device suitable for `outer` also suits `inner`
/// (the C_{o2} ⊆ C_{o1}, A_{o2} ⊆ A_{o1} test of Sec. 3.2).
[[nodiscard]] bool requirements_subsume(const Operation& outer, const Operation& inner);

/// All valid device configurations that can execute `op`, restricted to the
/// operation's accessory set (devices never get accessories nobody asked
/// for). Used by exhaustive checks and the conventional baseline.
[[nodiscard]] std::vector<DeviceConfig> admissible_configs(const Operation& op);

/// The cheapest configuration (by weighted area + processing) that can
/// execute `op`. Throws InfeasibleError when no configuration fits (e.g. a
/// chamber is demanded at large capacity).
[[nodiscard]] DeviceConfig minimal_config(const Operation& op, const CostModel& costs,
                                          const AccessoryRegistry& registry);

/// Exact component-requirement signature used by the *modified conventional*
/// method of Sec. 5: operations are classified by requirements rather than
/// functionality, but binding still demands an exact class match.
struct OperationSignature {
  // -1 encodes "unspecified" for container/capacity.
  int container = -1;
  int capacity = -1;
  AccessorySet accessories;

  friend bool operator==(const OperationSignature&, const OperationSignature&) = default;
};

[[nodiscard]] OperationSignature signature_of(const Operation& op);

}  // namespace cohls::model
