// General device (Sec. 2.2): "a general platform for operation execution
// [that] consists of one container and a certain number of accessories."
// The DeviceInventory is the shared set D of Sec. 4 — its cardinality bound
// is the user-given maximum number of devices allowed on the chip, and it is
// shared among the per-layer models and edited by the inheritance rule.
#pragma once

#include <optional>
#include <vector>

#include "model/components.hpp"
#include "model/cost_model.hpp"
#include "util/ids.hpp"

namespace cohls::model {

/// A concrete general-device configuration: one container plus accessories.
struct DeviceConfig {
  ContainerKind container = ContainerKind::Chamber;
  Capacity capacity = Capacity::Tiny;
  AccessorySet accessories;

  /// True when the capacity is admissible for the container kind
  /// (constraints (3)-(4)).
  [[nodiscard]] bool valid() const { return capacity_allowed(container, capacity); }

  friend bool operator==(const DeviceConfig&, const DeviceConfig&) = default;
};

/// Chip-cost of one device: weighted area + processing of its container and
/// accessories.
[[nodiscard]] double device_area(const DeviceConfig& config, const CostModel& costs);
[[nodiscard]] double device_processing(const DeviceConfig& config, const CostModel& costs,
                                       const AccessoryRegistry& registry);

/// An instantiated device on the chip.
struct Device {
  DeviceId id;
  DeviceConfig config;
  /// Layer whose synthesis created this device (D'_i membership in
  /// Sec. 3.2); invalid for devices provided up-front by the user.
  LayerId created_in;
};

/// The shared device set D. Devices are append-only within a synthesis
/// pass; progressive re-synthesis starts fresh inventories per iteration.
class DeviceInventory {
 public:
  /// `max_devices` is |D|: "the maximal number of devices allowed to be
  /// integrated on the chip ... given by the user".
  explicit DeviceInventory(int max_devices);

  [[nodiscard]] int max_devices() const { return max_devices_; }
  [[nodiscard]] int size() const { return static_cast<int>(devices_.size()); }
  [[nodiscard]] bool full() const { return size() >= max_devices_; }

  /// Instantiates a device; throws InfeasibleError when the inventory is
  /// full and PreconditionError when the config is invalid.
  DeviceId instantiate(const DeviceConfig& config, LayerId created_in);

  [[nodiscard]] const Device& device(DeviceId id) const;
  [[nodiscard]] const std::vector<Device>& devices() const { return devices_; }

  /// Devices created by a given layer (the set D'_i).
  [[nodiscard]] std::vector<DeviceId> created_in_layer(LayerId layer) const;

  /// Total container area of all instantiated devices (sum_a).
  [[nodiscard]] double total_area(const CostModel& costs) const;
  /// Total processing cost of containers and accessories (sum_pr).
  [[nodiscard]] double total_processing(const CostModel& costs,
                                        const AccessoryRegistry& registry) const;

 private:
  int max_devices_;
  std::vector<Device> devices_;
};

}  // namespace cohls::model
