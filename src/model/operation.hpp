// Component-oriented operation definition (Sec. 2.2): an operation is
// described by (a) the container (with capacity) and accessories it needs,
// (b) an execution duration — exact, or indeterminate with a minimum — and
// (c) its dependencies (parent operations whose outputs it consumes).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "model/components.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace cohls::model {

/// Mutable description used to add an operation to an Assay.
struct OperationSpec {
  std::string name;

  /// Required container kind; unset means "either a ring or a chamber of
  /// corresponding size" (Sec. 2.2).
  std::optional<ContainerKind> container;

  /// Required container capacity; unset means any capacity fits.
  std::optional<Capacity> capacity;

  /// Accessories the executing device must include.
  AccessorySet accessories;

  /// Exact execution duration — or the *minimum* duration when
  /// `indeterminate` is set (the actual duration is only known at run time).
  Minutes duration{0};

  /// True for operations like single-cell capture whose completion is
  /// decided by a cyberphysical check, not by the clock.
  bool indeterminate = false;

  /// Parent operations; must already exist in the assay (this forces the
  /// dependency graph to be acyclic by construction).
  std::vector<OperationId> parents;
};

/// Immutable operation record stored inside an Assay.
class Operation {
 public:
  Operation(OperationId id, OperationSpec spec);

  [[nodiscard]] OperationId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return spec_.name; }
  [[nodiscard]] const std::optional<ContainerKind>& container() const {
    return spec_.container;
  }
  [[nodiscard]] const std::optional<Capacity>& capacity() const { return spec_.capacity; }
  [[nodiscard]] AccessorySet accessories() const { return spec_.accessories; }
  [[nodiscard]] Minutes duration() const { return spec_.duration; }
  [[nodiscard]] bool indeterminate() const { return spec_.indeterminate; }
  [[nodiscard]] const std::vector<OperationId>& parents() const { return spec_.parents; }

 private:
  OperationId id_;
  OperationSpec spec_;
};

}  // namespace cohls::model
