#include "model/device.hpp"

namespace cohls::model {

double device_area(const DeviceConfig& config, const CostModel& costs) {
  return costs.area(config.container, config.capacity);
}

double device_processing(const DeviceConfig& config, const CostModel& costs,
                         const AccessoryRegistry& registry) {
  return costs.container_processing(config.container, config.capacity) +
         costs.accessory_set_processing(registry, config.accessories);
}

DeviceInventory::DeviceInventory(int max_devices) : max_devices_(max_devices) {
  COHLS_EXPECT(max_devices >= 1, "the chip must allow at least one device");
}

DeviceId DeviceInventory::instantiate(const DeviceConfig& config, LayerId created_in) {
  COHLS_EXPECT(config.valid(), "device capacity not admissible for its container kind");
  if (full()) {
    throw InfeasibleError("device inventory is full: |D| devices already integrated");
  }
  const DeviceId id{size()};
  devices_.push_back(Device{id, config, created_in});
  return id;
}

const Device& DeviceInventory::device(DeviceId id) const {
  COHLS_EXPECT(id.valid() && id.value() < size(), "unknown device id");
  return devices_[id.index()];
}

std::vector<DeviceId> DeviceInventory::created_in_layer(LayerId layer) const {
  std::vector<DeviceId> ids;
  for (const Device& d : devices_) {
    if (d.created_in == layer) {
      ids.push_back(d.id);
    }
  }
  return ids;
}

double DeviceInventory::total_area(const CostModel& costs) const {
  double total = 0.0;
  for (const Device& d : devices_) {
    total += device_area(d.config, costs);
  }
  return total;
}

double DeviceInventory::total_processing(const CostModel& costs,
                                         const AccessoryRegistry& registry) const {
  double total = 0.0;
  for (const Device& d : devices_) {
    total += device_processing(d.config, costs, registry);
  }
  return total;
}

}  // namespace cohls::model
