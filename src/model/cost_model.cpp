#include "model/cost_model.hpp"

namespace cohls::model {

CostModel::CostModel()
    // Indexed by Capacity {Tiny, Small, Medium, Large}. Entries for
    // capacities a container kind cannot take (constraints (3)-(4)) are
    // still populated so accessors never read garbage, but the synthesis
    // models never select them.
    : ring_area_{4.0, 6.0, 9.0, 12.0},
      chamber_area_{1.0, 2.0, 3.0, 4.5},
      ring_processing_{3.0, 4.0, 5.0, 6.0},
      chamber_processing_{1.0, 1.5, 2.0, 3.0},
      weight_time_(1.0),
      weight_area_(3.0),
      weight_processing_(3.0),
      weight_paths_(15.0) {}

double CostModel::area(ContainerKind kind, Capacity capacity) const {
  return kind == ContainerKind::Ring ? ring_area_[capacity_index(capacity)]
                                     : chamber_area_[capacity_index(capacity)];
}

void CostModel::set_area(ContainerKind kind, Capacity capacity, double area) {
  COHLS_EXPECT(area >= 0.0, "area must be non-negative");
  (kind == ContainerKind::Ring ? ring_area_ : chamber_area_)[capacity_index(capacity)] = area;
}

double CostModel::container_processing(ContainerKind kind, Capacity capacity) const {
  return kind == ContainerKind::Ring ? ring_processing_[capacity_index(capacity)]
                                     : chamber_processing_[capacity_index(capacity)];
}

void CostModel::set_container_processing(ContainerKind kind, Capacity capacity, double cost) {
  COHLS_EXPECT(cost >= 0.0, "processing cost must be non-negative");
  (kind == ContainerKind::Ring ? ring_processing_
                               : chamber_processing_)[capacity_index(capacity)] = cost;
}

double CostModel::accessory_set_processing(const AccessoryRegistry& registry,
                                           AccessorySet set) const {
  double total = 0.0;
  for (const AccessoryId id : set.to_list()) {
    total += registry.processing_cost(id);
  }
  return total;
}

void CostModel::set_weights(double time, double area, double processing, double paths) {
  COHLS_EXPECT(time >= 0.0 && area >= 0.0 && processing >= 0.0 && paths >= 0.0,
               "objective weights must be non-negative");
  weight_time_ = time;
  weight_area_ = area;
  weight_processing_ = processing;
  weight_paths_ = paths;
}

}  // namespace cohls::model
