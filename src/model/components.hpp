// The component-oriented vocabulary of Sec. 2: containers (chamber, ring)
// with four capacities, and accessories (pump, heating pad, optical system,
// sieve valve, cell trap). Accessory kinds are an open set — the paper's
// central claim is that the concept "can easily be extended and thus adapted
// to continuous biological innovations" — so beyond the five built-ins,
// users may register further kinds in an AccessoryRegistry.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace cohls::model {

/// Container kind: a chamber is a valve-delimited flow-channel segment; a
/// ring is a chamber closed end-to-end (enables circulation mixing).
enum class ContainerKind : std::uint8_t {
  Ring,
  Chamber,
};

[[nodiscard]] std::string_view to_string(ContainerKind kind);

/// Container capacity classes, ordered by volume.
enum class Capacity : std::uint8_t {
  Tiny,
  Small,
  Medium,
  Large,
};

constexpr std::array<Capacity, 4> kAllCapacities{Capacity::Tiny, Capacity::Small,
                                                 Capacity::Medium, Capacity::Large};

[[nodiscard]] std::string_view to_string(Capacity capacity);

/// Constraint (3): a ring's capacity varies among large, medium and small.
/// Constraint (4): a chamber's capacity varies among medium, small and tiny.
[[nodiscard]] bool capacity_allowed(ContainerKind kind, Capacity capacity);

/// Index of a registered accessory kind within an AccessoryRegistry.
using AccessoryId = int;

/// The five accessory kinds reviewed in Sec. 2.1.2, pre-registered in every
/// AccessoryRegistry with these fixed ids.
struct BuiltinAccessory {
  static constexpr AccessoryId kPump = 0;
  static constexpr AccessoryId kHeatingPad = 1;
  static constexpr AccessoryId kOpticalSystem = 2;
  static constexpr AccessoryId kSieveValve = 3;
  static constexpr AccessoryId kCellTrap = 4;
  static constexpr int kCount = 5;
};

/// Open registry of accessory kinds: name + chip processing cost (the `Pr_z`
/// constants of constraint (19)). The five built-ins are always present.
///
/// Thread safety: registration and lookup are guarded by a shared mutex, so
/// a registry may be read concurrently from many synthesis workers (the
/// batch engine does) and extended at runtime without external locking.
/// Registered kinds are never removed and ids never change, so an id
/// obtained from one thread stays valid on all others.
class AccessoryRegistry {
 public:
  /// Creates a registry holding exactly the built-in accessories, with the
  /// default processing costs of the bundled CostModel.
  AccessoryRegistry();

  AccessoryRegistry(const AccessoryRegistry& other);
  AccessoryRegistry(AccessoryRegistry&& other) noexcept;
  AccessoryRegistry& operator=(const AccessoryRegistry& other);
  AccessoryRegistry& operator=(AccessoryRegistry&& other) noexcept;

  /// Registers a new accessory kind (e.g. a droplet sorter) and returns its
  /// id. Names must be unique and non-empty.
  AccessoryId register_accessory(std::string name, double processing_cost);

  [[nodiscard]] int count() const;
  /// Returns a copy: the registry may grow concurrently, and handing out a
  /// reference into a reallocating vector would race with registration.
  [[nodiscard]] std::string name(AccessoryId id) const;
  [[nodiscard]] double processing_cost(AccessoryId id) const;

  /// Looks a kind up by name; returns -1 when unknown.
  [[nodiscard]] AccessoryId find(std::string_view name) const;

  /// Maximum number of accessory kinds an AccessorySet can hold.
  static constexpr int kMaxAccessories = 32;

 private:
  mutable util::SharedMutex mutex_;
  std::vector<std::string> names_ COHLS_GUARDED_BY(mutex_);
  std::vector<double> costs_ COHLS_GUARDED_BY(mutex_);
};

/// A set of accessory kinds, by id. Small and value-semantic; supports the
/// subset test that underlies the binding rule ("the device includes the
/// accessories required by the operation").
class AccessorySet {
 public:
  constexpr AccessorySet() = default;

  /// Convenience construction from a list of ids.
  AccessorySet(std::initializer_list<AccessoryId> ids);

  void insert(AccessoryId id);
  void erase(AccessoryId id);
  [[nodiscard]] bool contains(AccessoryId id) const;
  [[nodiscard]] bool is_subset_of(AccessorySet other) const {
    return (bits_ & ~other.bits_) == 0;
  }
  [[nodiscard]] int count() const;
  [[nodiscard]] bool empty() const { return bits_ == 0; }

  [[nodiscard]] AccessorySet united_with(AccessorySet other) const {
    AccessorySet result;
    result.bits_ = bits_ | other.bits_;
    return result;
  }

  /// Ids present in the set, ascending.
  [[nodiscard]] std::vector<AccessoryId> to_list() const;

  friend constexpr bool operator==(AccessorySet, AccessorySet) = default;

 private:
  std::uint32_t bits_ = 0;
};

/// Renders "{pump, sieve valve}" for diagnostics.
[[nodiscard]] std::string to_string(AccessorySet set, const AccessoryRegistry& registry);

}  // namespace cohls::model
