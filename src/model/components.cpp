#include "model/components.hpp"

#include <bit>
#include <sstream>

namespace cohls::model {

std::string_view to_string(ContainerKind kind) {
  switch (kind) {
    case ContainerKind::Ring: return "ring";
    case ContainerKind::Chamber: return "chamber";
  }
  return "?";
}

std::string_view to_string(Capacity capacity) {
  switch (capacity) {
    case Capacity::Tiny: return "tiny";
    case Capacity::Small: return "small";
    case Capacity::Medium: return "medium";
    case Capacity::Large: return "large";
  }
  return "?";
}

bool capacity_allowed(ContainerKind kind, Capacity capacity) {
  switch (kind) {
    case ContainerKind::Ring:
      return capacity != Capacity::Tiny;
    case ContainerKind::Chamber:
      return capacity != Capacity::Large;
  }
  return false;
}

AccessoryRegistry::AccessoryRegistry() {
  // Built-in processing costs; see CostModel for the rationale of the
  // relative magnitudes.
  names_ = {"pump", "heating pad", "optical system", "sieve valve", "cell trap"};
  costs_ = {3.0, 2.5, 4.0, 1.5, 1.0};
}

AccessoryRegistry::AccessoryRegistry(const AccessoryRegistry& other) {
  util::ReaderLock lock(other.mutex_);
  names_ = other.names_;
  costs_ = other.costs_;
}

AccessoryRegistry::AccessoryRegistry(AccessoryRegistry&& other) noexcept {
  util::WriterLock lock(other.mutex_);
  names_ = std::move(other.names_);
  costs_ = std::move(other.costs_);
}

AccessoryRegistry& AccessoryRegistry::operator=(const AccessoryRegistry& other) {
  if (this == &other) {
    return *this;
  }
  std::vector<std::string> names;
  std::vector<double> costs;
  {
    util::ReaderLock lock(other.mutex_);
    names = other.names_;
    costs = other.costs_;
  }
  util::WriterLock lock(mutex_);
  names_ = std::move(names);
  costs_ = std::move(costs);
  return *this;
}

// Thread-safety analysis is off here: the analysis cannot model
// address-ordered acquisition of two dynamically chosen instances of the
// same capability. Sound because the order is total (by address), so two
// concurrent cross-assignments cannot deadlock, and both mutexes are held
// for every member access below.
AccessoryRegistry& AccessoryRegistry::operator=(AccessoryRegistry&& other) noexcept
    COHLS_NO_THREAD_SAFETY_ANALYSIS {
  if (this == &other) {
    return *this;
  }
  util::SharedMutex& first = this < &other ? mutex_ : other.mutex_;
  util::SharedMutex& second = this < &other ? other.mutex_ : mutex_;
  first.lock();
  second.lock();
  names_ = std::move(other.names_);
  costs_ = std::move(other.costs_);
  second.unlock();
  first.unlock();
  return *this;
}

AccessoryId AccessoryRegistry::register_accessory(std::string name, double processing_cost) {
  COHLS_EXPECT(!name.empty(), "accessory name must be non-empty");
  COHLS_EXPECT(processing_cost >= 0.0, "processing cost must be non-negative");
  util::WriterLock lock(mutex_);
  for (const std::string& existing : names_) {
    COHLS_EXPECT(existing != name, "accessory name already registered");
  }
  COHLS_EXPECT(static_cast<int>(names_.size()) < kMaxAccessories,
               "accessory registry is full");
  names_.push_back(std::move(name));
  costs_.push_back(processing_cost);
  return static_cast<AccessoryId>(names_.size()) - 1;
}

int AccessoryRegistry::count() const {
  util::ReaderLock lock(mutex_);
  return static_cast<int>(names_.size());
}

std::string AccessoryRegistry::name(AccessoryId id) const {
  util::ReaderLock lock(mutex_);
  COHLS_EXPECT(id >= 0 && id < static_cast<int>(names_.size()), "unknown accessory id");
  return names_[static_cast<std::size_t>(id)];
}

double AccessoryRegistry::processing_cost(AccessoryId id) const {
  util::ReaderLock lock(mutex_);
  COHLS_EXPECT(id >= 0 && id < static_cast<int>(costs_.size()), "unknown accessory id");
  return costs_[static_cast<std::size_t>(id)];
}

AccessoryId AccessoryRegistry::find(std::string_view name) const {
  util::ReaderLock lock(mutex_);
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) {
      return static_cast<AccessoryId>(i);
    }
  }
  return -1;
}

AccessorySet::AccessorySet(std::initializer_list<AccessoryId> ids) {
  for (const AccessoryId id : ids) {
    insert(id);
  }
}

void AccessorySet::insert(AccessoryId id) {
  COHLS_EXPECT(id >= 0 && id < AccessoryRegistry::kMaxAccessories,
               "accessory id out of range");
  bits_ |= (std::uint32_t{1} << id);
}

void AccessorySet::erase(AccessoryId id) {
  COHLS_EXPECT(id >= 0 && id < AccessoryRegistry::kMaxAccessories,
               "accessory id out of range");
  bits_ &= ~(std::uint32_t{1} << id);
}

bool AccessorySet::contains(AccessoryId id) const {
  COHLS_EXPECT(id >= 0 && id < AccessoryRegistry::kMaxAccessories,
               "accessory id out of range");
  return (bits_ & (std::uint32_t{1} << id)) != 0;
}

int AccessorySet::count() const { return std::popcount(bits_); }

std::vector<AccessoryId> AccessorySet::to_list() const {
  std::vector<AccessoryId> ids;
  for (AccessoryId id = 0; id < AccessoryRegistry::kMaxAccessories; ++id) {
    if (contains(id)) {
      ids.push_back(id);
    }
  }
  return ids;
}

std::string to_string(AccessorySet set, const AccessoryRegistry& registry) {
  std::ostringstream out;
  out << '{';
  bool first = true;
  for (const AccessoryId id : set.to_list()) {
    if (!first) {
      out << ", ";
    }
    first = false;
    out << (id < registry.count() ? registry.name(id) : "?");
  }
  out << '}';
  return out.str();
}

}  // namespace cohls::model
