// Cost constants and objective weights of Sec. 4.3. Area costs `A_x`
// (ring) and `A'_y` (chamber) drive constraint (16)-(17); container and
// accessory processing costs drive (19)-(20); the weights C_t, C_a, C_pr,
// C_p combine the four sums into the single minimization objective. All of
// them are "adjustable ... defined by users" in the paper, so they live in
// one value type with documented defaults.
#pragma once

#include <array>

#include "model/components.hpp"

namespace cohls::model {

class CostModel {
 public:
  /// Defaults: rings dominate chambers in both area and processing (a ring
  /// carries a peristaltic pump loop and a longer channel); larger
  /// capacities cost proportionally more; accessory processing costs follow
  /// the registry's built-in values.
  CostModel();

  // --- container area (constraints (16)-(17)) -----------------------------
  [[nodiscard]] double area(ContainerKind kind, Capacity capacity) const;
  void set_area(ContainerKind kind, Capacity capacity, double area);

  // --- container processing cost ------------------------------------------
  [[nodiscard]] double container_processing(ContainerKind kind, Capacity capacity) const;
  void set_container_processing(ContainerKind kind, Capacity capacity, double cost);

  // --- accessory processing cost (constraint (19)) --------------------------
  /// Cost of accessory `id` per the registry the assay was built with.
  [[nodiscard]] double accessory_processing(const AccessoryRegistry& registry,
                                            AccessoryId id) const {
    return registry.processing_cost(id);
  }
  [[nodiscard]] double accessory_set_processing(const AccessoryRegistry& registry,
                                                AccessorySet set) const;

  // --- objective weights ----------------------------------------------------
  [[nodiscard]] double weight_time() const { return weight_time_; }
  [[nodiscard]] double weight_area() const { return weight_area_; }
  [[nodiscard]] double weight_processing() const { return weight_processing_; }
  [[nodiscard]] double weight_paths() const { return weight_paths_; }
  void set_weights(double time, double area, double processing, double paths);

 private:
  static std::size_t capacity_index(Capacity c) { return static_cast<std::size_t>(c); }

  std::array<double, 4> ring_area_;
  std::array<double, 4> chamber_area_;
  std::array<double, 4> ring_processing_;
  std::array<double, 4> chamber_processing_;
  double weight_time_;
  double weight_area_;
  double weight_processing_;
  double weight_paths_;
};

}  // namespace cohls::model
