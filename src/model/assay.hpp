// An assay is the unit of synthesis: a DAG of component-oriented
// operations, together with the accessory registry its accessory ids refer
// to. Parents must exist before their children are added, which makes the
// dependency graph acyclic by construction.
#pragma once

#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "model/operation.hpp"

namespace cohls::model {

class Assay {
 public:
  explicit Assay(std::string name, AccessoryRegistry registry = AccessoryRegistry{});

  /// Adds an operation; every parent in the spec must already be in the
  /// assay. Returns the new operation's id.
  OperationId add_operation(OperationSpec spec);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const AccessoryRegistry& registry() const { return registry_; }
  [[nodiscard]] AccessoryRegistry& registry() { return registry_; }

  [[nodiscard]] int operation_count() const { return static_cast<int>(operations_.size()); }
  [[nodiscard]] const Operation& operation(OperationId id) const;
  [[nodiscard]] const std::vector<Operation>& operations() const { return operations_; }

  /// Children of `id`: operations that consume its outputs.
  [[nodiscard]] std::vector<OperationId> children(OperationId id) const;

  /// The dependency digraph: node i == operation id i, edges parent->child.
  [[nodiscard]] const graph::Digraph& dependency_graph() const { return graph_; }

  [[nodiscard]] std::vector<OperationId> indeterminate_operations() const;
  [[nodiscard]] int indeterminate_count() const;

 private:
  std::string name_;
  AccessoryRegistry registry_;
  std::vector<Operation> operations_;
  graph::Digraph graph_;
};

}  // namespace cohls::model
