#include "model/operation.hpp"

namespace cohls::model {

Operation::Operation(OperationId id, OperationSpec spec) : id_(id), spec_(std::move(spec)) {
  COHLS_EXPECT(id_.valid(), "operation id must be valid");
  COHLS_EXPECT(!spec_.name.empty(), "operation name must be non-empty");
  COHLS_EXPECT(spec_.duration > Minutes{0},
               "operation duration (or indeterminate minimum) must be positive");
  if (spec_.container.has_value() && spec_.capacity.has_value()) {
    COHLS_EXPECT(capacity_allowed(*spec_.container, *spec_.capacity),
                 "requested capacity is not available for the requested container kind");
  }
}

}  // namespace cohls::model
