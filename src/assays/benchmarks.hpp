// Reconstructed benchmark assays of Sec. 5. The paper synthesizes three
// bioassays — a kinase-activity radioassay [10], a single-cell gene
// expression profiling assay [7], and a single-cell RT-qPCR assay [17] —
// replicated "with the same protocol of the original assay" to 16, 70 and
// 120 operations (0, 10 and 20 of them indeterminate). The wet-lab DAGs are
// not published, so these builders reconstruct them from the cited
// protocols: per-sample pipelines with plausible published step durations,
// replicated per sample exactly as the paper replicates them. Only the op
// counts, dependency shapes, indeterminate counts and component
// requirements matter to the synthesis algorithms.
#pragma once

#include "model/assay.hpp"

namespace cohls::assays {

/// Case 1 [10]: kinase activity radioassay, `lanes` replicate lanes of 8
/// operations each (bead-column capture with sieve valves and flow
/// reversal, Fig. 2). Default 2 lanes = 16 operations, none indeterminate.
[[nodiscard]] model::Assay kinase_activity_assay(int lanes = 2);

/// Case 2 [7]: single-cell gene expression profiling, `cells` pipelines of
/// 7 operations each, starting with an indeterminate single-cell capture
/// (Fig. 1). Default 10 cells = 70 operations, 10 indeterminate.
[[nodiscard]] model::Assay gene_expression_assay(int cells = 10);

/// Case 3 [17]: high-throughput single-cell RT-qPCR, `cells` pipelines of 6
/// operations each starting with an indeterminate capture. Default 20
/// cells = 120 operations, 20 indeterminate.
[[nodiscard]] model::Assay rt_qpcr_assay(int cells = 20);

}  // namespace cohls::assays
