#include "assays/random_assay.hpp"

#include <string>

namespace cohls::assays {

model::Assay random_assay(std::uint64_t seed, const RandomAssayOptions& options) {
  COHLS_EXPECT(options.operations >= 1, "need at least one operation");
  COHLS_EXPECT(options.min_duration > Minutes{0} &&
                   options.min_duration <= options.max_duration,
               "invalid duration range");
  Rng rng{seed};
  model::Assay assay("random assay seed=" + std::to_string(seed));

  for (int i = 0; i < options.operations; ++i) {
    model::OperationSpec spec;
    spec.name = "op" + std::to_string(i);

    // Container: unspecified / ring / chamber.
    const auto container_draw = rng.uniform_int(0, 2);
    if (container_draw == 1) {
      spec.container = model::ContainerKind::Ring;
    } else if (container_draw == 2) {
      spec.container = model::ContainerKind::Chamber;
    }
    // Capacity: often unspecified; otherwise one admissible for the
    // container (or any when the container is free too).
    if (rng.bernoulli(0.4)) {
      for (int attempt = 0; attempt < 8; ++attempt) {
        const auto cap = model::kAllCapacities[static_cast<std::size_t>(
            rng.uniform_int(0, 3))];
        if (!spec.container.has_value() || model::capacity_allowed(*spec.container, cap)) {
          spec.capacity = cap;
          break;
        }
      }
    }
    for (model::AccessoryId acc = 0; acc < model::BuiltinAccessory::kCount; ++acc) {
      if (rng.bernoulli(0.25)) {
        spec.accessories.insert(acc);
      }
    }
    spec.duration = Minutes{rng.uniform_int(options.min_duration.count(),
                                            options.max_duration.count())};
    spec.indeterminate = rng.bernoulli(options.indeterminate_probability);

    int parents = 0;
    for (int p = 0; p < i && parents < options.max_parents; ++p) {
      // Indeterminate parents are allowed; the layering algorithm handles
      // them. Bias towards recent operations for pipeline-like shapes.
      const double distance_penalty = 1.0 / (1.0 + 0.2 * (i - 1 - p));
      if (rng.bernoulli(options.edge_probability * distance_penalty)) {
        spec.parents.push_back(OperationId{p});
        ++parents;
      }
    }
    (void)assay.add_operation(spec);
  }
  return assay;
}

}  // namespace cohls::assays
