#include "assays/benchmarks.hpp"

#include <string>

namespace cohls::assays {

namespace {
using model::BuiltinAccessory;
using model::Capacity;
using model::ContainerKind;
using model::OperationSpec;

std::string tag(const std::string& name, int replicate) {
  return name + " [" + std::to_string(replicate) + "]";
}
}  // namespace

model::Assay kinase_activity_assay(int lanes) {
  COHLS_EXPECT(lanes >= 1, "the assay needs at least one lane");
  model::Assay assay("kinase activity radioassay [10]");
  for (int lane = 0; lane < lanes; ++lane) {
    // Bead-column preparation: sieve valves hold the beads in place.
    OperationSpec bead_load;
    bead_load.name = tag("bead column load", lane);
    bead_load.container = ContainerKind::Chamber;
    bead_load.capacity = Capacity::Medium;
    bead_load.accessories = {BuiltinAccessory::kSieveValve};
    bead_load.duration = 12_min;
    const auto beads = assay.add_operation(bead_load);

    OperationSpec sample_prep;
    sample_prep.name = tag("sample preparation", lane);
    sample_prep.container = ContainerKind::Chamber;
    sample_prep.capacity = Capacity::Medium;
    sample_prep.duration = 15_min;
    const auto sample = assay.add_operation(sample_prep);

    // The kinase reaction runs in a heated rotary mixer.
    OperationSpec kinase;
    kinase.name = tag("kinase reaction", lane);
    kinase.container = ContainerKind::Ring;
    kinase.capacity = Capacity::Medium;
    kinase.accessories = {BuiltinAccessory::kPump, BuiltinAccessory::kHeatingPad};
    kinase.duration = 30_min;
    kinase.parents = {sample};
    const auto reaction = assay.add_operation(kinase);

    // Flow-reversal capture mixing through the bead column (Fig. 2(b)-(e)):
    // a mixing operation executed *without* a classical mixer.
    OperationSpec capture;
    capture.name = tag("flow-reversal capture mix", lane);
    capture.container = ContainerKind::Chamber;
    capture.capacity = Capacity::Medium;
    capture.accessories = {BuiltinAccessory::kSieveValve, BuiltinAccessory::kPump};
    capture.duration = 20_min;
    capture.parents = {beads, reaction};
    const auto captured = assay.add_operation(capture);

    // Washing raises sample concentration against the solid-phase support;
    // any sieve-valve device will do (container unspecified).
    OperationSpec wash;
    wash.name = tag("wash", lane);
    wash.accessories = {BuiltinAccessory::kSieveValve};
    wash.duration = 10_min;
    wash.parents = {captured};
    const auto washed = assay.add_operation(wash);

    OperationSpec elute;
    elute.name = tag("elution", lane);
    elute.accessories = {BuiltinAccessory::kSieveValve};
    elute.duration = 8_min;
    elute.parents = {washed};
    const auto eluted = assay.add_operation(elute);

    // Neutralization has no component demands at all.
    OperationSpec neutralize;
    neutralize.name = tag("neutralization", lane);
    neutralize.duration = 5_min;
    neutralize.parents = {eluted};
    const auto neutral = assay.add_operation(neutralize);

    OperationSpec detect;
    detect.name = tag("radioassay imaging", lane);
    detect.accessories = {BuiltinAccessory::kOpticalSystem};
    detect.duration = 15_min;
    detect.parents = {neutral};
    (void)assay.add_operation(detect);
  }
  return assay;
}

model::Assay gene_expression_assay(int cells) {
  COHLS_EXPECT(cells >= 1, "the assay needs at least one cell pipeline");
  model::Assay assay("single-cell gene expression profiling [7]");
  for (int cell = 0; cell < cells; ++cell) {
    // Single-cell capture in a cell-separation module carved out of a mixer
    // ring (Fig. 1); whether exactly one cell was caught is decided by a
    // cyberphysical fluorescence check, so the duration is indeterminate.
    OperationSpec capture;
    capture.name = tag("single-cell capture", cell);
    capture.container = ContainerKind::Ring;
    capture.capacity = Capacity::Medium;
    capture.accessories = {BuiltinAccessory::kPump, BuiltinAccessory::kCellTrap};
    capture.duration = 10_min;  // minimum; reruns extend it
    capture.indeterminate = true;
    capture.parents = {};
    const auto caught = assay.add_operation(capture);

    OperationSpec lysis;
    lysis.name = tag("cell lysis", cell);
    lysis.accessories = {BuiltinAccessory::kHeatingPad};
    lysis.duration = 10_min;
    lysis.parents = {caught};
    const auto lysed = assay.add_operation(lysis);

    OperationSpec mrna;
    mrna.name = tag("mRNA capture", cell);
    mrna.accessories = {BuiltinAccessory::kSieveValve};
    mrna.duration = 15_min;
    mrna.parents = {lysed};
    const auto captured_mrna = assay.add_operation(mrna);

    OperationSpec rt;
    rt.name = tag("reverse transcription", cell);
    rt.accessories = {BuiltinAccessory::kHeatingPad};
    rt.duration = 30_min;
    rt.parents = {captured_mrna};
    const auto cdna = assay.add_operation(rt);

    // Pre-amplification requires efficient circulation mixing with heat.
    OperationSpec preamp;
    preamp.name = tag("pre-amplification", cell);
    preamp.container = ContainerKind::Ring;
    preamp.capacity = Capacity::Small;
    preamp.accessories = {BuiltinAccessory::kPump, BuiltinAccessory::kHeatingPad};
    preamp.duration = 40_min;
    preamp.parents = {cdna};
    const auto amplified = assay.add_operation(preamp);

    OperationSpec wash;
    wash.name = tag("wash", cell);
    wash.accessories = {BuiltinAccessory::kSieveValve};
    wash.duration = 8_min;
    wash.parents = {amplified};
    const auto washed = assay.add_operation(wash);

    OperationSpec detect;
    detect.name = tag("expression read-out", cell);
    detect.accessories = {BuiltinAccessory::kOpticalSystem};
    detect.duration = 12_min;
    detect.parents = {washed};
    (void)assay.add_operation(detect);
  }
  return assay;
}

model::Assay rt_qpcr_assay(int cells) {
  COHLS_EXPECT(cells >= 1, "the assay needs at least one cell pipeline");
  model::Assay assay("single-cell RT-qPCR [17]");
  for (int cell = 0; cell < cells; ++cell) {
    OperationSpec capture;
    capture.name = tag("single-cell capture", cell);
    capture.container = ContainerKind::Ring;
    capture.capacity = Capacity::Medium;
    capture.accessories = {BuiltinAccessory::kPump, BuiltinAccessory::kCellTrap};
    capture.duration = 8_min;  // minimum; reruns extend it
    capture.indeterminate = true;
    const auto caught = assay.add_operation(capture);

    OperationSpec lysis;
    lysis.name = tag("lysis", cell);
    lysis.accessories = {BuiltinAccessory::kHeatingPad};
    lysis.duration = 10_min;
    lysis.parents = {caught};
    const auto lysed = assay.add_operation(lysis);

    OperationSpec rt;
    rt.name = tag("reverse transcription", cell);
    rt.accessories = {BuiltinAccessory::kHeatingPad};
    rt.duration = 30_min;
    rt.parents = {lysed};
    const auto cdna = assay.add_operation(rt);

    // qPCR needs precise thermal cycling plus in-situ fluorescence.
    OperationSpec qpcr;
    qpcr.name = tag("qPCR amplification", cell);
    qpcr.container = ContainerKind::Ring;
    qpcr.capacity = Capacity::Small;
    qpcr.accessories = {BuiltinAccessory::kPump, BuiltinAccessory::kHeatingPad,
                        BuiltinAccessory::kOpticalSystem};
    qpcr.duration = 45_min;
    qpcr.parents = {cdna};
    const auto amplified = assay.add_operation(qpcr);

    OperationSpec wash;
    wash.name = tag("wash", cell);
    wash.accessories = {BuiltinAccessory::kSieveValve};
    wash.duration = 6_min;
    wash.parents = {amplified};
    const auto washed = assay.add_operation(wash);

    // Melt-curve read-out can reuse any optical device (e.g. a qPCR ring).
    OperationSpec melt;
    melt.name = tag("melt-curve read-out", cell);
    melt.accessories = {BuiltinAccessory::kOpticalSystem};
    melt.duration = 10_min;
    melt.parents = {washed};
    (void)assay.add_operation(melt);
  }
  return assay;
}

}  // namespace cohls::assays
