// Seeded random assay generation for property tests and ablations: random
// layered DAGs with random component requirements, a configurable fraction
// of indeterminate operations, and guaranteed-satisfiable specs.
#pragma once

#include "model/assay.hpp"
#include "util/rng.hpp"

namespace cohls::assays {

struct RandomAssayOptions {
  int operations = 12;
  /// Probability that an operation (without indeterminate descendants
  /// forced) is indeterminate.
  double indeterminate_probability = 0.15;
  /// Probability of each candidate dependency edge.
  double edge_probability = 0.25;
  /// Maximum parents per operation.
  int max_parents = 3;
  Minutes min_duration{5};
  Minutes max_duration{40};
};

/// Generates a reproducible random assay. Operations have ids 0..n-1 with
/// edges only from lower to higher ids (a DAG by construction).
[[nodiscard]] model::Assay random_assay(std::uint64_t seed,
                                        const RandomAssayOptions& options = {});

}  // namespace cohls::assays
