// A line-oriented text format for assays, so protocols can be described in
// files rather than C++. Round-trips exactly:
//
//   assay "single-cell RT-qPCR"
//   accessory "droplet sorter" cost=3.5           # custom kinds only
//   operation 0 "capture" duration=8 container=ring capacity=medium
//       accessories={pump; cell trap} indeterminate      # one line in files
//   operation 1 "lysis" duration=10 accessories={heating pad} parents=0
//
// Operation ids must be dense and ascending (parents-first, mirroring the
// Assay builder contract). '#' starts a comment; blank lines are ignored.
//
// assay_from_text is the strict one-shot entry point (parse + build, first
// error throws). For linting with line-accurate spans and multi-error
// reporting, use io::parse_assay_source (assay_source.hpp) plus
// analysis::lint_assay.
#pragma once

#include <iosfwd>
#include <string>

#include "io/assay_source.hpp"
#include "model/assay.hpp"

namespace cohls::io {

/// Serializes an assay to the text format (stable field order).
[[nodiscard]] std::string to_text(const model::Assay& assay);

/// Parses the text format into an assay.
[[nodiscard]] model::Assay assay_from_text(const std::string& text);

}  // namespace cohls::io
