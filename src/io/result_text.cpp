#include "io/result_text.hpp"

#include <charconv>
#include <sstream>

#include "util/check.hpp"

namespace cohls::io {

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw ParseError("line " + std::to_string(line) + ": " + message);
}

long field_value(const std::string& token, const std::string& key, int line) {
  if (token.rfind(key + "=", 0) != 0) {
    fail(line, "expected " + key + "=<number>, got '" + token + "'");
  }
  const std::string digits = token.substr(key.size() + 1);
  long value = 0;
  const auto [end, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), value);
  if (ec != std::errc{} || end != digits.data() + digits.size()) {
    fail(line, "malformed number in '" + token + "'");
  }
  return value;
}

std::vector<std::string> split_words(const std::string& text) {
  // Splits on spaces except inside {...} groups (accessory lists).
  std::vector<std::string> words;
  std::string current;
  int depth = 0;
  for (const char ch : text) {
    if (ch == '{') {
      ++depth;
    } else if (ch == '}') {
      --depth;
    }
    if ((ch == ' ' || ch == '\t') && depth == 0) {
      if (!current.empty()) {
        words.push_back(std::move(current));
        current.clear();
      }
    } else {
      current.push_back(ch);
    }
  }
  if (!current.empty()) {
    words.push_back(std::move(current));
  }
  return words;
}

}  // namespace

std::string to_text(const schedule::SynthesisResult& result, const model::Assay& assay) {
  std::ostringstream out;
  out << "result max_devices=" << result.devices.max_devices() << '\n';
  for (const model::Device& device : result.devices.devices()) {
    out << "device " << device.id.value()
        << " container=" << model::to_string(device.config.container)
        << " capacity=" << model::to_string(device.config.capacity);
    if (!device.config.accessories.empty()) {
      out << " accessories={";
      bool first = true;
      for (const model::AccessoryId acc : device.config.accessories.to_list()) {
        out << (first ? "" : "; ") << assay.registry().name(acc);
        first = false;
      }
      out << '}';
    }
    out << " created_in=" << device.created_in.value() << '\n';
  }
  for (const schedule::LayerSchedule& layer : result.layers) {
    out << "layer " << layer.layer.value() << '\n';
    for (const schedule::ScheduledOperation& item : layer.items) {
      out << "schedule op=" << item.op.value() << " device=" << item.device.value()
          << " start=" << item.start.count() << " duration=" << item.duration.count()
          << " transport=" << item.transport.count() << '\n';
    }
  }
  return out.str();
}

schedule::SynthesisResult result_from_text(const std::string& text,
                                           const model::Assay& assay) {
  std::istringstream in(text);
  std::string raw;
  int line_number = 0;
  bool saw_header = false;
  schedule::SynthesisResult result;
  int expected_device = 0;

  while (std::getline(in, raw)) {
    ++line_number;
    const auto hash = raw.find('#');
    const std::string stripped = hash == std::string::npos ? raw : raw.substr(0, hash);
    const std::vector<std::string> words = split_words(stripped);
    if (words.empty()) {
      continue;
    }
    const std::string& keyword = words[0];
    if (keyword == "result") {
      if (saw_header) {
        fail(line_number, "duplicate 'result' header");
      }
      if (words.size() != 2) {
        fail(line_number, "expected: result max_devices=<n>");
      }
      const long max_devices = field_value(words[1], "max_devices", line_number);
      if (max_devices < 1) {
        fail(line_number, "max_devices must be positive");
      }
      result.devices = model::DeviceInventory(static_cast<int>(max_devices));
      saw_header = true;
    } else if (keyword == "device") {
      if (!saw_header) {
        fail(line_number, "'device' before 'result'");
      }
      if (words.size() < 4) {
        fail(line_number, "device line too short");
      }
      long id = 0;
      {
        const auto [end, ec] =
            std::from_chars(words[1].data(), words[1].data() + words[1].size(), id);
        if (ec != std::errc{} || end != words[1].data() + words[1].size()) {
          fail(line_number, "malformed device id");
        }
      }
      if (id != expected_device) {
        fail(line_number, "device ids must be dense and ascending");
      }
      ++expected_device;
      model::DeviceConfig config;
      LayerId created_in;
      for (std::size_t w = 2; w < words.size(); ++w) {
        const std::string& token = words[w];
        if (token.rfind("container=", 0) == 0) {
          const std::string value = token.substr(10);
          if (value == "ring") {
            config.container = model::ContainerKind::Ring;
          } else if (value == "chamber") {
            config.container = model::ContainerKind::Chamber;
          } else {
            fail(line_number, "unknown container '" + value + "'");
          }
        } else if (token.rfind("capacity=", 0) == 0) {
          const std::string value = token.substr(9);
          bool found = false;
          for (const model::Capacity cap : model::kAllCapacities) {
            if (value == model::to_string(cap)) {
              config.capacity = cap;
              found = true;
            }
          }
          if (!found) {
            fail(line_number, "unknown capacity '" + value + "'");
          }
        } else if (token.rfind("accessories={", 0) == 0) {
          if (token.back() != '}') {
            fail(line_number, "unterminated accessory list");
          }
          const std::string body = token.substr(13, token.size() - 14);
          std::size_t start = 0;
          while (start <= body.size() && !body.empty()) {
            const std::size_t sep = body.find(';', start);
            std::string name = body.substr(
                start, sep == std::string::npos ? std::string::npos : sep - start);
            const auto first = name.find_first_not_of(" \t");
            if (first == std::string::npos) {
              fail(line_number, "empty accessory name");
            }
            const auto last = name.find_last_not_of(" \t");
            name = name.substr(first, last - first + 1);
            const model::AccessoryId acc = assay.registry().find(name);
            if (acc < 0) {
              fail(line_number, "unknown accessory '" + name + "'");
            }
            config.accessories.insert(acc);
            if (sep == std::string::npos) {
              break;
            }
            start = sep + 1;
          }
        } else if (token.rfind("created_in=", 0) == 0) {
          created_in = LayerId{static_cast<std::int32_t>(
              field_value(token, "created_in", line_number))};
        } else {
          fail(line_number, "unknown device field '" + token + "'");
        }
      }
      if (!config.valid()) {
        fail(line_number, "device configuration violates the capacity rules");
      }
      try {
        (void)result.devices.instantiate(config, created_in);
      } catch (const InfeasibleError& e) {
        fail(line_number, e.what());
      }
    } else if (keyword == "layer") {
      if (!saw_header) {
        fail(line_number, "'layer' before 'result'");
      }
      if (words.size() != 2) {
        fail(line_number, "expected: layer <index>");
      }
      long index = 0;
      const auto [end, ec] =
          std::from_chars(words[1].data(), words[1].data() + words[1].size(), index);
      if (ec != std::errc{} || end != words[1].data() + words[1].size()) {
        fail(line_number, "malformed layer index");
      }
      if (index != static_cast<long>(result.layers.size())) {
        fail(line_number, "layer indices must be dense and ascending");
      }
      schedule::LayerSchedule layer;
      layer.layer = LayerId{static_cast<std::int32_t>(index)};
      result.layers.push_back(std::move(layer));
    } else if (keyword == "schedule") {
      if (result.layers.empty()) {
        fail(line_number, "'schedule' before any 'layer'");
      }
      if (words.size() != 6) {
        fail(line_number, "expected: schedule op= device= start= duration= transport=");
      }
      schedule::ScheduledOperation item;
      item.op = OperationId{static_cast<std::int32_t>(
          field_value(words[1], "op", line_number))};
      item.device = DeviceId{static_cast<std::int32_t>(
          field_value(words[2], "device", line_number))};
      item.start = Minutes{field_value(words[3], "start", line_number)};
      item.duration = Minutes{field_value(words[4], "duration", line_number)};
      item.transport = Minutes{field_value(words[5], "transport", line_number)};
      if (!item.op.valid() || item.op.value() >= assay.operation_count()) {
        fail(line_number, "operation id outside the assay");
      }
      if (!item.device.valid() || item.device.value() >= result.devices.size()) {
        fail(line_number, "schedule references an undeclared device");
      }
      result.layers.back().items.push_back(item);
    } else {
      fail(line_number, "unknown directive '" + keyword + "'");
    }
  }
  if (!saw_header) {
    throw ParseError("missing 'result' header");
  }
  return result;
}

}  // namespace cohls::io
