// Span-preserving source form of the assay text format. parse_assay_source
// runs only the *lexical* phase: it records every directive together with
// its 1-based source line, and keeps parent references as raw ids exactly as
// written. All semantic checks — duplicate or undefined ids, density,
// dependency cycles, positive durations, bindability — are deferred to the
// analysis linter (src/analysis) or to build(). That split is what lets the
// linter report many structured diagnostics with line-accurate spans where
// assay_from_text must stop at the first builder precondition.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "model/assay.hpp"

namespace cohls::io {

/// Thrown on malformed input, with the offending line number in the message
/// (and, when known, in line()).
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
  ParseError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}

  /// 1-based source line of the error; 0 when unknown (document-level).
  [[nodiscard]] int line() const { return line_; }

 private:
  int line_ = 0;
};

/// A custom accessory directive with its source line.
struct SourceAccessory {
  std::string name;
  double cost = 0.0;
  int line = 0;
};

/// One operation directive with its source span.
struct SourceOperation {
  long id = -1;
  /// Spec with `parents` left empty — raw references live in `parents`
  /// below so undefined/forward/cyclic ids survive parsing for the linter.
  model::OperationSpec spec;
  std::vector<long> parents;
  int line = 0;
  /// 1-based column of the 'operation' keyword.
  int column = 0;
};

/// The parsed-but-unchecked document.
struct AssaySource {
  std::string name;
  int name_line = 0;
  model::AccessoryRegistry registry;
  std::vector<SourceAccessory> accessories;  ///< custom kinds, in file order
  std::vector<SourceOperation> operations;   ///< in file order

  /// Line of the operation defining `id` (first definition wins); 0 when no
  /// operation defines it.
  [[nodiscard]] int line_of(long id) const;

  /// Builds the model::Assay, enforcing the builder contract (dense
  /// ascending ids, parents-first, positive durations). Throws ParseError
  /// tagged with the offending line on any violation.
  [[nodiscard]] model::Assay build() const;
};

/// Lexes the text format. Throws ParseError only on lexical problems
/// (unknown directive or field, malformed number, unterminated string,
/// unknown accessory name, missing or duplicate 'assay' header).
[[nodiscard]] AssaySource parse_assay_source(const std::string& text);

}  // namespace cohls::io
