#include "io/assay_text.hpp"

#include <sstream>

#include "util/check.hpp"

namespace cohls::io {

namespace {

std::string quoted(const std::string& text) {
  COHLS_EXPECT(text.find('"') == std::string::npos,
               "names must not contain double quotes");
  return '"' + text + '"';
}

}  // namespace

std::string to_text(const model::Assay& assay) {
  std::ostringstream out;
  out << "assay " << quoted(assay.name()) << '\n';
  const model::AccessoryRegistry& registry = assay.registry();
  for (model::AccessoryId id = model::BuiltinAccessory::kCount; id < registry.count();
       ++id) {
    out << "accessory " << quoted(registry.name(id))
        << " cost=" << registry.processing_cost(id) << '\n';
  }
  for (const model::Operation& op : assay.operations()) {
    out << "operation " << op.id().value() << ' ' << quoted(op.name())
        << " duration=" << op.duration().count();
    if (op.container().has_value()) {
      out << " container=" << model::to_string(*op.container());
    }
    if (op.capacity().has_value()) {
      out << " capacity=" << model::to_string(*op.capacity());
    }
    if (!op.accessories().empty()) {
      out << " accessories={";
      bool first = true;
      for (const model::AccessoryId id : op.accessories().to_list()) {
        out << (first ? "" : "; ") << registry.name(id);
        first = false;
      }
      out << '}';
    }
    if (!op.parents().empty()) {
      out << " parents=";
      bool first = true;
      for (const OperationId parent : op.parents()) {
        out << (first ? "" : ",") << parent.value();
        first = false;
      }
    }
    if (op.indeterminate()) {
      out << " indeterminate";
    }
    out << '\n';
  }
  return out.str();
}

model::Assay assay_from_text(const std::string& text) {
  return parse_assay_source(text).build();
}

}  // namespace cohls::io
