#include "io/assay_source.hpp"

#include <charconv>
#include <sstream>

#include "util/check.hpp"

namespace cohls::io {

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw ParseError(line, message);
}

/// A cursor over one line.
struct Cursor {
  const std::string& text;
  std::size_t pos = 0;
  int line;

  void skip_spaces() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t')) {
      ++pos;
    }
  }
  bool at_end() {
    skip_spaces();
    return pos >= text.size();
  }
  /// Next bare word (up to space or '=').
  std::string word() {
    skip_spaces();
    const std::size_t start = pos;
    while (pos < text.size() && text[pos] != ' ' && text[pos] != '\t' &&
           text[pos] != '=') {
      ++pos;
    }
    if (start == pos) {
      fail(line, "expected a word");
    }
    return text.substr(start, pos - start);
  }
  std::string quoted_string() {
    skip_spaces();
    if (pos >= text.size() || text[pos] != '"') {
      fail(line, "expected a quoted string");
    }
    const std::size_t start = ++pos;
    while (pos < text.size() && text[pos] != '"') {
      ++pos;
    }
    if (pos >= text.size()) {
      fail(line, "unterminated quoted string");
    }
    return text.substr(start, pos++ - start);
  }
  void expect_char(char c) {
    skip_spaces();
    if (pos >= text.size() || text[pos] != c) {
      fail(line, std::string("expected '") + c + "'");
    }
    ++pos;
  }
  /// Text up to (not including) `stop`, trimmed.
  std::string until(char stop) {
    const std::size_t start = pos;
    while (pos < text.size() && text[pos] != stop) {
      ++pos;
    }
    if (pos >= text.size()) {
      fail(line, std::string("expected '") + stop + "'");
    }
    std::string out = text.substr(start, pos - start);
    const auto first = out.find_first_not_of(" \t");
    const auto last = out.find_last_not_of(" \t");
    return first == std::string::npos ? std::string{}
                                      : out.substr(first, last - first + 1);
  }
};

long parse_long(const std::string& token, int line) {
  long value = 0;
  const auto [end, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || end != token.data() + token.size()) {
    fail(line, "expected an integer, got '" + token + "'");
  }
  return value;
}

double parse_double(const std::string& token, int line) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(token, &consumed);
    if (consumed != token.size()) {
      fail(line, "trailing characters after number '" + token + "'");
    }
    return value;
  } catch (const std::invalid_argument&) {
    fail(line, "expected a number, got '" + token + "'");
  } catch (const std::out_of_range&) {
    fail(line, "number out of range: '" + token + "'");
  }
}

}  // namespace

int AssaySource::line_of(long id) const {
  for (const SourceOperation& op : operations) {
    if (op.id == id) {
      return op.line;
    }
  }
  return 0;
}

model::Assay AssaySource::build() const {
  model::Assay assay(name, registry);
  for (const SourceOperation& op : operations) {
    if (op.id != assay.operation_count()) {
      fail(op.line, "operation ids must be dense and ascending (expected " +
                        std::to_string(assay.operation_count()) + ")");
    }
    model::OperationSpec spec = op.spec;
    spec.parents.reserve(op.parents.size());
    for (const long parent : op.parents) {
      spec.parents.push_back(OperationId{static_cast<std::int32_t>(parent)});
    }
    try {
      (void)assay.add_operation(std::move(spec));
    } catch (const PreconditionError& e) {
      fail(op.line, e.what());
    }
  }
  return assay;
}

AssaySource parse_assay_source(const std::string& text) {
  std::istringstream in(text);
  std::string raw_line;
  int line_number = 0;

  AssaySource source;
  bool saw_assay = false;

  while (std::getline(in, raw_line)) {
    ++line_number;
    // Strip comments.
    const auto hash = raw_line.find('#');
    const std::string stripped =
        hash == std::string::npos ? raw_line : raw_line.substr(0, hash);
    Cursor cursor{stripped, 0, line_number};
    if (cursor.at_end()) {
      continue;
    }
    const int keyword_column = static_cast<int>(cursor.pos) + 1;
    const std::string keyword = cursor.word();
    if (keyword == "assay") {
      if (saw_assay) {
        fail(line_number, "duplicate 'assay' header");
      }
      source.name = cursor.quoted_string();
      source.name_line = line_number;
      saw_assay = true;
    } else if (keyword == "accessory") {
      if (!saw_assay) {
        fail(line_number, "'accessory' before 'assay'");
      }
      SourceAccessory accessory;
      accessory.line = line_number;
      accessory.name = cursor.quoted_string();
      const std::string key = cursor.word();
      if (key != "cost") {
        fail(line_number, "expected cost=<number>");
      }
      cursor.expect_char('=');
      accessory.cost = parse_double(cursor.word(), line_number);
      try {
        source.registry.register_accessory(accessory.name, accessory.cost);
      } catch (const PreconditionError& e) {
        fail(line_number, e.what());
      }
      source.accessories.push_back(std::move(accessory));
    } else if (keyword == "operation") {
      if (!saw_assay) {
        fail(line_number, "'operation' before 'assay'");
      }
      SourceOperation op;
      op.line = line_number;
      op.column = keyword_column;
      op.id = parse_long(cursor.word(), line_number);
      op.spec.name = cursor.quoted_string();
      while (!cursor.at_end()) {
        const std::string key = cursor.word();
        if (key == "indeterminate") {
          op.spec.indeterminate = true;
          continue;
        }
        cursor.expect_char('=');
        if (key == "duration") {
          op.spec.duration = Minutes{parse_long(cursor.word(), line_number)};
        } else if (key == "container") {
          const std::string value = cursor.word();
          if (value == "ring") {
            op.spec.container = model::ContainerKind::Ring;
          } else if (value == "chamber") {
            op.spec.container = model::ContainerKind::Chamber;
          } else {
            fail(line_number, "unknown container '" + value + "'");
          }
        } else if (key == "capacity") {
          const std::string value = cursor.word();
          bool found = false;
          for (const model::Capacity cap : model::kAllCapacities) {
            if (value == model::to_string(cap)) {
              op.spec.capacity = cap;
              found = true;
            }
          }
          if (!found) {
            fail(line_number, "unknown capacity '" + value + "'");
          }
        } else if (key == "accessories") {
          cursor.expect_char('{');
          const std::string body = cursor.until('}');
          cursor.expect_char('}');
          std::size_t start = 0;
          while (start <= body.size()) {
            const std::size_t sep = body.find(';', start);
            std::string name = body.substr(
                start, sep == std::string::npos ? std::string::npos : sep - start);
            const auto first = name.find_first_not_of(" \t");
            if (first == std::string::npos) {
              fail(line_number, "empty accessory name");
            }
            const auto last = name.find_last_not_of(" \t");
            name = name.substr(first, last - first + 1);
            const model::AccessoryId id = source.registry.find(name);
            if (id < 0) {
              fail(line_number, "unknown accessory '" + name + "'");
            }
            op.spec.accessories.insert(id);
            if (sep == std::string::npos) {
              break;
            }
            start = sep + 1;
          }
        } else if (key == "parents") {
          const std::string list = cursor.word();
          std::size_t start = 0;
          while (start <= list.size()) {
            const std::size_t sep = list.find(',', start);
            const std::string token = list.substr(
                start, sep == std::string::npos ? std::string::npos : sep - start);
            op.parents.push_back(parse_long(token, line_number));
            if (sep == std::string::npos) {
              break;
            }
            start = sep + 1;
          }
        } else {
          fail(line_number, "unknown field '" + key + "'");
        }
      }
      source.operations.push_back(std::move(op));
    } else {
      fail(line_number, "unknown directive '" + keyword + "'");
    }
  }

  if (!saw_assay) {
    throw ParseError("missing 'assay' header");
  }
  return source;
}

}  // namespace cohls::io
