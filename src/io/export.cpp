#include "io/export.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "util/check.hpp"

namespace cohls::io {

std::string to_gantt(const schedule::SynthesisResult& result, const model::Assay& assay,
                     Minutes resolution) {
  COHLS_EXPECT(resolution > Minutes{0}, "resolution must be positive");
  std::ostringstream out;
  int layer_number = 0;
  for (const schedule::LayerSchedule& layer : result.layers) {
    ++layer_number;
    const Minutes makespan = layer.makespan();
    const std::size_t columns =
        static_cast<std::size_t>((makespan.count() + resolution.count() - 1) /
                                 resolution.count());
    out << "== layer " << layer_number << " (makespan " << makespan << ") ==\n";

    std::set<DeviceId> devices;
    for (const auto& item : layer.items) {
      devices.insert(item.device);
    }
    char letter = 'A';
    std::map<OperationId, char> letters;
    for (const auto& item : layer.items) {
      letters[item.op] = letter;
      letter = letter == 'Z' ? 'a' : static_cast<char>(letter + 1);
    }
    for (const DeviceId device : devices) {
      std::string row(columns, '.');
      for (const auto& item : layer.items) {
        if (item.device != device) {
          continue;
        }
        const auto begin = static_cast<std::size_t>(item.start.count() /
                                                    resolution.count());
        const auto end = static_cast<std::size_t>(
            (item.end().count() + resolution.count() - 1) / resolution.count());
        for (std::size_t c = begin; c < end && c < columns; ++c) {
          row[c] = letters.at(item.op);
        }
        if (assay.operation(item.op).indeterminate() && !row.empty()) {
          row.back() = '~';
        }
      }
      out << "device#" << device << " |" << row << "|\n";
    }
    for (const auto& item : layer.items) {
      out << "  " << letters.at(item.op) << " = " << assay.operation(item.op).name()
          << '\n';
    }
  }
  return out.str();
}

std::string to_csv(const schedule::SynthesisResult& result, const model::Assay& assay) {
  std::ostringstream out;
  out << "layer,operation,name,device,start,end,indeterminate\n";
  int layer_number = 0;
  for (const schedule::LayerSchedule& layer : result.layers) {
    ++layer_number;
    for (const auto& item : layer.items) {
      const model::Operation& op = assay.operation(item.op);
      std::string name = op.name();
      std::replace(name.begin(), name.end(), ',', ';');
      out << layer_number << ',' << item.op.value() << ',' << name << ','
          << item.device.value() << ',' << item.start.count() << ','
          << item.end().count() << ',' << (op.indeterminate() ? 1 : 0) << '\n';
    }
  }
  return out.str();
}

std::string to_dot(const schedule::SynthesisResult& result, const model::Assay& assay) {
  std::ostringstream out;
  out << "graph chip {\n  node [shape=box];\n";
  std::set<DeviceId> used;
  for (const auto& layer : result.layers) {
    for (const auto& item : layer.items) {
      used.insert(item.device);
    }
  }
  for (const DeviceId device : used) {
    const model::DeviceConfig& config = result.devices.device(device).config;
    out << "  d" << device.value() << " [label=\"device#" << device.value() << "\\n"
        << model::to_string(config.container) << '/' << model::to_string(config.capacity)
        << "\\n" << model::to_string(config.accessories, assay.registry()) << "\"];\n";
  }
  // Count transfers per path.
  std::map<schedule::DevicePath, int> transfers;
  const auto binding = result.binding();
  for (const auto& [op, device] : binding) {
    for (const OperationId child : assay.children(op)) {
      const auto it = binding.find(child);
      if (it != binding.end() && it->second != device) {
        ++transfers[schedule::make_path(device, it->second)];
      }
    }
  }
  for (const auto& [path, count] : transfers) {
    out << "  d" << path.first.value() << " -- d" << path.second.value()
        << " [label=\"" << count << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace cohls::io
