// Result exporters: a Gantt-style text chart of the hybrid schedule, a CSV
// dump for spreadsheets, and a Graphviz DOT view of the device/path network
// (the "potential chip layout" the transportation estimator reasons about).
#pragma once

#include <string>

#include "model/assay.hpp"
#include "schedule/types.hpp"

namespace cohls::io {

/// Per-device timeline per layer, one character per `resolution` minutes:
///
///   == layer 1 (makespan 30m) ==
///   device#0 |AAAAAAAAAA..BBBBB|
///   device#1 |....CCCCCCCCCC...|
///
/// Operations are lettered in schedule order; indeterminate tails are
/// marked with '~'.
[[nodiscard]] std::string to_gantt(const schedule::SynthesisResult& result,
                                   const model::Assay& assay, Minutes resolution = 1_min);

/// "layer,operation,name,device,start,end,indeterminate" rows.
[[nodiscard]] std::string to_csv(const schedule::SynthesisResult& result,
                                 const model::Assay& assay);

/// Graphviz DOT: devices as nodes (labelled with their configuration),
/// transportation paths as edges weighted by transfer count.
[[nodiscard]] std::string to_dot(const schedule::SynthesisResult& result,
                                 const model::Assay& assay);

}  // namespace cohls::io
