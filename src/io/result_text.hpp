// A line-oriented text format for synthesis results, so a synthesized
// binding + hybrid schedule can be stored, diffed, and handed to downstream
// layout / control-synthesis tools. Round-trips exactly:
//
//   result max_devices=25
//   device 0 container=ring capacity=medium accessories={pump} created_in=0
//   layer 0
//   schedule op=0 device=0 start=0 duration=10 transport=2
//
// Devices and layers must appear in id order; schedule lines belong to the
// most recent `layer` line.
#pragma once

#include <string>

#include "model/assay.hpp"
#include "schedule/types.hpp"

// Reuse the ParseError type of the assay format.
#include "io/assay_text.hpp"

namespace cohls::io {

/// Serializes a synthesis result (stable field order).
[[nodiscard]] std::string to_text(const schedule::SynthesisResult& result,
                                  const model::Assay& assay);

/// Parses a result back. The assay provides the accessory registry used to
/// resolve accessory names and is also used for sanity limits; full
/// constraint validation remains the job of schedule::validate_result.
[[nodiscard]] schedule::SynthesisResult result_from_text(const std::string& text,
                                                         const model::Assay& assay);

}  // namespace cohls::io
