// cohls_check: a token-level static checker for this repository's own C++
// sources. It enforces concurrency/determinism invariants that no
// off-the-shelf tool knows about, emitting stable COHLS-S1xx codes through
// the shared diag catalog (text + JSON, same emitters as the assay linter
// and the schedule certifier):
//
//   S101  range-for over a std::unordered_{map,set,multimap,multiset}
//         variable. Unordered iteration order varies across libraries, runs
//         and shard layouts, so any serialization / reduction / hashing that
//         walks one is nondeterministic. Iterate an ordered projection
//         instead (a sorted copy, a std::map, or a call that returns an
//         ordered view — a range expression ending in a call is accepted).
//   S102  direct random sources (rand, srand, drand48, random_shuffle,
//         std::random_device) outside util/rng. All randomness must flow
//         through util::Rng's counter-based streams so runs replay.
//   S103  wall-clock reads (std::chrono::system_clock, gettimeofday,
//         clock_gettime, timespec_get) outside the timing allowlist.
//         steady_clock is fine (deadlines/latency); calendar time is not.
//   S104  a class declaring a mutex member by value (std::mutex,
//         std::shared_mutex, util::Mutex, util::SharedMutex) without any
//         COHLS_GUARDED_BY / COHLS_PT_GUARDED_BY annotation in the same
//         class body — the state the mutex protects is invisible to clang's
//         thread-safety analysis. Reference/pointer members are exempt:
//         they borrow a capability owned (and documented) elsewhere, which
//         is exactly what scoped locks do.
//   S105  a literal `throw` inside a worker lambda (an argument of
//         ThreadPool::submit / std::thread construction) with no enclosing
//         try block in the lambda itself. Escaping exceptions terminate the
//         worker (or the process); catch at the lambda boundary.
//   S106  any clock read or sleep (steady_clock, system_clock,
//         high_resolution_clock, gettimeofday, clock_gettime, timespec_get,
//         sleep_for, sleep_until) inside a recovery-path file
//         (recovery_paths). The re-entrant mission loop must be
//         deterministic in its inputs — bit-identical across fleet worker
//         counts — so even steady_clock (fine elsewhere under S103) is
//         banned here; all timing flows through CancellationToken deadlines
//         and the carried elapsed-time credit.
//
// Suppressions: `// cohls-check: allow(S101)` (comma lists and full
// "COHLS-S101" spellings accepted, optional `: reason` tail) suppresses the
// listed codes on the directive's line and on the next code line;
// `// cohls-check: allow-file(S103): reason` suppresses for the whole file.
//
// The checker is deliberately lexical: it tokenizes (comments and string
// literals stripped, `::` fused), so it is fast, has no compiler
// dependency, and its verdicts are stable — at the cost of not resolving
// types. The rules are tuned so the lexical approximation errs on the loud
// side and every intended escape is an explicit, reviewable suppression.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "diag/diagnostic.hpp"

namespace cohls::analysis {

struct SourceCheckOptions {
  /// Files whose (slash-normalized) path contains one of these fragments may
  /// use direct random sources (S102).
  std::vector<std::string> random_allowlist = {"util/rng."};
  /// Files allowed to read wall clocks (S103). Empty by default: nothing in
  /// src/ needs calendar time today; additions are a reviewed decision.
  std::vector<std::string> wall_clock_allowlist = {};
  /// Files holding recovery/mission-loop code, where *every* clock read is
  /// banned (S106), not just calendar clocks. Fleet determinism depends on
  /// the mission loop being a pure function of its inputs.
  std::vector<std::string> recovery_paths = {"core/recovery."};
  /// Report warnings as errors (--Werror).
  bool warnings_as_errors = false;
};

/// Checks one file's text. `path` is used for allowlists and for the file
/// prefix of rendered diagnostics; diagnostics carry 1-based line/column
/// spans into `text`. Sorted by location.
[[nodiscard]] std::vector<diag::Diagnostic> check_source(
    std::string_view path, std::string_view text,
    const SourceCheckOptions& options = {});

/// A checked file with its findings (empty = clean).
struct CheckedFile {
  std::string path;
  std::vector<diag::Diagnostic> diagnostics;
};

/// Convenience for tests and the CLI: checks many (path, text) pairs.
[[nodiscard]] std::vector<CheckedFile> check_files(
    const std::vector<std::pair<std::string, std::string>>& files,
    const SourceCheckOptions& options = {});

/// All rule codes the checker can emit, in catalog order.
[[nodiscard]] const std::vector<std::string>& source_check_codes();

}  // namespace cohls::analysis
