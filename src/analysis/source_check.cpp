#include "analysis/source_check.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <utility>

namespace cohls::analysis {

namespace {

struct Token {
  std::string text;
  int line = 1;
  int column = 1;
  bool is_identifier = false;
};

struct Comment {
  std::string text;
  int line = 1;
};

struct Lexed {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  /// Lines that carry at least one token (for attaching suppression
  /// directives to the next code line).
  std::set<int> code_lines;
};

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Comments and string/char literals are stripped (comments are kept aside
/// for suppression directives); `::` is fused into one token; every other
/// punctuation character is its own token.
Lexed lex(std::string_view text) {
  Lexed out;
  int line = 1;
  int column = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();

  const auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k, ++i) {
      if (text[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n' || std::isspace(static_cast<unsigned char>(c)) != 0) {
      advance(1);
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const int at = line;
      std::size_t j = i;
      while (j < n && text[j] != '\n') {
        ++j;
      }
      out.comments.push_back(Comment{std::string(text.substr(i, j - i)), at});
      advance(j - i);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const int at = line;
      std::size_t j = i + 2;
      while (j + 1 < n && !(text[j] == '*' && text[j + 1] == '/')) {
        ++j;
      }
      j = std::min(j + 2, n);
      out.comments.push_back(Comment{std::string(text.substr(i, j - i)), at});
      advance(j - i);
      continue;
    }
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && text[i + 1] == '"' &&
        (out.tokens.empty() || out.tokens.back().text != "#")) {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && text[j] != '(') {
        delim.push_back(text[j]);
        ++j;
      }
      const std::string closer = ")" + delim + "\"";
      const std::size_t end = text.find(closer, j);
      advance((end == std::string_view::npos ? n : end + closer.size()) - i);
      continue;
    }
    // String / char literal (with escapes). A digit separator like 1'000 is
    // consumed by the number path below, so a quote here is a real literal.
    if (c == '"' || c == '\'') {
      std::size_t j = i + 1;
      while (j < n && text[j] != c) {
        j += text[j] == '\\' ? 2 : 1;
      }
      advance(std::min(j + 1, n) - i);
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && is_ident_char(text[j])) {
        ++j;
      }
      out.tokens.push_back(
          Token{std::string(text.substr(i, j - i)), line, column, true});
      out.code_lines.insert(line);
      advance(j - i);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i + 1;
      while (j < n && (is_ident_char(text[j]) || text[j] == '.' ||
                       (text[j] == '\'' && j + 1 < n && is_ident_char(text[j + 1])))) {
        ++j;
      }
      out.tokens.push_back(
          Token{std::string(text.substr(i, j - i)), line, column, false});
      out.code_lines.insert(line);
      advance(j - i);
      continue;
    }
    if ((c == ':' && i + 1 < n && text[i + 1] == ':') ||
        (c == '-' && i + 1 < n && text[i + 1] == '>')) {
      out.tokens.push_back(
          Token{std::string(text.substr(i, 2)), line, column, false});
      out.code_lines.insert(line);
      advance(2);
      continue;
    }
    out.tokens.push_back(Token{std::string(1, c), line, column, false});
    out.code_lines.insert(line);
    advance(1);
  }
  return out;
}

/// Normalizes "COHLS-S104" / "S104" to "S104"; empty when not an S-code.
std::string normalize_code(std::string_view code) {
  if (code.rfind("COHLS-", 0) == 0) {
    code.remove_prefix(6);
  }
  if (code.size() >= 2 && code[0] == 'S' &&
      std::all_of(code.begin() + 1, code.end(), [](char c) {
        return std::isdigit(static_cast<unsigned char>(c)) != 0;
      })) {
    return std::string(code);
  }
  return {};
}

struct Suppressions {
  std::set<std::string> file_codes;
  std::map<int, std::set<std::string>> line_codes;

  [[nodiscard]] bool allows(int line, std::string_view full_code) const {
    const std::string code = normalize_code(full_code);
    if (file_codes.count(code) > 0) {
      return true;
    }
    const auto it = line_codes.find(line);
    return it != line_codes.end() && it->second.count(code) > 0;
  }
};

/// Parses `cohls-check: allow(...)` / `allow-file(...)` directives. A line
/// directive covers its own line and the next line that carries code (so a
/// comment directly above a declaration covers it, even when the comment
/// wraps).
Suppressions parse_suppressions(const Lexed& lexed) {
  Suppressions out;
  for (const Comment& comment : lexed.comments) {
    const std::size_t at = comment.text.find("cohls-check:");
    if (at == std::string::npos) {
      continue;
    }
    std::string_view rest = std::string_view(comment.text).substr(at + 12);
    const bool file_wide = rest.find("allow-file(") != std::string_view::npos;
    const std::size_t open = rest.find('(');
    const std::size_t close = rest.find(')', open);
    if (open == std::string_view::npos || close == std::string_view::npos) {
      continue;
    }
    std::set<std::string> codes;
    std::string_view list = rest.substr(open + 1, close - open - 1);
    std::size_t start = 0;
    while (start <= list.size()) {
      std::size_t end = list.find(',', start);
      if (end == std::string_view::npos) {
        end = list.size();
      }
      std::string_view item = list.substr(start, end - start);
      while (!item.empty() && item.front() == ' ') {
        item.remove_prefix(1);
      }
      while (!item.empty() && item.back() == ' ') {
        item.remove_suffix(1);
      }
      const std::string code = normalize_code(item);
      if (!code.empty()) {
        codes.insert(code);
      }
      start = end + 1;
    }
    if (codes.empty()) {
      continue;
    }
    if (file_wide) {
      out.file_codes.insert(codes.begin(), codes.end());
      continue;
    }
    out.line_codes[comment.line].insert(codes.begin(), codes.end());
    const auto next = lexed.code_lines.upper_bound(comment.line);
    if (next != lexed.code_lines.end()) {
      out.line_codes[*next].insert(codes.begin(), codes.end());
    }
  }
  return out;
}

bool path_in(const std::string& path, const std::vector<std::string>& fragments) {
  std::string normalized = path;
  std::replace(normalized.begin(), normalized.end(), '\\', '/');
  return std::any_of(fragments.begin(), fragments.end(),
                     [&](const std::string& fragment) {
                       return normalized.find(fragment) != std::string::npos;
                     });
}

class Checker {
 public:
  Checker(std::string path, const Lexed& lexed, const SourceCheckOptions& options)
      : path_(std::move(path)),
        tokens_(lexed.tokens),
        suppressions_(parse_suppressions(lexed)),
        options_(options) {}

  std::vector<diag::Diagnostic> run() {
    collect_unordered_names();
    scan();
    diag::sort_by_location(findings_);
    return std::move(findings_);
  }

 private:
  void emit(const char* code, const Token& at, std::string message,
            std::string fixit = {}) {
    if (suppressions_.allows(at.line, code)) {
      return;
    }
    diag::Diagnostic d;
    d.code = code;
    d.severity = options_.warnings_as_errors ? diag::Severity::Error
                                             : diag::Severity::Warning;
    d.message = std::move(message);
    d.span = diag::Span{at.line, at.column};
    d.fixit = std::move(fixit);
    findings_.push_back(std::move(d));
  }

  [[nodiscard]] const Token& tok(std::size_t i) const { return tokens_[i]; }
  [[nodiscard]] bool is(std::size_t i, std::string_view text) const {
    return i < tokens_.size() && tokens_[i].text == text;
  }

  [[nodiscard]] static bool is_unordered_container(std::string_view name) {
    return name == "unordered_map" || name == "unordered_set" ||
           name == "unordered_multimap" || name == "unordered_multiset";
  }

  /// Index just past a balanced group opened by the bracket at `open`.
  [[nodiscard]] std::size_t skip_group(std::size_t open, char open_char,
                                       char close_char) const {
    int depth = 0;
    std::size_t i = open;
    for (; i < tokens_.size(); ++i) {
      if (tokens_[i].text.size() == 1) {
        if (tokens_[i].text[0] == open_char) {
          ++depth;
        } else if (tokens_[i].text[0] == close_char && --depth == 0) {
          return i + 1;
        }
      }
    }
    return i;
  }

  // --- S101: names declared with an unordered container type ---------------

  void collect_unordered_names() {
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      if (!tok(i).is_identifier || !is_unordered_container(tok(i).text) ||
          !is(i + 1, "<")) {
        continue;
      }
      std::size_t j = skip_angles(i + 1);
      while (is(j, "*") || is(j, "&") || is(j, "const")) {
        ++j;
      }
      if (j >= tokens_.size() || !tok(j).is_identifier) {
        continue;
      }
      const std::string& name = tok(j).text;
      if (is(j + 1, ";") || is(j + 1, "=") || is(j + 1, "{") || is(j + 1, ",") ||
          is(j + 1, ")") || is(j + 1, "COHLS_GUARDED_BY")) {
        unordered_names_.insert(name);
      }
    }
  }

  [[nodiscard]] std::size_t skip_angles(std::size_t open) const {
    int depth = 0;
    std::size_t i = open;
    for (; i < tokens_.size(); ++i) {
      if (tokens_[i].text == "<") {
        ++depth;
      } else if (tokens_[i].text == ">" && --depth == 0) {
        return i + 1;
      } else if (tokens_[i].text == ";") {
        break;  // malformed / not a template argument list
      }
    }
    return i;
  }

  void check_range_for(std::size_t for_index) {
    const std::size_t open = for_index + 1;
    const std::size_t end = skip_group(open, '(', ')');
    int depth = 0;
    std::size_t colon = 0;
    for (std::size_t i = open; i < end; ++i) {
      if (is(i, "(")) {
        ++depth;
      } else if (is(i, ")")) {
        --depth;
      } else if (depth == 1 && is(i, ";")) {
        return;  // classic three-clause for
      } else if (depth == 1 && is(i, ":") && colon == 0) {
        colon = i;
      }
    }
    if (colon == 0 || end < 2) {
      return;
    }
    const Token& last = tok(end - 2);  // end-1 is the closing ')'
    if (last.is_identifier && unordered_names_.count(last.text) > 0) {
      emit(diag::codes::kUnorderedIteration, last,
           "range-for over unordered container '" + last.text +
               "' — iteration order varies across runs, libraries and shard "
               "layouts",
           "iterate an ordered projection instead (sorted key copy, std::map, "
           "or a call returning an ordered view)");
    }
  }

  // --- S102 / S103: forbidden randomness and wall clocks --------------------

  void check_random(std::size_t i) {
    if (path_in(path_, options_.random_allowlist)) {
      return;
    }
    const std::string& name = tok(i).text;
    if (i > 0 && (is(i - 1, ".") || is(i - 1, "->"))) {
      return;  // member named like a libc function, not the libc function
    }
    const bool call_only =
        name == "rand" || name == "srand" || name == "drand48" ||
        name == "random_shuffle";
    if (name == "random_device" || (call_only && is(i + 1, "("))) {
      emit(diag::codes::kForbiddenRandomSource, tok(i),
           "direct random source '" + name +
               "' outside util/rng — results would differ between runs",
           "draw from util::Rng counter-based streams (seeded, replayable)");
    }
  }

  void check_wall_clock(std::size_t i) {
    if (path_in(path_, options_.wall_clock_allowlist)) {
      return;
    }
    const std::string& name = tok(i).text;
    const bool call_only = name == "gettimeofday" || name == "clock_gettime" ||
                           name == "timespec_get";
    if (name == "system_clock" || (call_only && is(i + 1, "("))) {
      emit(diag::codes::kForbiddenWallClock, tok(i),
           "wall-clock read '" + name +
               "' outside the timing allowlist — calendar time makes runs "
               "unreproducible",
           "use std::chrono::steady_clock for intervals, or pass timestamps "
           "in from the caller");
    }
  }

  // --- S106: any clock read inside recovery-path files ----------------------

  void check_recovery_clock(std::size_t i) {
    if (!path_in(path_, options_.recovery_paths)) {
      return;
    }
    const std::string& name = tok(i).text;
    if (i > 0 && (is(i - 1, ".") || is(i - 1, "->"))) {
      return;  // member named like a clock function, not the clock itself
    }
    const bool call_only = name == "gettimeofday" || name == "clock_gettime" ||
                           name == "timespec_get" || name == "sleep_for" ||
                           name == "sleep_until";
    if (name == "steady_clock" || name == "system_clock" ||
        name == "high_resolution_clock" || (call_only && is(i + 1, "("))) {
      emit(diag::codes::kClockInRecoveryPath, tok(i),
           "clock read '" + name +
               "' in a recovery-path file — the mission loop must be a pure "
               "function of its inputs to keep fleet reductions bit-identical",
           "thread timing through CancellationToken deadlines and the carried "
           "elapsed-time credit instead of reading a clock");
    }
  }

  // --- S104: mutex members without GUARDED_BY in the class ------------------

  struct ClassScope {
    int open_depth = 0;
    bool has_guard = false;
    std::vector<Token> mutex_members;
  };

  /// Returns the token index of the class body '{' when the class/struct at
  /// `i` introduces one (skipping annotation-macro parens and base lists);
  /// 0 otherwise (forward declaration, enum class, elaborated type).
  [[nodiscard]] std::size_t class_body_open(std::size_t i) const {
    if (i > 0 && is(i - 1, "enum")) {
      return 0;
    }
    for (std::size_t j = i + 1; j < tokens_.size();) {
      if (is(j, "(")) {
        j = skip_group(j, '(', ')');
      } else if (is(j, "{")) {
        return j;
      } else if (is(j, ";") || is(j, "=") || is(j, ")") || is(j, ",") ||
                 is(j, ">")) {
        return 0;  // fwd decl / elaborated type in a declaration
      } else {
        ++j;
      }
    }
    return 0;
  }

  /// Matches a mutex type at `i`; returns the index just past the type
  /// tokens, or 0 when no mutex type starts here.
  [[nodiscard]] std::size_t match_mutex_type(std::size_t i) const {
    if (is(i, "std") && is(i + 1, "::") &&
        (is(i + 2, "mutex") || is(i + 2, "shared_mutex"))) {
      return i + 3;
    }
    if (is(i, "util") && is(i + 1, "::") &&
        (is(i + 2, "Mutex") || is(i + 2, "SharedMutex"))) {
      return i + 3;
    }
    if ((is(i, "Mutex") || is(i, "SharedMutex")) &&
        !(i > 0 && is(i - 1, "::")) && !is(i + 1, "::")) {
      return i + 1;
    }
    return 0;
  }

  void check_mutex_member(std::size_t i, const ClassScope& scope,
                          int brace_depth, std::vector<Token>& out) {
    if (brace_depth != scope.open_depth) {
      return;  // inside a member function body, not a member declaration
    }
    const std::size_t after_type = match_mutex_type(i);
    if (after_type == 0) {
      return;
    }
    // Only value members: a `Mutex&` / `Mutex*` member borrows a capability
    // owned (and GUARDED_BY-documented) elsewhere — scoped locks hold these.
    const std::size_t j = after_type;
    if (j < tokens_.size() && tok(j).is_identifier &&
        (is(j + 1, ";") || is(j + 1, "{"))) {
      out.push_back(tok(j));
    }
  }

  // --- S105: throw inside worker lambdas ------------------------------------

  /// Scans the lambda body starting at its '{' for a `throw` not covered by
  /// a `try` block within the lambda.
  void check_lambda_body(std::size_t body_open) {
    int depth = 0;
    std::vector<int> try_blocks;
    bool pending_try = false;
    for (std::size_t i = body_open; i < tokens_.size(); ++i) {
      if (is(i, "{")) {
        ++depth;
        if (pending_try) {
          try_blocks.push_back(depth);
          pending_try = false;
        }
      } else if (is(i, "}")) {
        if (!try_blocks.empty() && try_blocks.back() == depth) {
          try_blocks.pop_back();
        }
        if (--depth == 0) {
          return;
        }
      } else if (is(i, "try")) {
        pending_try = true;
      } else if (is(i, "throw") && try_blocks.empty()) {
        emit(diag::codes::kThrowInWorkerBody, tok(i),
             "throw inside a worker lambda with no enclosing try — an "
             "escaping exception tears down the worker thread",
             "catch at the lambda boundary and convert to a reported status");
      }
    }
  }

  /// Looks for lambda arguments inside the group opened at `open` and checks
  /// each one's body.
  void check_worker_group(std::size_t open) {
    const std::size_t end = skip_group(open, '(', ')');
    for (std::size_t i = open; i < end; ++i) {
      if (!is(i, "[")) {
        continue;
      }
      std::size_t j = skip_group(i, '[', ']');
      while (j < end && !is(j, "{") && !is(j, ",") && !is(j, ")")) {
        if (is(j, "(")) {
          j = skip_group(j, '(', ')');  // lambda parameter list
        } else {
          ++j;
        }
      }
      if (j < end && is(j, "{")) {
        check_lambda_body(j);
        i = skip_group(j, '{', '}');
      }
    }
  }

  // --- driver ---------------------------------------------------------------

  void scan() {
    std::vector<ClassScope> classes;
    std::set<std::size_t> class_opens;
    int brace_depth = 0;

    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      const Token& t = tok(i);
      if (t.text == "{") {
        ++brace_depth;
        if (class_opens.count(i) > 0) {
          classes.push_back(ClassScope{brace_depth, false, {}});
        }
        continue;
      }
      if (t.text == "}") {
        if (!classes.empty() && classes.back().open_depth == brace_depth) {
          const ClassScope& scope = classes.back();
          if (!scope.has_guard) {
            for (const Token& member : scope.mutex_members) {
              emit(diag::codes::kUnguardedMutexMember, member,
                   "mutex member '" + member.text +
                       "' has no COHLS_GUARDED_BY-annotated sibling — the "
                       "state it protects is invisible to thread-safety "
                       "analysis",
                   "annotate the protected members with "
                   "COHLS_GUARDED_BY(" + member.text + ")");
            }
          }
          classes.pop_back();
        }
        --brace_depth;
        continue;
      }
      if (!t.is_identifier) {
        continue;
      }
      if (t.text == "class" || t.text == "struct") {
        const std::size_t body = class_body_open(i);
        if (body != 0) {
          class_opens.insert(body);
        }
        continue;
      }
      if (t.text == "COHLS_GUARDED_BY" || t.text == "COHLS_PT_GUARDED_BY" ||
          t.text == "GUARDED_BY" || t.text == "PT_GUARDED_BY") {
        if (!classes.empty()) {
          classes.back().has_guard = true;
        }
        continue;
      }
      if (t.text == "for" && is(i + 1, "(")) {
        check_range_for(i);
        continue;
      }
      if (!classes.empty()) {
        check_mutex_member(i, classes.back(), brace_depth,
                           classes.back().mutex_members);
      }
      check_random(i);
      check_wall_clock(i);
      check_recovery_clock(i);
      if (t.text == "submit" && is(i + 1, "(") && i > 0 &&
          (is(i - 1, ".") || is(i - 1, "->"))) {
        check_worker_group(i + 1);
        continue;
      }
      if (t.text == "std" && is(i + 1, "::") && is(i + 2, "thread")) {
        std::size_t open = i + 3;
        if (open < tokens_.size() && tok(open).is_identifier) {
          ++open;  // named variable: std::thread worker(...)
        }
        if (is(open, "(")) {
          check_worker_group(open);
        } else if (is(open, "{")) {
          const std::size_t end = skip_group(open, '{', '}');
          // Brace-init: reuse the paren scanner semantics over the group.
          for (std::size_t k = open; k < end; ++k) {
            if (is(k, "[")) {
              check_worker_group(open);
              break;
            }
          }
        }
      }
    }
  }

  std::string path_;
  const std::vector<Token>& tokens_;
  Suppressions suppressions_;
  SourceCheckOptions options_;
  std::set<std::string> unordered_names_;
  std::vector<diag::Diagnostic> findings_;
};

}  // namespace

std::vector<diag::Diagnostic> check_source(std::string_view path,
                                           std::string_view text,
                                           const SourceCheckOptions& options) {
  const Lexed lexed = lex(text);
  Checker checker(std::string(path), lexed, options);
  return checker.run();
}

std::vector<CheckedFile> check_files(
    const std::vector<std::pair<std::string, std::string>>& files,
    const SourceCheckOptions& options) {
  std::vector<CheckedFile> out;
  out.reserve(files.size());
  for (const auto& [path, text] : files) {
    out.push_back(CheckedFile{path, check_source(path, text, options)});
  }
  return out;
}

const std::vector<std::string>& source_check_codes() {
  static const std::vector<std::string> codes = {
      diag::codes::kUnorderedIteration,  diag::codes::kForbiddenRandomSource,
      diag::codes::kForbiddenWallClock,  diag::codes::kUnguardedMutexMember,
      diag::codes::kThrowInWorkerBody,   diag::codes::kClockInRecoveryPath,
  };
  return codes;
}

}  // namespace cohls::analysis
